// Package hist is an HDR-style latency histogram: fixed-size,
// allocation-free recording of non-negative int64 values (nanoseconds,
// by convention) into logarithmic buckets with a bounded relative
// error, plus exact-rank quantile extraction and lossless merging.
//
// The bucket geometry follows the High Dynamic Range histogram design:
// values below 2^precision land in exact unit buckets; above that, each
// power-of-two range is split into 2^precision sub-buckets, so every
// recorded value is reproduced to within a relative error of
// 2^-precision (≈1.6% at the default precision of 6). The bucket count
// is a function of precision alone — about (64-p+1)·2^p buckets — so a
// histogram covering the full int64 range at default precision is ~37 KiB
// and recording is two array index computations, never an allocation.
//
// Histograms are NOT safe for concurrent use; the intended pattern for
// multi-goroutine recording (the load generator's worker pool) is one
// histogram per goroutine merged at the end, which Merge makes lossless
// because all histograms at equal precision share one geometry.
package hist

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultPrecision is the sub-bucket resolution exponent: values are
// resolved to 2^-6 ≈ 1.6% relative error.
const DefaultPrecision = 6

// Histogram records int64 values into fixed logarithmic buckets.
type Histogram struct {
	precision uint // sub-bucket bits
	counts    []uint64
	total     uint64
	sum       float64 // exact running sum of recorded values
	min, max  int64   // exact extremes; valid when total > 0
}

// New returns a histogram at DefaultPrecision.
func New() *Histogram {
	h, err := NewWithPrecision(DefaultPrecision)
	if err != nil {
		panic(err) // static argument; unreachable
	}
	return h
}

// NewWithPrecision returns a histogram resolving values to within a
// relative error of 2^-precision. Precision must be in [1, 20]; higher
// costs exponentially more memory (2^p sub-buckets per octave).
func NewWithPrecision(precision uint) (*Histogram, error) {
	if precision < 1 || precision > 20 {
		return nil, fmt.Errorf("hist: precision %d outside [1, 20]", precision)
	}
	return &Histogram{
		precision: precision,
		counts:    make([]uint64, bucketCount(precision)),
	}, nil
}

// bucketCount is the number of buckets the geometry needs to cover
// [0, MaxInt64]: 2^p exact unit buckets plus 2^p sub-buckets for each of
// the (63-p) remaining octaves.
func bucketCount(p uint) int {
	return (1 << p) + int(63-p)<<p
}

// bucketIndex maps a non-negative value to its bucket.
func (h *Histogram) bucketIndex(v int64) int {
	if v < int64(1)<<h.precision {
		return int(v)
	}
	// v ∈ [2^exp, 2^(exp+1)): keep the top precision bits after the
	// leading one as the sub-bucket.
	exp := uint(bits.Len64(uint64(v))) - 1
	sub := int(v>>(exp-h.precision)) - 1<<h.precision
	return 1<<h.precision + int(exp-h.precision)<<h.precision + sub
}

// bucketUpper is the largest value that maps into bucket i; quantiles
// report it so they never understate a latency.
func (h *Histogram) bucketUpper(i int) int64 {
	if i < 1<<h.precision {
		return int64(i)
	}
	i -= 1 << h.precision
	octave := uint(i >> h.precision)
	sub := int64(i&(1<<h.precision-1)) + 1<<h.precision
	return (sub+1)<<octave - 1
}

// Record adds one observation. Negative values are clamped to zero
// (latency math can produce tiny negatives from clock adjustments).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.counts[h.bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
}

// Count is the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Min is the smallest recorded value, exact; 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max is the largest recorded value, exact; 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean is the exact arithmetic mean of recorded values; 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the q-quantile (q in [0,1]) under the nearest-rank
// definition: the smallest recorded value v such that at least ⌈q·n⌉
// observations are ≤ v. q=0 returns the exact minimum, q=1 the exact
// maximum; interior quantiles are bucket upper bounds, within the
// histogram's relative error of the exact order statistic. Returns 0
// when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.bucketUpper(i)
			// The top bucket's upper bound can overshoot the true max.
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable: cum reaches total
}

// Merge adds other's observations into h, losslessly (equal precision
// means identical bucket geometry). Both histograms may keep recording
// afterwards; other is not modified.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.precision != other.precision {
		return fmt.Errorf("hist: cannot merge precision %d into %d", other.precision, h.precision)
	}
	if other.total == 0 {
		return nil
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.total == 0 || other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	return nil
}

// Reset clears every observation, keeping the allocated buckets.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}
