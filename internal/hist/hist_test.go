package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the exact nearest-rank quantile on a sorted copy of vs:
// the smallest value with at least ⌈q·n⌉ observations at or below it.
func refQuantile(vs []int64, q float64) int64 {
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func recordAll(t testing.TB, vs []int64) *Histogram {
	t.Helper()
	h := New()
	for _, v := range vs {
		h.Record(v)
	}
	return h
}

var quantileSweep = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}

// TestQuantileExactSmallValues: below 2^precision every bucket is a unit
// bucket, so the histogram must reproduce the reference quantile exactly.
func TestQuantileExactSmallValues(t *testing.T) {
	cases := []struct {
		name string
		vs   []int64
	}{
		{"single-sample", []int64{42}},
		{"all-equal", []int64{7, 7, 7, 7, 7, 7}},
		{"two-values", []int64{1, 2}},
		{"sequence", []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{"skewed", []int64{1, 1, 1, 1, 1, 1, 1, 1, 1, 63}},
		{"with-zero", []int64{0, 0, 0, 10}},
		{"unsorted", []int64{30, 2, 17, 2, 45, 9, 60, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := recordAll(t, tc.vs)
			if h.Count() != uint64(len(tc.vs)) {
				t.Fatalf("count %d, want %d", h.Count(), len(tc.vs))
			}
			for _, q := range quantileSweep {
				got, want := h.Quantile(q), refQuantile(tc.vs, q)
				if got != want {
					t.Errorf("q=%g: got %d, want %d", q, got, want)
				}
			}
			if got, want := h.Min(), refQuantile(tc.vs, 0); got != want {
				t.Errorf("min %d, want %d", got, want)
			}
			if got, want := h.Max(), refQuantile(tc.vs, 1); got != want {
				t.Errorf("max %d, want %d", got, want)
			}
		})
	}
}

// TestQuantileLongTail: large values land in logarithmic buckets; the
// reported quantile must bracket the exact one within the relative error
// bound 2^-precision, and never understate it.
func TestQuantileLongTail(t *testing.T) {
	cases := []struct {
		name string
		vs   []int64
	}{
		{"microseconds-to-seconds", func() []int64 {
			vs := make([]int64, 0, 1000)
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 990; i++ {
				vs = append(vs, 50_000+r.Int63n(200_000)) // 50–250µs body
			}
			for i := 0; i < 10; i++ {
				vs = append(vs, 1_000_000_000+r.Int63n(2_000_000_000)) // 1–3s tail
			}
			return vs
		}()},
		{"powers-of-two", []int64{1 << 10, 1 << 20, 1 << 30, 1 << 40, 1 << 50}},
		{"huge", []int64{math.MaxInt64, math.MaxInt64 - 1, 1}},
	}
	relErr := math.Pow(2, -DefaultPrecision)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := recordAll(t, tc.vs)
			for _, q := range quantileSweep {
				got, want := h.Quantile(q), refQuantile(tc.vs, q)
				if got < want {
					t.Errorf("q=%g: got %d understates exact %d", q, got, want)
				}
				if float64(got-want) > relErr*float64(want)+1 {
					t.Errorf("q=%g: got %d exceeds exact %d beyond %.1f%% relative error",
						q, got, want, relErr*100)
				}
			}
		})
	}
}

// TestQuantilesMonotone: a quantile sweep must be non-decreasing in q.
func TestQuantilesMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	h := New()
	for i := 0; i < 10_000; i++ {
		// Log-uniform over ~9 decades, the shape of latency data.
		h.Record(int64(math.Exp(r.Float64() * 20)))
	}
	prev := h.Quantile(0)
	for q := 0.0; q <= 1.0; q += 0.001 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%g: %d < %d", q, cur, prev)
		}
		prev = cur
	}
}

func TestEmptyAndNegative(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(-5) // clamped to 0
	if h.Quantile(1) != 0 || h.Min() != 0 {
		t.Errorf("negative record not clamped: max %d min %d", h.Quantile(1), h.Min())
	}
}

func TestMean(t *testing.T) {
	h := recordAll(t, []int64{1, 2, 3, 4})
	if h.Mean() != 2.5 {
		t.Errorf("mean %g, want 2.5", h.Mean())
	}
}

// equalHist compares two histograms observation-for-observation: same
// geometry means identical counts arrays imply identical quantiles.
func equalHist(a, b *Histogram) bool {
	if a.total != b.total || a.sum != b.sum || a.Min() != b.Min() || a.Max() != b.Max() {
		return false
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	return true
}

// TestMergeAssociativity: for random sample sets A, B, C, merging
// (A⊕B)⊕C and A⊕(B⊕C) must produce identical histograms, and both must
// equal recording the concatenation directly.
func TestMergeAssociativity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		sets := make([][]int64, 3)
		var all []int64
		for i := range sets {
			n := 1 + r.Intn(200)
			sets[i] = make([]int64, n)
			for j := range sets[i] {
				sets[i][j] = int64(math.Exp(r.Float64() * 25))
				all = append(all, sets[i][j])
			}
		}
		hA, hB, hC := recordAll(t, sets[0]), recordAll(t, sets[1]), recordAll(t, sets[2])

		left := New() // (A⊕B)⊕C
		for _, h := range []*Histogram{hA, hB, hC} {
			if err := left.Merge(h); err != nil {
				t.Fatal(err)
			}
		}
		bc := New() // A⊕(B⊕C)
		if err := bc.Merge(hB); err != nil {
			t.Fatal(err)
		}
		if err := bc.Merge(hC); err != nil {
			t.Fatal(err)
		}
		right := New()
		if err := right.Merge(hA); err != nil {
			t.Fatal(err)
		}
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}

		if !equalHist(left, right) {
			t.Fatalf("seed %d: merge is not associative", seed)
		}
		direct := recordAll(t, all)
		if !equalHist(left, direct) {
			t.Fatalf("seed %d: merge diverges from direct recording", seed)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	a := New()
	b, err := NewWithPrecision(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched precisions must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil: %v", err)
	}
}

func TestNewWithPrecisionValidation(t *testing.T) {
	for _, p := range []uint{0, 21, 64} {
		if _, err := NewWithPrecision(p); err == nil {
			t.Errorf("precision %d accepted", p)
		}
	}
}

func TestReset(t *testing.T) {
	h := recordAll(t, []int64{5, 10, 1 << 40})
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Error("reset did not clear observations")
	}
	h.Record(3)
	if h.Quantile(1) != 3 {
		t.Error("histogram unusable after reset")
	}
}

// TestBucketGeometry pins the index/upper-bound round trip: every value's
// bucket upper bound is ≥ the value and within the relative error bound.
func TestBucketGeometry(t *testing.T) {
	h := New()
	relErr := math.Pow(2, -DefaultPrecision)
	r := rand.New(rand.NewSource(3))
	probe := []int64{0, 1, 63, 64, 65, 127, 128, 129, 1<<20 - 1, 1 << 20, math.MaxInt64}
	for i := 0; i < 10_000; i++ {
		probe = append(probe, r.Int63())
	}
	for _, v := range probe {
		i := h.bucketIndex(v)
		if i < 0 || i >= len(h.counts) {
			t.Fatalf("value %d: bucket %d out of range [0, %d)", v, i, len(h.counts))
		}
		up := h.bucketUpper(i)
		if up < v {
			t.Fatalf("value %d: bucket upper %d understates it", v, up)
		}
		if float64(up-v) > relErr*float64(v)+1 {
			t.Fatalf("value %d: bucket upper %d beyond relative error", v, up)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*7919 + 50_000)
	}
}

func BenchmarkQuantile(b *testing.B) {
	h := New()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100_000; i++ {
		h.Record(r.Int63n(1_000_000_000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
