// Package buildinfo identifies the running binary — VCS revision and
// Go toolchain — so SLO reports, BENCH rows, and health probes can
// attribute results to a build. It reads what the Go linker already
// embeds (runtime/debug.ReadBuildInfo), so no ldflags plumbing is
// needed; a binary built outside a git checkout reports "unknown".
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	// Revision is the VCS commit hash the binary was built from, or
	// "unknown" when the build had no VCS metadata (e.g. go test
	// binaries, builds from an exported tarball).
	Revision string `json:"revision"`
	// Modified reports uncommitted changes in the build's working tree.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the binary's embedded build metadata.
func Get() Info {
	info := Info{Revision: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				info.Revision = s.Value
			}
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String is the compact single-token form used in headers and -version
// output: "<rev12>[-dirty]/<goversion>".
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Modified {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s/%s", rev, i.GoVersion)
}
