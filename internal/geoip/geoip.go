// Package geoip implements the GeoIP substrate the paper's CDN distance
// heuristic depends on (§4.1.1: "we use the GeoIP database to estimate the
// distance to the destination"). The real MaxMind database is proprietary;
// this is a from-scratch equivalent: an IPv4 longest-prefix-match database
// mapping address prefixes to (city, country, lat, lon) records, with a
// binary-trie lookup path and a CSV interchange format. The synthetic
// trace generators allocate destination prefixes to world cities through
// this package, and the flow-classification stage resolves them back.
package geoip

import (
	"errors"
	"fmt"
	"net/netip"
)

// Record is one GeoIP entry: the location information for an address
// prefix.
type Record struct {
	// Prefix is the IPv4 prefix this record covers.
	Prefix netip.Prefix
	// City and Country name the location (country as ISO-like short
	// code, e.g. "DE").
	City    string
	Country string
	// Lat and Lon are the location's coordinates in degrees.
	Lat, Lon float64
}

// DB is a longest-prefix-match GeoIP database. The zero value is an empty
// database ready to use.
type DB struct {
	root *trieNode
	size int
}

type trieNode struct {
	children [2]*trieNode
	rec      *Record // non-nil if a record terminates here
}

// Insert adds a record. Inserting a second record for the exact same
// prefix is an error; nested prefixes are fine (most-specific wins on
// lookup).
func (db *DB) Insert(rec Record) error {
	if !rec.Prefix.IsValid() {
		return errors.New("geoip: invalid prefix")
	}
	if !rec.Prefix.Addr().Is4() {
		return errors.New("geoip: only IPv4 prefixes are supported")
	}
	if rec.Lat < -90 || rec.Lat > 90 || rec.Lon < -180 || rec.Lon > 180 {
		return fmt.Errorf("geoip: coordinates out of range (%v, %v)", rec.Lat, rec.Lon)
	}
	if db.root == nil {
		db.root = &trieNode{}
	}
	n := db.root
	addr := ipv4ToUint32(rec.Prefix.Addr())
	for i := 0; i < rec.Prefix.Bits(); i++ {
		bit := (addr >> (31 - uint(i))) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{}
		}
		n = n.children[bit]
	}
	if n.rec != nil {
		return fmt.Errorf("geoip: duplicate prefix %v", rec.Prefix)
	}
	r := rec
	n.rec = &r
	db.size++
	return nil
}

// Lookup returns the record of the longest prefix containing ip, and
// whether one exists.
func (db *DB) Lookup(ip netip.Addr) (Record, bool) {
	if db.root == nil || !ip.Is4() {
		return Record{}, false
	}
	addr := ipv4ToUint32(ip)
	n := db.root
	var best *Record
	for i := 0; i < 32; i++ {
		if n.rec != nil {
			best = n.rec
		}
		bit := (addr >> (31 - uint(i))) & 1
		if n.children[bit] == nil {
			break
		}
		n = n.children[bit]
	}
	if n.rec != nil {
		best = n.rec
	}
	if best == nil {
		return Record{}, false
	}
	return *best, true
}

// Len returns the number of records in the database.
func (db *DB) Len() int { return db.size }

// Records returns all records in depth-first prefix order.
func (db *DB) Records() []Record {
	var out []Record
	var walk func(*trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.rec != nil {
			out = append(out, *n.rec)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(db.root)
	return out
}

// ipv4ToUint32 converts an IPv4 netip.Addr to its 32-bit value.
func ipv4ToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// uint32ToIPv4 converts a 32-bit value to an IPv4 netip.Addr.
func uint32ToIPv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// PrefixAllocator hands out consecutive, non-overlapping IPv4 prefixes of
// a fixed length from a base prefix; the trace generators use it to give
// every synthetic destination city block its own address space.
type PrefixAllocator struct {
	next uint32
	end  uint32
	bits int
}

// NewPrefixAllocator allocates /bits prefixes from within base.
func NewPrefixAllocator(base netip.Prefix, bits int) (*PrefixAllocator, error) {
	if !base.IsValid() || !base.Addr().Is4() {
		return nil, errors.New("geoip: invalid base prefix")
	}
	if bits < base.Bits() || bits > 32 {
		return nil, fmt.Errorf("geoip: allocation size /%d outside base /%d", bits, base.Bits())
	}
	start := ipv4ToUint32(base.Masked().Addr())
	span := uint64(1) << uint(32-base.Bits())
	return &PrefixAllocator{
		next: start,
		end:  uint32(uint64(start) + span - 1),
		bits: bits,
	}, nil
}

// Next returns the next unallocated prefix.
func (a *PrefixAllocator) Next() (netip.Prefix, error) {
	step := uint32(1) << uint(32-a.bits)
	if a.next > a.end || a.end-a.next+1 < step {
		return netip.Prefix{}, errors.New("geoip: allocator exhausted")
	}
	p := netip.PrefixFrom(uint32ToIPv4(a.next), a.bits)
	a.next += step
	return p, nil
}
