package geoip

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsertAndLookup(t *testing.T) {
	db := &DB{}
	recs := []Record{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), City: "Frankfurt", Country: "DE", Lat: 50.1, Lon: 8.7},
		{Prefix: mustPrefix(t, "10.1.0.0/16"), City: "London", Country: "UK", Lat: 51.5, Lon: -0.1},
		{Prefix: mustPrefix(t, "10.1.2.0/24"), City: "Paris", Country: "FR", Lat: 48.9, Lon: 2.4},
	}
	for _, r := range recs {
		if err := db.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	cases := []struct {
		ip   string
		city string
	}{
		{"10.200.0.1", "Frankfurt"}, // only /8 matches
		{"10.1.99.1", "London"},     // /16 beats /8
		{"10.1.2.3", "Paris"},       // /24 beats both
	}
	for _, c := range cases {
		rec, ok := db.Lookup(netip.MustParseAddr(c.ip))
		if !ok {
			t.Fatalf("Lookup(%s): no match", c.ip)
		}
		if rec.City != c.city {
			t.Errorf("Lookup(%s) = %q, want %q", c.ip, rec.City, c.city)
		}
	}
	if _, ok := db.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("Lookup outside all prefixes should miss")
	}
}

func TestLookupEmptyDB(t *testing.T) {
	db := &DB{}
	if _, ok := db.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty DB should miss")
	}
}

func TestInsertRejections(t *testing.T) {
	db := &DB{}
	if err := db.Insert(Record{}); err == nil {
		t.Error("expected error for invalid prefix")
	}
	if err := db.Insert(Record{Prefix: netip.MustParsePrefix("2001:db8::/32")}); err == nil {
		t.Error("expected error for IPv6 prefix")
	}
	if err := db.Insert(Record{Prefix: mustPrefix(t, "1.0.0.0/8"), Lat: 91}); err == nil {
		t.Error("expected error for out-of-range latitude")
	}
	ok := Record{Prefix: mustPrefix(t, "1.0.0.0/8"), City: "x"}
	if err := db.Insert(ok); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(ok); err == nil {
		t.Error("expected error for duplicate prefix")
	}
}

func TestLookupIPv6Misses(t *testing.T) {
	db := &DB{}
	if err := db.Insert(Record{Prefix: mustPrefix(t, "0.0.0.0/0"), City: "any"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 lookup should miss an IPv4 DB")
	}
}

func TestDefaultRouteMatchesEverything(t *testing.T) {
	db := &DB{}
	if err := db.Insert(Record{Prefix: mustPrefix(t, "0.0.0.0/0"), City: "default"}); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d byte) bool {
		rec, ok := db.Lookup(netip.AddrFrom4([4]byte{a, b, c, d}))
		return ok && rec.City == "default"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLPMProperty(t *testing.T) {
	// Insert random non-duplicate prefixes; for random IPs, the result
	// must equal a brute-force longest-match scan.
	r := rand.New(rand.NewSource(42))
	db := &DB{}
	var recs []Record
	seen := map[string]bool{}
	for len(recs) < 200 {
		bits := 4 + r.Intn(25) // /4../28
		addr := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		p := netip.PrefixFrom(addr, bits).Masked()
		if seen[p.String()] {
			continue
		}
		seen[p.String()] = true
		rec := Record{Prefix: p, City: p.String()}
		if err := db.Insert(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	for trial := 0; trial < 2000; trial++ {
		ip := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		var want *Record
		for i := range recs {
			if recs[i].Prefix.Contains(ip) {
				if want == nil || recs[i].Prefix.Bits() > want.Prefix.Bits() {
					want = &recs[i]
				}
			}
		}
		got, ok := db.Lookup(ip)
		if want == nil {
			if ok {
				t.Fatalf("ip %v: unexpected match %v", ip, got.Prefix)
			}
			continue
		}
		if !ok || got.Prefix != want.Prefix {
			t.Fatalf("ip %v: got %v ok=%v, want %v", ip, got.Prefix, ok, want.Prefix)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := &DB{}
	recs := []Record{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), City: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68},
		{Prefix: mustPrefix(t, "172.16.0.0/12"), City: "New York", Country: "US", Lat: 40.71, Lon: -74.01},
	}
	for _, r := range recs {
		if err := db.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost records: %d vs %d", back.Len(), db.Len())
	}
	for _, want := range recs {
		got, ok := back.Lookup(want.Prefix.Addr())
		if !ok || got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"bogus,header,row,x,y\n",
		"prefix,city,country,lat,lon\nnot-a-prefix,a,b,1,2\n",
		"prefix,city,country,lat,lon\n1.0.0.0/8,a,b,not-a-float,2\n",
		"prefix,city,country,lat,lon\n1.0.0.0/8,a,b,1,not-a-float\n",
		"prefix,city,country,lat,lon\n1.0.0.0/8,a,b,1,2\n1.0.0.0/8,a,b,1,2\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPrefixAllocator(t *testing.T) {
	a, err := NewPrefixAllocator(mustPrefix(t, "10.0.0.0/8"), 24)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.Next()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != "10.0.0.0/24" || p2.String() != "10.0.1.0/24" {
		t.Fatalf("allocations = %v, %v", p1, p2)
	}
	if p1.Overlaps(p2) {
		t.Error("allocations overlap")
	}
}

func TestPrefixAllocatorExhaustion(t *testing.T) {
	a, err := NewPrefixAllocator(mustPrefix(t, "10.0.0.0/30"), 31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next(); err == nil {
		t.Error("expected exhaustion")
	}
}

func TestPrefixAllocatorErrors(t *testing.T) {
	if _, err := NewPrefixAllocator(netip.Prefix{}, 24); err == nil {
		t.Error("expected error for invalid base")
	}
	if _, err := NewPrefixAllocator(mustPrefix(t, "10.0.0.0/24"), 8); err == nil {
		t.Error("expected error for size above base")
	}
	if _, err := NewPrefixAllocator(mustPrefix(t, "10.0.0.0/24"), 33); err == nil {
		t.Error("expected error for size > 32")
	}
}
