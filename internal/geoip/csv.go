package geoip

import (
	"encoding/csv"
	"fmt"
	"io"
	"net/netip"
	"strconv"
)

// csvHeader is the column layout of the CSV interchange format.
var csvHeader = []string{"prefix", "city", "country", "lat", "lon"}

// WriteCSV serializes the database in prefix order.
func (db *DB) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, rec := range db.Records() {
		row := []string{
			rec.Prefix.String(),
			rec.City,
			rec.Country,
			strconv.FormatFloat(rec.Lat, 'g', -1, 64),
			strconv.FormatFloat(rec.Lon, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a database from the CSV interchange format.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("geoip: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("geoip: bad header column %d: %q", i, header[i])
		}
	}
	db := &DB{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("geoip: line %d: %w", line, err)
		}
		prefix, err := netip.ParsePrefix(row[0])
		if err != nil {
			return nil, fmt.Errorf("geoip: line %d: %w", line, err)
		}
		lat, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("geoip: line %d: lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("geoip: line %d: lon: %w", line, err)
		}
		rec := Record{Prefix: prefix, City: row[1], Country: row[2], Lat: lat, Lon: lon}
		if err := db.Insert(rec); err != nil {
			return nil, fmt.Errorf("geoip: line %d: %w", line, err)
		}
	}
	return db, nil
}
