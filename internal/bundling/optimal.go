package bundling

import (
	"fmt"
	"math"
	"slices"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/optimize"
)

// Optimal is the paper's optimal bundling strategy: the partition of flows
// into at most b bundles that maximizes total ISP profit. The paper frames
// this as an exhaustive search ("more than a billion ways to divide one
// hundred traffic flows into six pricing bundles"); here it is computed
// exactly in O(n²·b) by a dynamic program, exploiting structure both
// demand models share:
//
//   - CED: a bundle priced by Eq. 5 earns k(α)·(Σv^α)·C^{1−α}, with C the
//     v^α-weighted mean cost, so total profit is a sum of per-bundle terms
//     of the form weight·g(weighted mean cost) with g(C) = C^{1−α} convex.
//   - Logit: at the equal-markup optimum (Eq. 9), total profit is a
//     strictly increasing function of A = Σ_b (Σ_i e^{αv_i})·e^{−α·C_b},
//     again weight·g(weighted mean) per bundle with g(C) = e^{−αC} convex.
//
// For such objectives an optimal partition is contiguous in cost order
// (cross-checked against exhaustive set-partition enumeration in the
// optimize package tests), which the DP searches exactly. Both block-value
// families further satisfy the concave-Monge condition, so the default
// solver is the O(n·b·log n) divide-and-conquer monotone DP
// (optimize.ContiguousDPMonotone); set Quadratic to force the O(n²·b)
// reference DP instead.
type Optimal struct {
	// Quadratic opts into the O(n²·b) reference DP instead of the
	// divide-and-conquer monotone solver. The two return identical
	// partitions on the supported objectives (property-tested); the knob
	// exists for cross-checking and for debugging suspected
	// monotonicity violations.
	Quadratic bool
}

// Name implements Strategy.
func (Optimal) Name() string { return "optimal" }

// Bundle implements Strategy.
func (o Optimal) Bundle(flows []econ.Flow, model econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	order := costOrder(flows)
	var val optimize.BlockValue
	switch m := model.(type) {
	case econ.CED:
		val = cedBlockValue(flows, order, m.Alpha)
	case econ.Logit:
		val = logitBlockValue(flows, order, m.Alpha)
	default:
		return nil, fmt.Errorf("bundling: optimal strategy does not support model %q", model.Name())
	}
	solve := optimize.ContiguousDPMonotone
	if o.Quadratic {
		solve = optimize.ContiguousDP
	}
	blocks, _, err := solve(len(flows), b, val)
	if err != nil {
		return nil, err
	}
	return optimize.BlocksToPartition(blocks, order), nil
}

// costOrder returns flow indices sorted by ascending cost.
func costOrder(flows []econ.Flow) []int {
	order := make([]int, len(flows))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		switch ca, cb := flows[a].Cost, flows[b].Cost; {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		}
		return 0
	})
	return order
}

// cedBlockValue returns an O(1) block profit for the CED model using
// prefix sums over the cost-sorted order: a block's optimal-price profit
// is k(α)·V·C^{1−α} with V = Σv^α and C = Σc·v^α / V. The constant k(α)
// is shared by all blocks and only shifts the DP objective by a positive
// factor, but is included so the DP total equals real profit.
func cedBlockValue(flows []econ.Flow, order []int, alpha float64) optimize.BlockValue {
	n := len(order)
	prefV := make([]float64, n+1)  // Σ v^α
	prefCV := make([]float64, n+1) // Σ c·v^α
	for k, i := range order {
		va := math.Pow(flows[i].Valuation, alpha)
		prefV[k+1] = prefV[k] + va
		prefCV[k+1] = prefCV[k] + flows[i].Cost*va
	}
	// k(α) = (α/(α−1))^{−α} / (α−1): profit of a bundle at the Eq. 5
	// price P = α·C/(α−1) is V·P^{−α}(P−C) = V·C^{1−α}·k(α).
	kAlpha := math.Pow(alpha/(alpha-1), -alpha) / (alpha - 1)
	// A zero-cost block makes C^{1−α} → +Inf for α > 1, and one +Inf block
	// poisons every DP total it participates in (Inf−Inf → NaN during
	// comparisons of candidate splits). Cap block values so a zero-cost
	// block is maximally attractive but sums of n+1 of them stay finite and
	// ordered.
	maxBlockValue := math.MaxFloat64 / float64(n+1)
	return func(lo, hi int) float64 {
		v := prefV[hi] - prefV[lo]
		cv := prefCV[hi] - prefCV[lo]
		c := cv / v
		val := kAlpha * v * math.Pow(c, 1-alpha)
		if val > maxBlockValue || math.IsNaN(val) {
			return maxBlockValue
		}
		return val
	}
}

// logitBlockValue returns the O(1) block attractiveness
// W·e^{−α·C} with W = Σ e^{α(v_i − vmax)} and C = Σ c_i·e^{α(v_i−vmax)}/W.
// Valuations are shifted by their maximum before exponentiation; the shift
// rescales every block's W by the same positive factor and leaves C
// unchanged, so the DP's argmax — and hence the selected partition — is
// unaffected while the sums stay finite.
func logitBlockValue(flows []econ.Flow, order []int, alpha float64) optimize.BlockValue {
	n := len(order)
	vmax := math.Inf(-1)
	for _, f := range flows {
		if f.Valuation > vmax {
			vmax = f.Valuation
		}
	}
	prefW := make([]float64, n+1)  // Σ e^{α(v−vmax)}
	prefCW := make([]float64, n+1) // Σ c·e^{α(v−vmax)}
	for k, i := range order {
		w := math.Exp(alpha * (flows[i].Valuation - vmax))
		prefW[k+1] = prefW[k] + w
		prefCW[k+1] = prefCW[k] + flows[i].Cost*w
	}
	return func(lo, hi int) float64 {
		w := prefW[hi] - prefW[lo]
		if w <= 0 {
			// Every member underflowed e^{α(v−vmax)}; such a block
			// attracts essentially no demand.
			return 0
		}
		c := (prefCW[hi] - prefCW[lo]) / w
		return w * math.Exp(-alpha*c)
	}
}
