package bundling

import (
	"fmt"

	"tieredpricing/internal/econ"
)

// ClassAware wraps another strategy with the guard §4.3.1 introduces for
// the destination-type cost model: flows from different traffic classes
// ("on-net" vs "off-net") are never grouped into the same bundle, except
// when b is smaller than the number of classes present (a single blended
// bundle is then unavoidable and matches the b = 1 baseline).
//
// Bundles are allocated to classes proportionally to each class's share
// of the inner strategy's weights — approximated here by demand share —
// with every class getting at least one bundle.
type ClassAware struct {
	// Inner is the strategy applied within each class; the paper pairs
	// this guard with ProfitWeighted.
	Inner Strategy
}

// Name implements Strategy.
func (s ClassAware) Name() string { return "class-aware " + s.Inner.Name() }

// Bundle implements Strategy.
func (s ClassAware) Bundle(flows []econ.Flow, model econ.Model, b int) ([][]int, error) {
	if s.Inner == nil {
		return nil, fmt.Errorf("bundling: class-aware strategy needs an inner strategy")
	}
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}

	// Group flow indices by class, preserving first-seen class order.
	type class struct {
		idx    []int
		demand float64
	}
	byClass := map[bool]*class{}
	var classOrder []bool
	for i, f := range flows {
		c, ok := byClass[f.OnNet]
		if !ok {
			c = &class{}
			byClass[f.OnNet] = c
			classOrder = append(classOrder, f.OnNet)
		}
		c.idx = append(c.idx, i)
		c.demand += f.Demand
	}

	if len(classOrder) == 1 || b < len(classOrder) {
		// Single class, or too few bundles to separate classes: defer to
		// the inner strategy on the whole flow set.
		return s.Inner.Bundle(flows, model, b)
	}

	// Allocate bundles: one per class, remainder by demand share
	// (largest-remainder method).
	alloc := make([]int, len(classOrder))
	for i := range alloc {
		alloc[i] = 1
	}
	remaining := b - len(classOrder)
	var total float64
	for _, key := range classOrder {
		total += byClass[key].demand
	}
	// Distribute the remaining bundles one at a time to the class with
	// the largest demand per already-allocated bundle.
	for r := 0; r < remaining; r++ {
		best, bestScore := -1, -1.0
		for i, key := range classOrder {
			// A class cannot use more bundles than it has flows.
			if alloc[i] >= len(byClass[key].idx) {
				continue
			}
			score := byClass[key].demand / total / float64(alloc[i])
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}

	var out [][]int
	for i, key := range classOrder {
		c := byClass[key]
		sub := make([]econ.Flow, len(c.idx))
		for j, fi := range c.idx {
			sub[j] = flows[fi]
		}
		parts, err := s.Inner.Bundle(sub, model, alloc[i])
		if err != nil {
			return nil, err
		}
		for _, block := range parts {
			mapped := make([]int, len(block))
			for j, sj := range block {
				mapped[j] = c.idx[sj]
			}
			out = append(out, mapped)
		}
	}
	return out, nil
}
