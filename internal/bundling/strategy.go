// Package bundling implements the six flow-bundling strategies of §4.2.1
// of the paper — optimal, demand-weighted, cost-weighted, profit-weighted,
// cost division and index division — plus the class-aware variant of the
// profit-weighted heuristic that §4.3.1 introduces for the destination-type
// cost model. A strategy groups an ISP's traffic flows into at most B
// pricing tiers; the pricing package then computes each tier's
// profit-maximizing price.
package bundling

import (
	"errors"
	"fmt"
	"slices"

	"tieredpricing/internal/econ"
)

// Strategy groups flows into at most b non-empty bundles. Implementations
// must return a valid partition: disjoint index sets covering every flow.
// Strategies may consult the demand model (e.g. for potential-profit
// weights); they must not mutate the flows.
type Strategy interface {
	// Name is the strategy's identifier as used in the paper's figures
	// (e.g. "profit-weighted").
	Name() string
	// Bundle partitions flows into at most b bundles.
	Bundle(flows []econ.Flow, model econ.Model, b int) ([][]int, error)
}

// ErrNeedBundles is returned when b < 1.
var ErrNeedBundles = errors.New("bundling: need at least one bundle")

// All returns one instance of every strategy, in the paper's order, with
// the class-aware profit-weighted variant appended.
func All() []Strategy {
	return []Strategy{
		Optimal{}, ProfitWeighted{}, CostWeighted{}, DemandWeighted{},
		CostDivision{}, IndexDivision{},
		ClassAware{Inner: ProfitWeighted{}},
	}
}

// ByName resolves a strategy by its Name() identifier (the CLI and the
// serving daemon both select strategies by flag).
func ByName(name string) (Strategy, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("bundling: unknown strategy %q", name)
}

// validateInput performs the checks shared by all strategies.
func validateInput(flows []econ.Flow, b int) error {
	if b < 1 {
		return ErrNeedBundles
	}
	return econ.ValidateFlows(flows)
}

// sortIndexesDesc returns flow indices sorted by descending weight,
// breaking ties by index for determinism.
func sortIndexesDesc(weights []float64) []int {
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		switch wa, wb := weights[a], weights[b]; {
		case wa > wb:
			return -1
		case wa < wb:
			return 1
		}
		return 0
	})
	return idx
}

// tokenBucket implements the paper's weighting algorithm (§4.2.1,
// "demand-weighted"): the total token budget T = Σ w_i is split evenly
// across b bundles; flows are visited in decreasing weight order and
// assigned to the first bundle that is empty or still has budget, with
// deficits carried into the next bundle. High-weight flows get bundles of
// their own; low-weight flows share the tail bundles.
func tokenBucket(weights []float64, b int) ([][]int, error) {
	n := len(weights)
	if b > n {
		b = n
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("bundling: weight %d is non-positive (%v)", i, w)
		}
		total += w
	}
	budgets := make([]float64, b)
	for j := range budgets {
		budgets[j] = total / float64(b)
	}
	bundles := make([][]int, b)
	j := 0
	for _, i := range sortIndexesDesc(weights) {
		// Advance to the first bundle that is empty or has budget left.
		for j < b-1 && len(bundles[j]) > 0 && budgets[j] <= 0 {
			j++
		}
		bundles[j] = append(bundles[j], i)
		budgets[j] -= weights[i]
		if budgets[j] < 0 && j+1 < b {
			// Carry the deficit into the next bundle.
			budgets[j+1] += budgets[j]
			budgets[j] = 0
			if len(bundles[j]) > 0 {
				j++
			}
		}
	}
	return dropEmpty(bundles), nil
}

// dropEmpty removes empty bundles, preserving order.
func dropEmpty(bundles [][]int) [][]int {
	out := bundles[:0]
	for _, b := range bundles {
		if len(b) > 0 {
			out = append(out, b)
		}
	}
	return out
}

// DemandWeighted is the paper's demand-weighted strategy: token-bucket
// grouping with weights equal to observed flow demands q_i. It isolates
// high-demand flows in their own bundles regardless of cost.
type DemandWeighted struct{}

// Name implements Strategy.
func (DemandWeighted) Name() string { return "demand-weighted" }

// Bundle implements Strategy.
func (DemandWeighted) Bundle(flows []econ.Flow, _ econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	w := make([]float64, len(flows))
	for i, f := range flows {
		w[i] = f.Demand
	}
	return tokenBucket(w, b)
}

// CostWeighted is the paper's cost-weighted strategy: token-bucket
// grouping with weights 1/c_i, which gives cheap (local) flows dedicated
// bundles and lumps expensive long-haul flows together. The paper notes
// that current ISP practice — regional pricing, backplane peering — maps
// closely to this strategy with two or three bundles.
type CostWeighted struct{}

// Name implements Strategy.
func (CostWeighted) Name() string { return "cost-weighted" }

// Bundle implements Strategy.
func (CostWeighted) Bundle(flows []econ.Flow, _ econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	w := make([]float64, len(flows))
	for i, f := range flows {
		w[i] = 1 / f.Cost
	}
	return tokenBucket(w, b)
}

// ProfitWeighted is the paper's profit-weighted strategy: token-bucket
// grouping with weights equal to each flow's potential profit (Eq. 12 for
// CED, Eq. 13 for logit), accounting for demand and cost together. The
// paper finds it almost as good as optimal bundling.
type ProfitWeighted struct{}

// Name implements Strategy.
func (ProfitWeighted) Name() string { return "profit-weighted" }

// Bundle implements Strategy.
func (ProfitWeighted) Bundle(flows []econ.Flow, model econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	w, err := model.PotentialProfits(flows)
	if err != nil {
		return nil, err
	}
	return tokenBucket(w, b)
}

// CostDivision is the paper's cost-division strategy: the cost axis from
// zero to the most expensive flow is cut into b equal-width ranges and
// each flow lands in the range containing its cost. Ranges containing no
// flows yield no bundle, so fewer than b bundles may be returned.
type CostDivision struct{}

// Name implements Strategy.
func (CostDivision) Name() string { return "cost division" }

// Bundle implements Strategy.
func (CostDivision) Bundle(flows []econ.Flow, _ econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	maxC := 0.0
	for _, f := range flows {
		if f.Cost > maxC {
			maxC = f.Cost
		}
	}
	width := maxC / float64(b)
	bundles := make([][]int, b)
	for i, f := range flows {
		k := int(f.Cost / width)
		if k >= b { // the most expensive flow itself
			k = b - 1
		}
		bundles[k] = append(bundles[k], i)
	}
	return dropEmpty(bundles), nil
}

// IndexDivision is the paper's index-division strategy: flows are ranked
// by cost and the rank axis is cut into b equal-count groups, so every
// bundle holds (nearly) the same number of flows regardless of how costs
// are distributed.
type IndexDivision struct{}

// Name implements Strategy.
func (IndexDivision) Name() string { return "index division" }

// Bundle implements Strategy.
func (IndexDivision) Bundle(flows []econ.Flow, _ econ.Model, b int) ([][]int, error) {
	if err := validateInput(flows, b); err != nil {
		return nil, err
	}
	n := len(flows)
	if b > n {
		b = n
	}
	costs := make([]float64, n)
	for i, f := range flows {
		costs[i] = f.Cost
	}
	idx := sortIndexesDesc(costs)
	// Reverse to ascending cost so bundle 0 is the cheapest tier.
	for l, r := 0, n-1; l < r; l, r = l+1, r-1 {
		idx[l], idx[r] = idx[r], idx[l]
	}
	bundles := make([][]int, 0, b)
	for k := 0; k < b; k++ {
		lo := k * n / b
		hi := (k + 1) * n / b
		if hi > lo {
			bundles = append(bundles, append([]int(nil), idx[lo:hi]...))
		}
	}
	return bundles, nil
}
