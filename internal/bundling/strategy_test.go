package bundling

import (
	"math"
	"math/rand"
	"testing"

	"tieredpricing/internal/econ"
)

// fitFlows builds a fitted flow set for strategy tests: random demands and
// distances run through the model's own fitting pipeline so valuations and
// costs are mutually consistent.
func fitFlows(t *testing.T, m econ.Model, n int, seed int64, p0 float64) []econ.Flow {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	demands := make([]float64, n)
	rel := make([]float64, n)
	for i := range demands {
		demands[i] = 0.5 + r.Float64()*30
		rel[i] = 0.2 + r.Float64()*8
	}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		t.Fatal(err)
	}
	gamma, _, err := m.CalibrateScale(vals, rel, p0)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]econ.Flow, n)
	for i := range flows {
		flows[i] = econ.Flow{
			ID:        "f",
			Demand:    demands[i],
			Distance:  rel[i],
			Valuation: vals[i],
			Cost:      gamma * rel[i],
			OnNet:     i%2 == 0,
		}
	}
	return flows
}

// checkValidPartition asserts p is a disjoint cover of 0..n-1 with at most
// b non-empty blocks.
func checkValidPartition(t *testing.T, n, b int, p [][]int) {
	t.Helper()
	if len(p) == 0 || len(p) > b {
		t.Fatalf("got %d bundles, want 1..%d", len(p), b)
	}
	seen := make([]bool, n)
	for _, block := range p {
		if len(block) == 0 {
			t.Fatalf("empty bundle in %v", p)
		}
		for _, i := range block {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("invalid index %d in %v", i, p)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("flow %d unassigned in %v", i, p)
		}
	}
}

func allStrategies() []Strategy {
	return []Strategy{
		Optimal{},
		DemandWeighted{},
		CostWeighted{},
		ProfitWeighted{},
		CostDivision{},
		IndexDivision{},
		ClassAware{Inner: ProfitWeighted{}},
	}
}

func TestAllStrategiesReturnValidPartitions(t *testing.T) {
	models := []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	}
	for _, m := range models {
		for seed := int64(0); seed < 5; seed++ {
			flows := fitFlows(t, m, 20, seed, 20)
			for _, s := range allStrategies() {
				for b := 1; b <= 8; b++ {
					p, err := s.Bundle(flows, m, b)
					if err != nil {
						t.Fatalf("%s/%s b=%d: %v", m.Name(), s.Name(), b, err)
					}
					checkValidPartition(t, len(flows), b, p)
				}
			}
		}
	}
}

func TestStrategiesRejectBadInput(t *testing.T) {
	m := econ.CED{Alpha: 2}
	flows := fitFlows(t, m, 4, 1, 20)
	for _, s := range allStrategies() {
		if _, err := s.Bundle(flows, m, 0); err == nil {
			t.Errorf("%s: expected error for b = 0", s.Name())
		}
		if _, err := s.Bundle(nil, m, 2); err == nil {
			t.Errorf("%s: expected error for empty flows", s.Name())
		}
	}
}

func TestTokenBucketPaperExample(t *testing.T) {
	// §4.2.1: demands 30, 10, 10, 10 into two bundles must yield
	// {30} and {10, 10, 10}.
	p, err := tokenBucket([]float64{30, 10, 10, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("got %d bundles: %v", len(p), p)
	}
	if len(p[0]) != 1 || p[0][0] != 0 {
		t.Fatalf("bundle 0 = %v, want [0]", p[0])
	}
	if len(p[1]) != 3 {
		t.Fatalf("bundle 1 = %v, want the three small flows", p[1])
	}
}

func TestTokenBucketDeficitCarry(t *testing.T) {
	// One giant flow exhausts several bundle budgets; the carry rule must
	// still leave later bundles usable for the remaining flows.
	p, err := tokenBucket([]float64{97, 1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkFlat := func() []int {
		var all []int
		for _, b := range p {
			all = append(all, b...)
		}
		return all
	}
	if len(checkFlat()) != 4 {
		t.Fatalf("flows lost: %v", p)
	}
	if p[0][0] != 0 || len(p[0]) != 1 {
		t.Fatalf("giant flow should sit alone in bundle 0: %v", p)
	}
}

func TestTokenBucketRejectsNonPositiveWeight(t *testing.T) {
	if _, err := tokenBucket([]float64{1, 0}, 2); err == nil {
		t.Error("expected error for zero weight")
	}
}

func TestTokenBucketMoreBundlesThanFlows(t *testing.T) {
	p, err := tokenBucket([]float64{5, 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("got %d bundles, want 2", len(p))
	}
}

func TestCostWeightedIsolatesCheapFlows(t *testing.T) {
	// Cheap (local) flows should receive dedicated bundles.
	m := econ.CED{Alpha: 1.5}
	flows := []econ.Flow{
		{ID: "local", Demand: 1, Valuation: 10, Cost: 0.1},
		{ID: "far1", Demand: 1, Valuation: 10, Cost: 10},
		{ID: "far2", Demand: 1, Valuation: 10, Cost: 11},
		{ID: "far3", Demand: 1, Valuation: 10, Cost: 12},
	}
	p, err := CostWeighted{}.Bundle(flows, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p[0]) != 1 || p[0][0] != 0 {
		t.Fatalf("local flow should sit alone in the first bundle: %v", p)
	}
}

func TestCostDivisionPaperExample(t *testing.T) {
	// §4.2.1: most expensive flow costs $10, two bundles ⇒ flows costing
	// $0–4.99 in the first, $5–10 in the second.
	m := econ.CED{Alpha: 2}
	flows := []econ.Flow{
		{ID: "a", Demand: 1, Valuation: 1, Cost: 1},
		{ID: "b", Demand: 1, Valuation: 1, Cost: 4.99},
		{ID: "c", Demand: 1, Valuation: 1, Cost: 5},
		{ID: "d", Demand: 1, Valuation: 1, Cost: 10},
	}
	p, err := CostDivision{}.Bundle(flows, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("got %d bundles: %v", len(p), p)
	}
	if len(p[0]) != 2 || p[0][0] != 0 || p[0][1] != 1 {
		t.Fatalf("low range = %v, want [0 1]", p[0])
	}
	if len(p[1]) != 2 || p[1][0] != 2 || p[1][1] != 3 {
		t.Fatalf("high range = %v, want [2 3]", p[1])
	}
}

func TestCostDivisionDropsEmptyRanges(t *testing.T) {
	// Costs clustered at the top: the low ranges are empty and must be
	// dropped rather than returned as empty bundles.
	m := econ.CED{Alpha: 2}
	flows := []econ.Flow{
		{ID: "a", Demand: 1, Valuation: 1, Cost: 9},
		{ID: "b", Demand: 1, Valuation: 1, Cost: 10},
	}
	p, err := CostDivision{}.Bundle(flows, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPartition(t, 2, 5, p)
}

func TestIndexDivisionEqualCounts(t *testing.T) {
	m := econ.CED{Alpha: 1.2}
	flows := fitFlows(t, m, 12, 7, 20)
	p, err := IndexDivision{}.Bundle(flows, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("got %d bundles", len(p))
	}
	for _, block := range p {
		if len(block) != 3 {
			t.Fatalf("unequal counts: %v", p)
		}
	}
	// Blocks must be ordered by ascending cost.
	maxPrev := -1.0
	for _, block := range p {
		for _, i := range block {
			if flows[i].Cost < maxPrev {
				t.Fatalf("index division not rank-ordered: %v", p)
			}
		}
		for _, i := range block {
			if flows[i].Cost > maxPrev {
				maxPrev = flows[i].Cost
			}
		}
	}
}

func TestClassAwareNeverMixesClasses(t *testing.T) {
	for _, m := range []econ.Model{econ.CED{Alpha: 1.1}, econ.Logit{Alpha: 1.1, S0: 0.2}} {
		flows := fitFlows(t, m, 16, 3, 20)
		s := ClassAware{Inner: ProfitWeighted{}}
		for b := 2; b <= 6; b++ {
			p, err := s.Bundle(flows, m, b)
			if err != nil {
				t.Fatal(err)
			}
			checkValidPartition(t, len(flows), b, p)
			for _, block := range p {
				onNet := flows[block[0]].OnNet
				for _, i := range block {
					if flows[i].OnNet != onNet {
						t.Fatalf("%s b=%d: bundle mixes classes: %v", m.Name(), b, block)
					}
				}
			}
		}
	}
}

func TestClassAwareSingleBundleFallsBack(t *testing.T) {
	m := econ.CED{Alpha: 1.1}
	flows := fitFlows(t, m, 8, 9, 20)
	p, err := ClassAware{Inner: ProfitWeighted{}}.Bundle(flows, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || len(p[0]) != 8 {
		t.Fatalf("b=1 should yield one blended bundle: %v", p)
	}
}

func TestClassAwareNilInner(t *testing.T) {
	m := econ.CED{Alpha: 1.1}
	flows := fitFlows(t, m, 4, 9, 20)
	if _, err := (ClassAware{}).Bundle(flows, m, 2); err == nil {
		t.Error("expected error for nil inner strategy")
	}
}

func profitOf(t *testing.T, m econ.Model, flows []econ.Flow, p [][]int) float64 {
	t.Helper()
	prices, err := m.PriceBundles(flows, p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := m.Profit(flows, p, prices)
	if err != nil {
		t.Fatal(err)
	}
	return pi
}

func TestOptimalDominatesHeuristics(t *testing.T) {
	models := []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	}
	heuristics := []Strategy{
		DemandWeighted{}, CostWeighted{}, ProfitWeighted{},
		CostDivision{}, IndexDivision{},
	}
	for _, m := range models {
		for seed := int64(0); seed < 4; seed++ {
			flows := fitFlows(t, m, 30, seed, 20)
			for b := 1; b <= 6; b++ {
				pOpt, err := Optimal{}.Bundle(flows, m, b)
				if err != nil {
					t.Fatal(err)
				}
				piOpt := profitOf(t, m, flows, pOpt)
				for _, h := range heuristics {
					ph, err := h.Bundle(flows, m, b)
					if err != nil {
						t.Fatal(err)
					}
					pi := profitOf(t, m, flows, ph)
					if pi > piOpt+1e-6*math.Abs(piOpt) {
						t.Fatalf("%s seed %d b=%d: %s profit %v beats optimal %v",
							m.Name(), seed, b, h.Name(), pi, piOpt)
					}
				}
			}
		}
	}
}

func TestOptimalUnsupportedModel(t *testing.T) {
	flows := fitFlows(t, econ.CED{Alpha: 2}, 4, 1, 20)
	if _, err := (Optimal{}).Bundle(flows, fakeModel{}, 2); err == nil {
		t.Error("expected error for unsupported model")
	}
}

// fakeModel is a stub Model used to exercise Optimal's type switch.
type fakeModel struct{ econ.CED }

func (fakeModel) Name() string { return "fake" }

func TestByName(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if got.Name() != s.Name() {
			t.Errorf("ByName(%q) returned %q", s.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown strategy")
	}
}
