package bundling

import (
	"math"
	"testing"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/optimize"
)

// TestOptimalMatchesExhaustiveSearch is the end-to-end validation of the
// DP-based optimal strategy: on small flow sets, enumerate EVERY set
// partition, price each with the real model, and confirm the DP's
// partition earns the maximum profit. This exercises the full chain the
// paper calls "exhaustive search" — for the CED closed form and for the
// logit equal-markup fixed point via its profit-monotone surrogate.
func TestOptimalMatchesExhaustiveSearch(t *testing.T) {
	models := []econ.Model{
		econ.CED{Alpha: 1.3},
		econ.CED{Alpha: 3.0},
		econ.Logit{Alpha: 0.8, S0: 0.2},
		econ.Logit{Alpha: 1.5, S0: 0.35},
	}
	for _, m := range models {
		for seed := int64(0); seed < 6; seed++ {
			flows := fitFlows(t, m, 7, seed, 20)
			for _, b := range []int{2, 3} {
				bestExact := math.Inf(-1)
				err := optimize.EnumeratePartitions(len(flows), b, func(p [][]int) bool {
					prices, err := m.PriceBundles(flows, p)
					if err != nil {
						t.Fatal(err)
					}
					pi, err := m.Profit(flows, p, prices)
					if err != nil {
						t.Fatal(err)
					}
					if pi > bestExact {
						bestExact = pi
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				pOpt, err := Optimal{}.Bundle(flows, m, b)
				if err != nil {
					t.Fatal(err)
				}
				piOpt := profitOf(t, m, flows, pOpt)
				if piOpt < bestExact-1e-6*math.Abs(bestExact) {
					t.Fatalf("%s seed %d b=%d: DP profit %v < exhaustive %v",
						m.Name(), seed, b, piOpt, bestExact)
				}
			}
		}
	}
}

func TestOptimalSingleBundleIsWholeSet(t *testing.T) {
	m := econ.CED{Alpha: 1.1}
	flows := fitFlows(t, m, 10, 2, 20)
	p, err := Optimal{}.Bundle(flows, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || len(p[0]) != 10 {
		t.Fatalf("b=1 optimal = %v, want one full bundle", p)
	}
}

func TestOptimalProfitMonotoneInBundles(t *testing.T) {
	// More allowed bundles can never hurt the optimum.
	for _, m := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := fitFlows(t, m, 25, 13, 20)
		prev := math.Inf(-1)
		for b := 1; b <= 8; b++ {
			p, err := Optimal{}.Bundle(flows, m, b)
			if err != nil {
				t.Fatal(err)
			}
			pi := profitOf(t, m, flows, p)
			if pi < prev-1e-6*math.Abs(prev) {
				t.Fatalf("%s: optimal profit fell from %v (b=%d) to %v (b=%d)",
					m.Name(), prev, b-1, pi, b)
			}
			prev = pi
		}
	}
}

func TestOptimalApproachesMaxProfit(t *testing.T) {
	// With as many bundles as flows, the optimal bundling must achieve
	// the per-flow pricing maximum.
	for _, m := range []econ.Model{
		econ.CED{Alpha: 1.2},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := fitFlows(t, m, 12, 21, 20)
		p, err := Optimal{}.Bundle(flows, m, len(flows))
		if err != nil {
			t.Fatal(err)
		}
		pi := profitOf(t, m, flows, p)
		max, err := m.MaxProfit(flows)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pi-max) > 1e-6*math.Abs(max) {
			t.Fatalf("%s: optimal with n bundles %v != max %v", m.Name(), pi, max)
		}
	}
}

func TestCEDBlockValueMatchesRealProfit(t *testing.T) {
	// The DP's O(1) block value must equal the profit of pricing that
	// block with Eq. 5.
	m := econ.CED{Alpha: 1.4}
	flows := fitFlows(t, m, 9, 31, 20)
	order := costOrder(flows)
	val := cedBlockValue(flows, order, m.Alpha)
	for lo := 0; lo < len(flows); lo++ {
		for hi := lo + 1; hi <= len(flows); hi++ {
			block := order[lo:hi]
			price, err := m.BundlePrice(flows, block)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			for _, i := range block {
				want += econ.CEDFlowProfit(flows[i].Valuation, price, flows[i].Cost, m.Alpha)
			}
			got := val(lo, hi)
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("block [%d,%d): value %v != profit %v", lo, hi, got, want)
			}
		}
	}
}

// TestOptimalSolversAgreeOnFittedFlows pins the default monotone solver to
// the quadratic reference on realistic fitted flow sets across both demand
// models: the selected partitions must coincide, not merely their profits.
func TestOptimalSolversAgreeOnFittedFlows(t *testing.T) {
	models := []econ.Model{
		econ.CED{Alpha: 1.3},
		econ.CED{Alpha: 3.0},
		econ.Logit{Alpha: 0.8, S0: 0.2},
		econ.Logit{Alpha: 1.5, S0: 0.35},
	}
	for _, m := range models {
		for seed := int64(0); seed < 4; seed++ {
			flows := fitFlows(t, m, 40, seed, 20)
			for _, b := range []int{1, 2, 4, 7, 40} {
				pMono, err := Optimal{}.Bundle(flows, m, b)
				if err != nil {
					t.Fatal(err)
				}
				pQuad, err := Optimal{Quadratic: true}.Bundle(flows, m, b)
				if err != nil {
					t.Fatal(err)
				}
				piMono := profitOf(t, m, flows, pMono)
				piQuad := profitOf(t, m, flows, pQuad)
				if math.Abs(piMono-piQuad) > 1e-9*(1+math.Abs(piQuad)) {
					t.Fatalf("%s seed %d b=%d: monotone profit %v != quadratic %v",
						m.Name(), seed, b, piMono, piQuad)
				}
				if !partitionsEqual(pMono, pQuad) {
					t.Fatalf("%s seed %d b=%d: monotone partition %v != quadratic %v",
						m.Name(), seed, b, pMono, pQuad)
				}
			}
		}
	}
}

func partitionsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return false
		}
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				return false
			}
		}
	}
	return true
}

// TestOptimalLogitExtremeValuationSpread drives the logit block weights
// into underflow (e^{α(v−vmax)} → 0 for all but the top flows) and checks
// that both solvers still produce valid partitions with equal profit.
func TestOptimalLogitExtremeValuationSpread(t *testing.T) {
	m := econ.Logit{Alpha: 1.5, S0: 0.2}
	n := 20
	flows := make([]econ.Flow, n)
	for i := range flows {
		flows[i] = econ.Flow{
			Valuation: 1 + float64(i)*60, // spread 1 .. 1141: weights underflow below the top
			Cost:      0.5 + float64((i*7)%n)*0.3,
			Demand:    1,
		}
	}
	for _, b := range []int{2, 3, 5} {
		pMono, err := Optimal{}.Bundle(flows, m, b)
		if err != nil {
			t.Fatal(err)
		}
		pQuad, err := Optimal{Quadratic: true}.Bundle(flows, m, b)
		if err != nil {
			t.Fatal(err)
		}
		piMono := profitOf(t, m, flows, pMono)
		piQuad := profitOf(t, m, flows, pQuad)
		if math.IsNaN(piMono) || math.IsInf(piMono, 0) {
			t.Fatalf("b=%d: monotone profit is %v", b, piMono)
		}
		if math.Abs(piMono-piQuad) > 1e-9*(1+math.Abs(piQuad)) {
			t.Fatalf("b=%d: monotone profit %v != quadratic %v", b, piMono, piQuad)
		}
	}
}

// TestCEDBlockValueZeroCost is the regression test for the zero-cost
// guard: with α > 1, a block of zero-cost flows used to evaluate to
// k(α)·V·0^{1−α} = +Inf, and a single infinite block silently poisons the
// DP totals (Inf−Inf → NaN in split comparisons). Flow validation rejects
// cost ≤ 0 at the API boundary, but fitted or streamed inputs reach the
// block value through internal callers, so the value itself must stay
// finite. The zero-cost block must still dominate any positive-cost block.
func TestCEDBlockValueZeroCost(t *testing.T) {
	flows := []econ.Flow{
		{Valuation: 10, Cost: 0, Demand: 1},
		{Valuation: 8, Cost: 0, Demand: 1},
		{Valuation: 9, Cost: 2, Demand: 1},
		{Valuation: 7, Cost: 5, Demand: 1},
	}
	order := costOrder(flows)
	val := cedBlockValue(flows, order, 1.7)
	for lo := 0; lo < len(flows); lo++ {
		for hi := lo + 1; hi <= len(flows); hi++ {
			v := val(lo, hi)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("block [%d,%d): value %v is not finite", lo, hi, v)
			}
		}
	}
	if zero, pos := val(0, 2), val(2, 4); zero <= pos {
		t.Fatalf("zero-cost block value %v should dominate positive-cost block value %v", zero, pos)
	}
	// The DP over this instance must stay finite and well-formed with both
	// solvers despite the capped blocks.
	for _, quadratic := range []bool{false, true} {
		solve := optimize.ContiguousDPMonotone
		if quadratic {
			solve = optimize.ContiguousDP
		}
		blocks, total, err := solve(len(flows), 3, val)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(total) || math.IsInf(total, 0) {
			t.Fatalf("quadratic=%v: DP total %v is not finite", quadratic, total)
		}
		if len(blocks) == 0 || blocks[0][0] != 0 || blocks[len(blocks)-1][1] != len(flows) {
			t.Fatalf("quadratic=%v: malformed blocks %v", quadratic, blocks)
		}
	}
}
