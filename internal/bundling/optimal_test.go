package bundling

import (
	"math"
	"testing"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/optimize"
)

// TestOptimalMatchesExhaustiveSearch is the end-to-end validation of the
// DP-based optimal strategy: on small flow sets, enumerate EVERY set
// partition, price each with the real model, and confirm the DP's
// partition earns the maximum profit. This exercises the full chain the
// paper calls "exhaustive search" — for the CED closed form and for the
// logit equal-markup fixed point via its profit-monotone surrogate.
func TestOptimalMatchesExhaustiveSearch(t *testing.T) {
	models := []econ.Model{
		econ.CED{Alpha: 1.3},
		econ.CED{Alpha: 3.0},
		econ.Logit{Alpha: 0.8, S0: 0.2},
		econ.Logit{Alpha: 1.5, S0: 0.35},
	}
	for _, m := range models {
		for seed := int64(0); seed < 6; seed++ {
			flows := fitFlows(t, m, 7, seed, 20)
			for _, b := range []int{2, 3} {
				bestExact := math.Inf(-1)
				err := optimize.EnumeratePartitions(len(flows), b, func(p [][]int) bool {
					prices, err := m.PriceBundles(flows, p)
					if err != nil {
						t.Fatal(err)
					}
					pi, err := m.Profit(flows, p, prices)
					if err != nil {
						t.Fatal(err)
					}
					if pi > bestExact {
						bestExact = pi
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				pOpt, err := Optimal{}.Bundle(flows, m, b)
				if err != nil {
					t.Fatal(err)
				}
				piOpt := profitOf(t, m, flows, pOpt)
				if piOpt < bestExact-1e-6*math.Abs(bestExact) {
					t.Fatalf("%s seed %d b=%d: DP profit %v < exhaustive %v",
						m.Name(), seed, b, piOpt, bestExact)
				}
			}
		}
	}
}

func TestOptimalSingleBundleIsWholeSet(t *testing.T) {
	m := econ.CED{Alpha: 1.1}
	flows := fitFlows(t, m, 10, 2, 20)
	p, err := Optimal{}.Bundle(flows, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || len(p[0]) != 10 {
		t.Fatalf("b=1 optimal = %v, want one full bundle", p)
	}
}

func TestOptimalProfitMonotoneInBundles(t *testing.T) {
	// More allowed bundles can never hurt the optimum.
	for _, m := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := fitFlows(t, m, 25, 13, 20)
		prev := math.Inf(-1)
		for b := 1; b <= 8; b++ {
			p, err := Optimal{}.Bundle(flows, m, b)
			if err != nil {
				t.Fatal(err)
			}
			pi := profitOf(t, m, flows, p)
			if pi < prev-1e-6*math.Abs(prev) {
				t.Fatalf("%s: optimal profit fell from %v (b=%d) to %v (b=%d)",
					m.Name(), prev, b-1, pi, b)
			}
			prev = pi
		}
	}
}

func TestOptimalApproachesMaxProfit(t *testing.T) {
	// With as many bundles as flows, the optimal bundling must achieve
	// the per-flow pricing maximum.
	for _, m := range []econ.Model{
		econ.CED{Alpha: 1.2},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := fitFlows(t, m, 12, 21, 20)
		p, err := Optimal{}.Bundle(flows, m, len(flows))
		if err != nil {
			t.Fatal(err)
		}
		pi := profitOf(t, m, flows, p)
		max, err := m.MaxProfit(flows)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pi-max) > 1e-6*math.Abs(max) {
			t.Fatalf("%s: optimal with n bundles %v != max %v", m.Name(), pi, max)
		}
	}
}

func TestCEDBlockValueMatchesRealProfit(t *testing.T) {
	// The DP's O(1) block value must equal the profit of pricing that
	// block with Eq. 5.
	m := econ.CED{Alpha: 1.4}
	flows := fitFlows(t, m, 9, 31, 20)
	order := costOrder(flows)
	val := cedBlockValue(flows, order, m.Alpha)
	for lo := 0; lo < len(flows); lo++ {
		for hi := lo + 1; hi <= len(flows); hi++ {
			block := order[lo:hi]
			price, err := m.BundlePrice(flows, block)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			for _, i := range block {
				want += econ.CEDFlowProfit(flows[i].Valuation, price, flows[i].Cost, m.Alpha)
			}
			got := val(lo, hi)
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Fatalf("block [%d,%d): value %v != profit %v", lo, hi, got, want)
			}
		}
	}
}
