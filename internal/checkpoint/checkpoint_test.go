package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/wal"
)

// testState builds a distinguishable State; epoch also salts the
// window contents so two states with different epochs differ fully.
func testState(epoch int64) *State {
	return &State{
		CreatedAt: time.Unix(1700000000+epoch, 0).UTC(),
		Epoch:     epoch,
		WAL:       wal.Position{Segment: uint64(epoch + 1), Offset: 100 * epoch},
		Window: stream.WindowState{
			SlotNanos: int64(time.Hour),
			NumSlots:  4,
			Records:   int(10 * epoch),
			Slots: []stream.SlotState{{
				Index: 400000 + epoch,
				Seen: []netflow.FlowKey{{
					SrcAddr: netip.AddrFrom4([4]byte{10, 0, 0, byte(epoch)}),
					DstAddr: netip.AddrFrom4([4]byte{192, 168, 0, 1}),
					SrcPort: 1234, DstPort: 443, Proto: 6,
				}},
				Aggs: []netflow.Aggregate{{
					Key: "a>b", Octets: uint64(1000 * epoch), Records: 1,
					SrcAddr: netip.AddrFrom4([4]byte{10, 0, 0, byte(epoch)}),
					DstAddr: netip.AddrFrom4([4]byte{192, 168, 0, 1}),
				}},
			}},
		},
		Table: json.RawMessage(`{"tiers":[{"price":1.5}]}`),
		History: []HistoryEntry{{
			At: time.Unix(1700000000, 0).UTC(), Epoch: epoch,
			Table: json.RawMessage(`{"tiers":[{"price":1.5}]}`),
		}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := testState(3)
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, want)
	}
	// Determinism: encoding the same state twice is byte-identical.
	again, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data, err := Encode(testState(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"short":        func(b []byte) []byte { return b[:headerSize-1] },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"crc-mismatch": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad-json": func(b []byte) []byte {
			// Valid frame around invalid JSON must still be rejected.
			return reframe([]byte("{not json"))
		},
	}
	for name, damage := range cases {
		t.Run(name, func(t *testing.T) {
			cp := append([]byte(nil), data...)
			if _, err := Decode(damage(cp)); err == nil {
				t.Error("damaged checkpoint decoded cleanly")
			}
		})
	}
}

// reframe wraps an arbitrary payload in a valid frame (for the
// bad-json case: magic, CRC and length all pass; only JSON fails).
func reframe(payload []byte) []byte {
	out := append([]byte(nil), Magic...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

func TestWriteLoadNewest(t *testing.T) {
	dir := t.TempDir()
	if st, path, err := LoadNewest(dir); st != nil || path != "" || err != nil {
		t.Fatalf("empty dir: %v %v %v", st, path, err)
	}
	for epoch := int64(1); epoch <= 3; epoch++ {
		if _, err := Write(dir, testState(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st, path, err := LoadNewest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Epoch != 3 {
		t.Fatalf("loaded %+v from %s, want epoch 3", st, path)
	}
}

// TestCorruptionFallsBackToOlder is the table-driven corruption matrix:
// whatever happens to the newest checkpoint file — bit rot, truncation,
// magic damage, total replacement — LoadNewest must fall back to the
// newest older checkpoint that still validates.
func TestCorruptionFallsBackToOlder(t *testing.T) {
	inj := faultinject.New(7)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip-payload", func(t *testing.T, path string) {
			site := inj.NewSite(1)
			if hit, err := site.CorruptByte(path, int64(headerSize)); err != nil || !hit {
				t.Fatalf("CorruptByte: %v %v", hit, err)
			}
		}},
		{"truncated-tail", func(t *testing.T, path string) {
			site := inj.NewSite(2)
			if torn, err := site.TearTail(path, 1); err != nil || !torn {
				t.Fatalf("TearTail: %v %v", torn, err)
			}
		}},
		{"zeroed-region", func(t *testing.T, path string) {
			site := inj.NewSite(3)
			if hit, err := site.ZeroRange(path, 0, 32); err != nil || !hit {
				t.Fatalf("ZeroRange: %v %v", hit, err)
			}
		}},
		{"bad-magic", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte("XXXXXXXX"), 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty-file", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := Write(dir, testState(1)); err != nil {
				t.Fatal(err)
			}
			newest, err := Write(dir, testState(2))
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, newest)
			st, path, err := LoadNewest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st == nil || st.Epoch != 1 {
				t.Fatalf("fallback loaded %+v from %s, want epoch 1", st, path)
			}
		})
	}
}

func TestLoadNewestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	p1, err := Write(dir, testState(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p1, 4); err != nil {
		t.Fatal(err)
	}
	st, _, err := LoadNewest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("loaded %+v from an all-corrupt dir, want nil (cold start)", st)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	for epoch := int64(1); epoch <= 6; epoch++ {
		if _, err := Write(dir, testState(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// Leave a stray temp file from a "crashed" write.
	stray := filepath.Join(dir, ".checkpoint-123.tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 3); err != nil {
		t.Fatal(err)
	}
	seqs, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("%d checkpoints survive prune, want 3", len(seqs))
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stray temp file survived prune")
	}
	// The survivors are the newest three.
	st, _, err := LoadNewest(dir)
	if err != nil || st == nil || st.Epoch != 6 {
		t.Fatalf("newest after prune: %+v, %v", st, err)
	}
}
