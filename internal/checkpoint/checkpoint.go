// Package checkpoint persists tierd's recovery state: a point-in-time
// snapshot of the sliding window (slots, dedup sets, counters), the
// WAL position the snapshot covers, the serving epoch, the current
// canonical TierTable, and a bounded history of published tables.
//
// Write discipline is the classic atomic pattern: encode → write to a
// temp file in the same directory → fsync the file → rename into place
// → fsync the directory. A crash at any point leaves either the old
// checkpoint set or the old set plus a complete new file — never a
// half-written checkpoint under a live name. Each file is additionally
// framed with a magic string and a CRC32-C, so LoadNewest can detect a
// corrupted file (bit rot, torn copy) and fall back to the next-older
// checkpoint instead of trusting garbage.
//
// Recovery contract with internal/wal: a checkpoint covering WAL
// position P means "this window state already contains every WAL entry
// before P" — boot restores the window from the checkpoint and replays
// the WAL from P, and segments wholly before P can be deleted.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tieredpricing/internal/stream"
	"tieredpricing/internal/wal"
)

// Magic identifies a checkpoint file and pins the format version; a
// format change bumps the suffix so old readers reject new files
// cleanly instead of misparsing them.
const Magic = "TPCKPT01"

// headerSize is magic + u32 CRC32-C(payload) + u32 len(payload).
const headerSize = len(Magic) + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DefaultRetain is how many checkpoints Prune keeps when the caller
// does not say: the newest plus two fallbacks for the CRC-mismatch
// recovery path.
const DefaultRetain = 3

// HistoryEntry is one published TierTable in the checkpointed time
// series served by GET /v1/history. Table carries the canonical
// stream.TierTable.Marshal bytes, exactly as /v1/tiers served them.
type HistoryEntry struct {
	At    time.Time       `json:"at"`
	Epoch int64           `json:"epoch"`
	Table json.RawMessage `json:"table"`
	// ConfigEpoch is the pricing-config generation the table was
	// produced under (0 in pre-reload checkpoints, read as 1).
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
}

// State is everything a checkpoint persists.
type State struct {
	// CreatedAt is when the checkpoint was taken (daemon clock).
	CreatedAt time.Time `json:"created_at"`
	// Epoch is the serving snapshot's epoch at checkpoint time (0 when
	// no snapshot has been published yet); recovery fast-forwards the
	// repricer so epochs stay monotone across restarts.
	Epoch int64 `json:"epoch"`
	// WAL is the log position this checkpoint covers: the window state
	// below already contains every WAL entry before it.
	WAL wal.Position `json:"wal"`
	// Window is the full exported window state.
	Window stream.WindowState `json:"window"`
	// Tenant names the durability namespace that wrote the checkpoint
	// (multi-tenant daemons), so recovery can refuse a checkpoint that
	// was copied into the wrong tenant's directory. Empty in
	// single-tenant namespaces — and in every pre-fleet checkpoint,
	// which therefore stays loadable.
	Tenant string `json:"tenant,omitempty"`
	// Table is the serving snapshot's canonical TierTable bytes, empty
	// before the first successful re-price.
	Table json.RawMessage `json:"table,omitempty"`
	// ConfigEpoch is the process-wide pricing-config generation at
	// checkpoint time (1 at first boot, +1 per successful hot reload;
	// 0 in pre-reload checkpoints, restored as 1). Recovery
	// fast-forwards the daemon's epoch so a restart cannot reuse a
	// generation number an earlier config already published under.
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
	// History is the bounded TierTable time series (oldest first).
	History []HistoryEntry `json:"history,omitempty"`
}

// Encode frames the state for disk: Magic, CRC32-C over the JSON
// payload, payload length, payload. The JSON is deterministic for a
// deterministic State (encoding/json emits struct fields in declaration
// order and WindowState's slices are sorted on export).
func Encode(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	buf := make([]byte, 0, headerSize+len(payload))
	buf = append(buf, Magic...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...), nil
}

// Decode validates the framing (magic, length, CRC) and unmarshals the
// state. Any mismatch returns an error — LoadNewest treats it as "this
// file is corrupt, try the previous one".
func Decode(data []byte) (*State, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("checkpoint: %d bytes is shorter than the header", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, errors.New("checkpoint: bad magic")
	}
	wantCRC := binary.BigEndian.Uint32(data[len(Magic):])
	wantLen := int(binary.BigEndian.Uint32(data[len(Magic)+4:]))
	payload := data[headerSize:]
	if wantLen != len(payload) {
		return nil, fmt.Errorf("checkpoint: header says %d payload bytes, file has %d", wantLen, len(payload))
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, errors.New("checkpoint: CRC mismatch")
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &st, nil
}

// fileName formats checkpoint seq's name; fixed-width hex keeps
// lexicographic order equal to numeric order.
func fileName(seq uint64) string { return fmt.Sprintf("checkpoint-%016x.ckpt", seq) }

// parseFileName inverts fileName.
func parseFileName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "checkpoint-%016x.ckpt", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// list returns the directory's checkpoint sequence numbers ascending.
// A missing directory holds no checkpoints.
func list(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseFileName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Write persists st as the next checkpoint in dir, atomically: temp
// file → fsync → rename → directory fsync. It returns the final path.
func Write(dir string, st *State) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := Encode(st)
	if err != nil {
		return "", err
	}
	seqs, err := list(dir)
	if err != nil {
		return "", err
	}
	next := uint64(1)
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	final := filepath.Join(dir, fileName(next))
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmpName, final); err != nil {
		return "", fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// LoadNewest returns the newest checkpoint that decodes and validates,
// scanning from newest to oldest and skipping corrupt files — a bad CRC
// or truncated file falls back to the previous checkpoint rather than
// failing recovery. With no loadable checkpoint it returns (nil, "",
// nil): recovery then starts from an empty window and the WAL head.
func LoadNewest(dir string) (*State, string, error) {
	seqs, err := list(dir)
	if err != nil {
		return nil, "", err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, fileName(seqs[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // pruned between list and read
			}
			return nil, "", err
		}
		st, err := Decode(data)
		if err != nil {
			continue // corrupt — fall back to the next-older checkpoint
		}
		return st, path, nil
	}
	return nil, "", nil
}

// Prune deletes all but the newest keep checkpoints (and any leftover
// temp files from crashed writes). keep < 1 is treated as DefaultRetain.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = DefaultRetain
	}
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var seqs []uint64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".checkpoint-") && strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if seq, ok := parseFileName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i := 0; i < len(seqs)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, fileName(seqs[i]))); err != nil {
			return fmt.Errorf("checkpoint: prune: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so the rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
