package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tieredpricing/internal/netflow"
)

// ShardedWindow partitions a sliding window across N private Window
// shards so ingest scales with cores: each record is routed by a hash of
// its dedup flow key, so every copy of a cross-router duplicate lands in
// the same shard and per-shard dedup sets are globally exact. Reads
// (Aggregates, Export, Stats) merge the shards deterministically; the
// merge is byte-identical to a single-shard window at any shard count
// because every per-bucket operation commutes — octet sums, record
// counts, and the canonical minimum-tuple endpoint sample.
//
// Sockets and shards are deliberately decoupled: SO_REUSEPORT steers
// datagrams by UDP 4-tuple, which says nothing about the NetFlow flow
// key inside, so any reader goroutine may deliver any datagram and the
// per-record hash here does the real routing.
type ShardedWindow struct {
	shards   []*Window
	slotDur  time.Duration
	numSlots int
	now      func() time.Time
	parts    sync.Pool // *partition, reused record buffers for Deal
}

var _ netflow.Sink = (*ShardedWindow)(nil)

// partition holds one Deal call's per-shard record buffers.
type partition struct {
	bufs [][]netflow.Record
}

// NewShardedWindow creates a window of slots slots of slotDur each,
// partitioned across shards shards (1 = the plain single-lock window).
func NewShardedWindow(keyFn netflow.AggregateKeyFunc, slotDur time.Duration, slots, shards int) (*ShardedWindow, error) {
	if shards < 1 {
		return nil, errors.New("stream: need at least one shard")
	}
	sw := &ShardedWindow{
		slotDur:  slotDur,
		numSlots: slots,
		now:      time.Now,
	}
	for i := 0; i < shards; i++ {
		w, err := NewWindow(keyFn, slotDur, slots)
		if err != nil {
			return nil, err
		}
		sw.shards = append(sw.shards, w)
	}
	sw.parts.New = func() any {
		return &partition{bufs: make([][]netflow.Record, shards)}
	}
	return sw, nil
}

// SetClock replaces the time source of the wrapper and every shard.
// Call it before the first Ingest; it is not synchronized with ingest.
func (sw *ShardedWindow) SetClock(now func() time.Time) {
	if now == nil {
		return
	}
	sw.now = now
	for _, sh := range sw.shards {
		sh.SetClock(now)
	}
}

// Span is the window length: slot duration × slot count.
func (sw *ShardedWindow) Span() time.Duration {
	return sw.slotDur * time.Duration(sw.numSlots)
}

// NumShards reports the shard count.
func (sw *ShardedWindow) NumShards() int { return len(sw.shards) }

// slotIndex maps a wall-clock instant to its absolute slot number.
func (sw *ShardedWindow) slotIndex(t time.Time) int64 {
	return t.UnixNano() / int64(sw.slotDur)
}

// shardHash is FNV-1a over the canonical bytes of a flow key. FNV is
// cheap, allocation-free, and mixes the low bits well enough that the
// modulo spread across small shard counts is near-uniform.
func shardHash(k netflow.FlowKey) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	src, dst := k.SrcAddr.As16(), k.DstAddr.As16()
	for _, b := range src {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range dst {
		h = (h ^ uint64(b)) * prime64
	}
	for _, v := range [...]uint32{
		uint32(k.SrcPort)<<16 | uint32(k.DstPort), uint32(k.Proto),
		k.First, k.Last, k.Octets, k.Sequence,
	} {
		h = (h ^ uint64(v&0xff)) * prime64
		h = (h ^ uint64(v>>8&0xff)) * prime64
		h = (h ^ uint64(v>>16&0xff)) * prime64
		h = (h ^ uint64(v>>24&0xff)) * prime64
	}
	return h
}

// ShardOf returns the shard a record routes to. Duplicates share a flow
// key, hence a hash, hence a shard — which is what keeps per-shard
// dedup exact.
func (sw *ShardedWindow) ShardOf(r netflow.Record) int {
	return int(shardHash(netflow.KeyOf(r)) % uint64(len(sw.shards)))
}

// Deal partitions recs by shard and invokes fn once per non-empty
// sub-batch (shard 0 receives an empty call when recs is empty, so a
// datagram's slot-creation side effect is preserved). The sub-slices
// are pooled: fn must not retain them past its return. The durable sink
// uses Deal directly so it can pair each sub-batch's WAL append with
// its shard apply under one per-shard lock.
func (sw *ShardedWindow) Deal(recs []netflow.Record, fn func(shard int, recs []netflow.Record)) {
	if len(sw.shards) == 1 || len(recs) == 0 {
		fn(0, recs)
		return
	}
	p := sw.parts.Get().(*partition)
	for i := range p.bufs {
		p.bufs[i] = p.bufs[i][:0]
	}
	for _, r := range recs {
		s := sw.ShardOf(r)
		p.bufs[s] = append(p.bufs[s], r)
	}
	for i, b := range p.bufs {
		if len(b) > 0 {
			fn(i, b)
		}
	}
	sw.parts.Put(p)
}

// Ingest processes one export packet (netflow.Sink). The arrival
// instant is taken once, so every sub-batch of the datagram lands in
// the same slot across shards.
func (sw *ShardedWindow) Ingest(h netflow.Header, recs []netflow.Record) {
	sw.IngestAt(sw.now(), h, recs)
}

// IngestAt is Ingest with an explicit arrival instant (WAL replay).
func (sw *ShardedWindow) IngestAt(ts time.Time, h netflow.Header, recs []netflow.Record) {
	sw.Deal(recs, func(shard int, sub []netflow.Record) {
		sw.shards[shard].IngestAt(ts, h, sub)
	})
}

// IngestShardAt applies a pre-partitioned sub-batch to one shard. The
// caller (the durable sink) is responsible for having routed recs with
// ShardOf/Deal.
func (sw *ShardedWindow) IngestShardAt(shard int, ts time.Time, h netflow.Header, recs []netflow.Record) {
	sw.shards[shard].IngestAt(ts, h, recs)
}

// Aggregates merges every shard's live aggregates into the batch
// collector's output shape. All shards are evicted against one shared
// instant so a shard that went quiet cannot contribute stale slots.
func (sw *ShardedWindow) Aggregates() []netflow.Aggregate {
	cur := sw.slotIndex(sw.now())
	if len(sw.shards) == 1 {
		return sw.shards[0].aggregatesAt(cur)
	}
	merged := make(map[string]*netflow.Aggregate)
	for _, sh := range sw.shards {
		for _, a := range sh.aggregatesAt(cur) {
			m, ok := merged[a.Key]
			if !ok {
				cp := a
				merged[a.Key] = &cp
				continue
			}
			m.Octets += a.Octets
			m.Records += a.Records
			m.MergeSample(a)
		}
	}
	out := make([]netflow.Aggregate, 0, len(merged))
	for _, a := range merged {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats sums the shards' lifetime counters and counts slots live in any
// shard exactly once.
func (sw *ShardedWindow) Stats() (records, duplicates, dropped, liveSlots int) {
	cur := sw.slotIndex(sw.now())
	live := make(map[int64]struct{})
	for _, sh := range sw.shards {
		r, d, dr, idxs := sh.statsAt(cur)
		records += r
		duplicates += d
		dropped += dr
		for _, idx := range idxs {
			live[idx] = struct{}{}
		}
	}
	return records, duplicates, dropped, len(live)
}

// ShardRecords reports each shard's lifetime record count, in shard
// order — the ingest-balance signal behind the per-shard metric.
func (sw *ShardedWindow) ShardRecords() []uint64 {
	cur := sw.slotIndex(sw.now())
	out := make([]uint64, len(sw.shards))
	for i, sh := range sw.shards {
		r, _, _, _ := sh.statsAt(cur)
		out[i] = uint64(r)
	}
	return out
}

// Export snapshots the merged window into a deterministic, canonical
// WindowState: the same shard-count-agnostic shape a single-shard
// window exports, so checkpoints written at one shard count restore at
// any other. Per-slot dedup keys are disjoint across shards (hash
// routing) and aggregates merge commutatively, so the merged state is
// byte-identical to the single-shard export of the same traffic.
func (sw *ShardedWindow) Export() WindowState {
	cur := sw.slotIndex(sw.now())
	if len(sw.shards) == 1 {
		return sw.shards[0].exportAt(cur)
	}
	st := WindowState{SlotNanos: int64(sw.slotDur), NumSlots: sw.numSlots}
	slots := make(map[int64]*SlotState)
	for _, sh := range sw.shards {
		part := sh.exportAt(cur)
		st.Records += part.Records
		st.Duplicates += part.Duplicates
		st.Dropped += part.Dropped
		for _, ss := range part.Slots {
			m, ok := slots[ss.Index]
			if !ok {
				cp := ss
				slots[ss.Index] = &cp
				continue
			}
			m.Seen = append(m.Seen, ss.Seen...)
			m.Aggs = mergeAggLists(m.Aggs, ss.Aggs)
		}
	}
	idxs := make([]int64, 0, len(slots))
	for idx := range slots {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		ss := slots[idx]
		sort.Slice(ss.Seen, func(i, j int) bool { return flowKeyLess(ss.Seen[i], ss.Seen[j]) })
		sort.Slice(ss.Aggs, func(i, j int) bool { return ss.Aggs[i].Key < ss.Aggs[j].Key })
		st.Slots = append(st.Slots, *ss)
	}
	return st
}

// mergeAggLists merges two per-slot aggregate lists by bucket key,
// summing volumes and keeping the canonical minimum sample.
func mergeAggLists(a, b []netflow.Aggregate) []netflow.Aggregate {
	byKey := make(map[string]int, len(a))
	for i := range a {
		byKey[a[i].Key] = i
	}
	for _, x := range b {
		i, ok := byKey[x.Key]
		if !ok {
			byKey[x.Key] = len(a)
			a = append(a, x)
			continue
		}
		a[i].Octets += x.Octets
		a[i].Records += x.Records
		a[i].MergeSample(x)
	}
	return a
}

// Import replaces the window's contents with a previously exported
// canonical state, written at any shard count: dedup keys are re-hashed
// to their home shards, while the merged per-slot aggregates and the
// lifetime counters are placed wholly in shard 0 — legal because reads
// only ever see the commutative merge across shards, which cannot tell
// where a partial sum lives. Geometry mismatches are an error, exactly
// as for Window.Import.
func (sw *ShardedWindow) Import(st WindowState) error {
	if st.SlotNanos != int64(sw.slotDur) {
		return fmt.Errorf("stream: import slot duration %v does not match window %v",
			time.Duration(st.SlotNanos), sw.slotDur)
	}
	if st.NumSlots != sw.numSlots {
		return fmt.Errorf("stream: import slot count %d does not match window %d",
			st.NumSlots, sw.numSlots)
	}
	if len(sw.shards) == 1 {
		return sw.shards[0].Import(st)
	}
	have := make(map[int64]struct{}, len(st.Slots))
	for _, ss := range st.Slots {
		if _, dup := have[ss.Index]; dup {
			return fmt.Errorf("stream: import has slot %d twice", ss.Index)
		}
		have[ss.Index] = struct{}{}
	}
	n := len(sw.shards)
	parts := make([]WindowState, n)
	for i := range parts {
		parts[i] = WindowState{SlotNanos: st.SlotNanos, NumSlots: st.NumSlots}
	}
	parts[0].Records = st.Records
	parts[0].Duplicates = st.Duplicates
	parts[0].Dropped = st.Dropped
	for _, ss := range st.Slots {
		sub := make([]*SlotState, n)
		at := func(i int) *SlotState {
			if sub[i] == nil {
				parts[i].Slots = append(parts[i].Slots, SlotState{Index: ss.Index})
				sub[i] = &parts[i].Slots[len(parts[i].Slots)-1]
			}
			return sub[i]
		}
		for _, key := range ss.Seen {
			i := int(shardHash(key) % uint64(n))
			s := at(i)
			s.Seen = append(s.Seen, key)
		}
		if len(ss.Aggs) > 0 {
			at(0).Aggs = append([]netflow.Aggregate(nil), ss.Aggs...)
		}
		if sub[0] == nil && len(ss.Seen) == 0 {
			at(0) // keep empty slots (all-duplicate datagrams) alive
		}
	}
	for i, sh := range sw.shards {
		if err := sh.Import(parts[i]); err != nil {
			return err
		}
	}
	return nil
}
