package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// shardKeyFn aggregates like the production key but drops records whose
// source sits in 10.9.0.0/16, so the property tests exercise the
// dropped-record counter across shard counts too.
func shardKeyFn(r netflow.Record) string {
	if r.SrcAddr.As4()[1] == 9 {
		return ""
	}
	return traces.AggregateKey(r)
}

// testDatagram is one synthetic export packet with its arrival instant.
type testDatagram struct {
	ts   time.Time
	h    netflow.Header
	recs []netflow.Record
}

// genDatagrams builds a deterministic random traffic mix: records drawn
// from small address pools (bucket collisions), ~20% verbatim re-exports
// of earlier records (cross-router duplicates), a sprinkle of droppable
// sources, sampled and unsampled packets, arrivals spread across slots.
func genDatagrams(seed int64, n int, base time.Time, spread time.Duration) []testDatagram {
	rng := rand.New(rand.NewSource(seed))
	var history []netflow.Record
	out := make([]testDatagram, 0, n)
	for i := 0; i < n; i++ {
		count := 1 + rng.Intn(netflow.MaxRecordsPerPacket)
		recs := make([]netflow.Record, 0, count)
		for j := 0; j < count; j++ {
			if len(history) > 0 && rng.Intn(5) == 0 {
				recs = append(recs, history[rng.Intn(len(history))])
				continue
			}
			second := 1 + rng.Intn(4) // 10.9.x.x drops
			if rng.Intn(10) == 0 {
				second = 9
			}
			r := netflow.Record{
				SrcAddr: netip.AddrFrom4([4]byte{10, byte(second), byte(rng.Intn(4)), byte(rng.Intn(8))}),
				DstAddr: netip.AddrFrom4([4]byte{10, 100, byte(rng.Intn(6)), byte(rng.Intn(8))}),
				SrcPort: uint16(rng.Intn(4096)),
				DstPort: uint16(rng.Intn(16)),
				Proto:   6,
				First:   uint32(rng.Intn(1 << 20)),
				Last:    uint32(rng.Intn(1 << 20)),
				Octets:  uint32(1 + rng.Intn(100000)),
				Input:   uint16(rng.Intn(8)),
				Output:  uint16(rng.Intn(8)),
				SrcAS:   uint16(rng.Intn(1 << 16)),
			}
			history = append(history, r)
			recs = append(recs, r)
		}
		var h netflow.Header
		if rng.Intn(3) == 0 {
			h.SamplingInterval = uint16(10 * (1 + rng.Intn(10)))
		}
		ts := base.Add(time.Duration(rng.Int63n(int64(spread))))
		out = append(out, testDatagram{ts: ts, h: h, recs: recs})
	}
	return out
}

func mustSharded(t *testing.T, keyFn netflow.AggregateKeyFunc, slotDur time.Duration, slots, shards int) *ShardedWindow {
	t.Helper()
	sw, err := NewShardedWindow(keyFn, slotDur, slots, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedWindowDeterminism is the tentpole property test: the same
// random traffic dealt to 1, 2, 4 and 8 shards must merge to aggregates,
// exports and stats byte-identical to the plain single-lock window — and
// the window itself must still match the batch collector.
func TestShardedWindowDeterminism(t *testing.T) {
	const slotDur, slots = time.Minute, 8
	base := time.Unix(1_700_000_000, 0)
	dgs := genDatagrams(99, 300, base, 5*time.Minute)
	readAt := base.Add(5 * time.Minute)
	clock := func() time.Time { return readAt }

	plain, err := NewWindow(shardKeyFn, slotDur, slots)
	if err != nil {
		t.Fatal(err)
	}
	plain.SetClock(clock)
	for _, dg := range dgs {
		plain.IngestAt(dg.ts, dg.h, dg.recs)
	}
	wantAggs := mustJSON(t, plain.Aggregates())
	wantState := mustJSON(t, plain.Export())
	wr, wd, wx, wl := plain.Stats()

	for _, shards := range []int{1, 2, 4, 8} {
		sw := mustSharded(t, shardKeyFn, slotDur, slots, shards)
		sw.SetClock(clock)
		for _, dg := range dgs {
			sw.IngestAt(dg.ts, dg.h, dg.recs)
		}
		if got := mustJSON(t, sw.Aggregates()); string(got) != string(wantAggs) {
			t.Errorf("shards=%d: aggregates diverge from single window", shards)
		}
		if got := mustJSON(t, sw.Export()); string(got) != string(wantState) {
			t.Errorf("shards=%d: exported state diverges from single window", shards)
		}
		gr, gd, gx, gl := sw.Stats()
		if gr != wr || gd != wd || gx != wx || gl != wl {
			t.Errorf("shards=%d: stats (%d,%d,%d,%d) != window stats (%d,%d,%d,%d)",
				shards, gr, gd, gx, gl, wr, wd, wx, wl)
		}
	}

	// All arrivals fit inside the window, so the batch collector view
	// must agree as well (the original online/batch parity, preserved
	// under the canonical sampling rule).
	c := netflow.NewCollector(shardKeyFn)
	for _, dg := range dgs {
		c.Ingest(dg.h, dg.recs)
	}
	if !reflect.DeepEqual(plain.Aggregates(), c.Aggregates()) {
		t.Error("window aggregates diverge from batch collector")
	}
}

// TestShardedWindowStateRoundTrip pins checkpoint compatibility across
// shard counts: a canonical export written at one shard count restores
// at any other with identical canonical bytes, identical aggregates,
// and a still-exact dedup set.
func TestShardedWindowStateRoundTrip(t *testing.T) {
	const slotDur, slots = time.Minute, 8
	base := time.Unix(1_700_000_000, 0)
	dgs := genDatagrams(7, 200, base, 5*time.Minute)
	readAt := base.Add(5 * time.Minute)
	clock := func() time.Time { return readAt }

	src := mustSharded(t, shardKeyFn, slotDur, slots, 4)
	src.SetClock(clock)
	for _, dg := range dgs {
		src.IngestAt(dg.ts, dg.h, dg.recs)
	}
	st := src.Export()
	want := mustJSON(t, st)
	wantAggs := mustJSON(t, src.Aggregates())

	for _, shards := range []int{1, 2, 8} {
		dst := mustSharded(t, shardKeyFn, slotDur, slots, shards)
		dst.SetClock(clock)
		if err := dst.Import(st); err != nil {
			t.Fatalf("shards=%d: import: %v", shards, err)
		}
		if got := mustJSON(t, dst.Export()); string(got) != string(want) {
			t.Errorf("shards=%d: round-tripped state diverges", shards)
		}
		if got := mustJSON(t, dst.Aggregates()); string(got) != string(wantAggs) {
			t.Errorf("shards=%d: round-tripped aggregates diverge", shards)
		}
		// Dedup must survive the re-hash: re-ingesting a record the
		// state already saw is suppressed as a duplicate.
		_, d0, _, _ := dst.Stats()
		dst.IngestAt(readAt, dgs[0].h, dgs[0].recs[:1])
		_, d1, _, _ := dst.Stats()
		if d1 != d0+1 {
			t.Errorf("shards=%d: re-ingested record not deduplicated (%d -> %d)", shards, d0, d1)
		}
	}

	// Geometry mismatches refuse to import, exactly like Window.Import.
	bad := mustSharded(t, shardKeyFn, slotDur, slots+1, 2)
	if err := bad.Import(st); err == nil {
		t.Error("import with mismatched slot count succeeded")
	}
}

// TestShardedIngestRepriceQuoteRace hammers concurrent shard ingest
// against reprices, quotes and state reads under -race, then checks the
// end state still matches an identically-fed single window.
func TestShardedIngestRepriceQuoteRace(t *testing.T) {
	ds, err := traces.EUISP(81)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the capture so duplicate copies are byte-identical:
	// which copy of a duplicate wins the dedup race depends on arrival
	// order (true for the plain window too), so the cross-router variants
	// in sampling interval and observing interface would make byte parity
	// depend on scheduling. With identical copies the whole merge is
	// order-independent and the post-race equality check is exact.
	var dgs []testDatagram
	collect := sinkFunc(func(h netflow.Header, recs []netflow.Record) {
		h.SamplingInterval = 0
		cp := make([]netflow.Record, len(recs))
		copy(cp, recs)
		for i := range cp {
			cp[i].Input = uint16(cp[i].Octets % 8)
			cp[i].Output = uint16(cp[i].First % 8)
		}
		dgs = append(dgs, testDatagram{h: h, recs: cp})
	})
	ingestStreams(t, collect, streams)

	sw := mustSharded(t, traces.AggregateKey, time.Hour, 4, 4)
	rp, err := NewRepricer(Config{
		Window:      sw,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}

	const ingesters = 4
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(dgs); i += ingesters {
				sw.Ingest(dgs[i].h, dgs[i].recs)
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rp.Reprice(context.Background()); err != nil && !errors.Is(err, ErrEmptyWindow) {
				t.Error("reprice:", err)
				return
			}
		}
	}()
	go func() {
		defer readers.Done()
		src := netip.AddrFrom4([4]byte{10, 1, 0, 1})
		dst := netip.AddrFrom4([4]byte{10, 100, 0, 1})
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap := rp.Current(); snap != nil {
				snap.Quote(src, dst)
			}
			sw.Aggregates()
			sw.Export()
			sw.Stats()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	shadow := mustWindow(t, time.Hour, 4)
	for _, dg := range dgs {
		shadow.Ingest(dg.h, dg.recs)
	}
	if !reflect.DeepEqual(sw.Aggregates(), shadow.Aggregates()) {
		t.Fatal("post-race aggregates diverge from single window")
	}
}

// sinkFunc adapts a function to netflow.Sink.
type sinkFunc func(h netflow.Header, recs []netflow.Record)

func (f sinkFunc) Ingest(h netflow.Header, recs []netflow.Record) { f(h, recs) }

// benchIngestRecord yields a record with a unique flow key per (n, j)
// spread over 30 destination buckets.
func benchIngestRecord(n uint64, j int) netflow.Record {
	return netflow.Record{
		SrcAddr: netip.AddrFrom4([4]byte{10, 1, byte(j), 1}),
		DstAddr: netip.AddrFrom4([4]byte{10, 2, byte(j), 1}),
		SrcPort: uint16(n >> 32),
		DstPort: 443,
		Proto:   6,
		First:   uint32(n),
		Last:    uint32(n) + 1,
		Octets:  100,
		SrcAS:   uint16(j),
	}
}

// BenchmarkShardedWindowIngest measures parallel datagram ingest into
// the window layer at several shard counts — the shard-scaling curve
// ./ci.sh ingest records and gates on.
func BenchmarkShardedWindowIngest(b *testing.B) {
	for _, shards := range ingestBenchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sw, err := NewShardedWindow(traces.AggregateKey, time.Minute, 8, shards)
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Uint64
			b.ReportAllocs()
			b.SetParallelism(2)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				recs := make([]netflow.Record, netflow.MaxRecordsPerPacket)
				var h netflow.Header
				for pb.Next() {
					n := seq.Add(1)
					for j := range recs {
						recs[j] = benchIngestRecord(n, j)
					}
					sw.Ingest(h, recs)
				}
			})
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)*netflow.MaxRecordsPerPacket/s, "records/s")
			}
		})
	}
}

// BenchmarkUDPIngestShards measures the full receive path — loopback
// UDP socket(s), batched reads, decode, shard routing, window apply —
// at several shard counts. Sends are paced in small bursts with a drain
// barrier so the loopback socket buffer cannot overflow and silently
// shrink the measured work.
func BenchmarkUDPIngestShards(b *testing.B) {
	pkts := make([][]byte, 512)
	for i := range pkts {
		recs := make([]netflow.Record, netflow.MaxRecordsPerPacket)
		for j := range recs {
			recs[j] = benchIngestRecord(uint64(i), j)
			recs[j].Last = uint32(i)<<8 | uint32(j)
		}
		pkt, err := netflow.EncodePacket(netflow.Header{}, recs)
		if err != nil {
			b.Fatal(err)
		}
		pkts[i] = pkt
	}
	for _, shards := range ingestBenchShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sw, err := NewShardedWindow(traces.AggregateKey, time.Minute, 8, shards)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := netflow.NewCollectorServerOpts("127.0.0.1:0", sw,
				netflow.ServerOptions{Sockets: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			conn, err := net.Dial("udp", srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			const burst = 64
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i++ {
				if _, err := conn.Write(pkts[i%len(pkts)]); err != nil {
					b.Fatal(err)
				}
				sent++
				if sent%burst == 0 {
					if err := srv.Drain(sent, 10*time.Second); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := srv.Drain(sent, 10*time.Second); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N)*netflow.MaxRecordsPerPacket/s, "records/s")
			}
		})
	}
}

// ingestBenchShardCounts is the scaling sweep: 1..8 plus NumCPU so the
// CI gate always has a shards=1 and a shards=NumCPU row to compare.
func ingestBenchShardCounts() []int {
	counts := []int{1, 2, 4, 8}
	ncpu := runtime.NumCPU()
	for _, c := range counts {
		if c == ncpu {
			return counts
		}
	}
	return append(counts, ncpu)
}
