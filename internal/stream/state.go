package stream

import (
	"fmt"
	"sort"
	"time"

	"tieredpricing/internal/netflow"
)

// SlotState is one window slot in exportable form: the absolute slot
// index, the slot's dedup keys, and its partial aggregates. Both lists
// are deterministically sorted, so encoding an exported state yields
// identical bytes for identical window contents — the property the
// crash-recovery parity tests compare on.
type SlotState struct {
	Index int64               `json:"index"`
	Seen  []netflow.FlowKey   `json:"seen"`
	Aggs  []netflow.Aggregate `json:"aggs"`
}

// WindowState is a complete, self-validating serialization of a Window:
// configuration (slot geometry), lifetime counters, and every live
// slot. It is the unit the checkpoint subsystem persists.
type WindowState struct {
	SlotNanos  int64       `json:"slot_nanos"`
	NumSlots   int         `json:"num_slots"`
	Records    int         `json:"records"`
	Duplicates int         `json:"duplicates"`
	Dropped    int         `json:"dropped"`
	Slots      []SlotState `json:"slots"`
}

// flowKeyLess is a total order over dedup keys (for deterministic
// export). netip.Addr.Compare orders by family then bytes.
func flowKeyLess(a, b netflow.FlowKey) bool {
	if c := a.SrcAddr.Compare(b.SrcAddr); c != 0 {
		return c < 0
	}
	if c := a.DstAddr.Compare(b.DstAddr); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.First != b.First {
		return a.First < b.First
	}
	if a.Last != b.Last {
		return a.Last < b.Last
	}
	if a.Octets != b.Octets {
		return a.Octets < b.Octets
	}
	return a.Sequence < b.Sequence
}

// Export snapshots the window into a deterministic WindowState. Slots
// are emitted in ascending index order, dedup keys and aggregates in
// sorted order, so two windows with equal contents export equal states
// regardless of map iteration order or ingest interleaving.
func (w *Window) Export() WindowState {
	return w.exportAt(w.slotIndex(w.now()))
}

// exportAt is Export with an explicit current slot (see aggregatesAt).
func (w *Window) exportAt(cur int64) WindowState {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(cur)
	st := WindowState{
		SlotNanos:  int64(w.slotDur),
		NumSlots:   w.numSlots,
		Records:    w.records,
		Duplicates: w.duplicates,
		Dropped:    w.dropped,
		Slots:      make([]SlotState, 0, len(w.slots)),
	}
	idxs := make([]int64, 0, len(w.slots))
	for idx := range w.slots {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		s := w.slots[idx]
		ss := SlotState{
			Index: idx,
			Seen:  make([]netflow.FlowKey, 0, len(s.seen)),
			Aggs:  make([]netflow.Aggregate, 0, len(s.aggs)),
		}
		for key := range s.seen {
			ss.Seen = append(ss.Seen, key)
		}
		sort.Slice(ss.Seen, func(i, j int) bool { return flowKeyLess(ss.Seen[i], ss.Seen[j]) })
		for _, a := range s.aggs {
			ss.Aggs = append(ss.Aggs, *a)
		}
		sort.Slice(ss.Aggs, func(i, j int) bool { return ss.Aggs[i].Key < ss.Aggs[j].Key })
		st.Slots = append(st.Slots, ss)
	}
	return st
}

// Import replaces the window's contents with a previously Exported
// state. The state's slot geometry must match the window's — a window
// restored under different -slot/-window flags would silently misfile
// records, so the mismatch is an error instead. Slots that have already
// aged out of the window (by the window's own clock) are skipped rather
// than resurrected.
func (w *Window) Import(st WindowState) error {
	if st.SlotNanos != int64(w.slotDur) {
		return fmt.Errorf("stream: import slot duration %v does not match window %v",
			time.Duration(st.SlotNanos), w.slotDur)
	}
	if st.NumSlots != w.numSlots {
		return fmt.Errorf("stream: import slot count %d does not match window %d",
			st.NumSlots, w.numSlots)
	}
	cur := w.slotIndex(w.now())
	w.mu.Lock()
	defer w.mu.Unlock()
	w.slots = make(map[int64]*slot, len(st.Slots))
	w.records = st.Records
	w.duplicates = st.Duplicates
	w.dropped = st.Dropped
	for _, ss := range st.Slots {
		if ss.Index <= cur-int64(w.numSlots) {
			continue // aged out while the daemon was down
		}
		if _, dup := w.slots[ss.Index]; dup {
			return fmt.Errorf("stream: import has slot %d twice", ss.Index)
		}
		s := &slot{
			seen: make(map[netflow.FlowKey]struct{}, len(ss.Seen)),
			aggs: make(map[string]*netflow.Aggregate, len(ss.Aggs)),
		}
		for _, key := range ss.Seen {
			s.seen[key] = struct{}{}
		}
		for _, a := range ss.Aggs {
			cp := a
			s.aggs[a.Key] = &cp
		}
		w.slots[ss.Index] = s
	}
	return nil
}

// IngestAt is Ingest with an explicit arrival instant: the record lands
// in the slot covering ts and eviction runs relative to ts, exactly as
// Ingest would have done had it run at ts on the live clock. WAL replay
// uses it to reproduce the original slotting decision for each logged
// datagram, which is what makes recovery byte-identical.
func (w *Window) IngestAt(ts time.Time, h netflow.Header, recs []netflow.Record) {
	w.ingestAt(w.slotIndex(ts), h, recs)
}
