package stream

import (
	"context"
	"sync"
	"testing"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
)

// TestReconfigureSwapsPricing: a Reconfigure followed by a Reprice
// publishes a snapshot built under the new configuration, with the
// epoch sequence continuing monotonically.
func TestReconfigureSwapsPricing(t *testing.T) {
	rp, ds, _ := loadedRepricer(t, 81)
	snap1, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap1.Table.Tiers) != 3 {
		t.Fatalf("initial tiers = %d, want 3", len(snap1.Table.Tiers))
	}

	err = rp.Reconfigure(Config{
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.3},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       5,
		DurationSec: ds.DurationSec,
		Workers:     4,
	})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	// The old snapshot keeps serving until the next publish.
	if rp.Current() != snap1 {
		t.Fatal("Reconfigure replaced the live snapshot before a Reprice")
	}
	snap2, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Table.Tiers) != 5 {
		t.Fatalf("post-reload tiers = %d, want 5", len(snap2.Table.Tiers))
	}
	if snap2.Epoch != snap1.Epoch+1 {
		t.Fatalf("epoch %d after %d, want monotone +1", snap2.Epoch, snap1.Epoch)
	}
}

// TestReconfigureInvalidKeepsOld: a rejected Reconfigure leaves the
// running configuration untouched.
func TestReconfigureInvalidKeepsOld(t *testing.T) {
	rp, ds, _ := loadedRepricer(t, 82)
	if _, err := rp.Reprice(context.Background()); err != nil {
		t.Fatal(err)
	}
	bad := Config{
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          -1, // invalid
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
	}
	if err := rp.Reconfigure(bad); err == nil {
		t.Fatal("invalid Reconfigure accepted")
	}
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatalf("Reprice after rejected reload: %v", err)
	}
	if len(snap.Table.Tiers) != 3 || snap.Table.P0 != ds.P0 {
		t.Fatalf("rejected reload changed config: tiers=%d p0=%v", len(snap.Table.Tiers), snap.Table.P0)
	}
}

// TestReconfigureConcurrentQuotes exercises the reload path under
// concurrent quote traffic — meaningful under -race: every Quote must
// succeed against whichever snapshot is current, across repeated
// Reconfigure+Reprice cycles.
func TestReconfigureConcurrentQuotes(t *testing.T) {
	rp, ds, aggs := loadedRepricer(t, 83)
	if _, err := rp.Reprice(context.Background()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := rp.Current()
				for _, a := range aggs[:32] {
					if _, ok := snap.Quote(a.SrcAddr, a.DstAddr); !ok {
						t.Error("quote miss during reload churn")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		tiers := 2 + i%4
		err := rp.Reconfigure(Config{
			Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
			Demand:      econ.CED{Alpha: 1.1 + float64(i%3)*0.1},
			Cost:        cost.Linear{Theta: 0.2},
			P0:          ds.P0,
			Strategy:    bundling.ProfitWeighted{},
			Tiers:       tiers,
			DurationSec: ds.DurationSec,
			Workers:     4,
		})
		if err != nil {
			t.Fatalf("Reconfigure %d: %v", i, err)
		}
		snap, err := rp.Reprice(context.Background())
		if err != nil {
			t.Fatalf("Reprice %d: %v", i, err)
		}
		if len(snap.Table.Tiers) != tiers {
			t.Fatalf("cycle %d: tiers = %d, want %d", i, len(snap.Table.Tiers), tiers)
		}
	}
	close(stop)
	wg.Wait()
}
