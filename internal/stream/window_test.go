package stream

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// ingestStreams decodes router export streams in sorted router order and
// feeds every packet to sink. Sorted order makes the first record of each
// bucket — and hence the collector's endpoint samples — deterministic, so
// window and batch collector outputs are comparable field by field.
func ingestStreams(t *testing.T, sink netflow.Sink, streams map[string][]byte) {
	t.Helper()
	routers := make([]string, 0, len(streams))
	for router := range streams {
		routers = append(routers, router)
	}
	sort.Strings(routers)
	for _, router := range routers {
		rd := netflow.NewReader(bytes.NewReader(streams[router]))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			sink.Ingest(h, recs)
		}
	}
}

func mustWindow(t *testing.T, slotDur time.Duration, slots int) *Window {
	t.Helper()
	w, err := NewWindow(traces.AggregateKey, slotDur, slots)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWindowMatchesCollector is the aggregation half of the online/batch
// consistency story: a capture fully contained in the window must yield
// the batch collector's aggregates exactly.
func TestWindowMatchesCollector(t *testing.T) {
	ds, err := traces.EUISP(61)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}

	c := netflow.NewCollector(traces.AggregateKey)
	ingestStreams(t, c, streams)

	w := mustWindow(t, time.Hour, 4)
	ingestStreams(t, w, streams)

	if !reflect.DeepEqual(w.Aggregates(), c.Aggregates()) {
		t.Fatal("window aggregates diverge from batch collector")
	}
	cr, cd, cx := c.Stats()
	wr, wd, wx, live := w.Stats()
	if wr != cr || wd != cd || wx != cx {
		t.Errorf("window stats (%d,%d,%d) != collector stats (%d,%d,%d)", wr, wd, wx, cr, cd, cx)
	}
	if live < 1 {
		t.Errorf("live slots = %d, want >= 1", live)
	}
}

func testRecord(seq uint32, octets uint32) netflow.Record {
	return netflow.Record{
		SrcAddr: netip.MustParseAddr("10.1.0.1"),
		DstAddr: netip.MustParseAddr("10.2.0.1"),
		SrcPort: 1234, DstPort: 443, Proto: 6,
		First: 1, Last: 2,
		Octets: octets,
		SrcAS:  uint16(seq),
	}
}

func TestWindowExpiresOldSlots(t *testing.T) {
	w := mustWindow(t, time.Minute, 3)
	now := time.Unix(1_700_000_000, 0)
	w.now = func() time.Time { return now }

	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(0, 100)})
	if got := w.Aggregates(); len(got) != 1 || got[0].Octets != 100 {
		t.Fatalf("unexpected live aggregates %+v", got)
	}

	// Two slots later the record is still inside the 3-slot window.
	now = now.Add(2 * time.Minute)
	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(1, 50)})
	if got := w.Aggregates(); len(got) != 1 || got[0].Octets != 150 {
		t.Fatalf("mid-window aggregates %+v, want merged 150 octets", got)
	}

	// Past the window, the first slot ages out and only the newer record
	// survives.
	now = now.Add(2 * time.Minute)
	if got := w.Aggregates(); len(got) != 1 || got[0].Octets != 50 {
		t.Fatalf("post-expiry aggregates %+v, want only 50 octets", got)
	}

	// After everything expires the window is empty and the original
	// record counts as new again — dedup state ages out with its slot.
	now = now.Add(10 * time.Minute)
	if got := w.Aggregates(); len(got) != 0 {
		t.Fatalf("expired window still holds %+v", got)
	}
	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(0, 100)})
	records, duplicates, _, _ := w.Stats()
	if records != 3 || duplicates != 0 {
		t.Errorf("records=%d duplicates=%d, want 3 records and no duplicates", records, duplicates)
	}
}

func TestWindowDedupSpansSlots(t *testing.T) {
	w := mustWindow(t, time.Minute, 10)
	now := time.Unix(1_700_000_000, 0)
	w.now = func() time.Time { return now }

	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(0, 100)})
	now = now.Add(3 * time.Minute)
	// The same record re-exported by another router minutes later must be
	// suppressed as long as the original slot is live.
	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(0, 100)})
	_, duplicates, _, _ := w.Stats()
	if duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", duplicates)
	}
	if got := w.Aggregates(); len(got) != 1 || got[0].Octets != 100 {
		t.Fatalf("aggregates %+v, want single 100-octet bucket", got)
	}
}

func TestWindowSamplingRestoration(t *testing.T) {
	w := mustWindow(t, time.Minute, 2)
	w.Ingest(netflow.Header{SamplingInterval: 1000}, []netflow.Record{testRecord(0, 7)})
	if got := w.Aggregates(); len(got) != 1 || got[0].Octets != 7000 {
		t.Fatalf("aggregates %+v, want sampling-restored 7000 octets", got)
	}
}

func TestWindowDropsUnkeyedRecords(t *testing.T) {
	w, err := NewWindow(func(netflow.Record) string { return "" }, time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Ingest(netflow.Header{}, []netflow.Record{testRecord(0, 7)})
	_, _, dropped, _ := w.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if got := w.Aggregates(); len(got) != 0 {
		t.Errorf("unkeyed record produced aggregates %+v", got)
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(nil, time.Minute, 2); err == nil {
		t.Error("expected error for nil key function")
	}
	if _, err := NewWindow(traces.AggregateKey, 0, 2); err == nil {
		t.Error("expected error for zero slot duration")
	}
	if _, err := NewWindow(traces.AggregateKey, time.Minute, 0); err == nil {
		t.Error("expected error for zero slots")
	}
}

// TestWindowConcurrentIngest exercises the ingest path from many
// goroutines under the race detector.
func TestWindowConcurrentIngest(t *testing.T) {
	w := mustWindow(t, time.Minute, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := testRecord(uint32(g*1000+i), 10)
				rec.SrcPort = uint16(g)
				w.Ingest(netflow.Header{}, []netflow.Record{rec})
				if i%10 == 0 {
					w.Aggregates()
				}
			}
		}(g)
	}
	wg.Wait()
	records, duplicates, _, _ := w.Stats()
	if records != 400 || duplicates != 0 {
		t.Errorf("records=%d duplicates=%d, want 400/0", records, duplicates)
	}
	var total uint64
	for _, a := range w.Aggregates() {
		total += a.Octets
	}
	if total != 4000 {
		t.Errorf("total octets %d, want 4000", total)
	}
}

// Benchmark the ingest hot path: one packet of 30 records.
func BenchmarkWindowIngest(b *testing.B) {
	w, err := NewWindow(traces.AggregateKey, time.Minute, 8)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]netflow.Record, netflow.MaxRecordsPerPacket)
	for i := range recs {
		recs[i] = testRecord(uint32(i), 100)
		recs[i].DstAddr = netip.MustParseAddr(fmt.Sprintf("10.2.%d.1", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the sequence so dedup never suppresses; this measures the
		// accumulate path, not the duplicate path.
		for j := range recs {
			recs[j].SrcAS = uint16(i % 65536)
			recs[j].SrcPort = uint16(i / 65536)
		}
		w.Ingest(netflow.Header{}, recs)
	}
}
