package stream

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// loadedRepricer builds a window loaded with a full euisp capture and a
// repricer over it, plus the batch collector's view of the same records.
func loadedRepricer(t *testing.T, seed int64) (*Repricer, *traces.Dataset, []netflow.Aggregate) {
	t.Helper()
	ds, err := traces.EUISP(seed)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Hour, 4)
	ingestStreams(t, w, streams)
	c := netflow.NewCollector(traces.AggregateKey)
	ingestStreams(t, c, streams)

	rp, err := NewRepricer(Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rp, ds, c.Aggregates()
}

// TestRepriceMatchesBatch is the tentpole consistency test: the online
// windowed re-price must produce a byte-identical tier table to the
// batch pipeline run over the same window of records.
func TestRepriceMatchesBatch(t *testing.T) {
	rp, ds, batchAggs := loadedRepricer(t, 71)

	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	online, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the batch pipeline on the identical record set.
	rv := &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true}
	flows, _, err := demandfit.BuildFlows(batchAggs, rv, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	batchTable, err := BatchTable(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2},
		ds.P0, bundling.ProfitWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchTable.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(online, batch) {
		t.Fatalf("online table diverges from batch pipeline:\nonline: %s\nbatch:  %s", online, batch)
	}
	if snap.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", snap.Epoch)
	}
	if rp.Current() != snap {
		t.Error("Current() did not return the published snapshot")
	}
}

// TestQuoteMatchesTiers: every window bucket quotes the price of the
// tier it was bundled into, from the exact-match path.
func TestQuoteMatchesTiers(t *testing.T) {
	rp, _, batchAggs := loadedRepricer(t, 72)
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	priceOf := make(map[int]float64)
	for _, tq := range snap.Table.Tiers {
		priceOf[tq.Tier] = tq.Price
	}
	for _, a := range batchAggs {
		q, ok := snap.Quote(a.SrcAddr, a.DstAddr)
		if !ok {
			t.Fatalf("no quote for bucket %s", a.Key)
		}
		if q.Source != SourceWindow {
			t.Fatalf("bucket %s quoted from %v, want window", a.Key, q.Source)
		}
		if q.Price != priceOf[q.Tier] {
			t.Fatalf("bucket %s: price %v != tier %d price %v", a.Key, q.Price, q.Tier, priceOf[q.Tier])
		}
	}
}

// TestQuoteFallsBackToRIB: a source the window never saw still gets a
// quote when the destination matches a tier-tagged route.
func TestQuoteFallsBackToRIB(t *testing.T) {
	rp, _, batchAggs := loadedRepricer(t, 73)
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	unknownSrc := netip.MustParseAddr("203.0.113.7") // TEST-NET, never a PoP
	q, ok := snap.Quote(unknownSrc, batchAggs[0].DstAddr)
	if !ok {
		t.Fatal("no RIB fallback quote for known destination")
	}
	if q.Source != SourceRIB {
		t.Errorf("source = %v, want rib", q.Source)
	}
	if q.Price != snap.Table.Tiers[q.Tier].Price {
		t.Errorf("RIB price %v != tier %d price %v", q.Price, q.Tier, snap.Table.Tiers[q.Tier].Price)
	}
	if _, ok := snap.Quote(unknownSrc, netip.MustParseAddr("198.51.100.9")); ok {
		t.Error("quote for a destination outside every tier route")
	}
}

// TestQuoteZeroAllocs pins the hot-path property the serving layer's
// latency depends on: an exact-match quote performs no allocations.
func TestQuoteZeroAllocs(t *testing.T) {
	rp, _, batchAggs := loadedRepricer(t, 74)
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := batchAggs[0].SrcAddr, batchAggs[0].DstAddr
	var sink Quote
	allocs := testing.AllocsPerRun(1000, func() {
		q, ok := snap.Quote(src, dst)
		if !ok {
			t.Fatal("quote miss")
		}
		sink = q
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Quote allocates %v times per call, want 0", allocs)
	}
}

func TestRepriceEmptyWindowKeepsSnapshot(t *testing.T) {
	ds, err := traces.EUISP(75)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Minute, 2)
	rp, err := NewRepricer(Config{
		Window:   w,
		Resolver: &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:   econ.CED{Alpha: 1.1},
		Cost:     cost.Linear{Theta: 0.2},
		P0:       ds.P0,
		Strategy: bundling.ProfitWeighted{},
		Tiers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Reprice(context.Background()); !errors.Is(err, ErrEmptyWindow) {
		t.Fatalf("err = %v, want ErrEmptyWindow", err)
	}
	if rp.Current() != nil {
		t.Fatal("empty reprice published a snapshot")
	}

	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 76})
	if err != nil {
		t.Fatal(err)
	}
	ingestStreams(t, w, streams)
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A later failure (ingest gap emptied the window) must keep the last
	// good snapshot current.
	w.now = func() time.Time { return time.Now().Add(time.Hour) }
	if _, err := rp.Reprice(context.Background()); !errors.Is(err, ErrEmptyWindow) {
		t.Fatalf("err = %v, want ErrEmptyWindow after expiry", err)
	}
	if rp.Current() != snap {
		t.Error("failed reprice displaced the previous snapshot")
	}
}

func TestNewRepricerValidation(t *testing.T) {
	ds, err := traces.EUISP(77)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Minute, 2)
	good := Config{
		Window:   w,
		Resolver: &demandfit.Resolver{Geo: ds.Geo},
		Demand:   econ.CED{Alpha: 1.1},
		Cost:     cost.Linear{Theta: 0.2},
		P0:       ds.P0,
		Strategy: bundling.ProfitWeighted{},
		Tiers:    3,
	}
	if _, err := NewRepricer(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Window = nil },
		func(c *Config) { c.Resolver = nil },
		func(c *Config) { c.Demand = nil },
		func(c *Config) { c.Cost = nil },
		func(c *Config) { c.P0 = 0 },
		func(c *Config) { c.Strategy = nil },
		func(c *Config) { c.Tiers = 0 },
		func(c *Config) { c.DurationSec = -1 },
		func(c *Config) { c.SrcMaskBits = 40 },
		func(c *Config) { c.DstMaskBits = -2 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := NewRepricer(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestRunFinalDrain: cancelling the reprice loop performs one last
// re-price so traffic ingested after the final tick is still priced.
func TestRunFinalDrain(t *testing.T) {
	ds, err := traces.EUISP(78)
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Hour, 4)
	rp, err := NewRepricer(Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	ingestStreams(t, w, streams)

	var ticks atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Interval far beyond the test's lifetime: the only re-price that
		// can happen is the drain pass on cancellation.
		rp.Run(ctx, time.Hour, func(snap *Snapshot, elapsed time.Duration, err error) {
			ticks.Add(1)
			if err != nil {
				t.Errorf("drain reprice failed: %v", err)
			}
			if elapsed < 0 {
				t.Errorf("negative elapsed %v", elapsed)
			}
		})
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not exit after cancellation")
	}
	if ticks.Load() != 1 {
		t.Errorf("onTick ran %d times, want exactly the drain pass", ticks.Load())
	}
	if rp.Current() == nil {
		t.Error("no snapshot after drain reprice")
	}
}
