package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"tieredpricing/internal/bgp"
	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
)

// ErrEmptyWindow is returned by Reprice when the window holds no
// aggregates yet; the previous snapshot (if any) stays current.
var ErrEmptyWindow = errors.New("stream: window holds no aggregates")

// AggregateSource supplies the live demand aggregates a Repricer
// prices: a *Window, a *ShardedWindow, or any equivalent accumulator.
// Aggregates must return buckets sorted by key.
type AggregateSource interface {
	Aggregates() []netflow.Aggregate
	Span() time.Duration
}

// Config wires a Repricer to the window it reads and the models it fits.
type Config struct {
	// Window supplies the live aggregates.
	Window AggregateSource
	// Resolver maps aggregate endpoints to distance and region. A
	// resolver that also implements demandfit.ContextResolver gets the
	// re-price context, so a wedged lookup cannot outlive a bounded
	// drain.
	Resolver demandfit.EndpointResolver
	// Demand and Cost are the models to fit; P0 the blended rate anchor.
	Demand econ.Model
	Cost   cost.Model
	P0     float64
	// Strategy and Tiers select the bundling counterfactual to serve.
	Strategy bundling.Strategy
	Tiers    int
	// DurationSec converts windowed octets to Mbps. Zero selects the
	// window span — the steady-state choice; set it explicitly when
	// replaying a capture whose duration differs from the window.
	DurationSec float64
	// SrcMaskBits and DstMaskBits define the IPv4 quote key: a quote
	// request's endpoints are masked to these widths before lookup. They
	// must match the window's aggregation rule; zero selects the defaults
	// of traces.AggregateKey (src /20, dst /24).
	SrcMaskBits int
	DstMaskBits int
	// Src6MaskBits and Dst6MaskBits are the IPv6 mask widths. IPv4 widths
	// applied to IPv6 endpoints would collapse whole address ranges onto
	// one bucket, so the two families mask independently; zero selects
	// src /48, dst /64.
	Src6MaskBits int
	Dst6MaskBits int
	// Workers bounds the parallel resolve fan-out (0 = NumCPU).
	Workers int
	// NextHop is stamped on the tier-tagged RIB routes (§5.1); zero
	// selects the unspecified address.
	NextHop netip.Addr
	// DrainGrace bounds the final drain re-price Run performs after its
	// context is cancelled, so a hung resolve cannot wedge shutdown. Zero
	// selects 5s.
	DrainGrace time.Duration
	// Now is the repricer's time source (snapshot FittedAt stamps); nil
	// selects time.Now. Injectable for fault rehearsal and tests.
	Now func() time.Time
}

// TierQuote is one served tier: its index, price, and the window
// traffic it covers.
type TierQuote struct {
	Tier       int     `json:"tier"`
	Price      float64 `json:"price_usd_per_mbps_month"`
	Flows      int     `json:"flows"`
	DemandMbps float64 `json:"demand_mbps"`
}

// TierTable is the deterministic part of a pricing snapshot: everything
// that depends only on the window's aggregates and the configuration,
// nothing that depends on when the re-price ran. The offline consistency
// test asserts the online table is byte-identical to the batch
// pipeline's on the same window.
type TierTable struct {
	Model    string      `json:"model"`
	Strategy string      `json:"strategy"`
	P0       float64     `json:"blended_rate"`
	Flows    int         `json:"flows"`
	Profit   float64     `json:"profit"`
	Capture  *float64    `json:"capture,omitempty"` // omitted when undefined (no headroom)
	Tiers    []TierQuote `json:"tiers"`
}

// Marshal is the canonical byte encoding of a table (encoding/json with
// a fixed field order), used by both the /v1/tiers handler and the
// batch-parity tests.
func (t TierTable) Marshal() ([]byte, error) { return json.Marshal(t) }

// QuoteSource says which structure answered a quote.
type QuoteSource uint8

// Quote sources: an exact window-bucket match, or the tier-tagged BGP
// RIB's longest-prefix match on the destination.
const (
	SourceWindow QuoteSource = iota
	SourceRIB
)

// String returns the wire name of the source.
func (s QuoteSource) String() string {
	switch s {
	case SourceWindow:
		return "window"
	case SourceRIB:
		return "rib"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Quote is a priced answer for one flow.
type Quote struct {
	Tier   int
	Price  float64
	Source QuoteSource
}

// quoteKey is the masked endpoint pair quotes are looked up by.
// netip.Addr is comparable, so the hot-path lookup allocates nothing.
type quoteKey struct {
	src netip.Addr
	dst netip.Addr
}

// Snapshot is one immutable re-price result. The repricer publishes
// snapshots through an atomic pointer swap: a snapshot is fully built
// before it becomes visible, is never mutated afterwards, and every
// quote served from it is consistent with every other quote and with
// /v1/tiers at the same epoch.
type Snapshot struct {
	// Epoch increments with every published snapshot.
	Epoch int64
	// FittedAt is when the re-price ran.
	FittedAt time.Time
	// Table is the deterministic pricing result.
	Table TierTable
	// Skipped counts window aggregates that failed to resolve.
	Skipped int

	byKey    map[quoteKey]int
	rib      *bgp.RIB
	srcBits  int
	dstBits  int
	src6Bits int
	dst6Bits int
}

// maskAddr masks a to the width of its address family (4-in-6 mapped
// addresses count as IPv4, matching how NetFlow records key the window).
// ok is false for an invalid address, which can never match a bucket.
func maskAddr(a netip.Addr, v4Bits, v6Bits int) (masked netip.Addr, ok bool) {
	if !a.IsValid() {
		return netip.Addr{}, false
	}
	a = a.Unmap()
	bits := v6Bits
	if a.Is4() {
		bits = v4Bits
	}
	p := netip.PrefixFrom(a, bits)
	if !p.IsValid() {
		return netip.Addr{}, false
	}
	return p.Masked().Addr(), true
}

// Quote prices one flow: the endpoints are masked to the snapshot's
// per-family key widths and matched against the window buckets; a miss
// falls back to a longest-prefix match of the destination in the
// tier-tagged RIB (the §5.2 accounting path for traffic the window has
// not seen from this source). The exact-match path performs no
// allocations.
func (s *Snapshot) Quote(src, dst netip.Addr) (Quote, bool) {
	srcMasked, srcOK := maskAddr(src, s.srcBits, s.src6Bits)
	dstMasked, dstOK := maskAddr(dst, s.dstBits, s.dst6Bits)
	if !srcOK || !dstOK {
		return Quote{}, false
	}
	key := quoteKey{src: srcMasked, dst: dstMasked}
	if tier, ok := s.byKey[key]; ok {
		return Quote{Tier: tier, Price: s.Table.Tiers[tier].Price, Source: SourceWindow}, true
	}
	if route, ok := s.rib.Lookup(dst.Unmap()); ok && route.Tier != nil {
		tier := int(route.Tier.Tier)
		if tier < len(s.Table.Tiers) {
			// The snapshot price is authoritative; the community's
			// milli-dollar price is the wire approximation.
			return Quote{Tier: tier, Price: s.Table.Tiers[tier].Price, Source: SourceRIB}, true
		}
	}
	return Quote{}, false
}

// RIB exposes the snapshot's tier-tagged routing table (read-only use).
func (s *Snapshot) RIB() *bgp.RIB { return s.rib }

// Repricer periodically re-fits the demand model over the window and
// publishes pricing snapshots. Reads (Current) and the periodic rebuild
// never block each other: Current is a single atomic load.
type Repricer struct {
	cfg Config // guarded by mu (Reconfigure swaps it)
	// now and drainGrace are pinned at construction: Run's drain path
	// reads them without the lock, and a hot reload must not move the
	// clock or the shutdown bound under a draining repricer.
	now        func() time.Time
	drainGrace time.Duration
	epoch      atomic.Int64
	cur        atomic.Pointer[Snapshot]
	// failures counts consecutive failed re-price attempts (reset on
	// success). Warm-up empty windows don't count; an empty window after
	// a snapshot exists does — that's an ingest gap, the signal the
	// staleness policy and the backoff both key off.
	failures atomic.Int64

	// mu serializes Reprice (the periodic tick and a caller-driven final
	// drain can race) and guards flowBuf, the resolve buffer reused across
	// ticks. The market fit copies the flows and the snapshot never
	// retains them, so the buffer is free again by the time Reprice
	// returns; the bundling DP's own tables are pooled in the optimize
	// package.
	mu      sync.Mutex
	flowBuf []econ.Flow
}

// RestoreEpoch fast-forwards the epoch counter so the next published
// snapshot is numbered epoch+1. Recovery calls it with the last epoch a
// checkpoint recorded: epochs stay monotone across a restart, so
// clients correlating /v1/quote and /v1/tiers by epoch never see the
// sequence restart from 1. It must run before the first Reprice; values
// at or below the current counter are ignored (epochs never rewind).
func (r *Repricer) RestoreEpoch(epoch int64) {
	for {
		cur := r.epoch.Load()
		if epoch <= cur || r.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// NewRepricer validates the configuration.
func NewRepricer(cfg Config) (*Repricer, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Repricer{cfg: cfg, now: cfg.Now, drainGrace: cfg.DrainGrace}, nil
}

// Reconfigure swaps the repricer's pricing configuration in place —
// the zero-downtime reload path. The new configuration is validated
// before anything changes; on any error the old configuration stays
// active untouched. The live window, clock, and drain grace are pinned
// from the running repricer (a reload re-prices the demand you have,
// it does not discard it), and the current snapshot keeps serving
// quotes until the caller's next Reprice publishes one built under the
// new configuration — quoting never has a gap across a reload.
func (r *Repricer) Reconfigure(cfg Config) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg.Window = r.cfg.Window
	cfg.Now = r.now
	cfg.DrainGrace = r.drainGrace
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return err
	}
	r.cfg = cfg
	return nil
}

// CheckConfig validates cfg exactly as Reconfigure would — same
// pinning, same normalization — without swapping anything in. A fleet
// reload runs it across every tenant first so a bad overlay rejects
// the whole reload instead of leaving tenants on mixed generations.
func (r *Repricer) CheckConfig(cfg Config) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg.Window = r.cfg.Window
	cfg.Now = r.now
	cfg.DrainGrace = r.drainGrace
	_, err := normalizeConfig(cfg)
	return err
}

// normalizeConfig validates a Config and fills in the defaults, shared
// by construction and hot reload so the two paths cannot diverge.
func normalizeConfig(cfg Config) (Config, error) {
	fail := func(err error) (Config, error) { return Config{}, err }
	if cfg.Window == nil {
		return fail(errors.New("stream: repricer needs a window"))
	}
	if cfg.Resolver == nil {
		return fail(errors.New("stream: repricer needs a resolver"))
	}
	if cfg.Demand == nil || cfg.Cost == nil {
		return fail(errors.New("stream: repricer needs demand and cost models"))
	}
	if cfg.P0 <= 0 {
		return fail(fmt.Errorf("stream: blended rate must be positive, got %v", cfg.P0))
	}
	if cfg.Strategy == nil {
		return fail(errors.New("stream: repricer needs a bundling strategy"))
	}
	if cfg.Tiers < 1 {
		return fail(errors.New("stream: need at least one tier"))
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = cfg.Window.Span().Seconds()
	}
	if cfg.DurationSec <= 0 {
		return fail(fmt.Errorf("stream: demand duration must be positive, got %v", cfg.DurationSec))
	}
	if cfg.SrcMaskBits == 0 {
		cfg.SrcMaskBits = 20
	}
	if cfg.DstMaskBits == 0 {
		cfg.DstMaskBits = 24
	}
	if cfg.SrcMaskBits < 0 || cfg.SrcMaskBits > 32 || cfg.DstMaskBits < 0 || cfg.DstMaskBits > 32 {
		return fail(fmt.Errorf("stream: mask bits out of range (%d, %d)", cfg.SrcMaskBits, cfg.DstMaskBits))
	}
	if cfg.Src6MaskBits == 0 {
		cfg.Src6MaskBits = 48
	}
	if cfg.Dst6MaskBits == 0 {
		cfg.Dst6MaskBits = 64
	}
	if cfg.Src6MaskBits < 0 || cfg.Src6MaskBits > 128 || cfg.Dst6MaskBits < 0 || cfg.Dst6MaskBits > 128 {
		return fail(fmt.Errorf("stream: IPv6 mask bits out of range (%d, %d)", cfg.Src6MaskBits, cfg.Dst6MaskBits))
	}
	if cfg.DrainGrace < 0 {
		return fail(fmt.Errorf("stream: drain grace must not be negative, got %v", cfg.DrainGrace))
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if !cfg.NextHop.IsValid() {
		cfg.NextHop = netip.AddrFrom4([4]byte{0, 0, 0, 0})
	}
	return cfg, nil
}

// ConsecutiveFailures reports how many re-price attempts have failed in
// a row (0 after any success). Warm-up empty windows are not failures;
// an empty window once a snapshot exists is, because it means ingest
// stopped feeding the window.
func (r *Repricer) ConsecutiveFailures() int64 { return r.failures.Load() }

// Current returns the latest published snapshot, or nil before the first
// successful re-price.
func (r *Repricer) Current() *Snapshot { return r.cur.Load() }

// Reprice rebuilds pricing from the current window contents and, on
// success, atomically publishes the new snapshot. The previous snapshot
// stays current on any failure (including an empty window), so a
// transient ingest gap never takes quoting down.
func (r *Repricer) Reprice(ctx context.Context) (*Snapshot, error) {
	snap, err := r.reprice(ctx)
	switch {
	case err == nil:
		r.failures.Store(0)
	case errors.Is(err, ErrEmptyWindow) && r.cur.Load() == nil:
		// Warm-up: nothing has arrived yet, nothing is at risk.
	default:
		r.failures.Add(1)
	}
	return snap, err
}

func (r *Repricer) reprice(ctx context.Context) (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	aggs := r.cfg.Window.Aggregates()
	if len(aggs) == 0 {
		return nil, ErrEmptyWindow
	}
	flows, skipped, err := demandfit.BuildFlowsParallelInto(
		ctx, r.flowBuf, aggs, r.cfg.Resolver, r.cfg.DurationSec, r.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("stream: resolve: %w", err)
	}
	r.flowBuf = flows[:0]
	market, err := core.NewMarket(flows, r.cfg.Demand, r.cfg.Cost, r.cfg.P0)
	if err != nil {
		return nil, fmt.Errorf("stream: fit: %w", err)
	}
	out, err := market.Run(r.cfg.Strategy, r.cfg.Tiers)
	if err != nil {
		return nil, fmt.Errorf("stream: reprice: %w", err)
	}
	snap, err := r.buildSnapshot(flows, skipped, out, aggs)
	if err != nil {
		return nil, err
	}
	r.cur.Store(snap)
	return snap, nil
}

// buildSnapshot assembles the immutable serving structures from one
// re-price outcome.
func (r *Repricer) buildSnapshot(flows []econ.Flow, skipped int, out core.Outcome, aggs []netflow.Aggregate) (*Snapshot, error) {
	table := tableFrom(out, flows, r.cfg.Demand.Name(), r.cfg.P0)

	addrOf := make(map[string]netflow.Aggregate, len(aggs))
	for _, a := range aggs {
		addrOf[a.Key] = a
	}
	byKey := make(map[quoteKey]int, len(flows))
	// tierOfPrefix resolves multi-bucket destinations deterministically:
	// when two source PoPs reach the same destination prefix in different
	// tiers, the route advertises the cheaper tier — by price, not tier
	// index, since nothing guarantees prices are sorted by index (ties
	// break toward the lower index). IPv6 buckets get quote keys but no
	// route: the tier-tagged RIB speaks the IPv4 wire format, so IPv6
	// traffic is served from the window exact-match path only.
	tierOfPrefix := make(map[netip.Prefix]int)
	for tier, block := range out.Partition {
		for _, i := range block {
			a, ok := addrOf[flows[i].ID]
			if !ok {
				return nil, fmt.Errorf("stream: flow %q has no source aggregate", flows[i].ID)
			}
			srcMasked, srcOK := maskAddr(a.SrcAddr, r.cfg.SrcMaskBits, r.cfg.Src6MaskBits)
			dstMasked, dstOK := maskAddr(a.DstAddr, r.cfg.DstMaskBits, r.cfg.Dst6MaskBits)
			if !srcOK || !dstOK {
				return nil, fmt.Errorf("stream: aggregate %q has an invalid endpoint sample (%v>%v)",
					a.Key, a.SrcAddr, a.DstAddr)
			}
			byKey[quoteKey{src: srcMasked, dst: dstMasked}] = tier
			if !dstMasked.Is4() {
				continue
			}
			pfx := netip.PrefixFrom(dstMasked, r.cfg.DstMaskBits)
			if prev, ok := tierOfPrefix[pfx]; !ok ||
				out.Prices[tier] < out.Prices[prev] ||
				(out.Prices[tier] == out.Prices[prev] && tier < prev) {
				tierOfPrefix[pfx] = tier
			}
		}
	}

	rib := bgp.NewRIB()
	prefixes := make([]netip.Prefix, 0, len(tierOfPrefix))
	for pfx := range tierOfPrefix {
		prefixes = append(prefixes, pfx)
	}
	updates, err := bgp.AnnounceTiered(prefixes, r.cfg.NextHop,
		func(p netip.Prefix) int { return tierOfPrefix[p] }, out.Prices)
	if err != nil {
		return nil, fmt.Errorf("stream: tier announcements: %w", err)
	}
	for i := range updates {
		if err := rib.Apply(&updates[i]); err != nil {
			return nil, fmt.Errorf("stream: installing tier routes: %w", err)
		}
	}

	return &Snapshot{
		Epoch:    r.epoch.Add(1),
		FittedAt: r.now(),
		Table:    table,
		Skipped:  skipped,
		byKey:    byKey,
		rib:      rib,
		srcBits:  r.cfg.SrcMaskBits,
		dstBits:  r.cfg.DstMaskBits,
		src6Bits: r.cfg.Src6MaskBits,
		dst6Bits: r.cfg.Dst6MaskBits,
	}, nil
}

// Run re-prices every interval until ctx is cancelled, then performs one
// final drain re-price so the last snapshot covers everything ingested
// before shutdown. The drain runs under the configured DrainGrace
// deadline: a wedged resolve delays shutdown by at most the grace
// period, never forever.
//
// Failed attempts (other than warm-up empty windows) are retried with
// exponential backoff — starting at interval/8 (floored at 10ms) and
// doubling up to the interval — instead of waiting a full interval, so
// a transient resolver outage shortens snapshot staleness rather than
// extending it. onTick, when non-nil, observes every attempt (for
// metrics): the published snapshot or nil, the re-price latency, and
// the error if any.
func (r *Repricer) Run(ctx context.Context, interval time.Duration,
	onTick func(snap *Snapshot, elapsed time.Duration, err error)) {
	tick := func(ctx context.Context) error {
		start := r.now()
		snap, err := r.Reprice(ctx)
		if onTick != nil {
			onTick(snap, r.now().Sub(start), err)
		}
		return err
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var (
		backoff time.Duration
		retryC  <-chan time.Time // nil (blocks forever) when no retry is due
	)
	schedule := func(err error) {
		if err == nil || (errors.Is(err, ErrEmptyWindow) && r.failures.Load() == 0) {
			// Success, or a warm-up empty window: nothing to retry.
			backoff, retryC = 0, nil
			return
		}
		switch {
		case backoff == 0:
			backoff = interval / 8
			if backoff < 10*time.Millisecond {
				backoff = 10 * time.Millisecond
			}
		case backoff < interval:
			backoff *= 2
		}
		if backoff > interval {
			backoff = interval
		}
		retryC = time.After(backoff)
	}
	for {
		select {
		case <-ctx.Done():
			// Final drain pass: price whatever arrived since the last
			// tick, bounded so shutdown cannot wedge on a stuck resolve.
			drainCtx, cancel := context.WithTimeout(context.Background(), r.drainGrace)
			tick(drainCtx)
			cancel()
			return
		case <-ticker.C:
			schedule(tick(ctx))
		case <-retryC:
			retryC = nil
			schedule(tick(ctx))
		}
	}
}

// tableFrom renders an outcome into the canonical tier table. It is the
// single construction path for both the online snapshot and the batch
// parity check, so the two cannot drift.
func tableFrom(out core.Outcome, flows []econ.Flow, modelName string, p0 float64) TierTable {
	tiers := make([]TierQuote, len(out.Partition))
	for b, block := range out.Partition {
		var demand float64
		for _, i := range block {
			demand += flows[i].Demand
		}
		tiers[b] = TierQuote{
			Tier:       b,
			Price:      out.Prices[b],
			Flows:      len(block),
			DemandMbps: demand,
		}
	}
	table := TierTable{
		Model:    modelName,
		Strategy: out.Strategy,
		P0:       p0,
		Flows:    len(flows),
		Profit:   out.Profit,
		Tiers:    tiers,
	}
	if !math.IsNaN(out.Capture) {
		c := out.Capture
		table.Capture = &c
	}
	return table
}

// BatchTable runs the batch pipeline's market fit on an already-built
// flow set and renders the same canonical table a snapshot would carry —
// the reference side of the online/batch consistency check.
func BatchTable(flows []econ.Flow, demand econ.Model, costModel cost.Model, p0 float64,
	strategy bundling.Strategy, tiers int) (TierTable, error) {
	market, err := core.NewMarket(flows, demand, costModel, p0)
	if err != nil {
		return TierTable{}, err
	}
	out, err := market.Run(strategy, tiers)
	if err != nil {
		return TierTable{}, err
	}
	return tableFrom(out, flows, demand.Name(), p0), nil
}
