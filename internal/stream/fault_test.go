package stream

// Regression tests for the live-path bugs the fault-injection harness
// flushed out of the serving loop: IPv4 mask widths applied to IPv6
// quote keys, tier-index tie-breaking on multi-bucket destinations, an
// unbounded final drain, and snapshot retention across every failure
// class while quotes are being served concurrently.

import (
	"context"
	"errors"
	"math"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// fixedResolver resolves every pair to the same distance and region —
// enough for tests that drive buildSnapshot with a crafted outcome.
type fixedResolver struct{}

func (fixedResolver) Resolve(src, dst netip.Addr) (float64, econ.Region, error) {
	return 50, econ.RegionNational, nil
}

// craftedRepricer builds a repricer whose window is irrelevant (the
// tests below call buildSnapshot directly with hand-built inputs).
func craftedRepricer(t *testing.T) *Repricer {
	t.Helper()
	rp, err := NewRepricer(Config{
		Window:   mustWindow(t, time.Hour, 4),
		Resolver: fixedResolver{},
		Demand:   econ.CED{Alpha: 1.1},
		Cost:     cost.Linear{Theta: 0.2},
		P0:       30,
		Strategy: bundling.ProfitWeighted{},
		Tiers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// crafted builds a snapshot from explicit aggregates, a one-flow-per-
// aggregate partition, and a price vector.
func crafted(t *testing.T, rp *Repricer, aggs []netflow.Aggregate, partition [][]int, prices []float64) *Snapshot {
	t.Helper()
	flows := make([]econ.Flow, len(aggs))
	for i, a := range aggs {
		flows[i] = econ.Flow{ID: a.Key, Demand: 100, Distance: 50, Region: econ.RegionNational}
	}
	out := core.Outcome{
		Strategy:  "crafted",
		Bundles:   len(partition),
		Partition: partition,
		Prices:    prices,
		Profit:    1,
		Capture:   math.NaN(),
	}
	snap, err := rp.buildSnapshot(flows, 0, out, aggs)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestQuoteMasksPerAddressFamily is the regression test for the IPv6
// quote-key collapse: buildSnapshot used to mask every endpoint with
// the IPv4 widths, so distinct IPv6 /48s collapsed onto one bucket (and
// the /24-masked IPv6 destination wedged the IPv4-only RIB). Each
// family now masks at its own widths on both the build path and the
// Quote path.
func TestQuoteMasksPerAddressFamily(t *testing.T) {
	rp := craftedRepricer(t)
	aggs := []netflow.Aggregate{
		{Key: "v4", SrcAddr: netip.MustParseAddr("10.0.0.1"), DstAddr: netip.MustParseAddr("10.1.0.1")},
		{Key: "v6a", SrcAddr: netip.MustParseAddr("2001:db8:a:1::1"), DstAddr: netip.MustParseAddr("2001:db8:100:1::1")},
		{Key: "v6b", SrcAddr: netip.MustParseAddr("2001:db8:b:1::1"), DstAddr: netip.MustParseAddr("2001:db8:200:1::1")},
	}
	snap := crafted(t, rp, aggs, [][]int{{0}, {1}, {2}}, []float64{10, 20, 30})

	// The two IPv6 buckets share their top 20 bits — under the IPv4 mask
	// widths they collapsed onto a single key. They must quote their own
	// tiers, from the window path, at any address inside the /48 and /64.
	qa, ok := snap.Quote(netip.MustParseAddr("2001:db8:a:1::99"), netip.MustParseAddr("2001:db8:100:1::42"))
	if !ok || qa.Source != SourceWindow {
		t.Fatalf("v6a quote = %+v ok=%v, want a window hit", qa, ok)
	}
	qb, ok := snap.Quote(netip.MustParseAddr("2001:db8:b:1::99"), netip.MustParseAddr("2001:db8:200:1::42"))
	if !ok || qb.Source != SourceWindow {
		t.Fatalf("v6b quote = %+v ok=%v, want a window hit", qb, ok)
	}
	if qa.Tier != 1 || qb.Tier != 2 {
		t.Fatalf("IPv6 buckets collapsed: tiers (%d, %d), want (1, 2)", qa.Tier, qb.Tier)
	}

	// The IPv4 bucket still quotes tier 0, and a 4-in-6 mapped pair
	// unmaps onto the same bucket.
	q4, ok := snap.Quote(netip.MustParseAddr("10.0.0.9"), netip.MustParseAddr("10.1.0.9"))
	if !ok || q4.Tier != 0 {
		t.Fatalf("v4 quote = %+v ok=%v, want tier 0", q4, ok)
	}
	qm, ok := snap.Quote(netip.MustParseAddr("::ffff:10.0.0.9"), netip.MustParseAddr("::ffff:10.1.0.9"))
	if !ok || qm.Tier != 0 || qm.Source != SourceWindow {
		t.Fatalf("4-in-6 quote = %+v ok=%v, want the v4 bucket", qm, ok)
	}

	// Different /48 source: no bucket, and no RIB fallback either — the
	// tier-tagged RIB speaks IPv4 only, so IPv6 serves from the window
	// exact-match path alone.
	if q, ok := snap.Quote(netip.MustParseAddr("2001:db8:ffff::1"), netip.MustParseAddr("2001:db8:100:1::1")); ok {
		t.Fatalf("unknown IPv6 source got a quote %+v, want a miss", q)
	}
	// Invalid endpoints can never match.
	if _, ok := snap.Quote(netip.Addr{}, netip.MustParseAddr("10.1.0.1")); ok {
		t.Fatal("invalid source got a quote")
	}
	if _, ok := snap.Quote(netip.MustParseAddr("10.0.0.1"), netip.Addr{}); ok {
		t.Fatal("invalid destination got a quote")
	}
}

// TestRIBTieBreakPrefersCheaperPrice is the regression test for the
// multi-bucket destination tie-break: when two source PoPs reach the
// same destination prefix in different tiers, the advertised route used
// to keep the lower *tier index*, which is only the cheaper tier when
// prices happen to be sorted. Nothing guarantees that — the route must
// compare prices, with index as the deterministic tie-break.
func TestRIBTieBreakPrefersCheaperPrice(t *testing.T) {
	rp := craftedRepricer(t)
	// Two buckets (distinct src /20s) sharing one destination /24.
	aggs := []netflow.Aggregate{
		{Key: "popA", SrcAddr: netip.MustParseAddr("10.0.0.1"), DstAddr: netip.MustParseAddr("10.9.0.1")},
		{Key: "popB", SrcAddr: netip.MustParseAddr("10.16.0.1"), DstAddr: netip.MustParseAddr("10.9.0.2")},
	}
	unknownSrc := netip.MustParseAddr("203.0.113.7") // TEST-NET, never a PoP

	// Non-monotone price vector: the higher-index tier is cheaper.
	snap := crafted(t, rp, aggs, [][]int{{0}, {1}}, []float64{5, 2})
	q, ok := snap.Quote(unknownSrc, netip.MustParseAddr("10.9.0.200"))
	if !ok || q.Source != SourceRIB {
		t.Fatalf("quote = %+v ok=%v, want a RIB fallback hit", q, ok)
	}
	if q.Tier != 1 || q.Price != 2 {
		t.Fatalf("RIB advertises tier %d at %v, want the cheaper tier 1 at 2", q.Tier, q.Price)
	}

	// Equal prices: ties break toward the lower index, deterministically.
	snap = crafted(t, rp, aggs, [][]int{{0}, {1}}, []float64{2, 2})
	q, ok = snap.Quote(unknownSrc, netip.MustParseAddr("10.9.0.200"))
	if !ok || q.Tier != 0 {
		t.Fatalf("equal-price tie quote = %+v ok=%v, want tier 0", q, ok)
	}
}

// TestRunDrainBoundedByGrace is the regression test for the unbounded
// shutdown drain: Run's final re-price used context.Background(), so a
// resolve wedged on a dead backend stalled shutdown forever. The drain
// now runs under DrainGrace; a hung resolver delays exit by at most the
// grace period.
func TestRunDrainBoundedByGrace(t *testing.T) {
	ds, err := traces.EUISP(81)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Hour, 4)
	ingestStreams(t, w, streams)

	hung := faultinject.NewResolver(faultinject.New(83), &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true})
	hung.SetHang(true)
	rp, err := NewRepricer(Config{
		Window:      w,
		Resolver:    hung,
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
		Workers:     2,
		DrainGrace:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var drainErr atomic.Value
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rp.Run(ctx, time.Hour, func(snap *Snapshot, elapsed time.Duration, err error) {
			if err != nil {
				drainErr.Store(err)
			}
		})
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Run wedged on a hung resolve past the drain grace")
	}
	err, _ = drainErr.Load().(error)
	if err == nil {
		t.Fatal("drain against a hung resolver reported no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error = %v, want the grace deadline", err)
	}
	if rp.Current() != nil {
		t.Error("failed drain published a snapshot")
	}
	if rp.ConsecutiveFailures() != 1 {
		t.Errorf("consecutive failures = %d, want 1", rp.ConsecutiveFailures())
	}
}

// toggleCost injects a fit-path failure on demand.
type toggleCost struct {
	inner cost.Model
	fail  atomic.Bool
}

func (c *toggleCost) Name() string { return c.inner.Name() }

func (c *toggleCost) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if c.fail.Load() {
		return nil, errors.New("injected cost-model failure")
	}
	return c.inner.RelativeCosts(flows)
}

// TestSnapshotRetentionUnderConcurrentQuoting drives the repricer
// through every failure class — resolver outage, fit error, empty
// window — while quote readers hammer Current() concurrently (run under
// -race by ci.sh). The last good snapshot must stay current through
// every failure, epochs must be strictly monotone across successes, and
// the consecutive-failure counter must track the failure run.
func TestSnapshotRetentionUnderConcurrentQuoting(t *testing.T) {
	ds, err := traces.EUISP(84)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWindow(t, time.Hour, 4)
	ingestStreams(t, w, streams)
	c := netflow.NewCollector(traces.AggregateKey)
	ingestStreams(t, c, streams)
	batchAggs := c.Aggregates()

	rv := faultinject.NewResolver(faultinject.New(86), &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true})
	costModel := &toggleCost{inner: cost.Linear{Theta: 0.2}}
	rp, err := NewRepricer(Config{
		Window:      w,
		Resolver:    rv,
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        costModel,
		P0:          ds.P0,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       3,
		DurationSec: ds.DurationSec,
		Workers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}

	first, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Quote readers: every observed snapshot must answer every bucket,
	// and the epoch must never move backwards.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := rp.Current()
				if snap == nil {
					t.Error("Current() went nil after the first snapshot")
					return
				}
				if snap.Epoch < lastEpoch {
					t.Errorf("epoch moved backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				a := batchAggs[int(lastEpoch)%len(batchAggs)]
				if _, ok := snap.Quote(a.SrcAddr, a.DstAddr); !ok {
					t.Errorf("epoch %d snapshot lost bucket %s", snap.Epoch, a.Key)
					return
				}
			}
		}()
	}

	ctx := context.Background()
	assertFailureRetains := func(wantFailures int64) {
		t.Helper()
		if _, err := rp.Reprice(ctx); err == nil {
			t.Fatal("injected failure repriced successfully")
		}
		if rp.Current() != first {
			t.Fatal("failed reprice displaced the serving snapshot")
		}
		if got := rp.ConsecutiveFailures(); got != wantFailures {
			t.Fatalf("consecutive failures = %d, want %d", got, wantFailures)
		}
	}

	// Resolver outage: every resolve refuses, the build yields no flows.
	rv.SetOutage(true)
	assertFailureRetains(1)
	assertFailureRetains(2)
	rv.SetOutage(false)

	// Fit error: resolution succeeds, the cost model blows up.
	costModel.fail.Store(true)
	assertFailureRetains(3)
	costModel.fail.Store(false)

	// Recovery: a clean reprice publishes the next epoch and resets the
	// failure run.
	recovered, err := rp.Reprice(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Epoch != first.Epoch+1 {
		t.Fatalf("recovered epoch = %d, want %d", recovered.Epoch, first.Epoch+1)
	}
	if rp.ConsecutiveFailures() != 0 {
		t.Fatalf("consecutive failures = %d after recovery, want 0", rp.ConsecutiveFailures())
	}

	// Empty window (ingest gap): the window expires, the recovered
	// snapshot stays current and the gap counts as a failure.
	w.now = func() time.Time { return time.Now().Add(24 * time.Hour) }
	if _, err := rp.Reprice(ctx); !errors.Is(err, ErrEmptyWindow) {
		t.Fatalf("err = %v, want ErrEmptyWindow", err)
	}
	if rp.Current() != recovered {
		t.Fatal("empty-window failure displaced the serving snapshot")
	}
	if rp.ConsecutiveFailures() != 1 {
		t.Fatalf("consecutive failures = %d after ingest gap, want 1", rp.ConsecutiveFailures())
	}

	close(stop)
	wg.Wait()
}

// TestNewRepricerValidationFaultKnobs covers the knobs this harness
// added: IPv6 mask widths and the drain grace.
func TestNewRepricerValidationFaultKnobs(t *testing.T) {
	ds, err := traces.EUISP(87)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{
		Window:   mustWindow(t, time.Minute, 2),
		Resolver: &demandfit.Resolver{Geo: ds.Geo},
		Demand:   econ.CED{Alpha: 1.1},
		Cost:     cost.Linear{Theta: 0.2},
		P0:       ds.P0,
		Strategy: bundling.ProfitWeighted{},
		Tiers:    3,
	}
	bad := []func(*Config){
		func(c *Config) { c.Src6MaskBits = 200 },
		func(c *Config) { c.Dst6MaskBits = -2 },
		func(c *Config) { c.DrainGrace = -time.Second },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := NewRepricer(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
