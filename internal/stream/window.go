// Package stream is the online half of the collection pipeline (§5's
// deployment sketch): a sliding-window flow accumulator fed by the UDP
// NetFlow collector, and a periodic repricer that re-fits the demand
// model over the live window and publishes immutable pricing snapshots
// for the serving layer. The batch pipeline (netflow.Collector →
// demandfit → core) computes one answer from one capture; this package
// computes the same answer continuously as the traffic mix shifts.
package stream

import (
	"errors"
	"sort"
	"sync"
	"time"

	"tieredpricing/internal/netflow"
)

// Window is a sliding-window flow accumulator: the last Span() of
// ingested records, de-duplicated across routers and aggregated into
// demand buckets exactly like the batch netflow.Collector, with older
// traffic aged out in slot-sized steps. It implements netflow.Sink and is
// safe for concurrent ingest (core routers export independently).
//
// Time is bucketed into numSlots slots of slotDur each; a record lands in
// the slot covering its arrival time, and slots older than the window are
// dropped whole. Cross-router duplicate suppression spans all live slots,
// so the window's aggregates over a fully-contained capture are identical
// to the batch collector's.
type Window struct {
	keyFn    netflow.AggregateKeyFunc
	slotDur  time.Duration
	numSlots int
	now      func() time.Time // injectable for tests

	mu         sync.Mutex
	slots      map[int64]*slot // keyed by absolute slot index
	records    int
	duplicates int
	dropped    int
}

var _ netflow.Sink = (*Window)(nil)

// slot holds one slot's dedup set and partial aggregates.
type slot struct {
	seen map[netflow.FlowKey]struct{}
	aggs map[string]*netflow.Aggregate
}

// NewWindow creates a window of slots slots of slotDur each.
func NewWindow(keyFn netflow.AggregateKeyFunc, slotDur time.Duration, slots int) (*Window, error) {
	if keyFn == nil {
		return nil, errors.New("stream: nil aggregate key function")
	}
	if slotDur <= 0 {
		return nil, errors.New("stream: slot duration must be positive")
	}
	if slots < 1 {
		return nil, errors.New("stream: need at least one slot")
	}
	return &Window{
		keyFn:    keyFn,
		slotDur:  slotDur,
		numSlots: slots,
		now:      time.Now,
		slots:    make(map[int64]*slot),
	}, nil
}

// SetClock replaces the window's time source — fault rehearsal (empty
// window stretches driven by a deterministic clock) and tests. Call it
// before the first Ingest; it is not synchronized with ingest.
func (w *Window) SetClock(now func() time.Time) {
	if now != nil {
		w.now = now
	}
}

// Span is the window length: slot duration × slot count.
func (w *Window) Span() time.Duration {
	return w.slotDur * time.Duration(w.numSlots)
}

// slotIndex maps a wall-clock instant to its absolute slot number.
func (w *Window) slotIndex(t time.Time) int64 {
	return t.UnixNano() / int64(w.slotDur)
}

// evictLocked drops slots that have aged out of the window ending at the
// current slot cur.
func (w *Window) evictLocked(cur int64) {
	for idx := range w.slots {
		if idx <= cur-int64(w.numSlots) {
			delete(w.slots, idx)
		}
	}
}

// Ingest processes one export packet (netflow.Sink). Dedup and sampling
// restoration follow netflow.Collector exactly; the only difference is
// that the accumulated state ages out slot by slot.
func (w *Window) Ingest(h netflow.Header, recs []netflow.Record) {
	w.ingestAt(w.slotIndex(w.now()), h, recs)
}

// ingestAt files recs into slot cur; Ingest derives cur from the live
// clock, IngestAt (WAL replay) from the logged arrival timestamp.
func (w *Window) ingestAt(cur int64, h netflow.Header, recs []netflow.Record) {
	sampling := uint64(h.SamplingInterval)
	if sampling == 0 {
		sampling = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(cur)
	s, ok := w.slots[cur]
	if !ok {
		s = &slot{
			seen: make(map[netflow.FlowKey]struct{}),
			aggs: make(map[string]*netflow.Aggregate),
		}
		w.slots[cur] = s
	}
	for _, r := range recs {
		w.records++
		key := netflow.KeyOf(r)
		if w.seenLocked(key) {
			w.duplicates++
			continue
		}
		s.seen[key] = struct{}{}
		bucket := w.keyFn(r)
		if bucket == "" {
			w.dropped++
			continue
		}
		agg, ok := s.aggs[bucket]
		if !ok {
			agg = &netflow.Aggregate{
				Key:     bucket,
				SrcAddr: r.SrcAddr,
				DstAddr: r.DstAddr,
				Input:   r.Input,
				Output:  r.Output,
			}
			s.aggs[bucket] = agg
		} else {
			agg.TakeSample(r)
		}
		agg.Octets += uint64(r.Octets) * sampling
		agg.Records++
	}
}

// seenLocked checks the dedup sets of every live slot.
func (w *Window) seenLocked(key netflow.FlowKey) bool {
	for _, s := range w.slots {
		if _, dup := s.seen[key]; dup {
			return true
		}
	}
	return false
}

// Aggregates merges the live slots into the batch collector's output
// shape: per-bucket aggregates sorted by key, octets and record counts
// summed across slots, endpoint samples merged under the canonical
// minimum-tuple rule (matching the collector exactly). Because every
// per-bucket operation commutes — sums, counts, minimum samples — the
// merge is independent of slot order, ingest order, and any sharding of
// the records upstream.
func (w *Window) Aggregates() []netflow.Aggregate {
	return w.aggregatesAt(w.slotIndex(w.now()))
}

// aggregatesAt is Aggregates with an explicit current slot, so a sharded
// wrapper can evict every shard against one shared instant.
func (w *Window) aggregatesAt(cur int64) []netflow.Aggregate {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(cur)
	merged := make(map[string]*netflow.Aggregate)
	for _, s := range w.slots {
		for key, a := range s.aggs {
			m, ok := merged[key]
			if !ok {
				cp := *a
				merged[key] = &cp
				continue
			}
			m.Octets += a.Octets
			m.Records += a.Records
			m.MergeSample(*a)
		}
	}
	out := make([]netflow.Aggregate, 0, len(merged))
	for _, a := range merged {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats reports lifetime ingest counters (records seen, cross-router
// duplicates suppressed, unkeyed records dropped) and the number of live
// slots. Counters are lifetime, not windowed, so they are monotonic and
// exportable as Prometheus counters.
func (w *Window) Stats() (records, duplicates, dropped, liveSlots int) {
	records, duplicates, dropped, idxs := w.statsAt(w.slotIndex(w.now()))
	return records, duplicates, dropped, len(idxs)
}

// statsAt returns the lifetime counters and the live slot indices after
// evicting against cur. The sharded wrapper needs the indices themselves
// to count slots that are live in any shard exactly once.
func (w *Window) statsAt(cur int64) (records, duplicates, dropped int, live []int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(cur)
	live = make([]int64, 0, len(w.slots))
	for idx := range w.slots {
		live = append(live, idx)
	}
	return w.records, w.duplicates, w.dropped, live
}
