package stream

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"tieredpricing/internal/netflow"
	"tieredpricing/internal/traces"
)

// statePacket builds an export packet with two records for src>dst
// pairs derived from i.
func statePacket(i int) (netflow.Header, []netflow.Record) {
	h := netflow.Header{Count: 2, SamplingInterval: 1, UnixSecs: uint32(1700000000 + i)}
	recs := []netflow.Record{
		{
			SrcAddr: netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i%200)}),
			DstAddr: netip.AddrFrom4([4]byte{192, 168, 0, byte(1 + i%100)}),
			Octets:  uint32(1000 + i), Packets: 2,
			SrcPort: uint16(1024 + i), DstPort: 443, Proto: 6, SrcAS: uint16(i),
		},
		{
			SrcAddr: netip.AddrFrom4([4]byte{10, 0, 1, byte(1 + i%200)}),
			DstAddr: netip.AddrFrom4([4]byte{192, 168, 1, byte(1 + i%100)}),
			Octets:  uint32(700 + i), Packets: 1,
			SrcPort: 80, DstPort: uint16(2048 + i), Proto: 17, SrcAS: uint16(i + 1),
		},
	}
	return h, recs
}

// newStateWindow builds a 4-slot hourly window on a frozen clock.
func newStateWindow(t *testing.T, at time.Time) *Window {
	t.Helper()
	w, err := NewWindow(traces.AggregateKey, time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.SetClock(func() time.Time { return at })
	return w
}

func TestWindowExportImportRoundTrip(t *testing.T) {
	at := time.Unix(1700000000, 0)
	w := newStateWindow(t, at)
	for i := 0; i < 50; i++ {
		h, recs := statePacket(i)
		// Spread across three slots, including a duplicate packet.
		w.IngestAt(at.Add(-time.Duration(i%3)*time.Hour), h, recs)
	}
	h0, r0 := statePacket(0)
	w.IngestAt(at, h0, r0) // pure duplicate: counted, not re-aggregated

	st := w.Export()
	if len(st.Slots) != 3 {
		t.Fatalf("%d slots exported, want 3", len(st.Slots))
	}
	if st.Records != 102 || st.Duplicates != 2 {
		t.Fatalf("counters records=%d duplicates=%d, want 102/2", st.Records, st.Duplicates)
	}

	w2 := newStateWindow(t, at)
	if err := w2.Import(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w2.Aggregates(), w.Aggregates()) {
		t.Fatal("imported window's aggregates diverge")
	}
	r, d, dr, live := w2.Stats()
	if r != 102 || d != 2 || dr != 0 || live != 3 {
		t.Fatalf("imported stats %d/%d/%d/%d", r, d, dr, live)
	}
	// Export again: byte-identical state (the determinism the recovery
	// parity tests lean on).
	b1, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(w2.Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("export → import → export is not byte-identical")
	}
}

// TestExportDeterministic pins that two windows fed the same packets in
// the same order export identical bytes: Go's per-map iteration seed
// must not leak into the serialized state. (Ingest order itself is
// allowed to matter — first-record endpoint sampling is order-dependent
// in the batch collector too — which is exactly why the WAL replays
// entries in append order.)
func TestExportDeterministic(t *testing.T) {
	at := time.Unix(1700000000, 0)
	wA := newStateWindow(t, at)
	wB := newStateWindow(t, at)
	for i := 0; i < 30; i++ {
		h, recs := statePacket(i)
		wA.IngestAt(at, h, recs)
	}
	for i := 0; i < 30; i++ {
		h, recs := statePacket(i)
		wB.IngestAt(at, h, recs)
	}
	a, err := json.Marshal(wA.Export())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wB.Export())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("ingest order leaked into the exported state")
	}
}

func TestImportValidatesGeometry(t *testing.T) {
	at := time.Unix(1700000000, 0)
	w := newStateWindow(t, at)
	st := w.Export()

	stBadSlot := st
	stBadSlot.SlotNanos = int64(time.Minute)
	if err := w.Import(stBadSlot); err == nil {
		t.Error("slot-duration mismatch accepted")
	}
	stBadCount := st
	stBadCount.NumSlots = 8
	if err := w.Import(stBadCount); err == nil {
		t.Error("slot-count mismatch accepted")
	}
	stDup := st
	stDup.Slots = []SlotState{{Index: 1}, {Index: 1}}
	stDup.SlotNanos, stDup.NumSlots = int64(time.Hour), 4
	// Indices near zero have long since aged out relative to the frozen
	// clock, so use live ones.
	cur := at.UnixNano() / int64(time.Hour)
	stDup.Slots = []SlotState{{Index: cur}, {Index: cur}}
	if err := w.Import(stDup); err == nil {
		t.Error("duplicate slot accepted")
	}
}

// TestImportSkipsAgedSlots: a checkpoint restored after a long outage
// must not resurrect slots the window would have evicted.
func TestImportSkipsAgedSlots(t *testing.T) {
	at := time.Unix(1700000000, 0)
	w := newStateWindow(t, at)
	h, recs := statePacket(1)
	w.IngestAt(at, h, recs)
	st := w.Export()

	// Restart 6 hours later: the only slot is beyond the 4-hour window.
	w2 := newStateWindow(t, at.Add(6*time.Hour))
	if err := w2.Import(st); err != nil {
		t.Fatal(err)
	}
	if got := len(w2.Aggregates()); got != 0 {
		t.Fatalf("aged slot resurrected: %d aggregates", got)
	}
}

// TestDedupAfterImport: the restored dedup sets must keep suppressing
// duplicates of records ingested before the restart.
func TestDedupAfterImport(t *testing.T) {
	at := time.Unix(1700000000, 0)
	w := newStateWindow(t, at)
	h, recs := statePacket(7)
	w.IngestAt(at, h, recs)

	w2 := newStateWindow(t, at)
	if err := w2.Import(w.Export()); err != nil {
		t.Fatal(err)
	}
	w2.IngestAt(at.Add(time.Minute), h, recs) // same flows again, post-restart
	_, dups, _, _ := w2.Stats()
	if dups != 2 {
		t.Fatalf("duplicates after import = %d, want 2", dups)
	}
	if !reflect.DeepEqual(w2.Aggregates(), w.Aggregates()) {
		t.Fatal("re-ingested duplicates changed the aggregates")
	}
}

// TestIngestAtMatchesIngest: with the clock frozen at ts, Ingest and
// IngestAt(ts) must be indistinguishable.
func TestIngestAtMatchesIngest(t *testing.T) {
	at := time.Unix(1700000000, 0)
	wA := newStateWindow(t, at)
	wB := newStateWindow(t, at)
	for i := 0; i < 10; i++ {
		h, recs := statePacket(i)
		wA.Ingest(h, recs)
		wB.IngestAt(at, h, recs)
	}
	a, _ := json.Marshal(wA.Export())
	b, _ := json.Marshal(wB.Export())
	if string(a) != string(b) {
		t.Fatal("IngestAt(now) diverges from Ingest")
	}
}

func TestRestoreEpoch(t *testing.T) {
	var r Repricer
	r.RestoreEpoch(41)
	if got := r.epoch.Load(); got != 41 {
		t.Fatalf("epoch %d after restore, want 41", got)
	}
	r.RestoreEpoch(7) // never rewinds
	if got := r.epoch.Load(); got != 41 {
		t.Fatalf("epoch %d after lower restore, want 41", got)
	}
}
