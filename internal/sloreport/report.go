// Package sloreport defines the machine-readable record a closed-loop
// load-test run produces: cmd/loadgen writes one, cmd/benchjson's `slo`
// subcommand converts it into benchmark-result rows for the BENCH_*.json
// trajectory, and `benchjson diff` gates serving-path SLO regressions on
// those rows. Keeping the schema in one package means the generator and
// the gate cannot drift apart.
package sloreport

import (
	"encoding/json"
	"fmt"
	"os"
)

// Report is the outcome of one load-test run against a live tierd.
type Report struct {
	// Profile names the load shape (e.g. "smoke", "soak") so the same
	// daemon can carry several SLO records in one trajectory.
	Profile string `json:"profile"`
	// Seed is the workload seed: trace generation, quote-mix order and
	// NetFlow replay are deterministic given it.
	Seed int64 `json:"seed"`
	// Build identifies the daemon under test (its X-Tierd-Build header:
	// git revision and go version), so an SLO record in the trajectory
	// can be traced back to the binary that produced it. Empty when the
	// daemon predates build stamping or was unreachable at stamp time.
	Build string `json:"build,omitempty"`

	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationSec float64 `json:"duration_sec"`

	// Requests = OK + Errors. Errors counts transport failures and every
	// non-200 response; Misses is the 404 no-matching-tier subset of
	// Errors; Stale counts 200s tagged X-Tierd-Stale (served from a
	// snapshot older than the staleness policy).
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Errors   uint64 `json:"errors"`
	Misses   uint64 `json:"misses"`
	Stale    uint64 `json:"stale"`

	ErrorRate float64 `json:"error_rate"`
	StaleRate float64 `json:"stale_rate"`

	Latency Latency `json:"latency"`
	Netflow Netflow `json:"netflow"`
	Proc    Proc    `json:"proc"`

	// Tenants carries one row per tenant when the run drove a
	// multi-tenant fleet (loadgen -tenants): each row is that tenant's
	// slice of the same open-loop schedule, quoted through its own
	// /v1/t/{id}/quote endpoint. Present only in fleet-mode runs, so
	// single-tenant reports are byte-identical to the pre-fleet schema.
	// Fairness regressions — one tenant's tail growing while the
	// aggregate stays flat — are visible here and nowhere else.
	Tenants []Tenant `json:"tenants,omitempty"`
}

// Tenant is one tenant's slice of a fleet-mode run.
type Tenant struct {
	ID string `json:"id"`

	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Errors   uint64 `json:"errors"`
	Misses   uint64 `json:"misses"`
	Stale    uint64 `json:"stale"`

	ErrorRate float64 `json:"error_rate"`
	StaleRate float64 `json:"stale_rate"`

	Latency Latency `json:"latency"`
}

// Latency carries the quote-latency distribution in nanoseconds,
// measured open-loop from each request's scheduled send time (so queueing
// caused by a saturated server is charged to the server, not hidden —
// no coordinated omission).
type Latency struct {
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

// Netflow describes the concurrent ingest push that forces reprice churn
// while quotes are being served.
type Netflow struct {
	Datagrams   uint64  `json:"datagrams"`
	TargetPPS   float64 `json:"target_pps"`
	AchievedPPS float64 `json:"achieved_pps"`
}

// Proc is the daemon's resource footprint sampled from /proc over the
// measured window. Sampled is false when no PID was supplied or /proc is
// unreadable (non-Linux).
type Proc struct {
	Sampled     bool    `json:"sampled"`
	MaxRSSBytes int64   `json:"max_rss_bytes"`
	CPUSeconds  float64 `json:"cpu_seconds"`
}

// Validate rejects reports that cannot have come from a completed run.
func (r *Report) Validate() error {
	if r.Profile == "" {
		return fmt.Errorf("sloreport: empty profile")
	}
	if r.TargetQPS <= 0 || r.DurationSec <= 0 {
		return fmt.Errorf("sloreport: non-positive target QPS or duration")
	}
	if r.Requests != r.OK+r.Errors {
		return fmt.Errorf("sloreport: requests %d != ok %d + errors %d", r.Requests, r.OK, r.Errors)
	}
	if err := r.Latency.validate(); err != nil {
		return err
	}
	if len(r.Tenants) > 0 {
		seen := make(map[string]bool, len(r.Tenants))
		var sum uint64
		for _, tn := range r.Tenants {
			if tn.ID == "" {
				return fmt.Errorf("sloreport: tenant row with empty id")
			}
			if seen[tn.ID] {
				return fmt.Errorf("sloreport: duplicate tenant row %q", tn.ID)
			}
			seen[tn.ID] = true
			if tn.Requests != tn.OK+tn.Errors {
				return fmt.Errorf("sloreport: tenant %s: requests %d != ok %d + errors %d",
					tn.ID, tn.Requests, tn.OK, tn.Errors)
			}
			if err := tn.Latency.validate(); err != nil {
				return fmt.Errorf("tenant %s: %w", tn.ID, err)
			}
			sum += tn.Requests
		}
		// Fleet mode routes every request to exactly one tenant, so the
		// rows partition the run.
		if sum != r.Requests {
			return fmt.Errorf("sloreport: tenant requests sum %d != run total %d", sum, r.Requests)
		}
	}
	return nil
}

func (l Latency) validate() error {
	if l.P50Ns > l.P90Ns || l.P90Ns > l.P99Ns || l.P99Ns > l.P999Ns || l.P999Ns > l.MaxNs {
		return fmt.Errorf("sloreport: latency quantiles not monotone: p50=%d p90=%d p99=%d p999=%d max=%d",
			l.P50Ns, l.P90Ns, l.P99Ns, l.P999Ns, l.MaxNs)
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
