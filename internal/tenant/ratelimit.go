package tenant

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: capacity `burst` tokens,
// refilled at `rate` tokens per second. Each admitted request costs one
// token; a drained bucket answers how long until the next token
// accrues, which the API surfaces as Retry-After on its 429s.
//
// A nil *Bucket admits everything — tenants without a configured quota
// carry a nil limiter.
type Bucket struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time

	denied uint64 // lifetime count of rejected requests
}

// NewBucket builds a bucket that admits `rate` requests per second with
// bursts up to `burst` (burst <= 0 selects rate). The bucket starts
// full. rate <= 0 returns nil: no limiting.
func NewBucket(rate, burst float64, now func() time.Time) *Bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Allow spends one token. When the bucket is empty it reports false and
// how long until a full token has accrued (the Retry-After hint).
func (b *Bucket) Allow() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	elapsed := t.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.denied++
	missing := 1 - b.tokens
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// Denied reports the lifetime count of rejected requests.
func (b *Bucket) Denied() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}

// Rate reports the configured sustained rate (0 for a nil bucket).
func (b *Bucket) Rate() float64 {
	if b == nil {
		return 0
	}
	return b.rate
}

// Burst reports the configured burst capacity (0 for a nil bucket).
func (b *Bucket) Burst() float64 {
	if b == nil {
		return 0
	}
	return b.burst
}
