package tenant

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tieredpricing/internal/netflow"
)

func TestValidateSpecs(t *testing.T) {
	cases := []struct {
		name    string
		specs   []Spec
		wantDef string
		wantErr bool
	}{
		{"empty", nil, "", true},
		{"single", []Spec{{ID: "a"}}, "a", false},
		{"explicit default", []Spec{{ID: "a"}, {ID: "b", Default: true}}, "b", false},
		{"first is default", []Spec{{ID: "x"}, {ID: "y"}}, "x", false},
		{"two defaults", []Spec{{ID: "a", Default: true}, {ID: "b", Default: true}}, "", true},
		{"dup id", []Spec{{ID: "a"}, {ID: "a"}}, "", true},
		{"bad id chars", []Spec{{ID: "A/B"}}, "", true},
		{"dotdot id", []Spec{{ID: ".."}}, "", true},
		{"empty id", []Spec{{ID: ""}}, "", true},
		{"dup router", []Spec{{ID: "a", Routers: []uint8{1}}, {ID: "b", Routers: []uint8{1}}}, "", true},
		{"negative weight", []Spec{{ID: "a", Weight: -1}}, "", true},
		{"negative rate", []Spec{{ID: "a", RateQPS: -5}}, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			def, err := ValidateSpecs(tc.specs)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if !tc.wantErr && def != tc.wantDef {
				t.Fatalf("default = %q, want %q", def, tc.wantDef)
			}
		})
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"tenants": [
		{"id": "alpha", "trace": "/tmp/a", "weight": 2, "rate_qps": 100, "routers": [1, 2]},
		{"id": "beta", "trace": "/tmp/b", "default": true, "tiers": 4}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, def, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || def != "beta" {
		t.Fatalf("got %d specs, default %q", len(specs), def)
	}
	if specs[0].Weight != 2 || specs[0].RateQPS != 100 || len(specs[0].Routers) != 2 {
		t.Fatalf("alpha spec mangled: %+v", specs[0])
	}
	if specs[1].Tiers != 4 {
		t.Fatalf("beta spec mangled: %+v", specs[1])
	}

	if _, _, err := LoadSpecFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tenants": [{"id": "Ümlaut"}]}`), 0o644)
	if _, _, err := LoadSpecFile(bad); err == nil {
		t.Fatal("invalid id should error")
	}
}

// fakeClock is a manual time source shared by a test and the code under
// test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucket(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 3, clk.Now) // 10 qps, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("drained bucket admitted a request")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 100ms] at 10 qps", retry)
	}
	if b.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", b.Denied())
	}

	clk.Advance(100 * time.Millisecond) // one token accrues
	if ok, _ := b.Allow(); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second request should be denied; only one token accrued")
	}

	clk.Advance(time.Hour) // refills to burst, not beyond
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("post-refill request %d denied; burst cap broken", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("bucket exceeded burst capacity")
	}

	var nilBucket *Bucket
	if ok, _ := nilBucket.Allow(); !ok {
		t.Fatal("nil bucket must admit everything")
	}
	if NewBucket(0, 5, nil) != nil {
		t.Fatal("rate 0 must build a nil (unlimited) bucket")
	}
}

// runScheduler starts Run in the background and returns a stop that
// cancels and waits for it.
func runScheduler(s *Scheduler) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(ctx)
	}()
	return func() {
		cancel()
		<-done
	}
}

func TestSchedulerCoalescing(t *testing.T) {
	s := NewScheduler(1, 0, nil)
	// No workers running: submissions queue up.
	if !s.Submit("a", 1, func(context.Context) {}) {
		t.Fatal("first submit rejected")
	}
	if s.Submit("a", 1, func(context.Context) {}) {
		t.Fatal("second submit for the same tenant must coalesce")
	}
	if !s.Submit("b", 1, func(context.Context) {}) {
		t.Fatal("other tenant's submit rejected")
	}
	st := s.Stats()
	if st.Coalesced != 1 || st.QueueDepth != 2 {
		t.Fatalf("stats = %+v, want coalesced 1, depth 2", st)
	}
}

func TestSchedulerWeightOrdering(t *testing.T) {
	s := NewScheduler(1, 0, nil)

	// Hold the single worker on a blocker job so subsequent submissions
	// are ordered by the scheduler, not by submission race.
	blockerRunning := make(chan struct{})
	release := make(chan struct{})
	s.Submit("blocker", 1, func(context.Context) {
		close(blockerRunning)
		<-release
	})

	stop := runScheduler(s)
	defer stop()
	<-blockerRunning

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 2)
	record := func(id string) func(context.Context) {
		return func(context.Context) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			done <- struct{}{}
		}
	}
	// Equal smoothed costs; "light" submitted first but "heavy" carries
	// 10× the weight, so its finish tag is smaller and it runs first.
	s.Submit("light", 1, record("light"))
	s.Submit("heavy", 10, record("heavy"))
	close(release)
	<-done
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "heavy" || order[1] != "light" {
		t.Fatalf("dispatch order = %v, want [heavy light]", order)
	}
}

func TestSchedulerCostFeedbackAndStarvationBound(t *testing.T) {
	clk := newFakeClock()
	s := NewScheduler(1, time.Second, clk.Now)

	blockerRunning := make(chan struct{})
	release := make(chan struct{})
	s.Submit("blocker", 1, func(context.Context) {
		close(blockerRunning)
		<-release
	})
	stop := runScheduler(s)
	defer stop()
	<-blockerRunning

	// Teach the scheduler that "pig" is expensive: run one job that
	// advances the fake clock by 10s of "work".
	pigDone := make(chan struct{})
	s.Submit("pig", 1, func(context.Context) { clk.Advance(10 * time.Second); close(pigDone) })
	rel := release
	close(rel)
	<-pigDone

	// Re-block the worker through a fresh blocker.
	blockerRunning2 := make(chan struct{})
	release2 := make(chan struct{})
	s.Submit("blocker", 1, func(context.Context) {
		close(blockerRunning2)
		<-release2
	})
	<-blockerRunning2

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 2)
	record := func(id string) func(context.Context) {
		return func(context.Context) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			done <- struct{}{}
		}
	}

	// pig queued first, but its smoothed 5s cost gives it a far finish
	// tag; mouse (fresh tenant, minimum cost) must be dispatched first.
	s.Submit("pig", 1, record("pig"))
	s.Submit("mouse", 1, record("mouse"))
	close(release2)
	<-done
	<-done
	mu.Lock()
	if len(order) != 2 || order[0] != "mouse" {
		mu.Unlock()
		t.Fatalf("dispatch order = %v, want mouse before pig (cost feedback)", order)
	}
	order = nil
	mu.Unlock()

	// Starvation bound: same shape, but pig's queue wait exceeds the 1s
	// bound before the worker frees up — the aged job jumps the queue.
	blockerRunning3 := make(chan struct{})
	release3 := make(chan struct{})
	s.Submit("blocker", 1, func(context.Context) {
		close(blockerRunning3)
		<-release3
	})
	<-blockerRunning3
	s.Submit("pig", 1, record("pig"))
	clk.Advance(2 * time.Second) // pig has now waited past the bound
	s.Submit("mouse", 1, record("mouse"))
	close(release3)
	<-done
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "pig" {
		t.Fatalf("dispatch order = %v, want starved pig first", order)
	}
	if s.Stats().Starved == 0 {
		t.Fatal("starvation override not counted")
	}
	fs := s.FlowStats()
	var sawPig bool
	for _, f := range fs {
		if f.ID == "pig" {
			sawPig = true
			if f.Starved == 0 || f.Dispatched < 2 {
				t.Fatalf("pig flow stats = %+v", f)
			}
		}
	}
	if !sawPig {
		t.Fatal("FlowStats missing pig")
	}
}

// countSink records ingested packets per instance.
type countSink struct {
	mu      sync.Mutex
	packets int
}

func (s *countSink) Ingest(h netflow.Header, recs []netflow.Record) {
	s.mu.Lock()
	s.packets++
	s.mu.Unlock()
}

func (s *countSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.packets
}

func TestRegistryRouting(t *testing.T) {
	sinkA, sinkB := &countSink{}, &countSink{}
	a := &Tenant{Spec: Spec{ID: "a", Routers: []uint8{1, 2}}, Sink: sinkA}
	b := &Tenant{Spec: Spec{ID: "b", Routers: []uint8{7}}, Sink: sinkB}
	r, err := NewRegistry([]*Tenant{a, b}, "a")
	if err != nil {
		t.Fatal(err)
	}

	ingest := func(engine uint8) {
		r.Ingest(netflow.Header{EngineID: engine, Count: 1}, []netflow.Record{{}})
	}
	ingest(1)
	ingest(2)
	ingest(7)
	ingest(99) // unmapped → default (a)

	if got := sinkA.count(); got != 3 {
		t.Fatalf("tenant a saw %d packets, want 3 (routers 1,2 + unmapped fallback)", got)
	}
	if got := sinkB.count(); got != 1 {
		t.Fatalf("tenant b saw %d packets, want 1", got)
	}
	if a.RoutedPackets() != 3 || b.RoutedPackets() != 1 {
		t.Fatalf("routed counters = %d/%d, want 3/1", a.RoutedPackets(), b.RoutedPackets())
	}

	if tn, ok := r.Lookup(""); !ok || tn != a {
		t.Fatal("empty lookup must resolve the default tenant")
	}
	if tn, ok := r.Lookup("b"); !ok || tn != b {
		t.Fatal("lookup b failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown tenant resolved")
	}
	if got := len(r.All()); got != 2 {
		t.Fatalf("All() = %d tenants, want 2", got)
	}

	// Construction errors.
	if _, err := NewRegistry(nil, "a"); err == nil {
		t.Fatal("empty registry must error")
	}
	if _, err := NewRegistry([]*Tenant{a}, "ghost"); err == nil {
		t.Fatal("unknown default must error")
	}
	dupRouter := &Tenant{Spec: Spec{ID: "c", Routers: []uint8{1}}, Sink: &countSink{}}
	if _, err := NewRegistry([]*Tenant{a, dupRouter}, "a"); err == nil {
		t.Fatal("duplicate router must error")
	}
}
