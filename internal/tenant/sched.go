package tenant

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Scheduler is a weighted-fair queue over per-tenant re-price jobs,
// executed by a bounded worker pool. Start-time fair queueing: each
// tenant's next job is tagged with a virtual finish time
//
//	F = max(V, F_prev) + cost/weight
//
// where V is the scheduler's virtual clock (advanced to the start tag
// of each dispatched job), cost is the tenant's smoothed measured
// re-price duration and weight its configured share. Workers always run
// the pending job with the smallest finish tag, so over any contended
// interval each tenant receives service proportional to its weight and
// a heavy tenant's long re-fits cannot monopolize the pool.
//
// Two guards make the fairness robust in practice:
//
//   - Coalescing: at most one job per tenant is ever queued. A tenant
//     whose re-price is slower than the tick interval accumulates no
//     backlog — re-submissions while one is pending are dropped and
//     counted, bounding queue depth at the tenant count.
//   - Starvation bound: a job that has waited longer than the
//     configured bound is dispatched next regardless of its tag, so
//     even a zero-ish weight or a pathological cost estimate cannot
//     delay a tenant indefinitely.
type Scheduler struct {
	workers     int
	starveAfter time.Duration
	now         func() time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*schedEntry
	vtime   float64
	flows   map[string]*flowState
	stopped bool

	dispatched uint64
	coalesced  uint64
	starved    uint64
}

// schedEntry is one queued job.
type schedEntry struct {
	id            string
	start, finish float64 // virtual tags
	enq           time.Time
	run           func(context.Context)
}

// flowState is one tenant's WFQ bookkeeping.
type flowState struct {
	weight     float64
	lastFinish float64
	cost       float64 // smoothed measured run seconds
	pending    bool
	dispatched uint64
	coalesced  uint64
	starved    uint64
	lastWait   time.Duration
	lastRun    time.Duration
}

// minCost floors the cost estimate so a zero-duration measurement can
// never collapse finish tags into ties that starve slower tenants.
const minCost = 1e-4

// NewScheduler builds a scheduler with `workers` concurrent slots.
// starveAfter bounds how long any queued job can wait before it is
// dispatched out of order (<= 0 disables the override — pure WFQ).
func NewScheduler(workers int, starveAfter time.Duration, now func() time.Time) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if now == nil {
		now = time.Now
	}
	s := &Scheduler{
		workers:     workers,
		starveAfter: starveAfter,
		now:         now,
		flows:       make(map[string]*flowState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Submit queues one job for tenant id at the given weight (0 means 1).
// It reports false when a job for the tenant is already queued (the
// submission is coalesced, not an error). Safe to call from any
// goroutine, including while Run is dispatching.
func (s *Scheduler) Submit(id string, weight float64, run func(context.Context)) bool {
	if weight <= 0 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return false
	}
	st, ok := s.flows[id]
	if !ok {
		st = &flowState{cost: minCost}
		s.flows[id] = st
	}
	st.weight = weight
	if st.pending {
		st.coalesced++
		s.coalesced++
		return false
	}
	st.pending = true
	start := s.vtime
	if st.lastFinish > start {
		start = st.lastFinish
	}
	cost := st.cost
	if cost < minCost {
		cost = minCost
	}
	e := &schedEntry{
		id:     id,
		start:  start,
		finish: start + cost/weight,
		enq:    s.now(),
		run:    run,
	}
	st.lastFinish = e.finish
	s.queue = append(s.queue, e)
	s.cond.Signal()
	return true
}

// pickLocked removes and returns the next job: the smallest finish tag,
// unless the oldest queued job has outwaited the starvation bound.
// Queue order is submit order, so queue[0] is always the oldest.
func (s *Scheduler) pickLocked() *schedEntry {
	best := 0
	for i, e := range s.queue {
		if e.finish < s.queue[best].finish {
			best = i
		}
	}
	if s.starveAfter > 0 && best != 0 && s.now().Sub(s.queue[0].enq) > s.starveAfter {
		best = 0
		s.starved++
		s.flows[s.queue[0].id].starved++
	}
	e := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return e
}

// Run executes queued jobs on the worker pool until ctx is cancelled,
// then returns once in-flight jobs finish. Jobs still queued at
// cancellation are dropped — shutdown drains explicitly through the
// caller's own final re-price pass, not through the queue.
func (s *Scheduler) Run(ctx context.Context) {
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stopWatch:
		}
		s.mu.Lock()
		s.stopped = true
		s.queue = nil
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
	var wg sync.WaitGroup
	for range s.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(ctx)
		}()
	}
	wg.Wait()
	close(stopWatch)
}

func (s *Scheduler) worker(ctx context.Context) {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		e := s.pickLocked()
		st := s.flows[e.id]
		st.pending = false
		st.dispatched++
		st.lastWait = s.now().Sub(e.enq)
		s.dispatched++
		if e.start > s.vtime {
			s.vtime = e.start
		}
		s.mu.Unlock()

		began := s.now()
		e.run(ctx)
		ran := s.now().Sub(began)

		s.mu.Lock()
		st.lastRun = ran
		// EWMA so one outlier re-fit doesn't permanently distort the
		// tenant's share; the floor keeps tags strictly advancing.
		st.cost = 0.5*st.cost + 0.5*ran.Seconds()
		if st.cost < minCost {
			st.cost = minCost
		}
		s.mu.Unlock()
	}
}

// Stats is the scheduler-wide telemetry snapshot.
type Stats struct {
	Dispatched uint64
	Coalesced  uint64
	Starved    uint64
	QueueDepth int
}

// Stats reports scheduler-wide counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dispatched: s.dispatched,
		Coalesced:  s.coalesced,
		Starved:    s.starved,
		QueueDepth: len(s.queue),
	}
}

// FlowStats is one tenant's scheduling telemetry.
type FlowStats struct {
	ID          string
	Weight      float64
	Dispatched  uint64
	Coalesced   uint64
	Starved     uint64
	LastWait    time.Duration
	LastRun     time.Duration
	CostSeconds float64 // smoothed cost estimate driving the tags
}

// FlowStats reports per-tenant scheduling telemetry, sorted by ID.
func (s *Scheduler) FlowStats() []FlowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlowStats, 0, len(s.flows))
	for id, st := range s.flows {
		out = append(out, FlowStats{
			ID:          id,
			Weight:      st.weight,
			Dispatched:  st.dispatched,
			Coalesced:   st.coalesced,
			Starved:     st.starved,
			LastWait:    st.lastWait,
			LastRun:     st.lastRun,
			CostSeconds: st.cost,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
