package tenant

import (
	"fmt"
	"sync/atomic"

	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
)

// Tenant is one network's live pricing state inside a multi-tenant
// tierd: its sliding window, repricer, quote quota and ingest sink.
// The daemon wires Sink to the window — possibly behind the tenant's
// durability layer — and the Registry routes export datagrams into it.
type Tenant struct {
	Spec Spec

	// Window is the tenant's sliding-window accumulator (a
	// *stream.Window or *stream.ShardedWindow, held as its sink face).
	Window   netflow.Sink
	Repricer *stream.Repricer
	// Limiter guards the tenant's quote path (nil = unlimited).
	Limiter *Bucket
	// Sink receives the tenant's routed export packets. It defaults to
	// Window; durable daemons interpose the WAL here.
	Sink netflow.Sink

	// routedPackets counts export datagrams the registry routed here.
	routedPackets atomic.Uint64
}

// ID is the tenant's API and on-disk name.
func (t *Tenant) ID() string { return t.Spec.ID }

// Weight is the tenant's WFQ share (zero-valued specs weigh 1).
func (t *Tenant) Weight() float64 {
	if t.Spec.Weight <= 0 {
		return 1
	}
	return t.Spec.Weight
}

// RoutedPackets reports how many export datagrams routed to the tenant.
func (t *Tenant) RoutedPackets() uint64 { return t.routedPackets.Load() }

// Registry is the tenant table and the ingest router. It implements
// netflow.Sink: an export datagram routes to the tenant owning the
// packet header's engine ID (the exporting router), falling back to the
// default tenant for unmapped engines. Lookup and routing are
// read-only after construction, so ingest needs no locking here.
type Registry struct {
	tenants  []*Tenant // registration order (stable for metrics, recovery)
	byID     map[string]*Tenant
	byRouter map[uint8]*Tenant
	def      *Tenant

	unrouted atomic.Uint64
}

// NewRegistry indexes the tenants. defaultID selects the tenant the
// legacy API paths and unmapped routers fall back to; it must name a
// registered tenant. Every tenant must carry a distinct, valid ID and
// disjoint router sets (ValidateSpecs enforces the same rules on specs
// before runtime construction).
func NewRegistry(tenants []*Tenant, defaultID string) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one tenant")
	}
	r := &Registry{
		tenants:  tenants,
		byID:     make(map[string]*Tenant, len(tenants)),
		byRouter: make(map[uint8]*Tenant),
	}
	for _, t := range tenants {
		if !validID(t.ID()) {
			return nil, fmt.Errorf("tenant: invalid id %q", t.ID())
		}
		if _, dup := r.byID[t.ID()]; dup {
			return nil, fmt.Errorf("tenant: duplicate id %q", t.ID())
		}
		if t.Sink == nil {
			t.Sink = t.Window
		}
		if t.Sink == nil {
			return nil, fmt.Errorf("tenant %q: no ingest sink", t.ID())
		}
		r.byID[t.ID()] = t
		for _, router := range t.Spec.Routers {
			if prev, taken := r.byRouter[router]; taken {
				return nil, fmt.Errorf("tenant %q: router %d already routed to %q", t.ID(), router, prev.ID())
			}
			r.byRouter[router] = t
		}
	}
	def, ok := r.byID[defaultID]
	if !ok {
		return nil, fmt.Errorf("tenant: default %q is not a registered tenant", defaultID)
	}
	r.def = def
	return r, nil
}

var _ netflow.Sink = (*Registry)(nil)

// Ingest routes one export packet to its tenant by the header's engine
// ID. Unmapped engines go to the default tenant, so a single-router
// deployment needs no router table at all.
func (r *Registry) Ingest(h netflow.Header, recs []netflow.Record) {
	t, ok := r.byRouter[h.EngineID]
	if !ok {
		t = r.def
	}
	t.routedPackets.Add(1)
	t.Sink.Ingest(h, recs)
}

// Lookup resolves a tenant by ID; the empty ID resolves the default.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	if id == "" {
		return r.def, true
	}
	t, ok := r.byID[id]
	return t, ok
}

// Default returns the tenant legacy API paths alias.
func (r *Registry) Default() *Tenant { return r.def }

// All returns the tenants in registration order. Callers must not
// mutate the returned slice.
func (r *Registry) All() []*Tenant { return r.tenants }
