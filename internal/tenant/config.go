// Package tenant turns tierd into a multi-tenant pricing fleet: many
// networks (ISPs) priced from one process, each with its own sliding
// window, repricer, demand-model configuration, durability namespace
// and API quota. The paper prices a single provider; its premise — each
// provider choosing a tier structure for its own demand profile —
// implies a fleet of pricing instances, and one process per network
// does not scale to the ROADMAP's millions of users.
//
// The package owns three mechanisms:
//
//   - Registry: the tenant table and the NetFlow ingest router. Export
//     datagrams carry the exporting router's engine ID; the registry
//     maps engine IDs to tenants so core routers belonging to different
//     networks can share one collector port.
//   - Bucket: a token-bucket rate limiter guarding each tenant's quote
//     path, so one tenant's client storm cannot consume the API.
//   - Scheduler: a weighted-fair reprice scheduler with a starvation
//     bound, so N tenants share the reprice worker pool proportionally
//     to weight and one tenant's expensive re-fit cannot starve the
//     others' pricing freshness.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Spec is one tenant's configuration, as read from the -tenants file.
// Zero-valued model fields inherit the daemon's global flags, so a spec
// can be as small as {"id": "x", "trace": "/path"}.
type Spec struct {
	// ID names the tenant on the API (/v1/t/{id}/...) and on disk
	// (<data-dir>/tenants/<id>). Lowercase letters, digits, '-', '_',
	// '.' only, so the ID is safe in URLs and file names.
	ID string `json:"id"`
	// Trace is the tenant's trace directory (geoip.csv + meta.txt): the
	// endpoint resolver and blended-rate anchor are per-tenant. Empty
	// inherits the daemon's -trace directory.
	Trace string `json:"trace,omitempty"`
	// Default marks the tenant the legacy (un-prefixed) API paths alias.
	// At most one tenant may set it; with none set, the first tenant in
	// the file is the default.
	Default bool `json:"default,omitempty"`

	// Weight is the tenant's share of the reprice worker pool (WFQ);
	// zero means 1. A weight-2 tenant gets twice the reprice throughput
	// of a weight-1 tenant when the pool is contended.
	Weight float64 `json:"weight,omitempty"`

	// RateQPS and RateBurst configure the quote-path token bucket:
	// sustained quotes per second and the burst capacity. RateQPS 0
	// disables limiting for the tenant; RateBurst 0 defaults to RateQPS.
	RateQPS   float64 `json:"rate_qps,omitempty"`
	RateBurst float64 `json:"rate_burst,omitempty"`

	// Routers lists the NetFlow engine IDs (Header.EngineID) whose
	// export datagrams route to this tenant. IDs must be unique across
	// the file. Datagrams from unlisted engines route to the default
	// tenant.
	Routers []uint8 `json:"routers,omitempty"`

	// Demand-model overrides; zero values inherit the daemon flags.
	Model    string  `json:"model,omitempty"`    // "ced" or "logit"
	Alpha    float64 `json:"alpha,omitempty"`    // price sensitivity α
	S0       float64 `json:"s0,omitempty"`       // logit no-purchase share
	Theta    float64 `json:"theta,omitempty"`    // linear cost base fraction θ
	Strategy string  `json:"strategy,omitempty"` // bundling strategy name
	Tiers    int     `json:"tiers,omitempty"`    // tier count
	Blended  float64 `json:"blended,omitempty"`  // blended-rate override $/Mbps/month
	// DemandSec overrides the octets→Mbps conversion window (seconds);
	// zero inherits -demand-sec / the trace meta's capture duration.
	DemandSec float64 `json:"demand_sec,omitempty"`
}

// configFile is the -tenants file shape.
type configFile struct {
	Tenants []Spec `json:"tenants"`
}

// validID reports whether id is safe for URLs and directory names.
func validID(id string) bool {
	if id == "" || id == "." || id == ".." {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// ValidateSpecs checks cross-tenant invariants: at least one tenant,
// unique well-formed IDs, unique router assignments, non-negative
// weights and rates, at most one explicit default. It returns the
// default tenant's ID (the explicit one, else the first).
func ValidateSpecs(specs []Spec) (defaultID string, err error) {
	if len(specs) == 0 {
		return "", fmt.Errorf("tenant: no tenants configured")
	}
	ids := make(map[string]bool, len(specs))
	routers := make(map[uint8]string)
	for i, s := range specs {
		if !validID(s.ID) {
			return "", fmt.Errorf("tenant: invalid id %q (lowercase letters, digits, '-', '_', '.')", s.ID)
		}
		if ids[s.ID] {
			return "", fmt.Errorf("tenant: duplicate id %q", s.ID)
		}
		ids[s.ID] = true
		if s.Weight < 0 {
			return "", fmt.Errorf("tenant %q: negative weight %v", s.ID, s.Weight)
		}
		if s.RateQPS < 0 || s.RateBurst < 0 {
			return "", fmt.Errorf("tenant %q: negative rate limit", s.ID)
		}
		if s.Tiers < 0 {
			return "", fmt.Errorf("tenant %q: negative tier count", s.ID)
		}
		for _, r := range s.Routers {
			if prev, taken := routers[r]; taken {
				return "", fmt.Errorf("tenant %q: router %d already routed to %q", s.ID, r, prev)
			}
			routers[r] = s.ID
		}
		if s.Default {
			if defaultID != "" {
				return "", fmt.Errorf("tenant %q: default already claimed by %q", s.ID, defaultID)
			}
			defaultID = s.ID
		}
		_ = i
	}
	if defaultID == "" {
		defaultID = specs[0].ID
	}
	return defaultID, nil
}

// LoadSpecFile reads and validates a -tenants JSON file.
func LoadSpecFile(path string) (specs []Spec, defaultID string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("tenant: %w", err)
	}
	var f configFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, "", fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	if defaultID, err = ValidateSpecs(f.Tenants); err != nil {
		return nil, "", fmt.Errorf("tenant: %s: %w", path, err)
	}
	return f.Tenants, defaultID, nil
}

// SortedIDs returns the spec IDs in lexical order (stable iteration for
// recovery, metrics and tests).
func SortedIDs(specs []Spec) []string {
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	sort.Strings(ids)
	return ids
}
