package core
