package core

import (
	"errors"
	"fmt"
	"sort"

	"tieredpricing/internal/econ"
)

// AggregateFlows coarsens a flow set to at most k aggregates by merging
// cost-adjacent flows (sorted by distance) into contiguous groups of
// roughly equal demand. A merged aggregate carries the summed demand and
// the demand-weighted mean distance of its members, and inherits the
// region of its demand-dominant member.
//
// This models the market-granularity choice the paper discusses in §1
// ("higher market granularity leads to increased efficiency" versus the
// practicality of few tiers), and gives the exhaustive-search ablation a
// tractable flow set.
func AggregateFlows(flows []econ.Flow, k int) ([]econ.Flow, error) {
	if k < 1 {
		return nil, errors.New("core: need at least one aggregate")
	}
	if len(flows) == 0 {
		return nil, errors.New("core: no flows")
	}
	if k >= len(flows) {
		return append([]econ.Flow(nil), flows...), nil
	}

	order := make([]int, len(flows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return flows[order[a]].Distance < flows[order[b]].Distance
	})

	var total float64
	for _, f := range flows {
		total += f.Demand
	}
	perGroup := total / float64(k)

	out := make([]econ.Flow, 0, k)
	var cur []int
	var curDemand float64
	flush := func() {
		if len(cur) == 0 {
			return
		}
		agg := mergeFlows(flows, cur, len(out))
		out = append(out, agg)
		cur = cur[:0]
		curDemand = 0
	}
	for pos, i := range order {
		cur = append(cur, i)
		curDemand += flows[i].Demand
		remainingGroups := k - len(out) - 1
		remainingFlows := len(order) - pos - 1
		// Close the group once its demand share is met, but never leave
		// fewer flows than groups still to fill.
		if curDemand >= perGroup && remainingGroups > 0 && remainingFlows >= remainingGroups {
			flush()
		}
	}
	flush()
	return out, nil
}

// mergeFlows folds member flows into one aggregate.
func mergeFlows(flows []econ.Flow, members []int, idx int) econ.Flow {
	var demand, wdist float64
	dominant := members[0]
	for _, i := range members {
		demand += flows[i].Demand
		wdist += flows[i].Demand * flows[i].Distance
		if flows[i].Demand > flows[dominant].Demand {
			dominant = i
		}
	}
	return econ.Flow{
		ID:       fmt.Sprintf("agg%d(%d flows)", idx, len(members)),
		Demand:   demand,
		Distance: wdist / demand,
		Region:   flows[dominant].Region,
		OnNet:    flows[dominant].OnNet,
	}
}
