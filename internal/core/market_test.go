package core

import (
	"math"
	"math/rand"
	"testing"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
)

// syntheticFlows builds a flow population shaped like the paper's traces:
// lognormal distances with modest spread (Table 1 distance CVs are all
// below 0.7) and gravity-coupled demands q ∝ d^{−η}·noise, so local
// destinations carry most traffic. This coupling is what makes the
// demand/profit-weighted heuristics competitive in the paper's data.
func syntheticFlows(n int, seed int64) []econ.Flow {
	r := rand.New(rand.NewSource(seed))
	flows := make([]econ.Flow, n)
	for i := range flows {
		d := math.Exp(r.NormFloat64()*0.63 + 4) // miles, CV ≈ 0.7
		flows[i] = econ.Flow{
			ID:       "dst" + string(rune('a'+i%26)),
			Demand:   100 * math.Pow(d/54, -1.8) * math.Exp(r.NormFloat64()*0.25),
			Distance: d,
			Region:   cost.ClassifyByDistance(d, 10, 100),
		}
	}
	return flows
}

func TestNewMarketValidations(t *testing.T) {
	flows := syntheticFlows(5, 1)
	d := econ.CED{Alpha: 1.1}
	c := cost.Linear{Theta: 0.2}
	if _, err := NewMarket(nil, d, c, 20); err == nil {
		t.Error("expected error for no flows")
	}
	if _, err := NewMarket(flows, nil, c, 20); err == nil {
		t.Error("expected error for nil demand model")
	}
	if _, err := NewMarket(flows, d, nil, 20); err == nil {
		t.Error("expected error for nil cost model")
	}
	if _, err := NewMarket(flows, d, c, 0); err == nil {
		t.Error("expected error for zero blended rate")
	}
	bad := append([]econ.Flow(nil), flows...)
	bad[2].Demand = 0
	if _, err := NewMarket(bad, d, c, 20); err == nil {
		t.Error("expected error for zero demand")
	}
}

func TestNewMarketDoesNotMutateInput(t *testing.T) {
	flows := syntheticFlows(5, 2)
	before := append([]econ.Flow(nil), flows...)
	_, err := NewMarket(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if flows[i] != before[i] {
			t.Fatalf("input flow %d mutated", i)
		}
	}
}

func TestMarketCalibrationInvariant(t *testing.T) {
	// By construction, a single optimally-priced bundle reproduces the
	// blended rate, so its capture is ~0; and n singleton bundles realize
	// MaxProfit, so optimal bundling with b = n has capture ~1.
	for _, d := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := syntheticFlows(40, 3)
		m, err := NewMarket(flows, d, cost.Linear{Theta: 0.2}, 20)
		if err != nil {
			t.Fatal(err)
		}
		if m.GammaClamped {
			t.Fatalf("%s: unexpected clamped calibration", d.Name())
		}
		one, err := m.Run(bundling.Optimal{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(one.Capture) > 1e-6 {
			t.Errorf("%s: capture at b=1 = %v, want ~0", d.Name(), one.Capture)
		}
		if math.Abs(one.Prices[0]-m.P0) > 1e-4*m.P0 {
			t.Errorf("%s: single-bundle price %v, want blended %v", d.Name(), one.Prices[0], m.P0)
		}
		full, err := m.Run(bundling.Optimal{}, len(flows))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full.Capture-1) > 1e-6 {
			t.Errorf("%s: capture at b=n = %v, want ~1", d.Name(), full.Capture)
		}
	}
}

func TestMarketCaptureMonotoneForOptimal(t *testing.T) {
	for _, d := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := syntheticFlows(60, 7)
		m, err := NewMarket(flows, d, cost.Linear{Theta: 0.2}, 20)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for b := 1; b <= 6; b++ {
			out, err := m.Run(bundling.Optimal{}, b)
			if err != nil {
				t.Fatal(err)
			}
			if out.Capture < prev-1e-9 {
				t.Fatalf("%s: capture fell at b=%d: %v < %v", d.Name(), b, out.Capture, prev)
			}
			if out.Capture < -1e-9 || out.Capture > 1+1e-9 {
				t.Fatalf("%s: optimal capture out of [0,1]: %v", d.Name(), out.Capture)
			}
			prev = out.Capture
		}
	}
}

func TestPaperHeadlineFewTiersSuffice(t *testing.T) {
	// The paper's headline: 3–4 well-chosen bundles capture 90–95% of the
	// attainable profit. Check that optimal bundling reaches at least 85%
	// by b=4 on heavy-tailed synthetic markets under both models.
	for _, d := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		for seed := int64(0); seed < 3; seed++ {
			flows := syntheticFlows(80, 11+seed)
			m, err := NewMarket(flows, d, cost.Linear{Theta: 0.2}, 20)
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Run(bundling.Optimal{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if out.Capture < 0.85 {
				t.Errorf("%s seed %d: optimal capture at b=4 = %v, want ≥ 0.85",
					d.Name(), seed, out.Capture)
			}
		}
	}
}

func TestProfitWeightedNearOptimal(t *testing.T) {
	// §4.2.2: profit-weighted bundling is almost as good as optimal.
	for _, d := range []econ.Model{
		econ.CED{Alpha: 1.1},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := syntheticFlows(60, 17)
		m, err := NewMarket(flows, d, cost.Linear{Theta: 0.2}, 20)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := m.Run(bundling.Optimal{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := m.Run(bundling.ProfitWeighted{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if pw.Capture < opt.Capture-0.35 {
			t.Errorf("%s: profit-weighted capture %v far below optimal %v",
				d.Name(), pw.Capture, opt.Capture)
		}
	}
}

func TestMarketRegionalAndDestTypeModels(t *testing.T) {
	flows := syntheticFlows(30, 23)
	if _, err := NewMarket(flows, econ.CED{Alpha: 1.1}, cost.Regional{Theta: 1.1}, 20); err != nil {
		t.Fatalf("regional: %v", err)
	}
	split, err := SplitByDestType(flows, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(split, econ.CED{Alpha: 1.1}, cost.DestType{}, 20)
	if err != nil {
		t.Fatalf("desttype: %v", err)
	}
	// With exactly two cost classes, two class-aware bundles should
	// capture (nearly) everything.
	out, err := m.Run(bundling.ClassAware{Inner: bundling.ProfitWeighted{}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Capture < 0.99 {
		t.Errorf("two-class market: capture at b=2 = %v, want ~1", out.Capture)
	}
}

func TestSplitByDestType(t *testing.T) {
	flows := syntheticFlows(10, 29)
	split, err := SplitByDestType(flows, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 20 {
		t.Fatalf("got %d flows, want 20", len(split))
	}
	var onDemand, total float64
	for _, f := range split {
		total += f.Demand
		if f.OnNet {
			onDemand += f.Demand
		}
	}
	wantTotal := econ.TotalDemand(flows)
	if math.Abs(total-wantTotal) > 1e-9*wantTotal {
		t.Errorf("demand not conserved: %v != %v", total, wantTotal)
	}
	if math.Abs(onDemand/total-0.3) > 1e-9 {
		t.Errorf("on-net share = %v, want 0.3", onDemand/total)
	}
	for _, theta := range []float64{0, 1, -0.5, 2} {
		if _, err := SplitByDestType(flows, theta); err == nil {
			t.Errorf("theta=%v: expected error", theta)
		}
	}
}

func TestMarketLogitClampedCorner(t *testing.T) {
	// P0 below the logit markup floor: calibration clamps, the market is
	// still usable, and the flag is set.
	flows := syntheticFlows(10, 31)
	m, err := NewMarket(flows, econ.Logit{Alpha: 1, S0: 0.04}, cost.Linear{Theta: 0.2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !m.GammaClamped {
		t.Error("expected clamped calibration")
	}
	if _, err := m.Run(bundling.ProfitWeighted{}, 3); err != nil {
		t.Errorf("clamped market should still run: %v", err)
	}
}

func TestOutcomeFieldsPopulated(t *testing.T) {
	flows := syntheticFlows(12, 37)
	m, err := NewMarket(flows, econ.CED{Alpha: 1.3}, cost.Concave{Theta: 0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(bundling.CostWeighted{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "cost-weighted" || out.Bundles != 3 {
		t.Errorf("outcome metadata wrong: %+v", out)
	}
	if len(out.Partition) == 0 || len(out.Prices) != len(out.Partition) {
		t.Errorf("partition/prices inconsistent: %+v", out)
	}
	if out.Profit <= 0 {
		t.Errorf("profit = %v, want positive", out.Profit)
	}
}
