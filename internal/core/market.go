// Package core assembles the paper's counterfactual engine (Figure 7):
// starting from observed per-flow traffic demands at a blended rate, it
// (1) fits a demand model's valuation coefficients, (2) maps a cost
// model's relative costs to absolute costs by assuming the ISP is already
// profit-maximizing at the blended rate, and (3) evaluates bundling
// strategies by re-pricing each candidate tiering at its
// profit-maximizing prices and reporting the profit-capture metric.
package core

import (
	"errors"
	"fmt"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/pricing"
)

// Market is a fitted transit market: flows with valuations and absolute
// costs consistent with the observed blended rate, plus the profit
// baselines the capture metric needs.
type Market struct {
	// Flows carry fitted Valuation and Cost fields.
	Flows []econ.Flow
	// Demand is the fitted demand model.
	Demand econ.Model
	// Cost is the cost model used to derive relative costs.
	Cost cost.Model
	// P0 is the observed blended rate ($/Mbps/month).
	P0 float64
	// Gamma is the calibrated cost scale γ with c_i = γ·f(d_i).
	Gamma float64
	// GammaClamped reports that calibration hit the infeasible corner
	// (possible only under logit when P0 ≤ 1/(α·s0)) and γ was floored.
	GammaClamped bool
	// OriginalProfit is the status-quo profit: every flow at the blended
	// rate P0. By construction of the calibration it equals the optimal
	// single-bundle profit (up to the clamp above).
	OriginalProfit float64
	// MaxProfit is the per-flow-pricing profit — the "infinite bundles"
	// benchmark π_max.
	MaxProfit float64
}

// Outcome is the result of running one bundling strategy on a market.
type Outcome struct {
	// Strategy is the strategy name.
	Strategy string
	// Bundles is the requested maximum number of bundles B.
	Bundles int
	// Partition and Prices describe the resulting tiers; len(Prices) may
	// be below Bundles when the strategy needs fewer tiers.
	Partition [][]int
	Prices    []float64
	// Profit is the total ISP profit at those prices.
	Profit float64
	// Capture is the profit-capture metric (NaN when the market has no
	// bundling headroom).
	Capture float64
}

// NewMarket fits a market per §4.1: flows must carry positive Demand and
// the attributes the cost model reads (Distance, Region, OnNet). The
// returned market owns a copy of flows with Valuation and Cost populated.
func NewMarket(flows []econ.Flow, demand econ.Model, costModel cost.Model, p0 float64) (*Market, error) {
	if demand == nil || costModel == nil {
		return nil, errors.New("core: demand and cost models are required")
	}
	if p0 <= 0 {
		return nil, fmt.Errorf("core: blended rate must be positive, got %v", p0)
	}
	if len(flows) == 0 {
		return nil, errors.New("core: no flows")
	}
	owned := append([]econ.Flow(nil), flows...)
	demands := make([]float64, len(owned))
	for i, f := range owned {
		if f.Demand <= 0 {
			return nil, fmt.Errorf("core: flow %q has non-positive demand", f.ID)
		}
		demands[i] = f.Demand
	}

	rel, err := costModel.RelativeCosts(owned)
	if err != nil {
		return nil, fmt.Errorf("core: cost model: %w", err)
	}
	vals, err := demand.FitValuations(demands, p0)
	if err != nil {
		return nil, fmt.Errorf("core: valuation fit: %w", err)
	}
	gamma, clamped, err := demand.CalibrateScale(vals, rel, p0)
	if err != nil {
		return nil, fmt.Errorf("core: cost calibration: %w", err)
	}
	for i := range owned {
		owned[i].Valuation = vals[i]
		owned[i].Cost = gamma * rel[i]
	}

	m := &Market{
		Flows:        owned,
		Demand:       demand,
		Cost:         costModel,
		P0:           p0,
		Gamma:        gamma,
		GammaClamped: clamped,
	}
	one := econ.OneBundle(len(owned))
	if m.OriginalProfit, err = demand.Profit(owned, one, []float64{p0}); err != nil {
		return nil, fmt.Errorf("core: original profit: %w", err)
	}
	if m.MaxProfit, err = demand.MaxProfit(owned); err != nil {
		return nil, fmt.Errorf("core: max profit: %w", err)
	}
	return m, nil
}

// Run bundles the market's flows with the strategy into at most b tiers,
// prices each tier optimally, and reports profit and capture.
func (m *Market) Run(s bundling.Strategy, b int) (Outcome, error) {
	partition, err := s.Bundle(m.Flows, m.Demand, b)
	if err != nil {
		return Outcome{}, fmt.Errorf("core: %s bundling: %w", s.Name(), err)
	}
	ev, err := pricing.Evaluate(m.Demand, m.Flows, partition)
	if err != nil {
		return Outcome{}, fmt.Errorf("core: pricing %s bundling: %w", s.Name(), err)
	}
	return Outcome{
		Strategy:  s.Name(),
		Bundles:   b,
		Partition: ev.Partition,
		Prices:    ev.Prices,
		Profit:    ev.Profit,
		Capture:   m.Capture(ev.Profit),
	}, nil
}

// Capture maps a profit to the market's profit-capture metric.
func (m *Market) Capture(profit float64) float64 {
	return pricing.Capture(profit, m.OriginalProfit, m.MaxProfit)
}

// SplitByDestType implements the paper's destination-type θ (§3.3): every
// flow is split into an on-net part carrying fraction theta of its demand
// and an off-net part carrying the rest, so that "a fraction of traffic at
// each distance is destined to clients". theta must lie in (0, 1); at the
// endpoints the whole market is a single class and splitting is pointless.
func SplitByDestType(flows []econ.Flow, theta float64) ([]econ.Flow, error) {
	if !(theta > 0 && theta < 1) {
		return nil, fmt.Errorf("core: on-net fraction must be in (0,1), got %v", theta)
	}
	out := make([]econ.Flow, 0, 2*len(flows))
	for _, f := range flows {
		on := f
		on.ID = f.ID + "/on"
		on.Demand = f.Demand * theta
		on.OnNet = true
		off := f
		off.ID = f.ID + "/off"
		off.Demand = f.Demand * (1 - theta)
		off.OnNet = false
		out = append(out, on, off)
	}
	return out, nil
}
