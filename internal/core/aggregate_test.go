package core

import (
	"math"
	"testing"

	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
)

func TestAggregateFlowsPreservesDemandAndWeightedDistance(t *testing.T) {
	flows := syntheticFlows(100, 41)
	for _, k := range []int{1, 3, 10, 50} {
		agg, err := AggregateFlows(flows, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(agg) > k {
			t.Fatalf("k=%d: got %d aggregates", k, len(agg))
		}
		var wantQ, gotQ, wantWD, gotWD float64
		for _, f := range flows {
			wantQ += f.Demand
			wantWD += f.Demand * f.Distance
		}
		for _, f := range agg {
			if f.Demand <= 0 || f.Distance < 0 {
				t.Fatalf("k=%d: bad aggregate %+v", k, f)
			}
			gotQ += f.Demand
			gotWD += f.Demand * f.Distance
		}
		if math.Abs(gotQ-wantQ) > 1e-9*wantQ {
			t.Fatalf("k=%d: demand not conserved: %v vs %v", k, gotQ, wantQ)
		}
		if math.Abs(gotWD-wantWD) > 1e-9*wantWD {
			t.Fatalf("k=%d: weighted distance not conserved: %v vs %v", k, gotWD, wantWD)
		}
	}
}

func TestAggregateFlowsIdentityWhenKLarge(t *testing.T) {
	flows := syntheticFlows(10, 43)
	agg, err := AggregateFlows(flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 10 {
		t.Fatalf("got %d aggregates", len(agg))
	}
	for i := range flows {
		if agg[i] != flows[i] {
			t.Fatalf("identity aggregation changed flow %d", i)
		}
	}
	// k > n also returns copies, not aliases.
	agg2, err := AggregateFlows(flows, 99)
	if err != nil {
		t.Fatal(err)
	}
	agg2[0].Demand = -1
	if flows[0].Demand == -1 {
		t.Fatal("aggregation aliases the input slice")
	}
}

func TestAggregateFlowsContiguousInDistance(t *testing.T) {
	flows := syntheticFlows(60, 47)
	agg, err := AggregateFlows(flows, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregates come out in ascending distance order (contiguous groups
	// of the sorted order).
	for i := 1; i < len(agg); i++ {
		if agg[i].Distance < agg[i-1].Distance {
			t.Fatalf("aggregates not distance-ordered: %v then %v",
				agg[i-1].Distance, agg[i].Distance)
		}
	}
}

func TestAggregateFlowsUsableByMarket(t *testing.T) {
	flows := syntheticFlows(80, 53)
	agg, err := AggregateFlows(flows, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMarket(agg, econ.CED{Alpha: 1.1},
		cost.Linear{Theta: 0.2}, 20); err != nil {
		t.Fatalf("aggregated market: %v", err)
	}
}

func TestAggregateFlowsErrors(t *testing.T) {
	if _, err := AggregateFlows(nil, 3); err == nil {
		t.Error("expected error for no flows")
	}
	if _, err := AggregateFlows(syntheticFlows(5, 1), 0); err == nil {
		t.Error("expected error for k = 0")
	}
}
