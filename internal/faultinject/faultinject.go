// Package faultinject is the chaos harness for the online serving path:
// deterministic, seed-driven wrappers around the pieces tierd depends on
// — the endpoint resolver, the window sink, and the clock — that inject
// the fault classes real feeds exhibit (resolver outages and latency
// spikes, truncated and duplicated export datagrams, empty-window
// stretches). Every decision derives from the injector's seed and a
// per-site call counter, never from wall time or a shared RNG, so a
// fault schedule replays identically under any goroutine interleaving
// of the sites themselves — the property the chaos e2e's fixed-seed CI
// stage relies on.
package faultinject

import (
	"sync/atomic"
)

// Injector is the deterministic decision core shared by the fault
// wrappers: each call site draws a pseudo-random value keyed on
// (seed, site call index), so site decisions are a pure function of the
// seed and how many times that site has fired. A disabled injector
// never fires; the master switch flips atomically so a test can turn
// faults off (e.g. before a final drain) without stopping traffic.
type Injector struct {
	seed    uint64
	enabled atomic.Bool
}

// New creates an injector for the given seed, enabled.
func New(seed int64) *Injector {
	in := &Injector{seed: uint64(seed)}
	in.enabled.Store(true)
	return in
}

// Enable turns fault injection on.
func (in *Injector) Enable() { in.enabled.Store(true) }

// Disable turns every wrapper sharing this injector into a transparent
// pass-through.
func (in *Injector) Disable() { in.enabled.Store(false) }

// Enabled reports the master switch.
func (in *Injector) Enabled() bool { return in.enabled.Load() }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// hash from (seed, counter) to a 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Site is one independent fault site: it owns its call counter, so two
// sites sharing an injector draw independent deterministic sequences.
type Site struct {
	in *Injector
	n  atomic.Uint64
}

// NewSite derives an independent decision sequence from the injector,
// salted by id so distinct sites disagree even at the same call index.
func (in *Injector) NewSite(id uint64) *Site {
	return &Site{in: &Injector{seed: splitmix64(in.seed ^ id)}}
}

// enabled defers to the parent injector's master switch when the site
// was derived from one; detached sites (zero value) are always off.
func (s *Site) enabled(parent *Injector) bool {
	return parent != nil && parent.Enabled()
}

// Hit reports whether this call (the site's n-th) is selected at the
// given per-mille probability. The draw consumes one counter step
// whether or not it hits, and even while the parent injector is
// disabled, so toggling the master switch does not shift the schedule
// of later calls.
func (s *Site) Hit(parent *Injector, permille uint32) bool {
	n := s.n.Add(1)
	if !s.enabled(parent) || permille == 0 {
		return false
	}
	return splitmix64(s.in.seed^n)%1000 < uint64(permille)
}

// Calls reports how many decisions the site has made.
func (s *Site) Calls() uint64 { return s.n.Load() }
