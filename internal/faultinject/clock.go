package faultinject

import (
	"sync"
	"time"
)

// Clock is a manually-driven time source for rehearsing time-dependent
// faults: ingest gaps and empty-window stretches (advance past the
// window span), snapshot staleness (advance past the health policy's
// threshold). Sharing one Clock between the window, the repricer, and
// the HTTP server keeps their views of "now" consistent while a test
// marches time forward deterministically.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts a clock at the given instant.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now is the injectable time source (assign c.Now to a now-func field).
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new now.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}
