package faultinject

import (
	"sync/atomic"

	"tieredpricing/internal/netflow"
)

// Sink wraps a netflow.Sink with datagram-level faults, applied after
// decode and before the downstream sees the packet: whole datagrams
// dropped (UDP loss), duplicated (a router re-exporting after a timeout
// — downstream dedup must absorb it), and truncated to a prefix of
// their records (a partial export cut off mid-packet). The downstream
// sink receives exactly the post-fault stream, so a shadow collector
// chained behind the same Sink observes the ground truth of what was
// "successfully ingested" — the reference side of the chaos parity
// check.
type Sink struct {
	// Downstream receives the surviving (possibly truncated, possibly
	// repeated) packets.
	Downstream netflow.Sink
	// DropPermille, DupPermille and TruncPermille are the per-datagram
	// fault probabilities (‰). Truncation keeps a deterministic non-empty
	// prefix of the records; a drop discards the datagram whole.
	DropPermille  uint32
	DupPermille   uint32
	TruncPermille uint32

	in        *Injector
	dropSite  *Site
	dupSite   *Site
	truncSite *Site

	dropped   atomic.Uint64
	duplicated  atomic.Uint64
	truncated atomic.Uint64
}

var _ netflow.Sink = (*Sink)(nil)

// NewSink wraps downstream with faults driven by in.
func NewSink(in *Injector, downstream netflow.Sink) *Sink {
	return &Sink{
		Downstream: downstream,
		in:         in,
		dropSite:   in.NewSite(0xd209),
		dupSite:    in.NewSite(0xd4b1),
		truncSite:  in.NewSite(0x7284c),
	}
}

// Ingest applies the fault schedule to one datagram and forwards what
// survives (netflow.Sink).
func (s *Sink) Ingest(h netflow.Header, recs []netflow.Record) {
	if s.dropSite.Hit(s.in, s.DropPermille) {
		s.dropped.Add(1)
		return
	}
	if s.truncSite.Hit(s.in, s.TruncPermille) && len(recs) > 1 {
		// Keep a seed-determined non-empty prefix: the cut point reuses
		// the site's decision stream so it replays with the schedule.
		keep := 1 + int(splitmix64(s.in.seed^s.truncSite.Calls())%uint64(len(recs)-1))
		recs = recs[:keep]
		s.truncated.Add(1)
	}
	s.Downstream.Ingest(h, recs)
	if s.dupSite.Hit(s.in, s.DupPermille) {
		s.duplicated.Add(1)
		s.Downstream.Ingest(h, recs)
	}
}

// Stats reports how many datagrams were dropped, duplicated, and
// truncated so far.
func (s *Sink) Stats() (dropped, duplicated, truncated uint64) {
	return s.dropped.Load(), s.duplicated.Load(), s.truncated.Load()
}
