package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
)

// ErrInjectedResolve is the error the fault-injected resolver returns
// for per-call failures and outages, so tests can tell injected faults
// from real resolver errors.
var ErrInjectedResolve = errors.New("faultinject: injected resolve failure")

// Resolver wraps an EndpointResolver with deterministic failure modes:
// sporadic per-call errors, full outages (every call fails), latency
// spikes, and a hung mode that blocks until the caller's context is
// cancelled — the shape of a dead network-backed lookup service.
// It implements demandfit.ContextResolver, so the repricer's bounded
// drain can interrupt a spike or a hang.
type Resolver struct {
	// Wrapped answers the calls that are not faulted.
	Wrapped demandfit.EndpointResolver
	// ErrPermille is the per-call probability (‰) of an injected error.
	ErrPermille uint32
	// SpikePermille and Spike inject latency: selected calls sleep Spike
	// (or until ctx is done) before resolving normally.
	SpikePermille uint32
	Spike         time.Duration

	in     *Injector
	site   *Site
	outage atomic.Bool
	hang   atomic.Bool
}

// NewResolver wraps rv with faults driven by in.
func NewResolver(in *Injector, rv demandfit.EndpointResolver) *Resolver {
	return &Resolver{Wrapped: rv, in: in, site: in.NewSite(0x7e501fe5)}
}

// SetOutage turns every resolve into an immediate ErrInjectedResolve
// (on) or restores normal operation (off) — a resolver backend that is
// down but fast to refuse.
func (r *Resolver) SetOutage(on bool) { r.outage.Store(on) }

// SetHang makes every resolve block until its context is cancelled — a
// resolver backend that is down and silent. Resolve calls without a
// cancellable context would block forever, which is exactly the
// shutdown-wedging behavior the bounded drain exists to survive.
func (r *Resolver) SetHang(on bool) { r.hang.Store(on) }

// Resolve satisfies demandfit.EndpointResolver; a hang here blocks
// indefinitely (no context to honor).
func (r *Resolver) Resolve(src, dst netip.Addr) (float64, econ.Region, error) {
	return r.ResolveContext(context.Background(), src, dst)
}

// ResolveContext satisfies demandfit.ContextResolver.
func (r *Resolver) ResolveContext(ctx context.Context, src, dst netip.Addr) (float64, econ.Region, error) {
	if r.in.Enabled() {
		if r.hang.Load() {
			<-ctx.Done()
			return 0, 0, fmt.Errorf("faultinject: hung resolve: %w", ctx.Err())
		}
		if r.outage.Load() {
			return 0, 0, ErrInjectedResolve
		}
	}
	if r.site.Hit(r.in, r.SpikePermille) && r.Spike > 0 {
		t := time.NewTimer(r.Spike)
		select {
		case <-ctx.Done():
			t.Stop()
			return 0, 0, fmt.Errorf("faultinject: spiked resolve: %w", ctx.Err())
		case <-t.C:
		}
	}
	if r.site.Hit(r.in, r.ErrPermille) {
		return 0, 0, ErrInjectedResolve
	}
	return r.Wrapped.Resolve(src, dst)
}
