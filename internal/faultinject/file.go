package faultinject

import (
	"fmt"
	"os"
)

// File-corruption helpers for durability tests: deterministic,
// seed-driven damage to WAL segments and checkpoint files, modeling
// what a kill -9 or a dying disk leaves behind — a torn final write, a
// flipped bit mid-file, a zeroed fsync region. They operate on closed
// files (the crash already happened) and derive every offset and byte
// from the injector's seed, so a corruption schedule replays
// identically under a pinned seed.

// draw consumes one counter step and returns the site's next
// deterministic 64-bit value. Unlike Hit it ignores the master switch:
// the file helpers run from test code that explicitly asked for
// corruption, not from wrapped production sites.
func (s *Site) draw() uint64 {
	n := s.n.Add(1)
	return splitmix64(s.in.seed ^ n)
}

// TearTail truncates the file to a pseudo-random fraction of its size —
// a torn final write. The cut point is drawn uniformly from
// [keepAtLeast, size); if the file is not longer than keepAtLeast it is
// left alone and the call reports false.
func (s *Site) TearTail(path string, keepAtLeast int64) (bool, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return false, err
	}
	size := fi.Size()
	if size <= keepAtLeast {
		return false, nil
	}
	cut := keepAtLeast + int64(s.draw()%uint64(size-keepAtLeast))
	if err := os.Truncate(path, cut); err != nil {
		return false, fmt.Errorf("faultinject: tear tail: %w", err)
	}
	return true, nil
}

// CorruptByte flips one pseudo-random bit in one pseudo-random byte of
// the file's [from, size) range — bit rot, or a partially-applied
// write. Reports false without touching the file when the range is
// empty.
func (s *Site) CorruptByte(path string, from int64) (bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false, err
	}
	size := fi.Size()
	if from < 0 {
		from = 0
	}
	if size <= from {
		return false, nil
	}
	draw := s.draw()
	off := from + int64(draw%uint64(size-from))
	bit := byte(1) << ((draw >> 32) % 8)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return false, err
	}
	b[0] ^= bit
	if _, err := f.WriteAt(b[:], off); err != nil {
		return false, fmt.Errorf("faultinject: corrupt byte: %w", err)
	}
	return true, nil
}

// ZeroRange overwrites n pseudo-randomly placed bytes in [from, size)
// with zeros — the signature of a lost fsync region on some
// filesystems. The run is contiguous and clamped to the file end;
// reports false when the range is empty.
func (s *Site) ZeroRange(path string, from, n int64) (bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false, err
	}
	size := fi.Size()
	if from < 0 {
		from = 0
	}
	if size <= from || n <= 0 {
		return false, nil
	}
	off := from + int64(s.draw()%uint64(size-from))
	if off+n > size {
		n = size - off
	}
	zeros := make([]byte, n)
	if _, err := f.WriteAt(zeros, off); err != nil {
		return false, fmt.Errorf("faultinject: zero range: %w", err)
	}
	return true, nil
}
