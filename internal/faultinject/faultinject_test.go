package faultinject

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
)

// TestSiteDeterminism: the decision sequence is a pure function of the
// seed and the call index — two sites derived the same way agree call
// for call, and a different seed disagrees somewhere.
func TestSiteDeterminism(t *testing.T) {
	const n = 2000
	draw := func(seed int64) []bool {
		site := New(seed).NewSite(7)
		in := New(seed)
		out := make([]bool, n)
		for i := range out {
			out[i] = site.Hit(in, 100)
		}
		return out
	}
	a, b := draw(42), draw(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at call %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == n {
		t.Fatalf("100‰ schedule hit %d of %d calls — not a schedule", hits, n)
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDisableKeepsSchedule: toggling the master switch suppresses hits
// but still consumes call indices, so re-enabling resumes the original
// schedule rather than shifting it.
func TestDisableKeepsSchedule(t *testing.T) {
	ref := New(5)
	refSite := ref.NewSite(1)
	want := make([]bool, 100)
	for i := range want {
		want[i] = refSite.Hit(ref, 500)
	}

	in := New(5)
	site := in.NewSite(1)
	for i := range want {
		if i == 20 {
			in.Disable()
		}
		if i == 40 {
			in.Enable()
		}
		got := site.Hit(in, 500)
		switch {
		case i >= 20 && i < 40:
			if got {
				t.Fatalf("call %d hit while disabled", i)
			}
		case got != want[i]:
			t.Fatalf("call %d = %v after re-enable, want %v", i, got, want[i])
		}
	}
}

type stubResolver struct{}

func (stubResolver) Resolve(src, dst netip.Addr) (float64, econ.Region, error) {
	return 100, econ.RegionNational, nil
}

func TestResolverOutageAndHang(t *testing.T) {
	in := New(9)
	rv := NewResolver(in, stubResolver{})
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.1.0.1")

	if _, _, err := rv.ResolveContext(context.Background(), src, dst); err != nil {
		t.Fatalf("healthy resolve failed: %v", err)
	}
	rv.SetOutage(true)
	if _, _, err := rv.ResolveContext(context.Background(), src, dst); !errors.Is(err, ErrInjectedResolve) {
		t.Fatalf("outage resolve err = %v, want ErrInjectedResolve", err)
	}
	rv.SetOutage(false)

	// A hung resolve must return once (and only because) ctx is done.
	rv.SetHang(true)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := rv.ResolveContext(ctx, src, dst)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung resolve err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung resolve held for %v after ctx expiry", elapsed)
	}
	rv.SetHang(false)

	// Disabled injector bypasses outage and hang entirely.
	rv.SetOutage(true)
	in.Disable()
	if _, _, err := rv.ResolveContext(context.Background(), src, dst); err != nil {
		t.Fatalf("disabled injector still faulted: %v", err)
	}
}

func TestResolverSpikeHonorsContext(t *testing.T) {
	in := New(11)
	rv := NewResolver(in, stubResolver{})
	rv.SpikePermille = 1000 // every call spikes
	rv.Spike = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := rv.ResolveContext(ctx, netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.1.0.1"))
	if err == nil {
		t.Fatal("spiked resolve returned before its delay without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("spiked resolve held for %v after ctx expiry", elapsed)
	}
}

// captureSink records every Ingest call.
type captureSink struct {
	calls [][]netflow.Record
}

func (c *captureSink) Ingest(h netflow.Header, recs []netflow.Record) {
	cp := append([]netflow.Record(nil), recs...)
	c.calls = append(c.calls, cp)
}

func TestSinkFaultsAreDeterministic(t *testing.T) {
	mkRecs := func(n int) []netflow.Record {
		recs := make([]netflow.Record, n)
		for i := range recs {
			recs[i] = netflow.Record{
				SrcAddr: netip.AddrFrom4([4]byte{10, 0, byte(i), 1}),
				DstAddr: netip.AddrFrom4([4]byte{10, 1, byte(i), 1}),
				Octets:  1000,
			}
		}
		return recs
	}
	run := func(seed int64) *captureSink {
		down := &captureSink{}
		s := NewSink(New(seed), down)
		s.DropPermille, s.DupPermille, s.TruncPermille = 100, 150, 200
		for i := 0; i < 400; i++ {
			s.Ingest(netflow.Header{}, mkRecs(2+i%28))
		}
		return down
	}
	a, b := run(21), run(21)
	if len(a.calls) != len(b.calls) {
		t.Fatalf("same seed forwarded %d vs %d datagrams", len(a.calls), len(b.calls))
	}
	for i := range a.calls {
		if len(a.calls[i]) != len(b.calls[i]) {
			t.Fatalf("same seed truncated datagram %d differently (%d vs %d records)",
				i, len(a.calls[i]), len(b.calls[i]))
		}
	}

	down := &captureSink{}
	s := NewSink(New(21), down)
	s.DropPermille, s.DupPermille, s.TruncPermille = 100, 150, 200
	for i := 0; i < 400; i++ {
		s.Ingest(netflow.Header{}, mkRecs(2+i%28))
	}
	dropped, duplicated, truncated := s.Stats()
	if dropped == 0 || duplicated == 0 || truncated == 0 {
		t.Fatalf("fault classes did not all fire: drop=%d dup=%d trunc=%d", dropped, duplicated, truncated)
	}
	if want := 400 - int(dropped) + int(duplicated); len(down.calls) != want {
		t.Fatalf("forwarded %d datagrams, want %d (400 - dropped + duplicated)", len(down.calls), want)
	}
	for i, call := range down.calls {
		if len(call) == 0 {
			t.Fatalf("datagram %d truncated to zero records", i)
		}
	}
}

func TestSinkDisabledIsTransparent(t *testing.T) {
	in := New(33)
	in.Disable()
	down := &captureSink{}
	s := NewSink(in, down)
	s.DropPermille, s.DupPermille, s.TruncPermille = 1000, 1000, 1000
	recs := []netflow.Record{{Octets: 1}, {Octets: 2}, {Octets: 3}}
	s.Ingest(netflow.Header{}, recs)
	if len(down.calls) != 1 || len(down.calls[0]) != 3 {
		t.Fatalf("disabled sink altered the stream: %d calls", len(down.calls))
	}
}

func TestClock(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	c := NewClock(base)
	if !c.Now().Equal(base) {
		t.Fatalf("Now() = %v, want %v", c.Now(), base)
	}
	if got := c.Advance(90 * time.Minute); !got.Equal(base.Add(90 * time.Minute)) {
		t.Fatalf("Advance returned %v", got)
	}
	if !c.Now().Equal(base.Add(90 * time.Minute)) {
		t.Fatalf("Now() after advance = %v", c.Now())
	}
}
