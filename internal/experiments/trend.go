package experiments

import (
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ext6",
		Title: "Five years of 30%/yr price decline: blended vs re-optimized tiers",
		Paper: "extension of §1: 'transit prices are falling by about 30% per year ... ISPs are evolving their business models ... to retain profits'",
		Run:   runExt6,
	})
}

// runExt6 simulates the intro's market trend: the blended rate falls 30%
// per year while competition stiffens (price sensitivity rises), and we
// compare an ISP that stays blended against one that re-optimizes three
// tiers every year.
func runExt6(opts Options) (*Result, error) {
	const (
		years       = 5
		declineRate = 0.30
		tiers       = 3
	)
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	t := report.New(
		fmt.Sprintf("EU ISP under a %d%%/yr price decline (CED; α rises with competition; %d re-optimized tiers)",
			int(declineRate*100), tiers),
		"year", "blended rate $", "α", "blended profit $", "tiered profit $", "tiering retains")
	var year0Blended float64
	for year := 0; year <= years; year++ {
		p0 := ds.P0 * math.Pow(1-declineRate, float64(year))
		// Competition: substitutes get easier to find as the market
		// commoditizes, so elasticity drifts up.
		alpha := defaultAlpha + 0.15*float64(year)
		m, err := core.NewMarket(ds.Flows, econ.CED{Alpha: alpha},
			cost.Linear{Theta: defaultTheta}, p0)
		if err != nil {
			return nil, err
		}
		out, err := m.Run(bundling.ProfitWeighted{}, tiers)
		if err != nil {
			return nil, err
		}
		if year == 0 {
			year0Blended = m.OriginalProfit
		}
		if err := t.AddRow(report.I(year), report.F(p0), report.F(alpha),
			report.F1(m.OriginalProfit), report.F1(out.Profit),
			fmt.Sprintf("+%.1f%%", (out.Profit/m.OriginalProfit-1)*100)); err != nil {
			return nil, err
		}
	}
	t.AddNote("the blended business erodes with the market (%.0f%% of year-0 profit left by year %d); annual tier re-optimization claws back a growing share as rising elasticity widens the tiering premium",
		100*math.Pow(1-declineRate, years)*lastBlendedShare(t, year0Blended), years)
	return &Result{ID: "ext6", Title: "price-decline trend", Tables: []*report.Table{t}}, nil
}

// lastBlendedShare is a display helper: ratio of the final blended profit
// to the year-0 blended profit, divided by the pure price decline (so the
// note reads in round terms even if demand response shifts it).
func lastBlendedShare(t *report.Table, year0 float64) float64 {
	if year0 == 0 || len(t.Rows) == 0 {
		return 1
	}
	var last float64
	fmt.Sscanf(t.Rows[len(t.Rows)-1][3], "%f", &last)
	return last / year0 / math.Pow(0.7, float64(len(t.Rows)-1))
}
