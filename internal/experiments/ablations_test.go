package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestAblation1DPMatchesExhaustive(t *testing.T) {
	res := runExperiment(t, "ablation1")
	for _, row := range res.Tables[0].Rows {
		exhaustive, dp := cell(t, row[3]), cell(t, row[4])
		if dp < exhaustive-1e-6*exhaustive {
			t.Errorf("%s/%s: DP %v below exhaustive %v", row[0], row[1], dp, exhaustive)
		}
		if n := cell(t, row[2]); n < 700 {
			t.Errorf("%s/%s: only %v partitions enumerated", row[0], row[1], n)
		}
	}
}

func TestAblation2GuardDominates(t *testing.T) {
	res := runExperiment(t, "ablation2")
	for _, table := range res.Tables {
		var plain, guarded []float64
		for _, row := range table.Rows {
			var vals []float64
			for _, c := range row[1:] {
				vals = append(vals, cell(t, c))
			}
			if strings.HasPrefix(row[0], "class-aware") {
				guarded = vals
			} else {
				plain = vals
			}
		}
		for b := range guarded {
			if guarded[b] < plain[b] {
				t.Errorf("%s: guard loses at column %d (%v < %v)",
					table.Title, b, guarded[b], plain[b])
			}
		}
		// The §4.3.1 point: two guarded bundles already capture ~all.
		if guarded[0] < 0.95 {
			t.Errorf("%s: guarded capture at b=2 = %v", table.Title, guarded[0])
		}
		if plain[0] > 0.5 {
			t.Errorf("%s: unguarded capture at b=2 = %v, expected poor", table.Title, plain[0])
		}
	}
}

func TestAblation3DoublesTraffic(t *testing.T) {
	res := runExperiment(t, "ablation3")
	rows := map[string][]string{}
	for _, row := range res.Tables[0].Rows {
		rows[row[0]] = row
	}
	traffic := rows["measured traffic (Gbps)"]
	with, without := cell(t, traffic[1]), cell(t, traffic[2])
	// EU ISP records are exported at entry and exit PoP (2 exporters for
	// inter-PoP flows), so disabling dedup roughly doubles volume.
	if ratio := without / with; ratio < 1.8 || ratio > 2.05 {
		t.Errorf("dedup-off inflation = %v, want ≈2", ratio)
	}
	profit := rows["blended-equivalent profit ($)"]
	if cell(t, profit[2]) <= cell(t, profit[1]) {
		t.Error("double-counting should inflate fitted profit")
	}
}

func TestAblation4GranularityTrend(t *testing.T) {
	res := runExperiment(t, "ablation4")
	rows := res.Tables[0].Rows
	coarsest := cell(t, rows[0][1])
	finest := cell(t, rows[len(rows)-1][1])
	if !(coarsest > finest) {
		t.Errorf("capture should decline with granularity: %v vs %v", coarsest, finest)
	}
	for _, row := range rows {
		if v := cell(t, row[1]); v < 0.8 || v > 1.0001 {
			t.Errorf("capture %v out of expected band at %s aggregates", v, row[0])
		}
	}
}

func TestExt1PercentileAboveAverage(t *testing.T) {
	res := runExperiment(t, "ext1")
	for _, row := range res.Tables[0].Rows {
		avg, p95 := cell(t, row[2]), cell(t, row[3])
		if !(p95 >= avg) {
			t.Errorf("tier %s: p95 %v below average %v", row[0], p95, avg)
		}
		// The evening burst (1.9× base) must NOT be billable at p95:
		// p95 stays below 1.5× the average.
		if p95 > 1.5*avg {
			t.Errorf("tier %s: p95 %v includes the burst (avg %v)", row[0], p95, avg)
		}
	}
}

func TestAblation5TightRanges(t *testing.T) {
	res := runExperiment(t, "ablation5")
	for _, table := range res.Tables {
		for _, row := range table.Rows {
			for col := 1; col <= 4; col++ {
				var mean, lo, hi float64
				if _, err := fmt.Sscanf(row[col], "%f [%f..%f]", &mean, &lo, &hi); err != nil {
					t.Fatalf("cell %q: %v", row[col], err)
				}
				if !(lo <= mean && mean <= hi) {
					t.Errorf("%s %s: mean %v outside [%v, %v]", table.Title, row[0], mean, lo, hi)
				}
				// Optimal columns must be stable across seeds.
				if col <= 2 && hi-lo > 0.15 {
					t.Errorf("%s %s col %d: optimal range %v..%v too wide", table.Title, row[0], col, lo, hi)
				}
			}
		}
	}
}
