package experiments

import (
	"context"
	"fmt"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Profit capture per bundling strategy, constant elasticity demand",
		Paper: "Figure 8(a-c): 3-4 well-chosen bundles capture 90-95%; optimal ≥ profit-weighted ≥ cost-weighted",
		Run: func(o Options) (*Result, error) {
			return runCaptureFigure("fig8", "ced", cedStrategies(), o)
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Profit capture per bundling strategy, logit demand",
		Paper: "Figure 9(a-c): logit saturates faster than CED; same strategy ordering",
		Run: func(o Options) (*Result, error) {
			return runCaptureFigure("fig9", "logit", logitStrategies(), o)
		},
	})
}

// runCaptureFigure regenerates Figure 8 or 9: per dataset, the capture of
// every bundling strategy for 1..6 bundles at the default parameters
// (α = 1.1, P0 = $20, linear cost with θ = 0.2, s0 = 0.2).
func runCaptureFigure(id, model string, strategies []bundling.Strategy, opts Options) (*Result, error) {
	dm, err := demandModel(model)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: fmt.Sprintf("profit capture, %s demand", model)}
	// Each network's table is independent (own dataset, own market), as is
	// every strategy × bundle-count repricing inside it; fan out per
	// dataset here and per B inside captureRow, appending tables in
	// presentation order.
	names := traces.Names()
	workers := opts.workerCount()
	tables, err := parallel.Map(context.Background(), len(names), workers,
		func(_ context.Context, di int) (*report.Table, error) {
			name := names[di]
			m, err := datasetMarket(name, opts.Seed, dm, cost.Linear{Theta: defaultTheta})
			if err != nil {
				return nil, err
			}
			t := report.New(
				fmt.Sprintf("Profit capture, %s demand, %s (α=%.1f, θ=%.1f, P0=$%.0f)",
					model, name, defaultAlpha, defaultTheta, m.P0),
				"strategy", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
			for _, s := range strategies {
				row, err := captureRow(m, s, workers)
				if err != nil {
					return nil, err
				}
				cells := []string{s.Name()}
				for _, v := range row {
					cells = append(cells, report.F(v))
				}
				if err := t.AddRow(cells...); err != nil {
					return nil, err
				}
			}
			t.AddNote("capture = (π_new − π_blended)/(π_perflow − π_blended); 1.0 is per-flow pricing")
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, tables...)
	return res, nil
}
