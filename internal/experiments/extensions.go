package experiments

import (
	"fmt"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/pricing"
	"tieredpricing/internal/products"
	"tieredpricing/internal/report"
	"tieredpricing/internal/routing"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ext2",
		Title: "The §2.1 product taxonomy, quantified",
		Paper: "extension: profit capture of blended transit, paid peering, backplane peering and regional pricing as actually sold",
		Run:   runExt2,
	})
	register(Experiment{
		ID:    "ext3",
		Title: "Tag-aware routing: hot potato vs cold potato on the customer backbone",
		Paper: "extension of §5.1: 'the customer might choose to use its own backbone to get closer to destination'",
		Run:   runExt3,
	})
}

// runExt2 prices every §2.1 product structure on every dataset and
// reports its capture next to the algorithmic optimum at the same tier
// count — what today's contracts leave on the table.
func runExt2(opts Options) (*Result, error) {
	res := &Result{ID: "ext2", Title: "product taxonomy capture"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		t := report.New(fmt.Sprintf("§2.1 products, %s demand: capture (vs optimal at equal tier count)", model),
			"network", "blended transit", "paid peering", "backplane peering",
			"regional pricing", "optimal 2 tiers", "optimal 3 tiers")
		for _, name := range traces.Names() {
			m, err := datasetMarket(name, opts.Seed, dm, cost.Linear{Theta: defaultTheta})
			if err != nil {
				return nil, err
			}
			st, err := traces.MeasureFlows(m.Flows)
			if err != nil {
				return nil, err
			}
			offerings := []products.Offering{
				products.BlendedTransit{},
				products.PaidPeering{},
				// Offload reach scaled to the network: destinations closer
				// than its demand-weighted mean distance.
				products.BackplanePeering{OffloadRadius: st.WeightedMeanDistance},
				products.RegionalPricing{},
			}
			cells := []string{name}
			for _, o := range offerings {
				parts, err := o.Tiers(m.Flows)
				if err != nil {
					// The product does not apply to this network (e.g.
					// backplane peering on Internet2, which has no metro
					// traffic to offload).
					cells = append(cells, "n/a")
					continue
				}
				ev, err := pricing.Evaluate(m.Demand, m.Flows, parts)
				if err != nil {
					return nil, err
				}
				cells = append(cells, report.F(m.Capture(ev.Profit)))
			}
			for _, b := range []int{2, 3} {
				out, err := m.Run(bundling.Optimal{}, b)
				if err != nil {
					return nil, err
				}
				cells = append(cells, report.F(out.Capture))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("blended transit captures 0 by definition; the operational products recover part of the headroom, but a re-optimized 2-3 tier structure beats all of them — the paper's §4.2.2 conclusion about current practice")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// runExt3 plans egress selection for a customer with an Internet2-shaped
// backbone buying tiered transit: tier tags make remote hand-off prices
// visible, and the planner trades internal haul cost against them.
func runExt3(opts Options) (*Result, error) {
	ds, err := traces.Internet2(opts.Seed)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMarket(ds.Flows, econ.CED{Alpha: defaultAlpha}, cost.Linear{Theta: defaultTheta}, ds.P0)
	if err != nil {
		return nil, err
	}
	out, err := m.Run(bundling.Optimal{}, 3)
	if err != nil {
		return nil, err
	}
	quote, err := routing.BandQuote(m.Flows, out.Partition, out.Prices)
	if err != nil {
		return nil, err
	}
	dstCoords := func(i int) (float64, float64, error) {
		city, ok := ds.Graph.City(ds.Meta[i].DstCity)
		if !ok {
			return 0, 0, fmt.Errorf("unknown destination city %q", ds.Meta[i].DstCity)
		}
		return city.Lat, city.Lon, nil
	}

	t := report.New("Hot potato vs tag-aware egress, Internet2-shaped customer backbone (origin New York, 3-tier upstream)",
		"internal $/Mbps·mile", "hot potato $/mo", "planned $/mo", "savings", "cold-potato flows")
	for _, internal := range []float64{0.0005, 0.002, 0.01, 0.05} {
		p := &routing.Planner{
			Backbone:                ds.Graph,
			Origin:                  "New York",
			InternalCostPerMbpsMile: internal,
		}
		_, sum, err := p.Plan(m.Flows, dstCoords, quote)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(fmt.Sprintf("%.4f", internal),
			report.F1(sum.HotPotatoMonthly), report.F1(sum.PlannedMonthly),
			fmt.Sprintf("%.1f%%", sum.SavingsFraction*100),
			report.I(sum.ColdPotatoFlows)); err != nil {
			return nil, err
		}
	}
	t.AddNote("cheap backbone capacity turns tier tags into savings (cold-potato to the egress nearest each destination); expensive capacity degenerates to default hot-potato routing")
	return &Result{ID: "ext3", Title: "tag-aware routing", Tables: []*report.Table{t}}, nil
}
