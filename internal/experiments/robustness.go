package experiments

import (
	"context"
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ablation5",
		Title: "Seed robustness: capture across independently regenerated datasets",
		Paper: "sanity check that the reproduction's conclusions are not artifacts of one synthetic draw",
		Run:   runAblation5,
	})
}

// ablation5Cells is one seed's captures in fixed column order:
// optimal b=2, optimal b=4, profit-weighted b=2, profit-weighted b=4.
type ablation5Cells [4]float64

// runAblation5 regenerates each dataset with five independent seeds and
// reports the mean/min/max capture of optimal and profit-weighted
// bundling at 2 and 4 tiers. Each replication's seed is derived from its
// index alone (base + 101·i), so the per-seed fan-out reproduces the
// serial run exactly whatever the worker count or completion order; the
// mean/min/max folds happen in seed order after the barrier.
func runAblation5(opts Options) (*Result, error) {
	seeds := []int64{opts.Seed, opts.Seed + 101, opts.Seed + 202, opts.Seed + 303, opts.Seed + 404}
	workers := opts.workerCount()
	res := &Result{ID: "ablation5", Title: "seed robustness"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		t := report.New(
			fmt.Sprintf("Capture across %d seeds, %s demand (mean [min..max])", len(seeds), model),
			"network", "optimal b=2", "optimal b=4", "profit-weighted b=2", "profit-weighted b=4")
		for _, name := range traces.Names() {
			perSeed, err := parallel.Map(context.Background(), len(seeds), workers,
				func(_ context.Context, si int) (ablation5Cells, error) {
					var cells ablation5Cells
					m, err := datasetMarket(name, seeds[si], dm, cost.Linear{Theta: defaultTheta})
					if err != nil {
						return cells, err
					}
					col := 0
					for _, s := range []bundling.Strategy{bundling.Optimal{}, bundling.ProfitWeighted{}} {
						for _, b := range []int{2, 4} {
							out, err := m.Run(s, b)
							if err != nil {
								return cells, err
							}
							cells[col] = out.Capture
							col++
						}
					}
					return cells, nil
				})
			if err != nil {
				return nil, err
			}
			fmtCell := func(col int) string {
				sum, min, max := 0.0, math.Inf(1), math.Inf(-1)
				for _, cells := range perSeed {
					v := cells[col]
					sum += v
					min = math.Min(min, v)
					max = math.Max(max, v)
				}
				return fmt.Sprintf("%.3f [%.3f..%.3f]", sum/float64(len(seeds)), min, max)
			}
			if err := t.AddRow(name, fmtCell(0), fmtCell(1), fmtCell(2), fmtCell(3)); err != nil {
				return nil, err
			}
		}
		t.AddNote("each seed regenerates the synthetic network from scratch; tight ranges mean the figures above are properties of the calibrated population, not of one draw")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}
