package experiments

import (
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ablation5",
		Title: "Seed robustness: capture across independently regenerated datasets",
		Paper: "sanity check that the reproduction's conclusions are not artifacts of one synthetic draw",
		Run:   runAblation5,
	})
}

// runAblation5 regenerates each dataset with five independent seeds and
// reports the mean/min/max capture of optimal and profit-weighted
// bundling at 2 and 4 tiers.
func runAblation5(opts Options) (*Result, error) {
	seeds := []int64{opts.Seed, opts.Seed + 101, opts.Seed + 202, opts.Seed + 303, opts.Seed + 404}
	res := &Result{ID: "ablation5", Title: "seed robustness"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		t := report.New(
			fmt.Sprintf("Capture across %d seeds, %s demand (mean [min..max])", len(seeds), model),
			"network", "optimal b=2", "optimal b=4", "profit-weighted b=2", "profit-weighted b=4")
		for _, name := range traces.Names() {
			type series struct{ sum, min, max float64 }
			cells := map[string]*series{}
			key := func(s bundling.Strategy, b int) string {
				return fmt.Sprintf("%s/%d", s.Name(), b)
			}
			for _, seed := range seeds {
				m, err := datasetMarket(name, seed, dm, cost.Linear{Theta: defaultTheta})
				if err != nil {
					return nil, err
				}
				for _, s := range []bundling.Strategy{bundling.Optimal{}, bundling.ProfitWeighted{}} {
					for _, b := range []int{2, 4} {
						out, err := m.Run(s, b)
						if err != nil {
							return nil, err
						}
						k := key(s, b)
						sr, ok := cells[k]
						if !ok {
							sr = &series{min: math.Inf(1), max: math.Inf(-1)}
							cells[k] = sr
						}
						sr.sum += out.Capture
						sr.min = math.Min(sr.min, out.Capture)
						sr.max = math.Max(sr.max, out.Capture)
					}
				}
			}
			fmtCell := func(k string) string {
				sr := cells[k]
				return fmt.Sprintf("%.3f [%.3f..%.3f]",
					sr.sum/float64(len(seeds)), sr.min, sr.max)
			}
			if err := t.AddRow(name,
				fmtCell("optimal/2"), fmtCell("optimal/4"),
				fmtCell("profit-weighted/2"), fmtCell("profit-weighted/4")); err != nil {
				return nil, err
			}
		}
		t.AddNote("each seed regenerates the synthetic network from scratch; tight ranges mean the figures above are properties of the calibrated population, not of one draw")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}
