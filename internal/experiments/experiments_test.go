package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as a float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func runExperiment(t *testing.T, id string) *Result {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Options{Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID %q, want %q", res.ID, id)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "table1",
		"ablation1", "ablation2", "ablation3", "ablation4", "ablation5",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	// Ordering: prefix groups alphabetical, numeric within a group.
	if all[0].ID != "ablation1" || all[len(all)-1].ID != "table1" {
		t.Errorf("ordering wrong: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, e := range All() {
		res, err := e.Run(Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		var buf bytes.Buffer
		if err := res.WriteASCII(&buf); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered empty", e.ID)
		}
		for ti, table := range res.Tables {
			if len(table.Rows) == 0 {
				t.Errorf("%s table %d has no rows", e.ID, ti)
			}
		}
	}
}

func TestFig1MatchesPaperNumbers(t *testing.T) {
	res := runExperiment(t, "fig1")
	rows := map[string][]string{}
	for _, row := range res.Tables[0].Rows {
		rows[row[0]] = row
	}
	// Prices are pinned by construction.
	if v := cell(t, rows["tier price P1"][2]); v < 2.69 || v > 2.71 {
		t.Errorf("P1 = %v, want 2.70", v)
	}
	if v := cell(t, rows["tier price P2"][2]); v < 0.99 || v > 1.01 {
		t.Errorf("P2 = %v, want 1.00", v)
	}
	// Blended profit is fit to the paper's $2.08.
	if v := cell(t, rows["blended profit"][2]); v < 2.07 || v > 2.09 {
		t.Errorf("blended profit = %v", v)
	}
	// Direction of the welfare result: tiered beats blended on both.
	if !(cell(t, rows["tiered profit"][2]) > cell(t, rows["blended profit"][2])) {
		t.Error("tiered profit should exceed blended")
	}
	if !(cell(t, rows["tiered surplus"][2]) > cell(t, rows["blended surplus"][2])) {
		t.Error("tiered surplus should exceed blended")
	}
	// Magnitudes near the paper's.
	if v := cell(t, rows["tiered profit"][2]); v < 2.1 || v > 2.5 {
		t.Errorf("tiered profit = %v, want ≈2.25", v)
	}
}

func TestFig2HasAllRegions(t *testing.T) {
	res := runExperiment(t, "fig2")
	seen := map[string]bool{}
	for _, row := range res.Tables[0].Rows {
		seen[row[1]] = true
	}
	for _, want := range []string{"stay", "market-failure", "efficient-bypass"} {
		if !seen[want] {
			t.Errorf("region %s missing", want)
		}
	}
}

func TestFig6RecoversCurves(t *testing.T) {
	res := runExperiment(t, "fig6")
	for _, row := range res.Tables[0].Rows {
		aPaper, aFit := cell(t, row[1]), cell(t, row[4])
		if rel := (aFit - aPaper) / aPaper; rel < -0.15 || rel > 0.15 {
			t.Errorf("%s: fitted a=%v vs paper %v", row[0], aFit, aPaper)
		}
		if r2 := cell(t, row[6]); r2 < 0.9 {
			t.Errorf("%s: R² = %v", row[0], r2)
		}
	}
}

func TestFig8PaperShape(t *testing.T) {
	res := runExperiment(t, "fig8")
	if len(res.Tables) != 3 {
		t.Fatalf("want 3 network tables, got %d", len(res.Tables))
	}
	for _, table := range res.Tables {
		byStrategy := map[string][]float64{}
		for _, row := range table.Rows {
			var vals []float64
			for _, c := range row[1:] {
				vals = append(vals, cell(t, c))
			}
			byStrategy[row[0]] = vals
		}
		opt := byStrategy["optimal"]
		// Headline: 3-4 optimal bundles capture ≥ 85%.
		if opt[3] < 0.85 {
			t.Errorf("%s: optimal capture at b=4 = %v", table.Title, opt[3])
		}
		// Optimal dominates every other strategy at every b.
		for name, vals := range byStrategy {
			for b := range vals {
				if vals[b] > opt[b]+1e-6 {
					t.Errorf("%s: %s beats optimal at b=%d (%v > %v)",
						table.Title, name, b+1, vals[b], opt[b])
				}
			}
		}
		// Profit-weighted is competitive by 4 bundles. Internet2's extreme
		// demand CV (elephant flows burn token-bucket bundles) needs more
		// bundles, matching the paper's "networks with high CV of demand
		// require more bundles" observation.
		pw := byStrategy["profit-weighted"]
		if strings.Contains(table.Title, "internet2") {
			if pw[3] < 0.3 || pw[5] < 0.45 {
				t.Errorf("%s: profit-weighted b=4/b=6 = %v/%v", table.Title, pw[3], pw[5])
			}
		} else if pw[3] < 0.6 {
			t.Errorf("%s: profit-weighted at b=4 = %v", table.Title, pw[3])
		}
	}
}

func TestFig9LogitSaturatesFaster(t *testing.T) {
	ced := runExperiment(t, "fig8")
	logit := runExperiment(t, "fig9")
	// Compare the optimal rows at b=2 per network: logit ≥ CED.
	for i := range logit.Tables {
		var cedOpt, logitOpt float64
		for _, row := range ced.Tables[i].Rows {
			if row[0] == "optimal" {
				cedOpt = cell(t, row[2])
			}
		}
		for _, row := range logit.Tables[i].Rows {
			if row[0] == "optimal" {
				logitOpt = cell(t, row[2])
			}
		}
		if logitOpt < cedOpt-0.05 {
			t.Errorf("table %d: logit optimal at b=2 (%v) below CED (%v)", i, logitOpt, cedOpt)
		}
	}
	// Figure 9's legend has no demand-weighted row.
	for _, table := range logit.Tables {
		for _, row := range table.Rows {
			if row[0] == "demand-weighted" {
				t.Error("fig9 should not include demand-weighted")
			}
		}
	}
}

func TestFig10ThetaOrdering(t *testing.T) {
	res := runExperiment(t, "fig10")
	for _, table := range res.Tables {
		// Higher base cost θ ⇒ lower plateau (value at b=6).
		last := 2.0
		for _, row := range table.Rows {
			v := cell(t, row[6])
			if v > last+0.05 {
				t.Errorf("%s: θ=%s plateau %v not below previous %v", table.Title, row[0], v, last)
			}
			last = v
		}
	}
}

func TestFig12ThetaOrderingReversed(t *testing.T) {
	res := runExperiment(t, "fig12")
	for _, table := range res.Tables {
		// Regional model: higher θ ⇒ more inter-region cost spread ⇒
		// higher attainable profit, so plateaus must be non-decreasing in
		// θ (the reverse of fig10/fig11).
		prev := -1.0
		for _, row := range table.Rows {
			v := cell(t, row[6])
			if v < prev-0.05 {
				t.Errorf("%s: θ=%s plateau %v fell below previous %v",
					table.Title, row[0], v, prev)
			}
			prev = v
		}
	}
}

func TestFig13TwoBundlesSuffice(t *testing.T) {
	res := runExperiment(t, "fig13")
	for _, table := range res.Tables {
		for _, row := range table.Rows {
			b2, b6 := cell(t, row[2]), cell(t, row[6])
			if b6 > 0 && b2 < 0.8*b6 {
				t.Errorf("%s θ=%s: b=2 (%v) captures less than 80%% of b=6 (%v)",
					table.Title, row[0], b2, b6)
			}
		}
	}
}

func TestFig14RobustAcrossAlpha(t *testing.T) {
	res := runExperiment(t, "fig14")
	for _, table := range res.Tables {
		for _, row := range table.Rows {
			// Minimum capture must still be substantial by b=4 (the
			// paper's robustness claim); internet2 needs more bundles.
			floor := 0.4
			if row[0] == "internet2" {
				floor = 0.25
			}
			if v := cell(t, row[4]); v < floor {
				t.Errorf("%s %s: min capture at b=4 = %v", table.Title, row[0], v)
			}
		}
	}
}

func TestFig17BillsAgree(t *testing.T) {
	res := runExperiment(t, "fig17")
	table := res.Tables[0]
	var flowTotal, linkTotal float64
	for _, row := range table.Rows {
		flowTotal += cell(t, row[4])
		linkTotal += cell(t, row[5])
	}
	if linkTotal <= 0 {
		t.Fatal("link-based bill is zero")
	}
	rel := (flowTotal - linkTotal) / linkTotal
	if rel < -0.01 || rel > 0.01 {
		t.Errorf("bills disagree by %v%%: flow %v vs link %v", rel*100, flowTotal, linkTotal)
	}
	// Overhead table: link-based grows with tiers.
	t2 := res.Tables[1]
	first := cell(t, t2.Rows[0][1])
	last := cell(t, t2.Rows[len(t2.Rows)-1][1])
	if !(last > first) {
		t.Error("link-based overhead should grow with tiers")
	}
}

func TestTable1AllNetworks(t *testing.T) {
	res := runExperiment(t, "table1")
	table := res.Tables[0]
	if len(table.Rows) != 3 {
		t.Fatalf("want 3 networks, got %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		// Aggregate traffic must match the paper to within rounding.
		paperGbps, measured := cell(t, row[6]), cell(t, row[7])
		if rel := (measured - paperGbps) / paperGbps; rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: aggregate %v vs paper %v", row[0], measured, paperGbps)
		}
		// The pipeline must have seen duplicates (multi-router export).
		if dups := cell(t, row[10]); dups <= 0 {
			t.Errorf("%s: no duplicate records in pipeline", row[0])
		}
	}
	// Demand-CV ordering across networks must match the paper:
	// EU ISP < CDN < Internet2.
	cvByName := map[string]float64{}
	for _, row := range table.Rows {
		cvByName[row[0]] = cell(t, row[9])
	}
	if !(cvByName["euisp"] < cvByName["cdn"] && cvByName["cdn"] < cvByName["internet2"]) {
		t.Errorf("demand CV ordering wrong: %v", cvByName)
	}
}

func TestResultWriteASCIIIncludesID(t *testing.T) {
	res := runExperiment(t, "fig3")
	var buf bytes.Buffer
	if err := res.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig3") {
		t.Error("rendered output missing experiment id")
	}
}
