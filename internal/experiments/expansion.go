package experiments

import (
	"fmt"
	"math"

	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/peering"
	"tieredpricing/internal/report"
	"tieredpricing/internal/topology"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ext5",
		Title: "IXP expansion planning: which direct builds pay off for the CDN",
		Paper: "extension of §2.2.2: operators 'periodically re-evaluate transit bills and expand their backbone coverage if ... presence in an IXP pays off'",
		Run:   runExt5,
	})
}

// runExt5 ranks candidate IXP builds for the CDN customer: each world
// city hosts an exchange whose private-link cost grows with distance
// from the nearest CDN origin; destinations within the exchange's reach
// can be served over the link instead of blended transit.
func runExt5(opts Options) (*Result, error) {
	ds, err := traces.CDN(opts.Seed)
	if err != nil {
		return nil, err
	}
	market, err := core.NewMarket(ds.Flows, econ.CED{Alpha: defaultAlpha},
		cost.Linear{Theta: defaultTheta}, ds.P0)
	if err != nil {
		return nil, err
	}
	// The ISP-side economics for the market-failure classification: its
	// unit cost is the demand-weighted mean of the fitted flow costs.
	var wc, wq float64
	for _, f := range market.Flows {
		wc += f.Cost * f.Demand
		wq += f.Demand
	}
	base := peering.Inputs{
		BlendedRate:        ds.P0,
		ISPCost:            wc / wq,
		Margin:             0.3,
		AccountingOverhead: 1,
	}

	origins := topology.CDNOrigins()
	candidates := make([]peering.Candidate, 0, len(topology.WorldCities()))
	for _, city := range topology.WorldCities() {
		nearest := math.Inf(1)
		for _, o := range origins {
			if d := topology.Distance(o, city); d < nearest {
				nearest = d
			}
		}
		candidates = append(candidates, peering.Candidate{
			City: city,
			// Fixed exchange presence plus a per-mile wave/leased
			// component from the nearest backbone PoP.
			LinkMonthly: 3000 + 4*nearest,
			Radius:      300,
		})
	}

	dstCoords := func(i int) (float64, float64, error) {
		rec, ok := ds.Geo.Lookup(ds.Meta[i].DstPrefix.Addr())
		if !ok {
			return 0, 0, fmt.Errorf("destination %v unresolved", ds.Meta[i].DstPrefix)
		}
		return rec.Lat, rec.Lon, nil
	}
	builds, err := peering.PlanExpansion(market.Flows, dstCoords, candidates, base)
	if err != nil {
		return nil, err
	}

	t := report.New(
		fmt.Sprintf("Top IXP builds for the CDN (R=$%.0f, ISP floor=$%.2f, link $3000+4/mi, reach 300mi)",
			base.BlendedRate, base.TieredFloor()),
		"IXP", "offload Mbps", "c_direct $/Mbps", "outcome", "savings $/mo")
	var totalSavings float64
	var failures int
	shown := 0
	for _, b := range builds {
		if b.MonthlySavings > 0 {
			totalSavings += b.MonthlySavings
			if b.Outcome == peering.MarketFailure {
				failures++
			}
		}
		if shown < 10 {
			if err := t.AddRow(b.IXP, report.F1(b.OffloadMbps),
				report.F(b.DirectUnitCost), b.Outcome.String(),
				report.F1(b.MonthlySavings)); err != nil {
				return nil, err
			}
			shown++
		}
	}
	t.AddNote("%d of %d candidate builds pay off for $%s/month total savings; %d of the paying builds sit in the market-failure band the ISP could win back with tiered pricing",
		countPositive(builds), len(builds), report.F1(totalSavings), failures)
	return &Result{ID: "ext5", Title: "IXP expansion planning", Tables: []*report.Table{t}}, nil
}

func countPositive(builds []peering.Build) int {
	n := 0
	for _, b := range builds {
		if b.MonthlySavings > 0 {
			n++
		}
	}
	return n
}
