// Package experiments contains one runner per table and figure of the
// paper's evaluation, each regenerating the corresponding rows/series
// from the synthetic substrates. The cmd/tiersim binary and the
// repository-level benchmarks both drive this registry.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
)

// Options parameterize a run.
type Options struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Workers bounds the goroutines used to fan out independent work —
	// whole experiments in RunAll, and the per-seed, per-parameter and
	// per-bundle-count loops inside experiments. Zero or one runs
	// serially. Any value produces byte-identical output: tasks derive
	// their seeds and parameters from their index, and results merge in
	// submission order.
	Workers int
}

// workerCount resolves the Workers option; the zero value stays serial
// so existing callers and the per-artifact benchmarks keep their exact
// serial behavior (cmd/tiersim passes runtime.NumCPU() explicitly).
func (o Options) workerCount() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// Result is an experiment's output: one or more tables mirroring the
// paper artifact.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// WriteASCII renders every table.
func (r *Result) WriteASCII(w io.Writer) error {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if err := t.WriteASCII(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Runner produces a Result.
type Runner func(Options) (*Result, error)

// Experiment is a registered paper artifact.
type Experiment struct {
	// ID is the registry key ("fig8", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Paper cites what the artifact shows in the paper.
	Paper string
	// Run regenerates it.
	Run Runner
}

// The registry is guarded for concurrent Get/All against (test-only)
// late registration; after init it is effectively read-only and the
// RWMutex costs nothing contended.
var (
	registryMu sync.RWMutex
	registry   = map[string]Experiment{}
)

// register adds an experiment at init time.
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get looks an experiment up by ID. It is safe for concurrent use.
func Get(id string) (Experiment, error) {
	registryMu.RLock()
	e, ok := registry[id]
	registryMu.RUnlock()
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (run `tiersim list`)", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID (figures first, then tables,
// in numeric order). It is safe for concurrent use.
func All() []Experiment {
	registryMu.RLock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// RunAll resolves ids — every registered experiment when ids is empty —
// and runs them, fanning the independent experiments across
// opts.Workers goroutines. Results come back in submission order
// regardless of completion order, so output rendered from them is
// byte-identical to running each experiment serially.
func RunAll(opts Options, ids ...string) ([]*Result, error) {
	var exps []Experiment
	if len(ids) == 0 {
		exps = All()
	} else {
		exps = make([]Experiment, len(ids))
		for i, id := range ids {
			e, err := Get(id)
			if err != nil {
				return nil, err
			}
			exps[i] = e
		}
	}
	return parallel.Map(context.Background(), len(exps), opts.workerCount(),
		func(_ context.Context, i int) (*Result, error) {
			res, err := exps[i].Run(opts)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
			}
			return res, nil
		})
}

// lessID orders fig1 < fig2 < ... < fig17 < table1.
func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	var n int
	fmt.Sscanf(id[i:], "%d", &n)
	return id[:i], n
}
