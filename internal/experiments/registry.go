// Package experiments contains one runner per table and figure of the
// paper's evaluation, each regenerating the corresponding rows/series
// from the synthetic substrates. The cmd/tiersim binary and the
// repository-level benchmarks both drive this registry.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"tieredpricing/internal/report"
)

// Options parameterize a run.
type Options struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed int64
}

// Result is an experiment's output: one or more tables mirroring the
// paper artifact.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// WriteASCII renders every table.
func (r *Result) WriteASCII(w io.Writer) error {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if err := t.WriteASCII(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Runner produces a Result.
type Runner func(Options) (*Result, error)

// Experiment is a registered paper artifact.
type Experiment struct {
	// ID is the registry key ("fig8", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Paper cites what the artifact shows in the paper.
	Paper string
	// Run regenerates it.
	Run Runner
}

var registry = map[string]Experiment{}

// register adds an experiment at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get looks an experiment up by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (run `tiersim list`)", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID (figures first, then tables,
// in numeric order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// lessID orders fig1 < fig2 < ... < fig17 < table1.
func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	var n int
	fmt.Sscanf(id[i:], "%d", &n)
	return id[:i], n
}
