package experiments

import (
	"fmt"
	"math"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/report"
	"tieredpricing/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Market efficiency loss due to coarse bundling (blended vs tiered, two flows)",
		Paper: "Figure 1: P0=$1.2, (P1,P2)=($2.7,$1); profit $2.08→$2.25, surplus $4.17→$4.5",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Feasible CED demand functions",
		Paper: "Figure 3: Q(p) = (v/p)^α for v=1, α ∈ {1.4, 3.3}",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "CED profit vs price for two flows with identical demand, different cost",
		Paper: "Figure 4: v=1, α=2, c ∈ {$1, $2}; optima p*=2c",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Logit demand functions",
		Paper: "Figure 5: two flows, v=(1.6, 1), p1=1, p2 ∈ [0,4], α ∈ {1, 2}",
		Run:   runFig5,
	})
}

// runFig1 reconstructs the paper's two-flow illustration. The figure's
// stated prices pin the elasticities: P1 = α1·c1/(α1−1) with c1 = $1
// gives α1 = 2.7/1.7; P2 = α2·c2/(α2−1) with c2 = $0.5 gives α2 = 2.
// The remaining valuations (v1, v2) are identified by requiring the
// blended rate P0 = $1.2 to be profit-maximizing with blended profit
// $2.08 — a 2×2 linear system in A = v1^α1, B = v2^α2.
func runFig1(Options) (*Result, error) {
	const (
		p0     = 1.2
		c1, c2 = 1.0, 0.5
		pi0    = 2.08
	)
	alpha1 := 2.7 / 1.7
	alpha2 := 2.0

	// FOC coefficients: d/dP [A·P^{−α}(P−c)] at P0 is
	// A·[(1−α)P0^{−α} + α·c·P0^{−α−1}].
	g := func(alpha, c float64) float64 {
		return (1-alpha)*math.Pow(p0, -alpha) + alpha*c*math.Pow(p0, -alpha-1)
	}
	// Profit coefficients at the blended rate.
	h := func(alpha, c float64) float64 {
		return math.Pow(p0, -alpha) * (p0 - c)
	}
	// Solve A·g1 + B·g2 = 0, A·h1 + B·h2 = pi0.
	g1, g2 := g(alpha1, c1), g(alpha2, c2)
	h1, h2 := h(alpha1, c1), h(alpha2, c2)
	// A = −B·g2/g1.
	B := pi0 / (h2 - h1*g2/g1)
	A := -B * g2 / g1
	if A <= 0 || B <= 0 {
		return nil, fmt.Errorf("fig1: degenerate calibration A=%v B=%v", A, B)
	}
	v1 := math.Pow(A, 1/alpha1)
	v2 := math.Pow(B, 1/alpha2)

	p1 := econ.CEDOptimalPrice(c1, alpha1)
	p2 := econ.CEDOptimalPrice(c2, alpha2)
	blendedProfit := econ.CEDFlowProfit(v1, p0, c1, alpha1) + econ.CEDFlowProfit(v2, p0, c2, alpha2)
	tieredProfit := econ.CEDFlowProfit(v1, p1, c1, alpha1) + econ.CEDFlowProfit(v2, p2, c2, alpha2)
	blendedSurplus := econ.CEDSurplus(v1, p0, alpha1) + econ.CEDSurplus(v2, p0, alpha2)
	tieredSurplus := econ.CEDSurplus(v1, p1, alpha1) + econ.CEDSurplus(v2, p2, alpha2)

	t := report.New("Blended vs tiered pricing, two-flow market",
		"quantity", "paper", "measured")
	t.MustAddRow("blended rate P0", "1.20", report.F(p0))
	t.MustAddRow("tier price P1", "2.70", report.F(p1))
	t.MustAddRow("tier price P2", "1.00", report.F(p2))
	t.MustAddRow("blended profit", "2.08", report.F(blendedProfit))
	t.MustAddRow("tiered profit", "2.25", report.F(tieredProfit))
	t.MustAddRow("blended surplus", "4.17", report.F(blendedSurplus))
	t.MustAddRow("tiered surplus", "4.50", report.F(tieredSurplus))
	t.MustAddRow("demand Q1 at P0", "<1", report.F(econ.CEDQuantity(v1, p0, alpha1)))
	t.MustAddRow("demand Q2 at P0", "2..3", report.F(econ.CEDQuantity(v2, p0, alpha2)))
	t.AddNote("fitted v1=%s (α1=%s), v2=%s (α2=%s); tiered pricing must raise both profit and surplus",
		report.F(v1), report.F(alpha1), report.F(v2), report.F(alpha2))
	return &Result{ID: "fig1", Title: "blended vs tiered toy market", Tables: []*report.Table{t}}, nil
}

func runFig3(Options) (*Result, error) {
	prices, err := stats.Linspace(0.25, 4.0, 16)
	if err != nil {
		return nil, err
	}
	t := report.New("CED demand curves, v = 1", "price", "Q(α=1.4)", "Q(α=3.3)")
	for _, p := range prices {
		t.MustAddRow(report.F(p),
			report.F(econ.CEDQuantity(1, p, 1.4)),
			report.F(econ.CEDQuantity(1, p, 3.3)))
	}
	t.AddNote("higher α = more elastic: demand collapses faster as price rises past v")
	return &Result{ID: "fig3", Title: "feasible CED demand functions", Tables: []*report.Table{t}}, nil
}

func runFig4(Options) (*Result, error) {
	prices, err := stats.Linspace(0.5, 7.0, 27)
	if err != nil {
		return nil, err
	}
	const alpha = 2.0
	t := report.New("CED profit vs price, v = 1, α = 2", "price", "π(c=1)", "π(c=2)")
	for _, p := range prices {
		t.MustAddRow(report.F(p),
			report.F(econ.CEDFlowProfit(1, p, 1, alpha)),
			report.F(econ.CEDFlowProfit(1, p, 2, alpha)))
	}
	t.AddNote("optima: p*(c=1)=%s with π=%s; p*(c=2)=%s with π=%s — costlier flows carry higher optimal prices",
		report.F(econ.CEDOptimalPrice(1, alpha)), report.F(econ.CEDFlowProfit(1, 2, 1, alpha)),
		report.F(econ.CEDOptimalPrice(2, alpha)), report.F(econ.CEDFlowProfit(1, 4, 2, alpha)))
	return &Result{ID: "fig4", Title: "CED profit curves", Tables: []*report.Table{t}}, nil
}

func runFig5(Options) (*Result, error) {
	prices, err := stats.Linspace(0, 4, 17)
	if err != nil {
		return nil, err
	}
	vals := []float64{1.6, 1.0}
	t := report.New("Logit demand for flow 2 (v2=1, v1=1.6 priced at 1)",
		"price p2", "Q2(α=1)", "Q2(α=2)")
	for _, p2 := range prices {
		row := []string{report.F(p2)}
		for _, alpha := range []float64{1, 2} {
			m := econ.Logit{Alpha: alpha, S0: 0.2}
			shares, _, err := m.Shares(vals, []float64{1, p2})
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(shares[1]))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.AddNote("demands are not separable: flow 2's share leaks to flow 1 and the outside option as p2 rises")
	return &Result{ID: "fig5", Title: "logit demand functions", Tables: []*report.Table{t}}, nil
}
