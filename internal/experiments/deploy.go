package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/netip"

	"tieredpricing/internal/accounting"
	"tieredpricing/internal/bgp"
	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/peering"
	"tieredpricing/internal/report"
	"tieredpricing/internal/stats"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Direct peering break-even against a blended rate",
		Paper: "Figure 2: customer bypasses when c_direct < R; market failure when c_direct > (M+1)c_ISP + A",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Tiered-pricing deployment: BGP tier tagging + both accounting architectures",
		Paper: "Figure 17 / §5: link-based (SNMP) vs flow-based (NetFlow+RIB) accounting must agree",
		Run:   runFig17,
	})
}

func runFig2(Options) (*Result, error) {
	base := peering.Inputs{
		BlendedRate:        20,
		ISPCost:            5,
		Margin:             0.3,
		AccountingOverhead: 1,
	}
	costs, err := stats.Linspace(1, 25, 25)
	if err != nil {
		return nil, err
	}
	points, err := peering.Sweep(base, costs)
	if err != nil {
		return nil, err
	}
	t := report.New(
		fmt.Sprintf("Direct-peering decision (R=$%.0f, c_ISP=$%.0f, M=%.0f%%, A=$%.0f, tiered floor=$%.1f)",
			base.BlendedRate, base.ISPCost, base.Margin*100, base.AccountingOverhead,
			base.TieredFloor()),
		"c_direct", "outcome", "ISP revenue loss", "welfare loss")
	for _, p := range points {
		if err := t.AddRow(report.F1(p.DirectCost), p.Outcome.String(),
			report.F1(p.ISPRevenueLoss), report.F1(p.WelfareLoss)); err != nil {
			return nil, err
		}
	}
	t.AddNote("the market-failure band (c_direct between the tiered floor and R) is what tiered pricing eliminates")
	return &Result{ID: "fig2", Title: "direct peering break-even", Tables: []*report.Table{t}}, nil
}

// runFig17 drives the whole §5 deployment story end to end on the EU ISP
// dataset: fit the market, pick 3 profit-weighted tiers, announce the
// tier-tagged routes over a real BGP session on loopback TCP, replay the
// NetFlow trace into the flow-based accountant, route the same traffic
// over per-tier links for the link-based meter, and compare bills and
// overheads.
func runFig17(opts Options) (*Result, error) {
	const tiers = 3
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	market, err := core.NewMarket(ds.Flows, econ.CED{Alpha: defaultAlpha},
		cost.Linear{Theta: defaultTheta}, ds.P0)
	if err != nil {
		return nil, err
	}
	outcome, err := market.Run(bundling.ProfitWeighted{}, tiers)
	if err != nil {
		return nil, err
	}

	// Map each destination prefix to its tier.
	tierOf := make(map[netip.Prefix]int, len(ds.Flows))
	prefixes := make([]netip.Prefix, 0, len(ds.Flows))
	for b, block := range outcome.Partition {
		for _, i := range block {
			tierOf[ds.Meta[i].DstPrefix] = b
			prefixes = append(prefixes, ds.Meta[i].DstPrefix)
		}
	}

	// §5.1: announce tier-tagged routes over a live BGP session; the
	// customer side builds its RIB from the received updates.
	rib, err := announceOverTCP(prefixes, tierOf, outcome.Prices)
	if err != nil {
		return nil, err
	}

	// §5.2(b): flow-based accounting from the replayed NetFlow streams.
	fa, err := accounting.NewFlowAccountant(rib)
	if err != nil {
		return nil, err
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: opts.Seed + 1})
	if err != nil {
		return nil, err
	}
	var totalRecords int
	for _, stream := range streams {
		rd := netflow.NewReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			totalRecords += len(recs)
			fa.Ingest(h, recs)
		}
	}

	// §5.2(a): link-based accounting — the data path steers each flow
	// onto its tier's link (per the tagged RIB) and SNMP counters are
	// polled.
	lm := accounting.NewLinkMeter()
	for tier := 0; tier < len(outcome.Prices); tier++ {
		if err := lm.AddLink(uint16(100+tier), tier); err != nil {
			return nil, err
		}
	}
	for i, f := range ds.Flows {
		route, ok := rib.Lookup(ds.Meta[i].DstPrefix.Addr().Next())
		if !ok || route.Tier == nil {
			return nil, fmt.Errorf("fig17: flow %q has no tier route", f.ID)
		}
		ifIndex, ok := lm.LinkFor(int(route.Tier.Tier))
		if !ok {
			return nil, fmt.Errorf("fig17: no link for tier %d", route.Tier.Tier)
		}
		octets := uint64(f.Demand * 1e6 / 8 * ds.DurationSec)
		if err := lm.Count(ifIndex, octets); err != nil {
			return nil, err
		}
	}

	flowBill, err := accounting.ComputeBill(fa.PerTierOctets(), outcome.Prices, ds.DurationSec)
	if err != nil {
		return nil, err
	}
	linkBill, err := accounting.ComputeBill(accounting.PerTierOctets(lm.Poll()), outcome.Prices, ds.DurationSec)
	if err != nil {
		return nil, err
	}

	t := report.New("Per-tier accounting, EU ISP, 3 profit-weighted tiers",
		"tier", "price $/Mbps", "flow-based Mbps", "link-based Mbps", "flow-based $", "link-based $")
	for tier := 0; tier < len(outcome.Prices); tier++ {
		if err := t.AddRow(report.I(tier), report.F(outcome.Prices[tier]),
			report.F1(flowBill.MbpsPerTier[tier]), report.F1(linkBill.MbpsPerTier[tier]),
			report.F1(flowBill.ChargePerTier[tier]), report.F1(linkBill.ChargePerTier[tier])); err != nil {
			return nil, err
		}
	}
	agree := math.Abs(flowBill.Total-linkBill.Total) / linkBill.Total
	t.AddNote("total: flow-based $%s vs link-based $%s (relative difference %.4f%%, from 1-in-%d sampling)",
		report.F1(flowBill.Total), report.F1(linkBill.Total), agree*100, ds.SamplingInterval)
	t.AddNote("unrouted octets: %d; routes in customer RIB: %d", fa.Unrouted(), rib.Len())

	ov := accounting.Overhead{PerTierLink: 450, CollectorFixed: 900, PerMillionRecords: 12}
	t2 := report.New("Accounting overhead vs tier count (§5.2)",
		"tiers", "link-based $/mo", "flow-based $/mo")
	for _, n := range []int{1, 2, 3, 4, 6, 10} {
		if err := t2.AddRow(report.I(n),
			report.F1(ov.LinkBased(n)), report.F1(ov.FlowBased(totalRecords))); err != nil {
			return nil, err
		}
	}
	t2.AddNote("link-based overhead grows with tiers (a session+link each); flow-based is flat in tiers (%d records processed)", totalRecords)
	return &Result{ID: "fig17", Title: "deployment pipeline", Tables: []*report.Table{t, t2}}, nil
}

// announceOverTCP runs a provider/customer BGP exchange on loopback TCP:
// the provider announces every prefix tagged with its tier, the customer
// applies the updates to a fresh RIB.
func announceOverTCP(prefixes []netip.Prefix, tierOf map[netip.Prefix]int, prices []float64) (*bgp.RIB, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	type result struct {
		rib *bgp.RIB
		err error
	}
	done := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer conn.Close()
		sess, err := bgp.Establish(conn, bgp.Open{AS: 64513, HoldTime: 180, ID: 2})
		if err != nil {
			done <- result{nil, err}
			return
		}
		rib := bgp.NewRIB()
		for {
			msg, err := sess.Recv()
			if err == io.EOF {
				done <- result{rib, nil}
				return
			}
			if err != nil {
				done <- result{nil, err}
				return
			}
			if u, ok := msg.(*bgp.Update); ok {
				if err := rib.Apply(u); err != nil {
					done <- result{nil, err}
					return
				}
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	sess, err := bgp.Establish(conn, bgp.Open{AS: 64512, HoldTime: 180, ID: 1})
	if err != nil {
		conn.Close()
		return nil, err
	}
	updates, err := bgp.AnnounceTiered(prefixes, netip.MustParseAddr("192.0.2.1"),
		func(p netip.Prefix) int { return tierOf[p] }, prices)
	if err != nil {
		sess.Close()
		return nil, err
	}
	for _, u := range updates {
		// Keep each UPDATE under the 4096-byte message limit.
		for len(u.Announced) > 0 {
			n := len(u.Announced)
			if n > 500 {
				n = 500
			}
			part := u
			part.Announced = u.Announced[:n]
			if err := sess.SendUpdate(part); err != nil {
				sess.Close()
				return nil, err
			}
			u.Announced = u.Announced[n:]
		}
	}
	if err := sess.Close(); err != nil {
		return nil, err
	}
	res := <-done
	return res.rib, res.err
}
