package experiments

import (
	"context"
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/optimize"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/pricing"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

// The ablations of DESIGN.md §6: experiments beyond the paper's figures
// that bound or explain its design choices.

func init() {
	register(Experiment{
		ID:    "ablation1",
		Title: "Exhaustive set-partition search vs the contiguous DP optimum",
		Paper: "bounds the gap of the 'optimal' strategy against the paper's literal exhaustive search (aggregated flows)",
		Run:   runAblation1,
	})
	register(Experiment{
		ID:    "ablation2",
		Title: "Class-aware guard on/off for the destination-type cost model",
		Paper: "quantifies §4.3.1: 'the standard profit-weighting algorithm does not work well with the destination type-based cost model'",
		Run:   runAblation2,
	})
	register(Experiment{
		ID:    "ablation3",
		Title: "NetFlow cross-router dedup on/off",
		Paper: "quantifies the §4.1.1 double-counting caveat on demands and fitted prices",
		Run:   runAblation3,
	})
	register(Experiment{
		ID:    "ablation4",
		Title: "Market granularity: capture vs number of flow aggregates",
		Paper: "the §1 granularity/efficiency trade-off, measured",
		Run:   runAblation4,
	})
	register(Experiment{
		ID:    "ext1",
		Title: "95th-percentile vs average-rate billing on tiered contracts",
		Paper: "extension: the industry billing rule the paper's $/Mbps/month prices plug into",
		Run:   runExt1,
	})
}

// runAblation1 aggregates each dataset to 10 flows, enumerates EVERY set
// partition into ≤ 4 bundles with real pricing, and compares the optimum
// against the contiguous DP — the empirical check that "optimal" is
// optimal.
func runAblation1(opts Options) (*Result, error) {
	const aggFlows, bundles = 10, 4
	res := &Result{ID: "ablation1", Title: "exhaustive search vs contiguous DP"}
	t := report.New(
		fmt.Sprintf("Exhaustive (all partitions of %d aggregates into ≤%d bundles) vs DP",
			aggFlows, bundles),
		"network", "model", "partitions", "exhaustive π", "DP π", "quad DP π", "gap")
	// The exhaustive enumeration dominates this experiment's cost and every
	// (network, model) pair is independent, so fan the pairs out and add
	// the rows in presentation order.
	type pair struct{ name, model string }
	var pairs []pair
	for _, name := range traces.Names() {
		for _, model := range []string{"ced", "logit"} {
			pairs = append(pairs, pair{name, model})
		}
	}
	rows, err := parallel.Map(context.Background(), len(pairs), opts.workerCount(),
		func(_ context.Context, pi int) ([]string, error) {
			name, model := pairs[pi].name, pairs[pi].model
			ds, err := traces.ByName(name, opts.Seed)
			if err != nil {
				return nil, err
			}
			small, err := core.AggregateFlows(ds.Flows, aggFlows)
			if err != nil {
				return nil, err
			}
			dm, err := demandModel(model)
			if err != nil {
				return nil, err
			}
			m, err := core.NewMarket(small, dm, cost.Linear{Theta: defaultTheta}, ds.P0)
			if err != nil {
				return nil, err
			}
			count := 0
			bestExhaustive := math.Inf(-1)
			err = optimize.EnumeratePartitions(len(m.Flows), bundles, func(p [][]int) bool {
				count++
				ev, err := pricing.Evaluate(m.Demand, m.Flows, p)
				if err != nil {
					return false
				}
				if ev.Profit > bestExhaustive {
					bestExhaustive = ev.Profit
				}
				return true
			})
			if err != nil {
				return nil, err
			}
			dp, err := m.Run(bundling.Optimal{}, bundles)
			if err != nil {
				return nil, err
			}
			// The quadratic reference solver must land on the same profit
			// as the default divide-and-conquer path.
			quad, err := m.Run(bundling.Optimal{Quadratic: true}, bundles)
			if err != nil {
				return nil, err
			}
			gap := (bestExhaustive - dp.Profit) / bestExhaustive
			return []string{name, model, report.I(count),
				report.F1(bestExhaustive), report.F1(dp.Profit), report.F1(quad.Profit),
				fmt.Sprintf("%.2e", gap)}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.AddNote("gap ≈ 0 everywhere: the contiguous-in-cost DP attains the exhaustive optimum (DESIGN.md §4)")
	t.AddNote("DP π is the default divide-and-conquer monotone solver; quad DP π the O(n²·B) reference — identical by construction")
	res.Tables = append(res.Tables, t)
	return res, nil
}

// runAblation2 compares profit-weighted bundling with and without the
// never-mix-classes guard under the destination-type cost model.
func runAblation2(opts Options) (*Result, error) {
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	split, err := core.SplitByDestType(ds.Flows, 0.1)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation2", Title: "class-aware guard ablation"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		m, err := core.NewMarket(split, dm, cost.DestType{}, ds.P0)
		if err != nil {
			return nil, err
		}
		t := report.New(
			fmt.Sprintf("Destination-type cost (θ=0.1), %s demand: profit capture", model),
			"strategy", "b=2", "b=3", "b=4", "b=5", "b=6")
		for _, s := range []bundling.Strategy{
			bundling.ProfitWeighted{},
			bundling.ClassAware{Inner: bundling.ProfitWeighted{}},
		} {
			cells := []string{s.Name()}
			for b := 2; b <= 6; b++ {
				out, err := m.Run(s, b)
				if err != nil {
					return nil, err
				}
				cells = append(cells, report.F(out.Capture))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("the guard pins capture at its two-class maximum from b=2; the unguarded heuristic mixes on- and off-net flows into shared bundles")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// runAblation3 replays the EU ISP NetFlow streams twice — with and
// without cross-router dedup — and fits a market on each, quantifying
// how double-counting inflates demands and distorts tier prices.
func runAblation3(opts Options) (*Result, error) {
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: opts.Seed + 1})
	if err != nil {
		return nil, err
	}
	collect := func(dedup bool) (*core.Market, traces.Stats, error) {
		c := netflow.NewCollector(traces.AggregateKey)
		if !dedup {
			c.DisableDedup()
		}
		if err := ingestStreams(c, streams); err != nil {
			return nil, traces.Stats{}, err
		}
		flows, err := resolveEUISP(c, ds)
		if err != nil {
			return nil, traces.Stats{}, err
		}
		st, err := traces.MeasureFlows(flows)
		if err != nil {
			return nil, traces.Stats{}, err
		}
		m, err := core.NewMarket(flows, econ.CED{Alpha: defaultAlpha},
			cost.Linear{Theta: defaultTheta}, ds.P0)
		if err != nil {
			return nil, traces.Stats{}, err
		}
		return m, st, nil
	}
	withDedup, stDedup, err := collect(true)
	if err != nil {
		return nil, err
	}
	without, stRaw, err := collect(false)
	if err != nil {
		return nil, err
	}
	outDedup, err := withDedup.Run(bundling.ProfitWeighted{}, 3)
	if err != nil {
		return nil, err
	}
	outRaw, err := without.Run(bundling.ProfitWeighted{}, 3)
	if err != nil {
		return nil, err
	}

	t := report.New("EU ISP pipeline with vs without cross-router dedup (CED, 3 tiers)",
		"quantity", "with dedup", "without dedup")
	t.MustAddRow("measured traffic (Gbps)",
		report.F1(stDedup.AggregateGbps), report.F1(stRaw.AggregateGbps))
	t.MustAddRow("demand-weighted distance (mi)",
		report.F1(stDedup.WeightedMeanDistance), report.F1(stRaw.WeightedMeanDistance))
	for b := 0; b < 3; b++ {
		t.MustAddRow(fmt.Sprintf("tier %d price ($/Mbps)", b),
			report.F(outDedup.Prices[b]), report.F(outRaw.Prices[b]))
	}
	t.MustAddRow("blended-equivalent profit ($)",
		report.F1(withDedup.OriginalProfit), report.F1(without.OriginalProfit))
	t.AddNote("without dedup, records exported by both the entry and exit PoP are counted twice: demands double where paths have 2 exporters, and every fitted dollar figure silently scales with the duplication factor")
	return &Result{ID: "ablation3", Title: "dedup ablation", Tables: []*report.Table{t}}, nil
}

// runAblation4 measures optimal-bundling capture when the market is
// coarsened to k aggregates before fitting.
func runAblation4(opts Options) (*Result, error) {
	res := &Result{ID: "ablation4", Title: "granularity ablation"}
	t := report.New("Optimal capture at b=3 vs market granularity (EU ISP, CED)",
		"aggregates", "capture b=3", "max profit $")
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	// Every granularity refits and re-solves its own market; fan out per k.
	ks := []int{5, 10, 25, 50, 100, 200}
	rows, err := parallel.Map(context.Background(), len(ks), opts.workerCount(),
		func(_ context.Context, ki int) ([]string, error) {
			flows, err := core.AggregateFlows(ds.Flows, ks[ki])
			if err != nil {
				return nil, err
			}
			m, err := core.NewMarket(flows, econ.CED{Alpha: defaultAlpha},
				cost.Linear{Theta: defaultTheta}, ds.P0)
			if err != nil {
				return nil, err
			}
			out, err := m.Run(bundling.Optimal{}, 3)
			if err != nil {
				return nil, err
			}
			return []string{report.I(len(flows)), report.F(out.Capture),
				report.F1(m.MaxProfit)}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	t.AddNote("after recalibration the attainable maximum is nearly granularity-invariant, but capture with 3 tiers declines as the market gets finer: more distinct cost points leave more headroom that few tiers cannot reach — the practical face of the §1 granularity/efficiency trade-off")
	res.Tables = append(res.Tables, t)
	return res, nil
}

// runExt1 compares average-rate billing (what ComputeBill does, and what
// the counterfactuals assume) against 95th-percentile billing on a
// bursty replay of the EU ISP tiers.
func runExt1(opts Options) (*Result, error) {
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	market, err := core.NewMarket(ds.Flows, econ.CED{Alpha: defaultAlpha},
		cost.Linear{Theta: defaultTheta}, ds.P0)
	if err != nil {
		return nil, err
	}
	out, err := market.Run(bundling.ProfitWeighted{}, 3)
	if err != nil {
		return nil, err
	}

	// Build a day of 5-minute samples per tier: flat base rate plus a
	// deterministic diurnal swell and a short evening peak.
	const intervals = 288
	samples := map[int][]float64{}
	avg := map[int]float64{}
	for b, block := range out.Partition {
		var base float64
		for _, i := range block {
			base += market.Flows[i].Demand
		}
		row := make([]float64, intervals)
		var sum float64
		for i := range row {
			frac := float64(i) / intervals
			diurnal := 0.75 + 0.5*frac // traffic grows through the day
			v := base * diurnal
			if i >= 252 && i < 262 { // ~50-minute evening peak
				v = base * 1.9
			}
			row[i] = v
			sum += v
		}
		samples[b] = row
		avg[b] = sum / intervals
	}

	avgBill := 0.0
	for b := range out.Prices {
		avgBill += avg[b] * out.Prices[b]
	}
	p95Bill, err := billPercentile(samples, out.Prices)
	if err != nil {
		return nil, err
	}

	t := report.New("Average-rate vs 95th-percentile billing, EU ISP, 3 tiers",
		"tier", "price $/Mbps", "avg Mbps", "p95 Mbps", "avg bill $", "p95 bill $")
	for b := range out.Prices {
		if err := t.AddRow(report.I(b), report.F(out.Prices[b]),
			report.F1(avg[b]), report.F1(p95Bill.MbpsPerTier[b]),
			report.F1(avg[b]*out.Prices[b]), report.F1(p95Bill.ChargePerTier[b])); err != nil {
			return nil, err
		}
	}
	t.AddNote("totals: average $%s vs 95th percentile $%s — percentile billing charges the near-peak sustained rate while the evening burst rides free",
		report.F1(avgBill), report.F1(p95Bill.Total))
	return &Result{ID: "ext1", Title: "percentile billing extension", Tables: []*report.Table{t}}, nil
}
