package experiments

import (
	"tieredpricing/internal/report"
	"tieredpricing/internal/stats"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Concave distance-to-cost curve fit on leased-line price sheets",
		Paper: "Figure 6: ITU fit y=0.43·log_9.43(x)+0.99; NTT fit y=0.03·log_1.12(x)+1.01",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Dataset statistics (synthetic reconstructions vs paper)",
		Paper: "Table 1: EU ISP 54mi/0.70/37Gbps/1.71; CDN 1988/0.59/96/2.28; Internet2 660/0.54/4/4.53",
		Run:   runTable1,
	})
}

func runFig6(opts Options) (*Result, error) {
	t := report.New("Concave fit y = a·log_b(x) + c on normalized price sheets",
		"sheet", "a (paper)", "b (paper)", "c (paper)", "a (fit)", "c (fit)", "R²")
	for _, build := range []func(int64) (traces.PriceSheet, error){
		traces.ITUPriceSheet, traces.NTTPriceSheet,
	} {
		sheet, err := build(opts.Seed)
		if err != nil {
			return nil, err
		}
		fit, err := stats.FitConcave(sheet.Distances, sheet.Prices)
		if err != nil {
			return nil, err
		}
		// Only A = a/ln(b) is identified; re-express the fit in the
		// sheet's generating base for a like-for-like comparison.
		a, c, err := fit.InBase(sheet.B)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(sheet.Name,
			report.F(sheet.A), report.F(sheet.B), report.F(sheet.C),
			report.F(a), report.F(c), report.F(fit.R2)); err != nil {
			return nil, err
		}
	}
	t.AddNote("the (a, b) pair is over-parameterized — only a/ln(b) is identified — so the fitted a is reported in the generating base")
	return &Result{ID: "fig6", Title: "concave distance-to-cost fit", Tables: []*report.Table{t}}, nil
}

func runTable1(opts Options) (*Result, error) {
	t := report.New("Table 1: data sets (paper → measured through the full NetFlow pipeline)",
		"network", "flows", "w-avg dist (paper)", "w-avg dist", "CV dist (paper)", "CV dist",
		"traffic Gbps (paper)", "traffic Gbps", "CV demand (paper)", "CV demand", "dup records")
	paper := map[string]traces.Targets{
		"euisp":     traces.EUISPTargets,
		"cdn":       traces.CDNTargets,
		"internet2": traces.Internet2Targets,
	}
	for _, name := range traces.Names() {
		ds, flows, pipe, err := collectedDataset(name, opts.Seed)
		if err != nil {
			return nil, err
		}
		st, err := traces.MeasureFlows(flows)
		if err != nil {
			return nil, err
		}
		want := paper[ds.Name]
		if err := t.AddRow(ds.Name, report.I(st.Flows),
			report.F1(want.WeightedMeanDistance), report.F1(st.WeightedMeanDistance),
			report.F(want.DistanceCV), report.F(st.DistanceCV),
			report.F1(want.AggregateGbps), report.F1(st.AggregateGbps),
			report.F(want.DemandCV), report.F(st.DemandCV),
			report.I(pipe.duplicates)); err != nil {
			return nil, err
		}
	}
	t.AddNote("measured columns come from NetFlow emission → cross-router dedup → GeoIP/topology distance resolution (§4.1.1), not from the generator's ground truth")
	return &Result{ID: "table1", Title: "dataset statistics", Tables: []*report.Table{t}}, nil
}
