package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExt2ProductsBelowOptimal(t *testing.T) {
	res := runExperiment(t, "ext2")
	for _, table := range res.Tables {
		for _, row := range table.Rows {
			opt2 := cell(t, row[5])
			// Blended transit captures nothing by definition.
			if v := cell(t, row[1]); v < -1e-3 || v > 1e-3 {
				t.Errorf("%s %s: blended capture = %v", table.Title, row[0], v)
			}
			// Every two-tier product is bounded by the two-tier optimum.
			for col := 2; col <= 4; col++ {
				if row[col] == "n/a" {
					continue
				}
				v := cell(t, row[col])
				if v > opt2+1e-6 {
					t.Errorf("%s %s col %d: product capture %v beats optimal-2 %v",
						table.Title, row[0], col, v, opt2)
				}
				if v <= 0 {
					t.Errorf("%s %s col %d: product capture %v, want positive",
						table.Title, row[0], col, v)
				}
			}
			// Optimal 3 tiers beats optimal 2.
			if opt3 := cell(t, row[6]); opt3 < opt2-1e-9 {
				t.Errorf("%s %s: optimal-3 %v below optimal-2 %v", table.Title, row[0], opt3, opt2)
			}
		}
	}
}

func TestExt3SavingsMonotoneInBackboneCost(t *testing.T) {
	res := runExperiment(t, "ext3")
	rows := res.Tables[0].Rows
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad savings cell %q", s)
		}
		return v
	}
	prev := 101.0
	for _, row := range rows {
		savings := parse(row[3])
		if savings > prev+1e-9 {
			t.Fatalf("savings not decreasing in internal cost: %v after %v", savings, prev)
		}
		prev = savings
		hot, planned := cell(t, row[1]), cell(t, row[2])
		if planned > hot+1e-6 {
			t.Fatalf("planned %v exceeds hot potato %v", planned, hot)
		}
	}
	// Cheap backbone must yield real savings; expensive must collapse to
	// hot potato.
	if first := parse(rows[0][3]); first < 5 {
		t.Errorf("cheap-backbone savings = %v%%, want substantial", first)
	}
	if last := parse(rows[len(rows)-1][3]); last > 1 {
		t.Errorf("expensive-backbone savings = %v%%, want ≈0", last)
	}
	if cold := cell(t, rows[len(rows)-1][4]); cold != 0 {
		t.Errorf("expensive backbone should have no cold-potato flows, got %v", cold)
	}
}

func TestExt4WelfareDirections(t *testing.T) {
	res := runExperiment(t, "ext4")
	for _, table := range res.Tables {
		// Every row's profit must be ≥ the blended baseline (1.0) and
		// non-decreasing down the table (optimal with more tiers).
		prev := 0.0
		for _, row := range table.Rows {
			p := cell(t, row[1])
			if p < 1-1e-9 {
				t.Errorf("%s tiers=%s: profit %v below blended", table.Title, row[0], p)
			}
			if p < prev-1e-9 {
				t.Errorf("%s tiers=%s: profit fell from %v to %v", table.Title, row[0], prev, p)
			}
			prev = p
			// Welfare = profit + surplus must also not fall below 1 when
			// both components are ≥ 1.
			if s, w := cell(t, row[2]), cell(t, row[3]); s >= 1 && p >= 1 && w < 1-1e-9 {
				t.Errorf("%s tiers=%s: welfare %v below blended with both parts ≥ 1", table.Title, row[0], w)
			}
		}
		// Figure 1's claim at market scale: the per-flow row's surplus
		// must not be below the blended baseline.
		last := table.Rows[len(table.Rows)-1]
		if s := cell(t, last[2]); s < 1-1e-6 {
			t.Errorf("%s: per-flow surplus %v below blended", table.Title, s)
		}
	}
}

func TestExt5ExpansionShape(t *testing.T) {
	res := runExperiment(t, "ext5")
	rows := res.Tables[0].Rows
	if len(rows) != 10 {
		t.Fatalf("want top-10 rows, got %d", len(rows))
	}
	prev := 1e18
	for _, row := range rows {
		savings := cell(t, row[4])
		if savings > prev+1e-9 {
			t.Fatalf("builds not sorted by savings: %v after %v", savings, prev)
		}
		prev = savings
		if savings > 0 && row[3] == "stay" {
			t.Fatalf("positive savings with stay outcome: %v", row)
		}
		// Direct unit cost of a paying build sits below the blended rate.
		if savings > 0 && cell(t, row[2]) >= 20 {
			t.Fatalf("paying build with c_direct ≥ R: %v", row)
		}
	}
}

func TestExt6TieringPremiumGrowsWithElasticity(t *testing.T) {
	res := runExperiment(t, "ext6")
	rows := res.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("want 6 year rows, got %d", len(rows))
	}
	prevBlended := 1e18
	prevPremium := -1.0
	for _, row := range rows {
		blended, tiered := cell(t, row[3]), cell(t, row[4])
		if blended >= prevBlended {
			t.Errorf("year %s: blended profit %v did not fall", row[0], blended)
		}
		prevBlended = blended
		if tiered < blended {
			t.Errorf("year %s: tiered profit %v below blended %v", row[0], tiered, blended)
		}
		premium := tiered/blended - 1
		if premium < prevPremium-1e-9 {
			t.Errorf("year %s: tiering premium %v shrank from %v", row[0], premium, prevPremium)
		}
		prevPremium = premium
	}
}
