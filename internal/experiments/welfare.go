package experiments

import (
	"fmt"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ext4",
		Title: "Welfare accounting: does tiering raise consumer surplus at market scale?",
		Paper: "extension of §2.2.1/Figure 1: 'this price setup not only increases ISP profit but also increases consumer surplus and thus social welfare' — tested on the full datasets",
		Run:   runExt4,
	})
}

// surplusModel is a demand model that can also report aggregate consumer
// surplus (both CED and Logit can).
type surplusModel interface {
	econ.Model
	Surplus(flows []econ.Flow, partition [][]int, prices []float64) (float64, error)
}

// runExt4 traces ISP profit, consumer surplus and social welfare across
// optimal bundlings of growing tier count, all normalized to the blended
// status quo (1.000 = no change).
func runExt4(opts Options) (*Result, error) {
	res := &Result{ID: "ext4", Title: "welfare accounting"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		sm, ok := dm.(surplusModel)
		if !ok {
			return nil, fmt.Errorf("model %q cannot report surplus", model)
		}
		t := report.New(
			fmt.Sprintf("Profit / surplus / welfare vs tiers (optimal bundling, %s demand, EU ISP; 1.000 = blended status quo)", model),
			"tiers", "profit", "consumer surplus", "social welfare")
		ds, err := traces.EUISP(opts.Seed)
		if err != nil {
			return nil, err
		}
		m, err := datasetMarket("euisp", opts.Seed, dm, cost.Linear{Theta: defaultTheta})
		if err != nil {
			return nil, err
		}
		one := econ.OneBundle(len(m.Flows))
		baseSurplus, err := sm.Surplus(m.Flows, one, []float64{ds.P0})
		if err != nil {
			return nil, err
		}
		baseWelfare := m.OriginalProfit + baseSurplus

		addRow := func(label string, partition [][]int, prices []float64) error {
			profit, err := sm.Profit(m.Flows, partition, prices)
			if err != nil {
				return err
			}
			surplus, err := sm.Surplus(m.Flows, partition, prices)
			if err != nil {
				return err
			}
			return t.AddRow(label,
				report.F(profit/m.OriginalProfit),
				report.F(surplus/baseSurplus),
				report.F((profit+surplus)/baseWelfare))
		}
		if err := addRow("blended", one, []float64{ds.P0}); err != nil {
			return nil, err
		}
		for b := 2; b <= 6; b++ {
			out, err := m.Run(bundling.Optimal{}, b)
			if err != nil {
				return nil, err
			}
			if err := addRow(report.I(b), out.Partition, out.Prices); err != nil {
				return nil, err
			}
		}
		singles := econ.Singletons(len(m.Flows))
		perFlowPrices, err := sm.PriceBundles(m.Flows, singles)
		if err != nil {
			return nil, err
		}
		if err := addRow("per-flow", singles, perFlowPrices); err != nil {
			return nil, err
		}
		t.AddNote("profit rises by construction; whether consumers share the gains (Figure 1's claim) depends on how many flows the blended rate was overpricing vs underpricing")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}
