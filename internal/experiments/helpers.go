package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"tieredpricing/internal/accounting"
	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/traces"
)

// Default evaluation parameters of §4.2.2: price sensitivity α = 1.1,
// blended rate P0 = $20, linear-cost base fraction θ = 0.2, logit
// no-purchase share s0 = 0.2.
const (
	defaultAlpha = 1.1
	defaultTheta = 0.2
	defaultS0    = 0.2
)

// maxBundles is the bundle-count axis of the capture figures.
const maxBundles = 6

// cedStrategies mirrors the Figure 8 legend.
func cedStrategies() []bundling.Strategy {
	return []bundling.Strategy{
		bundling.Optimal{},
		bundling.CostWeighted{},
		bundling.ProfitWeighted{},
		bundling.DemandWeighted{},
		bundling.CostDivision{},
		bundling.IndexDivision{},
	}
}

// logitStrategies mirrors the Figure 9 legend (no separate
// demand-weighted entry: under logit, potential profit is proportional to
// demand, Eq. 13).
func logitStrategies() []bundling.Strategy {
	return []bundling.Strategy{
		bundling.Optimal{},
		bundling.CostWeighted{},
		bundling.ProfitWeighted{},
		bundling.CostDivision{},
		bundling.IndexDivision{},
	}
}

// pipeStats summarizes a pipeline collection pass.
type pipeStats struct {
	records    int
	duplicates int
	dropped    int
	skipped    int
}

// collectedDataset builds a preset dataset and runs it through the full
// §4.1.1 pipeline — NetFlow emission, cross-router dedup, endpoint
// resolution — returning the recovered flows.
func collectedDataset(name string, seed int64) (*traces.Dataset, []econ.Flow, pipeStats, error) {
	ds, err := traces.ByName(name, seed)
	if err != nil {
		return nil, nil, pipeStats{}, err
	}
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: seed + 1})
	if err != nil {
		return nil, nil, pipeStats{}, err
	}
	c := netflow.NewCollector(traces.AggregateKey)
	for _, stream := range streams {
		rd := netflow.NewReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, pipeStats{}, err
			}
			c.Ingest(h, recs)
		}
	}
	rv := &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: ds.Name == "euisp"}
	if ds.Name == "internet2" {
		rv.Topo = ds.Graph
	}
	flows, skipped, err := demandfit.BuildFlows(c.Aggregates(), rv, ds.DurationSec)
	if err != nil {
		return nil, nil, pipeStats{}, err
	}
	records, dups, dropped := c.Stats()
	return ds, flows, pipeStats{records: records, duplicates: dups, dropped: dropped, skipped: skipped}, nil
}

// ingestStreams feeds every router stream into a collector.
func ingestStreams(c *netflow.Collector, streams map[string][]byte) error {
	for _, stream := range streams {
		rd := netflow.NewReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			c.Ingest(h, recs)
		}
	}
	return nil
}

// resolveEUISP converts a collector's aggregates to flows using the EU
// ISP's resolution rules (geographic entry/exit distance, distance-based
// regions).
func resolveEUISP(c *netflow.Collector, ds *traces.Dataset) ([]econ.Flow, error) {
	rv := &demandfit.Resolver{Geo: ds.Geo, DistanceRegions: true}
	flows, _, err := demandfit.BuildFlows(c.Aggregates(), rv, ds.DurationSec)
	return flows, err
}

// billPercentile prices per-tier 5-minute samples at the 95th percentile.
func billPercentile(samples map[int][]float64, prices []float64) (accounting.Bill, error) {
	return accounting.PercentileBilling{}.Bill(samples, prices)
}

// demandModel constructs the named demand model at the default
// evaluation parameters.
func demandModel(name string) (econ.Model, error) {
	switch name {
	case "ced":
		return econ.CED{Alpha: defaultAlpha}, nil
	case "logit":
		return econ.Logit{Alpha: defaultAlpha, S0: defaultS0}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown demand model %q", name)
	}
}

// datasetMarket fits the default §4.2.2 market over a preset dataset's
// generated flows.
func datasetMarket(name string, seed int64, dm econ.Model, cm cost.Model) (*core.Market, error) {
	ds, err := traces.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	return core.NewMarket(ds.Flows, dm, cm, ds.P0)
}

// captureRow runs one strategy over b = 1..maxBundles and returns the
// capture series. The repricings at different bundle counts are
// independent, so they fan out across workers goroutines; slot b-1 of
// the row holds bundle count b whichever finishes first.
func captureRow(m *core.Market, s bundling.Strategy, workers int) ([]float64, error) {
	return parallel.Map(context.Background(), maxBundles, workers,
		func(_ context.Context, i int) (float64, error) {
			res, err := m.Run(s, i+1)
			if err != nil {
				return 0, err
			}
			return res.Capture, nil
		})
}

// profitRow runs one strategy over b = 1..maxBundles and returns raw
// profits (for the figure-normalized sensitivity plots), fanning out per
// bundle count like captureRow.
func profitRow(m *core.Market, s bundling.Strategy, workers int) ([]float64, error) {
	return parallel.Map(context.Background(), maxBundles, workers,
		func(_ context.Context, i int) (float64, error) {
			res, err := m.Run(s, i+1)
			if err != nil {
				return 0, err
			}
			return res.Profit, nil
		})
}
