package experiments

import (
	"context"
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Profit increase, EU ISP, linear cost model, θ ∈ {0.1, 0.2, 0.3}",
		Paper: "Figure 10: most profit attained with 2-3 bundles; higher base cost θ lowers attainable profit",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig10", o,
				[]float64{0.1, 0.2, 0.3},
				func(theta float64) cost.Model { return cost.Linear{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Profit increase, EU ISP, concave cost model, θ ∈ {0.1, 0.2, 0.3}",
		Paper: "Figure 11: like fig10 but profit falls faster in θ (log compresses cost CV)",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig11", o,
				[]float64{0.1, 0.2, 0.3},
				func(theta float64) cost.Model { return cost.Concave{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Profit increase, EU ISP, regional cost model, θ ∈ {1.0, 1.1, 1.2}",
		Paper: "Figure 12: higher θ = higher inter-region cost CV = more profit",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig12", o,
				[]float64{1.0, 1.1, 1.2},
				func(theta float64) cost.Model { return cost.Regional{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Profit increase, EU ISP, destination-type cost model, θ ∈ {0.05, 0.1, 0.15}",
		Paper: "Figure 13: two traffic classes (on/off-net) ⇒ two class-aware bundles capture most profit",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Minimum profit capture over price sensitivity α ∈ [1, 10]",
		Paper: "Figure 14: capture patterns robust across α (EU ISP ~0.8 at two bundles)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Minimum profit capture over blended rate P0 ∈ [5, 30]",
		Paper: "Figure 15: capture patterns robust across starting prices",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Maximum profit capture over no-purchase share s0 ∈ (0, 0.9], logit",
		Paper: "Figure 16: capture patterns robust across market participation",
		Run:   runFig16,
	})
}

// runCostSensitivity regenerates Figures 10-12: profit-weighted bundling
// on the EU ISP under one cost-model family for several θ, with profits
// normalized figure-wide ("πmax in these figures is … the maximum profit
// of the plot with highest profit"). Both demand models are reported.
func runCostSensitivity(id string, opts Options, thetas []float64,
	build func(theta float64) cost.Model) (*Result, error) {
	res := &Result{ID: id, Title: "cost-model sensitivity, EU ISP"}
	workers := opts.workerCount()
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		// Each θ refits the market from scratch; the fits are independent,
		// so fan out per θ and take the figure-wide normalizer afterwards.
		markets, err := parallel.Map(context.Background(), len(thetas), workers,
			func(_ context.Context, i int) (*core.Market, error) {
				return datasetMarket("euisp", opts.Seed, dm, build(thetas[i]))
			})
		if err != nil {
			return nil, err
		}
		figureMax := math.Inf(-1)
		for _, m := range markets {
			if m.MaxProfit > figureMax {
				figureMax = m.MaxProfit
			}
		}
		t := report.New(
			fmt.Sprintf("Profit increase, euisp, %s demand (profit-weighted, figure-normalized)", model),
			"theta", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		for i, theta := range thetas {
			profits, err := profitRow(markets[i], bundling.ProfitWeighted{}, workers)
			if err != nil {
				return nil, err
			}
			cells := []string{report.F(theta)}
			for _, pi := range profits {
				cells = append(cells, report.F(
					(pi-markets[i].OriginalProfit)/(figureMax-markets[i].OriginalProfit)))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("rows share one normalizer (the figure's best plot), so lower-profit θ settings plateau below 1")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// runFig13 regenerates Figure 13: the destination-type cost model with
// the paper's class-aware profit-weighted heuristic ("never group traffic
// from two different classes into the same bundle"), with θ the on-net
// traffic fraction applied by splitting every flow (§3.3).
func runFig13(opts Options) (*Result, error) {
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig13", Title: "destination-type sensitivity, EU ISP"}
	strategy := bundling.ClassAware{Inner: bundling.ProfitWeighted{}}
	workers := opts.workerCount()
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		thetas := []float64{0.05, 0.10, 0.15}
		markets, err := parallel.Map(context.Background(), len(thetas), workers,
			func(_ context.Context, i int) (*core.Market, error) {
				split, err := core.SplitByDestType(ds.Flows, thetas[i])
				if err != nil {
					return nil, err
				}
				return core.NewMarket(split, dm, cost.DestType{}, ds.P0)
			})
		if err != nil {
			return nil, err
		}
		figureMax := math.Inf(-1)
		for _, m := range markets {
			if m.MaxProfit > figureMax {
				figureMax = m.MaxProfit
			}
		}
		t := report.New(
			fmt.Sprintf("Profit increase, euisp, %s demand (class-aware profit-weighted)", model),
			"theta (on-net fraction)", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		for i, theta := range thetas {
			profits, err := profitRow(markets[i], strategy, workers)
			if err != nil {
				return nil, err
			}
			cells := []string{report.F(theta)}
			for _, pi := range profits {
				cells = append(cells, report.F(
					(pi-markets[i].OriginalProfit)/(figureMax-markets[i].OriginalProfit)))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("with just two cost classes, two bundles already capture most of the attainable profit")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// extremalCapture computes, per dataset and bundle count, the extremal
// (min or max) profit-weighted capture over a family of markets, one
// table per demand model. The family's markets are replications over a
// swept parameter; their capture rows fan out across workers and the
// extremum is folded in parameter order (min/max are order-independent,
// but the fold stays deterministic regardless).
func extremalCapture(res *Result, title string, useMax bool, models []string, workers int,
	family func(model, dataset string) ([]*core.Market, error)) error {
	for _, model := range models {
		t := report.New(fmt.Sprintf("%s, %s demand", title, model),
			"network", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		names := traces.Names()
		rows, err := parallel.Map(context.Background(), len(names), workers,
			func(_ context.Context, di int) ([]string, error) {
				name := names[di]
				extremal := make([]float64, maxBundles)
				for b := range extremal {
					if useMax {
						extremal[b] = math.Inf(-1)
					} else {
						extremal[b] = math.Inf(1)
					}
				}
				markets, err := family(model, name)
				if err != nil {
					return nil, err
				}
				captures, err := parallel.Map(context.Background(), len(markets), workers,
					func(_ context.Context, mi int) ([]float64, error) {
						return captureRow(markets[mi], bundling.ProfitWeighted{}, workers)
					})
				if err != nil {
					return nil, err
				}
				for _, row := range captures {
					for b, v := range row {
						if math.IsNaN(v) {
							continue
						}
						if useMax == (v > extremal[b]) {
							extremal[b] = v
						}
					}
				}
				cells := []string{name}
				for _, v := range extremal {
					if math.IsInf(v, 0) {
						v = math.NaN()
					}
					cells = append(cells, report.F(v))
				}
				return cells, nil
			})
		if err != nil {
			return err
		}
		for _, cells := range rows {
			if err := t.AddRow(cells...); err != nil {
				return err
			}
		}
		res.Tables = append(res.Tables, t)
	}
	return nil
}

func runFig14(opts Options) (*Result, error) {
	res := &Result{ID: "fig14", Title: "sensitivity to price elasticity α"}
	workers := opts.workerCount()
	family := func(model, dataset string) ([]*core.Market, error) {
		alphas := []float64{1.1, 1.5, 2, 3, 5, 7, 10}
		return parallel.Map(context.Background(), len(alphas), workers,
			func(_ context.Context, i int) (*core.Market, error) {
				var dm econ.Model
				if model == "ced" {
					dm = econ.CED{Alpha: alphas[i]}
				} else {
					dm = econ.Logit{Alpha: alphas[i], S0: defaultS0}
				}
				return datasetMarket(dataset, opts.Seed, dm, cost.Linear{Theta: defaultTheta})
			})
	}
	if err := extremalCapture(res, "Minimum capture over α ∈ [1.1, 10] (profit-weighted)",
		false, []string{"ced", "logit"}, workers, family); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig15(opts Options) (*Result, error) {
	res := &Result{ID: "fig15", Title: "sensitivity to blended rate P0"}
	workers := opts.workerCount()
	family := func(model, dataset string) ([]*core.Market, error) {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		ds, err := traces.ByName(dataset, opts.Seed)
		if err != nil {
			return nil, err
		}
		p0s := []float64{5, 10, 15, 20, 25, 30}
		return parallel.Map(context.Background(), len(p0s), workers,
			func(_ context.Context, i int) (*core.Market, error) {
				return core.NewMarket(ds.Flows, dm, cost.Linear{Theta: defaultTheta}, p0s[i])
			})
	}
	if err := extremalCapture(res, "Minimum capture over P0 ∈ [5, 30] (profit-weighted)",
		false, []string{"ced", "logit"}, workers, family); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig16(opts Options) (*Result, error) {
	res := &Result{ID: "fig16", Title: "sensitivity to no-purchase share s0 (logit)"}
	workers := opts.workerCount()
	family := func(model, dataset string) ([]*core.Market, error) {
		s0s := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
		return parallel.Map(context.Background(), len(s0s), workers,
			func(_ context.Context, i int) (*core.Market, error) {
				return datasetMarket(dataset, opts.Seed,
					econ.Logit{Alpha: defaultAlpha, S0: s0s[i]}, cost.Linear{Theta: defaultTheta})
			})
	}
	if err := extremalCapture(res, "Maximum capture over s0 ∈ [0.1, 0.9] (profit-weighted)",
		true, []string{"logit"}, workers, family); err != nil {
		return nil, err
	}
	return res, nil
}
