package experiments

import (
	"fmt"
	"math"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/report"
	"tieredpricing/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Profit increase, EU ISP, linear cost model, θ ∈ {0.1, 0.2, 0.3}",
		Paper: "Figure 10: most profit attained with 2-3 bundles; higher base cost θ lowers attainable profit",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig10", o,
				[]float64{0.1, 0.2, 0.3},
				func(theta float64) cost.Model { return cost.Linear{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Profit increase, EU ISP, concave cost model, θ ∈ {0.1, 0.2, 0.3}",
		Paper: "Figure 11: like fig10 but profit falls faster in θ (log compresses cost CV)",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig11", o,
				[]float64{0.1, 0.2, 0.3},
				func(theta float64) cost.Model { return cost.Concave{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Profit increase, EU ISP, regional cost model, θ ∈ {1.0, 1.1, 1.2}",
		Paper: "Figure 12: higher θ = higher inter-region cost CV = more profit",
		Run: func(o Options) (*Result, error) {
			return runCostSensitivity("fig12", o,
				[]float64{1.0, 1.1, 1.2},
				func(theta float64) cost.Model { return cost.Regional{Theta: theta} })
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Profit increase, EU ISP, destination-type cost model, θ ∈ {0.05, 0.1, 0.15}",
		Paper: "Figure 13: two traffic classes (on/off-net) ⇒ two class-aware bundles capture most profit",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Minimum profit capture over price sensitivity α ∈ [1, 10]",
		Paper: "Figure 14: capture patterns robust across α (EU ISP ~0.8 at two bundles)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Minimum profit capture over blended rate P0 ∈ [5, 30]",
		Paper: "Figure 15: capture patterns robust across starting prices",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Maximum profit capture over no-purchase share s0 ∈ (0, 0.9], logit",
		Paper: "Figure 16: capture patterns robust across market participation",
		Run:   runFig16,
	})
}

// runCostSensitivity regenerates Figures 10-12: profit-weighted bundling
// on the EU ISP under one cost-model family for several θ, with profits
// normalized figure-wide ("πmax in these figures is … the maximum profit
// of the plot with highest profit"). Both demand models are reported.
func runCostSensitivity(id string, opts Options, thetas []float64,
	build func(theta float64) cost.Model) (*Result, error) {
	res := &Result{ID: id, Title: "cost-model sensitivity, EU ISP"}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		markets := make([]*core.Market, len(thetas))
		figureMax := math.Inf(-1)
		for i, theta := range thetas {
			m, err := datasetMarket("euisp", opts.Seed, dm, build(theta))
			if err != nil {
				return nil, err
			}
			markets[i] = m
			if m.MaxProfit > figureMax {
				figureMax = m.MaxProfit
			}
		}
		t := report.New(
			fmt.Sprintf("Profit increase, euisp, %s demand (profit-weighted, figure-normalized)", model),
			"theta", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		for i, theta := range thetas {
			profits, err := profitRow(markets[i], bundling.ProfitWeighted{})
			if err != nil {
				return nil, err
			}
			cells := []string{report.F(theta)}
			for _, pi := range profits {
				cells = append(cells, report.F(
					(pi-markets[i].OriginalProfit)/(figureMax-markets[i].OriginalProfit)))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("rows share one normalizer (the figure's best plot), so lower-profit θ settings plateau below 1")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// runFig13 regenerates Figure 13: the destination-type cost model with
// the paper's class-aware profit-weighted heuristic ("never group traffic
// from two different classes into the same bundle"), with θ the on-net
// traffic fraction applied by splitting every flow (§3.3).
func runFig13(opts Options) (*Result, error) {
	ds, err := traces.EUISP(opts.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig13", Title: "destination-type sensitivity, EU ISP"}
	strategy := bundling.ClassAware{Inner: bundling.ProfitWeighted{}}
	for _, model := range []string{"ced", "logit"} {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		thetas := []float64{0.05, 0.10, 0.15}
		markets := make([]*core.Market, len(thetas))
		figureMax := math.Inf(-1)
		for i, theta := range thetas {
			split, err := core.SplitByDestType(ds.Flows, theta)
			if err != nil {
				return nil, err
			}
			m, err := core.NewMarket(split, dm, cost.DestType{}, ds.P0)
			if err != nil {
				return nil, err
			}
			markets[i] = m
			if m.MaxProfit > figureMax {
				figureMax = m.MaxProfit
			}
		}
		t := report.New(
			fmt.Sprintf("Profit increase, euisp, %s demand (class-aware profit-weighted)", model),
			"theta (on-net fraction)", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		for i, theta := range thetas {
			profits, err := profitRow(markets[i], strategy)
			if err != nil {
				return nil, err
			}
			cells := []string{report.F(theta)}
			for _, pi := range profits {
				cells = append(cells, report.F(
					(pi-markets[i].OriginalProfit)/(figureMax-markets[i].OriginalProfit)))
			}
			if err := t.AddRow(cells...); err != nil {
				return nil, err
			}
		}
		t.AddNote("with just two cost classes, two bundles already capture most of the attainable profit")
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// extremalCapture computes, per dataset and bundle count, the extremal
// (min or max) profit-weighted capture over a family of markets, one
// table per demand model.
func extremalCapture(res *Result, title string, useMax bool, models []string,
	family func(model, dataset string) ([]*core.Market, error)) error {
	for _, model := range models {
		t := report.New(fmt.Sprintf("%s, %s demand", title, model),
			"network", "b=1", "b=2", "b=3", "b=4", "b=5", "b=6")
		for _, name := range traces.Names() {
			extremal := make([]float64, maxBundles)
			for b := range extremal {
				if useMax {
					extremal[b] = math.Inf(-1)
				} else {
					extremal[b] = math.Inf(1)
				}
			}
			markets, err := family(model, name)
			if err != nil {
				return err
			}
			for _, m := range markets {
				row, err := captureRow(m, bundling.ProfitWeighted{})
				if err != nil {
					return err
				}
				for b, v := range row {
					if math.IsNaN(v) {
						continue
					}
					if useMax == (v > extremal[b]) {
						extremal[b] = v
					}
				}
			}
			cells := []string{name}
			for _, v := range extremal {
				if math.IsInf(v, 0) {
					v = math.NaN()
				}
				cells = append(cells, report.F(v))
			}
			if err := t.AddRow(cells...); err != nil {
				return err
			}
		}
		res.Tables = append(res.Tables, t)
	}
	return nil
}

func runFig14(opts Options) (*Result, error) {
	res := &Result{ID: "fig14", Title: "sensitivity to price elasticity α"}
	family := func(model, dataset string) ([]*core.Market, error) {
		var out []*core.Market
		for _, alpha := range []float64{1.1, 1.5, 2, 3, 5, 7, 10} {
			var dm econ.Model
			if model == "ced" {
				dm = econ.CED{Alpha: alpha}
			} else {
				dm = econ.Logit{Alpha: alpha, S0: defaultS0}
			}
			m, err := datasetMarket(dataset, opts.Seed, dm, cost.Linear{Theta: defaultTheta})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	if err := extremalCapture(res, "Minimum capture over α ∈ [1.1, 10] (profit-weighted)",
		false, []string{"ced", "logit"}, family); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig15(opts Options) (*Result, error) {
	res := &Result{ID: "fig15", Title: "sensitivity to blended rate P0"}
	family := func(model, dataset string) ([]*core.Market, error) {
		dm, err := demandModel(model)
		if err != nil {
			return nil, err
		}
		ds, err := traces.ByName(dataset, opts.Seed)
		if err != nil {
			return nil, err
		}
		var out []*core.Market
		for _, p0 := range []float64{5, 10, 15, 20, 25, 30} {
			m, err := core.NewMarket(ds.Flows, dm, cost.Linear{Theta: defaultTheta}, p0)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	if err := extremalCapture(res, "Minimum capture over P0 ∈ [5, 30] (profit-weighted)",
		false, []string{"ced", "logit"}, family); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig16(opts Options) (*Result, error) {
	res := &Result{ID: "fig16", Title: "sensitivity to no-purchase share s0 (logit)"}
	family := func(model, dataset string) ([]*core.Market, error) {
		var out []*core.Market
		for _, s0 := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.9} {
			m, err := datasetMarket(dataset, opts.Seed,
				econ.Logit{Alpha: defaultAlpha, S0: s0}, cost.Linear{Theta: defaultTheta})
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
		return out, nil
	}
	if err := extremalCapture(res, "Maximum capture over s0 ∈ [0.1, 0.9] (profit-weighted)",
		true, []string{"logit"}, family); err != nil {
		return nil, err
	}
	return res, nil
}
