package experiments

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

// renderAll runs every registered experiment through RunAll at the given
// worker count and renders the full ASCII report.
func renderAll(t *testing.T, seed int64, workers int, ids ...string) string {
	t.Helper()
	results, err := RunAll(Options{Seed: seed, Workers: workers}, ids...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, res := range results {
		if err := res.WriteASCII(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestRunAllParallelByteIdentical is the engine's determinism guarantee:
// for seeds 1–3, the full-evaluation output fanned out across
// Workers ∈ {4, NumCPU} is byte-identical to the serial (Workers = 1)
// output. Every task derives its seed and parameters from its index and
// results merge in submission order, so scheduling cannot leak into the
// report.
func TestRunAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep ×3 seeds")
	}
	counts := []int{4, runtime.NumCPU()}
	for seed := int64(1); seed <= 3; seed++ {
		serial := renderAll(t, seed, 1)
		if len(serial) == 0 {
			t.Fatalf("seed %d: empty serial output", seed)
		}
		for _, w := range counts {
			if got := renderAll(t, seed, w); got != serial {
				t.Errorf("seed %d: output with Workers=%d differs from serial (%d vs %d bytes)",
					seed, w, len(got), len(serial))
			}
		}
	}
}

// TestRunAllSubsetOrder: results come back in submission order, not
// completion order, including for an explicit id list.
func TestRunAllSubsetOrder(t *testing.T) {
	ids := []string{"fig8", "ablation4", "fig10", "fig13"}
	results, err := RunAll(Options{Seed: 1, Workers: 4}, ids...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, res := range results {
		if res.ID != ids[i] {
			t.Errorf("results[%d].ID = %s, want %s", i, res.ID, ids[i])
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll(Options{Seed: 1}, "fig8", "nonesuch"); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

// TestRegistryConcurrentAccess hammers Get/All from many goroutines so
// `go test -race` proves the registry is safe for concurrent lookups
// while experiments fan out.
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					if _, err := Get("fig8"); err != nil {
						t.Error(err)
						return
					}
					if _, err := Get("nonesuch"); err == nil {
						t.Error("unknown id should error")
						return
					}
				} else {
					if all := All(); len(all) == 0 {
						t.Error("All returned empty registry")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestOptionsWorkerCount pins the zero-value contract: no Workers means
// serial, explicit counts pass through.
func TestOptionsWorkerCount(t *testing.T) {
	for _, c := range []struct{ workers, want int }{{0, 1}, {-2, 1}, {1, 1}, {7, 7}} {
		if got := (Options{Workers: c.workers}).workerCount(); got != c.want {
			t.Errorf("Options{Workers: %d}.workerCount() = %d, want %d", c.workers, got, c.want)
		}
	}
}
