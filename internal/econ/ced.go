package econ

import (
	"errors"
	"fmt"
	"math"
)

// CED is the constant-elasticity demand model of §3.2.1, derived from
// alpha-fair utility: flow i's demand at unit price p is
//
//	Q_i(p) = (v_i / p)^α                                    (Eq. 2)
//
// with price sensitivity α ∈ (1, ∞) shared by all flows and per-flow
// valuation coefficients v_i > 0. Demands are separable: each flow's
// quantity depends only on its own price, which models customers with no
// alternative destination for their traffic.
type CED struct {
	// Alpha is the price sensitivity α; must be strictly greater than 1
	// (at α ≤ 1 revenue is unbounded and no profit-maximizing price
	// exists).
	Alpha float64
}

// Name implements Model.
func (m CED) Name() string { return "ced" }

// check validates the model parameters.
func (m CED) check() error {
	if !(m.Alpha > 1) || math.IsInf(m.Alpha, 1) {
		return fmt.Errorf("econ: CED requires alpha > 1, got %v", m.Alpha)
	}
	return nil
}

// checkFlows validates flows for CED use, which additionally needs
// strictly positive valuations (they enter as v^α).
func (m CED) checkFlows(flows []Flow) error {
	if err := ValidateFlows(flows); err != nil {
		return err
	}
	for _, f := range flows {
		if f.Valuation <= 0 {
			return fmt.Errorf("econ: flow %q has non-positive valuation %v for CED", f.ID, f.Valuation)
		}
	}
	return nil
}

// CEDQuantity evaluates Eq. 2 for a single flow with its own elasticity.
// It is exposed as a free function because the paper's Figure 1
// illustration gives the two flows different demand slopes.
func CEDQuantity(v, p, alpha float64) float64 {
	return math.Pow(v/p, alpha)
}

// CEDOptimalPrice returns the per-flow profit-maximizing price
// p* = α·c/(α−1) (Eq. 4).
func CEDOptimalPrice(c, alpha float64) float64 {
	return alpha * c / (alpha - 1)
}

// CEDFlowProfit returns (v/p)^α · (p − c), one term of Eq. 3.
func CEDFlowProfit(v, p, c, alpha float64) float64 {
	return CEDQuantity(v, p, alpha) * (p - c)
}

// CEDSurplus returns the consumer surplus of one CED flow at price p:
// the area under the demand curve above p,
// ∫_p^∞ (v/u)^α du = v^α · p^{1−α} / (α−1).
func CEDSurplus(v, p, alpha float64) float64 {
	return math.Pow(v, alpha) * math.Pow(p, 1-alpha) / (alpha - 1)
}

// Quantity evaluates Eq. 2 at the model's α.
func (m CED) Quantity(v, p float64) float64 { return CEDQuantity(v, p, m.Alpha) }

// OptimalPrice evaluates Eq. 4 at the model's α.
func (m CED) OptimalPrice(c float64) float64 { return CEDOptimalPrice(c, m.Alpha) }

// FitValuations implements Model. Inverting Eq. 2 at the blended rate p0,
// the valuation that reproduces observed demand q_i is
//
//	v_i = p0 · q_i^{1/α}                                    (§4.1.2)
func (m CED) FitValuations(demands []float64, p0 float64) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if p0 <= 0 {
		return nil, fmt.Errorf("econ: blended rate must be positive, got %v", p0)
	}
	out := make([]float64, len(demands))
	for i, q := range demands {
		if q <= 0 {
			return nil, fmt.Errorf("econ: demand %d is non-positive (%v)", i, q)
		}
		out[i] = p0 * math.Pow(q, 1/m.Alpha)
	}
	return out, nil
}

// bundleStats returns Σ v_i^α and the v^α-weighted mean cost of the given
// flow indices — the two sufficient statistics of a CED bundle.
func (m CED) bundleStats(flows []Flow, block []int) (vAlphaSum, meanCost float64) {
	var num float64
	for _, i := range block {
		va := math.Pow(flows[i].Valuation, m.Alpha)
		vAlphaSum += va
		num += va * flows[i].Cost
	}
	return vAlphaSum, num / vAlphaSum
}

// BundlePrice returns the profit-maximizing common price for the flows in
// block (Eq. 5):
//
//	P* = α·Σ c_i v_i^α / ((α−1)·Σ v_i^α)
//
// which reduces to Eq. 4 for a single flow.
func (m CED) BundlePrice(flows []Flow, block []int) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if len(block) == 0 {
		return 0, errors.New("econ: empty bundle")
	}
	_, meanCost := m.bundleStats(flows, block)
	return CEDOptimalPrice(meanCost, m.Alpha), nil
}

// CalibrateScale implements Model. With relative costs f_i and absolute
// costs c_i = γ·f_i, requiring that the observed blended rate p0 satisfy
// the single-bundle optimum (Eq. 5) pins down
//
//	γ = p0·(α−1)·Σ v_i^α / (α·Σ f_i·v_i^α)                  (§4.1.3)
//
// CED calibration is always feasible for α > 1, so clamped is always
// false.
func (m CED) CalibrateScale(valuations, relCosts []float64, p0 float64) (float64, bool, error) {
	if err := m.check(); err != nil {
		return 0, false, err
	}
	if len(valuations) != len(relCosts) {
		return 0, false, errors.New("econ: valuation/cost length mismatch")
	}
	if len(valuations) == 0 {
		return 0, false, errors.New("econ: no flows")
	}
	if p0 <= 0 {
		return 0, false, fmt.Errorf("econ: blended rate must be positive, got %v", p0)
	}
	var sumVA, sumFVA float64
	for i, v := range valuations {
		if v <= 0 {
			return 0, false, fmt.Errorf("econ: valuation %d non-positive", i)
		}
		if relCosts[i] <= 0 {
			return 0, false, fmt.Errorf("econ: relative cost %d non-positive", i)
		}
		va := math.Pow(v, m.Alpha)
		sumVA += va
		sumFVA += relCosts[i] * va
	}
	gamma := p0 * (m.Alpha - 1) * sumVA / (m.Alpha * sumFVA)
	return gamma, false, nil
}

// PriceBundles implements Model: Eq. 5 applied independently to each block
// (CED demands are separable, so bundles do not interact).
func (m CED) PriceBundles(flows []Flow, partition [][]int) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if err := m.checkFlows(flows); err != nil {
		return nil, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return nil, err
	}
	prices := make([]float64, len(partition))
	for b, block := range partition {
		p, err := m.BundlePrice(flows, block)
		if err != nil {
			return nil, err
		}
		prices[b] = p
	}
	return prices, nil
}

// Profit implements Model: Eq. 3 with each flow priced at its bundle's
// price.
func (m CED) Profit(flows []Flow, partition [][]int, prices []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return 0, err
	}
	if len(prices) != len(partition) {
		return 0, errors.New("econ: one price per bundle required")
	}
	var profit float64
	for b, block := range partition {
		p := prices[b]
		if p <= 0 {
			return 0, fmt.Errorf("econ: bundle %d has non-positive price %v", b, p)
		}
		for _, i := range block {
			profit += CEDFlowProfit(flows[i].Valuation, p, flows[i].Cost, m.Alpha)
		}
	}
	return profit, nil
}

// MaxProfit implements Model: every flow at its Eq. 4 price.
func (m CED) MaxProfit(flows []Flow) (float64, error) {
	parts := Singletons(len(flows))
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		return 0, err
	}
	return m.Profit(flows, parts, prices)
}

// PotentialProfits implements Model: Eq. 12,
//
//	π_i = v_i^α/α · (α·c_i/(α−1))^{1−α}
//
// which equals the flow's stand-alone maximum profit.
func (m CED) PotentialProfits(flows []Flow) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if err := m.checkFlows(flows); err != nil {
		return nil, err
	}
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = math.Pow(f.Valuation, m.Alpha) / m.Alpha *
			math.Pow(CEDOptimalPrice(f.Cost, m.Alpha), 1-m.Alpha)
	}
	return out, nil
}

// BlendedProfit returns the profit when every flow is charged the single
// price p0 — the paper's status quo (π_original in the profit-capture
// metric).
func (m CED) BlendedProfit(flows []Flow, p0 float64) (float64, error) {
	return m.Profit(flows, OneBundle(len(flows)), []float64{p0})
}
