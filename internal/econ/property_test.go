package econ

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) of the model invariants DESIGN.md
// §7 calls out. Each property draws a random fitted market from the seed.

// drawMarket builds a random fitted flow set with n flows.
func drawMarket(seed int64, m Model, n int, p0 float64) ([]Flow, bool) {
	r := rand.New(rand.NewSource(seed))
	demands := make([]float64, n)
	rel := make([]float64, n)
	for i := range demands {
		demands[i] = 0.1 + math.Exp(r.NormFloat64())
		rel[i] = 0.1 + math.Exp(r.NormFloat64()*0.8)
	}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		return nil, false
	}
	gamma, _, err := m.CalibrateScale(vals, rel, p0)
	if err != nil {
		return nil, false
	}
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{ID: "f", Demand: demands[i], Distance: rel[i],
			Valuation: vals[i], Cost: gamma * rel[i]}
	}
	return flows, true
}

// randPartition draws a random partition of n items into ≤ b blocks.
func randPartition(r *rand.Rand, n, b int) [][]int {
	assign := make([]int, n)
	used := map[int]bool{}
	for i := range assign {
		assign[i] = r.Intn(b)
		used[assign[i]] = true
	}
	// Re-index to dense non-empty blocks.
	dense := map[int]int{}
	var parts [][]int
	for i, a := range assign {
		k, ok := dense[a]
		if !ok {
			k = len(parts)
			dense[a] = k
			parts = append(parts, nil)
		}
		parts[k] = append(parts[k], i)
	}
	return parts
}

// TestPropertyCEDScaleInvariance: scaling the blended rate P0 scales all
// fitted prices proportionally and leaves normalized profit structure
// unchanged — why Figure 15's sweep is nearly flat.
func TestPropertyCEDScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		m := CED{Alpha: 1.4}
		flows1, ok := drawMarket(seed, m, 12, 10)
		if !ok {
			return false
		}
		flows2, ok := drawMarket(seed, m, 12, 30) // same seed, 3× P0
		if !ok {
			return false
		}
		parts := randPartition(rand.New(rand.NewSource(seed)), 12, 4)
		p1, err := m.PriceBundles(flows1, parts)
		if err != nil {
			return false
		}
		p2, err := m.PriceBundles(flows2, parts)
		if err != nil {
			return false
		}
		for b := range p1 {
			if math.Abs(p2[b]/p1[b]-3) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMergeNeverHelps: merging two optimally priced bundles can
// only lose profit (refinement monotonicity) — the economics behind
// "higher market granularity leads to increased efficiency".
func TestPropertyMergeNeverHelps(t *testing.T) {
	models := []Model{CED{Alpha: 1.2}, Logit{Alpha: 1.1, S0: 0.2}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, m := range models {
			flows, ok := drawMarket(seed, m, 10, 20)
			if !ok {
				return false
			}
			parts := randPartition(r, 10, 5)
			if len(parts) < 2 {
				continue
			}
			before, err := priceAndEvaluate(m, flows, parts)
			if err != nil {
				return false
			}
			// Merge two random blocks.
			i, j := r.Intn(len(parts)), r.Intn(len(parts))
			for j == i {
				j = r.Intn(len(parts))
			}
			merged := make([][]int, 0, len(parts)-1)
			for k, block := range parts {
				switch k {
				case i:
					merged = append(merged, append(append([]int{}, parts[i]...), parts[j]...))
				case j:
				default:
					merged = append(merged, block)
				}
			}
			after, err := priceAndEvaluate(m, flows, merged)
			if err != nil {
				return false
			}
			if after > before+1e-7*math.Abs(before) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPricesExceedBundleCosts: optimal bundle prices always sit
// above the bundle's (weighted mean) cost — the ISP never prices a whole
// tier at a loss.
func TestPropertyPricesExceedBundleCosts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, m := range []Model{CED{Alpha: 1.3}, Logit{Alpha: 0.9, S0: 0.3}} {
			flows, ok := drawMarket(seed, m, 9, 15)
			if !ok {
				return false
			}
			parts := randPartition(r, 9, 4)
			prices, err := m.PriceBundles(flows, parts)
			if err != nil {
				return false
			}
			for b, block := range parts {
				// Weighted mean cost is bounded by the member min/max.
				minC, maxC := math.Inf(1), math.Inf(-1)
				for _, i := range block {
					minC = math.Min(minC, flows[i].Cost)
					maxC = math.Max(maxC, flows[i].Cost)
				}
				if prices[b] <= minC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCEDBundlePriceWithinMemberRange: the Eq. 5 bundle price
// lies between the cheapest and costliest member's stand-alone optimal
// price.
func TestPropertyCEDBundlePriceWithinMemberRange(t *testing.T) {
	f := func(seed int64) bool {
		m := CED{Alpha: 1.6}
		flows, ok := drawMarket(seed, m, 8, 20)
		if !ok {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		parts := randPartition(r, 8, 3)
		prices, err := m.PriceBundles(flows, parts)
		if err != nil {
			return false
		}
		for b, block := range parts {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, i := range block {
				p := CEDOptimalPrice(flows[i].Cost, m.Alpha)
				lo = math.Min(lo, p)
				hi = math.Max(hi, p)
			}
			if prices[b] < lo-1e-9 || prices[b] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLogitEqualMarkup: every PriceBundles solution carries one
// common markup across bundles (Eq. 9).
func TestPropertyLogitEqualMarkup(t *testing.T) {
	f := func(seed int64) bool {
		m := Logit{Alpha: 1.2, S0: 0.25}
		flows, ok := drawMarket(seed, m, 10, 18)
		if !ok {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		parts := randPartition(r, 10, 4)
		prices, err := m.PriceBundles(flows, parts)
		if err != nil {
			return false
		}
		_, costs, err := m.bundleAggregates(flows, parts, new(logitScratch))
		if err != nil {
			return false
		}
		markup := prices[0] - costs[0]
		for b := range prices {
			if math.Abs((prices[b]-costs[b])-markup) > 1e-6*markup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// priceAndEvaluate prices a partition optimally and returns the profit.
func priceAndEvaluate(m Model, flows []Flow, parts [][]int) (float64, error) {
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		return 0, err
	}
	return m.Profit(flows, parts, prices)
}
