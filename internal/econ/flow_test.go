package econ

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRegionString(t *testing.T) {
	cases := map[Region]string{
		RegionMetro:         "metro",
		RegionNational:      "national",
		RegionInternational: "international",
		Region(99):          "region(99)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestFlowValidate(t *testing.T) {
	good := Flow{ID: "a", Demand: 1, Valuation: 2, Cost: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid flow rejected: %v", err)
	}
	cases := []Flow{
		{ID: "q", Demand: 0, Valuation: 1, Cost: 1},
		{ID: "c", Demand: 1, Valuation: 1, Cost: -1},
	}
	for _, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("flow %q should be invalid", f.ID)
		} else if !strings.Contains(err.Error(), f.ID) {
			t.Errorf("error should name the flow: %v", err)
		}
	}
}

func TestValidateFlowsEmpty(t *testing.T) {
	if err := ValidateFlows(nil); err == nil {
		t.Error("expected error for empty slice")
	}
}

func TestTotalDemand(t *testing.T) {
	flows := []Flow{{Demand: 1.5}, {Demand: 2.5}}
	if got := TotalDemand(flows); got != 4 {
		t.Fatalf("TotalDemand = %v, want 4", got)
	}
}

func TestSingletonsAndOneBundle(t *testing.T) {
	s := Singletons(3)
	if len(s) != 3 {
		t.Fatalf("Singletons(3) has %d blocks", len(s))
	}
	for i, b := range s {
		if len(b) != 1 || b[0] != i {
			t.Fatalf("Singletons block %d = %v", i, b)
		}
	}
	o := OneBundle(3)
	if len(o) != 1 || len(o[0]) != 3 {
		t.Fatalf("OneBundle(3) = %v", o)
	}
	if err := checkPartition(3, s); err != nil {
		t.Errorf("Singletons invalid: %v", err)
	}
	if err := checkPartition(3, o); err != nil {
		t.Errorf("OneBundle invalid: %v", err)
	}
}

func TestCheckPartitionRejections(t *testing.T) {
	cases := []struct {
		name string
		n    int
		p    [][]int
	}{
		{"empty block", 2, [][]int{{0, 1}, {}}},
		{"out of range", 2, [][]int{{0, 2}}},
		{"negative", 2, [][]int{{-1, 0, 1}}},
		{"duplicate", 2, [][]int{{0, 0}, {1}}},
		{"uncovered", 3, [][]int{{0, 1}}},
	}
	for _, c := range cases {
		if err := checkPartition(c.n, c.p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// randomFlows builds n fitted flows with demand, cost and valuation in
// sane positive ranges, for use across econ tests.
func randomFlows(t *testing.T, n int, seed int64, m Model, p0 float64) []Flow {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	demands := make([]float64, n)
	rel := make([]float64, n)
	for i := range demands {
		demands[i] = 0.5 + r.Float64()*20
		rel[i] = 0.1 + r.Float64()*5
	}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		t.Fatalf("FitValuations: %v", err)
	}
	gamma, _, err := m.CalibrateScale(vals, rel, p0)
	if err != nil {
		t.Fatalf("CalibrateScale: %v", err)
	}
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{
			ID:        "f" + string(rune('a'+i%26)),
			Demand:    demands[i],
			Distance:  rel[i],
			Valuation: vals[i],
			Cost:      gamma * rel[i],
		}
	}
	return flows
}

func TestModelNames(t *testing.T) {
	if (CED{Alpha: 2}).Name() != "ced" {
		t.Error("CED name")
	}
	if (Logit{Alpha: 1, S0: 0.2}).Name() != "logit" {
		t.Error("logit name")
	}
}

func TestCEDOptimalPriceMethod(t *testing.T) {
	m := CED{Alpha: 2}
	if m.OptimalPrice(3) != CEDOptimalPrice(3, 2) {
		t.Error("method and free function disagree")
	}
}

func TestLogitBlendedProfitMatchesOneBundle(t *testing.T) {
	m := Logit{Alpha: 1.1, S0: 0.2}
	flows := randomFlows(t, 5, 77, m, 20)
	got, err := m.BlendedProfit(flows, 20)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Profit(flows, OneBundle(5), []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("BlendedProfit %v != Profit %v", got, want)
	}
}
