package econ

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateCEDRecoversParameters(t *testing.T) {
	const alpha, v = 1.7, 3.2
	var prices, qs []float64
	for p := 0.5; p <= 8; p += 0.25 {
		prices = append(prices, p)
		qs = append(qs, CEDQuantity(v, p, alpha))
	}
	gotAlpha, gotV, r2, err := EstimateCED(prices, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(gotAlpha, alpha, 1e-9) || !almostEq(gotV, v, 1e-9) {
		t.Fatalf("estimate = (α=%v, v=%v), want (%v, %v)", gotAlpha, gotV, alpha, v)
	}
	if !almostEq(r2, 1, 1e-12) {
		t.Fatalf("R² = %v", r2)
	}
}

func TestEstimateCEDNoisy(t *testing.T) {
	const alpha, v = 2.4, 1.5
	r := rand.New(rand.NewSource(5))
	var prices, qs []float64
	for i := 0; i < 400; i++ {
		p := 0.5 + r.Float64()*9
		prices = append(prices, p)
		qs = append(qs, CEDQuantity(v, p, alpha)*math.Exp(r.NormFloat64()*0.05))
	}
	gotAlpha, gotV, r2, err := EstimateCED(prices, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(gotAlpha, alpha, 0.05) || !almostEq(gotV, v, 0.05) {
		t.Fatalf("estimate = (α=%v, v=%v), want ≈(%v, %v)", gotAlpha, gotV, alpha, v)
	}
	if r2 < 0.98 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestEstimateCEDErrors(t *testing.T) {
	if _, _, _, err := EstimateCED([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected mismatch error")
	}
	if _, _, _, err := EstimateCED([]float64{1}, []float64{1}); err == nil {
		t.Error("expected too-few-observations error")
	}
	if _, _, _, err := EstimateCED([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("expected positivity error")
	}
	// Inelastic data (α ≤ 1): flag it.
	prices := []float64{1, 2, 4}
	qs := []float64{8, 6, 4.5} // slope ≈ −0.4
	if _, _, _, err := EstimateCED(prices, qs); err == nil {
		t.Error("expected inelastic-demand error")
	}
}

func TestEstimateLogitAlphaRecovers(t *testing.T) {
	// One flow with valuation v and fixed competitors: vary its price and
	// record shares from the model itself.
	m := Logit{Alpha: 1.3, S0: 0.2}
	vals := []float64{4, 3}
	var prices, shares, s0s []float64
	for p := 0.5; p <= 6; p += 0.5 {
		sh, s0, err := m.Shares(vals, []float64{p, 2.5})
		if err != nil {
			t.Fatal(err)
		}
		prices = append(prices, p)
		shares = append(shares, sh[0])
		s0s = append(s0s, s0)
	}
	alpha, r2, err := EstimateLogitAlpha(prices, shares, s0s)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(alpha, 1.3, 1e-9) {
		t.Fatalf("α = %v, want 1.3", alpha)
	}
	if !almostEq(r2, 1, 1e-9) {
		t.Fatalf("R² = %v", r2)
	}
}

func TestEstimateLogitAlphaErrors(t *testing.T) {
	if _, _, err := EstimateLogitAlpha([]float64{1}, []float64{0.5}, []float64{0.2, 0.3}); err == nil {
		t.Error("expected mismatch error")
	}
	if _, _, err := EstimateLogitAlpha([]float64{1}, []float64{0.5}, []float64{0.2}); err == nil {
		t.Error("expected too-few error")
	}
	if _, _, err := EstimateLogitAlpha([]float64{1, 2}, []float64{0.9, 0.8}, []float64{0.3, 0.3}); err == nil {
		t.Error("expected share-sum error")
	}
	// Shares rising with price: nonsense data must be flagged.
	if _, _, err := EstimateLogitAlpha([]float64{1, 2}, []float64{0.2, 0.4}, []float64{0.2, 0.2}); err == nil {
		t.Error("expected negative-alpha error")
	}
}

func TestCEDSurplusMethodMatchesPerFlow(t *testing.T) {
	m := CED{Alpha: 1.5}
	flows := randomFlows(t, 6, 3, m, 20)
	parts := [][]int{{0, 1, 2}, {3, 4, 5}}
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Surplus(flows, parts, prices)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for b, block := range parts {
		for _, i := range block {
			want += CEDSurplus(flows[i].Valuation, prices[b], m.Alpha)
		}
	}
	if !almostEq(got, want, 1e-9*want) {
		t.Fatalf("Surplus = %v, want %v", got, want)
	}
	if _, err := m.Surplus(flows, parts, []float64{1}); err == nil {
		t.Error("expected price-count error")
	}
}
