package econ

import (
	"errors"
	"math"

	"tieredpricing/internal/stats"
)

// This file provides the inverse problem the paper leaves to the
// operator: the counterfactuals take the price sensitivity α as given
// ("we use a range of price sensitivity values"), but an ISP that has
// observed demand respond to past price changes can estimate α directly.

// EstimateCED fits a constant-elasticity demand curve to (price,
// quantity) observations of one flow by ordinary least squares on the
// log-log form of Eq. 2:
//
//	ln q = α·ln v − α·ln p
//
// so the regression slope of ln q on ln p is −α and the intercept
// recovers v. At least two observations at distinct prices are required;
// R² of the log-log fit is returned for diagnostics.
func EstimateCED(prices, quantities []float64) (alpha, v, r2 float64, err error) {
	if len(prices) != len(quantities) {
		return 0, 0, 0, errors.New("econ: prices/quantities length mismatch")
	}
	if len(prices) < 2 {
		return 0, 0, 0, errors.New("econ: need at least two observations")
	}
	lp := make([]float64, len(prices))
	lq := make([]float64, len(prices))
	for i := range prices {
		if prices[i] <= 0 || quantities[i] <= 0 {
			return 0, 0, 0, errors.New("econ: observations must be positive")
		}
		lp[i] = math.Log(prices[i])
		lq[i] = math.Log(quantities[i])
	}
	fit, err := stats.FitLinear(lp, lq)
	if err != nil {
		return 0, 0, 0, err
	}
	alpha = -fit.Slope
	if alpha <= 1 {
		return alpha, 0, fit.R2, errors.New("econ: estimated alpha <= 1 (demand not elastic enough for a CED optimum; check the data)")
	}
	v = math.Exp(fit.Intercept / alpha)
	return alpha, v, fit.R2, nil
}

// EstimateLogitAlpha fits the logit elasticity from observed market
// shares of ONE flow at different prices, holding everything else fixed:
// from Eq. 6, ln(s_i/s_0) = α(v_i − p_i), so regressing the log
// odds-against-opt-out on price gives slope −α.
func EstimateLogitAlpha(prices, shares, optOutShares []float64) (alpha float64, r2 float64, err error) {
	if len(prices) != len(shares) || len(prices) != len(optOutShares) {
		return 0, 0, errors.New("econ: observation length mismatch")
	}
	if len(prices) < 2 {
		return 0, 0, errors.New("econ: need at least two observations")
	}
	y := make([]float64, len(prices))
	for i := range prices {
		if shares[i] <= 0 || optOutShares[i] <= 0 || shares[i]+optOutShares[i] > 1 {
			return 0, 0, errors.New("econ: shares must be positive and sum below one")
		}
		y[i] = math.Log(shares[i] / optOutShares[i])
	}
	fit, err := stats.FitLinear(prices, y)
	if err != nil {
		return 0, 0, err
	}
	alpha = -fit.Slope
	if alpha <= 0 {
		return alpha, fit.R2, errors.New("econ: estimated alpha <= 0 (shares rise with price; check the data)")
	}
	return alpha, fit.R2, nil
}

// Surplus returns aggregate consumer surplus at the given bundle prices
// under CED: the sum of per-flow surpluses v^α·p^{1−α}/(α−1) (demand is
// separable, so flow surpluses add).
func (m CED) Surplus(flows []Flow, partition [][]int, prices []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if err := m.checkFlows(flows); err != nil {
		return 0, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return 0, err
	}
	if len(prices) != len(partition) {
		return 0, errors.New("econ: one price per bundle required")
	}
	var s float64
	for b, block := range partition {
		for _, i := range block {
			s += CEDSurplus(flows[i].Valuation, prices[b], m.Alpha)
		}
	}
	return s, nil
}
