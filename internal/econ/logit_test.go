package econ

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogitRejectsBadParams(t *testing.T) {
	bad := []Logit{
		{Alpha: 0, S0: 0.2},
		{Alpha: -1, S0: 0.2},
		{Alpha: math.Inf(1), S0: 0.2},
		{Alpha: 1, S0: 0},
		{Alpha: 1, S0: 1},
		{Alpha: 1, S0: -0.5},
	}
	for _, m := range bad {
		if _, err := m.FitValuations([]float64{1}, 1); err == nil {
			t.Errorf("%+v: expected error", m)
		}
	}
}

func TestLogitSharesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Logit{Alpha: 0.1 + r.Float64()*3, S0: 0.2}
		n := 1 + r.Intn(15)
		vals := make([]float64, n)
		prices := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()*40 - 10
			prices[i] = r.Float64() * 30
		}
		shares, s0, err := m.Shares(vals, prices)
		if err != nil {
			return false
		}
		sum := s0
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogitSharesMismatch(t *testing.T) {
	m := Logit{Alpha: 1, S0: 0.2}
	if _, _, err := m.Shares([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestLogitFitValuationsRoundTrip(t *testing.T) {
	// At the blended rate the fitted valuations must reproduce both the
	// assumed no-purchase share and the observed demands.
	m := Logit{Alpha: 1.1, S0: 0.2}
	p0 := 20.0
	demands := []float64{1, 5, 0.2, 40}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		t.Fatal(err)
	}
	prices := []float64{p0, p0, p0, p0}
	shares, s0, err := m.Shares(vals, prices)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s0, m.S0, 1e-9) {
		t.Fatalf("s0 at blended rate = %v, want %v", s0, m.S0)
	}
	flows := make([]Flow, len(demands))
	for i := range flows {
		flows[i] = Flow{Demand: demands[i], Valuation: vals[i], Cost: 1}
	}
	k := m.MarketSize(flows)
	for i, q := range demands {
		if got := k * shares[i]; !almostEq(got, q, 1e-9*q) {
			t.Errorf("flow %d: K·s = %v, want %v", i, got, q)
		}
	}
}

func TestLogitBundleValuationAggregation(t *testing.T) {
	// A bundle priced at P must capture exactly the same market share as
	// its member flows priced individually at P (Eq. 10 is defined to
	// make this hold).
	m := Logit{Alpha: 0.7, S0: 0.2}
	vals := []float64{3, 5, 4.2}
	vb, err := m.BundleValuation(vals)
	if err != nil {
		t.Fatal(err)
	}
	price := 2.5
	sharesInd, s0Ind, err := m.Shares(vals, []float64{price, price, price})
	if err != nil {
		t.Fatal(err)
	}
	var sumInd float64
	for _, s := range sharesInd {
		sumInd += s
	}
	sharesAgg, s0Agg, err := m.Shares([]float64{vb}, []float64{price})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sharesAgg[0], sumInd, 1e-9) || !almostEq(s0Agg, s0Ind, 1e-9) {
		t.Fatalf("aggregated share %v (s0 %v) != summed %v (s0 %v)",
			sharesAgg[0], s0Agg, sumInd, s0Ind)
	}
}

func TestLogitBundleCostIsConvexCombination(t *testing.T) {
	m := Logit{Alpha: 1.5, S0: 0.3}
	costs := []float64{1, 10}
	vals := []float64{2, 2}
	c, err := m.BundleCost(costs, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Equal valuations ⇒ simple average.
	if !almostEq(c, 5.5, 1e-9) {
		t.Fatalf("BundleCost = %v, want 5.5", c)
	}
	// Higher-valuation flow dominates the average.
	c2, err := m.BundleCost(costs, []float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !(c2 > 9.9) {
		t.Fatalf("BundleCost = %v, want ≈10", c2)
	}
}

func TestLogitCalibrationMakesBlendedRateOptimal(t *testing.T) {
	m := Logit{Alpha: 1.1, S0: 0.2}
	p0 := 20.0
	flows := randomFlows(t, 20, 17, m, p0)
	prices, err := m.PriceBundles(flows, OneBundle(len(flows)))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(prices[0], p0, 1e-6*p0) {
		t.Fatalf("single-bundle optimum = %v, want blended rate %v", prices[0], p0)
	}
}

func TestLogitCalibrateScaleClampsInfeasible(t *testing.T) {
	// p0 < 1/(α·s0) makes the implied cost negative; γ must clamp.
	m := Logit{Alpha: 1, S0: 0.05} // markup = 20
	vals, err := m.FitValuations([]float64{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	gamma, clamped, err := m.CalibrateScale(vals, []float64{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !clamped {
		t.Error("expected clamped calibration")
	}
	if gamma <= 0 {
		t.Errorf("clamped gamma = %v, want positive", gamma)
	}
}

func TestLogitPriceBundlesSatisfiesFOC(t *testing.T) {
	// Eq. 9: at the solution every bundle's markup over its Eq. 11 cost
	// equals 1/(α·s0) with s0 the realized no-purchase share.
	m := Logit{Alpha: 1.1, S0: 0.2}
	flows := randomFlows(t, 9, 23, m, 20)
	parts := [][]int{{0, 3, 6}, {1, 4, 7}, {2, 5, 8}}
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	vals, costs, err := m.bundleAggregates(flows, parts, new(logitScratch))
	if err != nil {
		t.Fatal(err)
	}
	_, s0, err := m.Shares(vals, prices)
	if err != nil {
		t.Fatal(err)
	}
	markup := 1 / (m.Alpha * s0)
	for b := range parts {
		if !almostEq(prices[b]-costs[b], markup, 1e-6*markup) {
			t.Errorf("bundle %d markup = %v, want %v", b, prices[b]-costs[b], markup)
		}
	}
}

func TestLogitPriceBundlesIsLocalOptimum(t *testing.T) {
	// Perturbing any one bundle price away from the fixed-point solution
	// must not increase profit.
	m := Logit{Alpha: 1.3, S0: 0.25}
	flows := randomFlows(t, 8, 31, m, 15)
	parts := [][]int{{0, 1}, {2, 3, 4}, {5, 6, 7}}
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Profit(flows, parts, prices)
	if err != nil {
		t.Fatal(err)
	}
	for b := range prices {
		for _, eps := range []float64{0.97, 1.03} {
			mod := append([]float64(nil), prices...)
			mod[b] *= eps
			pi, err := m.Profit(flows, parts, mod)
			if err != nil {
				t.Fatal(err)
			}
			if pi > base+1e-7*math.Abs(base) {
				t.Fatalf("perturbing bundle %d by %v improves profit %v → %v",
					b, eps, base, pi)
			}
		}
	}
}

func TestLogitProfitPerFlowMatchesBundleAggregation(t *testing.T) {
	// Π computed per flow (Eq. 8) must equal Π computed on the Eq. 10/11
	// bundle aggregates.
	m := Logit{Alpha: 0.9, S0: 0.2}
	flows := randomFlows(t, 10, 41, m, 20)
	parts := [][]int{{0, 1, 2, 3, 4}, {5, 6}, {7, 8, 9}}
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	perFlow, err := m.Profit(flows, parts, prices)
	if err != nil {
		t.Fatal(err)
	}
	vals, costs, err := m.bundleAggregates(flows, parts, new(logitScratch))
	if err != nil {
		t.Fatal(err)
	}
	shares, _, err := m.Shares(vals, prices)
	if err != nil {
		t.Fatal(err)
	}
	k := m.MarketSize(flows)
	var agg float64
	for b := range parts {
		agg += k * shares[b] * (prices[b] - costs[b])
	}
	if !almostEq(perFlow, agg, 1e-6*math.Abs(agg)) {
		t.Fatalf("per-flow profit %v != aggregated %v", perFlow, agg)
	}
}

func TestLogitMaxProfitDominatesBundles(t *testing.T) {
	m := Logit{Alpha: 1.1, S0: 0.2}
	flows := randomFlows(t, 12, 53, m, 20)
	max, err := m.MaxProfit(flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range [][][]int{
		OneBundle(12),
		{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}},
	} {
		prices, err := m.PriceBundles(flows, parts)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.Profit(flows, parts, prices)
		if err != nil {
			t.Fatal(err)
		}
		if pi > max+1e-7*max {
			t.Fatalf("partition profit %v exceeds max %v", pi, max)
		}
	}
}

func TestLogitPotentialProfitsProportionalToDemand(t *testing.T) {
	// Eq. 13: π_i ∝ q_i.
	m := Logit{Alpha: 1.1, S0: 0.2}
	flows := randomFlows(t, 6, 61, m, 20)
	pots, err := m.PotentialProfits(flows)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pots[0] / flows[0].Demand
	for i := range flows {
		if !almostEq(pots[i]/flows[i].Demand, ratio, 1e-9*ratio) {
			t.Errorf("flow %d: potential/demand = %v, want %v",
				i, pots[i]/flows[i].Demand, ratio)
		}
	}
}

func TestLogitSurplusDecreasingInPrice(t *testing.T) {
	m := Logit{Alpha: 1, S0: 0.2}
	flows := randomFlows(t, 4, 71, m, 10)
	one := OneBundle(4)
	s1, err := m.Surplus(flows, one, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Surplus(flows, one, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if !(s1 > s2) {
		t.Fatalf("surplus not decreasing: s(5)=%v s(8)=%v", s1, s2)
	}
}

func TestLogitMarketSize(t *testing.T) {
	m := Logit{Alpha: 1, S0: 0.2}
	flows := []Flow{{Demand: 4}, {Demand: 4}}
	if k := m.MarketSize(flows); !almostEq(k, 10, 1e-12) {
		t.Fatalf("MarketSize = %v, want 10", k)
	}
}

func TestLogitDegenerateMarketDoesNotHang(t *testing.T) {
	// Valuations far below cost: the market collapses; PriceBundles must
	// still terminate with finite prices ≥ cost.
	m := Logit{Alpha: 2, S0: 0.2}
	flows := []Flow{
		{ID: "a", Demand: 1, Valuation: 0.001, Cost: 1000},
		{ID: "b", Demand: 1, Valuation: 0.002, Cost: 2000},
	}
	prices, err := m.PriceBundles(flows, Singletons(2))
	if err != nil {
		t.Fatal(err)
	}
	for b, p := range prices {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < flows[b].Cost {
			t.Fatalf("degenerate price[%d] = %v", b, p)
		}
	}
}
