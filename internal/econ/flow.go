// Package econ implements the two demand-model families of the paper —
// constant-elasticity demand (CED, §3.2.1) and logit discrete-choice demand
// (§3.2.2) — together with the fitting machinery of §4.1 that maps observed
// traffic demands at a blended rate to per-flow valuations, and the bundle
// pricing formulas (Eqs. 4–13).
//
// Both models implement the Model interface consumed by the pricing and
// core packages, so every bundling counterfactual runs unchanged under
// either demand family.
package econ

import (
	"errors"
	"fmt"
)

// Region classifies a flow by how far it travels, following the paper's
// regional cost model (§3.3): flows that originate and terminate in the
// same city are metro, in the same country national, otherwise
// international.
type Region uint8

// Region values, ordered by increasing distance class.
const (
	RegionMetro Region = iota
	RegionNational
	RegionInternational
)

// String returns the lowercase region name.
func (r Region) String() string {
	switch r {
	case RegionMetro:
		return "metro"
	case RegionNational:
		return "national"
	case RegionInternational:
		return "international"
	default:
		return fmt.Sprintf("region(%d)", uint8(r))
	}
}

// Flow is one priced traffic flow: a (source, destination) traffic
// aggregate with its observed demand and the attributes the cost models
// key on. Valuation and Cost are filled in by the fitting stage (§4.1);
// before fitting they are zero.
type Flow struct {
	// ID names the flow (e.g. "fra->lon" or a destination prefix).
	ID string
	// Demand is the observed traffic volume q_i (Mbps) at the blended rate.
	Demand float64
	// Distance is the distance the flow travels in the ISP's network, in
	// miles, computed per the dataset-specific heuristic of §4.1.1.
	Distance float64
	// Region is the destination-region class (metro/national/international).
	Region Region
	// OnNet is true when the destination is a customer of the ISP
	// ("on net"), false for peer/provider destinations ("off net").
	OnNet bool

	// Valuation is the fitted valuation coefficient v_i (§4.1.2).
	Valuation float64
	// Cost is the absolute unit cost c_i = γ·f(d_i) in $/Mbps (§4.1.3).
	Cost float64
}

// Validate reports whether the flow's economic fields are usable by the
// pricing formulas: positive demand and cost. Valuation sign is
// model-specific — CED requires v > 0 (checked by its methods), while
// logit valuations are utilities and may legitimately be negative (a
// low-share flow fitted against a low blended rate).
func (f Flow) Validate() error {
	if f.Demand <= 0 {
		return fmt.Errorf("econ: flow %q has non-positive demand %v", f.ID, f.Demand)
	}
	if f.Cost <= 0 {
		return fmt.Errorf("econ: flow %q has non-positive cost %v", f.ID, f.Cost)
	}
	return nil
}

// ValidateFlows checks every flow in the slice.
func ValidateFlows(flows []Flow) error {
	if len(flows) == 0 {
		return errors.New("econ: no flows")
	}
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalDemand returns the sum of observed demands.
func TotalDemand(flows []Flow) float64 {
	var sum float64
	for _, f := range flows {
		sum += f.Demand
	}
	return sum
}

// Model is a demand-model family fitted to a market: it knows how to derive
// per-flow valuations from observed demands (§4.1.2), reconcile relative
// costs with the blended price (§4.1.3), compute profit-maximizing prices
// for any bundling of the flows, and evaluate the resulting ISP profit
// (Eq. 1). Implementations: CED and Logit.
type Model interface {
	// Name identifies the model family ("ced" or "logit").
	Name() string

	// FitValuations maps observed per-flow demands at blended rate p0 to
	// valuation coefficients v_i (§4.1.2).
	FitValuations(demands []float64, p0 float64) ([]float64, error)

	// CalibrateScale returns the cost-scaling coefficient γ that makes the
	// blended rate p0 the profit-maximizing single-bundle price given the
	// fitted valuations and the relative costs f(d_i) (§4.1.3). The
	// returned γ is always positive; infeasible corners (possible in the
	// logit s0 sweep) are clamped and reported via the bool.
	CalibrateScale(valuations, relCosts []float64, p0 float64) (gamma float64, clamped bool, err error)

	// PriceBundles returns the profit-maximizing price of each bundle in
	// the partition. partition is a list of index sets into flows; every
	// flow must appear in exactly one bundle.
	PriceBundles(flows []Flow, partition [][]int) ([]float64, error)

	// Profit evaluates total ISP profit (Eq. 1) when each bundle in the
	// partition is priced at the corresponding entry of prices.
	Profit(flows []Flow, partition [][]int, prices []float64) (float64, error)

	// MaxProfit is the profit attained by pricing every flow separately —
	// the paper's "infinite number of bundles" benchmark.
	MaxProfit(flows []Flow) (float64, error)

	// PotentialProfits returns the per-flow potential-profit weights used
	// by the profit-weighted bundling strategy (Eqs. 12–13).
	PotentialProfits(flows []Flow) ([]float64, error)
}

// checkPartition verifies that partition is a disjoint cover of
// 0..n-1 with non-empty blocks.
func checkPartition(n int, partition [][]int) error {
	seen := make([]bool, n)
	count := 0
	for b, block := range partition {
		if len(block) == 0 {
			return fmt.Errorf("econ: bundle %d is empty", b)
		}
		for _, i := range block {
			if i < 0 || i >= n {
				return fmt.Errorf("econ: bundle %d references flow %d out of range", b, i)
			}
			if seen[i] {
				return fmt.Errorf("econ: flow %d assigned to two bundles", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("econ: partition covers %d of %d flows", count, n)
	}
	return nil
}

// Singletons returns the partition that puts every flow in its own bundle.
func Singletons(n int) [][]int {
	p := make([][]int, n)
	for i := range p {
		p[i] = []int{i}
	}
	return p
}

// OneBundle returns the partition that puts all n flows in a single bundle.
func OneBundle(n int) [][]int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return [][]int{all}
}
