package econ

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"tieredpricing/internal/stats"
)

// Logit is the discrete-choice demand model of §3.2.2 (after Besanko et
// al.): each of K consumers picks the flow maximizing
// u_ij = α(v_i − p_i) + ε_ij with Gumbel ε, or opts out (the "no traffic"
// good with utility ε_0j). The purchase probabilities are
//
//	s_i(P) = e^{α(v_i−p_i)} / (Σ_j e^{α(v_j−p_j)} + 1)       (Eq. 6)
//	Q_i(P) = K·s_i(P)                                        (Eq. 7)
//
// Demands are NOT separable: every price moves every share, which models
// customers that can redirect traffic to substitute destinations.
type Logit struct {
	// Alpha is the elasticity parameter α ∈ (0, ∞).
	Alpha float64
	// S0 is the no-purchase market share assumed to hold at the observed
	// blended rate; it anchors the valuation fit of §4.1.2. Must lie in
	// (0, 1).
	S0 float64
}

// logitMarkupFloor bounds the no-purchase share away from 0 and 1 in the
// fixed-point solve, and MinGammaFraction floors the clamped cost scale in
// the infeasible corner of the s0 sweep (documented in DESIGN.md §4).
const (
	logitS0Floor        = 1e-12
	minGammaFraction    = 1e-6 // γ floor as a fraction of p0 per unit relative cost
	logitFixedPointIter = 200
)

// Name implements Model.
func (m Logit) Name() string { return "logit" }

func (m Logit) check() error {
	if !(m.Alpha > 0) || math.IsInf(m.Alpha, 1) {
		return fmt.Errorf("econ: logit requires alpha > 0, got %v", m.Alpha)
	}
	if !(m.S0 > 0 && m.S0 < 1) {
		return fmt.Errorf("econ: logit requires s0 in (0,1), got %v", m.S0)
	}
	return nil
}

// logitScratch holds the reusable buffers of the logit hot paths — the
// equal-markup bisection (one softmax per iteration), per-bundle
// aggregation, and profit evaluation — so that repeated pricing calls
// (experiment fan-out, the repricer's ticks) stop churning the allocator.
// The floating-point operation order through these buffers is identical to
// the allocating formulations, so results are bit-for-bit unchanged.
type logitScratch struct {
	exps, w []float64 // utility exponents and softmax weights, n+1 wide
	bv, bc  []float64 // one block's valuations and costs
	fv, fp  []float64 // per-flow valuations and prices
}

// grown returns buf resized to n, reusing capacity when it suffices.
func grown(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

var logitScratchPool = sync.Pool{New: func() any { return new(logitScratch) }}

// Shares evaluates Eq. 6: the per-flow market shares at the given prices,
// plus the no-purchase share s0. vals and prices must have equal length.
func (m Logit) Shares(vals, prices []float64) (shares []float64, s0 float64, err error) {
	if err := m.check(); err != nil {
		return nil, 0, err
	}
	if len(vals) != len(prices) {
		return nil, 0, errors.New("econ: vals/prices length mismatch")
	}
	// Include the outside option as utility exponent 0 and softmax the
	// whole thing for numerical stability.
	exps := make([]float64, len(vals)+1)
	for i := range vals {
		exps[i] = m.Alpha * (vals[i] - prices[i])
	}
	exps[len(vals)] = 0 // e^0 = 1 term in the denominator
	w, err := stats.Softmax(exps)
	if err != nil {
		return nil, 0, err
	}
	return w[:len(vals)], w[len(vals)], nil
}

// MarketSize returns K, inferred from observed demands: at the blended
// rate the flows jointly hold share 1−S0 of the market, so
// K = Σq_i / (1 − S0).
func (m Logit) MarketSize(flows []Flow) float64 {
	return TotalDemand(flows) / (1 - m.S0)
}

// FitValuations implements Model (§4.1.2): with observed shares
// s_i = q_i(1−s0)/Σq_j, inverting Eq. 6 at the blended rate gives
//
//	v_i = (ln s_i − ln s0)/α + p0
func (m Logit) FitValuations(demands []float64, p0 float64) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if p0 <= 0 {
		return nil, fmt.Errorf("econ: blended rate must be positive, got %v", p0)
	}
	var total float64
	for i, q := range demands {
		if q <= 0 {
			return nil, fmt.Errorf("econ: demand %d is non-positive (%v)", i, q)
		}
		total += q
	}
	if total == 0 {
		return nil, errors.New("econ: zero total demand")
	}
	out := make([]float64, len(demands))
	for i, q := range demands {
		si := q * (1 - m.S0) / total
		out[i] = (math.Log(si)-math.Log(m.S0))/m.Alpha + p0
	}
	return out, nil
}

// BundleValuation aggregates the valuations of the flows in a bundle
// (Eq. 10): v_b = ln(Σ e^{α·v_i}) / α.
func (m Logit) BundleValuation(vals []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	exps := make([]float64, len(vals))
	for i, v := range vals {
		exps[i] = m.Alpha * v
	}
	lse, err := stats.LogSumExp(exps)
	if err != nil {
		return 0, err
	}
	return lse / m.Alpha, nil
}

// BundleCost aggregates the unit costs of the flows in a bundle (Eq. 11):
// the e^{αv}-weighted mean cost, i.e. the expected cost of the flow a
// consumer picks within the bundle when all its flows share a price.
func (m Logit) BundleCost(costs, vals []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if len(costs) != len(vals) {
		return 0, errors.New("econ: costs/vals length mismatch")
	}
	exps := make([]float64, len(vals))
	for i, v := range vals {
		exps[i] = m.Alpha * v
	}
	w, err := stats.Softmax(exps)
	if err != nil {
		return 0, err
	}
	var c float64
	for i := range costs {
		c += w[i] * costs[i]
	}
	return c, nil
}

// CalibrateScale implements Model (§4.1.3): the single-bundle first-order
// condition (Eq. 9) at the blended rate requires the bundle's average cost
// to be c_b = p0 − 1/(α·s0); with c_i = γ·f_i and the Eq. 11 weighting,
//
//	γ = (p0 − 1/(α·s0)) / Σ_i w_i·f_i,  w_i = e^{αv_i}/Σe^{αv_j}.
//
// When p0 ≤ 1/(α·s0) the implied cost is non-positive (the market's
// markup already exceeds the blended rate); γ is then clamped to a small
// positive floor and clamped is returned true.
func (m Logit) CalibrateScale(valuations, relCosts []float64, p0 float64) (float64, bool, error) {
	if err := m.check(); err != nil {
		return 0, false, err
	}
	if len(valuations) != len(relCosts) {
		return 0, false, errors.New("econ: valuation/cost length mismatch")
	}
	if len(valuations) == 0 {
		return 0, false, errors.New("econ: no flows")
	}
	if p0 <= 0 {
		return 0, false, fmt.Errorf("econ: blended rate must be positive, got %v", p0)
	}
	for i, f := range relCosts {
		if f <= 0 {
			return 0, false, fmt.Errorf("econ: relative cost %d non-positive", i)
		}
	}
	meanF, err := m.BundleCost(relCosts, valuations)
	if err != nil {
		return 0, false, err
	}
	target := p0 - 1/(m.Alpha*m.S0)
	if target <= 0 {
		return minGammaFraction * p0 / meanF, true, nil
	}
	return target / meanF, false, nil
}

// bundleAggregates reduces a partition to per-bundle (valuation, cost)
// pairs via Eqs. 10–11, computing through sc's buffers. vals and costs are
// freshly allocated (callers may retain them); only working state is
// pooled. The computation is operation-for-operation the same as calling
// BundleValuation and BundleCost per block.
func (m Logit) bundleAggregates(flows []Flow, partition [][]int, sc *logitScratch) (vals, costs []float64, err error) {
	vals = make([]float64, len(partition))
	costs = make([]float64, len(partition))
	for b, block := range partition {
		sc.bv = grown(sc.bv, len(block))
		sc.bc = grown(sc.bc, len(block))
		sc.exps = grown(sc.exps, len(block))
		sc.w = grown(sc.w, len(block))
		for j, i := range block {
			sc.bv[j] = flows[i].Valuation
			sc.bc[j] = flows[i].Cost
		}
		// Eq. 10: v_b = ln(Σ e^{α·v_i}) / α.
		for j, v := range sc.bv {
			sc.exps[j] = m.Alpha * v
		}
		lse, err := stats.LogSumExp(sc.exps)
		if err != nil {
			return nil, nil, err
		}
		vals[b] = lse / m.Alpha
		// Eq. 11: the e^{αv}-weighted mean cost.
		if err := stats.SoftmaxInto(sc.w, sc.exps); err != nil {
			return nil, nil, err
		}
		var c float64
		for j := range sc.bc {
			c += sc.w[j] * sc.bc[j]
		}
		costs[b] = c
	}
	return vals, costs, nil
}

// PriceBundles implements Model. The multiproduct-logit first-order
// condition is the equal-markup property (Eq. 9): every bundle's price
// exceeds its Eq. 11 cost by the same markup 1/(α·s0), where s0 is the
// equilibrium no-purchase share. That reduces the n-dimensional price
// optimization the paper solves by gradient descent to a scalar
// root-finding problem in s0, solved here by bisection (the gradient
// solver lives in internal/optimize and is cross-checked in tests).
func (m Logit) PriceBundles(flows []Flow, partition [][]int) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if err := ValidateFlows(flows); err != nil {
		return nil, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return nil, err
	}
	sc := logitScratchPool.Get().(*logitScratch)
	defer logitScratchPool.Put(sc)
	vals, costs, err := m.bundleAggregates(flows, partition, sc)
	if err != nil {
		return nil, err
	}

	// implied maps a candidate no-purchase share to the share the
	// resulting equal-markup prices would actually produce. The bisection
	// evaluates it a couple hundred times per call, so the exponent and
	// weight buffers come from the pooled scratch rather than being
	// reallocated per iteration.
	sc.exps = grown(sc.exps, len(vals)+1)
	sc.w = grown(sc.w, len(vals)+1)
	implied := func(s0 float64) float64 {
		markup := 1 / (m.Alpha * s0)
		exps := sc.exps
		for b := range vals {
			exps[b] = m.Alpha * (vals[b] - costs[b] - markup)
		}
		exps[len(vals)] = 0
		_ = stats.SoftmaxInto(sc.w, exps)
		return sc.w[len(vals)]
	}

	lo, hi := logitS0Floor, 1-logitS0Floor
	// g(s0) = implied(s0) − s0 is positive at lo (huge markup kills all
	// demand) and, except in the degenerate no-market corner, negative at
	// hi. Bisect.
	if implied(hi)-hi > 0 {
		// Degenerate: even the minimal markup leaves (almost) nobody
		// buying; the market collapses to the outside option.
		hi = implied(hi)
	}
	s0 := 0.0
	for iter := 0; iter < logitFixedPointIter; iter++ {
		mid := (lo + hi) / 2
		if implied(mid)-mid > 0 {
			lo = mid
		} else {
			hi = mid
		}
		s0 = (lo + hi) / 2
		if hi-lo < 1e-15 {
			break
		}
	}
	markup := 1 / (m.Alpha * s0)
	prices := make([]float64, len(partition))
	for b := range prices {
		prices[b] = costs[b] + markup
	}
	return prices, nil
}

// Profit implements Model: Eq. 8 evaluated per flow, with every flow
// priced at its bundle's price. This is algebraically identical to
// aggregating bundles via Eqs. 10–11 first (verified by tests).
func (m Logit) Profit(flows []Flow, partition [][]int, prices []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if err := ValidateFlows(flows); err != nil {
		return 0, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return 0, err
	}
	if len(prices) != len(partition) {
		return 0, errors.New("econ: one price per bundle required")
	}
	sc := logitScratchPool.Get().(*logitScratch)
	defer logitScratchPool.Put(sc)
	n := len(flows)
	sc.fv = grown(sc.fv, n)
	sc.fp = grown(sc.fp, n)
	for b, block := range partition {
		for _, i := range block {
			sc.fv[i] = flows[i].Valuation
			sc.fp[i] = prices[b]
		}
	}
	// Inline of Shares through the pooled buffers (same operation order):
	// softmax over the utility exponents with the outside option appended.
	sc.exps = grown(sc.exps, n+1)
	sc.w = grown(sc.w, n+1)
	for i := 0; i < n; i++ {
		sc.exps[i] = m.Alpha * (sc.fv[i] - sc.fp[i])
	}
	sc.exps[n] = 0
	if err := stats.SoftmaxInto(sc.w, sc.exps); err != nil {
		return 0, err
	}
	k := m.MarketSize(flows)
	var profit float64
	for i, f := range flows {
		profit += k * sc.w[i] * (sc.fp[i] - f.Cost)
	}
	return profit, nil
}

// MaxProfit implements Model: every flow priced separately via the same
// fixed point.
func (m Logit) MaxProfit(flows []Flow) (float64, error) {
	parts := Singletons(len(flows))
	prices, err := m.PriceBundles(flows, parts)
	if err != nil {
		return 0, err
	}
	return m.Profit(flows, parts, prices)
}

// PotentialProfits implements Model: Eq. 13,
// π_i = K·s_i/(α·s0) ∝ q_i — under logit, a flow's stand-alone profit
// potential at the calibration point is proportional to its observed
// demand (which is why the paper's Figure 9 legend omits the separate
// demand-weighted strategy).
func (m Logit) PotentialProfits(flows []Flow) ([]float64, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	if err := ValidateFlows(flows); err != nil {
		return nil, err
	}
	k := m.MarketSize(flows)
	total := TotalDemand(flows)
	out := make([]float64, len(flows))
	for i, f := range flows {
		si := f.Demand * (1 - m.S0) / total
		out[i] = k * si / (m.Alpha * m.S0)
	}
	return out, nil
}

// BlendedProfit returns the profit of charging the single price p0 for
// all flows.
func (m Logit) BlendedProfit(flows []Flow, p0 float64) (float64, error) {
	return m.Profit(flows, OneBundle(len(flows)), []float64{p0})
}

// Surplus returns aggregate consumer surplus at the given prices: the
// standard logit log-sum formula K/α · ln(Σ e^{α(v_i−p_i)} + 1).
func (m Logit) Surplus(flows []Flow, partition [][]int, prices []float64) (float64, error) {
	if err := m.check(); err != nil {
		return 0, err
	}
	if err := checkPartition(len(flows), partition); err != nil {
		return 0, err
	}
	exps := make([]float64, 0, len(flows)+1)
	for b, block := range partition {
		for _, i := range block {
			exps = append(exps, m.Alpha*(flows[i].Valuation-prices[b]))
		}
	}
	exps = append(exps, 0)
	lse, err := stats.LogSumExp(exps)
	if err != nil {
		return 0, err
	}
	return m.MarketSize(flows) / m.Alpha * lse, nil
}
