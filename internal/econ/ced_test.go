package econ

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestCEDRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{1, 0.5, 0, -2, math.Inf(1), math.NaN()} {
		m := CED{Alpha: alpha}
		if _, err := m.FitValuations([]float64{1}, 1); err == nil {
			t.Errorf("alpha=%v: expected error", alpha)
		}
	}
}

func TestCEDFigure4(t *testing.T) {
	// Figure 4 of the paper: two flows with identical demand
	// (v = 1, α = 2) but costs 1 and 2. The first has optimal price
	// p* = 2 and profit 0.25; the second p* = 4 and profit 0.125.
	alpha := 2.0
	if p := CEDOptimalPrice(1, alpha); !almostEq(p, 2, 1e-12) {
		t.Fatalf("p*(c=1) = %v, want 2", p)
	}
	if p := CEDOptimalPrice(2, alpha); !almostEq(p, 4, 1e-12) {
		t.Fatalf("p*(c=2) = %v, want 4", p)
	}
	if pi := CEDFlowProfit(1, 2, 1, alpha); !almostEq(pi, 0.25, 1e-12) {
		t.Fatalf("π(c=1) = %v, want 0.25", pi)
	}
	if pi := CEDFlowProfit(1, 4, 2, alpha); !almostEq(pi, 0.125, 1e-12) {
		t.Fatalf("π(c=2) = %v, want 0.125", pi)
	}
}

func TestCEDOptimalPriceIsOptimal(t *testing.T) {
	// Perturbing the Eq. 4 price in either direction can only lose profit.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := 1.05 + r.Float64()*8
		v := 0.1 + r.Float64()*10
		c := 0.1 + r.Float64()*10
		p := CEDOptimalPrice(c, alpha)
		best := CEDFlowProfit(v, p, c, alpha)
		for _, eps := range []float64{0.9, 0.99, 1.01, 1.1} {
			if CEDFlowProfit(v, p*eps, c, alpha) > best+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCEDFitValuationsRoundTrip(t *testing.T) {
	// The fitted valuation must reproduce the observed demand at the
	// blended rate: Q(v_i, P0) = q_i.
	m := CED{Alpha: 1.1}
	p0 := 20.0
	demands := []float64{0.5, 3, 42, 1e4}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		q := m.Quantity(v, p0)
		if !almostEq(q, demands[i], 1e-9*demands[i]) {
			t.Errorf("flow %d: Q = %v, want %v", i, q, demands[i])
		}
	}
}

func TestCEDFitValuationsErrors(t *testing.T) {
	m := CED{Alpha: 2}
	if _, err := m.FitValuations([]float64{1, 0}, 20); err == nil {
		t.Error("expected error for zero demand")
	}
	if _, err := m.FitValuations([]float64{1}, 0); err == nil {
		t.Error("expected error for zero blended rate")
	}
}

func TestCEDBundlePriceSingletonMatchesEq4(t *testing.T) {
	m := CED{Alpha: 1.7}
	flows := []Flow{{ID: "x", Demand: 1, Valuation: 3, Cost: 2}}
	p, err := m.BundlePrice(flows, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if want := CEDOptimalPrice(2, 1.7); !almostEq(p, want, 1e-12) {
		t.Fatalf("bundle price = %v, want %v", p, want)
	}
}

func TestCEDBundlePriceIsWeightedOptimum(t *testing.T) {
	// The Eq. 5 price must beat any perturbation for the whole bundle.
	m := CED{Alpha: 1.3}
	flows := randomFlows(t, 8, 11, m, 20)
	block := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p, err := m.BundlePrice(flows, block)
	if err != nil {
		t.Fatal(err)
	}
	profitAt := func(price float64) float64 {
		var pi float64
		for _, i := range block {
			pi += CEDFlowProfit(flows[i].Valuation, price, flows[i].Cost, m.Alpha)
		}
		return pi
	}
	best := profitAt(p)
	for _, eps := range []float64{0.9, 0.95, 1.05, 1.2} {
		if profitAt(p*eps) > best+1e-9 {
			t.Fatalf("price %v beats Eq.5 price %v", p*eps, p)
		}
	}
}

func TestCEDCalibrationMakesBlendedRateOptimal(t *testing.T) {
	// After CalibrateScale, the optimal single-bundle price must equal
	// the blended rate P0 — the identifying assumption of §4.1.3.
	m := CED{Alpha: 1.1}
	p0 := 20.0
	flows := randomFlows(t, 25, 3, m, p0)
	p, err := m.BundlePrice(flows, OneBundle(len(flows))[0])
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, p0, 1e-6) {
		t.Fatalf("single-bundle optimum = %v, want blended rate %v", p, p0)
	}
}

func TestCEDCalibrateScaleNeverClamps(t *testing.T) {
	m := CED{Alpha: 3}
	_, clamped, err := m.CalibrateScale([]float64{1, 2}, []float64{1, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if clamped {
		t.Error("CED calibration should never clamp")
	}
}

func TestCEDCalibrateScaleErrors(t *testing.T) {
	m := CED{Alpha: 2}
	if _, _, err := m.CalibrateScale([]float64{1}, []float64{1, 2}, 5); err == nil {
		t.Error("expected mismatch error")
	}
	if _, _, err := m.CalibrateScale(nil, nil, 5); err == nil {
		t.Error("expected empty error")
	}
	if _, _, err := m.CalibrateScale([]float64{1}, []float64{0}, 5); err == nil {
		t.Error("expected error for zero relative cost")
	}
	if _, _, err := m.CalibrateScale([]float64{-1}, []float64{1}, 5); err == nil {
		t.Error("expected error for negative valuation")
	}
	if _, _, err := m.CalibrateScale([]float64{1}, []float64{1}, -5); err == nil {
		t.Error("expected error for negative p0")
	}
}

func TestCEDPotentialProfitEqualsStandaloneMax(t *testing.T) {
	m := CED{Alpha: 1.4}
	flows := randomFlows(t, 10, 5, m, 20)
	pots, err := m.PotentialProfits(flows)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range flows {
		p := CEDOptimalPrice(f.Cost, m.Alpha)
		want := CEDFlowProfit(f.Valuation, p, f.Cost, m.Alpha)
		if !almostEq(pots[i], want, 1e-9*math.Abs(want)) {
			t.Errorf("flow %d: potential = %v, want %v", i, pots[i], want)
		}
	}
}

func TestCEDMaxProfitDominatesBundles(t *testing.T) {
	m := CED{Alpha: 1.2}
	flows := randomFlows(t, 12, 9, m, 20)
	max, err := m.MaxProfit(flows)
	if err != nil {
		t.Fatal(err)
	}
	partitions := [][][]int{
		OneBundle(12),
		{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}},
		{{0, 11}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}
	for _, parts := range partitions {
		prices, err := m.PriceBundles(flows, parts)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.Profit(flows, parts, prices)
		if err != nil {
			t.Fatal(err)
		}
		if pi > max+1e-9*max {
			t.Fatalf("partition %v profit %v exceeds max %v", parts, pi, max)
		}
	}
}

func TestCEDProfitValidations(t *testing.T) {
	m := CED{Alpha: 2}
	flows := []Flow{{ID: "a", Demand: 1, Valuation: 1, Cost: 1}}
	if _, err := m.Profit(flows, [][]int{{0}}, []float64{1, 2}); err == nil {
		t.Error("expected error for price-count mismatch")
	}
	if _, err := m.Profit(flows, [][]int{{0}}, []float64{-1}); err == nil {
		t.Error("expected error for negative price")
	}
	if _, err := m.Profit(flows, [][]int{{0, 0}}, []float64{1}); err == nil {
		t.Error("expected error for bad partition")
	}
}

func TestCEDBlendedProfit(t *testing.T) {
	m := CED{Alpha: 2}
	flows := []Flow{
		{ID: "a", Demand: 1, Valuation: 2, Cost: 1},
		{ID: "b", Demand: 1, Valuation: 4, Cost: 0.5},
	}
	got, err := m.BlendedProfit(flows, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := CEDFlowProfit(2, 2, 1, 2) + CEDFlowProfit(4, 2, 0.5, 2)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("BlendedProfit = %v, want %v", got, want)
	}
}

func TestCEDSurplusFiniteAndDecreasing(t *testing.T) {
	// Surplus shrinks as price rises.
	s1 := CEDSurplus(1, 1, 2)
	s2 := CEDSurplus(1, 2, 2)
	if !(s1 > s2 && s2 > 0) {
		t.Fatalf("surplus not decreasing: s(1)=%v s(2)=%v", s1, s2)
	}
	// Closed form: v^α p^{1−α}/(α−1) = 1·(1/2)/1 = 0.5 at v=1,p=2,α=2.
	if !almostEq(s2, 0.5, 1e-12) {
		t.Fatalf("surplus = %v, want 0.5", s2)
	}
}
