// Package peering models the direct-peering economics of §2.2.2 and
// Figure 2 of the paper: a customer (e.g. a CDN with its own backbone)
// served at a blended rate R will procure a private link to a nearby
// exchange point whenever the link's amortized cost c_direct undercuts R;
// when c_direct still exceeds what the ISP could profitably have charged
// under tiered pricing — (M+1)·c_ISP + A, with profit margin M and
// accounting overhead A — the bypass is a market failure: capacity is
// deployed at higher social cost than necessary.
package peering

import (
	"errors"
	"fmt"
)

// Inputs describe one customer/ISP interaction at a candidate IXP.
type Inputs struct {
	// BlendedRate is the ISP's single rate R ($/Mbps/month).
	BlendedRate float64
	// ISPCost is the ISP's amortized unit cost c_ISP of carrying the
	// candidate traffic (e.g. the NYC–Boston flows of Figure 2).
	ISPCost float64
	// Margin is the ISP's profit margin M (e.g. 0.3 for 30%).
	Margin float64
	// AccountingOverhead is the per-unit overhead A of implementing the
	// tiered accounting that would be needed to price this traffic
	// separately (§5.2).
	AccountingOverhead float64
	// DirectCost is the customer's amortized unit cost c_direct of
	// procuring the private link.
	DirectCost float64
}

// Outcome classifies one interaction.
type Outcome int

// Outcome values.
const (
	// StayWithISP: the blended rate beats the direct link.
	StayWithISP Outcome = iota
	// EfficientBypass: the customer peers directly AND beats any price
	// the ISP could profitably offer — the bypass is efficient.
	EfficientBypass
	// MarketFailure: the customer peers directly although the ISP could
	// have served the traffic cheaper under tiered pricing — surplus is
	// destroyed by the blended-rate structure.
	MarketFailure
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case StayWithISP:
		return "stay"
	case EfficientBypass:
		return "efficient-bypass"
	case MarketFailure:
		return "market-failure"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TieredFloor returns the lowest rate the ISP can profitably charge for
// the traffic under tiered pricing: (M+1)·c_ISP + A.
func (in Inputs) TieredFloor() float64 {
	return (in.Margin+1)*in.ISPCost + in.AccountingOverhead
}

// Validate checks the inputs.
func (in Inputs) Validate() error {
	if in.BlendedRate <= 0 {
		return errors.New("peering: blended rate must be positive")
	}
	if in.ISPCost <= 0 {
		return errors.New("peering: ISP cost must be positive")
	}
	if in.Margin < 0 {
		return errors.New("peering: margin must be non-negative")
	}
	if in.AccountingOverhead < 0 {
		return errors.New("peering: accounting overhead must be non-negative")
	}
	if in.DirectCost <= 0 {
		return errors.New("peering: direct cost must be positive")
	}
	return nil
}

// Decide classifies the interaction per §2.2.2: the customer bypasses
// when c_direct < R; the bypass is a market failure when additionally
// c_direct > (M+1)·c_ISP + A.
func Decide(in Inputs) (Outcome, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if in.DirectCost >= in.BlendedRate {
		return StayWithISP, nil
	}
	if in.DirectCost > in.TieredFloor() {
		return MarketFailure, nil
	}
	return EfficientBypass, nil
}

// SweepPoint is one point of the Figure 2 counterfactual sweep.
type SweepPoint struct {
	DirectCost float64
	Outcome    Outcome
	// ISPRevenueLoss is the revenue the ISP forgoes when the customer
	// bypasses (R per unit), zero otherwise.
	ISPRevenueLoss float64
	// WelfareLoss is the extra unit cost society pays in the
	// market-failure region (c_direct − tiered floor), zero otherwise.
	WelfareLoss float64
}

// Sweep evaluates Decide over a range of direct-link costs, tracing out
// the stay / failure / efficient-bypass regions of Figure 2.
func Sweep(base Inputs, directCosts []float64) ([]SweepPoint, error) {
	if len(directCosts) == 0 {
		return nil, errors.New("peering: empty sweep")
	}
	out := make([]SweepPoint, 0, len(directCosts))
	for _, c := range directCosts {
		in := base
		in.DirectCost = c
		outcome, err := Decide(in)
		if err != nil {
			return nil, err
		}
		p := SweepPoint{DirectCost: c, Outcome: outcome}
		if outcome != StayWithISP {
			p.ISPRevenueLoss = base.BlendedRate
		}
		if outcome == MarketFailure {
			p.WelfareLoss = c - in.TieredFloor()
		}
		out = append(out, p)
	}
	return out, nil
}
