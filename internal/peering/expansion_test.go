package peering

import (
	"errors"
	"testing"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/topology"
)

// Two destination clusters: "near" at (0,0) with heavy demand and "far"
// at (0,30) with light demand.
func expansionFixture() ([]econ.Flow, func(int) (float64, float64, error)) {
	flows := []econ.Flow{
		{ID: "near1", Demand: 500},
		{ID: "near2", Demand: 300},
		{ID: "far1", Demand: 20},
	}
	coords := func(i int) (float64, float64, error) {
		if i < 2 {
			return 0, 0, nil
		}
		return 0, 30, nil
	}
	return flows, coords
}

func expansionBase() Inputs {
	return Inputs{BlendedRate: 20, ISPCost: 5, Margin: 0.3, AccountingOverhead: 1}
}

func TestPlanExpansionRanksBySavings(t *testing.T) {
	flows, coords := expansionFixture()
	candidates := []Candidate{
		{City: topology.City{Name: "NearIXP", Lat: 0, Lon: 0}, LinkMonthly: 4000, Radius: 50},
		{City: topology.City{Name: "FarIXP", Lat: 0, Lon: 30}, LinkMonthly: 4000, Radius: 50},
	}
	builds, err := PlanExpansion(flows, coords, candidates, expansionBase())
	if err != nil {
		t.Fatal(err)
	}
	if builds[0].IXP != "NearIXP" {
		t.Fatalf("best build = %+v, want NearIXP first", builds[0])
	}
	// NearIXP: offload 800 Mbps, c_direct = 5 → saves (20−5)·800 = 12000.
	if builds[0].OffloadMbps != 800 {
		t.Fatalf("offload = %v", builds[0].OffloadMbps)
	}
	if builds[0].DirectUnitCost != 5 || builds[0].MonthlySavings != 12000 {
		t.Fatalf("build = %+v", builds[0])
	}
	// c_direct = 5 is below the tiered floor 7.5: efficient bypass.
	if builds[0].Outcome != EfficientBypass {
		t.Fatalf("outcome = %v", builds[0].Outcome)
	}
	// FarIXP: offload 20 Mbps, c_direct = 200 > R: stay.
	if builds[1].Outcome != StayWithISP || builds[1].MonthlySavings != 0 {
		t.Fatalf("far build = %+v", builds[1])
	}
}

func TestPlanExpansionMarketFailureBand(t *testing.T) {
	flows, coords := expansionFixture()
	// Link priced so c_direct lands between the tiered floor (7.5) and R
	// (20): the build pays off privately but is a market failure.
	candidates := []Candidate{
		{City: topology.City{Name: "IXP", Lat: 0, Lon: 0}, LinkMonthly: 8000, Radius: 50},
	}
	builds, err := PlanExpansion(flows, coords, candidates, expansionBase())
	if err != nil {
		t.Fatal(err)
	}
	if builds[0].DirectUnitCost != 10 {
		t.Fatalf("c_direct = %v", builds[0].DirectUnitCost)
	}
	if builds[0].Outcome != MarketFailure {
		t.Fatalf("outcome = %v, want market failure", builds[0].Outcome)
	}
	if builds[0].MonthlySavings != (20-10)*800 {
		t.Fatalf("savings = %v", builds[0].MonthlySavings)
	}
}

func TestPlanExpansionZeroOffload(t *testing.T) {
	flows, coords := expansionFixture()
	candidates := []Candidate{
		{City: topology.City{Name: "Nowhere", Lat: 80, Lon: 170}, LinkMonthly: 100, Radius: 10},
	}
	builds, err := PlanExpansion(flows, coords, candidates, expansionBase())
	if err != nil {
		t.Fatal(err)
	}
	if builds[0].OffloadMbps != 0 || builds[0].Outcome != StayWithISP {
		t.Fatalf("build = %+v", builds[0])
	}
}

func TestPlanExpansionErrors(t *testing.T) {
	flows, coords := expansionFixture()
	good := []Candidate{{City: topology.City{Name: "X"}, LinkMonthly: 1, Radius: 1}}
	if _, err := PlanExpansion(nil, coords, good, expansionBase()); err == nil {
		t.Error("expected error for no flows")
	}
	if _, err := PlanExpansion(flows, coords, nil, expansionBase()); err == nil {
		t.Error("expected error for no candidates")
	}
	if _, err := PlanExpansion(flows, coords, good, Inputs{}); err == nil {
		t.Error("expected error for zero blended rate")
	}
	bad := []Candidate{{City: topology.City{Name: "X"}, LinkMonthly: 0, Radius: 1}}
	if _, err := PlanExpansion(flows, coords, bad, expansionBase()); err == nil {
		t.Error("expected error for zero link cost")
	}
	badCoords := func(int) (float64, float64, error) { return 0, 0, errors.New("boom") }
	if _, err := PlanExpansion(flows, badCoords, good, expansionBase()); err == nil {
		t.Error("expected coordinate error to propagate")
	}
}
