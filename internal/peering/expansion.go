package peering

import (
	"errors"
	"fmt"
	"sort"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/topology"
)

// This file models the §2.2.2 operational loop: "Some operators we
// interviewed confirm that they periodically re-evaluate transit bills
// and expand their backbone coverage if they find that having own
// presence in an IXP pays off." Given a customer's traffic, the blended
// rate it pays, and a set of candidate exchange points, the planner
// ranks which IXP builds pay for themselves.

// Candidate is an exchange point the customer could build a private link
// to.
type Candidate struct {
	// City locates the IXP.
	City topology.City
	// LinkMonthly is the amortized monthly cost of the private link from
	// the customer's PoP to this IXP (the numerator of c_direct).
	LinkMonthly float64
	// Radius is the reach of the exchange's peering fabric in miles:
	// destinations within it are served over the link instead of transit.
	Radius float64
}

// Build is the evaluation of one candidate.
type Build struct {
	IXP string
	// OffloadMbps is the traffic the build diverts from transit.
	OffloadMbps float64
	// DirectUnitCost is c_direct = LinkMonthly / OffloadMbps.
	DirectUnitCost float64
	// MonthlySavings is (R − c_direct) × offload; positive means the
	// build pays off.
	MonthlySavings float64
	// Outcome classifies the build against the ISP's tiered floor: a
	// profitable build can still be a market failure if the ISP could
	// have served the traffic cheaper under tiered pricing.
	Outcome Outcome
}

// PlanExpansion evaluates every candidate against the customer's flows.
// dstCoords returns each flow's destination coordinates. base supplies
// the blended rate and the ISP-side economics (cost, margin, accounting
// overhead) used to classify profitable builds as efficient or
// market-failure bypasses; its DirectCost field is ignored. Builds are
// returned sorted by descending savings.
func PlanExpansion(flows []econ.Flow, dstCoords func(i int) (lat, lon float64, err error),
	candidates []Candidate, base Inputs) ([]Build, error) {
	if len(flows) == 0 {
		return nil, errors.New("peering: no flows")
	}
	if len(candidates) == 0 {
		return nil, errors.New("peering: no candidates")
	}
	if base.BlendedRate <= 0 {
		return nil, errors.New("peering: blended rate must be positive")
	}
	// Resolve all destinations once.
	lats := make([]float64, len(flows))
	lons := make([]float64, len(flows))
	for i := range flows {
		lat, lon, err := dstCoords(i)
		if err != nil {
			return nil, fmt.Errorf("peering: flow %q: %w", flows[i].ID, err)
		}
		lats[i], lons[i] = lat, lon
	}

	builds := make([]Build, 0, len(candidates))
	for _, c := range candidates {
		if c.LinkMonthly <= 0 || c.Radius <= 0 {
			return nil, fmt.Errorf("peering: candidate %q needs positive link cost and radius", c.City.Name)
		}
		var offload float64
		for i, f := range flows {
			if topology.HaversineMiles(c.City.Lat, c.City.Lon, lats[i], lons[i]) <= c.Radius {
				offload += f.Demand
			}
		}
		b := Build{IXP: c.City.Name, OffloadMbps: offload}
		if offload == 0 {
			b.DirectUnitCost = 0
			b.Outcome = StayWithISP
			builds = append(builds, b)
			continue
		}
		b.DirectUnitCost = c.LinkMonthly / offload
		in := base
		in.DirectCost = b.DirectUnitCost
		outcome, err := Decide(in)
		if err != nil {
			return nil, fmt.Errorf("peering: candidate %q: %w", c.City.Name, err)
		}
		b.Outcome = outcome
		if outcome != StayWithISP {
			b.MonthlySavings = (base.BlendedRate - b.DirectUnitCost) * offload
		}
		builds = append(builds, b)
	}
	sort.SliceStable(builds, func(i, j int) bool {
		return builds[i].MonthlySavings > builds[j].MonthlySavings
	})
	return builds, nil
}
