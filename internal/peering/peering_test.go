package peering

import (
	"testing"
)

func base() Inputs {
	return Inputs{
		BlendedRate:        20,
		ISPCost:            5,
		Margin:             0.3,
		AccountingOverhead: 1,
		DirectCost:         10,
	}
}

func TestTieredFloor(t *testing.T) {
	in := base()
	// (0.3+1)·5 + 1 = 7.5
	if got := in.TieredFloor(); got != 7.5 {
		t.Fatalf("floor = %v, want 7.5", got)
	}
}

func TestDecideRegions(t *testing.T) {
	cases := []struct {
		direct float64
		want   Outcome
	}{
		{25, StayWithISP},   // direct link costs more than the blend
		{20, StayWithISP},   // indifferent: stays
		{10, MarketFailure}, // below R but above the tiered floor
		{7.5001, MarketFailure},
		{7.4, EfficientBypass}, // cheaper than any profitable ISP offer
		{1, EfficientBypass},
	}
	for _, c := range cases {
		in := base()
		in.DirectCost = c.direct
		got, err := Decide(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("direct=%v: outcome %v, want %v", c.direct, got, c.want)
		}
	}
}

func TestDecideValidation(t *testing.T) {
	bads := []func(*Inputs){
		func(in *Inputs) { in.BlendedRate = 0 },
		func(in *Inputs) { in.ISPCost = -1 },
		func(in *Inputs) { in.Margin = -0.1 },
		func(in *Inputs) { in.AccountingOverhead = -1 },
		func(in *Inputs) { in.DirectCost = 0 },
	}
	for i, mod := range bads {
		in := base()
		mod(&in)
		if _, err := Decide(in); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if StayWithISP.String() != "stay" ||
		EfficientBypass.String() != "efficient-bypass" ||
		MarketFailure.String() != "market-failure" {
		t.Error("outcome names wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should still print")
	}
}

func TestSweepRegionsOrdered(t *testing.T) {
	in := base()
	var costs []float64
	for c := 1.0; c <= 25; c += 0.5 {
		costs = append(costs, c)
	}
	points, err := Sweep(in, costs)
	if err != nil {
		t.Fatal(err)
	}
	// As direct cost rises the outcome must progress
	// efficient-bypass → market-failure → stay, monotonically.
	stage := EfficientBypass
	for _, p := range points {
		switch p.Outcome {
		case EfficientBypass:
			if stage != EfficientBypass {
				t.Fatalf("efficient bypass after %v at c=%v", stage, p.DirectCost)
			}
		case MarketFailure:
			if stage == StayWithISP {
				t.Fatalf("market failure after stay at c=%v", p.DirectCost)
			}
			stage = MarketFailure
		case StayWithISP:
			stage = StayWithISP
		}
	}
	// All three regions must appear for these inputs.
	seen := map[Outcome]bool{}
	for _, p := range points {
		seen[p.Outcome] = true
	}
	for _, o := range []Outcome{StayWithISP, MarketFailure, EfficientBypass} {
		if !seen[o] {
			t.Errorf("region %v missing from sweep", o)
		}
	}
}

func TestSweepLosses(t *testing.T) {
	in := base()
	points, err := Sweep(in, []float64{25, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].ISPRevenueLoss != 0 || points[0].WelfareLoss != 0 {
		t.Errorf("stay point has losses: %+v", points[0])
	}
	if points[1].ISPRevenueLoss != 20 {
		t.Errorf("failure point revenue loss = %v", points[1].ISPRevenueLoss)
	}
	if points[1].WelfareLoss != 10-7.5 {
		t.Errorf("failure point welfare loss = %v", points[1].WelfareLoss)
	}
	if points[2].WelfareLoss != 0 || points[2].ISPRevenueLoss != 20 {
		t.Errorf("efficient bypass point = %+v", points[2])
	}
}

func TestSweepEmpty(t *testing.T) {
	if _, err := Sweep(base(), nil); err == nil {
		t.Error("expected error for empty sweep")
	}
}
