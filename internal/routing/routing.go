// Package routing implements the customer-side half of §5.1: once an
// upstream tags its routes with pricing tiers, "the customer can then use
// the tag to make routing decisions. For example, if a route is tagged as
// an expensive long-distance route, the customer might choose to use its
// own backbone to get closer to destination instead of performing the
// default 'hot-potato' routing."
//
// A Planner owns the customer's backbone topology and, for every
// destination, weighs the default hand-off at the origin PoP (hot potato)
// against hauling the traffic across its own backbone to an egress PoP
// where the upstream's tier price is lower (cold potato).
package routing

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/topology"
)

// Quote returns the upstream's price ($/Mbps/month) for delivering
// traffic handed off at the given egress PoP to a destination at the
// given coordinates.
type Quote func(egress topology.City, dstLat, dstLon float64) (float64, error)

// Planner chooses the cheapest egress per destination.
type Planner struct {
	// Backbone is the customer's own network.
	Backbone *topology.Graph
	// Origin is the PoP where traffic enters the backbone (hot-potato
	// hand-off point).
	Origin string
	// InternalCostPerMbpsMile is the amortized cost of carrying 1 Mbps
	// one mile on the customer's own backbone, in $/month.
	InternalCostPerMbpsMile float64
}

// Decision is the plan for one destination flow.
type Decision struct {
	FlowID string
	// Egress is the chosen hand-off PoP.
	Egress string
	// HotPotatoCost is the $/Mbps cost of handing off at the origin.
	HotPotatoCost float64
	// ChosenCost is the $/Mbps cost of the chosen egress (upstream price
	// plus internal haul).
	ChosenCost float64
	// ColdPotato is true when the chosen egress differs from the origin.
	ColdPotato bool
}

// Summary aggregates a plan over the demand distribution.
type Summary struct {
	// HotPotatoMonthly and PlannedMonthly are total $/month at observed
	// demands.
	HotPotatoMonthly float64
	PlannedMonthly   float64
	// SavingsFraction is 1 − Planned/HotPotato.
	SavingsFraction float64
	// ColdPotatoFlows counts destinations routed via a remote egress.
	ColdPotatoFlows int
}

// Plan evaluates every flow. dstCoords returns the destination
// coordinates for flow i (from GeoIP or the trace metadata).
func (p *Planner) Plan(flows []econ.Flow, dstCoords func(i int) (lat, lon float64, err error),
	quote Quote) ([]Decision, Summary, error) {
	if p.Backbone == nil {
		return nil, Summary{}, errors.New("routing: planner needs a backbone graph")
	}
	if p.InternalCostPerMbpsMile < 0 {
		return nil, Summary{}, errors.New("routing: negative internal cost")
	}
	origin, ok := p.Backbone.City(p.Origin)
	if !ok {
		return nil, Summary{}, fmt.Errorf("routing: origin %q not in backbone", p.Origin)
	}
	if len(flows) == 0 {
		return nil, Summary{}, errors.New("routing: no flows")
	}

	// Haul cost from the origin to every candidate egress.
	type egress struct {
		city topology.City
		haul float64 // $/Mbps
	}
	var egresses []egress
	for _, c := range p.Backbone.Cities() {
		var miles float64
		if c.Name != origin.Name {
			path, err := p.Backbone.ShortestPath(origin.Name, c.Name)
			if err != nil {
				continue // unreachable PoPs are not candidates
			}
			miles = path.Miles
		}
		egresses = append(egresses, egress{city: c, haul: miles * p.InternalCostPerMbpsMile})
	}

	decisions := make([]Decision, len(flows))
	var summary Summary
	for i, f := range flows {
		lat, lon, err := dstCoords(i)
		if err != nil {
			return nil, Summary{}, fmt.Errorf("routing: flow %q: %w", f.ID, err)
		}
		hot, err := quote(origin, lat, lon)
		if err != nil {
			return nil, Summary{}, fmt.Errorf("routing: quoting %q at origin: %w", f.ID, err)
		}
		best := Decision{FlowID: f.ID, Egress: origin.Name, HotPotatoCost: hot, ChosenCost: hot}
		for _, e := range egresses {
			price, err := quote(e.city, lat, lon)
			if err != nil {
				return nil, Summary{}, fmt.Errorf("routing: quoting %q at %s: %w", f.ID, e.city.Name, err)
			}
			if c := price + e.haul; c < best.ChosenCost {
				best.ChosenCost = c
				best.Egress = e.city.Name
				best.ColdPotato = e.city.Name != origin.Name
			}
		}
		decisions[i] = best
		summary.HotPotatoMonthly += hot * f.Demand
		summary.PlannedMonthly += best.ChosenCost * f.Demand
		if best.ColdPotato {
			summary.ColdPotatoFlows++
		}
	}
	if summary.HotPotatoMonthly > 0 {
		summary.SavingsFraction = 1 - summary.PlannedMonthly/summary.HotPotatoMonthly
	}
	return decisions, summary, nil
}

// BandQuote builds a Quote from a tier structure: each tier's distance
// band is the [min, max] distance of its member flows, and a query is
// priced at the tier whose band contains the egress→destination
// distance (nearest band edge for gaps). This is exactly the information
// the §5.1 tier tags expose to the customer.
func BandQuote(flows []econ.Flow, partition [][]int, prices []float64) (Quote, error) {
	if len(partition) == 0 || len(partition) != len(prices) {
		return nil, errors.New("routing: partition/prices mismatch")
	}
	type band struct {
		lo, hi, price float64
	}
	bands := make([]band, 0, len(partition))
	for b, block := range partition {
		if len(block) == 0 {
			return nil, fmt.Errorf("routing: empty tier %d", b)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range block {
			if i < 0 || i >= len(flows) {
				return nil, fmt.Errorf("routing: tier %d references flow %d", b, i)
			}
			lo = math.Min(lo, flows[i].Distance)
			hi = math.Max(hi, flows[i].Distance)
		}
		bands = append(bands, band{lo: lo, hi: hi, price: prices[b]})
	}
	sort.Slice(bands, func(i, j int) bool { return bands[i].lo < bands[j].lo })

	return func(egress topology.City, dstLat, dstLon float64) (float64, error) {
		d := topology.HaversineMiles(egress.Lat, egress.Lon, dstLat, dstLon)
		bestPrice, bestGap := 0.0, math.Inf(1)
		for _, bd := range bands {
			var gap float64
			switch {
			case d < bd.lo:
				gap = bd.lo - d
			case d > bd.hi:
				gap = d - bd.hi
			}
			if gap < bestGap {
				bestGap = gap
				bestPrice = bd.price
			}
			if gap == 0 {
				break
			}
		}
		return bestPrice, nil
	}, nil
}
