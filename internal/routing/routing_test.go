package routing

import (
	"errors"
	"math"
	"testing"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/topology"
)

// testBackbone is a 3-PoP line: West(0,0) — Mid(0,10) — East(0,20).
func testBackbone(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, c := range []topology.City{
		{Name: "West", Lat: 0, Lon: 0},
		{Name: "Mid", Lat: 0, Lon: 10},
		{Name: "East", Lat: 0, Lon: 20},
	} {
		if err := g.AddCity(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"West", "Mid"}, {"Mid", "East"}} {
		if err := g.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// distanceQuote prices purely by egress→destination distance.
func distanceQuote(perMile float64) Quote {
	return func(egress topology.City, lat, lon float64) (float64, error) {
		return perMile * topology.HaversineMiles(egress.Lat, egress.Lon, lat, lon), nil
	}
}

func eastFlows() []econ.Flow {
	return []econ.Flow{{ID: "east-dst", Demand: 100, Valuation: 1, Cost: 1}}
}

// eastCoords puts the destination right at the East PoP.
func eastCoords(int) (float64, float64, error) { return 0, 20, nil }

func TestPlanColdPotatoWhenBackboneCheap(t *testing.T) {
	p := &Planner{Backbone: testBackbone(t), Origin: "West", InternalCostPerMbpsMile: 0.0001}
	decisions, sum, err := p.Plan(eastFlows(), eastCoords, distanceQuote(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !decisions[0].ColdPotato || decisions[0].Egress != "East" {
		t.Fatalf("decision = %+v, want cold potato via East", decisions[0])
	}
	if !(sum.SavingsFraction > 0.5) {
		t.Fatalf("savings = %v, want large", sum.SavingsFraction)
	}
	if sum.ColdPotatoFlows != 1 {
		t.Fatalf("cold potato count = %d", sum.ColdPotatoFlows)
	}
}

func TestPlanHotPotatoWhenBackboneExpensive(t *testing.T) {
	p := &Planner{Backbone: testBackbone(t), Origin: "West", InternalCostPerMbpsMile: 100}
	decisions, sum, err := p.Plan(eastFlows(), eastCoords, distanceQuote(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if decisions[0].ColdPotato {
		t.Fatalf("decision = %+v, want hot potato", decisions[0])
	}
	if sum.SavingsFraction != 0 {
		t.Fatalf("savings = %v, want 0", sum.SavingsFraction)
	}
	if decisions[0].ChosenCost != decisions[0].HotPotatoCost {
		t.Fatal("hot potato cost mismatch")
	}
}

func TestPlanZeroInternalCostPicksGlobalCheapest(t *testing.T) {
	// With a free backbone the planner must always quote from the PoP
	// nearest the destination.
	p := &Planner{Backbone: testBackbone(t), Origin: "West", InternalCostPerMbpsMile: 0}
	decisions, _, err := p.Plan(eastFlows(), eastCoords, distanceQuote(1))
	if err != nil {
		t.Fatal(err)
	}
	if decisions[0].Egress != "East" || decisions[0].ChosenCost > 1e-6 {
		t.Fatalf("decision = %+v, want free delivery via East", decisions[0])
	}
}

func TestPlanNeverWorseThanHotPotato(t *testing.T) {
	p := &Planner{Backbone: testBackbone(t), Origin: "Mid", InternalCostPerMbpsMile: 0.003}
	flows := []econ.Flow{
		{ID: "a", Demand: 10, Valuation: 1, Cost: 1},
		{ID: "b", Demand: 20, Valuation: 1, Cost: 1},
		{ID: "c", Demand: 5, Valuation: 1, Cost: 1},
	}
	coords := func(i int) (float64, float64, error) {
		return float64(i * 3), float64(i * 7), nil
	}
	decisions, sum, err := p.Plan(flows, coords, distanceQuote(0.02))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decisions {
		if d.ChosenCost > d.HotPotatoCost+1e-12 {
			t.Fatalf("plan worse than hot potato: %+v", d)
		}
	}
	if sum.PlannedMonthly > sum.HotPotatoMonthly+1e-9 {
		t.Fatal("planned total exceeds hot potato total")
	}
}

func TestPlanErrors(t *testing.T) {
	g := testBackbone(t)
	quote := distanceQuote(1)
	if _, _, err := (&Planner{Origin: "West"}).Plan(eastFlows(), eastCoords, quote); err == nil {
		t.Error("expected error for nil backbone")
	}
	if _, _, err := (&Planner{Backbone: g, Origin: "Nowhere"}).Plan(eastFlows(), eastCoords, quote); err == nil {
		t.Error("expected error for unknown origin")
	}
	if _, _, err := (&Planner{Backbone: g, Origin: "West", InternalCostPerMbpsMile: -1}).Plan(eastFlows(), eastCoords, quote); err == nil {
		t.Error("expected error for negative internal cost")
	}
	if _, _, err := (&Planner{Backbone: g, Origin: "West"}).Plan(nil, eastCoords, quote); err == nil {
		t.Error("expected error for no flows")
	}
	badCoords := func(int) (float64, float64, error) { return 0, 0, errors.New("boom") }
	if _, _, err := (&Planner{Backbone: g, Origin: "West"}).Plan(eastFlows(), badCoords, quote); err == nil {
		t.Error("expected coordinate error to propagate")
	}
	badQuote := func(topology.City, float64, float64) (float64, error) { return 0, errors.New("no quote") }
	if _, _, err := (&Planner{Backbone: g, Origin: "West"}).Plan(eastFlows(), eastCoords, badQuote); err == nil {
		t.Error("expected quote error to propagate")
	}
}

func TestBandQuote(t *testing.T) {
	flows := []econ.Flow{
		{ID: "m1", Distance: 5}, {ID: "m2", Distance: 20},
		{ID: "f1", Distance: 800}, {ID: "f2", Distance: 2000},
	}
	partition := [][]int{{0, 1}, {2, 3}}
	prices := []float64{10, 30}
	quote, err := BandQuote(flows, partition, prices)
	if err != nil {
		t.Fatal(err)
	}
	at := func(d float64) float64 {
		// Egress at (0,0); destination due north at d miles.
		lat := d / 69.055 // ≈ miles per degree latitude
		p, err := quote(topology.City{Lat: 0, Lon: 0}, lat, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := at(10); got != 10 {
		t.Errorf("price(10mi) = %v, want 10 (inside local band)", got)
	}
	if got := at(1500); got != 30 {
		t.Errorf("price(1500mi) = %v, want 30 (inside far band)", got)
	}
	// Gap between bands: nearest edge wins.
	if got := at(100); got != 10 {
		t.Errorf("price(100mi) = %v, want 10 (closer to local band)", got)
	}
	if got := at(700); got != 30 {
		t.Errorf("price(700mi) = %v, want 30 (closer to far band)", got)
	}
	// Outside all bands: clamps to the nearest.
	if got := at(5000); got != 30 {
		t.Errorf("price(5000mi) = %v, want 30", got)
	}
}

func TestBandQuoteErrors(t *testing.T) {
	flows := []econ.Flow{{Distance: 1}}
	if _, err := BandQuote(flows, nil, nil); err == nil {
		t.Error("expected error for empty partition")
	}
	if _, err := BandQuote(flows, [][]int{{0}}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched prices")
	}
	if _, err := BandQuote(flows, [][]int{{}}, []float64{1}); err == nil {
		t.Error("expected error for empty tier")
	}
	if _, err := BandQuote(flows, [][]int{{5}}, []float64{1}); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

func TestBandQuoteDegreeMath(t *testing.T) {
	// Sanity: one degree of latitude ≈ 69 miles in the haversine model.
	d := topology.HaversineMiles(0, 0, 1, 0)
	if math.Abs(d-69.05) > 0.5 {
		t.Fatalf("1° latitude = %v miles", d)
	}
}
