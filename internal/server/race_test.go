package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tieredpricing/internal/stream"
)

// swapSource is a SnapshotSource whose snapshot is swapped from another
// goroutine, the shape of the repricer's atomic publish.
type swapSource struct {
	p atomic.Pointer[stream.Snapshot]
}

func (s *swapSource) Current() *stream.Snapshot { return s.p.Load() }

// TestMetricsScrapeVsSwapRace pins down the scrape-vs-swap safety of the
// hand-rolled Prometheus counters and histograms: /v1/quote and /metrics
// are hammered from many goroutines while a publisher swaps snapshots
// and feeds re-price telemetry, exactly the interleaving a live tierd
// sees between its repricer tick and a scrape during a load test. The
// test's assertions are modest (no torn scrape, counters consistent at
// quiescence) — its real teeth are `go test -race`, which the ci.sh gate
// always runs it under.
func TestMetricsScrapeVsSwapRace(t *testing.T) {
	snapA := makeSnapshot(t)
	// A second epoch of the same market, so the swap changes the pointer
	// the way consecutive reprices do.
	snapB := makeSnapshot(t)

	src := &swapSource{}
	src.p.Store(snapA)
	s, err := New(Config{
		Snapshots: src,
		Metrics:   NewMetrics(),
		Ingest:    func() IngestStats { return IngestStats{Packets: 1, Records: 2} },
		// A tiny staleness bound keeps the degraded path (stale counter,
		// headers) in play under the race detector too.
		MaxSnapshotAge: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := s.Handler()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup

	// Publisher: swap snapshots and record re-price telemetry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			if i%2 == 0 {
				src.p.Store(snapB)
			} else {
				src.p.Store(snapA)
			}
			s.proc.ObserveReprice(0.001, i%5 == 0)
			s.proc.RepriceFlows.Set(int64(i))
			s.proc.ConsecutiveFailures.Set(int64(i % 3))
		}
	}()

	hammer := func(path string) {
		defer wg.Done()
		for ctx.Err() == nil {
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if path == "/metrics" {
				// A torn exposition (histogram header without its series)
				// would mean the scrape saw a half-written metric set.
				body := rec.Body.String()
				if strings.Contains(body, "tierd_quote_seconds") &&
					!strings.Contains(body, "tierd_quote_seconds_count") {
					t.Error("torn /metrics exposition")
					return
				}
			}
		}
	}
	for k := 0; k < 4; k++ {
		wg.Add(2)
		go hammer("/v1/quote?src=10.0.0.1&dst=10.1.0.1")
		go hammer("/metrics")
	}
	wg.Wait()

	// At quiescence the per-request counter and the latency histogram
	// must have seen exactly the same requests.
	if got, want := s.proc.QuoteSeconds.Count(), s.proc.QuoteRequests.Value(); got != want {
		t.Errorf("quote latency histogram saw %d requests, counter saw %d", got, want)
	}
	if s.proc.QuoteStale.Value() == 0 {
		t.Error("staleness policy never fired despite 1ns bound")
	}
	if s.proc.QuoteRequests.Value() == 0 || s.proc.MetricsRequests.Value() == 0 {
		t.Error("hammers did not run")
	}
}
