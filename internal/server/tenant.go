package server

import (
	"fmt"
	"io"
	"time"

	"tieredpricing/internal/stream"
)

// RateLimiter admits or rejects one request on a tenant's quote path.
// A rejected request carries the Retry-After hint. tenant.Bucket
// implements it (including on a nil receiver, which admits everything).
type RateLimiter interface {
	Allow() (ok bool, retryAfter time.Duration)
}

// Tenant is one tenant's serving handle: the snapshot source, metric
// set, quota and telemetry callbacks the HTTP layer serves that tenant
// from. In single-tenant mode the server synthesizes exactly one from
// the legacy Config fields; in fleet mode cmd/tierd builds one per
// configured tenant.
type Tenant struct {
	// ID names the tenant on the API: /v1/t/{ID}/... It must be unique
	// across Config.Tenants.
	ID string
	// Snapshots supplies the tenant's serving snapshot (required).
	Snapshots SnapshotSource
	// Metrics is the tenant's telemetry set; nil builds a fresh one.
	Metrics *Metrics
	// Ingest reports the tenant's routed-ingest counters: Packets is the
	// export datagrams the registry routed here, the rest are the
	// tenant's window counters. Nil omits the tenant's ingest rows.
	Ingest func() IngestStats
	// Durability reports the tenant's WAL/checkpoint counters; nil when
	// the tenant runs without a durability namespace.
	Durability func() DurabilityStats
	// History supplies the tenant's tier-table time series (the ring).
	History func() []HistoryEntry
	// HistoryScan serves deep /v1/history range queries from the
	// durable store; nil falls back to filtering History's ring.
	HistoryScan func(q HistoryQuery) ([]HistoryEntry, error)
	// Limiter guards the tenant's quote path; nil admits everything.
	Limiter RateLimiter
	// MaxSnapshotAge is the tenant's staleness policy (0 disables).
	MaxSnapshotAge time.Duration
	// Weight is the tenant's configured share of the reprice pool,
	// exported so dashboards can normalize per-tenant reprice rates.
	Weight float64
	// RateQPS and RateBurst mirror the limiter's configuration for the
	// exposition (0 = unlimited).
	RateQPS   float64
	RateBurst float64
}

// SchedFlowStats is one tenant's reprice-scheduler telemetry as the
// /metrics exposition consumes it.
type SchedFlowStats struct {
	Tenant          string
	Weight          float64
	Dispatched      uint64
	Coalesced       uint64
	Starved         uint64
	LastWaitSeconds float64
	LastRunSeconds  float64
	CostSeconds     float64
}

// SchedStats is a point-in-time view of the weighted-fair reprice
// scheduler for /metrics.
type SchedStats struct {
	QueueDepth int
	Dispatched uint64
	Coalesced  uint64
	Starved    uint64
	Flows      []SchedFlowStats
}

// labelFor renders the tenant label pair used on every per-tenant
// sample in the fleet exposition.
func labelFor(t *Tenant) string { return fmt.Sprintf("tenant=%q", t.ID) }

// writeFleetMetrics renders the multi-tenant exposition: process-wide
// samples unlabeled, every per-tenant metric labeled {tenant="id"} with
// one HELP/TYPE header per metric name. Single-tenant mode never takes
// this path — its exposition stays byte-compatible with prior releases.
func (s *Server) writeFleetMetrics(w io.Writer) {
	// Process-wide request counters: health and metrics serve the whole
	// fleet, so they stay unlabeled.
	fmt.Fprintf(w, "# HELP tierd_health_requests_total Health checks served.\n# TYPE tierd_health_requests_total counter\ntierd_health_requests_total %d\n", s.proc.HealthRequests.Value())
	fmt.Fprintf(w, "# HELP tierd_metrics_requests_total Metric scrapes served.\n# TYPE tierd_metrics_requests_total counter\ntierd_metrics_requests_total %d\n", s.proc.MetricsRequests.Value())

	// Per-tenant request/reprice counters.
	counters := []struct {
		name, help string
		get        func(t *Tenant) uint64
	}{
		{"tierd_quote_requests_total", "Quote requests served.", func(t *Tenant) uint64 { return t.Metrics.QuoteRequests.Value() }},
		{"tierd_quote_misses_total", "Quote requests with no matching bucket or route.", func(t *Tenant) uint64 { return t.Metrics.QuoteMisses.Value() }},
		{"tierd_tiers_requests_total", "Tier table requests served.", func(t *Tenant) uint64 { return t.Metrics.TiersRequests.Value() }},
		{"tierd_history_requests_total", "Tier-table history requests served.", func(t *Tenant) uint64 { return t.Metrics.HistoryRequests.Value() }},
		{"tierd_quote_stale_total", "Quotes served from a snapshot beyond the staleness policy.", func(t *Tenant) uint64 { return t.Metrics.QuoteStale.Value() }},
		{"tierd_quote_rate_limited_total", "Quote requests rejected by the tenant's rate limit (429s).", func(t *Tenant) uint64 { return t.Metrics.QuoteRateLimited.Value() }},
		{"tierd_reprices_total", "Re-price attempts.", func(t *Tenant) uint64 { return t.Metrics.Reprices.Value() }},
		{"tierd_reprice_failures_total", "Re-price attempts that failed (retries and ingest gaps included).", func(t *Tenant) uint64 { return t.Metrics.RepriceFailures.Value() }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
		for _, t := range s.tenants {
			fmt.Fprintf(w, "%s{%s} %d\n", c.name, labelFor(t), c.get(t))
		}
	}

	gauges := []struct {
		name, help string
		get        func(t *Tenant) int64
	}{
		{"tierd_reprice_flows", "Flows priced by the most recent re-price.", func(t *Tenant) int64 { return t.Metrics.RepriceFlows.Value() }},
		{"tierd_reprice_consecutive_failures", "Consecutive failed re-price attempts (0 while healthy).", func(t *Tenant) int64 { return t.Metrics.ConsecutiveFailures.Value() }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, t := range s.tenants {
			fmt.Fprintf(w, "%s{%s} %d\n", g.name, labelFor(t), g.get(t))
		}
	}

	fmt.Fprintf(w, "# HELP tierd_quote_seconds Server-side quote latency.\n# TYPE tierd_quote_seconds histogram\n")
	for _, t := range s.tenants {
		_ = t.Metrics.QuoteSeconds.write(w, "tierd_quote_seconds", labelFor(t))
	}
	fmt.Fprintf(w, "# HELP tierd_reprice_seconds Re-price latency.\n# TYPE tierd_reprice_seconds histogram\n")
	for _, t := range s.tenants {
		_ = t.Metrics.RepriceSeconds.write(w, "tierd_reprice_seconds", labelFor(t))
	}

	// Tenant configuration gauges: quota and reprice weight.
	fmt.Fprintf(w, "# HELP tierd_tenant_weight Configured weighted-fair share of the reprice pool.\n# TYPE tierd_tenant_weight gauge\n")
	for _, t := range s.tenants {
		fmt.Fprintf(w, "tierd_tenant_weight{%s} %g\n", labelFor(t), t.Weight)
	}
	fmt.Fprintf(w, "# HELP tierd_quote_rate_limit_qps Configured sustained quote quota (0 = unlimited).\n# TYPE tierd_quote_rate_limit_qps gauge\n")
	for _, t := range s.tenants {
		fmt.Fprintf(w, "tierd_quote_rate_limit_qps{%s} %g\n", labelFor(t), t.RateQPS)
	}
	fmt.Fprintf(w, "# HELP tierd_quote_rate_limit_burst Configured quote burst capacity (0 = unlimited).\n# TYPE tierd_quote_rate_limit_burst gauge\n")
	for _, t := range s.tenants {
		fmt.Fprintf(w, "tierd_quote_rate_limit_burst{%s} %g\n", labelFor(t), t.RateBurst)
	}

	// Ingest: the collector's datagram counters are process-wide (one
	// UDP socket feeds the router); record counters are per tenant.
	if s.ingest != nil {
		in := s.ingest()
		fmt.Fprintf(w, "# HELP tierd_ingest_packets_total Export datagrams received.\n# TYPE tierd_ingest_packets_total counter\ntierd_ingest_packets_total %d\n", in.Packets)
		fmt.Fprintf(w, "# HELP tierd_ingest_bad_packets_total Datagrams that failed to decode.\n# TYPE tierd_ingest_bad_packets_total counter\ntierd_ingest_bad_packets_total %d\n", in.BadPackets)
		fmt.Fprintf(w, "# HELP tierd_ingest_socket_drops_total Datagrams the kernel dropped on full UDP receive buffers.\n# TYPE tierd_ingest_socket_drops_total counter\ntierd_ingest_socket_drops_total %d\n", in.SocketDrops)
	}
	type tenantIngest struct {
		t  *Tenant
		in IngestStats
	}
	var ti []tenantIngest
	for _, t := range s.tenants {
		if t.Ingest != nil {
			ti = append(ti, tenantIngest{t, t.Ingest()})
		}
	}
	if len(ti) > 0 {
		fmt.Fprintf(w, "# HELP tierd_ingest_routed_packets_total Export datagrams routed to the tenant.\n# TYPE tierd_ingest_routed_packets_total counter\n")
		for _, e := range ti {
			fmt.Fprintf(w, "tierd_ingest_routed_packets_total{%s} %d\n", labelFor(e.t), e.in.Packets)
		}
		fmt.Fprintf(w, "# HELP tierd_ingest_records_total Flow records ingested into the window.\n# TYPE tierd_ingest_records_total counter\n")
		for _, e := range ti {
			fmt.Fprintf(w, "tierd_ingest_records_total{%s} %d\n", labelFor(e.t), e.in.Records)
		}
		fmt.Fprintf(w, "# HELP tierd_ingest_duplicates_total Cross-router duplicates suppressed.\n# TYPE tierd_ingest_duplicates_total counter\n")
		for _, e := range ti {
			fmt.Fprintf(w, "tierd_ingest_duplicates_total{%s} %d\n", labelFor(e.t), e.in.Duplicates)
		}
		fmt.Fprintf(w, "# HELP tierd_ingest_dropped_total Records with no aggregation bucket.\n# TYPE tierd_ingest_dropped_total counter\n")
		for _, e := range ti {
			fmt.Fprintf(w, "tierd_ingest_dropped_total{%s} %d\n", labelFor(e.t), e.in.Dropped)
		}
		shards := false
		for _, e := range ti {
			if len(e.in.ShardRecords) > 0 {
				shards = true
				break
			}
		}
		if shards {
			fmt.Fprintf(w, "# HELP tierd_ingest_shard_records_total Flow records ingested per window shard.\n# TYPE tierd_ingest_shard_records_total counter\n")
			for _, e := range ti {
				for i, n := range e.in.ShardRecords {
					fmt.Fprintf(w, "tierd_ingest_shard_records_total{%s,shard=\"%d\"} %d\n", labelFor(e.t), i, n)
				}
			}
		}
	}

	fmt.Fprintf(w, "# HELP tierd_build_info Build metadata of the running binary (value is always 1).\n# TYPE tierd_build_info gauge\ntierd_build_info{revision=%q,go_version=%q} 1\n",
		s.build.Revision, s.build.GoVersion)

	// Weighted-fair reprice scheduler.
	if s.sched != nil {
		st := s.sched()
		fmt.Fprintf(w, "# HELP tierd_sched_queue_depth Reprice jobs queued (bounded by the tenant count).\n# TYPE tierd_sched_queue_depth gauge\ntierd_sched_queue_depth %d\n", st.QueueDepth)
		fmt.Fprintf(w, "# HELP tierd_sched_dispatched_total Reprice jobs dispatched by the scheduler.\n# TYPE tierd_sched_dispatched_total counter\ntierd_sched_dispatched_total %d\n", st.Dispatched)
		fmt.Fprintf(w, "# HELP tierd_sched_coalesced_total Reprice submissions coalesced into an already-queued job.\n# TYPE tierd_sched_coalesced_total counter\ntierd_sched_coalesced_total %d\n", st.Coalesced)
		fmt.Fprintf(w, "# HELP tierd_sched_starved_total Jobs dispatched by the starvation bound rather than their fair tag.\n# TYPE tierd_sched_starved_total counter\ntierd_sched_starved_total %d\n", st.Starved)
		if len(st.Flows) > 0 {
			fmt.Fprintf(w, "# HELP tierd_sched_tenant_dispatched_total Reprice jobs dispatched for the tenant.\n# TYPE tierd_sched_tenant_dispatched_total counter\n")
			for _, f := range st.Flows {
				fmt.Fprintf(w, "tierd_sched_tenant_dispatched_total{tenant=%q} %d\n", f.Tenant, f.Dispatched)
			}
			fmt.Fprintf(w, "# HELP tierd_sched_tenant_coalesced_total Reprice submissions coalesced for the tenant.\n# TYPE tierd_sched_tenant_coalesced_total counter\n")
			for _, f := range st.Flows {
				fmt.Fprintf(w, "tierd_sched_tenant_coalesced_total{tenant=%q} %d\n", f.Tenant, f.Coalesced)
			}
			fmt.Fprintf(w, "# HELP tierd_sched_tenant_starved_total Starvation-bound dispatches for the tenant.\n# TYPE tierd_sched_tenant_starved_total counter\n")
			for _, f := range st.Flows {
				fmt.Fprintf(w, "tierd_sched_tenant_starved_total{tenant=%q} %d\n", f.Tenant, f.Starved)
			}
			fmt.Fprintf(w, "# HELP tierd_sched_tenant_last_wait_seconds Queue wait of the tenant's last dispatched job.\n# TYPE tierd_sched_tenant_last_wait_seconds gauge\n")
			for _, f := range st.Flows {
				fmt.Fprintf(w, "tierd_sched_tenant_last_wait_seconds{tenant=%q} %g\n", f.Tenant, f.LastWaitSeconds)
			}
			fmt.Fprintf(w, "# HELP tierd_sched_tenant_cost_seconds Smoothed reprice cost estimate driving the tenant's fair tags.\n# TYPE tierd_sched_tenant_cost_seconds gauge\n")
			for _, f := range st.Flows {
				fmt.Fprintf(w, "tierd_sched_tenant_cost_seconds{tenant=%q} %g\n", f.Tenant, f.CostSeconds)
			}
		}
	}

	// Per-tenant durability namespaces.
	type tenantDur struct {
		t *Tenant
		d DurabilityStats
	}
	var td []tenantDur
	for _, t := range s.tenants {
		if t.Durability != nil {
			td = append(td, tenantDur{t, t.Durability()})
		}
	}
	if len(td) > 0 {
		fmt.Fprintf(w, "# HELP tierd_wal_bytes_total Bytes appended to the write-ahead log.\n# TYPE tierd_wal_bytes_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_wal_bytes_total{%s} %d\n", labelFor(e.t), e.d.WALBytes)
		}
		fmt.Fprintf(w, "# HELP tierd_wal_entries_total Entries appended to the write-ahead log.\n# TYPE tierd_wal_entries_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_wal_entries_total{%s} %d\n", labelFor(e.t), e.d.WALEntries)
		}
		fmt.Fprintf(w, "# HELP tierd_wal_fsyncs_total WAL fsync syscalls issued.\n# TYPE tierd_wal_fsyncs_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_wal_fsyncs_total{%s} %d\n", labelFor(e.t), e.d.WALFsyncs)
		}
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_seconds WAL fsync latency.\n# TYPE tierd_wal_fsync_seconds summary\n")
		for _, e := range td {
			l := labelFor(e.t)
			fmt.Fprintf(w, "tierd_wal_fsync_seconds{%s,quantile=\"0.5\"} %g\n", l, e.d.WALFsyncP50)
			fmt.Fprintf(w, "tierd_wal_fsync_seconds{%s,quantile=\"0.99\"} %g\n", l, e.d.WALFsyncP99)
			fmt.Fprintf(w, "tierd_wal_fsync_seconds_sum{%s} %g\n", l, e.d.WALFsyncSum)
			fmt.Fprintf(w, "tierd_wal_fsync_seconds_count{%s} %d\n", l, e.d.WALFsyncs)
		}
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_max_seconds Worst WAL fsync latency observed.\n# TYPE tierd_wal_fsync_max_seconds gauge\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_wal_fsync_max_seconds{%s} %g\n", labelFor(e.t), e.d.WALFsyncMax)
		}
		fmt.Fprintf(w, "# HELP tierd_checkpoints_total Checkpoints written since boot.\n# TYPE tierd_checkpoints_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_checkpoints_total{%s} %d\n", labelFor(e.t), e.d.Checkpoints)
		}
		aged := false
		for _, e := range td {
			if e.d.CheckpointAge >= 0 {
				aged = true
			}
		}
		if aged {
			fmt.Fprintf(w, "# HELP tierd_checkpoint_age_seconds Seconds since the newest checkpoint.\n# TYPE tierd_checkpoint_age_seconds gauge\n")
			for _, e := range td {
				if e.d.CheckpointAge >= 0 {
					fmt.Fprintf(w, "tierd_checkpoint_age_seconds{%s} %g\n", labelFor(e.t), e.d.CheckpointAge)
				}
			}
		}
		fmt.Fprintf(w, "# HELP tierd_recovery_replayed_total WAL entries replayed during boot recovery.\n# TYPE tierd_recovery_replayed_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_recovery_replayed_total{%s} %d\n", labelFor(e.t), e.d.RecoveryReplayed)
		}
		fmt.Fprintf(w, "# HELP tierd_recovery_torn_bytes_total Trailing WAL bytes recovery distrusted and discarded.\n# TYPE tierd_recovery_torn_bytes_total counter\n")
		for _, e := range td {
			fmt.Fprintf(w, "tierd_recovery_torn_bytes_total{%s} %d\n", labelFor(e.t), e.d.RecoveryTornBytes)
		}
	}

	// Shared durable history store and config hot-reload state: one per
	// process, so both stay unlabeled.
	s.writeHistoryStoreMetrics(w)
	s.writeReloadMetrics(w)

	// Per-tenant serving snapshots.
	type tenantSnap struct {
		t    *Tenant
		snap *stream.Snapshot
	}
	var ts []tenantSnap
	for _, t := range s.tenants {
		if snap := t.Snapshots.Current(); snap != nil {
			ts = append(ts, tenantSnap{t, snap})
		}
	}
	if len(ts) > 0 {
		fmt.Fprintf(w, "# HELP tierd_snapshot_epoch Epoch of the serving snapshot.\n# TYPE tierd_snapshot_epoch gauge\n")
		for _, e := range ts {
			fmt.Fprintf(w, "tierd_snapshot_epoch{%s} %d\n", labelFor(e.t), e.snap.Epoch)
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_flows Flows priced in the serving snapshot.\n# TYPE tierd_snapshot_flows gauge\n")
		for _, e := range ts {
			fmt.Fprintf(w, "tierd_snapshot_flows{%s} %d\n", labelFor(e.t), e.snap.Table.Flows)
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_tiers Tiers in the serving snapshot.\n# TYPE tierd_snapshot_tiers gauge\n")
		for _, e := range ts {
			fmt.Fprintf(w, "tierd_snapshot_tiers{%s} %d\n", labelFor(e.t), len(e.snap.Table.Tiers))
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_age_seconds Age of the serving snapshot.\n# TYPE tierd_snapshot_age_seconds gauge\n")
		for _, e := range ts {
			fmt.Fprintf(w, "tierd_snapshot_age_seconds{%s} %g\n", labelFor(e.t), s.snapshotAge(e.snap).Seconds())
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_stale Whether the serving snapshot exceeds the staleness policy (1 = degraded).\n# TYPE tierd_snapshot_stale gauge\n")
		for _, e := range ts {
			stale := 0
			if s.staleFor(e.t, e.snap) {
				stale = 1
			}
			fmt.Fprintf(w, "tierd_snapshot_stale{%s} %d\n", labelFor(e.t), stale)
		}
	}
}
