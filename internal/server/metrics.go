// Package server is tierd's HTTP face: the quote/tiers API served from
// the repricer's atomic snapshots, liveness, and a dependency-free
// Prometheus text exposition of request, ingest and re-price telemetry.
package server

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. the size of the last
// re-priced flow window), safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style. Observations are lock-free.
type Histogram struct {
	bounds []float64       // ascending upper bounds, seconds
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("server: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// write renders the histogram in Prometheus exposition format. labels,
// when non-empty, is a rendered label pair list (e.g. `tenant="a"`)
// prefixed onto every sample's label set — the multi-tenant exposition
// shares one HELP/TYPE header across tenants' histograms.
func (h *Histogram) write(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, math.Float64frombits(h.sum.Load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// Metrics is tierd's telemetry: request counters per endpoint, quote
// outcome counters, and the re-price cycle's count/error/latency.
type Metrics struct {
	QuoteRequests   Counter
	QuoteMisses     Counter
	TiersRequests   Counter
	HistoryRequests Counter
	HealthRequests  Counter
	MetricsRequests Counter

	// QuoteStale counts quotes served from a snapshot older than the
	// staleness policy (the X-Tierd-Stale responses), so a load test can
	// distinguish "served fast from old data" from healthy serving.
	QuoteStale Counter
	// QuoteRateLimited counts quote requests rejected with 429 by the
	// tenant's token bucket (always zero when no quota is configured).
	QuoteRateLimited Counter
	// QuoteSeconds is the server-side quote latency — request arrival to
	// response written — the daemon-side complement of the load
	// generator's client-observed histogram.
	QuoteSeconds *Histogram

	Reprices Counter
	// RepriceFailures counts failed re-price attempts (including backoff
	// retries and empty windows once a snapshot exists — an ingest gap).
	RepriceFailures Counter
	RepriceSeconds  *Histogram
	// RepriceFlows is the number of flows priced by the most recent
	// re-price attempt, so window size can be correlated with re-price
	// latency on the same scrape.
	RepriceFlows Gauge
	// ConsecutiveFailures mirrors the repricer's consecutive-failure
	// count: zero while healthy, climbing during a resolver outage or
	// ingest gap, the leading signal before the snapshot goes stale.
	ConsecutiveFailures Gauge
}

// NewMetrics builds the metric set with re-price latency buckets from
// 1 ms to 30 s and quote latency buckets from 50 µs to 1 s (the quote
// path is sub-microsecond; the buckets resolve the HTTP stack on top).
func NewMetrics() *Metrics {
	h, err := NewHistogram(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30)
	if err != nil {
		panic(err) // static bounds; unreachable
	}
	q, err := NewHistogram(0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
		0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1)
	if err != nil {
		panic(err) // static bounds; unreachable
	}
	return &Metrics{RepriceSeconds: h, QuoteSeconds: q}
}

// ObserveReprice records one re-price attempt for the counters and the
// latency histogram.
func (m *Metrics) ObserveReprice(seconds float64, failed bool) {
	m.Reprices.Inc()
	if failed {
		m.RepriceFailures.Inc()
	}
	m.RepriceSeconds.Observe(seconds)
}

// WritePrometheus renders every metric in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	counters := []struct {
		name, help string
		c          *Counter
	}{
		{"tierd_quote_requests_total", "Quote requests served.", &m.QuoteRequests},
		{"tierd_quote_misses_total", "Quote requests with no matching bucket or route.", &m.QuoteMisses},
		{"tierd_tiers_requests_total", "Tier table requests served.", &m.TiersRequests},
		{"tierd_history_requests_total", "Tier-table history requests served.", &m.HistoryRequests},
		{"tierd_health_requests_total", "Health checks served.", &m.HealthRequests},
		{"tierd_metrics_requests_total", "Metric scrapes served.", &m.MetricsRequests},
		{"tierd_quote_stale_total", "Quotes served from a snapshot beyond the staleness policy.", &m.QuoteStale},
		{"tierd_quote_rate_limited_total", "Quote requests rejected by the tenant's rate limit (429s).", &m.QuoteRateLimited},
		{"tierd_reprices_total", "Re-price attempts.", &m.Reprices},
		{"tierd_reprice_failures_total", "Re-price attempts that failed (retries and ingest gaps included).", &m.RepriceFailures},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.c.Value()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP tierd_reprice_flows Flows priced by the most recent re-price.\n# TYPE tierd_reprice_flows gauge\ntierd_reprice_flows %d\n", m.RepriceFlows.Value()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP tierd_reprice_consecutive_failures Consecutive failed re-price attempts (0 while healthy).\n# TYPE tierd_reprice_consecutive_failures gauge\ntierd_reprice_consecutive_failures %d\n", m.ConsecutiveFailures.Value()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP tierd_quote_seconds Server-side quote latency.\n# TYPE tierd_quote_seconds histogram\n"); err != nil {
		return err
	}
	if err := m.QuoteSeconds.write(w, "tierd_quote_seconds", ""); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# HELP tierd_reprice_seconds Re-price latency.\n# TYPE tierd_reprice_seconds histogram\n"); err != nil {
		return err
	}
	return m.RepriceSeconds.write(w, "tierd_reprice_seconds", "")
}
