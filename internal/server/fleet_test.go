package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeLimiter scripts the quote path's admission decision.
type fakeLimiter struct {
	allow bool
	retry time.Duration
	calls int
}

func (f *fakeLimiter) Allow() (bool, time.Duration) {
	f.calls++
	if f.allow {
		return true, 0
	}
	return false, f.retry
}

// newFleet builds a two-tenant server: "alpha" (the default) and
// "beta", each with its own snapshot source and metric set.
func newFleet(t *testing.T, alphaSrc, betaSrc SnapshotSource, alphaLim RateLimiter) (*Server, *Tenant, *Tenant, *httptest.Server) {
	t.Helper()
	a := &Tenant{ID: "alpha", Snapshots: alphaSrc, Limiter: alphaLim, Weight: 2, RateQPS: 50, RateBurst: 10}
	b := &Tenant{ID: "beta", Snapshots: betaSrc, Weight: 1}
	s, err := New(Config{Tenants: []*Tenant{a, b}, DefaultTenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, a, b, ts
}

func TestFleetRoutesAndTenantIsolation(t *testing.T) {
	snapA := makeSnapshot(t)
	snapB := makeSnapshot(t)
	snapB.Epoch = 7
	_, a, b, ts := newFleet(t, &fakeSource{snap: snapA}, &fakeSource{snap: snapB}, nil)

	quote := func(path string) quoteResponse {
		t.Helper()
		code, body := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d body %s", path, code, body)
		}
		var q quoteResponse
		if err := json.Unmarshal(body, &q); err != nil {
			t.Fatal(err)
		}
		return q
	}
	if q := quote("/v1/t/alpha/quote?src=10.0.0.1&dst=10.1.0.1"); q.Epoch != snapA.Epoch {
		t.Errorf("alpha epoch %d, want %d", q.Epoch, snapA.Epoch)
	}
	if q := quote("/v1/t/beta/quote?src=10.0.0.1&dst=10.1.0.1"); q.Epoch != 7 {
		t.Errorf("beta epoch %d, want 7", q.Epoch)
	}
	// The legacy path aliases the default tenant.
	if q := quote("/v1/quote?src=10.0.0.1&dst=10.1.0.1"); q.Epoch != snapA.Epoch {
		t.Errorf("legacy path epoch %d, want default tenant's %d", q.Epoch, snapA.Epoch)
	}
	if code, body := get(t, ts.URL+"/v1/t/nope/quote?src=10.0.0.1&dst=10.1.0.1"); code != http.StatusNotFound ||
		!strings.Contains(string(body), "unknown tenant") {
		t.Errorf("unknown tenant: status %d body %s", code, body)
	}

	// Counters land on the tenant that served the request, not a shared set.
	if got := a.Metrics.QuoteRequests.Value(); got != 2 {
		t.Errorf("alpha quote requests = %d, want 2 (scoped + legacy alias)", got)
	}
	if got := b.Metrics.QuoteRequests.Value(); got != 1 {
		t.Errorf("beta quote requests = %d, want 1", got)
	}

	// Tenant-scoped tiers and history answer per tenant too.
	code, body := get(t, ts.URL+"/v1/t/beta/tiers")
	if code != http.StatusOK {
		t.Fatalf("beta tiers: status %d", code)
	}
	var tr tiersResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Epoch != 7 {
		t.Errorf("beta tiers epoch %d, want 7", tr.Epoch)
	}
	if code, _ := get(t, ts.URL+"/v1/t/beta/history"); code != http.StatusOK {
		t.Errorf("beta history: status %d", code)
	}
}

func TestFleetRateLimit(t *testing.T) {
	snap := makeSnapshot(t)
	lim := &fakeLimiter{allow: false, retry: 300 * time.Millisecond}
	_, a, b, ts := newFleet(t, &fakeSource{snap: snap}, &fakeSource{snap: snap}, lim)

	resp, err := http.Get(ts.URL + "/v1/t/alpha/quote?src=10.0.0.1&dst=10.1.0.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("limited quote: status %d, want 429", resp.StatusCode)
	}
	// Sub-second hints round up to the minimum whole second.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if a.Metrics.QuoteRateLimited.Value() != 1 {
		t.Errorf("alpha rate-limited counter = %d, want 1", a.Metrics.QuoteRateLimited.Value())
	}
	// The quota is the tenant's own: beta has no limiter and keeps serving.
	if code, _ := get(t, ts.URL+"/v1/t/beta/quote?src=10.0.0.1&dst=10.1.0.1"); code != http.StatusOK {
		t.Errorf("beta quote while alpha throttled: status %d, want 200", code)
	}
	if b.Metrics.QuoteRateLimited.Value() != 0 {
		t.Errorf("beta rate-limited counter = %d, want 0", b.Metrics.QuoteRateLimited.Value())
	}
}

func TestFleetHealth(t *testing.T) {
	snap := makeSnapshot(t)
	betaSrc := &fakeSource{} // warming: no snapshot yet
	_, _, _, ts := newFleet(t, &fakeSource{snap: snap}, betaSrc, nil)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fleet healthz with warming tenant: status %d, want 503", code)
	}
	out := string(body)
	if !strings.Contains(out, "alpha: ok") || !strings.Contains(out, "beta: warming up") {
		t.Errorf("fleet healthz body missing per-tenant lines:\n%s", out)
	}
	// Per-tenant probes disagree exactly per tenant.
	if code, _ := get(t, ts.URL+"/v1/t/alpha/healthz"); code != http.StatusOK {
		t.Errorf("alpha healthz: status %d, want 200", code)
	}
	if code, _ := get(t, ts.URL+"/v1/t/beta/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("beta healthz: status %d, want 503", code)
	}

	betaSrc.snap = makeSnapshot(t)
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(string(body), "beta: ok") {
		t.Errorf("fleet healthz once all fresh: status %d body %s", code, body)
	}
}

func TestFleetMetricsLabeled(t *testing.T) {
	snap := makeSnapshot(t)
	s, a, _, ts := newFleet(t, &fakeSource{snap: snap}, &fakeSource{snap: snap}, nil)
	s.sched = func() SchedStats {
		return SchedStats{
			QueueDepth: 1, Dispatched: 5, Coalesced: 2, Starved: 1,
			Flows: []SchedFlowStats{{Tenant: "alpha", Weight: 2, Dispatched: 3, CostSeconds: 0.01}},
		}
	}
	a.Ingest = func() IngestStats { return IngestStats{Packets: 9, Records: 90} }
	get(t, ts.URL+"/v1/t/alpha/quote?src=10.0.0.1&dst=10.1.0.1")
	get(t, ts.URL+"/v1/t/beta/quote?src=10.0.0.1&dst=10.1.0.1")

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	out := string(body)
	for _, want := range []string{
		`tierd_quote_requests_total{tenant="alpha"} 1`,
		`tierd_quote_requests_total{tenant="beta"} 1`,
		`tierd_quote_rate_limited_total{tenant="alpha"} 0`,
		`tierd_quote_seconds_bucket{tenant="beta",le="+Inf"} 1`,
		`tierd_quote_seconds_count{tenant="alpha"} 1`,
		`tierd_tenant_weight{tenant="alpha"} 2`,
		`tierd_quote_rate_limit_qps{tenant="alpha"} 50`,
		`tierd_snapshot_epoch{tenant="alpha"} 1`,
		`tierd_ingest_routed_packets_total{tenant="alpha"} 9`,
		"tierd_sched_queue_depth 1",
		"tierd_sched_dispatched_total 5",
		`tierd_sched_tenant_dispatched_total{tenant="alpha"} 3`,
		"tierd_health_requests_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}
	// One HELP/TYPE header per metric name even with many tenants.
	for _, name := range []string{"tierd_quote_requests_total", "tierd_quote_seconds", "tierd_snapshot_epoch"} {
		if got := strings.Count(out, "# HELP "+name+" "); got != 1 {
			t.Errorf("HELP for %s appears %d times, want 1", name, got)
		}
	}
}

func TestFleetConfigValidation(t *testing.T) {
	src := &fakeSource{}
	ok := func() []*Tenant {
		return []*Tenant{{ID: "a", Snapshots: src}, {ID: "b", Snapshots: src}}
	}
	if _, err := New(Config{Tenants: ok()}); err != nil {
		t.Errorf("valid fleet rejected: %v", err)
	}
	// Empty DefaultTenant selects the first tenant.
	s, err := New(Config{Tenants: ok()})
	if err != nil {
		t.Fatal(err)
	}
	if s.def.ID != "a" {
		t.Errorf("default tenant %q, want first tenant \"a\"", s.def.ID)
	}
	cases := []Config{
		{Tenants: []*Tenant{{ID: "a", Snapshots: src}, {ID: "a", Snapshots: src}}},
		{Tenants: []*Tenant{{ID: "", Snapshots: src}}},
		{Tenants: []*Tenant{{ID: "a"}}},
		{Tenants: ok(), DefaultTenant: "nope"},
		{Tenants: ok(), Snapshots: src},
		{Tenants: []*Tenant{{ID: "a", Snapshots: src, MaxSnapshotAge: -time.Second}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid fleet config accepted", i)
		}
	}
}
