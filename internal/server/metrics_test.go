package server

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(0.01, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	var b strings.Builder
	if err := h.write(&b, "x", ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`x_bucket{le="0.01"} 1`,
		`x_bucket{le="0.1"} 2`,
		`x_bucket{le="1"} 3`,
		`x_bucket{le="+Inf"} 4`,
		`x_sum 5.555`,
		`x_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	if _, err := NewHistogram(1, 0.5); err == nil {
		t.Error("expected error for descending bounds")
	}
	if _, err := NewHistogram(1, 1); err == nil {
		t.Error("expected error for duplicate bounds")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h, err := NewHistogram(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.QuoteRequests.Add(3)
	m.QuoteMisses.Inc()
	m.ObserveReprice(0.02, false)
	m.ObserveReprice(0.5, true)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tierd_quote_requests_total 3",
		"tierd_quote_misses_total 1",
		"tierd_reprices_total 2",
		"tierd_reprice_failures_total 1",
		"tierd_reprice_consecutive_failures 0",
		"tierd_reprice_seconds_count 2",
		"# TYPE tierd_reprice_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRepriceFlowsGauge(t *testing.T) {
	m := NewMetrics()
	m.RepriceFlows.Set(742)
	if got := m.RepriceFlows.Value(); got != 742 {
		t.Fatalf("gauge value = %d, want 742", got)
	}
	m.RepriceFlows.Set(3) // gauges go down too
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tierd_reprice_flows gauge",
		"tierd_reprice_flows 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
