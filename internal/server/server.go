package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"tieredpricing/internal/buildinfo"
	"tieredpricing/internal/stream"
)

// SnapshotSource supplies the current pricing snapshot (nil before the
// first successful re-price). stream.Repricer implements it.
type SnapshotSource interface {
	Current() *stream.Snapshot
}

// IngestStats is a point-in-time view of the ingest pipeline for the
// /metrics endpoint: UDP datagrams and their decode failures, plus the
// window's record counters. Per-tenant views reuse the shape with
// Packets meaning "datagrams routed to this tenant".
type IngestStats struct {
	Packets    uint64
	BadPackets uint64
	Records    uint64
	Duplicates uint64
	Dropped    uint64
	// SocketDrops is the kernel's receive-queue drop count across the
	// collector's UDP sockets (datagrams lost before user space saw
	// them); zero where the platform exposes no counter.
	SocketDrops uint64
	// ShardRecords is each window shard's lifetime record count, indexed
	// by shard; empty when the pipeline runs unsharded components that
	// predate sharding.
	ShardRecords []uint64
}

// DurabilityStats is a point-in-time view of the durability subsystem
// (WAL + checkpoints) for the /metrics endpoint. The zero value means
// "durability disabled" only through Config.Durability being nil; with
// a callback installed every field is live.
type DurabilityStats struct {
	// WAL counters: bytes and entries appended, fsync syscalls issued.
	WALBytes   uint64
	WALEntries uint64
	WALFsyncs  uint64
	// Fsync latency summary, in seconds (internal/hist quantiles).
	WALFsyncP50 float64
	WALFsyncP99 float64
	WALFsyncMax float64
	WALFsyncSum float64
	// Checkpoints taken since boot; CheckpointAge is the seconds since
	// the newest one (negative = none yet, the age line is suppressed).
	Checkpoints   uint64
	CheckpointAge float64
	// RecoveryReplayed is the number of WAL entries replayed at boot;
	// RecoveryTornBytes is how many trailing WAL bytes recovery
	// distrusted and discarded.
	RecoveryReplayed uint64
	RecoveryTornBytes uint64
}

// HistoryEntry is one published tier table in the /v1/history time
// series: the canonical TierTable bytes exactly as /v1/tiers served
// them at that epoch, plus the pricing-config epoch that produced the
// table (1 = boot config; each successful hot reload increments it).
// The daemon's history recorder appends one entry per epoch to the
// durable store (when configured) and keeps a bounded ring in front of
// it.
type HistoryEntry struct {
	At          time.Time       `json:"at"`
	Epoch       int64           `json:"epoch"`
	ConfigEpoch int64           `json:"config_epoch,omitempty"`
	Table       json.RawMessage `json:"table"`
}

// HistoryLimitCap is the server-side ceiling on /v1/history responses:
// a request's limit parameter is clamped to it, and an absent or zero
// limit selects it, so a deep store scan can never become an unbounded
// response body.
const HistoryLimitCap = 1000

// HistoryQuery is a parsed /v1/history range request. Since and Until
// bound the epoch range inclusively (0 = unbounded on that side);
// Limit caps the returned entries, keeping the newest when more match
// (still returned oldest-first).
type HistoryQuery struct {
	Since int64
	Until int64
	Limit int
}

// HistoryStoreStats is a point-in-time view of the durable tier-history
// store for /metrics. It mirrors histstore.Stats without importing the
// package, keeping the HTTP layer decoupled from the storage engine.
type HistoryStoreStats struct {
	Entries       uint64
	Bytes         uint64
	Appends       uint64
	Dupes         uint64
	AppendErrors  uint64
	Flushes       uint64
	Folds         uint64
	Compactions   uint64
	Pruned        uint64
	Scans         uint64
	OpenTornBytes uint64
}

// ReloadStats is a point-in-time view of config hot-reload for
// /metrics: the process-wide pricing-config epoch (1 at boot, +1 per
// successful SIGHUP reload) and the reload outcome counters.
type ReloadStats struct {
	ConfigEpoch  int64
	Reloads      uint64
	ReloadErrors uint64
}

// Config wires a Server to its snapshot source and policies.
//
// Two shapes are supported. Single-tenant (the original): set
// Snapshots plus the optional policy fields, and the server synthesizes
// one tenant named "default" — the exposition stays unlabeled and
// byte-compatible with prior releases. Fleet: set Tenants (and
// DefaultTenant), and the per-request fields move onto each Tenant
// handle; Snapshots/MaxSnapshotAge/Durability/History must be unset.
type Config struct {
	// Snapshots supplies the serving snapshot (required in
	// single-tenant mode; must be nil when Tenants is set).
	Snapshots SnapshotSource
	// Metrics receives request telemetry; nil builds a fresh set. In
	// fleet mode this set carries only the process-wide counters
	// (health checks, metric scrapes) — per-tenant sets live on the
	// Tenant handles.
	Metrics *Metrics
	// Ingest reports the ingest pipeline's counters for /metrics; nil
	// when no live ingest is attached. In fleet mode only the datagram
	// counters are read here (the socket is shared); record counters
	// come from each tenant's Ingest callback.
	Ingest func() IngestStats
	// MaxSnapshotAge is the staleness policy: once the serving snapshot
	// is older, /healthz reports degraded (503) and /v1/quote tags
	// responses with X-Tierd-Stale — quoting stays up on the last good
	// snapshot, but load balancers and callers can see the data is old.
	// Zero disables the policy.
	MaxSnapshotAge time.Duration
	// Now is the server's time source for snapshot age; nil selects
	// time.Now. Injectable for fault rehearsal and tests.
	Now func() time.Time
	// Durability reports the WAL/checkpoint subsystem's counters for
	// /metrics; nil when the daemon runs without -data-dir.
	Durability func() DurabilityStats
	// History supplies the checkpointed tier-table time series for
	// GET /v1/history (oldest first); nil serves an empty series.
	History func() []HistoryEntry
	// HistoryScan serves deep /v1/history range queries from the
	// durable store; nil falls back to filtering History's ring.
	HistoryScan func(q HistoryQuery) ([]HistoryEntry, error)
	// HistoryStore reports the durable tier-history store's counters
	// for /metrics; nil when the daemon runs without -history-store.
	// Process-wide: in fleet mode every tenant shares one store.
	HistoryStore func() HistoryStoreStats
	// Reload reports config hot-reload state for /metrics; nil when the
	// daemon runs without -config. Process-wide.
	Reload func() ReloadStats
	// Build identifies the running binary; the zero value is filled
	// from the embedded build metadata.
	Build buildinfo.Info

	// Tenants, when non-empty, serves a multi-tenant fleet: every
	// tenant gets /v1/t/{id}/... routes and labeled metrics, and the
	// legacy un-prefixed paths alias DefaultTenant.
	Tenants []*Tenant
	// DefaultTenant names the tenant the legacy paths alias; empty
	// selects the first entry of Tenants.
	DefaultTenant string
	// Sched reports the weighted-fair reprice scheduler's counters for
	// /metrics (fleet mode only); nil omits the scheduler block.
	Sched func() SchedStats
}

// Server serves tier quotes out of immutable pricing snapshots, one
// tenant or a fleet of them.
type Server struct {
	tenants []*Tenant
	byID    map[string]*Tenant
	def     *Tenant
	fleet   bool // multi-tenant: tenant routes + labeled exposition

	proc      *Metrics                 // process-wide counters (health, metrics scrapes)
	ingest    func() IngestStats       // optional; process-wide datagram counters
	sched     func() SchedStats        // optional; fleet mode only
	histStore func() HistoryStoreStats // optional; shared durable history store
	reload    func() ReloadStats       // optional; config hot-reload state

	now      func() time.Time
	build    buildinfo.Info
	buildTag string // precomputed Info.String() for the X-Tierd-Build header
}

// New wires the API to its snapshot source(s).
func New(cfg Config) (*Server, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Build == (buildinfo.Info{}) {
		cfg.Build = buildinfo.Get()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	s := &Server{
		fleet:     len(cfg.Tenants) > 0,
		proc:      cfg.Metrics,
		ingest:    cfg.Ingest,
		sched:     cfg.Sched,
		histStore: cfg.HistoryStore,
		reload:    cfg.Reload,
		now:       cfg.Now,
		build:     cfg.Build,
		buildTag:  cfg.Build.String(),
	}
	if !s.fleet {
		// Single-tenant: the legacy Config fields become the one tenant.
		if cfg.Snapshots == nil {
			return nil, errors.New("server: nil snapshot source")
		}
		if cfg.MaxSnapshotAge < 0 {
			return nil, fmt.Errorf("server: max snapshot age must not be negative, got %v", cfg.MaxSnapshotAge)
		}
		s.tenants = []*Tenant{{
			ID:             "default",
			Snapshots:      cfg.Snapshots,
			Metrics:        cfg.Metrics,
			Durability:     cfg.Durability,
			History:        cfg.History,
			HistoryScan:    cfg.HistoryScan,
			MaxSnapshotAge: cfg.MaxSnapshotAge,
			Weight:         1,
		}}
	} else {
		if cfg.Snapshots != nil || cfg.Durability != nil || cfg.History != nil || cfg.HistoryScan != nil {
			return nil, errors.New("server: Tenants excludes the single-tenant Snapshots/Durability/History fields")
		}
		s.tenants = cfg.Tenants
	}
	s.byID = make(map[string]*Tenant, len(s.tenants))
	for _, t := range s.tenants {
		if t.ID == "" {
			return nil, errors.New("server: tenant with empty ID")
		}
		if _, dup := s.byID[t.ID]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.ID)
		}
		if t.Snapshots == nil {
			return nil, fmt.Errorf("server: tenant %q: nil snapshot source", t.ID)
		}
		if t.MaxSnapshotAge < 0 {
			return nil, fmt.Errorf("server: tenant %q: max snapshot age must not be negative, got %v", t.ID, t.MaxSnapshotAge)
		}
		if t.Metrics == nil {
			t.Metrics = NewMetrics()
		}
		s.byID[t.ID] = t
	}
	defID := cfg.DefaultTenant
	if defID == "" {
		defID = s.tenants[0].ID
	}
	def, ok := s.byID[defID]
	if !ok {
		return nil, fmt.Errorf("server: default tenant %q is not configured", defID)
	}
	s.def = def
	return s, nil
}

// snapshotAge is the age of snap on the server's clock.
func (s *Server) snapshotAge(snap *stream.Snapshot) time.Duration {
	return s.now().Sub(snap.FittedAt)
}

// staleFor reports whether the tenant's staleness policy considers snap
// too old.
func (s *Server) staleFor(t *Tenant, snap *stream.Snapshot) bool {
	return t.MaxSnapshotAge > 0 && s.snapshotAge(snap) > t.MaxSnapshotAge
}

// Handler builds the route table. The un-prefixed /v1 paths serve the
// default tenant; /v1/t/{tenant}/... scopes the same handlers to any
// configured tenant (including "default" in single-tenant mode).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/quote", s.forDefault(s.handleQuote))
	mux.HandleFunc("/v1/tiers", s.forDefault(s.handleTiers))
	mux.HandleFunc("/v1/history", s.forDefault(s.handleHistory))
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/t/{tenant}/quote", s.forTenant(s.handleQuote))
	mux.HandleFunc("/v1/t/{tenant}/tiers", s.forTenant(s.handleTiers))
	mux.HandleFunc("/v1/t/{tenant}/history", s.forTenant(s.handleHistory))
	mux.HandleFunc("/v1/t/{tenant}/healthz", s.forTenant(s.handleTenantHealth))
	return mux
}

// forDefault binds a tenant-scoped handler to the default tenant (the
// legacy un-prefixed routes).
func (s *Server) forDefault(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) { h(s.def, w, r) }
}

// forTenant resolves the {tenant} path segment and binds the handler to
// that tenant; unknown IDs answer 404.
func (s *Server) forTenant(h func(*Tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.byID[r.PathValue("tenant")]
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{fmt.Sprintf("unknown tenant %q", r.PathValue("tenant"))})
			return
		}
		h(t, w, r)
	}
}

// quoteResponse is the /v1/quote body.
type quoteResponse struct {
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Tier   int     `json:"tier"`
	Price  float64 `json:"price_usd_per_mbps_month"`
	Source string  `json:"source"`
	Epoch  int64   `json:"epoch"`
}

// tiersResponse is the /v1/tiers body. Table carries the canonical
// stream.TierTable bytes unmodified, so clients (and the end-to-end
// consistency test) see exactly what the repricer published.
type tiersResponse struct {
	Epoch    int64           `json:"epoch"`
	FittedAt time.Time       `json:"fitted_at"`
	Skipped  int             `json:"skipped"`
	Table    json.RawMessage `json:"table"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body) // the connection is the only failure mode here
}

// parseFlow extracts the queried endpoints: either flow=src>dst (the
// aggregate-key shape) or separate src= and dst= parameters.
func parseFlow(r *http.Request) (src, dst netip.Addr, err error) {
	q := r.URL.Query()
	srcStr, dstStr := q.Get("src"), q.Get("dst")
	if flow := q.Get("flow"); flow != "" {
		var ok bool
		srcStr, dstStr, ok = strings.Cut(flow, ">")
		if !ok {
			return src, dst, fmt.Errorf("flow %q is not src>dst", flow)
		}
	}
	if srcStr == "" || dstStr == "" {
		return src, dst, errors.New("need flow=src>dst or src= and dst=")
	}
	if src, err = netip.ParseAddr(srcStr); err != nil {
		return src, dst, fmt.Errorf("src: %w", err)
	}
	if dst, err = netip.ParseAddr(dstStr); err != nil {
		return src, dst, fmt.Errorf("dst: %w", err)
	}
	return src, dst, nil
}

// retryAfterSeconds rounds the limiter's hint up to whole seconds for
// the Retry-After header (minimum 1 — the header has no sub-second
// syntax and 0 would invite an immediate retry storm).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleQuote(t *Tenant, w http.ResponseWriter, r *http.Request) {
	// Server-side latency on the real clock (s.now is a policy clock that
	// tests freeze; freezing it must not zero the histogram).
	start := time.Now()
	defer func() { t.Metrics.QuoteSeconds.Observe(time.Since(start).Seconds()) }()
	t.Metrics.QuoteRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if t.Limiter != nil {
		if ok, retry := t.Limiter.Allow(); !ok {
			t.Metrics.QuoteRateLimited.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{"rate limit exceeded"})
			return
		}
	}
	src, dst, err := parseFlow(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	snap := t.Snapshots.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no pricing snapshot yet"})
		return
	}
	if s.staleFor(t, snap) {
		// Degraded mode: the snapshot outlived the staleness policy but
		// quoting stays up on it — the caller sees the age, not a 5xx.
		t.Metrics.QuoteStale.Inc()
		w.Header().Set("X-Tierd-Stale", "true")
		w.Header().Set("X-Tierd-Snapshot-Age", fmt.Sprintf("%.3f", s.snapshotAge(snap).Seconds()))
	}
	q, ok := snap.Quote(src, dst)
	if !ok {
		t.Metrics.QuoteMisses.Inc()
		writeJSON(w, http.StatusNotFound, errorResponse{"flow matches no tier"})
		return
	}
	writeJSON(w, http.StatusOK, quoteResponse{
		Src:    src.String(),
		Dst:    dst.String(),
		Tier:   q.Tier,
		Price:  q.Price,
		Source: q.Source.String(),
		Epoch:  snap.Epoch,
	})
}

func (s *Server) handleTiers(t *Tenant, w http.ResponseWriter, r *http.Request) {
	t.Metrics.TiersRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	snap := t.Snapshots.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no pricing snapshot yet"})
		return
	}
	table, err := snap.Table.Marshal()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, tiersResponse{
		Epoch:    snap.Epoch,
		FittedAt: snap.FittedAt,
		Skipped:  snap.Skipped,
		Table:    table,
	})
}

// historyResponse is the /v1/history body.
type historyResponse struct {
	Entries []HistoryEntry `json:"entries"`
}

// parseHistoryQuery validates the since/until/limit parameters.
// Each must be a non-negative decimal integer when present (anything
// else is a 400); an absent or zero limit selects the server-side cap,
// and larger requests are clamped to it.
func parseHistoryQuery(r *http.Request) (HistoryQuery, error) {
	vals := r.URL.Query()
	parse := func(name string) (int64, error) {
		raw := vals.Get(name)
		if raw == "" {
			return 0, nil
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: %q is not an integer", name, raw)
		}
		if n < 0 {
			return 0, fmt.Errorf("%s must not be negative, got %d", name, n)
		}
		return n, nil
	}
	var q HistoryQuery
	var err error
	if q.Since, err = parse("since"); err != nil {
		return q, err
	}
	if q.Until, err = parse("until"); err != nil {
		return q, err
	}
	limit, err := parse("limit")
	if err != nil {
		return q, err
	}
	if limit == 0 || limit > HistoryLimitCap {
		limit = HistoryLimitCap
	}
	q.Limit = int(limit)
	return q, nil
}

// filterHistory applies HistoryQuery semantics to an oldest-first
// series — the ring-backed fallback when no durable store is wired.
func filterHistory(entries []HistoryEntry, q HistoryQuery) []HistoryEntry {
	out := entries[:0:0]
	for _, e := range entries {
		if q.Since > 0 && e.Epoch < q.Since {
			continue
		}
		if q.Until > 0 && e.Epoch > q.Until {
			continue
		}
		out = append(out, e)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:] // newest Limit, still oldest-first
	}
	return out
}

// handleHistory serves the tier-table time series, oldest first,
// bounded by ?since=&until=&limit= (epochs, inclusive). With a durable
// history store wired the scan reaches every retained epoch — far past
// the in-memory ring; without one it filters the ring (restored from
// the newest checkpoint at boot).
func (s *Server) handleHistory(t *Tenant, w http.ResponseWriter, r *http.Request) {
	t.Metrics.HistoryRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	q, err := parseHistoryQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	entries := []HistoryEntry{}
	switch {
	case t.HistoryScan != nil:
		got, err := t.HistoryScan(q)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
			return
		}
		if got != nil {
			entries = got
		}
	case t.History != nil:
		if got := filterHistory(t.History(), q); got != nil {
			entries = got
		}
	}
	writeJSON(w, http.StatusOK, historyResponse{Entries: entries})
}

// healthLine summarizes one tenant's serving health for /healthz: ok,
// warming up (no snapshot yet), or degraded (snapshot beyond the
// staleness policy).
func (s *Server) healthLine(t *Tenant) (ok bool, line string) {
	snap := t.Snapshots.Current()
	if snap == nil {
		return false, "warming up: no pricing snapshot yet"
	}
	if s.staleFor(t, snap) {
		return false, fmt.Sprintf("degraded: snapshot age %v exceeds %v",
			s.snapshotAge(snap).Round(time.Millisecond), t.MaxSnapshotAge)
	}
	return true, "ok"
}

// handleHealth is the process-wide probe. Single-tenant keeps the
// original body and semantics. In fleet mode the body carries one
// "<tenant>: <status>" line per tenant and the status code is 200 only
// when every tenant serves a fresh snapshot — a load balancer drains
// the whole process only when no tenant is healthy enough to matter,
// so the per-tenant probe is the better signal for tenant-level
// automation.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.proc.HealthRequests.Inc()
	// Build attribution rides on every health response — including the
	// 503s — so probes and load generators can always tell which binary
	// answered. Headers must be set before any WriteHeader.
	w.Header().Set("X-Tierd-Build", s.buildTag)
	if !s.fleet {
		ok, line := s.healthLine(s.def)
		if !ok {
			http.Error(w, line, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	allOK := true
	var b strings.Builder
	for _, t := range s.tenants {
		ok, line := s.healthLine(t)
		if !ok {
			allOK = false
		}
		fmt.Fprintf(&b, "%s: %s\n", t.ID, line)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !allOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write([]byte(b.String()))
}

// handleTenantHealth probes one tenant: the single-tenant /healthz
// semantics scoped to the tenant in the path.
func (s *Server) handleTenantHealth(t *Tenant, w http.ResponseWriter, r *http.Request) {
	s.proc.HealthRequests.Inc()
	w.Header().Set("X-Tierd-Build", s.buildTag)
	ok, line := s.healthLine(t)
	if !ok {
		http.Error(w, line, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.proc.MetricsRequests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.fleet {
		s.writeFleetMetrics(w)
		return
	}
	// Single-tenant exposition: unlabeled, byte-compatible with prior
	// releases (s.proc and the default tenant's set are one instance).
	if err := s.proc.WritePrometheus(w); err != nil {
		return
	}
	if s.ingest != nil {
		in := s.ingest()
		fmt.Fprintf(w, "# HELP tierd_ingest_packets_total Export datagrams received.\n# TYPE tierd_ingest_packets_total counter\ntierd_ingest_packets_total %d\n", in.Packets)
		fmt.Fprintf(w, "# HELP tierd_ingest_bad_packets_total Datagrams that failed to decode.\n# TYPE tierd_ingest_bad_packets_total counter\ntierd_ingest_bad_packets_total %d\n", in.BadPackets)
		fmt.Fprintf(w, "# HELP tierd_ingest_records_total Flow records ingested into the window.\n# TYPE tierd_ingest_records_total counter\ntierd_ingest_records_total %d\n", in.Records)
		fmt.Fprintf(w, "# HELP tierd_ingest_duplicates_total Cross-router duplicates suppressed.\n# TYPE tierd_ingest_duplicates_total counter\ntierd_ingest_duplicates_total %d\n", in.Duplicates)
		fmt.Fprintf(w, "# HELP tierd_ingest_dropped_total Records with no aggregation bucket.\n# TYPE tierd_ingest_dropped_total counter\ntierd_ingest_dropped_total %d\n", in.Dropped)
		fmt.Fprintf(w, "# HELP tierd_ingest_socket_drops_total Datagrams the kernel dropped on full UDP receive buffers.\n# TYPE tierd_ingest_socket_drops_total counter\ntierd_ingest_socket_drops_total %d\n", in.SocketDrops)
		if len(in.ShardRecords) > 0 {
			fmt.Fprintf(w, "# HELP tierd_ingest_shard_records_total Flow records ingested per window shard.\n# TYPE tierd_ingest_shard_records_total counter\n")
			for i, n := range in.ShardRecords {
				fmt.Fprintf(w, "tierd_ingest_shard_records_total{shard=\"%d\"} %d\n", i, n)
			}
		}
	}
	fmt.Fprintf(w, "# HELP tierd_build_info Build metadata of the running binary (value is always 1).\n# TYPE tierd_build_info gauge\ntierd_build_info{revision=%q,go_version=%q} 1\n",
		s.build.Revision, s.build.GoVersion)
	if s.def.Durability != nil {
		d := s.def.Durability()
		fmt.Fprintf(w, "# HELP tierd_wal_bytes_total Bytes appended to the write-ahead log.\n# TYPE tierd_wal_bytes_total counter\ntierd_wal_bytes_total %d\n", d.WALBytes)
		fmt.Fprintf(w, "# HELP tierd_wal_entries_total Entries appended to the write-ahead log.\n# TYPE tierd_wal_entries_total counter\ntierd_wal_entries_total %d\n", d.WALEntries)
		fmt.Fprintf(w, "# HELP tierd_wal_fsyncs_total WAL fsync syscalls issued.\n# TYPE tierd_wal_fsyncs_total counter\ntierd_wal_fsyncs_total %d\n", d.WALFsyncs)
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_seconds WAL fsync latency.\n# TYPE tierd_wal_fsync_seconds summary\n")
		fmt.Fprintf(w, "tierd_wal_fsync_seconds{quantile=\"0.5\"} %g\n", d.WALFsyncP50)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds{quantile=\"0.99\"} %g\n", d.WALFsyncP99)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds_sum %g\n", d.WALFsyncSum)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds_count %d\n", d.WALFsyncs)
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_max_seconds Worst WAL fsync latency observed.\n# TYPE tierd_wal_fsync_max_seconds gauge\ntierd_wal_fsync_max_seconds %g\n", d.WALFsyncMax)
		fmt.Fprintf(w, "# HELP tierd_checkpoints_total Checkpoints written since boot.\n# TYPE tierd_checkpoints_total counter\ntierd_checkpoints_total %d\n", d.Checkpoints)
		if d.CheckpointAge >= 0 {
			fmt.Fprintf(w, "# HELP tierd_checkpoint_age_seconds Seconds since the newest checkpoint.\n# TYPE tierd_checkpoint_age_seconds gauge\ntierd_checkpoint_age_seconds %g\n", d.CheckpointAge)
		}
		fmt.Fprintf(w, "# HELP tierd_recovery_replayed_total WAL entries replayed during boot recovery.\n# TYPE tierd_recovery_replayed_total counter\ntierd_recovery_replayed_total %d\n", d.RecoveryReplayed)
		fmt.Fprintf(w, "# HELP tierd_recovery_torn_bytes_total Trailing WAL bytes recovery distrusted and discarded.\n# TYPE tierd_recovery_torn_bytes_total counter\ntierd_recovery_torn_bytes_total %d\n", d.RecoveryTornBytes)
	}
	s.writeHistoryStoreMetrics(w)
	s.writeReloadMetrics(w)
	if snap := s.def.Snapshots.Current(); snap != nil {
		fmt.Fprintf(w, "# HELP tierd_snapshot_epoch Epoch of the serving snapshot.\n# TYPE tierd_snapshot_epoch gauge\ntierd_snapshot_epoch %d\n", snap.Epoch)
		fmt.Fprintf(w, "# HELP tierd_snapshot_flows Flows priced in the serving snapshot.\n# TYPE tierd_snapshot_flows gauge\ntierd_snapshot_flows %d\n", snap.Table.Flows)
		fmt.Fprintf(w, "# HELP tierd_snapshot_tiers Tiers in the serving snapshot.\n# TYPE tierd_snapshot_tiers gauge\ntierd_snapshot_tiers %d\n", len(snap.Table.Tiers))
		fmt.Fprintf(w, "# HELP tierd_snapshot_age_seconds Age of the serving snapshot.\n# TYPE tierd_snapshot_age_seconds gauge\ntierd_snapshot_age_seconds %g\n", s.snapshotAge(snap).Seconds())
		stale := 0
		if s.staleFor(s.def, snap) {
			stale = 1
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_stale Whether the serving snapshot exceeds the staleness policy (1 = degraded).\n# TYPE tierd_snapshot_stale gauge\ntierd_snapshot_stale %d\n", stale)
	}
}

// writeHistoryStoreMetrics renders the durable tier-history store's
// counters (process-wide: fleet tenants share one store). No-op when no
// store is wired.
func (s *Server) writeHistoryStoreMetrics(w io.Writer) {
	if s.histStore == nil {
		return
	}
	h := s.histStore()
	fmt.Fprintf(w, "# HELP tierd_history_entries Rows live in the durable tier-history store.\n# TYPE tierd_history_entries gauge\ntierd_history_entries %d\n", h.Entries)
	fmt.Fprintf(w, "# HELP tierd_history_bytes Encoded size of the live tier-history rows.\n# TYPE tierd_history_bytes gauge\ntierd_history_bytes %d\n", h.Bytes)
	fmt.Fprintf(w, "# HELP tierd_history_appends_total Tier-history rows accepted for append.\n# TYPE tierd_history_appends_total counter\ntierd_history_appends_total %d\n", h.Appends)
	fmt.Fprintf(w, "# HELP tierd_history_dupes_total Appends ignored because the (tenant, epoch) key already existed.\n# TYPE tierd_history_dupes_total counter\ntierd_history_dupes_total %d\n", h.Dupes)
	fmt.Fprintf(w, "# HELP tierd_history_append_errors_total Tier-history appends that failed to reach durable storage.\n# TYPE tierd_history_append_errors_total counter\ntierd_history_append_errors_total %d\n", h.AppendErrors)
	fmt.Fprintf(w, "# HELP tierd_history_flushes_total Group commits of staged tier-history rows (one fsync each).\n# TYPE tierd_history_flushes_total counter\ntierd_history_flushes_total %d\n", h.Flushes)
	fmt.Fprintf(w, "# HELP tierd_history_folds_total Write-ahead-file checkpoints folded into the main history file.\n# TYPE tierd_history_folds_total counter\ntierd_history_folds_total %d\n", h.Folds)
	fmt.Fprintf(w, "# HELP tierd_history_compactions_total Main history file rewrites triggered by retention pruning.\n# TYPE tierd_history_compactions_total counter\ntierd_history_compactions_total %d\n", h.Compactions)
	fmt.Fprintf(w, "# HELP tierd_history_pruned_total Tier-history rows removed by retention policy.\n# TYPE tierd_history_pruned_total counter\ntierd_history_pruned_total %d\n", h.Pruned)
	fmt.Fprintf(w, "# HELP tierd_history_scans_total Tier-history range scans served.\n# TYPE tierd_history_scans_total counter\ntierd_history_scans_total %d\n", h.Scans)
	fmt.Fprintf(w, "# HELP tierd_history_torn_bytes_total Trailing history-file bytes open-time recovery distrusted and discarded.\n# TYPE tierd_history_torn_bytes_total counter\ntierd_history_torn_bytes_total %d\n", h.OpenTornBytes)
}

// writeReloadMetrics renders the config hot-reload state (process-wide).
// No-op when the daemon runs without -config.
func (s *Server) writeReloadMetrics(w io.Writer) {
	if s.reload == nil {
		return
	}
	rl := s.reload()
	fmt.Fprintf(w, "# HELP tierd_config_epoch Pricing-config epoch (1 at boot, +1 per successful hot reload).\n# TYPE tierd_config_epoch gauge\ntierd_config_epoch %d\n", rl.ConfigEpoch)
	fmt.Fprintf(w, "# HELP tierd_config_reloads_total Successful config hot reloads.\n# TYPE tierd_config_reloads_total counter\ntierd_config_reloads_total %d\n", rl.Reloads)
	fmt.Fprintf(w, "# HELP tierd_config_reload_errors_total Config reloads rejected (invalid file or config; the running config stayed active).\n# TYPE tierd_config_reload_errors_total counter\ntierd_config_reload_errors_total %d\n", rl.ReloadErrors)
}
