package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"strings"
	"time"

	"tieredpricing/internal/buildinfo"
	"tieredpricing/internal/stream"
)

// SnapshotSource supplies the current pricing snapshot (nil before the
// first successful re-price). stream.Repricer implements it.
type SnapshotSource interface {
	Current() *stream.Snapshot
}

// IngestStats is a point-in-time view of the ingest pipeline for the
// /metrics endpoint: UDP datagrams and their decode failures, plus the
// window's record counters.
type IngestStats struct {
	Packets    uint64
	BadPackets uint64
	Records    uint64
	Duplicates uint64
	Dropped    uint64
}

// DurabilityStats is a point-in-time view of the durability subsystem
// (WAL + checkpoints) for the /metrics endpoint. The zero value means
// "durability disabled" only through Config.Durability being nil; with
// a callback installed every field is live.
type DurabilityStats struct {
	// WAL counters: bytes and entries appended, fsync syscalls issued.
	WALBytes   uint64
	WALEntries uint64
	WALFsyncs  uint64
	// Fsync latency summary, in seconds (internal/hist quantiles).
	WALFsyncP50 float64
	WALFsyncP99 float64
	WALFsyncMax float64
	WALFsyncSum float64
	// Checkpoints taken since boot; CheckpointAge is the seconds since
	// the newest one (negative = none yet, the age line is suppressed).
	Checkpoints   uint64
	CheckpointAge float64
	// RecoveryReplayed is the number of WAL entries replayed at boot;
	// RecoveryTornBytes is how many trailing WAL bytes recovery
	// distrusted and discarded.
	RecoveryReplayed uint64
	RecoveryTornBytes uint64
}

// HistoryEntry is one published tier table in the /v1/history time
// series: the canonical TierTable bytes exactly as /v1/tiers served
// them at that epoch. The daemon's checkpoint loop records one entry
// per epoch and persists the ring across restarts.
type HistoryEntry struct {
	At    time.Time       `json:"at"`
	Epoch int64           `json:"epoch"`
	Table json.RawMessage `json:"table"`
}

// Config wires a Server to its snapshot source and policies.
type Config struct {
	// Snapshots supplies the serving snapshot (required).
	Snapshots SnapshotSource
	// Metrics receives request telemetry; nil builds a fresh set.
	Metrics *Metrics
	// Ingest reports the ingest pipeline's counters for /metrics; nil
	// when no live ingest is attached.
	Ingest func() IngestStats
	// MaxSnapshotAge is the staleness policy: once the serving snapshot
	// is older, /healthz reports degraded (503) and /v1/quote tags
	// responses with X-Tierd-Stale — quoting stays up on the last good
	// snapshot, but load balancers and callers can see the data is old.
	// Zero disables the policy.
	MaxSnapshotAge time.Duration
	// Now is the server's time source for snapshot age; nil selects
	// time.Now. Injectable for fault rehearsal and tests.
	Now func() time.Time
	// Durability reports the WAL/checkpoint subsystem's counters for
	// /metrics; nil when the daemon runs without -data-dir.
	Durability func() DurabilityStats
	// History supplies the checkpointed tier-table time series for
	// GET /v1/history (oldest first); nil serves an empty series.
	History func() []HistoryEntry
	// Build identifies the running binary; the zero value is filled
	// from the embedded build metadata.
	Build buildinfo.Info
}

// Server serves tier quotes out of immutable pricing snapshots.
type Server struct {
	snapshots  SnapshotSource
	metrics    *Metrics
	ingest     func() IngestStats      // optional
	durability func() DurabilityStats  // optional
	history    func() []HistoryEntry   // optional
	maxAge     time.Duration           // 0 = staleness policy disabled
	now        func() time.Time
	build      buildinfo.Info
	buildTag   string // precomputed Info.String() for the X-Tierd-Build header
}

// New wires the API to its snapshot source.
func New(cfg Config) (*Server, error) {
	if cfg.Snapshots == nil {
		return nil, errors.New("server: nil snapshot source")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	if cfg.MaxSnapshotAge < 0 {
		return nil, fmt.Errorf("server: max snapshot age must not be negative, got %v", cfg.MaxSnapshotAge)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Build == (buildinfo.Info{}) {
		cfg.Build = buildinfo.Get()
	}
	return &Server{
		snapshots:  cfg.Snapshots,
		metrics:    cfg.Metrics,
		ingest:     cfg.Ingest,
		durability: cfg.Durability,
		history:    cfg.History,
		maxAge:     cfg.MaxSnapshotAge,
		now:        cfg.Now,
		build:      cfg.Build,
		buildTag:   cfg.Build.String(),
	}, nil
}

// snapshotAge is the age of snap on the server's clock.
func (s *Server) snapshotAge(snap *stream.Snapshot) time.Duration {
	return s.now().Sub(snap.FittedAt)
}

// stale reports whether the staleness policy considers snap too old.
func (s *Server) stale(snap *stream.Snapshot) bool {
	return s.maxAge > 0 && s.snapshotAge(snap) > s.maxAge
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/quote", s.handleQuote)
	mux.HandleFunc("/v1/tiers", s.handleTiers)
	mux.HandleFunc("/v1/history", s.handleHistory)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// quoteResponse is the /v1/quote body.
type quoteResponse struct {
	Src    string  `json:"src"`
	Dst    string  `json:"dst"`
	Tier   int     `json:"tier"`
	Price  float64 `json:"price_usd_per_mbps_month"`
	Source string  `json:"source"`
	Epoch  int64   `json:"epoch"`
}

// tiersResponse is the /v1/tiers body. Table carries the canonical
// stream.TierTable bytes unmodified, so clients (and the end-to-end
// consistency test) see exactly what the repricer published.
type tiersResponse struct {
	Epoch    int64           `json:"epoch"`
	FittedAt time.Time       `json:"fitted_at"`
	Skipped  int             `json:"skipped"`
	Table    json.RawMessage `json:"table"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body) // the connection is the only failure mode here
}

// parseFlow extracts the queried endpoints: either flow=src>dst (the
// aggregate-key shape) or separate src= and dst= parameters.
func parseFlow(r *http.Request) (src, dst netip.Addr, err error) {
	q := r.URL.Query()
	srcStr, dstStr := q.Get("src"), q.Get("dst")
	if flow := q.Get("flow"); flow != "" {
		var ok bool
		srcStr, dstStr, ok = strings.Cut(flow, ">")
		if !ok {
			return src, dst, fmt.Errorf("flow %q is not src>dst", flow)
		}
	}
	if srcStr == "" || dstStr == "" {
		return src, dst, errors.New("need flow=src>dst or src= and dst=")
	}
	if src, err = netip.ParseAddr(srcStr); err != nil {
		return src, dst, fmt.Errorf("src: %w", err)
	}
	if dst, err = netip.ParseAddr(dstStr); err != nil {
		return src, dst, fmt.Errorf("dst: %w", err)
	}
	return src, dst, nil
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	// Server-side latency on the real clock (s.now is a policy clock that
	// tests freeze; freezing it must not zero the histogram).
	start := time.Now()
	defer func() { s.metrics.QuoteSeconds.Observe(time.Since(start).Seconds()) }()
	s.metrics.QuoteRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	src, dst, err := parseFlow(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	snap := s.snapshots.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no pricing snapshot yet"})
		return
	}
	if s.stale(snap) {
		// Degraded mode: the snapshot outlived the staleness policy but
		// quoting stays up on it — the caller sees the age, not a 5xx.
		s.metrics.QuoteStale.Inc()
		w.Header().Set("X-Tierd-Stale", "true")
		w.Header().Set("X-Tierd-Snapshot-Age", fmt.Sprintf("%.3f", s.snapshotAge(snap).Seconds()))
	}
	q, ok := snap.Quote(src, dst)
	if !ok {
		s.metrics.QuoteMisses.Inc()
		writeJSON(w, http.StatusNotFound, errorResponse{"flow matches no tier"})
		return
	}
	writeJSON(w, http.StatusOK, quoteResponse{
		Src:    src.String(),
		Dst:    dst.String(),
		Tier:   q.Tier,
		Price:  q.Price,
		Source: q.Source.String(),
		Epoch:  snap.Epoch,
	})
}

func (s *Server) handleTiers(w http.ResponseWriter, r *http.Request) {
	s.metrics.TiersRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	snap := s.snapshots.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"no pricing snapshot yet"})
		return
	}
	table, err := snap.Table.Marshal()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, tiersResponse{
		Epoch:    snap.Epoch,
		FittedAt: snap.FittedAt,
		Skipped:  snap.Skipped,
		Table:    table,
	})
}

// historyResponse is the /v1/history body.
type historyResponse struct {
	Entries []HistoryEntry `json:"entries"`
}

// handleHistory serves the checkpointed tier-table time series: every
// published epoch the checkpoint loop has recorded, oldest first. It
// answers from the daemon's in-memory ring (restored from the newest
// checkpoint at boot), so history survives restarts along with the
// window.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	s.metrics.HistoryRequests.Inc()
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	entries := []HistoryEntry{}
	if s.history != nil {
		if got := s.history(); got != nil {
			entries = got
		}
	}
	writeJSON(w, http.StatusOK, historyResponse{Entries: entries})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.metrics.HealthRequests.Inc()
	// Build attribution rides on every health response — including the
	// 503s — so probes and load generators can always tell which binary
	// answered. Headers must be set before any WriteHeader.
	w.Header().Set("X-Tierd-Build", s.buildTag)
	snap := s.snapshots.Current()
	if snap == nil {
		http.Error(w, "warming up: no pricing snapshot yet", http.StatusServiceUnavailable)
		return
	}
	if s.stale(snap) {
		http.Error(w, fmt.Sprintf("degraded: snapshot age %v exceeds %v",
			s.snapshotAge(snap).Round(time.Millisecond), s.maxAge), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.MetricsRequests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.WritePrometheus(w); err != nil {
		return
	}
	if s.ingest != nil {
		in := s.ingest()
		fmt.Fprintf(w, "# HELP tierd_ingest_packets_total Export datagrams received.\n# TYPE tierd_ingest_packets_total counter\ntierd_ingest_packets_total %d\n", in.Packets)
		fmt.Fprintf(w, "# HELP tierd_ingest_bad_packets_total Datagrams that failed to decode.\n# TYPE tierd_ingest_bad_packets_total counter\ntierd_ingest_bad_packets_total %d\n", in.BadPackets)
		fmt.Fprintf(w, "# HELP tierd_ingest_records_total Flow records ingested into the window.\n# TYPE tierd_ingest_records_total counter\ntierd_ingest_records_total %d\n", in.Records)
		fmt.Fprintf(w, "# HELP tierd_ingest_duplicates_total Cross-router duplicates suppressed.\n# TYPE tierd_ingest_duplicates_total counter\ntierd_ingest_duplicates_total %d\n", in.Duplicates)
		fmt.Fprintf(w, "# HELP tierd_ingest_dropped_total Records with no aggregation bucket.\n# TYPE tierd_ingest_dropped_total counter\ntierd_ingest_dropped_total %d\n", in.Dropped)
	}
	fmt.Fprintf(w, "# HELP tierd_build_info Build metadata of the running binary (value is always 1).\n# TYPE tierd_build_info gauge\ntierd_build_info{revision=%q,go_version=%q} 1\n",
		s.build.Revision, s.build.GoVersion)
	if s.durability != nil {
		d := s.durability()
		fmt.Fprintf(w, "# HELP tierd_wal_bytes_total Bytes appended to the write-ahead log.\n# TYPE tierd_wal_bytes_total counter\ntierd_wal_bytes_total %d\n", d.WALBytes)
		fmt.Fprintf(w, "# HELP tierd_wal_entries_total Entries appended to the write-ahead log.\n# TYPE tierd_wal_entries_total counter\ntierd_wal_entries_total %d\n", d.WALEntries)
		fmt.Fprintf(w, "# HELP tierd_wal_fsyncs_total WAL fsync syscalls issued.\n# TYPE tierd_wal_fsyncs_total counter\ntierd_wal_fsyncs_total %d\n", d.WALFsyncs)
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_seconds WAL fsync latency.\n# TYPE tierd_wal_fsync_seconds summary\n")
		fmt.Fprintf(w, "tierd_wal_fsync_seconds{quantile=\"0.5\"} %g\n", d.WALFsyncP50)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds{quantile=\"0.99\"} %g\n", d.WALFsyncP99)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds_sum %g\n", d.WALFsyncSum)
		fmt.Fprintf(w, "tierd_wal_fsync_seconds_count %d\n", d.WALFsyncs)
		fmt.Fprintf(w, "# HELP tierd_wal_fsync_max_seconds Worst WAL fsync latency observed.\n# TYPE tierd_wal_fsync_max_seconds gauge\ntierd_wal_fsync_max_seconds %g\n", d.WALFsyncMax)
		fmt.Fprintf(w, "# HELP tierd_checkpoints_total Checkpoints written since boot.\n# TYPE tierd_checkpoints_total counter\ntierd_checkpoints_total %d\n", d.Checkpoints)
		if d.CheckpointAge >= 0 {
			fmt.Fprintf(w, "# HELP tierd_checkpoint_age_seconds Seconds since the newest checkpoint.\n# TYPE tierd_checkpoint_age_seconds gauge\ntierd_checkpoint_age_seconds %g\n", d.CheckpointAge)
		}
		fmt.Fprintf(w, "# HELP tierd_recovery_replayed_total WAL entries replayed during boot recovery.\n# TYPE tierd_recovery_replayed_total counter\ntierd_recovery_replayed_total %d\n", d.RecoveryReplayed)
		fmt.Fprintf(w, "# HELP tierd_recovery_torn_bytes_total Trailing WAL bytes recovery distrusted and discarded.\n# TYPE tierd_recovery_torn_bytes_total counter\ntierd_recovery_torn_bytes_total %d\n", d.RecoveryTornBytes)
	}
	if snap := s.snapshots.Current(); snap != nil {
		fmt.Fprintf(w, "# HELP tierd_snapshot_epoch Epoch of the serving snapshot.\n# TYPE tierd_snapshot_epoch gauge\ntierd_snapshot_epoch %d\n", snap.Epoch)
		fmt.Fprintf(w, "# HELP tierd_snapshot_flows Flows priced in the serving snapshot.\n# TYPE tierd_snapshot_flows gauge\ntierd_snapshot_flows %d\n", snap.Table.Flows)
		fmt.Fprintf(w, "# HELP tierd_snapshot_tiers Tiers in the serving snapshot.\n# TYPE tierd_snapshot_tiers gauge\ntierd_snapshot_tiers %d\n", len(snap.Table.Tiers))
		fmt.Fprintf(w, "# HELP tierd_snapshot_age_seconds Age of the serving snapshot.\n# TYPE tierd_snapshot_age_seconds gauge\ntierd_snapshot_age_seconds %g\n", s.snapshotAge(snap).Seconds())
		stale := 0
		if s.stale(snap) {
			stale = 1
		}
		fmt.Fprintf(w, "# HELP tierd_snapshot_stale Whether the serving snapshot exceeds the staleness policy (1 = degraded).\n# TYPE tierd_snapshot_stale gauge\ntierd_snapshot_stale %d\n", stale)
	}
}
