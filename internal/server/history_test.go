package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// ringOf builds an oldest-first history series with epochs 1..n.
func ringOf(n int) []HistoryEntry {
	out := make([]HistoryEntry, 0, n)
	base := time.Unix(1700000000, 0).UTC()
	for ep := 1; ep <= n; ep++ {
		out = append(out, HistoryEntry{
			At:          base.Add(time.Duration(ep) * time.Minute),
			Epoch:       int64(ep),
			ConfigEpoch: 1,
			Table:       json.RawMessage(fmt.Sprintf(`{"epoch":%d}`, ep)),
		})
	}
	return out
}

func historyServer(t *testing.T, history func() []HistoryEntry,
	scan func(HistoryQuery) ([]HistoryEntry, error)) *httptest.Server {
	t.Helper()
	s, err := New(Config{
		Snapshots:   &fakeSource{snap: makeSnapshot(t)},
		History:     history,
		HistoryScan: scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func decodeHistory(t *testing.T, body []byte) []HistoryEntry {
	t.Helper()
	var resp historyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding history response: %v (%s)", err, body)
	}
	return resp.Entries
}

// TestHistoryParamsRingFallback pins the since/until/limit semantics on
// the ring-backed path: inclusive epoch bounds, newest-limit-kept,
// oldest-first order.
func TestHistoryParamsRingFallback(t *testing.T) {
	ts := historyServer(t, func() []HistoryEntry { return ringOf(40) }, nil)

	cases := []struct {
		query string
		want  []int64
	}{
		{"", seq(1, 40)},
		{"?since=35", seq(35, 40)},
		{"?until=4", seq(1, 4)},
		{"?since=10&until=13", seq(10, 13)},
		{"?limit=3", seq(38, 40)}, // newest 3, oldest-first
		{"?since=10&until=30&limit=5", seq(26, 30)},
		{"?since=0&until=0", seq(1, 40)}, // 0 = unbounded
		{"?since=100", nil},              // empty range
		{"?since=20&until=10", nil},      // inverted range is empty
	}
	for _, tc := range cases {
		status, body := get(t, ts.URL+"/v1/history"+tc.query)
		if status != http.StatusOK {
			t.Fatalf("%q: status %d: %s", tc.query, status, body)
		}
		entries := decodeHistory(t, body)
		got := make([]int64, len(entries))
		for i, e := range entries {
			got[i] = e.Epoch
			if e.ConfigEpoch != 1 {
				t.Errorf("%q: entry %d lost config_epoch: %+v", tc.query, i, e)
			}
		}
		if !int64SlicesEqual(got, tc.want) {
			t.Errorf("%q: epochs %v, want %v", tc.query, got, tc.want)
		}
	}
}

// TestHistoryParamValidation pins the 400 contract: negative or
// non-numeric since/until/limit are rejected before any scan runs.
func TestHistoryParamValidation(t *testing.T) {
	scanned := false
	ts := historyServer(t, nil, func(q HistoryQuery) ([]HistoryEntry, error) {
		scanned = true
		return nil, nil
	})
	for _, query := range []string{
		"?since=-1", "?until=-5", "?limit=-1",
		"?since=abc", "?until=1.5", "?limit=10x",
		"?since=9999999999999999999", // overflows int64
	} {
		scanned = false
		status, body := get(t, ts.URL+"/v1/history"+query)
		if status != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400 (%s)", query, status, body)
		}
		if scanned {
			t.Errorf("%q: invalid query reached the store scan", query)
		}
	}
}

// TestHistoryLimitCap: absent, zero, and over-cap limits all clamp to
// the documented server-side cap.
func TestHistoryLimitCap(t *testing.T) {
	var got []HistoryQuery
	ts := historyServer(t, nil, func(q HistoryQuery) ([]HistoryEntry, error) {
		got = append(got, q)
		return nil, nil
	})
	for _, query := range []string{"", "?limit=0", "?limit=999999"} {
		if status, body := get(t, ts.URL+"/v1/history"+query); status != http.StatusOK {
			t.Fatalf("%q: status %d: %s", query, status, body)
		}
	}
	for i, q := range got {
		if q.Limit != HistoryLimitCap {
			t.Errorf("request %d: limit %d reached the store, want cap %d", i, q.Limit, HistoryLimitCap)
		}
	}
	// The ring fallback honors the cap too.
	ts2 := historyServer(t, func() []HistoryEntry { return ringOf(HistoryLimitCap + 50) }, nil)
	status, body := get(t, ts2.URL+"/v1/history")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	entries := decodeHistory(t, body)
	if len(entries) != HistoryLimitCap {
		t.Fatalf("ring fallback returned %d entries, want cap %d", len(entries), HistoryLimitCap)
	}
	if entries[0].Epoch != 51 || entries[len(entries)-1].Epoch != HistoryLimitCap+50 {
		t.Fatalf("capped ring kept [%d..%d], want the newest %d",
			entries[0].Epoch, entries[len(entries)-1].Epoch, HistoryLimitCap)
	}
}

// TestHistoryStorePreferred: with a HistoryScan wired, the handler
// serves the store's answer (which can reach far past the ring) and
// passes the parsed query through.
func TestHistoryStorePreferred(t *testing.T) {
	var sawQuery HistoryQuery
	deep := ringOf(5) // stands in for store rows older than any ring entry
	ts := historyServer(t,
		func() []HistoryEntry { t.Error("ring consulted despite store"); return nil },
		func(q HistoryQuery) ([]HistoryEntry, error) {
			sawQuery = q
			return deep, nil
		})
	status, body := get(t, ts.URL+"/v1/history?since=2&until=900&limit=10")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if sawQuery != (HistoryQuery{Since: 2, Until: 900, Limit: 10}) {
		t.Fatalf("store saw query %+v", sawQuery)
	}
	if entries := decodeHistory(t, body); len(entries) != 5 {
		t.Fatalf("got %d entries, want the store's 5", len(entries))
	}
}

// TestHistoryStoreError: a failing store scan is a 500, not a silent
// empty series.
func TestHistoryStoreError(t *testing.T) {
	ts := historyServer(t, nil, func(HistoryQuery) ([]HistoryEntry, error) {
		return nil, fmt.Errorf("disk on fire")
	})
	status, body := get(t, ts.URL+"/v1/history")
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", status, body)
	}
}

func seq(from, to int64) []int64 {
	if from > to {
		return nil
	}
	out := make([]int64, 0, to-from+1)
	for ep := from; ep <= to; ep++ {
		out = append(out, ep)
	}
	return out
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
