package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/demandfit"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/stream"
	"tieredpricing/internal/traces"
)

type fakeSource struct{ snap *stream.Snapshot }

func (f *fakeSource) Current() *stream.Snapshot { return f.snap }

// makeSnapshot builds a real two-tier snapshot over a tiny synthetic
// market: one short flow and one long flow from the same source PoP.
func makeSnapshot(t *testing.T) *stream.Snapshot {
	t.Helper()
	db := &geoip.DB{}
	for _, rec := range []geoip.Record{
		{Prefix: netip.MustParsePrefix("10.0.0.0/16"), City: "A", Country: "X", Lat: 0, Lon: 0},
		{Prefix: netip.MustParsePrefix("10.1.0.0/24"), City: "B", Country: "X", Lat: 1, Lon: 1},
		{Prefix: netip.MustParsePrefix("10.2.0.0/24"), City: "C", Country: "Y", Lat: 50, Lon: 50},
	} {
		if err := db.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	w, err := stream.NewWindow(traces.AggregateKey, time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []netflow.Record{
		{SrcAddr: netip.MustParseAddr("10.0.0.1"), DstAddr: netip.MustParseAddr("10.1.0.1"),
			SrcPort: 1, DstPort: 443, Proto: 6, Octets: 4_000_000_000},
		{SrcAddr: netip.MustParseAddr("10.0.0.1"), DstAddr: netip.MustParseAddr("10.2.0.1"),
			SrcPort: 2, DstPort: 443, Proto: 6, Octets: 3_000_000_000},
	}
	w.Ingest(netflow.Header{}, recs)
	rp, err := stream.NewRepricer(stream.Config{
		Window:      w,
		Resolver:    &demandfit.Resolver{Geo: db},
		Demand:      econ.CED{Alpha: 1.1},
		Cost:        cost.Linear{Theta: 0.2},
		P0:          10,
		Strategy:    bundling.ProfitWeighted{},
		Tiers:       2,
		DurationSec: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rp.Reprice(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func newTestServer(t *testing.T, src SnapshotSource, ingest func() IngestStats) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Snapshots: src, Metrics: NewMetrics(), Ingest: ingest})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestServerWarmingUp(t *testing.T) {
	_, ts := newTestServer(t, &fakeSource{}, nil)
	for _, path := range []string{"/v1/quote?src=10.0.0.1&dst=10.1.0.1", "/v1/tiers", "/healthz"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s before first snapshot: status %d, want 503", path, code)
		}
	}
	// /metrics is alive even before the first snapshot.
	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), "tierd_reprices_total") {
		t.Errorf("metrics during warmup: status %d body %q", code, body)
	}
}

func TestQuoteEndpoint(t *testing.T) {
	snap := makeSnapshot(t)
	srv, ts := newTestServer(t, &fakeSource{snap: snap}, nil)

	code, body := get(t, ts.URL+"/v1/quote?src=10.0.0.1&dst=10.1.0.1")
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, body)
	}
	var q quoteResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	want, ok := snap.Quote(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.1.0.1"))
	if !ok {
		t.Fatal("fixture flow has no quote")
	}
	if q.Tier != want.Tier || q.Price != want.Price || q.Source != "window" || q.Epoch != snap.Epoch {
		t.Errorf("quote %+v, want tier=%d price=%v source=window epoch=%d", q, want.Tier, want.Price, snap.Epoch)
	}

	// flow=src>dst is equivalent.
	code, body2 := get(t, ts.URL+"/v1/quote?flow=10.0.0.1%3E10.1.0.1")
	if code != http.StatusOK || !bytes.Equal(body, body2) {
		t.Errorf("flow= form: status %d, body %s (want %s)", code, body2, body)
	}

	if code, _ := get(t, ts.URL+"/v1/quote?src=10.0.0.1"); code != http.StatusBadRequest {
		t.Errorf("missing dst: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/quote?flow=oops"); code != http.StatusBadRequest {
		t.Errorf("malformed flow: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/quote?src=not-an-ip&dst=10.1.0.1"); code != http.StatusBadRequest {
		t.Errorf("bad src: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/quote?src=203.0.113.1&dst=198.51.100.1"); code != http.StatusNotFound {
		t.Errorf("unmatched flow: status %d, want 404", code)
	}
	if srv.proc.QuoteMisses.Value() != 1 {
		t.Errorf("quote misses = %d, want 1", srv.proc.QuoteMisses.Value())
	}

	resp, err := http.Post(ts.URL+"/v1/quote", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}
}

func TestTiersEndpointCarriesCanonicalTable(t *testing.T) {
	snap := makeSnapshot(t)
	_, ts := newTestServer(t, &fakeSource{snap: snap}, nil)
	code, body := get(t, ts.URL+"/v1/tiers")
	if code != http.StatusOK {
		t.Fatalf("status %d body %s", code, body)
	}
	var resp tiersResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := snap.Table.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(resp.Table), want) {
		t.Errorf("table bytes differ:\ngot  %s\nwant %s", resp.Table, want)
	}
	if resp.Epoch != snap.Epoch {
		t.Errorf("epoch %d, want %d", resp.Epoch, snap.Epoch)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	snap := makeSnapshot(t)
	srv, ts := newTestServer(t, &fakeSource{snap: snap}, func() IngestStats {
		return IngestStats{Packets: 5, BadPackets: 1, Records: 60, Duplicates: 30, Dropped: 2}
	})
	srv.proc.ObserveReprice(0.02, false)

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: status %d body %q", code, body)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	out := string(body)
	for _, want := range []string{
		"tierd_ingest_packets_total 5",
		"tierd_ingest_bad_packets_total 1",
		"tierd_ingest_records_total 60",
		"tierd_ingest_duplicates_total 30",
		"tierd_ingest_dropped_total 2",
		"tierd_snapshot_epoch 1",
		"tierd_reprice_seconds_count 1",
		"tierd_health_requests_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for nil snapshot source")
	}
	if _, err := New(Config{Snapshots: &fakeSource{}}); err != nil {
		t.Errorf("nil metrics should default, got %v", err)
	}
	if _, err := New(Config{Snapshots: &fakeSource{}, MaxSnapshotAge: -time.Second}); err == nil {
		t.Error("negative staleness threshold accepted")
	}
}

// TestStalenessPolicy pins the degraded-mode contract: /healthz flips
// to 503 exactly when the snapshot's age exceeds MaxSnapshotAge, while
// /v1/quote keeps answering 200 from the stale snapshot with the
// staleness headers set.
func TestStalenessPolicy(t *testing.T) {
	snap := makeSnapshot(t)
	var mu sync.Mutex
	now := snap.FittedAt
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	setNow := func(t time.Time) { mu.Lock(); now = t; mu.Unlock() }
	s, err := New(Config{
		Snapshots:      &fakeSource{snap: snap},
		MaxSnapshotAge: 30 * time.Second,
		Now:            clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	quoteURL := ts.URL + "/v1/quote?src=10.0.0.1&dst=10.1.0.1"
	// At the threshold (not beyond): still healthy, no staleness header.
	setNow(snap.FittedAt.Add(30 * time.Second))
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz at threshold: status %d body %q, want 200", code, body)
	}
	resp, err := http.Get(quoteURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Tierd-Stale") != "" {
		t.Errorf("fresh quote: status %d stale header %q", resp.StatusCode, resp.Header.Get("X-Tierd-Stale"))
	}

	// One tick past the threshold: degraded, quoting stays up.
	setNow(snap.FittedAt.Add(30*time.Second + time.Millisecond))
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Errorf("healthz past threshold: status %d body %q, want 503 degraded", code, body)
	}
	resp, err = http.Get(quoteURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale quote: status %d, want 200 (quoting never goes down)", resp.StatusCode)
	}
	if resp.Header.Get("X-Tierd-Stale") != "true" || resp.Header.Get("X-Tierd-Snapshot-Age") == "" {
		t.Errorf("stale quote headers: stale=%q age=%q", resp.Header.Get("X-Tierd-Stale"),
			resp.Header.Get("X-Tierd-Snapshot-Age"))
	}

	// /metrics reports the age and the stale flag.
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(string(body), "tierd_snapshot_stale 1") ||
		!strings.Contains(string(body), "tierd_snapshot_age_seconds") {
		t.Errorf("metrics missing staleness gauges:\n%s", body)
	}
}
