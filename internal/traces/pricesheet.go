package traces

import (
	"errors"
	"math"
	"math/rand"
)

// PriceSheet is a synthetic leased-line price list: normalized link
// distances with normalized prices, standing in for the proprietary ITU
// and NTT price data the paper fits its concave distance-to-cost curve to
// (Figure 6).
type PriceSheet struct {
	Name string
	// A, B, C are the generating curve's constants: price =
	// A·log_B(distance) + C on normalized axes.
	A, B, C float64
	// Distances and Prices are the sampled points, both normalized to a
	// maximum of 1.
	Distances []float64
	Prices    []float64
}

// GeneratePriceSheet samples n points from y = a·log_b(x) + c on
// x ∈ (0, 1] with multiplicative noise, clamping prices to stay positive.
func GeneratePriceSheet(name string, a, b, c float64, n int, noise float64, seed int64) (PriceSheet, error) {
	if n < 2 {
		return PriceSheet{}, errors.New("traces: price sheet needs at least 2 points")
	}
	if b <= 0 || b == 1 {
		return PriceSheet{}, errors.New("traces: invalid log base")
	}
	r := rand.New(rand.NewSource(seed))
	sheet := PriceSheet{Name: name, A: a, B: b, C: c}
	for i := 0; i < n; i++ {
		// Log-uniform distances cover the short-haul end densely, like
		// real tariff tables.
		x := math.Exp(r.Float64() * math.Log(0.01)) // (0.01, 1]
		y := (a*math.Log(x)/math.Log(b) + c) * math.Exp(r.NormFloat64()*noise)
		if y < 0.01 {
			y = 0.01
		}
		sheet.Distances = append(sheet.Distances, x)
		sheet.Prices = append(sheet.Prices, y)
	}
	return sheet, nil
}

// ITUPriceSheet synthesizes a sheet following the paper's ITU fit
// (a ≈ 0.43, b ≈ 9.43, c ≈ 0.99).
func ITUPriceSheet(seed int64) (PriceSheet, error) {
	return GeneratePriceSheet("ITU", 0.43, 9.43, 0.99, 120, 0.03, seed)
}

// NTTPriceSheet synthesizes a sheet following the paper's NTT fit
// (a ≈ 0.03, b ≈ 1.12, c ≈ 1.01 — an almost flat tariff).
func NTTPriceSheet(seed int64) (PriceSheet, error) {
	return GeneratePriceSheet("NTT", 0.03, 1.12, 1.01, 120, 0.03, seed)
}
