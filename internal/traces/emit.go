package traces

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"

	"tieredpricing/internal/netflow"
)

// EmitConfig tunes NetFlow rendering.
type EmitConfig struct {
	// RecordsPerFlow is the minimum number of records each flow's volume
	// is split into (default 20). Flows too large for that many records
	// at the sampled 32-bit octet counter automatically get more.
	RecordsPerFlow int
	// Seed randomizes record timing.
	Seed int64
}

// maxSampledOctets caps the per-record sampled octet counter safely below
// the uint32 limit.
const maxSampledOctets = 4_000_000_000

// EmitNetFlow renders the dataset as NetFlow v5 export streams, one per
// exporting router, mirroring how the paper's data was captured: every
// record is exported by EVERY router on the flow's path (entry and exit
// PoP for the EU ISP and CDN, the full routed path for Internet2), so the
// collection pipeline must de-duplicate; volumes are 1-in-N sampled per
// Dataset.SamplingInterval.
func (ds *Dataset) EmitNetFlow(cfg EmitConfig) (map[string][]byte, error) {
	if cfg.RecordsPerFlow <= 0 {
		cfg.RecordsPerFlow = 20
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	sampling := uint64(ds.SamplingInterval)
	if sampling == 0 {
		sampling = 1
	}

	streams := map[string]*netflow.Writer{}
	bufs := map[string]*bytes.Buffer{}
	writer := func(router string) *netflow.Writer {
		if w, ok := streams[router]; ok {
			return w
		}
		buf := &bytes.Buffer{}
		bufs[router] = buf
		w := netflow.NewWriter(buf, netflow.Header{
			UnixSecs:         1257985000,
			SamplingInterval: uint16(sampling),
		})
		streams[router] = w
		return w
	}

	for i, f := range ds.Flows {
		m := ds.Meta[i]
		totalOctets := uint64(f.Demand * 1e6 / 8 * ds.DurationSec)
		sampledTotal := totalOctets / sampling
		if sampledTotal == 0 {
			sampledTotal = 1
		}
		records := cfg.RecordsPerFlow
		if need := int(sampledTotal/maxSampledOctets) + 1; need > records {
			records = need
		}
		perRecord := sampledTotal / uint64(records)
		remainder := sampledTotal % uint64(records)

		routers := m.Path
		if len(routers) == 0 {
			routers = []string{m.SrcCity, m.DstCity}
			if m.SrcCity == m.DstCity {
				routers = routers[:1]
			}
		}
		dstIP := m.DstPrefix.Addr().Next()
		for seq := 0; seq < records; seq++ {
			octets := perRecord
			if seq == records-1 {
				octets += remainder
			}
			if octets == 0 {
				continue
			}
			if octets > maxSampledOctets {
				return nil, fmt.Errorf("traces: flow %q record overflows sampled counter", f.ID)
			}
			start := uint32(r.Intn(int(ds.DurationSec))) * 1000
			rec := netflow.Record{
				SrcAddr: m.SrcIP,
				DstAddr: dstIP,
				Packets: uint32(octets / 1000),
				Octets:  uint32(octets),
				First:   start,
				Last:    start + uint32(1+r.Intn(60000)),
				SrcPort: uint16(1024 + r.Intn(60000)),
				DstPort: 443,
				Proto:   6,
				SrcAS:   uint16(seq), // per-flow record sequence (dedup stamp)
				DstMask: uint8(m.DstPrefix.Bits()),
			}
			// The same record is exported by every router on the path.
			for hop, router := range routers {
				dup := rec
				dup.Input = uint16(hop)
				dup.Output = uint16(hop + 1)
				if err := writer(router).Write(dup); err != nil {
					return nil, err
				}
			}
		}
	}

	out := make(map[string][]byte, len(bufs))
	for router, w := range streams {
		if err := w.Flush(); err != nil {
			return nil, err
		}
		out[router] = bufs[router].Bytes()
	}
	return out, nil
}

// AggregateKey is the collection pipeline's bucketing rule for these
// datasets: source PoP block plus destination /24, so each synthesized
// flow maps to exactly one bucket.
func AggregateKey(rec netflow.Record) string {
	src := maskTo(rec.SrcAddr, 20)
	dst := maskTo(rec.DstAddr, 24)
	return src.String() + ">" + dst.String()
}

// maskTo zeroes host bits beyond the given prefix length.
func maskTo(a netip.Addr, bits int) netip.Addr {
	p := netip.PrefixFrom(a, bits).Masked()
	return p.Addr()
}
