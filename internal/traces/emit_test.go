package traces

import (
	"bytes"
	"math"
	"testing"

	"tieredpricing/internal/netflow"
)

func TestEmitNetFlowRoundTrip(t *testing.T) {
	// The full §4.1.1 pipeline: dataset → NetFlow streams (duplicated
	// across routers, sampled) → collector (dedup, restore) → per-flow
	// demands matching the generated dataset.
	for _, name := range Names() {
		ds, err := ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := ds.EmitNetFlow(EmitConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(streams) < 2 {
			t.Fatalf("%s: only %d router streams", name, len(streams))
		}
		c := netflow.NewCollector(AggregateKey)
		for router, stream := range streams {
			rd := netflow.NewReader(bytes.NewReader(stream))
			for {
				h, recs, err := rd.Next()
				if err != nil {
					break
				}
				c.Ingest(h, recs)
				_ = router
			}
		}
		records, dups, dropped := c.Stats()
		if dups == 0 {
			t.Errorf("%s: expected cross-router duplicates, got none", name)
		}
		if dropped != 0 {
			t.Errorf("%s: %d records dropped", name, dropped)
		}
		aggs := c.Aggregates()
		if len(aggs) != len(ds.Flows) {
			t.Fatalf("%s: %d aggregates for %d flows (records %d)",
				name, len(aggs), len(ds.Flows), records)
		}
		// Demands must match within sampling-rounding error.
		byKey := map[string]float64{}
		for _, a := range aggs {
			byKey[a.Key] = netflow.DemandMbps(a.Octets, ds.DurationSec)
		}
		for i, f := range ds.Flows {
			m := ds.Meta[i]
			// Recompute the aggregation key the emitter produces.
			rec := netflow.Record{SrcAddr: m.SrcIP, DstAddr: m.DstPrefix.Addr().Next()}
			got, ok := byKey[AggregateKey(rec)]
			if !ok {
				t.Fatalf("%s: flow %d (%s) missing from aggregates", name, i, f.ID)
			}
			if math.Abs(got-f.Demand) > 0.01*f.Demand+0.01 {
				t.Errorf("%s: flow %d demand %v, want %v", name, i, got, f.Demand)
			}
		}
	}
}

func TestEmitNetFlowDeterministic(t *testing.T) {
	ds, err := EUISP(4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ds.EmitNetFlow(EmitConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ds.EmitNetFlow(EmitConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("stream counts differ")
	}
	for router := range s1 {
		if !bytes.Equal(s1[router], s2[router]) {
			t.Fatalf("router %s stream differs between same-seed runs", router)
		}
	}
}

func TestEmitNetFlowInternet2PathDuplication(t *testing.T) {
	// Internet2 records must be exported by every router on the flow's
	// path, so the number of router streams equals the number of
	// distinct path cities.
	ds, err := Internet2(6)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := ds.EmitNetFlow(EmitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, m := range ds.Meta {
		for _, city := range m.Path {
			want[city] = true
		}
	}
	if len(streams) != len(want) {
		t.Fatalf("got %d streams, want %d", len(streams), len(want))
	}
	for city := range want {
		if _, ok := streams[city]; !ok {
			t.Errorf("no stream for path router %s", city)
		}
	}
}
