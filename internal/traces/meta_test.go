package traces

import (
	"strings"
	"testing"
)

func TestMetaRoundTrip(t *testing.T) {
	in := Meta{
		Dataset: "euisp", Seed: 7, Flows: 120,
		P0: 9.5, DurationSec: 86400, Sampling: 1000, Routers: 12,
	}
	var b strings.Builder
	if err := WriteMeta(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMeta(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestReadMetaTolerance(t *testing.T) {
	// Unknown keys and blank lines are ignored; missing optional keys are
	// left zero.
	src := "dataset=cdn\nfuture_key=42\n\nblended_rate=12\nduration_sec=300\n"
	m, err := ReadMeta(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dataset != "cdn" || m.P0 != 12 || m.DurationSec != 300 || m.Sampling != 0 {
		t.Fatalf("unexpected meta %+v", m)
	}
}

func TestReadMetaRejectsIncomplete(t *testing.T) {
	cases := []string{
		"",
		"dataset=euisp\n",
		"dataset=euisp\nblended_rate=9.5\n",
		"blended_rate=9.5\nduration_sec=300\n",
		"dataset=euisp\nblended_rate=bogus\nduration_sec=300\n",
	}
	for _, src := range cases {
		if _, err := ReadMeta(strings.NewReader(src)); err == nil {
			t.Errorf("ReadMeta(%q): want error, got nil", src)
		}
	}
}
