package traces

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"tieredpricing/internal/econ"
)

// flowsCSVHeader is the column layout of the ground-truth interchange
// format written by cmd/tracegen and consumed by cmd/bundlectl's
// recovery check.
var flowsCSVHeader = []string{"id", "demand_mbps", "distance_miles", "region", "onnet"}

// WriteFlowsCSV serializes a flow set's observable ground truth (the
// fitted Valuation/Cost fields are derived, not data, and are omitted).
func WriteFlowsCSV(w io.Writer, flows []econ.Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(flowsCSVHeader); err != nil {
		return err
	}
	for _, f := range flows {
		row := []string{
			f.ID,
			strconv.FormatFloat(f.Demand, 'g', -1, 64),
			strconv.FormatFloat(f.Distance, 'g', -1, 64),
			f.Region.String(),
			strconv.FormatBool(f.OnNet),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFlowsCSV parses the ground-truth interchange format.
func ReadFlowsCSV(r io.Reader) ([]econ.Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(flowsCSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traces: reading header: %w", err)
	}
	for i, want := range flowsCSVHeader {
		if header[i] != want {
			return nil, fmt.Errorf("traces: bad header column %d: %q", i, header[i])
		}
	}
	var out []econ.Flow
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: %w", line, err)
		}
		demand, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: demand: %w", line, err)
		}
		distance, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: distance: %w", line, err)
		}
		region, err := parseRegion(row[3])
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: %w", line, err)
		}
		onNet, err := strconv.ParseBool(row[4])
		if err != nil {
			return nil, fmt.Errorf("traces: line %d: onnet: %w", line, err)
		}
		out = append(out, econ.Flow{
			ID: row[0], Demand: demand, Distance: distance,
			Region: region, OnNet: onNet,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("traces: no flows in CSV")
	}
	return out, nil
}

func parseRegion(s string) (econ.Region, error) {
	switch s {
	case "metro":
		return econ.RegionMetro, nil
	case "national":
		return econ.RegionNational, nil
	case "international":
		return econ.RegionInternational, nil
	default:
		return 0, fmt.Errorf("unknown region %q", s)
	}
}
