package traces

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tieredpricing/internal/econ"
)

func almostEq(a, b, tol float64) bool {
	return !math.IsNaN(a) && !math.IsNaN(b) && math.Abs(a-b) <= tol
}

// relWithin checks |got/want − 1| ≤ tol.
func relWithin(got, want, tol float64) bool {
	return math.Abs(got/want-1) <= tol
}

func TestCalibrateAnalytics(t *testing.T) {
	cal, err := calibrate(EUISPTargets, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// σ from distance CV 0.70.
	wantSigma := math.Sqrt(math.Log(1 + 0.49))
	if !almostEq(cal.sigma, wantSigma, 1e-12) {
		t.Errorf("sigma = %v, want %v", cal.sigma, wantSigma)
	}
	// η reproduces the demand CV: η²σ² + noise² = ln(1+cv²).
	if got := cal.eta*cal.eta*cal.sigma*cal.sigma + 0.25*0.25; !almostEq(got, math.Log(1+1.71*1.71), 1e-9) {
		t.Errorf("eta does not reproduce demand CV: %v", got)
	}
	// μ puts the tilted mean at the weighted distance target.
	tilted := math.Exp(cal.mu - cal.eta*cal.sigma*cal.sigma + cal.sigma*cal.sigma/2)
	if !almostEq(tilted, 54, 1e-9) {
		t.Errorf("tilted mean = %v, want 54", tilted)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := calibrate(Targets{}, 0.25); err == nil {
		t.Error("expected error for zero targets")
	}
	// Noise exceeding the demand CV target is impossible to calibrate.
	if _, err := calibrate(Targets{WeightedMeanDistance: 10, DistanceCV: 1, DemandCV: 0.1}, 3); err == nil {
		t.Error("expected error for excessive noise")
	}
}

func TestPresetsMatchTable1(t *testing.T) {
	cases := []struct {
		name    string
		build   func(int64) (*Dataset, error)
		targets Targets
	}{
		{"euisp", EUISP, EUISPTargets},
		{"cdn", CDN, CDNTargets},
		{"internet2", Internet2, Internet2Targets},
	}
	for _, c := range cases {
		ds, err := c.build(1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		st, err := ds.Stats()
		if err != nil {
			t.Fatal(err)
		}
		// Snapping to a finite PoP-pair set distorts the analytic moments;
		// require the headline statistics within 35% of the paper's.
		if !relWithin(st.WeightedMeanDistance, c.targets.WeightedMeanDistance, 0.35) {
			t.Errorf("%s: weighted mean distance %v, target %v",
				c.name, st.WeightedMeanDistance, c.targets.WeightedMeanDistance)
		}
		if !relWithin(st.AggregateGbps, c.targets.AggregateGbps, 0.01) {
			t.Errorf("%s: aggregate %v Gbps, target %v",
				c.name, st.AggregateGbps, c.targets.AggregateGbps)
		}
		if !relWithin(st.DemandCV, c.targets.DemandCV, 0.5) {
			t.Errorf("%s: demand CV %v, target %v", c.name, st.DemandCV, c.targets.DemandCV)
		}
		if st.Flows != DefaultFlows {
			t.Errorf("%s: %d flows", c.name, st.Flows)
		}
	}
}

func TestPresetsDeterministic(t *testing.T) {
	a, err := EUISP(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EUISP(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs between same-seed runs", i)
		}
	}
	c, err := EUISP(8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Flows {
		if a.Flows[i].Demand != c.Flows[i].Demand {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical demands")
	}
}

func TestDatasetRegionsConsistent(t *testing.T) {
	ds, err := CDN(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range ds.Flows {
		m := ds.Meta[i]
		switch f.Region {
		case econ.RegionMetro:
			if m.SrcCity != m.DstCity {
				t.Errorf("flow %d: metro but %s->%s", i, m.SrcCity, m.DstCity)
			}
		case econ.RegionNational:
			if m.SrcCountry != m.DstCountry || m.SrcCity == m.DstCity {
				t.Errorf("flow %d: national but %s/%s->%s/%s", i,
					m.SrcCity, m.SrcCountry, m.DstCity, m.DstCountry)
			}
		case econ.RegionInternational:
			if m.SrcCountry == m.DstCountry {
				t.Errorf("flow %d: international but both %s", i, m.SrcCountry)
			}
		}
	}
}

func TestDatasetAddressing(t *testing.T) {
	ds, err := Internet2(5)
	if err != nil {
		t.Fatal(err)
	}
	seenDst := map[string]bool{}
	for i, m := range ds.Meta {
		if !m.SrcIP.IsValid() {
			t.Fatalf("flow %d: no source IP", i)
		}
		if !m.DstPrefix.IsValid() || m.DstPrefix.Bits() != 24 {
			t.Fatalf("flow %d: bad dst prefix %v", i, m.DstPrefix)
		}
		if seenDst[m.DstPrefix.String()] {
			t.Fatalf("flow %d: duplicate dst prefix %v", i, m.DstPrefix)
		}
		seenDst[m.DstPrefix.String()] = true
		// Both endpoints must resolve through the GeoIP DB.
		if _, ok := ds.Geo.Lookup(m.SrcIP); !ok {
			t.Fatalf("flow %d: src %v unresolved", i, m.SrcIP)
		}
		rec, ok := ds.Geo.Lookup(m.DstPrefix.Addr().Next())
		if !ok {
			t.Fatalf("flow %d: dst %v unresolved", i, m.DstPrefix)
		}
		if rec.City != m.DstCity {
			t.Fatalf("flow %d: dst resolves to %q, want %q", i, rec.City, m.DstCity)
		}
	}
}

func TestInternet2FlowsHavePaths(t *testing.T) {
	ds, err := Internet2(9)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ds.Meta {
		if len(m.Path) < 2 {
			t.Fatalf("flow %d: path %v too short", i, m.Path)
		}
		if m.Path[0] != m.SrcCity || m.Path[len(m.Path)-1] != m.DstCity {
			t.Fatalf("flow %d: path %v does not connect %s->%s",
				i, m.Path, m.SrcCity, m.DstCity)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, ds.Name)
		}
	}
	if _, err := ByName("nonesuch", 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestGenerateValidation(t *testing.T) {
	pairs := []endpointPair{{distance: 10}}
	if _, err := generate(Config{NumFlows: 0, P0: 20, Targets: EUISPTargets}, pairs, nil, nil); err == nil {
		t.Error("expected error for zero flows")
	}
	if _, err := generate(Config{NumFlows: 5, P0: 20, Targets: EUISPTargets}, nil, nil, nil); err == nil {
		t.Error("expected error for no pairs")
	}
	if _, err := generate(Config{NumFlows: 5, Targets: EUISPTargets}, pairs, nil, nil); err == nil {
		t.Error("expected error for zero P0")
	}
}

func TestSnapIndex(t *testing.T) {
	// Deterministic cases where the ±20% window is empty.
	sorted := []float64{10, 100, 1000}
	rsrc := rand.New(rand.NewSource(1))
	if got := snapIndex(sorted, 1, rsrc); got != 0 {
		t.Errorf("snap(1) = %d, want 0", got)
	}
	if got := snapIndex(sorted, 1e6, rsrc); got != 2 {
		t.Errorf("snap(1e6) = %d, want 2", got)
	}
	if got := snapIndex(sorted, 40, rsrc); got != 0 {
		t.Errorf("snap(40) = %d, want 0 (nearer to 10)", got)
	}
	if got := snapIndex(sorted, 70, rsrc); got != 1 {
		t.Errorf("snap(70) = %d, want 1 (nearer to 100)", got)
	}
	// Window hit: targets near an element pick within the window.
	for trial := 0; trial < 50; trial++ {
		if got := snapIndex(sorted, 100, rsrc); got != 1 {
			t.Fatalf("snap(100) = %d, want 1", got)
		}
	}
}

func TestPriceSheets(t *testing.T) {
	for _, build := range []func(int64) (PriceSheet, error){ITUPriceSheet, NTTPriceSheet} {
		sheet, err := build(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sheet.Distances) != len(sheet.Prices) || len(sheet.Prices) < 100 {
			t.Fatalf("%s: bad sheet sizes", sheet.Name)
		}
		for i := range sheet.Distances {
			if sheet.Distances[i] <= 0 || sheet.Distances[i] > 1 {
				t.Fatalf("%s: distance %v out of (0,1]", sheet.Name, sheet.Distances[i])
			}
			if sheet.Prices[i] <= 0 {
				t.Fatalf("%s: non-positive price", sheet.Name)
			}
		}
	}
	if _, err := GeneratePriceSheet("x", 1, 1, 1, 10, 0, 1); err == nil {
		t.Error("expected error for base 1")
	}
	if _, err := GeneratePriceSheet("x", 1, 2, 1, 1, 0, 1); err == nil {
		t.Error("expected error for n < 2")
	}
}

// TestTiltingIdentityProperty validates the calibration math of
// DESIGN.md §2 directly: sampling d ~ LN(μ, σ²) and weighting by
// q ∝ d^{−η}, the demand-weighted distance distribution is the
// exponentially tilted LN(μ − ησ², σ²), so its weighted mean and
// weighted CV should land on the analytic targets.
func TestTiltingIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		targets := Targets{
			WeightedMeanDistance: 20 + r.Float64()*2000,
			DistanceCV:           0.3 + r.Float64()*0.6,
			AggregateGbps:        1,
			DemandCV:             1 + r.Float64()*2,
		}
		cal, err := calibrate(targets, 0.2)
		if err != nil {
			return false
		}
		const n = 120000
		ds := make([]float64, n)
		qs := make([]float64, n)
		for i := 0; i < n; i++ {
			d := math.Exp(cal.mu + cal.sigma*r.NormFloat64())
			ds[i] = d
			qs[i] = math.Pow(d, -cal.eta) * math.Exp(cal.noise*r.NormFloat64())
		}
		var num, den float64
		for i := range ds {
			num += qs[i] * ds[i]
			den += qs[i]
		}
		wmean := num / den
		// Heavy-tailed weights make the estimator noisy; 12% tolerance
		// over 120k samples is a real statistical bound, not slack.
		return math.Abs(wmean/targets.WeightedMeanDistance-1) < 0.12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
