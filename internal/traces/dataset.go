// Package traces synthesizes the three network datasets of the paper's
// Table 1 — a European transit ISP, an international CDN, and the
// Internet2 research backbone. The real datasets are proprietary 24-hour
// sampled NetFlow captures; these generators produce populations whose
// four published statistics (demand-weighted mean flow distance, distance
// CV, aggregate traffic, demand CV) match the paper's, built on the same
// structural machinery the paper describes: PoP topologies for the EU
// ISP and Internet2, a GeoIP database for the CDN, and NetFlow emission
// with cross-router duplication for the collection pipeline.
//
// Demand is coupled to distance by a gravity law q ∝ d^{−η}·ε (see
// DESIGN.md §2): exponential tilting makes the calibration analytic, and
// the coupling is what gives the demand/profit-weighted bundling
// strategies their paper-reported performance.
package traces

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/stats"
	"tieredpricing/internal/topology"
)

// Targets are the Table 1 statistics a generator calibrates to.
type Targets struct {
	// WeightedMeanDistance is the demand-weighted mean flow distance in
	// miles.
	WeightedMeanDistance float64
	// DistanceCV is the coefficient of variation of flow distances.
	DistanceCV float64
	// AggregateGbps is total traffic in Gbit/s.
	AggregateGbps float64
	// DemandCV is the coefficient of variation of per-flow demands.
	DemandCV float64
}

// Config parameterizes a synthetic dataset.
type Config struct {
	// Name labels the dataset ("euisp", "cdn", "internet2").
	Name string
	// Seed makes generation reproducible.
	Seed int64
	// NumFlows is the number of destination flows to synthesize.
	NumFlows int
	// Targets are the Table 1 statistics to calibrate to.
	Targets Targets
	// NoiseSigma is the lognormal σ of the demand noise ε (default 0.25).
	NoiseSigma float64
	// ElephantFraction and ElephantFactor inject a few outsized flows
	// (fraction of flows, demand multiplier). Research backbones like
	// Internet2 owe their extreme demand CV (4.53 in Table 1) to a
	// handful of bulk-transfer elephants rather than to gravity alone,
	// which a finite PoP-pair set cannot reproduce by tilting.
	ElephantFraction float64
	ElephantFactor   float64
	// P0 is the blended rate in $/Mbps/month associated with the dataset.
	P0 float64
	// DurationSec is the capture window (default 24h).
	DurationSec float64
}

// FlowMeta carries a flow's endpoint attachments for pipeline replay.
type FlowMeta struct {
	// SrcCity/DstCity and countries locate the endpoints.
	SrcCity, SrcCountry string
	DstCity, DstCountry string
	// SrcIP is the flow's source address (inside the source PoP's
	// loopback prefix); DstPrefix is the destination block.
	SrcIP     netip.Addr
	DstPrefix netip.Prefix
	// Path is the router path (Internet2 only; nil otherwise).
	Path []string
}

// Dataset is a generated network trace: fitted-ready flows, endpoint
// metadata, and the substrate objects (topology graph, GeoIP DB) needed
// to re-derive distances from raw NetFlow data.
type Dataset struct {
	Name        string
	P0          float64
	DurationSec float64
	Flows       []econ.Flow
	Meta        []FlowMeta
	Graph       *topology.Graph
	Geo         *geoip.DB
	// SamplingInterval is the 1-in-N packet sampling the exporters apply.
	SamplingInterval uint16
	// Targets echoes the calibration targets for reporting.
	Targets Targets

	// cities indexes auxiliary (non-graph) cities by name, e.g. the CDN's
	// GeoIP destination cities.
	cities map[string]topology.City
}

// Stats are a dataset's measured Table 1 statistics.
type Stats struct {
	Flows                int
	WeightedMeanDistance float64
	DistanceCV           float64 // demand-weighted
	UnweightedDistanceCV float64
	AggregateGbps        float64
	DemandCV             float64
}

// Stats measures the dataset.
func (ds *Dataset) Stats() (Stats, error) {
	return MeasureFlows(ds.Flows)
}

// MeasureFlows computes Table 1 statistics for any flow set.
func MeasureFlows(flows []econ.Flow) (Stats, error) {
	if len(flows) == 0 {
		return Stats{}, errors.New("traces: no flows")
	}
	ds := make([]float64, len(flows))
	qs := make([]float64, len(flows))
	for i, f := range flows {
		ds[i] = f.Distance
		qs[i] = f.Demand
	}
	wm, err := stats.WeightedMean(ds, qs)
	if err != nil {
		return Stats{}, err
	}
	wcv, err := stats.WeightedCV(ds, qs)
	if err != nil {
		return Stats{}, err
	}
	ucv, err := stats.CV(ds)
	if err != nil {
		return Stats{}, err
	}
	qcv, err := stats.CV(qs)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Flows:                len(flows),
		WeightedMeanDistance: wm,
		DistanceCV:           wcv,
		UnweightedDistanceCV: ucv,
		AggregateGbps:        stats.Sum(qs) / 1000,
		DemandCV:             qcv,
	}, nil
}

// endpointPair is a candidate (src, dst) attachment with its flow
// distance under the dataset's distance heuristic.
type endpointPair struct {
	src, dst topology.City
	distance float64
	path     []string
}

// calibration is the analytic gravity calibration of DESIGN.md §2.
type calibration struct {
	mu, sigma float64 // raw distance lognormal parameters
	eta       float64 // gravity exponent
	noise     float64 // demand noise σ
}

// calibrate solves the Table 1 moments for generator parameters:
// σ from the distance CV, η from the demand CV net of noise, μ from the
// demand-weighted mean distance under the exponential tilt.
func calibrate(t Targets, noise float64) (calibration, error) {
	if t.WeightedMeanDistance <= 0 || t.DistanceCV <= 0 || t.DemandCV <= 0 {
		return calibration{}, errors.New("traces: targets must be positive")
	}
	sigma := math.Sqrt(math.Log(1 + t.DistanceCV*t.DistanceCV))
	lnQVar := math.Log(1 + t.DemandCV*t.DemandCV)
	etaVar := lnQVar - noise*noise
	if etaVar <= 0 {
		return calibration{}, fmt.Errorf("traces: demand noise σ=%v exceeds demand CV target", noise)
	}
	eta := math.Sqrt(etaVar) / sigma
	// Demand-weighted ln d ~ N(μ − ησ², σ²); its mean distance is
	// exp(μ − ησ² + σ²/2) = target ⇒ μ = ln(target) + ησ² − σ²/2.
	mu := math.Log(t.WeightedMeanDistance) + eta*sigma*sigma - sigma*sigma/2
	return calibration{mu: mu, sigma: sigma, eta: eta, noise: noise}, nil
}

// generate synthesizes flows: sample target distances from the calibrated
// lognormal, snap each to the candidate endpoint pair of nearest distance
// (randomizing among near-equals), attach gravity demands, and scale to
// the aggregate traffic target.
func generate(cfg Config, pairs []endpointPair, graph *topology.Graph, cities map[string]topology.City) (*Dataset, error) {
	if cfg.NumFlows <= 0 {
		return nil, errors.New("traces: NumFlows must be positive")
	}
	if len(pairs) == 0 {
		return nil, errors.New("traces: no endpoint pairs")
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.25
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = 24 * 3600
	}
	if cfg.P0 <= 0 {
		return nil, errors.New("traces: P0 must be positive")
	}
	cal, err := calibrate(cfg.Targets, cfg.NoiseSigma)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	sorted := append([]endpointPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].distance < sorted[j].distance })
	dists := make([]float64, len(sorted))
	for i, p := range sorted {
		dists[i] = p.distance
	}

	flows := make([]econ.Flow, cfg.NumFlows)
	meta := make([]FlowMeta, cfg.NumFlows)
	for i := range flows {
		target := math.Exp(cal.mu + cal.sigma*r.NormFloat64())
		pair := sorted[snapIndex(dists, target, r)]
		d := pair.distance
		if d < 1 {
			d = 1 // metro flows: floor as in the cost models
		}
		q := math.Pow(d, -cal.eta) * math.Exp(cal.noise*r.NormFloat64())
		flows[i] = econ.Flow{
			ID:       fmt.Sprintf("%s/%s->%s/%d", cfg.Name, pair.src.Name, pair.dst.Name, i),
			Demand:   q,
			Distance: pair.distance,
			Region:   classify(pair),
		}
		meta[i] = FlowMeta{
			SrcCity: pair.src.Name, SrcCountry: pair.src.Country,
			DstCity: pair.dst.Name, DstCountry: pair.dst.Country,
			Path: pair.path,
		}
	}
	// Inject elephant flows before the final scaling.
	if cfg.ElephantFraction > 0 && cfg.ElephantFactor > 1 {
		n := int(math.Ceil(cfg.ElephantFraction * float64(len(flows))))
		for k := 0; k < n; k++ {
			flows[r.Intn(len(flows))].Demand *= cfg.ElephantFactor
		}
	}
	markOnNet(flows, onNetDemandShare)
	// Scale demands to the aggregate traffic target (Mbps).
	var total float64
	for _, f := range flows {
		total += f.Demand
	}
	scale := cfg.Targets.AggregateGbps * 1000 / total
	for i := range flows {
		flows[i].Demand *= scale
	}

	ds := &Dataset{
		Name:             cfg.Name,
		P0:               cfg.P0,
		DurationSec:      cfg.DurationSec,
		Flows:            flows,
		Meta:             meta,
		Graph:            graph,
		SamplingInterval: 1000,
		Targets:          cfg.Targets,
		cities:           cities,
	}
	if err := ds.assignAddresses(); err != nil {
		return nil, err
	}
	return ds, nil
}

// onNetDemandShare is the fraction of demand destined to the ISP's own
// customers ("on net", §2.1). Transit customers of a network are
// predominantly nearby, so the most-local flows are marked first.
const onNetDemandShare = 0.3

// markOnNet flags the shortest-distance flows as on-net until the target
// demand share is covered.
func markOnNet(flows []econ.Flow, share float64) {
	order := make([]int, len(flows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return flows[order[a]].Distance < flows[order[b]].Distance
	})
	var total float64
	for _, f := range flows {
		total += f.Demand
	}
	var covered float64
	for _, i := range order {
		if covered >= share*total {
			break
		}
		flows[i].OnNet = true
		covered += flows[i].Demand
	}
}

// snapIndex picks a candidate index whose distance is near target,
// randomizing among candidates within ±20% (or the single nearest when
// none are that close), so repeated snaps spread across similar pairs.
func snapIndex(sorted []float64, target float64, r *rand.Rand) int {
	lo := sort.SearchFloat64s(sorted, target*0.8)
	hi := sort.SearchFloat64s(sorted, target*1.2)
	if lo < hi {
		return lo + r.Intn(hi-lo)
	}
	// Nearest of the two neighbors of the insertion point.
	i := sort.SearchFloat64s(sorted, target)
	if i == 0 {
		return 0
	}
	if i >= len(sorted) {
		return len(sorted) - 1
	}
	if target-sorted[i-1] <= sorted[i]-target {
		return i - 1
	}
	return i
}

// classify derives the regional class from the endpoints: same city is
// metro, same country national, everything else international (§3.3).
func classify(p endpointPair) econ.Region {
	switch {
	case p.src.Name == p.dst.Name:
		return econ.RegionMetro
	case p.src.Country == p.dst.Country:
		return econ.RegionNational
	default:
		return econ.RegionInternational
	}
}
