package traces

import (
	"fmt"
	"net/netip"

	"tieredpricing/internal/geoip"
	"tieredpricing/internal/topology"
)

// Address plan: source PoPs get /20 loopback blocks from 172.16.0.0/12,
// destination flows get /24 blocks from 10.0.0.0/8. Both kinds of prefix
// are registered in the dataset's GeoIP database with their city's
// coordinates, so the collection pipeline can resolve either endpoint of
// a NetFlow record back to a location.
var (
	srcBase = netip.MustParsePrefix("172.16.0.0/12")
	dstBase = netip.MustParsePrefix("10.0.0.0/8")
)

// assignAddresses gives every source city a loopback block and every flow
// a destination /24, building the GeoIP database as it goes. It needs
// the per-flow city coordinates, which it finds via the meta city names
// against the dataset's coordinate index.
func (ds *Dataset) assignAddresses() error {
	ds.Geo = &geoip.DB{}
	srcAlloc, err := geoip.NewPrefixAllocator(srcBase, 20)
	if err != nil {
		return err
	}
	dstAlloc, err := geoip.NewPrefixAllocator(dstBase, 24)
	if err != nil {
		return err
	}
	srcPrefix := map[string]netip.Prefix{}
	for i := range ds.Meta {
		m := &ds.Meta[i]
		sp, ok := srcPrefix[m.SrcCity]
		if !ok {
			if sp, err = srcAlloc.Next(); err != nil {
				return fmt.Errorf("traces: src allocation: %w", err)
			}
			srcPrefix[m.SrcCity] = sp
			src, ok := ds.cityByName(m.SrcCity)
			if !ok {
				return fmt.Errorf("traces: unknown src city %q", m.SrcCity)
			}
			if err := ds.Geo.Insert(geoip.Record{
				Prefix: sp, City: src.Name, Country: src.Country,
				Lat: src.Lat, Lon: src.Lon,
			}); err != nil {
				return err
			}
		}
		m.SrcIP = sp.Addr().Next() // first host inside the block
		if m.DstPrefix, err = dstAlloc.Next(); err != nil {
			return fmt.Errorf("traces: dst allocation: %w", err)
		}
		dst, ok := ds.cityByName(m.DstCity)
		if !ok {
			return fmt.Errorf("traces: unknown dst city %q", m.DstCity)
		}
		if err := ds.Geo.Insert(geoip.Record{
			Prefix: m.DstPrefix, City: dst.Name, Country: dst.Country,
			Lat: dst.Lat, Lon: dst.Lon,
		}); err != nil {
			return err
		}
	}
	return nil
}

// cityByName resolves a city either from the dataset's graph or its
// auxiliary city index (CDN destinations are not graph nodes).
func (ds *Dataset) cityByName(name string) (topology.City, bool) {
	if ds.Graph != nil {
		if c, ok := ds.Graph.City(name); ok {
			return c, true
		}
	}
	if ds.cities != nil {
		if c, ok := ds.cities[name]; ok {
			return c, true
		}
	}
	return topology.City{}, false
}
