package traces

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlowsCSVRoundTrip(t *testing.T) {
	ds, err := EUISP(9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFlowsCSV(&buf, ds.Flows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFlowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.Flows) {
		t.Fatalf("round trip lost flows: %d vs %d", len(back), len(ds.Flows))
	}
	for i, f := range ds.Flows {
		g := back[i]
		if g.ID != f.ID || g.Demand != f.Demand || g.Distance != f.Distance ||
			g.Region != f.Region || g.OnNet != f.OnNet {
			t.Fatalf("flow %d changed: %+v vs %+v", i, g, f)
		}
	}
}

func TestReadFlowsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,a,b,c,d\n",
		"id,demand_mbps,distance_miles,region,onnet\nx,notnum,1,metro,false\n",
		"id,demand_mbps,distance_miles,region,onnet\nx,1,notnum,metro,false\n",
		"id,demand_mbps,distance_miles,region,onnet\nx,1,1,neverland,false\n",
		"id,demand_mbps,distance_miles,region,onnet\nx,1,1,metro,maybe\n",
		"id,demand_mbps,distance_miles,region,onnet\n", // header only
	}
	for i, c := range cases {
		if _, err := ReadFlowsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
