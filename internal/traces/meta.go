package traces

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Meta is the dataset metadata tracegen writes next to the export
// streams (meta.txt). The collection pipeline needs it to undo the
// capture: the window duration converts de-duplicated octets back to
// Mbps, the blended rate anchors the demand fit, and the dataset name
// selects the per-dataset resolution heuristic.
type Meta struct {
	Dataset     string
	Seed        int64
	Flows       int
	P0          float64 // blended rate, $/Mbps/month
	DurationSec float64
	Sampling    int
	Routers     int
}

// WriteMeta renders the key=value form consumed by ReadMeta.
func WriteMeta(w io.Writer, m Meta) error {
	_, err := fmt.Fprintf(w,
		"dataset=%s\nseed=%d\nflows=%d\nblended_rate=%g\nduration_sec=%g\nsampling=%d\nrouters=%d\n",
		m.Dataset, m.Seed, m.Flows, m.P0, m.DurationSec, m.Sampling, m.Routers)
	return err
}

// ReadMeta parses meta.txt. Unknown keys are ignored so the format can
// grow; the fields the pipeline cannot run without (dataset, a positive
// blended rate and duration) are validated.
func ReadMeta(r io.Reader) (Meta, error) {
	meta := Meta{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		key, value, ok := strings.Cut(line, "=")
		if !ok {
			continue
		}
		var err error
		switch key {
		case "dataset":
			meta.Dataset = value
		case "seed":
			if meta.Seed, err = strconv.ParseInt(value, 10, 64); err != nil {
				return Meta{}, fmt.Errorf("meta: seed: %w", err)
			}
		case "flows":
			if meta.Flows, err = strconv.Atoi(value); err != nil {
				return Meta{}, fmt.Errorf("meta: flows: %w", err)
			}
		case "blended_rate":
			if meta.P0, err = strconv.ParseFloat(value, 64); err != nil {
				return Meta{}, fmt.Errorf("meta: blended_rate: %w", err)
			}
		case "duration_sec":
			if meta.DurationSec, err = strconv.ParseFloat(value, 64); err != nil {
				return Meta{}, fmt.Errorf("meta: duration_sec: %w", err)
			}
		case "sampling":
			if meta.Sampling, err = strconv.Atoi(value); err != nil {
				return Meta{}, fmt.Errorf("meta: sampling: %w", err)
			}
		case "routers":
			if meta.Routers, err = strconv.Atoi(value); err != nil {
				return Meta{}, fmt.Errorf("meta: routers: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Meta{}, err
	}
	if meta.Dataset == "" || meta.P0 <= 0 || meta.DurationSec <= 0 {
		return Meta{}, fmt.Errorf("meta: incomplete metadata (need dataset, blended_rate, duration_sec)")
	}
	return meta, nil
}

// ReadMetaFile reads and parses a meta.txt on disk.
func ReadMetaFile(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	m, err := ReadMeta(f)
	if err != nil {
		return Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
