package traces

import (
	"fmt"

	"tieredpricing/internal/topology"
)

// Table 1 of the paper, as calibration targets.
var (
	// EUISPTargets: European transit ISP, captured 11/12/09.
	EUISPTargets = Targets{WeightedMeanDistance: 54, DistanceCV: 0.70, AggregateGbps: 37, DemandCV: 1.71}
	// CDNTargets: international content distribution network, 12/02/09.
	CDNTargets = Targets{WeightedMeanDistance: 1988, DistanceCV: 0.59, AggregateGbps: 96, DemandCV: 2.28}
	// Internet2Targets: US research backbone, 12/02/09.
	Internet2Targets = Targets{WeightedMeanDistance: 660, DistanceCV: 0.54, AggregateGbps: 4, DemandCV: 4.53}
)

// DefaultFlows is the number of destination flows each preset generates.
const DefaultFlows = 200

// EUISP synthesizes the European transit ISP dataset: flows between
// entry and exit PoPs of the EuropeanISP topology, with flow distance the
// geographic distance between the two PoPs (§4.1.1).
func EUISP(seed int64) (*Dataset, error) {
	g := topology.EuropeanISP()
	cities := g.Cities()
	var pairs []endpointPair
	for _, a := range cities {
		for _, b := range cities {
			pairs = append(pairs, endpointPair{
				src: a, dst: b,
				distance: topology.Distance(a, b),
			})
		}
	}
	return generate(Config{
		Name:     "euisp",
		Seed:     seed,
		NumFlows: DefaultFlows,
		Targets:  EUISPTargets,
		P0:       20,
	}, pairs, g, nil)
}

// CDN synthesizes the international CDN dataset: flows from CDN origin
// PoPs to GeoIP-resolved destination cities, with flow distance the
// great-circle distance between origin and destination (§4.1.1).
func CDN(seed int64) (*Dataset, error) {
	origins := topology.CDNOrigins()
	dsts := topology.WorldCities()
	cityIndex := make(map[string]topology.City, len(origins)+len(dsts))
	var pairs []endpointPair
	for _, o := range origins {
		cityIndex[o.Name] = o
		for _, d := range dsts {
			pairs = append(pairs, endpointPair{
				src: o, dst: d,
				distance: topology.Distance(o, d),
			})
		}
		// Metro traffic served out of the origin's own city (distance 0;
		// the cost models floor it at one mile).
		pairs = append(pairs, endpointPair{src: o, dst: o, distance: 0})
	}
	for _, d := range dsts {
		cityIndex[d.Name] = d
	}
	return generate(Config{
		Name:     "cdn",
		Seed:     seed,
		NumFlows: DefaultFlows,
		Targets:  CDNTargets,
		P0:       20,
	}, pairs, nil, cityIndex)
}

// Internet2 synthesizes the research-network dataset: flows between
// backbone routers with flow distance the sum of traversed link lengths
// on the routed path (§4.1.1).
func Internet2(seed int64) (*Dataset, error) {
	g := topology.Internet2()
	cities := g.Cities()
	var pairs []endpointPair
	for _, a := range cities {
		for _, b := range cities {
			if a.Name == b.Name {
				continue
			}
			p, err := g.ShortestPath(a.Name, b.Name)
			if err != nil {
				return nil, fmt.Errorf("traces: internet2 routing: %w", err)
			}
			pairs = append(pairs, endpointPair{
				src: a, dst: b,
				distance: p.Miles,
				path:     p.Cities,
			})
		}
	}
	return generate(Config{
		Name:             "internet2",
		Seed:             seed,
		NumFlows:         DefaultFlows,
		Targets:          Internet2Targets,
		P0:               20,
		ElephantFraction: 0.015,
		ElephantFactor:   30,
	}, pairs, g, nil)
}

// ByName returns the preset dataset with the given name.
func ByName(name string, seed int64) (*Dataset, error) {
	switch name {
	case "euisp":
		return EUISP(seed)
	case "cdn":
		return CDN(seed)
	case "internet2":
		return Internet2(seed)
	default:
		return nil, fmt.Errorf("traces: unknown dataset %q (want euisp, cdn or internet2)", name)
	}
}

// Names lists the preset dataset names in presentation order.
func Names() []string { return []string{"euisp", "internet2", "cdn"} }
