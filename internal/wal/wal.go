// Package wal is tierd's write-ahead log: a segmented, append-only,
// CRC-framed record of every accepted flow-export datagram, written
// before the datagram mutates the in-memory window. Durability model:
//
//   - Every entry is one post-fault datagram — the arrival timestamp
//     the window slotted it by, plus the re-encoded NetFlow packet — so
//     replaying the log through the window's ingest path reconstructs
//     the exact in-memory state, slot for slot and dedup set for dedup
//     set (stream.Window.IngestAt).
//   - Entries are framed `len | crc32c | payload`; a crash can tear at
//     most the final frame, and CRC framing turns any tear or bit flip
//     into a clean stop: recovery keeps the longest valid prefix and
//     discards the tail, never a corrupt middle.
//   - The log is segmented (`wal-<seq>.log`); a checkpoint that covers
//     a position lets every earlier segment be deleted whole
//     (TruncateBefore), bounding disk use without ever rewriting a
//     live segment.
//   - fsync policy is configurable (SyncBatch group-commit by default:
//     appends return immediately, a background syncer coalesces fsyncs
//     within a small window), keeping durability off the ingest fast
//     path; fsync latency is recorded in an internal/hist histogram
//     for the tierd_wal_fsync_seconds metric.
//
// The recovery invariant the chaos tests pin: checkpoint + replay of
// the WAL tail is byte-identical to never having crashed, over the
// records the log durably holds.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tieredpricing/internal/hist"
	"tieredpricing/internal/netflow"
)

// Frame layout: u32 payload length, u32 CRC32-C of the payload, then
// the payload (u64 arrival unix-nanos + one encoded NetFlow packet).
const (
	frameHeaderSize = 8
	tsSize          = 8
	// MaxEntryBytes bounds a frame's payload: a v5 export packet tops
	// out at 24+30·48 bytes, so anything larger than this is framing
	// corruption, not data.
	MaxEntryBytes = 64 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when appended entries are fsynced.
type SyncMode uint8

const (
	// SyncBatch is group commit: appends return after the write
	// syscall; a background syncer fsyncs at most once per batch
	// window while the log is dirty. A process crash (kill -9) loses
	// nothing — the page cache survives the process — only a machine
	// crash can lose the last batch window.
	SyncBatch SyncMode = iota
	// SyncAlways fsyncs inline on every append.
	SyncAlways
	// SyncNone never fsyncs; the OS flushes at its leisure.
	SyncNone
)

// ParseSyncMode maps the -wal-sync flag values.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want batch, always or none)", s)
}

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncmode(%d)", uint8(m))
	}
}

// Options tune a log. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size (default 4 MiB). Rotation granularity is what TruncateBefore
	// can reclaim, so smaller segments mean tighter disk bounds.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncBatch).
	Sync SyncMode
	// BatchWindow is the group-commit coalescing window for SyncBatch
	// (default 2ms).
	BatchWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	return o
}

// Position addresses a byte boundary in the log: the start of segment
// Segment's frame at byte Offset. The zero Position is the beginning of
// the log. Positions compare lexicographically.
type Position struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// Before reports whether p addresses an earlier boundary than q.
func (p Position) Before(q Position) bool {
	return p.Segment < q.Segment || (p.Segment == q.Segment && p.Offset < q.Offset)
}

// Stats is a point-in-time view of the log for the /metrics endpoint.
type Stats struct {
	// Bytes and Entries count everything appended through this handle
	// (not what is on disk — truncation does not subtract).
	Bytes   uint64
	Entries uint64
	// Fsyncs counts fsync syscalls issued; the latency fields summarize
	// their distribution (internal/hist, ≤1.6% relative error).
	Fsyncs     uint64
	FsyncP50Ns int64
	FsyncP99Ns int64
	FsyncMaxNs int64
	FsyncSumNs float64
	// Segment/Offset is the current end position.
	Segment uint64
	Offset  int64
}

// Log is an open write-ahead log. Append is safe for concurrent use;
// one Log owns its directory's wal-*.log files.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	seg     uint64
	off     int64
	dirty   bool
	closed  bool
	buf     []byte // frame assembly buffer, reused across appends
	bytes   uint64
	entries uint64
	fsyncs  uint64
	fsyncNs *hist.Histogram

	syncReq    chan struct{}
	stopSyncer chan struct{}
	stopOnce   sync.Once
	syncerDone chan struct{}
}

// segmentName formats the file name of segment seq; the fixed-width hex
// makes lexicographic order equal numeric order.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment sequence numbers in
// ascending order. A missing directory is an empty log.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Open opens the log in dir for appending, creating the directory and
// first segment as needed. The newest segment is scanned and any torn
// tail (a partial or CRC-failing final frame) is truncated away, so
// appends always continue a valid prefix. Use OpenAt after an explicit
// Replay to resume at the replay's validated end instead.
func Open(dir string, opts Options) (*Log, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	pos := Position{}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		end, _, err := scanSegment(filepath.Join(dir, segmentName(last)), 0, nil)
		if err != nil {
			return nil, err
		}
		pos = Position{Segment: last, Offset: end}
	}
	return OpenAt(dir, opts, pos)
}

// OpenAt opens the log for appending at pos, the validated end of the
// log (normally Replay's End). Segments beyond pos and any bytes past
// pos.Offset in its segment are discarded — they are at best a torn
// tail that recovery already chose not to trust — so the on-disk log
// is exactly the recovered prefix before the first new append.
func OpenAt(dir string, opts Options, pos Position) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range segs {
		if pos.Segment != 0 && seq > pos.Segment {
			if err := os.Remove(filepath.Join(dir, segmentName(seq))); err != nil {
				return nil, fmt.Errorf("wal: dropping segment beyond recovery point: %w", err)
			}
		}
	}
	seg := pos.Segment
	if seg == 0 {
		seg = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seg)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	off := pos.Offset
	switch {
	case size > off:
		// Torn or untrusted tail: cut the file back to the validated
		// prefix so new frames don't follow garbage.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(off, 0); err != nil {
			f.Close()
			return nil, err
		}
	case size < off:
		// The checkpoint claims more than the file holds (manual
		// cleanup, copy loss). Everything up to the claim is already in
		// the checkpoint, so appending at the real size stays correct.
		off = size
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		f:          f,
		seg:        seg,
		off:        off,
		fsyncNs:    hist.New(),
		syncReq:    make(chan struct{}, 1),
		stopSyncer: make(chan struct{}),
		syncerDone: make(chan struct{}),
	}
	if opts.Sync == SyncBatch {
		go l.syncer()
	} else {
		close(l.syncerDone)
	}
	return l, nil
}

// Append logs one accepted datagram: the arrival timestamp ts (the
// instant the window slots the records by) and the packet itself.
// Under SyncBatch and SyncNone it returns after the write syscall; the
// data then survives a process crash, and under SyncBatch an fsync
// follows within the batch window.
func (l *Log) Append(ts time.Time, h netflow.Header, recs []netflow.Record) error {
	pkt, err := netflow.EncodePacket(h, recs)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	payloadLen := tsSize + len(pkt)
	l.buf = l.buf[:0]
	l.buf = binary.BigEndian.AppendUint32(l.buf, uint32(payloadLen))
	l.buf = append(l.buf, 0, 0, 0, 0) // CRC placeholder
	l.buf = binary.BigEndian.AppendUint64(l.buf, uint64(ts.UnixNano()))
	l.buf = append(l.buf, pkt...)
	crc := crc32.Checksum(l.buf[frameHeaderSize:], castagnoli)
	binary.BigEndian.PutUint32(l.buf[4:8], crc)

	if l.off >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(l.buf)
	l.off += int64(n)
	l.bytes += uint64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.entries++
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncBatch:
		select {
		case l.syncReq <- struct{}{}:
		default: // a sync is already scheduled; it will cover this append
		}
	}
	return nil
}

// rotateLocked fsyncs and closes the active segment and starts the
// next one. A rotated segment is complete by construction: every frame
// in it was fully written, which is why recovery trusts non-final
// segments and only scans the last for tears.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.seg++
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.seg)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment %d: %w", l.seg, err)
	}
	l.f = f
	l.off = 0
	return syncDir(l.dir)
}

// syncLocked fsyncs the active segment if dirty, recording latency.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs++
	l.fsyncNs.Record(int64(time.Since(start)))
	l.dirty = false
	return nil
}

// syncer is the group-commit goroutine: each request waits out the
// batch window (coalescing concurrent appends) and issues one fsync.
func (l *Log) syncer() {
	defer close(l.syncerDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-l.stopSyncer:
			return
		case <-l.syncReq:
		}
		timer.Reset(l.opts.BatchWindow)
		select {
		case <-l.stopSyncer:
			timer.Stop()
			return
		case <-timer.C:
		}
		l.mu.Lock()
		if !l.closed {
			_ = l.syncLocked() // surfaced by the next explicit Sync/Close
		}
		l.mu.Unlock()
	}
}

// Sync forces an fsync of everything appended so far (all modes).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Pos returns the end position: the boundary the next append writes at.
// Everything strictly before it is in the log.
func (l *Log) Pos() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Segment: l.seg, Offset: l.off}
}

// TruncateBefore deletes whole segments strictly below pos.Segment —
// call it after a checkpoint covering pos has been durably written, at
// which point those segments are redundant. The segment containing pos
// is kept (replay skips into it by offset).
func (l *Log) TruncateBefore(pos Position) error {
	l.mu.Lock()
	active := l.seg
	l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq >= pos.Segment || seq >= active {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(seq))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Stats snapshots the log's counters and fsync latency distribution.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Bytes:   l.bytes,
		Entries: l.entries,
		Fsyncs:  l.fsyncs,
		Segment: l.seg,
		Offset:  l.off,
	}
	if l.fsyncNs.Count() > 0 {
		s.FsyncP50Ns = l.fsyncNs.Quantile(0.50)
		s.FsyncP99Ns = l.fsyncNs.Quantile(0.99)
		s.FsyncMaxNs = l.fsyncNs.Max()
		s.FsyncSumNs = l.fsyncNs.Mean() * float64(l.fsyncNs.Count())
	}
	return s
}

// Close stops the syncer, fsyncs the tail, and closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.opts.Sync == SyncBatch {
		l.stopOnce.Do(func() { close(l.stopSyncer) })
		<-l.syncerDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
