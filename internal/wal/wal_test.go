package wal

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tieredpricing/internal/faultinject"
	"tieredpricing/internal/netflow"
)

// testPacket builds a small deterministic export packet whose contents
// vary with i, so replayed entries can be matched to appended ones.
func testPacket(i int) (netflow.Header, []netflow.Record) {
	h := netflow.Header{
		Count:            2,
		SysUptime:        uint32(1000 + i),
		UnixSecs:         uint32(1700000000 + i),
		FlowSequence:     uint32(i * 2),
		SamplingInterval: 10,
	}
	recs := []netflow.Record{
		{
			SrcAddr: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			DstAddr: netip.AddrFrom4([4]byte{192, 168, 1, byte(i)}),
			NextHop: netip.AddrFrom4([4]byte{10, 255, 0, 1}),
			Octets:  uint32(1000 + i),
			Packets: 3,
			SrcPort: uint16(1024 + i%1000),
			DstPort: 443,
			Proto:   6,
			First:   uint32(i),
			Last:    uint32(i + 5),
			SrcAS:   uint16(i),
		},
		{
			SrcAddr: netip.AddrFrom4([4]byte{10, 1, 0, byte(i)}),
			DstAddr: netip.AddrFrom4([4]byte{172, 16, 0, byte(i)}),
			NextHop: netip.AddrFrom4([4]byte{10, 255, 0, 2}),
			Octets:  uint32(500 + i),
			Packets: 1,
			SrcPort: 80,
			DstPort: uint16(2048 + i%1000),
			Proto:   17,
			First:   uint32(i + 1),
			Last:    uint32(i + 2),
			SrcAS:   uint16(i + 1),
		},
	}
	return h, recs
}

// frameSize is the on-disk size of one testPacket frame: frame header,
// timestamp, and a 2-record v5 packet.
const frameSize = frameHeaderSize + tsSize + netflow.HeaderSize + 2*netflow.RecordSize

type entry struct {
	ts   time.Time
	h    netflow.Header
	recs []netflow.Record
}

// appendN opens a log in dir, appends n entries, and closes it.
func appendN(t *testing.T, dir string, opts Options, n int) []entry {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]entry, 0, n)
	base := time.Unix(1700000000, 0)
	for i := 0; i < n; i++ {
		h, recs := testPacket(i)
		ts := base.Add(time.Duration(i) * time.Second)
		if err := l.Append(ts, h, recs); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		entries = append(entries, entry{ts, h, recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return entries
}

// collect replays dir from pos and returns the delivered entries.
func collect(t *testing.T, dir string, pos Position) ([]entry, ReplayResult) {
	t.Helper()
	var got []entry
	res, err := Replay(dir, pos, func(ts time.Time, h netflow.Header, recs []netflow.Record) error {
		cp := make([]netflow.Record, len(recs))
		copy(cp, recs)
		got = append(got, entry{ts, h, cp})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func checkEntries(t *testing.T, got, want []entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].ts.Equal(want[i].ts) {
			t.Fatalf("entry %d: ts %v, want %v", i, got[i].ts, want[i].ts)
		}
		if got[i].h != want[i].h {
			t.Fatalf("entry %d: header %+v, want %+v", i, got[i].h, want[i].h)
		}
		if !reflect.DeepEqual(got[i].recs, want[i].recs) {
			t.Fatalf("entry %d: records diverge", i)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := appendN(t, dir, Options{}, 25)
	got, res := collect(t, dir, Position{})
	checkEntries(t, got, want)
	if res.Torn {
		t.Error("clean log reported torn")
	}
	if res.Entries != 25 {
		t.Errorf("res.Entries = %d, want 25", res.Entries)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// ~160-byte frames against a 512-byte segment bound forces rotation
	// every few entries.
	want := appendN(t, dir, Options{SegmentBytes: 512}, 40)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	got, res := collect(t, dir, Position{})
	checkEntries(t, got, want)

	// TruncateBefore with a position at the head of segment segs[2] must
	// delete only whole earlier segments; everything from that segment
	// on replays intact.
	l, err := OpenAt(dir, Options{SegmentBytes: 512}, res.End)
	if err != nil {
		t.Fatal(err)
	}
	cut := Position{Segment: segs[2], Offset: 0}
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != segs[2] {
		t.Fatalf("oldest surviving segment %d, want %d", after[0], segs[2])
	}
	got2, res2 := collect(t, dir, cut)
	if res2.Torn {
		t.Error("post-truncate replay reported torn")
	}
	// The surviving entries must be a proper suffix of the original
	// sequence.
	if len(got2) == 0 || len(got2) >= len(want) {
		t.Fatalf("post-truncate replay has %d entries, want a proper suffix of %d", len(got2), len(want))
	}
	checkEntries(t, got2, want[len(want)-len(got2):])
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncBatch, SyncAlways, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			want := appendN(t, dir, Options{Sync: mode, BatchWindow: time.Millisecond}, 10)
			got, _ := collect(t, dir, Position{})
			checkEntries(t, got, want)
		})
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"batch": SyncBatch, "always": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("ParseSyncMode accepted garbage")
	}
}

// lastSegmentPath returns the newest segment file.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return filepath.Join(dir, segmentName(segs[len(segs)-1]))
}

// TestTornTailTruncation is the table-driven corruption matrix over
// real segment files: each case damages the log the way a crash or
// dying disk would, and recovery must (a) keep exactly the undamaged
// prefix, (b) report the tear, and (c) leave the log appendable with
// the new entries visible to a clean second replay.
func TestTornTailTruncation(t *testing.T) {
	const n = 12
	inj := faultinject.New(4242)
	cases := []struct {
		name string
		// corrupt damages the newest segment; returns the minimum
		// number of entries that must survive (-1 = exactly n-1, i.e.
		// only the final frame may be lost).
		corrupt func(t *testing.T, dir string) int
	}{
		{"torn-frame-header", func(t *testing.T, dir string) int {
			// Cut mid-way into the final frame's header.
			path := lastSegmentPath(t, dir)
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()-frameSize-3); err != nil {
				t.Fatal(err)
			}
			return n - 2
		}},
		{"torn-payload", func(t *testing.T, dir string) int {
			path := lastSegmentPath(t, dir)
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()-40); err != nil {
				t.Fatal(err)
			}
			return n - 1
		}},
		{"seeded-tear", func(t *testing.T, dir string) int {
			site := inj.NewSite(1)
			torn, err := site.TearTail(lastSegmentPath(t, dir), 0)
			if err != nil || !torn {
				t.Fatalf("TearTail: torn=%v err=%v", torn, err)
			}
			return 0
		}},
		{"crc-bit-flip", func(t *testing.T, dir string) int {
			// Flip a bit somewhere in the last quarter of the file: every
			// frame at or after the flip is discarded.
			path := lastSegmentPath(t, dir)
			fi, _ := os.Stat(path)
			site := inj.NewSite(2)
			hit, err := site.CorruptByte(path, fi.Size()*3/4)
			if err != nil || !hit {
				t.Fatalf("CorruptByte: hit=%v err=%v", hit, err)
			}
			return 0
		}},
		{"length-field-garbage", func(t *testing.T, dir string) int {
			// Overwrite the final frame's length with an implausible value.
			path := lastSegmentPath(t, dir)
			fi, _ := os.Stat(path)
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, fi.Size()-frameSize); err != nil {
				t.Fatal(err)
			}
			return n - 1
		}},
		{"zeroed-fsync-region", func(t *testing.T, dir string) int {
			path := lastSegmentPath(t, dir)
			fi, _ := os.Stat(path)
			site := inj.NewSite(3)
			hit, err := site.ZeroRange(path, fi.Size()/2, 64)
			if err != nil || !hit {
				t.Fatalf("ZeroRange: hit=%v err=%v", hit, err)
			}
			return 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := appendN(t, dir, Options{}, n)
			minSurvive := tc.corrupt(t, dir)

			got, res := collect(t, dir, Position{})
			if len(got) >= n {
				t.Fatalf("corruption did not lose any entries (%d)", len(got))
			}
			if len(got) < minSurvive {
				t.Fatalf("only %d entries survived, want at least %d", len(got), minSurvive)
			}
			if !res.Torn {
				t.Error("replay did not report the tear")
			}
			checkEntries(t, got, want[:len(got)])

			// The log must remain appendable at the recovered end, and the
			// new entry must follow the surviving prefix seamlessly.
			l, err := OpenAt(dir, Options{}, res.End)
			if err != nil {
				t.Fatal(err)
			}
			h, recs := testPacket(1000)
			ts := time.Unix(1800000000, 0)
			if err := l.Append(ts, h, recs); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got2, res2 := collect(t, dir, Position{})
			if res2.Torn {
				t.Error("second replay still torn after OpenAt truncation")
			}
			checkEntries(t, got2, append(append([]entry{}, want[:len(got)]...), entry{ts, h, recs}))
		})
	}
}

// TestCorruptionMidSegmentDiscardsLaterSegments pins the contiguous-
// prefix rule: damage in an early segment discards every later segment,
// even intact ones — a hole in the log would otherwise let replay
// fabricate a state the live window never held.
func TestCorruptionMidSegmentDiscardsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, Options{SegmentBytes: 512}, 40)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need 3+ segments, got %d", len(segs))
	}
	// Corrupt the FIRST segment's second frame.
	first := filepath.Join(dir, segmentName(segs[0]))
	f, err := os.OpenFile(first, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad}, 170); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, res := collect(t, dir, Position{})
	if !res.Torn {
		t.Fatal("mid-log corruption not reported torn")
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d entries past corruption, want 1", len(got))
	}
	if res.End.Segment != segs[0] {
		t.Fatalf("replay end in segment %d, want %d", res.End.Segment, segs[0])
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, Options{}, 3)
	sentinel := fmt.Errorf("boom")
	_, err := Replay(dir, Position{}, func(time.Time, netflow.Header, []netflow.Record) error {
		return sentinel
	})
	if err == nil {
		t.Fatal("callback error swallowed")
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	got, res := collect(t, filepath.Join(t.TempDir(), "nonesuch"), Position{})
	if len(got) != 0 || res.Torn || res.Entries != 0 {
		t.Fatalf("missing dir: %d entries, torn=%v", len(got), res.Torn)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	want := appendN(t, dir, Options{}, 5)
	path := lastSegmentPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	// Open (not OpenAt) must scan, drop the torn final frame, and resume.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir, Position{})
	if res.Torn {
		t.Error("tail still torn after Open")
	}
	checkEntries(t, got, want[:4])
	if want := res.End.Offset; fi.Size() != want {
		t.Errorf("file size %d after Open, want %d", fi.Size(), want)
	}
}

func TestStatsAndPos(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	h, recs := testPacket(0)
	for i := 0; i < 4; i++ {
		if err := l.Append(time.Unix(int64(i), 0), h, recs); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.Entries != 4 || s.Fsyncs != 4 || s.Bytes == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.FsyncP99Ns <= 0 || s.FsyncSumNs <= 0 {
		t.Errorf("fsync latency summary empty: %+v", s)
	}
	pos := l.Pos()
	if pos.Segment != 1 || pos.Offset != int64(s.Bytes) {
		t.Errorf("pos = %+v, stats bytes %d", pos, s.Bytes)
	}
	if !(Position{1, 0}).Before(pos) || pos.Before(Position{1, 0}) {
		t.Error("Position.Before inconsistent")
	}
}
