package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"tieredpricing/internal/netflow"
)

// ReplayResult summarizes a Replay pass.
type ReplayResult struct {
	// Entries is the number of valid frames delivered to the callback.
	Entries int
	// End is the position just past the last valid frame — hand it to
	// OpenAt to resume appending on the recovered prefix.
	End Position
	// Torn reports that the scan stopped at an invalid frame (partial
	// write, CRC mismatch, or undecodable packet) rather than clean
	// end-of-log; TornBytes is how many trailing bytes were distrusted
	// in that segment (later segments are discarded whole and are not
	// counted).
	Torn      bool
	TornBytes int64
}

// Replay streams every valid entry at or after from through fn, in
// append order. Recovery semantics are contiguous-prefix: the scan
// stops at the first frame that fails validation — a torn final write,
// a corrupt length or CRC, an undecodable packet — and everything from
// that point on, including all later segments, is excluded from the
// result. fn returning an error aborts the replay and propagates.
//
// The zero Position replays the whole log. A missing directory or an
// empty log replays nothing and returns End == from (or the first
// segment's start).
func Replay(dir string, from Position, fn func(ts time.Time, h netflow.Header, recs []netflow.Record) error) (ReplayResult, error) {
	res := ReplayResult{End: from}
	if res.End.Segment == 0 {
		res.End = Position{Segment: 1, Offset: 0}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	startSeg := from.Segment
	if startSeg == 0 {
		startSeg = 1
	}
	for i, seq := range segs {
		if seq < startSeg {
			continue
		}
		off := int64(0)
		if seq == from.Segment {
			off = from.Offset
		}
		path := filepath.Join(dir, segmentName(seq))
		end, entries, scanErr := scanSegmentFunc(path, off, fn)
		res.Entries += entries
		res.End = Position{Segment: seq, Offset: end}
		if scanErr != nil {
			return res, scanErr
		}
		size, err := fileSize(path)
		if err != nil {
			return res, err
		}
		if end < size {
			// Invalid frame mid-segment: the prefix up to `end` is the
			// log; the rest — and every later segment — is untrusted.
			res.Torn = true
			res.TornBytes = size - end
			return res, nil
		}
		if i < len(segs)-1 && segs[i+1] != seq+1 {
			// A gap in segment numbering means manual deletion; frames
			// after the gap are not a contiguous continuation.
			res.Torn = true
			return res, nil
		}
	}
	return res, nil
}

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// scanSegment validates frames in the segment at path starting at
// fromOffset, invoking fn (when non-nil) for each valid frame. It
// returns the byte offset just past the last valid frame and the number
// of valid frames seen. An invalid frame — short header, implausible
// length, CRC mismatch, or a payload netflow.DecodePacket rejects —
// stops the scan cleanly (no error); only real I/O failures and fn
// errors propagate.
func scanSegment(path string, fromOffset int64, fn func(ts time.Time, h netflow.Header, recs []netflow.Record) error) (int64, int, error) {
	return scanSegmentFunc(path, fromOffset, fn)
}

func scanSegmentFunc(path string, fromOffset int64, fn func(ts time.Time, h netflow.Header, recs []netflow.Record) error) (int64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return fromOffset, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(fromOffset, 0); err != nil {
		return fromOffset, 0, err
	}

	off := fromOffset
	entries := 0
	hdr := make([]byte, frameHeaderSize)
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean EOF or a torn header: either way the valid prefix
			// ends here.
			return off, entries, nil
		}
		payloadLen := int(binary.BigEndian.Uint32(hdr[0:4]))
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if payloadLen < tsSize+netflow.HeaderSize || payloadLen > MaxEntryBytes {
			return off, entries, nil
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, entries, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return off, entries, nil
		}
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(payload[:tsSize])))
		h, recs, err := netflow.DecodePacket(payload[tsSize:])
		if err != nil {
			// CRC matched but the packet is malformed — a frame this
			// writer never produced. Treat as corruption, stop.
			return off, entries, nil
		}
		if fn != nil {
			if err := fn(ts, h, recs); err != nil {
				return off, entries, fmt.Errorf("wal: replay callback: %w", err)
			}
		}
		off += int64(frameHeaderSize + payloadLen)
		entries++
	}
}
