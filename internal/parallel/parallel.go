// Package parallel provides the bounded fan-out primitive behind the
// evaluation stack's concurrency: a fixed-size worker pool that runs n
// independent index-addressed tasks, cancels outstanding work on the
// first failure, and collects results in submission (index) order
// regardless of completion order. Determinism is the design constraint:
// every task receives its identity (and hence its seed or parameter)
// from its index alone, and results are merged by index, so output
// assembled from a Map is byte-identical whatever the worker count or
// scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: zero or negative selects
// runtime.NumCPU(), and the pool never holds more workers than tasks
// (nor fewer than one).
func Workers(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (after Workers normalization). The first task error cancels
// the context passed to in-flight and queued tasks and is returned;
// tasks skipped because of the cancellation are not treated as failures.
// With workers <= 1 the calls happen serially on the calling goroutine,
// exactly like the plain loop.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the n results in index order, however the tasks
// interleaved. On failure it returns the error of the lowest-indexed
// task observed to fail (deterministic when a single task is at fault)
// after cancelling the context seen by the remaining tasks. A cancelled
// parent context surfaces as its ctx.Err() once in-flight tasks drain.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	return MapInto(ctx, make([]T, n), workers, fn)
}

// MapInto is Map writing the n := len(dst) results into the caller's dst,
// so loops that fan out repeatedly (the online repricer's ticks) can reuse
// one result buffer. dst is returned for convenience; on error its
// contents are unspecified.
func MapInto[T any](ctx context.Context, dst []T, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	n := len(dst)
	if n == 0 {
		return dst, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := dst
	if Workers(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		taskErr error
		errIdx  int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if taskErr == nil || i < errIdx {
			taskErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := Workers(workers, n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if ctx.Err() != nil {
					continue // drained after cancellation, not a failure
				}
				v, err := fn(ctx, i)
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	if taskErr != nil {
		return nil, taskErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
