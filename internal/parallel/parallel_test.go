package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct {
		requested, tasks, want int
	}{
		{0, 100, runtime.NumCPU()},
		{-3, 100, runtime.NumCPU()},
		{4, 100, 4},
		{4, 2, 2},
		{8, 0, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.tasks); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.tasks, got, c.want)
		}
	}
	// The NumCPU default still caps at the task count.
	if got := Workers(0, 1); got != 1 {
		t.Errorf("Workers(0, 1) = %d, want 1", got)
	}
}

func TestMapCollectsInIndexOrder(t *testing.T) {
	n := 64
	out, err := Map(context.Background(), n, 8, func(_ context.Context, i int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // shuffle completion order
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for n = 0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("Map(0 tasks) = %v, %v; want nil, nil", out, err)
	}
}

// TestPoolSaturation asserts the pool actually bounds concurrency at the
// worker count — and reaches it — by tracking the high-water mark of
// simultaneously running tasks through a rendezvous barrier.
func TestPoolSaturation(t *testing.T) {
	const workers, n = 4, 32
	var running, peak atomic.Int64
	var reached sync.WaitGroup
	reached.Add(workers)
	var once sync.Once
	release := make(chan struct{})
	err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
		cur := running.Add(1)
		defer running.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		if i < workers {
			// The first `workers` indices rendezvous: they all must be in
			// flight at once, proving the pool saturates. (Index feeding is
			// ordered, so indices 0..workers-1 land on distinct workers.)
			reached.Done()
			once.Do(func() {
				go func() {
					reached.Wait()
					close(release)
				}()
			})
			<-release
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	} else if p < workers {
		t.Errorf("peak concurrency %d never saturated %d workers", p, workers)
	}
	if r := running.Load(); r != 0 {
		t.Errorf("%d tasks still marked running after return", r)
	}
}

// TestErrorShortCircuit asserts the first failure cancels the context
// seen by in-flight tasks and prevents queued tasks from starting.
func TestErrorShortCircuit(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	var cancelled atomic.Int64
	const n = 1000
	_, err := Map(context.Background(), n, 4, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		// Tasks already in flight observe the cancellation instead of
		// running to their (slow) completion.
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return 0, nil
		case <-time.After(5 * time.Second):
			return i, nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s := started.Load(); s == n {
		t.Error("every task started despite the short-circuit")
	}
	if cancelled.Load() == 0 && started.Load() > 1 {
		t.Error("no in-flight task observed the cancellation")
	}
}

// TestLowestIndexErrorWins: when several tasks fail, the reported error
// is the lowest-indexed failure observed, deterministically for the
// common one-bad-input case.
func TestLowestIndexErrorWins(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	_, err := Map(context.Background(), 8, 2, func(_ context.Context, i int) (int, error) {
		if i < 2 {
			// Both failing tasks are in flight before either reports, so
			// index 0 must win however the scheduler orders them.
			gate.Done()
			gate.Wait()
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "task 0 failed" {
		t.Fatalf("err = %v, want task 0's error", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	errc := make(chan error, 1)
	go func() {
		errc <- ForEach(ctx, n, 4, func(ctx context.Context, i int) error {
			started.Add(1)
			<-ctx.Done()
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if s := started.Load(); s == n {
		t.Error("cancellation did not stop the index feed")
	}
}

func TestSerialPathRespectsPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, 1, func(_ context.Context, i int) (int, error) {
		t.Error("fn ran under a cancelled context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	fn := func(_ context.Context, i int) (float64, error) {
		// A float fold stand-in: value depends only on the index.
		return float64(i*i) / 3.0, nil
	}
	serial, err := Map(context.Background(), 100, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		par, err := Map(context.Background(), 100, w, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, par[i], serial[i])
			}
		}
	}
}

func TestForEachNilContext(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(nil, 5, 3, func(ctx context.Context, i int) error { //nolint:staticcheck
		if ctx == nil {
			return errors.New("nil ctx passed to task")
		}
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 5 {
		t.Errorf("ran %d tasks, want 5", count.Load())
	}
}
