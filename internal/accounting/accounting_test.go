package accounting

import (
	"math"
	"net/netip"
	"sync"
	"testing"

	"tieredpricing/internal/bgp"
	"tieredpricing/internal/netflow"
)

func TestLinkMeterBasics(t *testing.T) {
	m := NewLinkMeter()
	if err := m.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLink(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddLink(1, 2); err == nil {
		t.Error("expected duplicate-interface error")
	}
	if err := m.AddLink(3, 0); err == nil {
		t.Error("expected duplicate-tier error")
	}
	if err := m.Count(1, 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Count(1, 250); err != nil {
		t.Fatal(err)
	}
	if err := m.Count(2, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Count(9, 1); err == nil {
		t.Error("expected unknown-interface error")
	}
	samples := m.Poll()
	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	if samples[0].Octets != 750 || samples[0].Tier != 0 {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	per := PerTierOctets(samples)
	if per[0] != 750 || per[1] != 100 {
		t.Errorf("per tier = %v", per)
	}
	if ifIndex, ok := m.LinkFor(1); !ok || ifIndex != 2 {
		t.Errorf("LinkFor(1) = %d, %v", ifIndex, ok)
	}
}

func TestLinkMeterConcurrentCount(t *testing.T) {
	m := NewLinkMeter()
	if err := m.AddLink(1, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := m.Count(1, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Poll()[0].Octets; got != 5000 {
		t.Fatalf("octets = %d, want 5000", got)
	}
}

// tieredRIB builds a RIB with two tier-tagged routes.
func tieredRIB(t *testing.T) *bgp.RIB {
	t.Helper()
	rib := bgp.NewRIB()
	if err := rib.Apply(&bgp.Update{
		Tier:      &bgp.TierCommunity{Tier: 0, PriceMilli: 9500},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rib.Apply(&bgp.Update{
		Tier:      &bgp.TierCommunity{Tier: 1, PriceMilli: 21000},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	return rib
}

func rec(dst string, octets uint32, seq uint16) netflow.Record {
	return netflow.Record{
		SrcAddr: netip.MustParseAddr("192.0.2.1"),
		DstAddr: netip.MustParseAddr(dst),
		Octets:  octets,
		SrcAS:   seq,
	}
}

func TestFlowAccountantAttributesTiers(t *testing.T) {
	fa, err := NewFlowAccountant(tieredRIB(t))
	if err != nil {
		t.Fatal(err)
	}
	fa.Ingest(netflow.Header{SamplingInterval: 10}, []netflow.Record{
		rec("10.1.0.5", 100, 0),
		rec("10.2.0.5", 200, 1),
		rec("10.1.0.5", 100, 0), // duplicate of the first
		rec("99.9.9.9", 50, 2),  // unrouted
	})
	per := fa.PerTierOctets()
	if per[0] != 1000 || per[1] != 2000 {
		t.Fatalf("per tier = %v, want 1000/2000 (sampling ×10, deduped)", per)
	}
	if fa.Unrouted() != 500 {
		t.Fatalf("unrouted = %d, want 500", fa.Unrouted())
	}
}

func TestNewFlowAccountantNilRIB(t *testing.T) {
	if _, err := NewFlowAccountant(nil); err == nil {
		t.Error("expected error for nil RIB")
	}
}

// TestArchitecturesAgree is the §5.2 consistency check: the same traffic
// measured by per-tier links and by flow records + RIB yields identical
// per-tier totals and bills.
func TestArchitecturesAgree(t *testing.T) {
	rib := tieredRIB(t)
	fa, err := NewFlowAccountant(rib)
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLinkMeter()
	if err := lm.AddLink(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := lm.AddLink(11, 1); err != nil {
		t.Fatal(err)
	}

	traffic := []netflow.Record{
		rec("10.1.0.1", 1000, 0),
		rec("10.1.7.7", 500, 1),
		rec("10.2.3.4", 2500, 2),
		rec("10.2.8.8", 100, 3),
	}
	// Flow path.
	fa.Ingest(netflow.Header{SamplingInterval: 1}, traffic)
	// Link path: the customer's router picks the egress link using the
	// same tier-tagged RIB (the §5.1 routing-policy mechanism).
	for _, r := range traffic {
		route, ok := rib.Lookup(r.DstAddr)
		if !ok {
			t.Fatalf("no route for %v", r.DstAddr)
		}
		ifIndex, ok := lm.LinkFor(int(route.Tier.Tier))
		if !ok {
			t.Fatalf("no link for tier %d", route.Tier.Tier)
		}
		if err := lm.Count(ifIndex, uint64(r.Octets)); err != nil {
			t.Fatal(err)
		}
	}

	flowTotals := fa.PerTierOctets()
	linkTotals := PerTierOctets(lm.Poll())
	for tier, want := range linkTotals {
		if flowTotals[tier] != want {
			t.Errorf("tier %d: flow %d != link %d", tier, flowTotals[tier], want)
		}
	}

	prices := []float64{9.5, 21.0}
	window := 3600.0
	b1, err := ComputeBill(flowTotals, prices, window)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ComputeBill(linkTotals, prices, window)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1.Total-b2.Total) > 1e-12 {
		t.Errorf("bills differ: %v vs %v", b1.Total, b2.Total)
	}
}

func TestComputeBill(t *testing.T) {
	// 1e6 bytes over 8 seconds = 1 Mbps; at $9.5/Mbps that's $9.5.
	bill, err := ComputeBill(map[int]uint64{0: 1e6}, []float64{9.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bill.Total-9.5) > 1e-9 {
		t.Fatalf("total = %v, want 9.5", bill.Total)
	}
	if math.Abs(bill.MbpsPerTier[0]-1) > 1e-9 {
		t.Fatalf("mbps = %v, want 1", bill.MbpsPerTier[0])
	}
	if _, err := ComputeBill(map[int]uint64{3: 1}, []float64{1}, 8); err == nil {
		t.Error("expected error for unpriced tier")
	}
	if _, err := ComputeBill(nil, nil, 0); err == nil {
		t.Error("expected error for zero window")
	}
}

func TestOverheadScaling(t *testing.T) {
	o := Overhead{PerTierLink: 100, CollectorFixed: 500, PerMillionRecords: 2}
	if got := o.LinkBased(3); got != 300 {
		t.Errorf("LinkBased(3) = %v", got)
	}
	if got := o.FlowBased(2_000_000); got != 504 {
		t.Errorf("FlowBased(2M) = %v", got)
	}
	// The paper's point: link-based overhead grows with tier count while
	// flow-based does not.
	if !(o.LinkBased(10) > o.LinkBased(2)) {
		t.Error("link overhead should grow with tiers")
	}
	if o.FlowBased(1000) != o.FlowBased(1000) {
		t.Error("flow overhead should be deterministic")
	}
}
