package accounting

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestAgentCountsAndWraps(t *testing.T) {
	a := NewAgent()
	a.Count(1, 100)
	a.Count(1, 50)
	if got := a.Read(1); got != 150 {
		t.Fatalf("counter = %d, want 150", got)
	}
	// Push the counter over the 32-bit edge.
	a.Count(1, (1<<32)-100)
	if got := a.Read(1); got != 50 {
		t.Fatalf("wrapped counter = %d, want 50", got)
	}
	if got := a.Read(9); got != 0 {
		t.Fatalf("unknown interface = %d, want 0", got)
	}
}

func TestPollerUnwrapsSingleWrap(t *testing.T) {
	p := NewPoller()
	// First reading only establishes the baseline.
	if d := p.Observe(1, 4_000_000_000); d != 0 {
		t.Fatalf("baseline delta = %d", d)
	}
	// Counter wraps past 2³²: raw goes 4e9 → 1e9.
	if d := p.Observe(1, 1_000_000_000); d != (1<<32)-4_000_000_000+1_000_000_000 {
		t.Fatalf("wrap delta = %d", d)
	}
	if p.Wraps(1) != 1 {
		t.Fatalf("wraps = %d, want 1", p.Wraps(1))
	}
	// Normal monotone step.
	if d := p.Observe(1, 1_000_000_500); d != 500 {
		t.Fatalf("delta = %d, want 500", d)
	}
	want := uint64((1<<32)-4_000_000_000+1_000_000_000) + 500
	if got := p.Total(1); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

// TestPollerCounterStall pins the documented stall behavior: a counter
// that does not move between polls yields zero deltas, accumulates
// nothing, and records no wraps — a wedged line card is indistinguishable
// from a quiet link at this layer.
func TestPollerCounterStall(t *testing.T) {
	p := NewPoller()
	p.Observe(7, 123_456_789) // baseline
	for i := 0; i < 5; i++ {
		if d := p.Observe(7, 123_456_789); d != 0 {
			t.Fatalf("stalled poll %d: delta = %d, want 0", i, d)
		}
	}
	if got := p.Total(7); got != 0 {
		t.Fatalf("total after stall = %d, want 0", got)
	}
	if got := p.Wraps(7); got != 0 {
		t.Fatalf("wraps after stall = %d, want 0", got)
	}
	// The counter coming back to life resumes exact accounting.
	if d := p.Observe(7, 123_456_889); d != 100 {
		t.Fatalf("post-stall delta = %d, want 100", d)
	}
	// A stall at zero on a brand-new interface behaves the same: the
	// first read is the baseline, repeats contribute nothing.
	p.Observe(8, 0)
	if d := p.Observe(8, 0); d != 0 || p.Total(8) != 0 {
		t.Fatalf("zero-stall: delta=%d total=%d, want 0/0", d, p.Total(8))
	}
}

// TestPollerMultiWrapInterval pins the documented detection limit: when
// the link moves more than one full 2³² span between polls, the poller
// undercounts by exactly 2³² per extra wrap, because a Counter32 sample
// cannot reveal how many times it lapped.
func TestPollerMultiWrapInterval(t *testing.T) {
	const span = uint64(1) << 32

	// Two wraps landing below the previous reading: one apparent wrap.
	p := NewPoller()
	p.Observe(1, 3_000_000_000)
	pushed := 2*span - 1_000_000_000 // raw: 3e9 → 2e9, lapping twice
	d := p.Observe(1, uint32(3_000_000_000+pushed))
	if want := pushed - span; d != want {
		t.Fatalf("double wrap: delta = %d, want %d (undercount by exactly 2³²)", d, want)
	}
	if p.Wraps(1) != 1 {
		t.Fatalf("double wrap: wraps = %d, want 1 (only one is detectable)", p.Wraps(1))
	}

	// Two wraps landing above the previous reading: no apparent wrap at
	// all — the interval looks like a small monotone step.
	p2 := NewPoller()
	p2.Observe(1, 1_000_000_000)
	pushed2 := 2*span + 500 // raw: 1e9 → 1e9+500
	d2 := p2.Observe(1, uint32(1_000_000_000+pushed2))
	if want := pushed2 - 2*span; d2 != want {
		t.Fatalf("hidden double wrap: delta = %d, want %d", d2, want)
	}
	if p2.Wraps(1) != 0 {
		t.Fatalf("hidden double wrap: wraps = %d, want 0", p2.Wraps(1))
	}

	// The agent+poller pair reproduces the same undercount end to end
	// when polling is too slow for the offered load.
	a := NewAgent()
	p3 := NewPoller()
	p3.Observe(1, a.Read(1))
	a.Count(1, 3*span+42) // three laps between polls
	if got := p3.Observe(1, a.Read(1)); got != 42 {
		t.Fatalf("slow poll recovered %d octets, want 42 (3·2³² lost)", got)
	}
}

func TestAgentPollerEndToEnd(t *testing.T) {
	// Drive > 2³² octets through a link in small increments while polling
	// often enough; the poller must recover the exact total.
	a := NewAgent()
	p := NewPoller()
	p.Observe(1, a.Read(1))
	r := rand.New(rand.NewSource(3))
	var pushed uint64
	for i := 0; i < 2000; i++ {
		// Up to ~3 GB between polls — below the 2³² single-wrap limit
		// per interval, while the running total crosses 2³² hundreds of
		// times.
		burst := uint64(r.Intn(3_000_000))
		for j := 0; j < 1000; j++ {
			a.Count(1, burst)
			pushed += burst
		}
		p.Observe(1, a.Read(1))
	}
	if got := p.Total(1); got != pushed {
		t.Fatalf("poller total = %d, want %d (wraps seen: %d)", got, pushed, p.Wraps(1))
	}
	if p.Wraps(1) == 0 {
		t.Fatal("test should exercise at least one wrap")
	}
}

func TestAgentConcurrentWithPoller(t *testing.T) {
	a := NewAgent()
	p := NewPoller()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			a.Count(2, 1000)
		}
	}()
	for i := 0; i < 100; i++ {
		p.Observe(2, a.Read(2))
	}
	wg.Wait()
	p.Observe(2, a.Read(2))
	if got := p.Total(2); got != 10_000_000 {
		t.Fatalf("total = %d, want 10000000", got)
	}
}

func TestPercentileRateDiscardsTopFivePercent(t *testing.T) {
	// 100 samples: 95 at 10 Mbps, 5 bursts at 1000 Mbps. The 95th
	// percentile bills the 10 Mbps baseline — bursts are free.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 10
	}
	for i := 0; i < 5; i++ {
		samples[i*17%100] = 1000
	}
	rate, err := PercentileBilling{}.Rate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 10 {
		t.Fatalf("95th percentile rate = %v, want 10", rate)
	}
	// At the 100th percentile the burst is billable.
	rate, err = PercentileBilling{Percentile: 1}.Rate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 1000 {
		t.Fatalf("max rate = %v, want 1000", rate)
	}
}

func TestPercentileRateErrors(t *testing.T) {
	if _, err := (PercentileBilling{}).Rate(nil); err == nil {
		t.Error("expected error for no samples")
	}
	if _, err := (PercentileBilling{Percentile: 1.5}).Rate([]float64{1}); err == nil {
		t.Error("expected error for percentile > 1")
	}
	if _, err := (PercentileBilling{Percentile: -0.1}).Rate([]float64{1}); err == nil {
		t.Error("expected error for negative percentile")
	}
}

func TestPercentileRateMonotoneInPercentile(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.Float64() * 100
	}
	prev := -1.0
	for _, p := range []float64{0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		rate, err := PercentileBilling{Percentile: p}.Rate(samples)
		if err != nil {
			t.Fatal(err)
		}
		if rate < prev {
			t.Fatalf("rate not monotone: p=%v rate=%v prev=%v", p, rate, prev)
		}
		prev = rate
	}
}

func TestPercentileBill(t *testing.T) {
	samples := map[int][]float64{
		0: {10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 500},
		1: {5, 5, 5, 5},
	}
	bill, err := PercentileBilling{}.Bill(samples, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tier 0: 20 samples, 95th percentile discards the single burst.
	if bill.MbpsPerTier[0] != 10 {
		t.Fatalf("tier 0 rate = %v, want 10", bill.MbpsPerTier[0])
	}
	want := 10*2.0 + 5*4.0
	if math.Abs(bill.Total-want) > 1e-12 {
		t.Fatalf("total = %v, want %v", bill.Total, want)
	}
	if _, err := (PercentileBilling{}).Bill(map[int][]float64{5: {1}}, []float64{1}); err == nil {
		t.Error("expected error for unpriced tier")
	}
	if _, err := (PercentileBilling{}).Bill(map[int][]float64{0: {}}, []float64{1}); err == nil {
		t.Error("expected error for empty samples")
	}
}

func TestPercentileVsAverageBilling(t *testing.T) {
	// Bursty traffic: percentile billing charges less than peak but more
	// than nothing; the relationship avg ≤ p95 ≤ max must hold.
	r := rand.New(rand.NewSource(11))
	samples := make([]float64, 288) // one day of 5-minute samples
	var sum, max float64
	for i := range samples {
		v := 50 + 30*r.Float64()
		if i%40 == 0 {
			v = 400 // short daily bursts
		}
		samples[i] = v
		sum += v
		if v > max {
			max = v
		}
	}
	avg := sum / float64(len(samples))
	p95, err := PercentileBilling{}.Rate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !(avg <= p95 && p95 <= max) {
		t.Fatalf("avg %v ≤ p95 %v ≤ max %v violated", avg, p95, max)
	}
	if p95 >= 400 {
		t.Fatalf("p95 = %v should exclude the bursts", p95)
	}
}
