// Package accounting implements the two tier-accounting architectures of
// §5.2 of the paper (Figure 17):
//
//   - Link-based accounting: each pricing tier gets its own (physical or
//     virtual) link with a dedicated BGP session; the provider simply
//     polls per-link SNMP octet counters and bills each link at its
//     tier's rate. Simple, but the provisioning overhead grows with the
//     number of tiers.
//   - Flow-based accounting: one link and one routing session; a
//     collector joins NetFlow records with the tier-tagged RIB
//     (bgp.TierCommunity) after the fact and bills per tier.
//
// Both paths produce a Bill; on identical traffic they must agree, which
// the tests and the fig17 experiment verify.
package accounting

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tieredpricing/internal/bgp"
	"tieredpricing/internal/netflow"
)

// CounterSample is one SNMP-style reading of a link's octet counter.
type CounterSample struct {
	IfIndex uint16
	Tier    int
	Octets  uint64
}

// LinkMeter models the link-based architecture: one interface per tier,
// each with a monotonically increasing octet counter, polled periodically
// (Figure 17a). Safe for concurrent counting.
type LinkMeter struct {
	mu     sync.Mutex
	byIf   map[uint16]*linkCounter
	byTier map[int]uint16
}

type linkCounter struct {
	tier   int
	octets uint64
}

// NewLinkMeter creates a meter with no links.
func NewLinkMeter() *LinkMeter {
	return &LinkMeter{byIf: map[uint16]*linkCounter{}, byTier: map[int]uint16{}}
}

// AddLink provisions the link carrying a tier's traffic.
func (m *LinkMeter) AddLink(ifIndex uint16, tier int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byIf[ifIndex]; dup {
		return fmt.Errorf("accounting: interface %d already provisioned", ifIndex)
	}
	if _, dup := m.byTier[tier]; dup {
		return fmt.Errorf("accounting: tier %d already has a link", tier)
	}
	m.byIf[ifIndex] = &linkCounter{tier: tier}
	m.byTier[tier] = ifIndex
	return nil
}

// LinkFor returns the interface provisioned for a tier.
func (m *LinkMeter) LinkFor(tier int) (uint16, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ifIndex, ok := m.byTier[tier]
	return ifIndex, ok
}

// Count adds octets to a link's counter (the data path).
func (m *LinkMeter) Count(ifIndex uint16, octets uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byIf[ifIndex]
	if !ok {
		return fmt.Errorf("accounting: unknown interface %d", ifIndex)
	}
	c.octets += octets
	return nil
}

// Poll returns the current counters, sorted by interface (the SNMP
// polling pass of Figure 17a).
func (m *LinkMeter) Poll() []CounterSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CounterSample, 0, len(m.byIf))
	for ifIndex, c := range m.byIf {
		out = append(out, CounterSample{IfIndex: ifIndex, Tier: c.tier, Octets: c.octets})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IfIndex < out[j].IfIndex })
	return out
}

// PerTierOctets folds polled samples into per-tier totals.
func PerTierOctets(samples []CounterSample) map[int]uint64 {
	out := map[int]uint64{}
	for _, s := range samples {
		out[s.Tier] += s.Octets
	}
	return out
}

// FlowAccountant models the flow-based architecture (Figure 17b): NetFlow
// records are de-duplicated, sampling-restored, and joined with the
// tier-tagged RIB to attribute octets to tiers. Safe for concurrent
// ingest.
type FlowAccountant struct {
	rib *bgp.RIB

	mu       sync.Mutex
	seen     map[netflow.FlowKey]struct{}
	perTier  map[int]uint64
	unrouted uint64
	records  int
}

// NewFlowAccountant creates an accountant over the given RIB.
func NewFlowAccountant(rib *bgp.RIB) (*FlowAccountant, error) {
	if rib == nil {
		return nil, errors.New("accounting: nil RIB")
	}
	return &FlowAccountant{
		rib:     rib,
		seen:    map[netflow.FlowKey]struct{}{},
		perTier: map[int]uint64{},
	}, nil
}

// Ingest processes one NetFlow export packet.
func (fa *FlowAccountant) Ingest(h netflow.Header, recs []netflow.Record) {
	sampling := uint64(h.SamplingInterval)
	if sampling == 0 {
		sampling = 1
	}
	fa.mu.Lock()
	defer fa.mu.Unlock()
	for _, r := range recs {
		fa.records++
		key := netflow.KeyOf(r)
		if _, dup := fa.seen[key]; dup {
			continue
		}
		fa.seen[key] = struct{}{}
		octets := uint64(r.Octets) * sampling
		route, ok := fa.rib.Lookup(r.DstAddr)
		if !ok || route.Tier == nil {
			fa.unrouted += octets
			continue
		}
		fa.perTier[int(route.Tier.Tier)] += octets
	}
}

// PerTierOctets returns the accumulated per-tier totals.
func (fa *FlowAccountant) PerTierOctets() map[int]uint64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	out := make(map[int]uint64, len(fa.perTier))
	for t, o := range fa.perTier {
		out[t] = o
	}
	return out
}

// Unrouted returns octets that matched no tier-tagged route.
func (fa *FlowAccountant) Unrouted() uint64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.unrouted
}

// Bill prices accumulated traffic: each tier's average Mbps over the
// billing window times its $/Mbps/month rate.
type Bill struct {
	// MbpsPerTier is the average throughput attributed to each tier.
	MbpsPerTier map[int]float64
	// ChargePerTier is MbpsPerTier × the tier's price.
	ChargePerTier map[int]float64
	// Total is the sum of charges in $/month.
	Total float64
}

// ComputeBill converts per-tier octet totals over a window into a bill at
// the given per-tier prices ($/Mbps/month).
func ComputeBill(perTier map[int]uint64, prices []float64, windowSec float64) (Bill, error) {
	if windowSec <= 0 {
		return Bill{}, errors.New("accounting: billing window must be positive")
	}
	b := Bill{MbpsPerTier: map[int]float64{}, ChargePerTier: map[int]float64{}}
	for tier, octets := range perTier {
		if tier < 0 || tier >= len(prices) {
			return Bill{}, fmt.Errorf("accounting: no price for tier %d", tier)
		}
		mbps := netflow.DemandMbps(octets, windowSec)
		b.MbpsPerTier[tier] = mbps
		b.ChargePerTier[tier] = mbps * prices[tier]
		b.Total += mbps * prices[tier]
	}
	return b, nil
}

// Overhead models the paper's accounting-overhead comparison (§5.2): the
// link-based method needs a provisioned link and BGP session per tier,
// while the flow-based method needs fixed collector infrastructure plus
// per-record processing.
type Overhead struct {
	// PerTierLink is the monthly cost of one provisioned link + session.
	PerTierLink float64
	// CollectorFixed is the monthly cost of flow-collection
	// infrastructure.
	CollectorFixed float64
	// PerMillionRecords is the processing cost per million flow records.
	PerMillionRecords float64
}

// LinkBased returns the link-based overhead for the given tier count.
func (o Overhead) LinkBased(tiers int) float64 {
	return float64(tiers) * o.PerTierLink
}

// FlowBased returns the flow-based overhead for the given record volume.
func (o Overhead) FlowBased(records int) float64 {
	return o.CollectorFixed + float64(records)/1e6*o.PerMillionRecords
}
