package accounting

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// This file models the parts of "Periodic SNMP Polling" (Figure 17a)
// that bite in production: interface octet counters are 32-bit and wrap
// (a 10 Gbps link wraps ifInOctets every ~3.4 seconds), so the poller
// must sample often enough and unwrap deltas; and transit is billed not
// on averages but on a percentile of interval samples (the industry's
// 95th-percentile rule), which PercentileBilling implements.

// Agent simulates a router's interface MIB: one wrapping Counter32 of
// octets per ifIndex. Safe for concurrent use (data path vs poller).
type Agent struct {
	mu       sync.Mutex
	counters map[uint16]uint32
}

// NewAgent creates an agent with no interfaces; counting on a new
// ifIndex implicitly provisions it at zero.
func NewAgent() *Agent {
	return &Agent{counters: map[uint16]uint32{}}
}

// Count adds octets on the data path, wrapping modulo 2³² exactly as
// ifInOctets does.
func (a *Agent) Count(ifIndex uint16, octets uint64) {
	a.mu.Lock()
	a.counters[ifIndex] += uint32(octets) // wraps by construction
	a.mu.Unlock()
}

// Read returns the current raw counter (an SNMP GET of ifInOctets).
func (a *Agent) Read(ifIndex uint16) uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters[ifIndex]
}

// Poller accumulates true octet totals from periodic raw counter reads,
// unwrapping at most one 2³² wrap per polling interval — the standard
// SNMP assumption, which holds as long as the interval is shorter than
// the counter's minimum wrap time at line rate.
//
// Detection limit: a raw Counter32 reading carries no generation number,
// so wraps are inferred only from raw < prev. Two failure modes are
// therefore fundamentally undetectable from the samples alone:
//
//   - Counter stall. If the counter does not move between polls (idle
//     link, or a wedged line card reporting a frozen MIB), the delta is
//     legitimately zero — a stalled counter is indistinguishable from a
//     quiet interval, and no wrap is recorded.
//   - More than one wrap per interval. If the link moves ≥ 2·2³² octets
//     between polls, the poller sees at most one apparent wrap and
//     undercounts by exactly 2³² per extra wrap (and when the counter
//     lands above its previous reading, by every wrap that interval).
//
// The operational remedy is not in software: poll faster than the
// counter's minimum wrap time (~3.4 s at 10 Gbps) or use 64-bit
// ifHCInOctets. TestPollerCounterStall and TestPollerMultiWrapInterval
// pin this contract.
type Poller struct {
	mu     sync.Mutex
	last   map[uint16]uint32
	seen   map[uint16]bool
	totals map[uint16]uint64
	wraps  map[uint16]int
}

// NewPoller creates an empty poller.
func NewPoller() *Poller {
	return &Poller{
		last:   map[uint16]uint32{},
		seen:   map[uint16]bool{},
		totals: map[uint16]uint64{},
		wraps:  map[uint16]int{},
	}
}

// Observe records one raw counter reading and returns the octet delta
// attributed to the interval since the previous reading (zero for the
// first reading of an interface, which only establishes the baseline).
func (p *Poller) Observe(ifIndex uint16, raw uint32) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seen[ifIndex] {
		p.seen[ifIndex] = true
		p.last[ifIndex] = raw
		return 0
	}
	prev := p.last[ifIndex]
	p.last[ifIndex] = raw
	var delta uint64
	if raw >= prev {
		delta = uint64(raw - prev)
	} else {
		// The counter wrapped (assumed once).
		delta = uint64(raw) + (1 << 32) - uint64(prev)
		p.wraps[ifIndex]++
	}
	p.totals[ifIndex] += delta
	return delta
}

// Total returns the accumulated octets for an interface.
func (p *Poller) Total(ifIndex uint16) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[ifIndex]
}

// Wraps returns how many counter wraps were unwrapped for an interface.
func (p *Poller) Wraps(ifIndex uint16) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wraps[ifIndex]
}

// PercentileBilling prices traffic the way transit contracts actually
// do: the billing window is cut into fixed intervals (classically 5
// minutes), each interval's average Mbps is a sample, the top
// (1 − Percentile) fraction of samples is discarded, and the highest
// surviving sample is the billable rate. Bursts above the percentile are
// free — the practice the paper's $/Mbps/month prices plug into.
type PercentileBilling struct {
	// Percentile in (0, 1]; zero selects the standard 0.95.
	Percentile float64
}

// Rate returns the billable Mbps for one tier's interval samples.
func (pb PercentileBilling) Rate(samplesMbps []float64) (float64, error) {
	if len(samplesMbps) == 0 {
		return 0, errors.New("accounting: no samples")
	}
	p := pb.Percentile
	if p == 0 {
		p = 0.95
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("accounting: percentile %v outside (0, 1]", p)
	}
	sorted := append([]float64(nil), samplesMbps...)
	sort.Float64s(sorted)
	// Discard the top (1−p) fraction; bill the highest survivor.
	idx := int(p*float64(len(sorted))+1e-9) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], nil
}

// Bill prices per-tier interval samples at the given $/Mbps/month rates.
func (pb PercentileBilling) Bill(samplesPerTier map[int][]float64, prices []float64) (Bill, error) {
	b := Bill{MbpsPerTier: map[int]float64{}, ChargePerTier: map[int]float64{}}
	for tier, samples := range samplesPerTier {
		if tier < 0 || tier >= len(prices) {
			return Bill{}, fmt.Errorf("accounting: no price for tier %d", tier)
		}
		rate, err := pb.Rate(samples)
		if err != nil {
			return Bill{}, fmt.Errorf("accounting: tier %d: %w", tier, err)
		}
		b.MbpsPerTier[tier] = rate
		b.ChargePerTier[tier] = rate * prices[tier]
		b.Total += rate * prices[tier]
	}
	return b, nil
}
