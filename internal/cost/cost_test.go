package cost

import (
	"math"
	"testing"

	"tieredpricing/internal/econ"
)

func almostEq(a, b, tol float64) bool {
	return !math.IsNaN(a) && !math.IsNaN(b) && math.Abs(a-b) <= tol
}

func flowsAt(ds ...float64) []econ.Flow {
	out := make([]econ.Flow, len(ds))
	for i, d := range ds {
		out[i] = econ.Flow{ID: "f", Demand: 1, Distance: d}
	}
	return out
}

func TestLinearMatchesPaperExample(t *testing.T) {
	// §3.3 example: distances 1, 10, 100 miles, θ = 0.1 ⇒ base cost is
	// 10 (in γ = $1/mile units) and relative costs are 11, 20, 110.
	m := Linear{Theta: 0.1}
	f, err := m.RelativeCosts(flowsAt(1, 10, 100))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 20, 110}
	for i := range want {
		if !almostEq(f[i], want[i], 1e-12) {
			t.Errorf("f[%d] = %v, want %v", i, f[i], want[i])
		}
	}
}

func TestLinearZeroThetaIsPureDistance(t *testing.T) {
	m := Linear{Theta: 0}
	f, err := m.RelativeCosts(flowsAt(5, 50))
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 5 || f[1] != 50 {
		t.Fatalf("f = %v, want [5 50]", f)
	}
}

func TestLinearFloorsTinyDistances(t *testing.T) {
	m := Linear{Theta: 0}
	f, err := m.RelativeCosts(flowsAt(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != MinDistance {
		t.Fatalf("zero distance should floor to %v, got %v", MinDistance, f[0])
	}
}

func TestLinearThetaReducesCV(t *testing.T) {
	// Raising the base cost must compress relative cost differences —
	// the mechanism behind the paper's Figure 10 observation that higher
	// θ lowers attainable profit.
	flows := flowsAt(1, 10, 100, 400)
	spread := func(theta float64) float64 {
		f, err := Linear{Theta: theta}.RelativeCosts(flows)
		if err != nil {
			t.Fatal(err)
		}
		min, max := f[0], f[0]
		for _, x := range f {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return max / min
	}
	if !(spread(0.1) > spread(0.3)) {
		t.Fatalf("spread(0.1)=%v should exceed spread(0.3)=%v", spread(0.1), spread(0.3))
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := (Linear{Theta: -1}).RelativeCosts(flowsAt(1)); err == nil {
		t.Error("expected error for negative theta")
	}
	if _, err := (Linear{}).RelativeCosts(nil); err == nil {
		t.Error("expected error for no flows")
	}
}

func TestConcaveUsesPaperDefaults(t *testing.T) {
	m := Concave{Theta: 0}
	a, b, c := m.curve()
	if a != 0.43 || b != 9.43 || c != 0.99 {
		t.Fatalf("defaults = (%v, %v, %v)", a, b, c)
	}
	// At the maximum distance (normalized 1) the curve value is exactly c.
	f, err := m.RelativeCosts(flowsAt(10, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f[1], 0.99, 1e-12) {
		t.Fatalf("f(max) = %v, want 0.99", f[1])
	}
	if !(f[0] < f[1]) {
		t.Fatalf("concave cost not increasing: %v", f)
	}
}

func TestConcaveCompressesSpreadVsLinear(t *testing.T) {
	// §4.3.1: the log transform reduces the relative cost difference
	// between local and remote flows compared to the linear model.
	flows := flowsAt(1, 1000)
	lin, err := Linear{Theta: 0}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	con, err := Concave{Theta: 0}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !(con[1]/con[0] < lin[1]/lin[0]) {
		t.Fatalf("concave ratio %v should be below linear ratio %v",
			con[1]/con[0], lin[1]/lin[0])
	}
}

func TestConcaveClampsToPositive(t *testing.T) {
	m := Concave{Theta: 0}
	// 0.001 of max distance is far below the curve's zero crossing.
	f, err := m.RelativeCosts(flowsAt(0.001*1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if !(f[0] > 0) {
		t.Fatalf("clamped cost = %v, want positive", f[0])
	}
}

func TestConcaveCustomCurveAndErrors(t *testing.T) {
	m := Concave{A: 0.03, B: 1.12, C: 1.01} // the paper's NTT fit
	f, err := m.RelativeCosts(flowsAt(50, 100))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.03*math.Log(0.5)/math.Log(1.12) + 1.01
	if !almostEq(f[0], want, 1e-12) {
		t.Fatalf("f = %v, want %v", f[0], want)
	}
	if _, err := (Concave{A: 1, B: 1, C: 1}).RelativeCosts(flowsAt(1)); err == nil {
		t.Error("expected error for log base 1")
	}
	if _, err := (Concave{Theta: -0.1}).RelativeCosts(flowsAt(1)); err == nil {
		t.Error("expected error for negative theta")
	}
}

func TestRegionalClasses(t *testing.T) {
	flows := []econ.Flow{
		{ID: "m", Demand: 1, Region: econ.RegionMetro},
		{ID: "n", Demand: 1, Region: econ.RegionNational},
		{ID: "i", Demand: 1, Region: econ.RegionInternational},
	}
	// θ = 1: linear cost differences 1, 2, 3 (§3.3).
	f, err := Regional{Theta: 1}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(f[i], want[i], 1e-12) {
			t.Errorf("θ=1: f[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	// θ = 0: no cost difference between regions.
	f0, err := Regional{Theta: 0}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f0 {
		if f0[i] != 1 {
			t.Errorf("θ=0: f[%d] = %v, want 1", i, f0[i])
		}
	}
	// θ = 2: costs differ by magnitudes (1, 4, 9).
	f2, err := Regional{Theta: 2}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f2[2], 9, 1e-12) {
		t.Errorf("θ=2: f[int] = %v, want 9", f2[2])
	}
}

func TestRegionalUnknownRegion(t *testing.T) {
	flows := []econ.Flow{{ID: "x", Region: econ.Region(9)}}
	if _, err := (Regional{Theta: 1}).RelativeCosts(flows); err == nil {
		t.Error("expected error for unknown region")
	}
}

func TestClassifyByDistance(t *testing.T) {
	// Paper thresholds for the EU ISP: <10 metro, <100 national.
	cases := []struct {
		d    float64
		want econ.Region
	}{
		{0, econ.RegionMetro},
		{9.99, econ.RegionMetro},
		{10, econ.RegionNational},
		{99, econ.RegionNational},
		{100, econ.RegionInternational},
		{5000, econ.RegionInternational},
	}
	for _, c := range cases {
		if got := ClassifyByDistance(c.d, 10, 100); got != c.want {
			t.Errorf("ClassifyByDistance(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDestTypeFactors(t *testing.T) {
	flows := []econ.Flow{
		{ID: "on", Demand: 1, OnNet: true},
		{ID: "off", Demand: 1, OnNet: false},
	}
	f, err := DestType{}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 1 || f[1] != 2 {
		t.Fatalf("f = %v, want [1 2]", f)
	}
	f3, err := DestType{OffNetFactor: 3}.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	if f3[1] != 3 {
		t.Fatalf("custom factor: f = %v, want 3", f3[1])
	}
	if _, err := (DestType{OffNetFactor: -1}).RelativeCosts(flows); err == nil {
		t.Error("expected error for negative factor")
	}
}

func TestAllModelsReturnPositiveCosts(t *testing.T) {
	flows := []econ.Flow{
		{ID: "a", Demand: 1, Distance: 0, Region: econ.RegionMetro, OnNet: true},
		{ID: "b", Demand: 1, Distance: 54, Region: econ.RegionNational},
		{ID: "c", Demand: 1, Distance: 4000, Region: econ.RegionInternational},
	}
	models := []Model{
		Linear{Theta: 0.2}, Linear{Theta: 0},
		Concave{Theta: 0.2}, Concave{Theta: 0},
		Regional{Theta: 1.1}, Regional{Theta: 0},
		DestType{},
	}
	for _, m := range models {
		f, err := m.RelativeCosts(flows)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(f) != len(flows) {
			t.Fatalf("%s: %d costs for %d flows", m.Name(), len(f), len(flows))
		}
		for i, x := range f {
			if !(x > 0) {
				t.Errorf("%s: f[%d] = %v, want positive", m.Name(), i, x)
			}
		}
	}
}

func TestCompositeMultipliesFactors(t *testing.T) {
	flows := []econ.Flow{
		{ID: "on", Demand: 1, Distance: 10, OnNet: true},
		{ID: "off", Demand: 1, Distance: 100, OnNet: false},
	}
	m := Composite{Models: []Model{Linear{Theta: 0}, DestType{}}}
	f, err := m.RelativeCosts(flows)
	if err != nil {
		t.Fatal(err)
	}
	// Linear gives (10, 100); DestType gives (1, 2); product (10, 200).
	if f[0] != 10 || f[1] != 200 {
		t.Fatalf("composite = %v, want [10 200]", f)
	}
	if m.Name() != "composite(linear*desttype)" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestCompositeErrors(t *testing.T) {
	flows := flowsAt(1, 2)
	if _, err := (Composite{}).RelativeCosts(flows); err == nil {
		t.Error("expected error for no factors")
	}
	bad := Composite{Models: []Model{Linear{Theta: -1}}}
	if _, err := bad.RelativeCosts(flows); err == nil {
		t.Error("expected factor error to propagate")
	}
}
