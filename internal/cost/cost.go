// Package cost implements the four network cost models of §3.3 of the
// paper. Each model maps a flow's attributes (distance, destination
// region, on-/off-net class) to a *relative* unit cost f_i; the absolute
// cost is c_i = γ·f_i with the scaling coefficient γ recovered by the
// demand model's calibration step (§4.1.3), so the models here never need
// to know real dollar figures.
//
// Every model carries the paper's generic tuning parameter θ, whose
// meaning is model-specific: the relative base ("fixed") cost for the
// distance models, the inter-region cost exponent for the regional model,
// and the on-net traffic fraction for the destination-type model.
package cost

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"tieredpricing/internal/econ"
)

// MinDistance floors flow distances (miles) before they enter a distance
// cost function, so that intra-PoP flows (distance ≈ 0) still carry a
// positive relative cost.
const MinDistance = 1.0

// minRelative floors the concave model's output: the fitted log curve goes
// non-positive for distances below ~0.6% of the maximum, where the paper's
// normalized price data has no support.
const minRelative = 1e-3

// Model maps flows to relative unit costs f_i > 0. Implementations must
// not mutate the flows.
type Model interface {
	// Name identifies the model ("linear", "concave", "regional",
	// "desttype").
	Name() string
	// RelativeCosts returns one positive relative cost per flow.
	RelativeCosts(flows []econ.Flow) ([]float64, error)
}

// Linear is the linear-in-distance model: c_i = γ·d_i + β with base cost
// β = θ·max_j(γ·d_j) (§3.3). In relative terms,
//
//	f_i = d_i + θ·max_j d_j.
//
// Low θ means link distance dominates total cost; high θ flattens the
// cost differences between flows.
type Linear struct {
	// Theta is the relative base-cost fraction θ ≥ 0.
	Theta float64
}

// Name implements Model.
func (m Linear) Name() string { return "linear" }

// RelativeCosts implements Model.
func (m Linear) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if m.Theta < 0 {
		return nil, fmt.Errorf("cost: linear theta must be >= 0, got %v", m.Theta)
	}
	if len(flows) == 0 {
		return nil, errors.New("cost: no flows")
	}
	maxD := 0.0
	for _, f := range flows {
		if d := effDistance(f); d > maxD {
			maxD = d
		}
	}
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = effDistance(f) + m.Theta*maxD
	}
	return out, nil
}

// Concave is the concave-in-distance model: c_i = γ(a·log_b(d̂_i) + c) + β
// with d̂ the distance normalized by the network's maximum (§3.3). The
// default curve constants come from the paper's fit of the ITU price data
// in Figure 6 (a ≈ 0.43, b ≈ 9.43, c ≈ 0.99). As in the linear model the
// base cost is β = θ·max_j f0_j.
type Concave struct {
	// Theta is the relative base-cost fraction θ ≥ 0.
	Theta float64
	// A, B, C parameterize f0(d̂) = A·log_B(d̂) + C. Zero values select
	// the paper's ITU fit.
	A, B, C float64
}

// Name implements Model.
func (m Concave) Name() string { return "concave" }

// curve returns the model's constants, substituting the paper defaults.
func (m Concave) curve() (a, b, c float64) {
	a, b, c = m.A, m.B, m.C
	if a == 0 && b == 0 && c == 0 {
		return 0.43, 9.43, 0.99
	}
	return a, b, c
}

// RelativeCosts implements Model.
func (m Concave) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if m.Theta < 0 {
		return nil, fmt.Errorf("cost: concave theta must be >= 0, got %v", m.Theta)
	}
	if len(flows) == 0 {
		return nil, errors.New("cost: no flows")
	}
	a, b, c := m.curve()
	if b <= 0 || b == 1 {
		return nil, fmt.Errorf("cost: invalid log base %v", b)
	}
	maxD := 0.0
	for _, f := range flows {
		if d := effDistance(f); d > maxD {
			maxD = d
		}
	}
	out := make([]float64, len(flows))
	maxF0 := 0.0
	for i, f := range flows {
		norm := effDistance(f) / maxD
		f0 := a*math.Log(norm)/math.Log(b) + c
		if f0 < minRelative {
			f0 = minRelative
		}
		out[i] = f0
		if f0 > maxF0 {
			maxF0 = f0
		}
	}
	for i := range out {
		out[i] += m.Theta * maxF0
	}
	return out, nil
}

// Regional is the destination-region model (§3.3): three cost classes with
//
//	f_metro = 1,  f_national = 2^θ,  f_international = 3^θ.
//
// θ = 0 erases regional differences, θ = 1 makes them linear in the region
// index, θ > 1 separates them by magnitudes.
type Regional struct {
	// Theta is the inter-region exponent θ ≥ 0.
	Theta float64
}

// Name implements Model.
func (m Regional) Name() string { return "regional" }

// RelativeCosts implements Model, keyed on each flow's Region.
func (m Regional) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if m.Theta < 0 {
		return nil, fmt.Errorf("cost: regional theta must be >= 0, got %v", m.Theta)
	}
	if len(flows) == 0 {
		return nil, errors.New("cost: no flows")
	}
	out := make([]float64, len(flows))
	for i, f := range flows {
		switch f.Region {
		case econ.RegionMetro:
			out[i] = 1
		case econ.RegionNational:
			out[i] = math.Pow(2, m.Theta)
		case econ.RegionInternational:
			out[i] = math.Pow(3, m.Theta)
		default:
			return nil, fmt.Errorf("cost: flow %q has unknown region %v", f.ID, f.Region)
		}
	}
	return out, nil
}

// ClassifyByDistance assigns the paper's EU-ISP regional classes from
// distance alone (§3.3): flows traveling less than metroMax miles are
// metro, less than nationalMax national, all others international. The
// paper uses 10 and 100 miles.
func ClassifyByDistance(d, metroMax, nationalMax float64) econ.Region {
	switch {
	case d < metroMax:
		return econ.RegionMetro
	case d < nationalMax:
		return econ.RegionNational
	default:
		return econ.RegionInternational
	}
}

// DestType is the destination-type ("on-net"/"off-net") model (§3.3):
// traffic to the ISP's own customers recovers part of its transport cost
// from the receiving customer, so off-net traffic is modeled as twice as
// costly as on-net traffic:
//
//	f_onnet = 1,  f_offnet = OffNetFactor (default 2).
//
// The paper's θ — the fraction of traffic at each distance that is
// on-net — is applied when the flow set is constructed (see
// core.SplitByDestType), not here.
type DestType struct {
	// OffNetFactor is the off-net/on-net cost ratio; zero selects the
	// paper's factor of 2.
	OffNetFactor float64
}

// Name implements Model.
func (m DestType) Name() string { return "desttype" }

// RelativeCosts implements Model, keyed on each flow's OnNet flag.
func (m DestType) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if len(flows) == 0 {
		return nil, errors.New("cost: no flows")
	}
	factor := m.OffNetFactor
	if factor == 0 {
		factor = 2
	}
	if factor <= 0 {
		return nil, fmt.Errorf("cost: off-net factor must be positive, got %v", factor)
	}
	out := make([]float64, len(flows))
	for i, f := range flows {
		if f.OnNet {
			out[i] = 1
		} else {
			out[i] = factor
		}
	}
	return out, nil
}

// effDistance returns the flow's distance floored at MinDistance.
func effDistance(f econ.Flow) float64 {
	if f.Distance < MinDistance {
		return MinDistance
	}
	return f.Distance
}

// Composite multiplies the relative costs of several models, e.g.
// distance-proportional transport cost times the on-/off-net recovery
// multiplier — the "destination type on top of distance" variant the
// §3.3 text hints at ("the cost of the traffic to peers to be twice as
// costly than traffic to other customers").
type Composite struct {
	// Models are the factors; at least one is required.
	Models []Model
}

// Name implements Model.
func (m Composite) Name() string {
	names := make([]string, len(m.Models))
	for i, sub := range m.Models {
		names[i] = sub.Name()
	}
	return "composite(" + strings.Join(names, "*") + ")"
}

// RelativeCosts implements Model.
func (m Composite) RelativeCosts(flows []econ.Flow) ([]float64, error) {
	if len(m.Models) == 0 {
		return nil, errors.New("cost: composite needs at least one factor")
	}
	out := make([]float64, len(flows))
	for i := range out {
		out[i] = 1
	}
	for _, sub := range m.Models {
		f, err := sub.RelativeCosts(flows)
		if err != nil {
			return nil, fmt.Errorf("cost: composite factor %s: %w", sub.Name(), err)
		}
		for i := range out {
			out[i] *= f[i]
		}
	}
	return out, nil
}
