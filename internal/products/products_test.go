package products

import (
	"testing"

	"tieredpricing/internal/econ"
)

func sampleFlows() []econ.Flow {
	return []econ.Flow{
		{ID: "a", Demand: 10, Distance: 5, Region: econ.RegionMetro, OnNet: true, Valuation: 1, Cost: 1},
		{ID: "b", Demand: 5, Distance: 40, Region: econ.RegionNational, OnNet: true, Valuation: 1, Cost: 2},
		{ID: "c", Demand: 3, Distance: 400, Region: econ.RegionNational, Valuation: 1, Cost: 3},
		{ID: "d", Demand: 1, Distance: 4000, Region: econ.RegionInternational, Valuation: 1, Cost: 5},
	}
}

func checkCover(t *testing.T, n int, parts [][]int) {
	t.Helper()
	seen := make([]bool, n)
	for _, block := range parts {
		if len(block) == 0 {
			t.Fatalf("empty block in %v", parts)
		}
		for _, i := range block {
			if seen[i] {
				t.Fatalf("duplicate index %d in %v", i, parts)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("flow %d uncovered in %v", i, parts)
		}
	}
}

func TestBlendedTransit(t *testing.T) {
	parts, err := BlendedTransit{}.Tiers(sampleFlows())
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || len(parts[0]) != 4 {
		t.Fatalf("parts = %v", parts)
	}
	if _, err := (BlendedTransit{}).Tiers(nil); err == nil {
		t.Error("expected error for no flows")
	}
}

func TestPaidPeeringSplitsByOnNet(t *testing.T) {
	flows := sampleFlows()
	parts, err := PaidPeering{}.Tiers(flows)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, 4, parts)
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	for _, i := range parts[0] {
		if !flows[i].OnNet {
			t.Fatalf("tier 0 should be on-net: %v", parts)
		}
	}
	for _, i := range parts[1] {
		if flows[i].OnNet {
			t.Fatalf("tier 1 should be off-net: %v", parts)
		}
	}
	// Degenerate: all off-net.
	uniform := sampleFlows()
	for i := range uniform {
		uniform[i].OnNet = false
	}
	if _, err := (PaidPeering{}).Tiers(uniform); err == nil {
		t.Error("expected error for single-class market")
	}
}

func TestBackplanePeeringSplitsByRadius(t *testing.T) {
	flows := sampleFlows()
	parts, err := BackplanePeering{}.Tiers(flows) // default 100-mile radius
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, 4, parts)
	if len(parts[0]) != 2 {
		t.Fatalf("offload tier = %v, want the two local flows", parts[0])
	}
	// Custom radius.
	parts, err = BackplanePeering{OffloadRadius: 10}.Tiers(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0]) != 1 || parts[0][0] != 0 {
		t.Fatalf("10-mile offload tier = %v", parts[0])
	}
	if _, err := (BackplanePeering{OffloadRadius: -1}).Tiers(flows); err == nil {
		t.Error("expected error for negative radius")
	}
	if _, err := (BackplanePeering{OffloadRadius: 1e9}).Tiers(flows); err == nil {
		t.Error("expected error when everything is offloadable")
	}
}

func TestRegionalPricingThreeTiers(t *testing.T) {
	flows := sampleFlows()
	parts, err := RegionalPricing{}.Tiers(flows)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, 4, parts)
	if len(parts) != 3 {
		t.Fatalf("parts = %v, want 3 regions", parts)
	}
	// Tiers come out in region order: metro, national, international.
	if parts[0][0] != 0 || len(parts[1]) != 2 || parts[2][0] != 3 {
		t.Fatalf("region grouping wrong: %v", parts)
	}
}

func TestAllOfferingsOnRealDatasetShape(t *testing.T) {
	// Offerings must produce valid partitions on flows that carry all
	// three attributes.
	flows := sampleFlows()
	for _, o := range All() {
		parts, err := o.Tiers(flows)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		checkCover(t, len(flows), parts)
	}
	if len(All()) != 4 {
		t.Errorf("taxonomy has %d products", len(All()))
	}
}
