// Package products encodes the paper's §2.1 taxonomy of wholesale
// transit offerings as bundling rules, so the product structures ISPs
// actually sell — blended transit, paid peering, backplane peering,
// regional pricing — can be evaluated with the same counterfactual
// machinery as the paper's algorithmic strategies. The paper speculates
// that "the bundling strategies described above arose primarily from
// operational and cost considerations"; this package quantifies what
// profit each leaves on the table.
package products

import (
	"errors"
	"fmt"

	"tieredpricing/internal/econ"
)

// Offering is one §2.1 product structure: a rule mapping a fitted flow
// set to the fixed tier partition the product sells. Unlike
// bundling.Strategy, an Offering has no free bundle-count parameter —
// the product defines its own tiers.
type Offering interface {
	// Name is the taxonomy name used in §2.1.
	Name() string
	// Tiers partitions the flows as the product would.
	Tiers(flows []econ.Flow) ([][]int, error)
}

// BlendedTransit is conventional transit: one blended rate for all
// destinations.
type BlendedTransit struct{}

// Name implements Offering.
func (BlendedTransit) Name() string { return "blended transit" }

// Tiers implements Offering.
func (BlendedTransit) Tiers(flows []econ.Flow) ([][]int, error) {
	if len(flows) == 0 {
		return nil, errors.New("products: no flows")
	}
	return [][]int{all(len(flows))}, nil
}

// PaidPeering sells on-net routes (destinations inside the ISP's own
// customer base) at one rate and off-net transit at another — the
// product that spawned the §2.2 controversies.
type PaidPeering struct{}

// Name implements Offering.
func (PaidPeering) Name() string { return "paid peering" }

// Tiers implements Offering.
func (PaidPeering) Tiers(flows []econ.Flow) ([][]int, error) {
	return splitBy(flows, func(f econ.Flow) int {
		if f.OnNet {
			return 0
		}
		return 1
	}, "paid peering needs both on-net and off-net flows")
}

// BackplanePeering sells a discount rate for traffic the ISP can offload
// to its peers at the local exchange, and a backbone rate for the rest.
// Offloadable traffic is the set of destinations within OffloadRadius
// miles — the reach of the exchange's peering fabric.
type BackplanePeering struct {
	// OffloadRadius is the distance (miles) within which destinations
	// are reachable via exchange peers; zero selects 100 miles.
	OffloadRadius float64
}

// Name implements Offering.
func (BackplanePeering) Name() string { return "backplane peering" }

// Tiers implements Offering.
func (o BackplanePeering) Tiers(flows []econ.Flow) ([][]int, error) {
	radius := o.OffloadRadius
	if radius == 0 {
		radius = 100
	}
	if radius < 0 {
		return nil, errors.New("products: negative offload radius")
	}
	return splitBy(flows, func(f econ.Flow) int {
		if f.Distance < radius {
			return 0
		}
		return 1
	}, "backplane peering needs flows on both sides of the offload radius")
}

// RegionalPricing sells one rate per destination region
// (metro/national/international) — the §2.1 "regional pricing" product
// at its coarsest common granularity.
type RegionalPricing struct{}

// Name implements Offering.
func (RegionalPricing) Name() string { return "regional pricing" }

// Tiers implements Offering.
func (RegionalPricing) Tiers(flows []econ.Flow) ([][]int, error) {
	return splitBy(flows, func(f econ.Flow) int {
		return int(f.Region)
	}, "regional pricing needs at least two regions")
}

// All returns the §2.1 taxonomy in presentation order.
func All() []Offering {
	return []Offering{
		BlendedTransit{}, PaidPeering{}, BackplanePeering{}, RegionalPricing{},
	}
}

// splitBy partitions flows by a class function, dropping empty classes
// and rejecting degenerate single-class splits.
func splitBy(flows []econ.Flow, classOf func(econ.Flow) int, degenerate string) ([][]int, error) {
	if len(flows) == 0 {
		return nil, errors.New("products: no flows")
	}
	groups := map[int][]int{}
	maxClass := 0
	for i, f := range flows {
		c := classOf(f)
		if c < 0 {
			return nil, fmt.Errorf("products: negative class for flow %q", f.ID)
		}
		groups[c] = append(groups[c], i)
		if c > maxClass {
			maxClass = c
		}
	}
	var out [][]int
	for c := 0; c <= maxClass; c++ {
		if len(groups[c]) > 0 {
			out = append(out, groups[c])
		}
	}
	if len(out) < 2 {
		return nil, errors.New("products: " + degenerate)
	}
	return out, nil
}

// all returns [0..n).
func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
