package demandfit

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"

	"tieredpricing/internal/bundling"
	"tieredpricing/internal/core"
	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/topology"
	"tieredpricing/internal/traces"
)

// collectDataset runs a dataset through the full NetFlow pipeline and
// returns the collected aggregates.
func collectDataset(t *testing.T, ds *traces.Dataset) []netflow.Aggregate {
	t.Helper()
	streams, err := ds.EmitNetFlow(traces.EmitConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := netflow.NewCollector(traces.AggregateKey)
	for _, stream := range streams {
		rd := netflow.NewReader(bytes.NewReader(stream))
		for {
			h, recs, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			c.Ingest(h, recs)
		}
	}
	return c.Aggregates()
}

func resolverFor(ds *traces.Dataset) *Resolver {
	return &Resolver{
		Geo:             ds.Geo,
		Topo:            ds.Graph,
		DistanceRegions: ds.Name == "euisp",
	}
}

// TestPipelineReproducesDataset is the §4.1.1 integration test: the
// demands, distances and regions recovered from raw NetFlow streams must
// match the generated ground truth.
func TestPipelineReproducesDataset(t *testing.T) {
	for _, name := range traces.Names() {
		ds, err := traces.ByName(name, 21)
		if err != nil {
			t.Fatal(err)
		}
		aggs := collectDataset(t, ds)
		rv := resolverFor(ds)
		// The EU ISP resolver must not path-route (entry/exit geographic
		// distance), so drop the graph there and for the CDN.
		if name != "internet2" {
			rv.Topo = nil
		}
		flows, skipped, err := BuildFlows(aggs, rv, ds.DurationSec)
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 0 {
			t.Errorf("%s: %d aggregates skipped", name, skipped)
		}
		if len(flows) != len(ds.Flows) {
			t.Fatalf("%s: recovered %d flows, want %d", name, len(flows), len(ds.Flows))
		}
		// Match recovered flows to ground truth by sorted (distance,
		// demand) signature: build index from truth.
		type sig struct{ d, q float64 }
		truth := make([]sig, len(ds.Flows))
		got := make([]sig, len(flows))
		for i := range ds.Flows {
			truth[i] = sig{ds.Flows[i].Distance, ds.Flows[i].Demand}
			got[i] = sig{flows[i].Distance, flows[i].Demand}
		}
		less := func(s []sig) func(int, int) bool {
			return func(i, j int) bool {
				if s[i].d != s[j].d {
					return s[i].d < s[j].d
				}
				return s[i].q < s[j].q
			}
		}
		sort.Slice(truth, less(truth))
		sort.Slice(got, less(got))
		for i := range truth {
			if math.Abs(got[i].d-truth[i].d) > 1e-6*(1+truth[i].d) {
				t.Fatalf("%s: distance %d: got %v, want %v", name, i, got[i].d, truth[i].d)
			}
			if math.Abs(got[i].q-truth[i].q) > 0.01*truth[i].q+0.01 {
				t.Fatalf("%s: demand %d: got %v, want %v", name, i, got[i].q, truth[i].q)
			}
		}
	}
}

func TestPipelineRegionsMatch(t *testing.T) {
	ds, err := traces.CDN(31)
	if err != nil {
		t.Fatal(err)
	}
	aggs := collectDataset(t, ds)
	flows, _, err := BuildFlows(aggs, &Resolver{Geo: ds.Geo}, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	count := func(fs []econ.Flow) map[econ.Region]int {
		m := map[econ.Region]int{}
		for _, f := range fs {
			m[f.Region]++
		}
		return m
	}
	want := count(ds.Flows)
	got := count(flows)
	for r, n := range want {
		if got[r] != n {
			t.Errorf("region %v: got %d flows, want %d", r, got[r], n)
		}
	}
}

func TestPipelineFeedsMarket(t *testing.T) {
	// End-to-end: NetFlow streams → flows → fitted market → bundling
	// counterfactual.
	ds, err := traces.EUISP(41)
	if err != nil {
		t.Fatal(err)
	}
	aggs := collectDataset(t, ds)
	flows, _, err := BuildFlows(aggs, &Resolver{Geo: ds.Geo, DistanceRegions: true}, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMarket(flows, econ.CED{Alpha: 1.1}, cost.Linear{Theta: 0.2}, ds.P0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(bundling.Optimal{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(out.Capture > 0.5 && out.Capture <= 1+1e-9) {
		t.Errorf("pipeline market capture at b=3 = %v, want substantial", out.Capture)
	}
}

func TestResolverErrors(t *testing.T) {
	rv := &Resolver{}
	if _, _, err := rv.Resolve(netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2")); err == nil {
		t.Error("expected error for missing GeoIP DB")
	}
	db := &geoip.DB{}
	if err := db.Insert(geoip.Record{
		Prefix: netip.MustParsePrefix("10.0.0.0/24"), City: "A", Country: "X",
	}); err != nil {
		t.Fatal(err)
	}
	rv = &Resolver{Geo: db}
	if _, _, err := rv.Resolve(netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Error("expected error for unresolved source")
	}
	if _, _, err := rv.Resolve(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("1.1.1.1")); err == nil {
		t.Error("expected error for unresolved destination")
	}
}

func TestResolverRoutedDistance(t *testing.T) {
	// With a topology, distance must be the routed path sum, not the
	// great-circle distance.
	g := topology.Internet2()
	db := &geoip.DB{}
	if err := db.Insert(geoip.Record{
		Prefix: netip.MustParsePrefix("10.0.0.0/24"),
		City:   "Seattle", Country: "US", Lat: 47.61, Lon: -122.33,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(geoip.Record{
		Prefix: netip.MustParsePrefix("10.0.1.0/24"),
		City:   "New York", Country: "US", Lat: 40.71, Lon: -74.01,
	}); err != nil {
		t.Fatal(err)
	}
	routed := &Resolver{Geo: db, Topo: g}
	dRouted, region, err := routed.Resolve(
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if region != econ.RegionNational {
		t.Errorf("region = %v, want national", region)
	}
	geo := &Resolver{Geo: db}
	dGeo, _, err := geo.Resolve(
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !(dRouted > dGeo+100) {
		t.Errorf("routed %v should exceed great-circle %v", dRouted, dGeo)
	}
}

func TestBuildFlowsSkipsUnresolved(t *testing.T) {
	db := &geoip.DB{}
	if err := db.Insert(geoip.Record{
		Prefix: netip.MustParsePrefix("10.0.0.0/16"), City: "A", Country: "X", Lat: 1, Lon: 1,
	}); err != nil {
		t.Fatal(err)
	}
	aggs := []netflow.Aggregate{
		{Key: "good", SrcAddr: netip.MustParseAddr("10.0.0.1"),
			DstAddr: netip.MustParseAddr("10.0.1.1"), Octets: 1e9},
		{Key: "bad", SrcAddr: netip.MustParseAddr("192.168.0.1"),
			DstAddr: netip.MustParseAddr("10.0.1.1"), Octets: 1e9},
	}
	flows, skipped, err := BuildFlows(aggs, &Resolver{Geo: db}, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || skipped != 1 {
		t.Fatalf("flows=%d skipped=%d, want 1/1", len(flows), skipped)
	}
}

func TestBuildFlowsParallelMatchesSerial(t *testing.T) {
	ds, err := traces.EUISP(51)
	if err != nil {
		t.Fatal(err)
	}
	aggs := collectDataset(t, ds)
	rv := &Resolver{Geo: ds.Geo, DistanceRegions: true}
	serial, skippedSerial, err := BuildFlows(aggs, rv, ds.DurationSec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, skippedPar, err := BuildFlowsParallel(context.Background(), aggs, rv, ds.DurationSec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if skippedPar != skippedSerial {
			t.Errorf("workers=%d: skipped %d, serial skipped %d", workers, skippedPar, skippedSerial)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("workers=%d: parallel build diverges from serial", workers)
		}
	}
}

func TestBuildFlowsParallelCancellation(t *testing.T) {
	ds, err := traces.EUISP(52)
	if err != nil {
		t.Fatal(err)
	}
	aggs := collectDataset(t, ds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BuildFlowsParallel(ctx, aggs, &Resolver{Geo: ds.Geo}, ds.DurationSec, 4); err == nil {
		t.Error("expected error from cancelled context")
	}
}

func TestBuildFlowsErrors(t *testing.T) {
	rv := &Resolver{Geo: &geoip.DB{}}
	if _, _, err := BuildFlows(nil, rv, 3600); err == nil {
		t.Error("expected error for no aggregates")
	}
	aggs := []netflow.Aggregate{{Key: "x"}}
	if _, _, err := BuildFlows(aggs, rv, 0); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, _, err := BuildFlows(aggs, rv, 3600); err == nil {
		t.Error("expected error when nothing resolves")
	}
}

// hangingResolver implements ContextResolver by blocking until the
// caller's context is cancelled — the shape of a dead network-backed
// lookup. The plain Resolve path would block forever.
type hangingResolver struct{}

func (hangingResolver) Resolve(src, dst netip.Addr) (float64, econ.Region, error) {
	select {}
}

func (hangingResolver) ResolveContext(ctx context.Context, src, dst netip.Addr) (float64, econ.Region, error) {
	<-ctx.Done()
	return 0, 0, ctx.Err()
}

// TestBuildFlowsContextResolverCancellation: when the resolver
// implements ContextResolver, cancelling the build context must unwedge
// hung resolves and fail the build — not report the hung aggregates as
// skips and price a truncated flow set.
func TestBuildFlowsContextResolverCancellation(t *testing.T) {
	aggs := []netflow.Aggregate{
		{Key: "a", SrcAddr: netip.MustParseAddr("10.0.0.1"),
			DstAddr: netip.MustParseAddr("10.1.0.1"), Octets: 1e9},
		{Key: "b", SrcAddr: netip.MustParseAddr("10.16.0.1"),
			DstAddr: netip.MustParseAddr("10.1.0.2"), Octets: 1e9},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := BuildFlowsParallel(ctx, aggs, hangingResolver{}, 3600, 2)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled build with hung resolves reported success")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want the context deadline", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("build did not return after its context was cancelled")
	}
}
