// Package demandfit is the stage between raw trace collection and the
// economic model (§4.1): it resolves NetFlow aggregates back to located
// endpoint pairs (GeoIP for addresses, topology for routed distances),
// applies the dataset-specific distance heuristic, classifies regions,
// and produces the fitted-ready flow set that core.NewMarket consumes.
package demandfit

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"tieredpricing/internal/cost"
	"tieredpricing/internal/econ"
	"tieredpricing/internal/geoip"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/parallel"
	"tieredpricing/internal/topology"
)

// EndpointResolver maps a (src, dst) address pair to flow distance and
// region. Resolver is the in-memory implementation; the faultinject
// package wraps any EndpointResolver to rehearse resolver outages.
type EndpointResolver interface {
	Resolve(src, dst netip.Addr) (float64, econ.Region, error)
}

// ContextResolver is an EndpointResolver whose lookups can block (a
// network-backed or fault-injected resolver). ResolveContext must return
// promptly once ctx is done; BuildFlows prefers it over Resolve when the
// resolver implements it, which is what keeps a bounded shutdown drain
// bounded even when a resolve is wedged.
type ContextResolver interface {
	ResolveContext(ctx context.Context, src, dst netip.Addr) (float64, econ.Region, error)
}

// Resolver turns record endpoints into flow distance and region using the
// paper's per-dataset heuristics.
type Resolver struct {
	// Geo resolves both source blocks and destination prefixes.
	Geo *geoip.DB
	// Topo, when set, computes routed (path-sum) distances between the
	// endpoint cities — the Internet2 heuristic. When nil, distance is
	// the great-circle distance between the resolved coordinates (the EU
	// ISP and CDN heuristics).
	Topo *topology.Graph
	// DistanceRegions, when true, classifies regions from distance
	// thresholds (metro < 10 miles, national < 100) as the paper does for
	// the EU ISP, instead of from city/country identity.
	DistanceRegions bool
}

// Resolve maps a (src, dst) address pair to flow distance and region.
func (rv *Resolver) Resolve(src, dst netip.Addr) (float64, econ.Region, error) {
	if rv.Geo == nil {
		return 0, 0, errors.New("demandfit: resolver needs a GeoIP database")
	}
	srcRec, ok := rv.Geo.Lookup(src)
	if !ok {
		return 0, 0, fmt.Errorf("demandfit: source %v not in GeoIP database", src)
	}
	dstRec, ok := rv.Geo.Lookup(dst)
	if !ok {
		return 0, 0, fmt.Errorf("demandfit: destination %v not in GeoIP database", dst)
	}

	var distance float64
	if rv.Topo != nil && srcRec.City != dstRec.City {
		path, err := rv.Topo.ShortestPath(srcRec.City, dstRec.City)
		if err != nil {
			return 0, 0, fmt.Errorf("demandfit: routing %s->%s: %w", srcRec.City, dstRec.City, err)
		}
		distance = path.Miles
	} else {
		distance = topology.HaversineMiles(srcRec.Lat, srcRec.Lon, dstRec.Lat, dstRec.Lon)
	}

	var region econ.Region
	switch {
	case rv.DistanceRegions:
		region = cost.ClassifyByDistance(distance, 10, 100)
	case srcRec.City == dstRec.City:
		region = econ.RegionMetro
	case srcRec.Country == dstRec.Country:
		region = econ.RegionNational
	default:
		region = econ.RegionInternational
	}
	return distance, region, nil
}

// BuildFlows converts collected aggregates into fitted-ready flows:
// demand in Mbps over the capture window, resolved distance, and region.
// Aggregates that fail to resolve are reported in skipped rather than
// aborting the build (real captures always contain unroutable junk).
func BuildFlows(aggs []netflow.Aggregate, rv EndpointResolver, durationSec float64) (flows []econ.Flow, skipped int, err error) {
	return BuildFlowsParallel(context.Background(), aggs, rv, durationSec, 1)
}

// BuildFlowsParallel is BuildFlows with the per-aggregate resolution
// (GeoIP lookups and topology shortest paths, the expensive part of a
// re-fit) fanned out across workers goroutines. Each aggregate resolves
// independently and results are merged in index order, so the output is
// byte-identical to the serial build at any worker count — the property
// the online repricer's consistency test relies on.
func BuildFlowsParallel(ctx context.Context, aggs []netflow.Aggregate, rv EndpointResolver, durationSec float64, workers int) (flows []econ.Flow, skipped int, err error) {
	return BuildFlowsParallelInto(ctx, nil, aggs, rv, durationSec, workers)
}

// BuildFlowsParallelInto is BuildFlowsParallel resolving into dst's
// capacity, so a caller that re-fits the same window repeatedly (the
// online repricer's ticks) can reuse one flow buffer instead of
// reallocating it per tick. The returned slice aliases dst when dst has
// capacity for len(aggs) flows; pass nil for the allocate-per-call
// behavior. Output is byte-identical to the serial build either way.
func BuildFlowsParallelInto(ctx context.Context, dst []econ.Flow, aggs []netflow.Aggregate, rv EndpointResolver, durationSec float64, workers int) (flows []econ.Flow, skipped int, err error) {
	if durationSec <= 0 {
		return nil, 0, errors.New("demandfit: capture duration must be positive")
	}
	if len(aggs) == 0 {
		return nil, 0, errors.New("demandfit: no aggregates")
	}
	if cap(dst) < len(aggs) {
		dst = make([]econ.Flow, len(aggs))
	}
	dst = dst[:len(aggs)]
	resolve := func(_ context.Context, src, dstAddr netip.Addr) (float64, econ.Region, error) {
		return rv.Resolve(src, dstAddr)
	}
	if cr, ok := rv.(ContextResolver); ok {
		resolve = cr.ResolveContext
	}
	// A failed resolution is a skip, not an error, so the task function
	// never fails except on cancellation. An empty ID marks a skip: the
	// collector never emits an aggregate with an empty key (unkeyed
	// records are dropped at ingest).
	resolved, err := parallel.MapInto(ctx, dst, workers,
		func(ctx context.Context, i int) (econ.Flow, error) {
			a := aggs[i]
			distance, region, rerr := resolve(ctx, a.SrcAddr, a.DstAddr)
			if rerr != nil {
				// Cancellation is a build failure, not a skip: treating it
				// as a skip would silently price a truncated flow set.
				if cerr := ctx.Err(); cerr != nil {
					return econ.Flow{}, cerr
				}
				return econ.Flow{}, nil // zero ID marks the skip
			}
			demand := netflow.DemandMbps(a.Octets, durationSec)
			if demand <= 0 {
				return econ.Flow{}, nil
			}
			return econ.Flow{
				ID:       a.Key,
				Demand:   demand,
				Distance: distance,
				Region:   region,
			}, nil
		})
	if err != nil {
		return nil, 0, err
	}
	// Compact skips in place: the write index never passes the read index.
	n := 0
	for i := range resolved {
		if resolved[i].ID == "" {
			skipped++
			continue
		}
		resolved[n] = resolved[i]
		n++
	}
	flows = resolved[:n]
	if len(flows) == 0 {
		return nil, skipped, errors.New("demandfit: no aggregate resolved to a usable flow")
	}
	return flows, skipped, nil
}
