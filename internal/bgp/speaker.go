package bgp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sort"
	"sync"
)

// Speaker is the provider side of §5.1 at service scale: it listens for
// customer sessions, replays its current tier-tagged table to each new
// customer, and pushes incremental UPDATEs to every connected customer
// when the operator re-prices (re-bundles) destinations — the paper's
// "simply apply a profit-weighted bundling strategy to re-factor their
// pricing ... possibly without even making many changes to the network
// configuration".
type Speaker struct {
	local   Open
	nextHop netip.Addr
	ln      net.Listener

	mu       sync.Mutex
	table    map[netip.Prefix]TierCommunity
	sessions map[*Session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewSpeaker starts a provider speaker listening on addr
// (e.g. "127.0.0.1:0").
func NewSpeaker(addr string, local Open, nextHop netip.Addr) (*Speaker, error) {
	if !nextHop.Is4() {
		return nil, errors.New("bgp: speaker next hop must be IPv4")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bgp: listen: %w", err)
	}
	s := &Speaker{
		local:    local,
		nextHop:  nextHop,
		ln:       ln,
		table:    map[netip.Prefix]TierCommunity{},
		sessions: map[*Session]struct{}{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address customers dial.
func (s *Speaker) Addr() string { return s.ln.Addr().String() }

// Sessions returns the number of connected customers.
func (s *Speaker) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Reprice installs a new tier table: prefixes absent from the new table
// are withdrawn, new or re-tiered prefixes are announced, and the
// resulting UPDATE batch is pushed to every connected customer. tierOf
// maps each prefix to an index into prices.
func (s *Speaker) Reprice(prefixes []netip.Prefix, tierOf func(netip.Prefix) int, prices []float64) error {
	next := make(map[netip.Prefix]TierCommunity, len(prefixes))
	for _, p := range prefixes {
		if !p.IsValid() || !p.Addr().Is4() {
			return fmt.Errorf("bgp: invalid prefix %v", p)
		}
		t := tierOf(p)
		if t < 0 || t >= len(prices) {
			return fmt.Errorf("bgp: prefix %v mapped to tier %d outside price list", p, t)
		}
		next[p.Masked()] = TierCommunity{Tier: uint16(t), PriceMilli: uint32(prices[t]*1000 + 0.5)}
	}

	s.mu.Lock()
	updates := diffTables(s.table, next, s.nextHop, []uint16{s.local.AS})
	s.table = next
	targets := make([]*Session, 0, len(s.sessions))
	for sess := range s.sessions {
		targets = append(targets, sess)
	}
	s.mu.Unlock()

	var firstErr error
	for _, sess := range targets {
		if err := sendAll(sess, updates); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close stops accepting and tears down all sessions.
func (s *Speaker) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range sessions {
		sess.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Speaker) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// serve establishes one customer session, replays the full table, then
// keeps the session registered (draining inbound keepalives) until the
// customer hangs up.
func (s *Speaker) serve(conn net.Conn) {
	sess, err := Establish(conn, s.local)
	if err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sess.Close()
		return
	}
	snapshot := diffTables(nil, s.table, s.nextHop, []uint16{s.local.AS})
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()

	if err := sendAll(sess, snapshot); err != nil {
		s.drop(sess)
		return
	}
	for {
		if _, err := sess.Recv(); err != nil {
			if err != io.EOF {
				_ = err // session error; drop either way
			}
			s.drop(sess)
			return
		}
	}
}

func (s *Speaker) drop(sess *Session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	sess.Close()
}

// diffTables computes the UPDATE batch that transforms table old into
// table next: withdrawals for removed prefixes, tier-grouped
// announcements for added or re-tagged prefixes, each carrying the
// speaker's AS path. Passing old = nil yields a full-table replay.
// Announcements are chunked to fit the message size limit.
func diffTables(old, next map[netip.Prefix]TierCommunity, nextHop netip.Addr, asPath []uint16) []Update {
	var withdrawn []netip.Prefix
	for p := range old {
		if _, ok := next[p]; !ok {
			withdrawn = append(withdrawn, p)
		}
	}
	sort.Slice(withdrawn, func(i, j int) bool {
		return withdrawn[i].String() < withdrawn[j].String()
	})

	byTag := map[TierCommunity][]netip.Prefix{}
	for p, tag := range next {
		if oldTag, ok := old[p]; ok && oldTag == tag {
			continue // unchanged
		}
		byTag[tag] = append(byTag[tag], p)
	}
	tags := make([]TierCommunity, 0, len(byTag))
	for tag := range byTag {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Tier != tags[j].Tier {
			return tags[i].Tier < tags[j].Tier
		}
		return tags[i].PriceMilli < tags[j].PriceMilli
	})

	var out []Update
	for len(withdrawn) > 0 {
		n := len(withdrawn)
		if n > maxPrefixesPerUpdate {
			n = maxPrefixesPerUpdate
		}
		out = append(out, Update{Withdrawn: withdrawn[:n]})
		withdrawn = withdrawn[n:]
	}
	for _, tag := range tags {
		prefixes := byTag[tag]
		sort.Slice(prefixes, func(i, j int) bool {
			return prefixes[i].String() < prefixes[j].String()
		})
		for len(prefixes) > 0 {
			n := len(prefixes)
			if n > maxPrefixesPerUpdate {
				n = maxPrefixesPerUpdate
			}
			t := tag
			out = append(out, Update{
				NextHop:   nextHop,
				ASPath:    asPath,
				Tier:      &t,
				Announced: prefixes[:n],
			})
			prefixes = prefixes[n:]
		}
	}
	return out
}

// maxPrefixesPerUpdate keeps every UPDATE safely inside MaxMsgLen
// (a /32 prefix costs 5 NLRI bytes; 500·5 + attributes ≪ 4096).
const maxPrefixesPerUpdate = 500

// sendAll transmits a batch of updates on one session.
func sendAll(sess *Session, updates []Update) error {
	for _, u := range updates {
		if err := sess.SendUpdate(u); err != nil {
			return err
		}
	}
	return nil
}
