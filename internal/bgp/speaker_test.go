package bgp

import (
	"io"
	"net"
	"net/netip"
	"testing"
	"time"
)

// customer connects to a speaker and applies updates into a RIB until
// told to stop or the session ends.
type customer struct {
	sess *Session
	rib  *RIB
	done chan error
}

func dialCustomer(t *testing.T, addr string, as uint16) *customer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Establish(conn, Open{AS: as, HoldTime: 180, ID: uint32(as)})
	if err != nil {
		t.Fatal(err)
	}
	c := &customer{sess: sess, rib: NewRIB(), done: make(chan error, 1)}
	go func() {
		for {
			msg, err := sess.Recv()
			if err == io.EOF {
				c.done <- nil
				return
			}
			if err != nil {
				c.done <- err
				return
			}
			if u, ok := msg.(*Update); ok {
				if err := c.rib.Apply(u); err != nil {
					c.done <- err
					return
				}
			}
		}
	}()
	return c
}

// waitRIB polls until the customer's RIB holds n routes.
func (c *customer) waitRIB(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.rib.Len() != n {
		if time.Now().After(deadline) {
			t.Fatalf("RIB has %d routes, want %d", c.rib.Len(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func prefixN(t *testing.T, i int) netip.Prefix {
	t.Helper()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
}

func TestSpeakerReplaysTableToNewCustomers(t *testing.T) {
	s, err := NewSpeaker("127.0.0.1:0", Open{AS: 64512, HoldTime: 180, ID: 1},
		netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var prefixes []netip.Prefix
	for i := 0; i < 1200; i++ { // forces update chunking
		prefixes = append(prefixes, prefixN(t, i))
	}
	tierOf := func(p netip.Prefix) int { return int(p.Addr().As4()[2]) % 3 }
	if err := s.Reprice(prefixes, tierOf, []float64{10, 15, 22}); err != nil {
		t.Fatal(err)
	}

	// A customer connecting AFTER the reprice gets the full table.
	c := dialCustomer(t, s.Addr(), 64513)
	c.waitRIB(t, 1200)
	r, ok := c.rib.Lookup(netip.MustParseAddr("10.0.1.5"))
	if !ok || r.Tier == nil || int(r.Tier.Tier) != 1 {
		t.Fatalf("route = %+v, want tier 1", r)
	}
	if r.Tier.PriceMilli != 15000 {
		t.Fatalf("price = %d, want 15000", r.Tier.PriceMilli)
	}
	c.sess.Close()
}

func TestSpeakerPushesRepriceDiff(t *testing.T) {
	s, err := NewSpeaker("127.0.0.1:0", Open{AS: 64512, HoldTime: 180, ID: 1},
		netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p0, p1, p2 := prefixN(t, 0), prefixN(t, 1), prefixN(t, 2)
	if err := s.Reprice([]netip.Prefix{p0, p1}, func(netip.Prefix) int { return 0 },
		[]float64{10}); err != nil {
		t.Fatal(err)
	}
	c := dialCustomer(t, s.Addr(), 64513)
	c.waitRIB(t, 2)

	// Re-bundle: p0 moves to tier 1, p1 is withdrawn, p2 appears.
	if err := s.Reprice([]netip.Prefix{p0, p2},
		func(p netip.Prefix) int {
			if p == p0 {
				return 1
			}
			return 0
		},
		[]float64{9, 30}); err != nil {
		t.Fatal(err)
	}
	c.waitRIB(t, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r0, ok0 := c.rib.Lookup(p0.Addr())
		_, ok1 := c.rib.Lookup(p1.Addr().Next())
		r2, ok2 := c.rib.Lookup(p2.Addr().Next())
		if ok0 && !ok1 && ok2 &&
			r0.Tier != nil && r0.Tier.Tier == 1 && r0.Tier.PriceMilli == 30000 &&
			r2.Tier != nil && r2.Tier.Tier == 0 && r2.Tier.PriceMilli == 9000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("diff not applied: p0=%v(%v) p1ok=%v p2=%v(%v)", r0, ok0, ok1, r2, ok2)
		}
		time.Sleep(time.Millisecond)
	}
	c.sess.Close()
}

func TestSpeakerMultipleCustomers(t *testing.T) {
	s, err := NewSpeaker("127.0.0.1:0", Open{AS: 64512, HoldTime: 180, ID: 1},
		netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	customers := make([]*customer, 3)
	for i := range customers {
		customers[i] = dialCustomer(t, s.Addr(), uint16(64600+i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %d, want 3", s.Sessions())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Reprice([]netip.Prefix{prefixN(t, 7)},
		func(netip.Prefix) int { return 0 }, []float64{12.5}); err != nil {
		t.Fatal(err)
	}
	for _, c := range customers {
		c.waitRIB(t, 1)
		r, ok := c.rib.Lookup(prefixN(t, 7).Addr().Next())
		if !ok || r.Tier == nil || r.Tier.PriceMilli != 12500 {
			t.Fatalf("customer route = %+v", r)
		}
		c.sess.Close()
	}
}

func TestSpeakerRepriceValidation(t *testing.T) {
	s, err := NewSpeaker("127.0.0.1:0", Open{AS: 64512}, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reprice([]netip.Prefix{prefixN(t, 0)},
		func(netip.Prefix) int { return 3 }, []float64{1}); err == nil {
		t.Error("expected error for out-of-range tier")
	}
	if err := s.Reprice([]netip.Prefix{{}},
		func(netip.Prefix) int { return 0 }, []float64{1}); err == nil {
		t.Error("expected error for invalid prefix")
	}
}

func TestSpeakerCloseIdempotentAndRejectsIPv6Hop(t *testing.T) {
	if _, err := NewSpeaker("127.0.0.1:0", Open{}, netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("expected error for IPv6 next hop")
	}
	s, err := NewSpeaker("127.0.0.1:0", Open{AS: 1}, netip.MustParseAddr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiffTablesMinimality(t *testing.T) {
	hop := netip.MustParseAddr("192.0.2.1")
	a := netip.MustParsePrefix("10.0.0.0/24")
	b := netip.MustParsePrefix("10.0.1.0/24")
	old := map[netip.Prefix]TierCommunity{
		a: {Tier: 0, PriceMilli: 1000},
		b: {Tier: 1, PriceMilli: 2000},
	}
	// b unchanged, a re-tiered: the diff must not mention b.
	next := map[netip.Prefix]TierCommunity{
		a: {Tier: 1, PriceMilli: 2000},
		b: {Tier: 1, PriceMilli: 2000},
	}
	updates := diffTables(old, next, hop, []uint16{64512})
	if len(updates) != 1 {
		t.Fatalf("updates = %+v, want exactly one", updates)
	}
	if len(updates[0].Announced) != 1 || updates[0].Announced[0] != a {
		t.Fatalf("diff should re-announce only a: %+v", updates[0])
	}
	// Identical tables produce no updates.
	if got := diffTables(next, next, hop, []uint16{64512}); len(got) != 0 {
		t.Fatalf("no-op diff = %+v", got)
	}
}
