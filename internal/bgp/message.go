// Package bgp implements the tier-association mechanism of §5.1: a
// BGP-flavored wire protocol over which an upstream ISP announces routes
// tagged with extended communities that carry the pricing tier of each
// destination ("ISPs can use BGP extended communities to perform this
// tagging. Because the communities propagate with the route, the customer
// can establish routing policies ... based on these tags").
//
// The implementation is a faithful subset of RFC 4271 framing — 16-byte
// marker, length, type; OPEN/UPDATE/KEEPALIVE/NOTIFICATION messages;
// variable-length NLRI; path attributes including EXTENDED_COMMUNITIES —
// sufficient to run real sessions over TCP and to drive the accounting
// pipeline of §5.2. It is not a complete BGP speaker (no route selection
// among multiple peers, no capabilities negotiation).
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Framing constants.
const (
	MarkerLen   = 16
	HeaderLen   = MarkerLen + 3
	MaxMsgLen   = 4096
	ProtoVer    = 4
	AttrFlags   = 0xC0 // optional transitive
	attrExtCom  = 16   // EXTENDED_COMMUNITIES attribute type
	attrASPath  = 2
	attrNextHop = 3
	// asPathSequence is the AS_PATH segment type for an ordered path.
	asPathSequence = 2
)

// TierCommunity is the extended community that tags a route with its
// pricing tier: a transitive opaque extended community (type 0x43) with
// an application-chosen subtype, carrying the tier index and the tier's
// unit price in milli-dollars per Mbps.
type TierCommunity struct {
	// Tier is the pricing-tier index (0 is the cheapest tier).
	Tier uint16
	// PriceMilli is the tier's price in 1/1000 $/Mbps/month.
	PriceMilli uint32
}

// Extended-community type octets for tier tags.
const (
	tierComType    = 0x43 // transitive opaque
	tierComSubtype = 0x54 // 'T'
)

// encode packs the community into its 8-byte wire form.
func (tc TierCommunity) encode() [8]byte {
	var b [8]byte
	b[0] = tierComType
	b[1] = tierComSubtype
	binary.BigEndian.PutUint16(b[2:4], tc.Tier)
	binary.BigEndian.PutUint32(b[4:8], tc.PriceMilli)
	return b
}

// parseTierCommunity unpacks a tier tag, reporting ok=false for foreign
// communities.
func parseTierCommunity(b [8]byte) (TierCommunity, bool) {
	if b[0] != tierComType || b[1] != tierComSubtype {
		return TierCommunity{}, false
	}
	return TierCommunity{
		Tier:       binary.BigEndian.Uint16(b[2:4]),
		PriceMilli: binary.BigEndian.Uint32(b[4:8]),
	}, true
}

// Open is an OPEN message.
type Open struct {
	AS       uint16
	HoldTime uint16
	ID       uint32 // BGP identifier
}

// Update is an UPDATE message carrying tier-tagged route announcements
// and withdrawals. All announced prefixes share the update's attributes,
// as in real BGP.
type Update struct {
	Withdrawn []netip.Prefix
	// ASPath is the ordered AS_PATH (nearest AS first); empty means no
	// AS_PATH attribute. Receivers use it for loop prevention.
	ASPath    []uint16
	NextHop   netip.Addr     // unset means no NEXT_HOP attribute
	Tier      *TierCommunity // nil means untagged
	Announced []netip.Prefix
}

// Notification reports a protocol error before close.
type Notification struct {
	Code    uint8
	Subcode uint8
}

// marker is the all-ones RFC 4271 header marker.
var marker = func() [MarkerLen]byte {
	var m [MarkerLen]byte
	for i := range m {
		m[i] = 0xFF
	}
	return m
}()

// appendHeader writes the 19-byte header for a body of the given length.
func appendHeader(b []byte, msgType uint8, bodyLen int) ([]byte, error) {
	total := HeaderLen + bodyLen
	if total > MaxMsgLen {
		return nil, fmt.Errorf("bgp: message length %d exceeds %d", total, MaxMsgLen)
	}
	b = append(b, marker[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = append(b, msgType)
	return b, nil
}

// EncodeOpen serializes an OPEN message.
func EncodeOpen(o Open) ([]byte, error) {
	body := make([]byte, 0, 10)
	body = append(body, ProtoVer)
	body = binary.BigEndian.AppendUint16(body, o.AS)
	body = binary.BigEndian.AppendUint16(body, o.HoldTime)
	body = binary.BigEndian.AppendUint32(body, o.ID)
	body = append(body, 0) // no optional parameters
	out, err := appendHeader(nil, MsgOpen, len(body))
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

// EncodeKeepalive serializes a KEEPALIVE message.
func EncodeKeepalive() ([]byte, error) {
	return appendHeader(nil, MsgKeepalive, 0)
}

// EncodeNotification serializes a NOTIFICATION message.
func EncodeNotification(n Notification) ([]byte, error) {
	out, err := appendHeader(nil, MsgNotification, 2)
	if err != nil {
		return nil, err
	}
	return append(out, n.Code, n.Subcode), nil
}

// appendPrefix writes a prefix in BGP NLRI form (length octet + minimal
// address octets).
func appendPrefix(b []byte, p netip.Prefix) ([]byte, error) {
	if !p.IsValid() || !p.Addr().Is4() {
		return nil, fmt.Errorf("bgp: invalid IPv4 prefix %v", p)
	}
	bits := p.Bits()
	b = append(b, byte(bits))
	addr := p.Masked().Addr().As4()
	b = append(b, addr[:(bits+7)/8]...)
	return b, nil
}

// parsePrefix reads one NLRI prefix, returning it and the bytes consumed.
func parsePrefix(b []byte) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, errors.New("bgp: truncated NLRI")
	}
	bits := int(b[0])
	if bits > 32 {
		return netip.Prefix{}, 0, fmt.Errorf("bgp: NLRI length %d > 32", bits)
	}
	n := (bits + 7) / 8
	if len(b) < 1+n {
		return netip.Prefix{}, 0, errors.New("bgp: truncated NLRI body")
	}
	var addr [4]byte
	copy(addr[:], b[1:1+n])
	return netip.PrefixFrom(netip.AddrFrom4(addr), bits), 1 + n, nil
}

// EncodeUpdate serializes an UPDATE message.
func EncodeUpdate(u Update) ([]byte, error) {
	var withdrawn []byte
	var err error
	for _, p := range u.Withdrawn {
		if withdrawn, err = appendPrefix(withdrawn, p); err != nil {
			return nil, err
		}
	}

	var attrs []byte
	if len(u.ASPath) > 0 {
		if len(u.ASPath) > 255 {
			return nil, fmt.Errorf("bgp: AS path too long (%d)", len(u.ASPath))
		}
		seg := make([]byte, 0, 2+2*len(u.ASPath))
		seg = append(seg, asPathSequence, byte(len(u.ASPath)))
		for _, as := range u.ASPath {
			seg = binary.BigEndian.AppendUint16(seg, as)
		}
		attrs = append(attrs, AttrFlags, attrASPath, byte(len(seg)))
		attrs = append(attrs, seg...)
	}
	if u.NextHop.IsValid() {
		if !u.NextHop.Is4() {
			return nil, fmt.Errorf("bgp: next hop %v is not IPv4", u.NextHop)
		}
		hop := u.NextHop.As4()
		attrs = append(attrs, AttrFlags, attrNextHop, 4)
		attrs = append(attrs, hop[:]...)
	}
	if u.Tier != nil {
		com := u.Tier.encode()
		attrs = append(attrs, AttrFlags, attrExtCom, 8)
		attrs = append(attrs, com[:]...)
	}

	var nlri []byte
	for _, p := range u.Announced {
		if nlri, err = appendPrefix(nlri, p); err != nil {
			return nil, err
		}
	}

	body := make([]byte, 0, 4+len(withdrawn)+len(attrs)+len(nlri))
	body = binary.BigEndian.AppendUint16(body, uint16(len(withdrawn)))
	body = append(body, withdrawn...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	body = append(body, nlri...)

	out, err := appendHeader(nil, MsgUpdate, len(body))
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

// DecodeBody parses a message body given its type (the header is consumed
// by the session reader). It returns *Open, *Update, *Notification, or
// nil for KEEPALIVE.
func DecodeBody(msgType uint8, body []byte) (interface{}, error) {
	switch msgType {
	case MsgOpen:
		if len(body) < 10 {
			return nil, errors.New("bgp: short OPEN")
		}
		if body[0] != ProtoVer {
			return nil, fmt.Errorf("bgp: unsupported version %d", body[0])
		}
		return &Open{
			AS:       binary.BigEndian.Uint16(body[1:3]),
			HoldTime: binary.BigEndian.Uint16(body[3:5]),
			ID:       binary.BigEndian.Uint32(body[5:9]),
		}, nil
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, errors.New("bgp: KEEPALIVE with body")
		}
		return nil, nil
	case MsgNotification:
		if len(body) < 2 {
			return nil, errors.New("bgp: short NOTIFICATION")
		}
		return &Notification{Code: body[0], Subcode: body[1]}, nil
	case MsgUpdate:
		return decodeUpdate(body)
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", msgType)
	}
}

func decodeUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, errors.New("bgp: short UPDATE")
	}
	u := &Update{}
	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	rest := body[2:]
	if len(rest) < wLen {
		return nil, errors.New("bgp: truncated withdrawn routes")
	}
	w := rest[:wLen]
	for len(w) > 0 {
		p, n, err := parsePrefix(w)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		w = w[n:]
	}
	rest = rest[wLen:]
	if len(rest) < 2 {
		return nil, errors.New("bgp: missing attribute length")
	}
	aLen := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if len(rest) < aLen {
		return nil, errors.New("bgp: truncated attributes")
	}
	attrs := rest[:aLen]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, errors.New("bgp: truncated attribute header")
		}
		typ := attrs[1]
		alen := int(attrs[2])
		if len(attrs) < 3+alen {
			return nil, errors.New("bgp: truncated attribute value")
		}
		val := attrs[3 : 3+alen]
		switch typ {
		case attrASPath:
			if alen < 2 || int(val[1])*2+2 != alen || val[0] != asPathSequence {
				return nil, errors.New("bgp: malformed AS_PATH")
			}
			n := int(val[1])
			u.ASPath = make([]uint16, n)
			for k := 0; k < n; k++ {
				u.ASPath[k] = binary.BigEndian.Uint16(val[2+2*k : 4+2*k])
			}
		case attrNextHop:
			if alen != 4 {
				return nil, errors.New("bgp: bad NEXT_HOP length")
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case attrExtCom:
			if alen%8 != 0 {
				return nil, errors.New("bgp: bad extended-community length")
			}
			for off := 0; off < alen; off += 8 {
				if tc, ok := parseTierCommunity([8]byte(val[off : off+8])); ok {
					c := tc
					u.Tier = &c
				}
			}
		default:
			// Unknown optional attributes are tolerated, as in BGP.
		}
		attrs = attrs[3+alen:]
	}
	nlri := rest[aLen:]
	for len(nlri) > 0 {
		p, n, err := parsePrefix(nlri)
		if err != nil {
			return nil, err
		}
		u.Announced = append(u.Announced, p)
		nlri = nlri[n:]
	}
	return u, nil
}
