package bgp

import (
	"net/netip"
	"testing"
)

func TestASPathRoundTrip(t *testing.T) {
	u := Update{
		ASPath:    []uint16{64512, 3356, 1299},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	msg, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBody(MsgUpdate, msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Update)
	if len(g.ASPath) != 3 || g.ASPath[0] != 64512 || g.ASPath[2] != 1299 {
		t.Fatalf("AS path = %v", g.ASPath)
	}
}

func TestASPathTooLong(t *testing.T) {
	u := Update{
		ASPath:    make([]uint16, 256),
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}
	if _, err := EncodeUpdate(u); err == nil {
		t.Error("expected error for oversized AS path")
	}
}

func TestRIBLoopPrevention(t *testing.T) {
	rib := NewRIB()
	rib.LocalAS = 64513
	// A clean route installs.
	if err := rib.Apply(&Update{
		ASPath:    []uint16{64512},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}); err != nil {
		t.Fatal(err)
	}
	if rib.Len() != 1 {
		t.Fatalf("len = %d", rib.Len())
	}
	// A looped route (our AS in the path) is dropped and counted.
	if err := rib.Apply(&Update{
		ASPath:    []uint16{64512, 64513},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	if rib.Len() != 1 {
		t.Fatalf("looped route installed: len = %d", rib.Len())
	}
	if rib.Looped() != 1 {
		t.Fatalf("looped = %d, want 1", rib.Looped())
	}
	// Withdrawals still apply even when the announce part loops.
	if err := rib.Apply(&Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		ASPath:    []uint16{64513},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.9.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	if rib.Len() != 0 {
		t.Fatalf("withdrawal ignored: len = %d", rib.Len())
	}
}

func TestSpeakerStampsASPath(t *testing.T) {
	updates := diffTables(nil, map[netip.Prefix]TierCommunity{
		netip.MustParsePrefix("10.0.0.0/24"): {Tier: 0, PriceMilli: 1000},
	}, netip.MustParseAddr("192.0.2.1"), []uint16{64512})
	if len(updates) != 1 || len(updates[0].ASPath) != 1 || updates[0].ASPath[0] != 64512 {
		t.Fatalf("updates = %+v", updates)
	}
}
