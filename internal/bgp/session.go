package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Session is an established BGP session over a reliable transport. Both
// sides run the same code: exchange OPENs, confirm with KEEPALIVEs, then
// trade UPDATEs.
type Session struct {
	conn net.Conn
	// Local and Peer are the OPEN parameters of each side.
	Local Open
	Peer  Open
}

// defaultTimeout bounds each handshake I/O operation.
const defaultTimeout = 5 * time.Second

// Establish performs the OPEN/KEEPALIVE handshake over conn and returns
// the session. Both endpoints call Establish concurrently (there is no
// client/server asymmetry in BGP session setup once TCP is connected).
func Establish(conn net.Conn, local Open) (*Session, error) {
	s := &Session{conn: conn, Local: local}
	msg, err := EncodeOpen(local)
	if err != nil {
		return nil, err
	}
	if err := s.writeDeadline(msg); err != nil {
		return nil, fmt.Errorf("bgp: sending OPEN: %w", err)
	}
	typ, body, err := s.readMessage()
	if err != nil {
		return nil, fmt.Errorf("bgp: awaiting OPEN: %w", err)
	}
	if typ != MsgOpen {
		return nil, fmt.Errorf("bgp: expected OPEN, got type %d", typ)
	}
	parsed, err := DecodeBody(typ, body)
	if err != nil {
		return nil, err
	}
	s.Peer = *parsed.(*Open)

	ka, err := EncodeKeepalive()
	if err != nil {
		return nil, err
	}
	if err := s.writeDeadline(ka); err != nil {
		return nil, fmt.Errorf("bgp: sending KEEPALIVE: %w", err)
	}
	typ, body, err = s.readMessage()
	if err != nil {
		return nil, fmt.Errorf("bgp: awaiting KEEPALIVE: %w", err)
	}
	if typ != MsgKeepalive {
		return nil, fmt.Errorf("bgp: expected KEEPALIVE, got type %d", typ)
	}
	if _, err := DecodeBody(typ, body); err != nil {
		return nil, err
	}
	return s, nil
}

// SendUpdate transmits an UPDATE.
func (s *Session) SendUpdate(u Update) error {
	msg, err := EncodeUpdate(u)
	if err != nil {
		return err
	}
	return s.writeDeadline(msg)
}

// SendNotification transmits a NOTIFICATION (typically followed by
// Close).
func (s *Session) SendNotification(n Notification) error {
	msg, err := EncodeNotification(n)
	if err != nil {
		return err
	}
	return s.writeDeadline(msg)
}

// Recv reads the next message, returning *Update, *Notification, or nil
// for a KEEPALIVE. io.EOF signals an orderly close.
func (s *Session) Recv() (interface{}, error) {
	typ, body, err := s.readMessage()
	if err != nil {
		return nil, err
	}
	return DecodeBody(typ, body)
}

// Close tears the session down.
func (s *Session) Close() error { return s.conn.Close() }

func (s *Session) writeDeadline(b []byte) error {
	if err := s.conn.SetWriteDeadline(time.Now().Add(defaultTimeout)); err != nil {
		return err
	}
	_, err := s.conn.Write(b)
	return err
}

// readMessage reads one framed message and validates the marker.
func (s *Session) readMessage() (uint8, []byte, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(defaultTimeout)); err != nil {
		return 0, nil, err
	}
	head := make([]byte, HeaderLen)
	if _, err := io.ReadFull(s.conn, head); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	for i := 0; i < MarkerLen; i++ {
		if head[i] != 0xFF {
			return 0, nil, errors.New("bgp: bad marker")
		}
	}
	total := int(binary.BigEndian.Uint16(head[MarkerLen : MarkerLen+2]))
	if total < HeaderLen || total > MaxMsgLen {
		return 0, nil, fmt.Errorf("bgp: bad message length %d", total)
	}
	body := make([]byte, total-HeaderLen)
	if _, err := io.ReadFull(s.conn, body); err != nil {
		return 0, nil, err
	}
	return head[HeaderLen-1], body, nil
}
