package bgp

import (
	"net/netip"
	"testing"
)

// FuzzDecodeUpdate hardens the UPDATE parser: a malicious or corrupted
// peer message must produce an error, never a panic or over-read.
func FuzzDecodeUpdate(f *testing.F) {
	valid, err := EncodeUpdate(Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Tier:      &TierCommunity{Tier: 1, PriceMilli: 20000},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid[HeaderLen:])
	f.Add(valid[HeaderLen : len(valid)-2])
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		got, err := DecodeBody(MsgUpdate, body)
		if err != nil {
			return
		}
		u := got.(*Update)
		// Anything that decodes must re-encode (prefixes are masked on
		// the way in, so re-encoding is always well-formed).
		re, err := EncodeUpdate(*u)
		if err != nil {
			t.Fatalf("re-encode failed: %v (update %+v)", err, u)
		}
		got2, err := DecodeBody(MsgUpdate, re[HeaderLen:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		u2 := got2.(*Update)
		if len(u2.Announced) != len(u.Announced) || len(u2.Withdrawn) != len(u.Withdrawn) {
			t.Fatal("round trip changed prefix counts")
		}
	})
}

// FuzzDecodeOpen fuzzes the OPEN parser.
func FuzzDecodeOpen(f *testing.F) {
	valid, err := EncodeOpen(Open{AS: 64512, HoldTime: 180, ID: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid[HeaderLen:])
	f.Add([]byte{4})
	f.Fuzz(func(t *testing.T, body []byte) {
		got, err := DecodeBody(MsgOpen, body)
		if err != nil {
			return
		}
		o := got.(*Open)
		re, err := EncodeOpen(*o)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		got2, err := DecodeBody(MsgOpen, re[HeaderLen:])
		if err != nil || *got2.(*Open) != *o {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", got2, o, err)
		}
	})
}
