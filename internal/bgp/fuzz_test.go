package bgp

import (
	"net/netip"
	"testing"
)

// FuzzDecodeUpdate hardens the UPDATE parser: a malicious or corrupted
// peer message must produce an error, never a panic or over-read.
func FuzzDecodeUpdate(f *testing.F) {
	valid, err := EncodeUpdate(Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Tier:      &TierCommunity{Tier: 1, PriceMilli: 20000},
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid[HeaderLen:])
	f.Add(valid[HeaderLen : len(valid)-2])
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		got, err := DecodeBody(MsgUpdate, body)
		if err != nil {
			return
		}
		u := got.(*Update)
		// Anything that decodes must re-encode (prefixes are masked on
		// the way in, so re-encoding is always well-formed).
		re, err := EncodeUpdate(*u)
		if err != nil {
			t.Fatalf("re-encode failed: %v (update %+v)", err, u)
		}
		got2, err := DecodeBody(MsgUpdate, re[HeaderLen:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		u2 := got2.(*Update)
		if len(u2.Announced) != len(u.Announced) || len(u2.Withdrawn) != len(u.Withdrawn) {
			t.Fatal("round trip changed prefix counts")
		}
	})
}

// FuzzDecodeBody drives the dispatcher across every message type —
// including NOTIFICATION, KEEPALIVE, and unknown type codes — so no
// (type, body) combination arriving off the wire can panic the session
// reader. Values that decode must round-trip through their encoder.
func FuzzDecodeBody(f *testing.F) {
	ka, err := EncodeKeepalive()
	if err != nil {
		f.Fatal(err)
	}
	notif, err := EncodeNotification(Notification{Code: 6, Subcode: 2})
	if err != nil {
		f.Fatal(err)
	}
	open, err := EncodeOpen(Open{AS: 64512, HoldTime: 180, ID: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(MsgKeepalive), ka[HeaderLen:])
	f.Add(uint8(MsgKeepalive), []byte{1}) // KEEPALIVE must have no body
	f.Add(uint8(MsgNotification), notif[HeaderLen:])
	f.Add(uint8(MsgNotification), []byte{6}) // one byte short
	f.Add(uint8(MsgOpen), open[HeaderLen:])
	f.Add(uint8(MsgUpdate), []byte{0, 0, 0, 0})
	f.Add(uint8(0), []byte{})   // unknown type code
	f.Add(uint8(200), []byte{}) // unknown type code

	f.Fuzz(func(t *testing.T, msgType uint8, body []byte) {
		got, err := DecodeBody(msgType, body)
		if err != nil {
			return
		}
		switch msgType {
		case MsgKeepalive:
			if got != nil || len(body) != 0 {
				t.Fatalf("KEEPALIVE decoded to %v from %d-byte body", got, len(body))
			}
		case MsgNotification:
			n := got.(*Notification)
			re, err := EncodeNotification(*n)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			got2, err := DecodeBody(MsgNotification, re[HeaderLen:])
			if err != nil || *got2.(*Notification) != *n {
				t.Fatalf("round trip mismatch: %+v vs %+v (%v)", got2, n, err)
			}
		case MsgOpen, MsgUpdate:
			// Covered in depth by FuzzDecodeOpen / FuzzDecodeUpdate; here we
			// only require a decode that the dispatcher accepted to be typed.
			switch got.(type) {
			case *Open, *Update:
			default:
				t.Fatalf("type %d decoded to %T", msgType, got)
			}
		default:
			t.Fatalf("unknown message type %d decoded to %v", msgType, got)
		}
	})
}

// FuzzDecodeOpen fuzzes the OPEN parser.
func FuzzDecodeOpen(f *testing.F) {
	valid, err := EncodeOpen(Open{AS: 64512, HoldTime: 180, ID: 7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid[HeaderLen:])
	f.Add([]byte{4})
	f.Fuzz(func(t *testing.T, body []byte) {
		got, err := DecodeBody(MsgOpen, body)
		if err != nil {
			return
		}
		o := got.(*Open)
		re, err := EncodeOpen(*o)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		got2, err := DecodeBody(MsgOpen, re[HeaderLen:])
		if err != nil || *got2.(*Open) != *o {
			t.Fatalf("round trip mismatch: %+v vs %+v (%v)", got2, o, err)
		}
	})
}
