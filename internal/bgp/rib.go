package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Route is a RIB entry: a destination prefix with its next hop, the AS
// path it arrived with, and, when the upstream tagged it, the pricing
// tier it belongs to.
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
	// ASPath is the announcement's AS_PATH (nearest AS first).
	ASPath []uint16
	// Tier is the tag from the upstream's extended community; nil for
	// untagged routes.
	Tier *TierCommunity
}

// RIB is a routing information base with longest-prefix-match lookup —
// the structure the flow-based accounting pipeline of §5.2 consults to
// assign each flow to a pricing tier. Safe for concurrent use.
//
// Setting LocalAS to a non-zero value enables BGP loop prevention:
// announcements whose AS_PATH already contains LocalAS are dropped
// (counted in Looped) instead of installed.
type RIB struct {
	// LocalAS, when non-zero, rejects announcements containing it in
	// their AS_PATH. Set before the first Apply.
	LocalAS uint16

	mu     sync.RWMutex
	routes map[netip.Prefix]Route
	looped int
}

// NewRIB creates an empty RIB.
func NewRIB() *RIB {
	return &RIB{routes: make(map[netip.Prefix]Route)}
}

// Apply merges an UPDATE into the RIB: withdrawals first, then
// announcements, as RFC 4271 prescribes.
func (rib *RIB) Apply(u *Update) error {
	rib.mu.Lock()
	defer rib.mu.Unlock()
	for _, p := range u.Withdrawn {
		delete(rib.routes, p.Masked())
	}
	if rib.LocalAS != 0 && len(u.Announced) > 0 {
		for _, as := range u.ASPath {
			if as == rib.LocalAS {
				// Loop: our own AS already forwarded this route.
				rib.looped += len(u.Announced)
				return nil
			}
		}
	}
	for _, p := range u.Announced {
		if !p.IsValid() || !p.Addr().Is4() {
			return fmt.Errorf("bgp: invalid announced prefix %v", p)
		}
		r := Route{Prefix: p.Masked(), NextHop: u.NextHop, ASPath: append([]uint16(nil), u.ASPath...)}
		if u.Tier != nil {
			tc := *u.Tier
			r.Tier = &tc
		}
		rib.routes[p.Masked()] = r
	}
	return nil
}

// Lookup returns the longest-prefix-match route for ip.
func (rib *RIB) Lookup(ip netip.Addr) (Route, bool) {
	rib.mu.RLock()
	defer rib.mu.RUnlock()
	var best Route
	found := false
	for _, r := range rib.routes {
		if r.Prefix.Contains(ip) && (!found || r.Prefix.Bits() > best.Prefix.Bits()) {
			best = r
			found = true
		}
	}
	return best, found
}

// Looped returns how many announced prefixes were dropped by loop
// prevention.
func (rib *RIB) Looped() int {
	rib.mu.RLock()
	defer rib.mu.RUnlock()
	return rib.looped
}

// Len returns the number of routes.
func (rib *RIB) Len() int {
	rib.mu.RLock()
	defer rib.mu.RUnlock()
	return len(rib.routes)
}

// Routes returns all routes sorted by prefix string (for stable output).
func (rib *RIB) Routes() []Route {
	rib.mu.RLock()
	defer rib.mu.RUnlock()
	out := make([]Route, 0, len(rib.routes))
	for _, r := range rib.routes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Prefix.String() < out[j].Prefix.String()
	})
	return out
}

// AnnounceTiered builds the per-tier UPDATE batch an upstream sends a
// customer: prefixes grouped by tier, each group tagged with its tier
// community (§5.1). prices are in $/Mbps/month, converted to
// milli-dollars on the wire; tierOf maps each prefix to a tier index into
// prices.
func AnnounceTiered(prefixes []netip.Prefix, nextHop netip.Addr,
	tierOf func(netip.Prefix) int, prices []float64) ([]Update, error) {
	groups := make(map[int][]netip.Prefix)
	for _, p := range prefixes {
		t := tierOf(p)
		if t < 0 || t >= len(prices) {
			return nil, fmt.Errorf("bgp: prefix %v mapped to tier %d outside price list", p, t)
		}
		groups[t] = append(groups[t], p)
	}
	tiers := make([]int, 0, len(groups))
	for t := range groups {
		tiers = append(tiers, t)
	}
	sort.Ints(tiers)
	out := make([]Update, 0, len(tiers))
	for _, t := range tiers {
		out = append(out, Update{
			NextHop:   nextHop,
			Tier:      &TierCommunity{Tier: uint16(t), PriceMilli: uint32(prices[t]*1000 + 0.5)},
			Announced: groups[t],
		})
	}
	return out, nil
}
