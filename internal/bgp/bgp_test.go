package bgp

import (
	"io"
	"net"
	"net/netip"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	o := Open{AS: 64512, HoldTime: 180, ID: 0x0A000001}
	msg, err := EncodeOpen(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) != HeaderLen+10 {
		t.Fatalf("OPEN length = %d", len(msg))
	}
	got, err := DecodeBody(MsgOpen, msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if *got.(*Open) != o {
		t.Fatalf("round trip: %+v != %+v", got, o)
	}
}

func TestKeepaliveAndNotification(t *testing.T) {
	ka, err := EncodeKeepalive()
	if err != nil {
		t.Fatal(err)
	}
	if len(ka) != HeaderLen {
		t.Fatalf("KEEPALIVE length = %d", len(ka))
	}
	if v, err := DecodeBody(MsgKeepalive, nil); err != nil || v != nil {
		t.Fatalf("KEEPALIVE decode = (%v, %v)", v, err)
	}
	n := Notification{Code: 6, Subcode: 2}
	msg, err := EncodeNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBody(MsgNotification, msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if *got.(*Notification) != n {
		t.Fatalf("NOTIFICATION round trip: %+v", got)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Tier:      &TierCommunity{Tier: 2, PriceMilli: 17350},
		Announced: []netip.Prefix{
			netip.MustParsePrefix("10.1.0.0/16"),
			netip.MustParsePrefix("10.2.3.0/24"),
			netip.MustParsePrefix("0.0.0.0/0"),
		},
	}
	msg, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBody(MsgUpdate, msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Update)
	if len(g.Withdrawn) != 1 || g.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", g.Withdrawn)
	}
	if g.NextHop != u.NextHop {
		t.Errorf("next hop = %v", g.NextHop)
	}
	if g.Tier == nil || *g.Tier != *u.Tier {
		t.Errorf("tier = %+v", g.Tier)
	}
	if len(g.Announced) != 3 {
		t.Fatalf("announced = %v", g.Announced)
	}
	for i := range u.Announced {
		if g.Announced[i] != u.Announced[i] {
			t.Errorf("announced[%d] = %v, want %v", i, g.Announced[i], u.Announced[i])
		}
	}
}

func TestUpdateWithoutOptionalParts(t *testing.T) {
	u := Update{Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	msg, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBody(MsgUpdate, msg[HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Update)
	if g.Tier != nil || g.NextHop.IsValid() || len(g.Withdrawn) != 0 {
		t.Errorf("unexpected optional parts: %+v", g)
	}
}

func TestUpdateRejectsIPv6(t *testing.T) {
	u := Update{Announced: []netip.Prefix{netip.MustParsePrefix("2001:db8::/32")}}
	if _, err := EncodeUpdate(u); err == nil {
		t.Error("expected error for IPv6 NLRI")
	}
	u = Update{NextHop: netip.MustParseAddr("2001:db8::1")}
	if _, err := EncodeUpdate(u); err == nil {
		t.Error("expected error for IPv6 next hop")
	}
}

func TestDecodeBodyErrors(t *testing.T) {
	cases := []struct {
		typ  uint8
		body []byte
	}{
		{MsgOpen, []byte{1, 2}},
		{MsgOpen, []byte{9, 0, 1, 0, 180, 1, 2, 3, 4, 0}}, // wrong version
		{MsgKeepalive, []byte{1}},
		{MsgNotification, []byte{6}},
		{MsgUpdate, []byte{0}},
		{MsgUpdate, []byte{0, 5, 0, 0}},        // withdrawn overruns
		{MsgUpdate, []byte{0, 0, 0, 9}},        // attrs overrun
		{MsgUpdate, []byte{0, 0, 0, 0, 40}},    // NLRI length > 32
		{MsgUpdate, []byte{0, 0, 0, 0, 24, 1}}, // truncated NLRI body
		{99, nil},
	}
	for i, c := range cases {
		if _, err := DecodeBody(c.typ, c.body); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTierCommunityForeignIgnored(t *testing.T) {
	var foreign [8]byte
	foreign[0] = 0x00 // two-octet-AS route target, not ours
	if _, ok := parseTierCommunity(foreign); ok {
		t.Error("foreign community parsed as tier tag")
	}
}

// TestSessionOverTCP runs a real handshake and tier-tagged route exchange
// over loopback TCP.
func TestSessionOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		rib *RIB
		err error
	}
	done := make(chan result, 1)

	// Customer side: accept, establish, apply updates until EOF.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer conn.Close()
		sess, err := Establish(conn, Open{AS: 64513, HoldTime: 180, ID: 2})
		if err != nil {
			done <- result{nil, err}
			return
		}
		rib := NewRIB()
		for {
			msg, err := sess.Recv()
			if err == io.EOF {
				done <- result{rib, nil}
				return
			}
			if err != nil {
				done <- result{nil, err}
				return
			}
			if u, ok := msg.(*Update); ok {
				if err := rib.Apply(u); err != nil {
					done <- result{nil, err}
					return
				}
			}
		}
	}()

	// Provider side: announce two tiers, withdraw one prefix, close.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Establish(conn, Open{AS: 64512, HoldTime: 180, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Peer.AS != 64513 {
		t.Fatalf("peer AS = %d", sess.Peer.AS)
	}
	updates, err := AnnounceTiered(
		[]netip.Prefix{
			netip.MustParsePrefix("10.1.0.0/16"),
			netip.MustParsePrefix("10.2.0.0/16"),
			netip.MustParsePrefix("10.3.0.0/16"),
		},
		netip.MustParseAddr("192.0.2.1"),
		func(p netip.Prefix) int {
			if p.Addr().As4()[1] == 1 {
				return 0
			}
			return 1
		},
		[]float64{9.5, 21.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		if err := sess.SendUpdate(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.SendUpdate(Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.3.0.0/16")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	rib := res.rib
	if rib.Len() != 2 {
		t.Fatalf("RIB has %d routes, want 2 (one withdrawn)", rib.Len())
	}
	r, ok := rib.Lookup(netip.MustParseAddr("10.1.2.3"))
	if !ok || r.Tier == nil || r.Tier.Tier != 0 || r.Tier.PriceMilli != 9500 {
		t.Fatalf("10.1/16 route = %+v", r)
	}
	r, ok = rib.Lookup(netip.MustParseAddr("10.2.9.9"))
	if !ok || r.Tier == nil || r.Tier.Tier != 1 || r.Tier.PriceMilli != 21000 {
		t.Fatalf("10.2/16 route = %+v", r)
	}
	if _, ok := rib.Lookup(netip.MustParseAddr("10.3.0.1")); ok {
		t.Error("withdrawn route still present")
	}
}

func TestRIBLongestPrefixMatch(t *testing.T) {
	rib := NewRIB()
	tier0 := &TierCommunity{Tier: 0, PriceMilli: 1000}
	tier1 := &TierCommunity{Tier: 1, PriceMilli: 2000}
	if err := rib.Apply(&Update{Tier: tier0,
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}); err != nil {
		t.Fatal(err)
	}
	if err := rib.Apply(&Update{Tier: tier1,
		Announced: []netip.Prefix{netip.MustParsePrefix("10.5.0.0/16")}}); err != nil {
		t.Fatal(err)
	}
	r, ok := rib.Lookup(netip.MustParseAddr("10.5.1.1"))
	if !ok || r.Tier.Tier != 1 {
		t.Fatalf("LPM picked %+v", r)
	}
	r, ok = rib.Lookup(netip.MustParseAddr("10.6.1.1"))
	if !ok || r.Tier.Tier != 0 {
		t.Fatalf("fallback picked %+v", r)
	}
	if _, ok := rib.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("lookup outside routes matched")
	}
	if got := len(rib.Routes()); got != 2 {
		t.Errorf("Routes() = %d entries", got)
	}
}

func TestAnnounceTieredRejectsBadTier(t *testing.T) {
	_, err := AnnounceTiered(
		[]netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		netip.MustParseAddr("192.0.2.1"),
		func(netip.Prefix) int { return 5 },
		[]float64{1.0},
	)
	if err == nil {
		t.Error("expected error for tier outside price list")
	}
}
