// Package topology provides the PoP-level network substrate behind the
// paper's distance heuristics (§4.1.1): city coordinates with
// great-circle distances, link graphs, and shortest-path routing. The EU
// ISP's flow distance is the geographic distance between entry and exit
// PoPs; Internet2's is the sum of traversed link lengths on the routed
// path; the CDN's is the geographic distance from an origin PoP to the
// GeoIP position of the destination.
package topology

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// EarthRadiusMiles is the mean Earth radius in statute miles.
const EarthRadiusMiles = 3958.8

// City is a named location with coordinates.
type City struct {
	Name    string
	Country string
	Lat     float64
	Lon     float64
}

// HaversineMiles returns the great-circle distance between two coordinate
// pairs in miles.
func HaversineMiles(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	phi1 := lat1 * degToRad
	phi2 := lat2 * degToRad
	dPhi := (lat2 - lat1) * degToRad
	dLam := (lon2 - lon1) * degToRad
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * EarthRadiusMiles * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Distance returns the great-circle distance between two cities in miles.
func Distance(a, b City) float64 {
	return HaversineMiles(a.Lat, a.Lon, b.Lat, b.Lon)
}

// Graph is a PoP graph: cities (nodes) connected by undirected links whose
// lengths default to the great-circle distance between endpoints.
type Graph struct {
	cities []City
	index  map[string]int
	adj    [][]edge // adjacency list, parallel to cities
}

type edge struct {
	to     int
	length float64
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddCity registers a PoP. City names must be unique.
func (g *Graph) AddCity(c City) error {
	if c.Name == "" {
		return errors.New("topology: city needs a name")
	}
	if _, dup := g.index[c.Name]; dup {
		return fmt.Errorf("topology: duplicate city %q", c.Name)
	}
	g.index[c.Name] = len(g.cities)
	g.cities = append(g.cities, c)
	g.adj = append(g.adj, nil)
	return nil
}

// AddLink connects two registered cities with an undirected link of
// great-circle length.
func (g *Graph) AddLink(a, b string) error {
	ia, ok := g.index[a]
	if !ok {
		return fmt.Errorf("topology: unknown city %q", a)
	}
	ib, ok := g.index[b]
	if !ok {
		return fmt.Errorf("topology: unknown city %q", b)
	}
	if ia == ib {
		return fmt.Errorf("topology: self link at %q", a)
	}
	length := Distance(g.cities[ia], g.cities[ib])
	g.adj[ia] = append(g.adj[ia], edge{to: ib, length: length})
	g.adj[ib] = append(g.adj[ib], edge{to: ia, length: length})
	return nil
}

// City returns a registered city by name.
func (g *Graph) City(name string) (City, bool) {
	i, ok := g.index[name]
	if !ok {
		return City{}, false
	}
	return g.cities[i], true
}

// Cities returns all registered cities sorted by name.
func (g *Graph) Cities() []City {
	out := append([]City(nil), g.cities...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of cities.
func (g *Graph) Len() int { return len(g.cities) }

// Path is a routed path through the graph.
type Path struct {
	// Cities is the sequence of PoP names from source to destination.
	Cities []string
	// Miles is the total link length along the path — the paper's
	// Internet2 flow-distance heuristic.
	Miles float64
}

// ShortestPath returns the minimum-length path between two cities using
// Dijkstra's algorithm.
func (g *Graph) ShortestPath(from, to string) (Path, error) {
	src, ok := g.index[from]
	if !ok {
		return Path{}, fmt.Errorf("topology: unknown city %q", from)
	}
	dst, ok := g.index[to]
	if !ok {
		return Path{}, fmt.Errorf("topology: unknown city %q", to)
	}
	if src == dst {
		return Path{Cities: []string{from}, Miles: 0}, nil
	}

	dist := make([]float64, len(g.cities))
	prev := make([]int, len(g.cities))
	done := make([]bool, len(g.cities))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, e := range g.adj[u] {
			if alt := dist[u] + e.length; alt < dist[e.to] {
				dist[e.to] = alt
				prev[e.to] = u
				heap.Push(pq, distItem{node: e.to, dist: alt})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, fmt.Errorf("topology: no path from %q to %q", from, to)
	}
	var names []string
	for u := dst; u != -1; u = prev[u] {
		names = append(names, g.cities[u].Name)
	}
	for l, r := 0, len(names)-1; l < r; l, r = l+1, r-1 {
		names[l], names[r] = names[r], names[l]
	}
	return Path{Cities: names, Miles: dist[dst]}, nil
}

// PairDistances returns the shortest-path distance between every ordered
// pair of distinct cities, keyed by [2]string{from, to}. Used by the trace
// generators to snap sampled distances onto real PoP pairs.
func (g *Graph) PairDistances() (map[[2]string]float64, error) {
	out := make(map[[2]string]float64)
	for _, a := range g.cities {
		for _, b := range g.cities {
			if a.Name == b.Name {
				continue
			}
			p, err := g.ShortestPath(a.Name, b.Name)
			if err != nil {
				return nil, err
			}
			out[[2]string{a.Name, b.Name}] = p.Miles
		}
	}
	return out, nil
}

// distItem and distHeap implement the Dijkstra priority queue.
type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
