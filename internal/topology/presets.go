package topology

// Preset topologies. Coordinates are approximate city centers; link sets
// are representative backbone meshes, chosen so that routed path lengths
// resemble the respective real networks.

// mustGraph builds a graph from cities and links, panicking on programmer
// error (the presets are compile-time data).
func mustGraph(cities []City, links [][2]string) *Graph {
	g := NewGraph()
	for _, c := range cities {
		if err := g.AddCity(c); err != nil {
			panic(err)
		}
	}
	for _, l := range links {
		if err := g.AddLink(l[0], l[1]); err != nil {
			panic(err)
		}
	}
	return g
}

// EuropeanISP returns a PoP graph of a pan-European transit provider: a
// dense national footprint (the paper's EU ISP serves thousands of
// business customers and carries mostly short-haul traffic — its
// demand-weighted mean flow distance is just 54 miles) plus continental
// PoPs for international routes.
func EuropeanISP() *Graph {
	cities := []City{
		// Dense home-market footprint (Benelux/German region — many PoPs
		// tens of miles apart, the source of the metro/national flows).
		{Name: "Amsterdam", Country: "NL", Lat: 52.37, Lon: 4.90},
		{Name: "Rotterdam", Country: "NL", Lat: 51.92, Lon: 4.48},
		{Name: "The Hague", Country: "NL", Lat: 52.08, Lon: 4.31},
		{Name: "Utrecht", Country: "NL", Lat: 52.09, Lon: 5.12},
		{Name: "Eindhoven", Country: "NL", Lat: 51.44, Lon: 5.48},
		{Name: "Antwerp", Country: "BE", Lat: 51.22, Lon: 4.40},
		{Name: "Brussels", Country: "BE", Lat: 50.85, Lon: 4.35},
		{Name: "Dusseldorf", Country: "DE", Lat: 51.23, Lon: 6.78},
		{Name: "Cologne", Country: "DE", Lat: 50.94, Lon: 6.96},
		// Continental PoPs.
		{Name: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68},
		{Name: "Paris", Country: "FR", Lat: 48.86, Lon: 2.35},
		{Name: "London", Country: "UK", Lat: 51.51, Lon: -0.13},
		{Name: "Zurich", Country: "CH", Lat: 47.38, Lon: 8.54},
		{Name: "Milan", Country: "IT", Lat: 45.46, Lon: 9.19},
		{Name: "Madrid", Country: "ES", Lat: 40.42, Lon: -3.70},
		{Name: "Vienna", Country: "AT", Lat: 48.21, Lon: 16.37},
		{Name: "Warsaw", Country: "PL", Lat: 52.23, Lon: 21.01},
		{Name: "Stockholm", Country: "SE", Lat: 59.33, Lon: 18.07},
	}
	links := [][2]string{
		{"Amsterdam", "Rotterdam"}, {"Amsterdam", "Utrecht"},
		{"Amsterdam", "The Hague"}, {"Rotterdam", "The Hague"},
		{"Utrecht", "Eindhoven"}, {"Rotterdam", "Antwerp"},
		{"Antwerp", "Brussels"}, {"Eindhoven", "Dusseldorf"},
		{"Dusseldorf", "Cologne"}, {"Cologne", "Frankfurt"},
		{"Brussels", "Paris"}, {"Amsterdam", "London"},
		{"Amsterdam", "Frankfurt"}, {"Frankfurt", "Zurich"},
		{"Zurich", "Milan"}, {"Paris", "Madrid"},
		{"Frankfurt", "Vienna"}, {"Vienna", "Warsaw"},
		{"Amsterdam", "Stockholm"}, {"Paris", "London"},
	}
	return mustGraph(cities, links)
}

// Internet2 returns the Abilene-era Internet2 backbone: eleven US PoPs
// with the historical link layout, over which the paper sums traversed
// link lengths to get flow distances.
func Internet2() *Graph {
	cities := []City{
		{Name: "Seattle", Country: "US", Lat: 47.61, Lon: -122.33},
		{Name: "Sunnyvale", Country: "US", Lat: 37.37, Lon: -122.04},
		{Name: "Los Angeles", Country: "US", Lat: 34.05, Lon: -118.24},
		{Name: "Denver", Country: "US", Lat: 39.74, Lon: -104.99},
		{Name: "Kansas City", Country: "US", Lat: 39.10, Lon: -94.58},
		{Name: "Houston", Country: "US", Lat: 29.76, Lon: -95.37},
		{Name: "Chicago", Country: "US", Lat: 41.88, Lon: -87.63},
		{Name: "Indianapolis", Country: "US", Lat: 39.77, Lon: -86.16},
		{Name: "Atlanta", Country: "US", Lat: 33.75, Lon: -84.39},
		{Name: "Washington", Country: "US", Lat: 38.91, Lon: -77.04},
		{Name: "New York", Country: "US", Lat: 40.71, Lon: -74.01},
	}
	links := [][2]string{
		{"Seattle", "Sunnyvale"}, {"Seattle", "Denver"},
		{"Sunnyvale", "Los Angeles"}, {"Sunnyvale", "Denver"},
		{"Los Angeles", "Houston"}, {"Denver", "Kansas City"},
		{"Kansas City", "Houston"}, {"Kansas City", "Indianapolis"},
		{"Houston", "Atlanta"}, {"Chicago", "Indianapolis"},
		{"Indianapolis", "Atlanta"}, {"Chicago", "New York"},
		{"Atlanta", "Washington"}, {"New York", "Washington"},
	}
	return mustGraph(cities, links)
}

// CDNOrigins returns the origin PoP cities of the synthetic international
// CDN (the paper's CDN has its own global infrastructure).
func CDNOrigins() []City {
	return []City{
		{Name: "Ashburn", Country: "US", Lat: 39.04, Lon: -77.49},
		{Name: "San Jose", Country: "US", Lat: 37.34, Lon: -121.89},
		{Name: "Dallas", Country: "US", Lat: 32.78, Lon: -96.80},
		{Name: "Chicago", Country: "US", Lat: 41.88, Lon: -87.63},
		{Name: "London", Country: "UK", Lat: 51.51, Lon: -0.13},
		{Name: "Frankfurt", Country: "DE", Lat: 50.11, Lon: 8.68},
		{Name: "Tokyo", Country: "JP", Lat: 35.68, Lon: 139.69},
		{Name: "Singapore", Country: "SG", Lat: 1.35, Lon: 103.82},
	}
}

// WorldCities returns a spread of destination cities for the CDN's
// GeoIP-resolved traffic, covering metro, national and intercontinental
// distances from the CDN origins.
func WorldCities() []City {
	return []City{
		// North America.
		{Name: "New York", Country: "US", Lat: 40.71, Lon: -74.01},
		{Name: "Boston", Country: "US", Lat: 42.36, Lon: -71.06},
		{Name: "Philadelphia", Country: "US", Lat: 39.95, Lon: -75.17},
		{Name: "Baltimore", Country: "US", Lat: 39.29, Lon: -76.61},
		{Name: "Richmond", Country: "US", Lat: 37.54, Lon: -77.44},
		{Name: "Atlanta", Country: "US", Lat: 33.75, Lon: -84.39},
		{Name: "Miami", Country: "US", Lat: 25.76, Lon: -80.19},
		{Name: "Seattle", Country: "US", Lat: 47.61, Lon: -122.33},
		{Name: "Los Angeles", Country: "US", Lat: 34.05, Lon: -118.24},
		{Name: "San Francisco", Country: "US", Lat: 37.77, Lon: -122.42},
		{Name: "Sacramento", Country: "US", Lat: 38.58, Lon: -121.49},
		{Name: "Denver", Country: "US", Lat: 39.74, Lon: -104.99},
		{Name: "Houston", Country: "US", Lat: 29.76, Lon: -95.37},
		{Name: "Austin", Country: "US", Lat: 30.27, Lon: -97.74},
		{Name: "Minneapolis", Country: "US", Lat: 44.98, Lon: -93.27},
		{Name: "Detroit", Country: "US", Lat: 42.33, Lon: -83.05},
		{Name: "Toronto", Country: "CA", Lat: 43.65, Lon: -79.38},
		{Name: "Montreal", Country: "CA", Lat: 45.50, Lon: -73.57},
		{Name: "Vancouver", Country: "CA", Lat: 49.28, Lon: -123.12},
		{Name: "Mexico City", Country: "MX", Lat: 19.43, Lon: -99.13},
		// Europe.
		{Name: "Paris", Country: "FR", Lat: 48.86, Lon: 2.35},
		{Name: "Amsterdam", Country: "NL", Lat: 52.37, Lon: 4.90},
		{Name: "Berlin", Country: "DE", Lat: 52.52, Lon: 13.41},
		{Name: "Munich", Country: "DE", Lat: 48.14, Lon: 11.58},
		{Name: "Madrid", Country: "ES", Lat: 40.42, Lon: -3.70},
		{Name: "Milan", Country: "IT", Lat: 45.46, Lon: 9.19},
		{Name: "Stockholm", Country: "SE", Lat: 59.33, Lon: 18.07},
		{Name: "Warsaw", Country: "PL", Lat: 52.23, Lon: 21.01},
		{Name: "Dublin", Country: "IE", Lat: 53.35, Lon: -6.26},
		{Name: "Manchester", Country: "UK", Lat: 53.48, Lon: -2.24},
		// Asia-Pacific.
		{Name: "Osaka", Country: "JP", Lat: 34.69, Lon: 135.50},
		{Name: "Seoul", Country: "KR", Lat: 37.57, Lon: 126.98},
		{Name: "Hong Kong", Country: "HK", Lat: 22.32, Lon: 114.17},
		{Name: "Taipei", Country: "TW", Lat: 25.03, Lon: 121.57},
		{Name: "Kuala Lumpur", Country: "MY", Lat: 3.14, Lon: 101.69},
		{Name: "Jakarta", Country: "ID", Lat: -6.21, Lon: 106.85},
		{Name: "Sydney", Country: "AU", Lat: -33.87, Lon: 151.21},
		{Name: "Mumbai", Country: "IN", Lat: 19.08, Lon: 72.88},
		// South America & Africa.
		{Name: "Sao Paulo", Country: "BR", Lat: -23.55, Lon: -46.63},
		{Name: "Buenos Aires", Country: "AR", Lat: -34.60, Lon: -58.38},
		{Name: "Johannesburg", Country: "ZA", Lat: -26.20, Lon: 28.05},
	}
}
