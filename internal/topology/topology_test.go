package topology

import (
	"math"
	"testing"
)

func TestHaversineKnownDistances(t *testing.T) {
	// New York to Los Angeles is about 2445 miles great-circle.
	d := HaversineMiles(40.71, -74.01, 34.05, -118.24)
	if math.Abs(d-2445) > 25 {
		t.Fatalf("NYC-LA = %v miles, want ~2445", d)
	}
	// Amsterdam to Rotterdam is about 36 miles.
	d = HaversineMiles(52.37, 4.90, 51.92, 4.48)
	if math.Abs(d-36) > 4 {
		t.Fatalf("AMS-RTM = %v miles, want ~36", d)
	}
	// Zero distance for identical points.
	if d := HaversineMiles(10, 20, 10, 20); d != 0 {
		t.Fatalf("same point distance = %v", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	d1 := HaversineMiles(47.61, -122.33, 35.68, 139.69)
	d2 := HaversineMiles(35.68, 139.69, 47.61, -122.33)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	if err := g.AddCity(City{Name: "A", Lat: 0, Lon: 0}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCity(City{Name: "B", Lat: 0, Lon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCity(City{Name: "A"}); err == nil {
		t.Error("expected duplicate-city error")
	}
	if err := g.AddCity(City{}); err == nil {
		t.Error("expected empty-name error")
	}
	if err := g.AddLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink("A", "Z"); err == nil {
		t.Error("expected unknown-city error")
	}
	if err := g.AddLink("A", "A"); err == nil {
		t.Error("expected self-link error")
	}
	if _, ok := g.City("A"); !ok {
		t.Error("City(A) not found")
	}
	if _, ok := g.City("Z"); ok {
		t.Error("City(Z) should not exist")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
	cities := g.Cities()
	if len(cities) != 2 || cities[0].Name != "A" || cities[1].Name != "B" {
		t.Errorf("Cities() = %v", cities)
	}
}

func TestShortestPathDirectVsDetour(t *testing.T) {
	// Line: A(0,0) - B(0,1) - C(0,2), plus a long detour A - D(5,1) - C.
	g := NewGraph()
	for _, c := range []City{
		{Name: "A", Lat: 0, Lon: 0},
		{Name: "B", Lat: 0, Lon: 1},
		{Name: "C", Lat: 0, Lon: 2},
		{Name: "D", Lat: 5, Lon: 1},
	} {
		if err := g.AddCity(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]string{{"A", "B"}, {"B", "C"}, {"A", "D"}, {"D", "C"}} {
		if err := g.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.ShortestPath("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cities) != 3 || p.Cities[1] != "B" {
		t.Fatalf("path = %v, want A-B-C", p.Cities)
	}
	direct := Distance(City{Lat: 0, Lon: 0}, City{Lat: 0, Lon: 2})
	if p.Miles < direct-1e-9 {
		t.Fatalf("path length %v below great-circle %v", p.Miles, direct)
	}
}

func TestShortestPathSameCity(t *testing.T) {
	g := NewGraph()
	if err := g.AddCity(City{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	p, err := g.ShortestPath("A", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Miles != 0 || len(p.Cities) != 1 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := NewGraph()
	if err := g.AddCity(City{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCity(City{Name: "B", Lat: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath("A", "Z"); err == nil {
		t.Error("expected unknown-city error")
	}
	if _, err := g.ShortestPath("Z", "A"); err == nil {
		t.Error("expected unknown-city error")
	}
	// A and B are registered but unconnected.
	if _, err := g.ShortestPath("A", "B"); err == nil {
		t.Error("expected no-path error")
	}
}

func TestPresetGraphsConnected(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"EuropeanISP", EuropeanISP()},
		{"Internet2", Internet2()},
	} {
		cities := tc.g.Cities()
		src := cities[0].Name
		for _, c := range cities[1:] {
			if _, err := tc.g.ShortestPath(src, c.Name); err != nil {
				t.Errorf("%s: %s unreachable from %s: %v", tc.name, c.Name, src, err)
			}
		}
	}
}

func TestPathSatisfiesTriangleInequality(t *testing.T) {
	// Routed distance is never below great-circle distance between the
	// endpoints (path sums of haversine legs can only be longer).
	g := Internet2()
	pairs, err := g.PairDistances()
	if err != nil {
		t.Fatal(err)
	}
	for pair, miles := range pairs {
		a, _ := g.City(pair[0])
		b, _ := g.City(pair[1])
		if direct := Distance(a, b); miles < direct-1e-6 {
			t.Errorf("%v: routed %v < direct %v", pair, miles, direct)
		}
	}
	// Symmetric.
	for pair, miles := range pairs {
		if rev := pairs[[2]string{pair[1], pair[0]}]; math.Abs(rev-miles) > 1e-9 {
			t.Errorf("asymmetric pair distance %v: %v vs %v", pair, miles, rev)
		}
	}
}

func TestInternet2PathShape(t *testing.T) {
	// Seattle to New York must route through the midwest, with total
	// length well above the ~2400-mile great circle.
	g := Internet2()
	p, err := g.ShortestPath("Seattle", "New York")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cities) < 3 {
		t.Fatalf("path = %v, want multiple hops", p.Cities)
	}
	if p.Miles < 2400 || p.Miles > 3500 {
		t.Fatalf("Seattle-NY routed = %v miles, want 2400..3500", p.Miles)
	}
}

func TestEuropeanISPHasShortHaulCore(t *testing.T) {
	// The home-market PoPs must offer plenty of sub-60-mile pairs — the
	// source of the EU ISP's 54-mile demand-weighted mean distance.
	g := EuropeanISP()
	pairs, err := g.PairDistances()
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for _, miles := range pairs {
		if miles < 60 {
			short++
		}
	}
	if short < 10 {
		t.Fatalf("only %d short-haul pairs, want >= 10", short)
	}
}

func TestCDNPresetsNonEmpty(t *testing.T) {
	if len(CDNOrigins()) < 5 {
		t.Error("too few CDN origins")
	}
	if len(WorldCities()) < 30 {
		t.Error("too few world cities")
	}
	// No duplicate names within each set.
	seen := map[string]bool{}
	for _, c := range WorldCities() {
		if seen[c.Name] {
			t.Errorf("duplicate world city %q", c.Name)
		}
		seen[c.Name] = true
	}
}
