package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := Internet2()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "internet2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `graph "internet2" {`) {
		t.Fatalf("bad prefix: %q", out[:30])
	}
	for _, want := range []string{`"Seattle"`, `"New York"`, `-- "Sunnyvale"`, "mi\"];"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Each undirected link appears exactly once.
	if n := strings.Count(out, `"Seattle" -- "Sunnyvale"`) + strings.Count(out, `"Sunnyvale" -- "Seattle"`); n != 1 {
		t.Errorf("Seattle-Sunnyvale emitted %d times", n)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2, "internet2"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("DOT output not deterministic")
	}
}
