package topology

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT form, with link lengths as
// edge labels (miles) — handy for eyeballing the preset topologies:
//
//	go run ./cmd/tiersim ... or
//	dot -Tsvg <(program output) > topo.svg
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  layout=neato;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=8];\n")
	for _, c := range g.Cities() {
		// Longitude/latitude as layout hints (scaled for readability).
		fmt.Fprintf(&b, "  %q [pos=\"%.2f,%.2f!\"];\n", c.Name, c.Lon/3, c.Lat/3)
	}
	// Emit each undirected link once, in deterministic order.
	type link struct {
		a, b  string
		miles float64
	}
	var links []link
	for i, adj := range g.adj {
		from := g.cities[i].Name
		for _, e := range adj {
			to := g.cities[e.to].Name
			if from < to {
				links = append(links, link{a: from, b: to, miles: e.length})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].a != links[j].a {
			return links[i].a < links[j].a
		}
		return links[i].b < links[j].b
	})
	for _, l := range links {
		fmt.Fprintf(&b, "  %q -- %q [label=\"%.0f mi\"];\n", l.a, l.b, l.miles)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
