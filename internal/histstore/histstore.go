// Package histstore persists the tier-table time series beyond the
// checkpoint retention window: every published TierTable (and the
// pricing-config epoch it was produced under) becomes one durable row
// keyed by (tenant, epoch), queryable long after the in-memory history
// ring and the checkpoints that carried it have rotated away.
//
// The Store interface is deliberately database-shaped — open by DSN,
// tenant column, range scans with limits, retention pruning — so a
// server-backed implementation (PostgreSQL) can slot in behind the same
// call sites. The implementation this repo ships is the embedded
// engine in sqlite.go: a single-file, pure-Go store that follows
// SQLite's WAL-mode discipline (appends group-commit into a write-ahead
// file, which is periodically folded into the main file; pruning
// compacts the main file without blocking appends). The repo vendors
// no cgo and no third-party drivers, so "sqlite:" DSNs select that
// engine; "postgres:" DSNs are recognized but gated until a driver is
// vendored.
package histstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Entry is one row of the tier-table time series: the canonical
// stream.TierTable bytes exactly as /v1/tiers served them at that
// epoch, plus the pricing-config epoch the table was produced under.
type Entry struct {
	// Tenant namespaces the series; the single-tenant daemon writes
	// under "default".
	Tenant string `json:"tenant"`
	// Epoch is the snapshot epoch — the unique key within a tenant.
	Epoch int64 `json:"epoch"`
	// ConfigEpoch identifies the pricing configuration (initial boot
	// config = 1; each successful hot reload increments it).
	ConfigEpoch int64 `json:"config_epoch,omitempty"`
	// At is when the snapshot was published.
	At time.Time `json:"at"`
	// Table is the canonical TierTable JSON.
	Table json.RawMessage `json:"table"`
}

// Query selects a slice of one tenant's series by epoch range.
type Query struct {
	// SinceEpoch and UntilEpoch bound the scan inclusively; zero means
	// unbounded on that side.
	SinceEpoch int64
	UntilEpoch int64
	// Limit caps the returned entries; when more match, the newest
	// Limit are kept (still returned oldest-first). <= 0 is unlimited.
	Limit int
}

// Retention is a Prune policy. Zero fields mean "keep everything" on
// that axis.
type Retention struct {
	// MaxEntries bounds each tenant's row count (oldest epochs drop).
	MaxEntries int
	// MaxAge drops entries whose At is older than now-MaxAge.
	MaxAge time.Duration
}

// Stats is a point-in-time view of a store for /metrics.
type Stats struct {
	// Entries and Bytes count the live rows (all tenants) and their
	// encoded size.
	Entries uint64
	Bytes   uint64
	// Appends are rows accepted; Dupes are appends ignored because the
	// (tenant, epoch) key already existed (the idempotent re-append
	// path after a restore from an older checkpoint); AppendErrors are
	// appends that failed to reach the write-ahead file.
	Appends      uint64
	Dupes        uint64
	AppendErrors uint64
	// Flushes counts group commits (one fsync each); Folds counts
	// WAL-into-main-file checkpoints; Compactions counts main-file
	// rewrites (pruning).
	Flushes     uint64
	Folds       uint64
	Compactions uint64
	// Pruned counts rows removed by retention policy.
	Pruned uint64
	// Scans counts Scan calls served.
	Scans uint64
	// OpenTornBytes is how many trailing bytes open-time recovery
	// distrusted and discarded (torn final transaction frame).
	OpenTornBytes uint64
}

// Store is the durable tier-history interface. Implementations must be
// safe for concurrent use. Append is idempotent on (Tenant, Epoch):
// re-appending an existing key is a no-op that keeps the first-written
// row, which is what makes replaying history after a restore from an
// older checkpoint safe.
type Store interface {
	// Append stages one row; rows are batch-committed off the caller's
	// path (group commit). Scan observes appended rows immediately.
	Append(e Entry) error
	// Scan returns the tenant's rows matching q, oldest-first.
	Scan(tenant string, q Query) ([]Entry, error)
	// Prune applies the retention policy across every tenant and
	// reports how many rows it removed.
	Prune(policy Retention) (removed int, err error)
	// Tenants lists the tenants with at least one row, sorted.
	Tenants() []string
	// Sync forces any staged rows to durable storage.
	Sync() error
	// Stats reports the store's counters.
	Stats() Stats
	// Close flushes and releases the store.
	Close() error
}

// ErrDriverUnavailable marks a DSN whose scheme is recognized but whose
// driver is not vendored in this build.
var ErrDriverUnavailable = errors.New("histstore: driver not vendored in this build")

// Open dispatches a DSN to its driver:
//
//	sqlite:/var/lib/tierd/history.db   the embedded engine (also the
//	/var/lib/tierd/history.db          default for a bare path)
//	postgres://user@host/db            gated until a driver is vendored
func Open(dsn string, opts Options) (Store, error) {
	if dsn == "" {
		return nil, errors.New("histstore: empty DSN")
	}
	switch {
	case strings.HasPrefix(dsn, "sqlite:"):
		return openSQLite(strings.TrimPrefix(dsn, "sqlite:"), opts)
	case strings.HasPrefix(dsn, "postgres:"), strings.HasPrefix(dsn, "postgresql:"):
		// The Store interface is already shaped for a server-backed
		// implementation (DSN, tenant column, bounded scans); vendoring
		// a driver is the only missing piece.
		return nil, fmt.Errorf("%w: %q (use a sqlite: DSN; the Store interface is PostgreSQL-shaped so a driver can slot in)", ErrDriverUnavailable, dsn)
	case strings.Contains(dsn, "://"):
		return nil, fmt.Errorf("histstore: unknown DSN scheme in %q", dsn)
	default:
		return openSQLite(dsn, opts)
	}
}

// Options tunes a store. The zero value selects the defaults.
type Options struct {
	// FlushInterval is the group-commit cadence: staged appends reach
	// durable storage at least this often (default 200ms). Negative
	// disables the background flusher (appends then persist on
	// FlushBytes overflow, Sync, or Close — the deterministic-test
	// configuration).
	FlushInterval time.Duration
	// FlushBytes triggers an immediate commit when the staged batch
	// exceeds it (default 256 KiB).
	FlushBytes int
	// FoldBytes is the write-ahead file size that triggers folding it
	// into the main file (default 4 MiB).
	FoldBytes int64
	// Now is the store's clock (Prune MaxAge); nil selects time.Now.
	Now func() time.Time
}
