package histstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testOpts disables the background flusher so commits happen only on
// FlushBytes overflow, Sync, or Close — deterministic for tests.
func testOpts() Options {
	return Options{FlushInterval: -1}
}

func mustOpen(t *testing.T, dsn string, opts Options) Store {
	t.Helper()
	s, err := Open(dsn, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dsn, err)
	}
	return s
}

func entry(tenant string, epoch int64, at time.Time) Entry {
	return Entry{
		Tenant:      tenant,
		Epoch:       epoch,
		ConfigEpoch: 1,
		At:          at,
		Table:       json.RawMessage(fmt.Sprintf(`{"epoch":%d,"tiers":[{"price":%d.5}]}`, epoch, epoch)),
	}
}

func appendN(t *testing.T, s Store, tenant string, from, to int64, at time.Time) {
	t.Helper()
	for ep := from; ep <= to; ep++ {
		if err := s.Append(entry(tenant, ep, at.Add(time.Duration(ep)*time.Second))); err != nil {
			t.Fatalf("Append(%s, %d): %v", tenant, ep, err)
		}
	}
}

func epochsOf(entries []Entry) []int64 {
	out := make([]int64, len(entries))
	for i, e := range entries {
		out[i] = e.Epoch
	}
	return out
}

func TestOpenDSNDispatch(t *testing.T) {
	dir := t.TempDir()
	for _, dsn := range []string{
		"sqlite:" + filepath.Join(dir, "a.db"),
		filepath.Join(dir, "b.db"),
	} {
		s := mustOpen(t, dsn, testOpts())
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	if _, err := Open("postgres://u@h/db", testOpts()); err == nil {
		t.Fatal("postgres DSN should be gated")
	} else if !errors.Is(err, ErrDriverUnavailable) {
		t.Fatalf("postgres DSN: want ErrDriverUnavailable, got %v", err)
	}
	if _, err := Open("mysql://u@h/db", testOpts()); err == nil {
		t.Fatal("unknown scheme should be rejected")
	}
	if _, err := Open("", testOpts()); err == nil {
		t.Fatal("empty DSN should be rejected")
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "h.db"), testOpts())
	defer s.Close()
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "default", 1, 20, base)

	// Unflushed rows must still be visible to Scan.
	all, err := s.Scan("default", Query{})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(all) != 20 {
		t.Fatalf("Scan: got %d entries, want 20", len(all))
	}
	for i, e := range all {
		want := entry("default", int64(i+1), base.Add(time.Duration(i+1)*time.Second))
		if e.Epoch != want.Epoch || e.Tenant != want.Tenant || !e.At.Equal(want.At) ||
			e.ConfigEpoch != want.ConfigEpoch || string(e.Table) != string(want.Table) {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, e, want)
		}
	}

	// Range bounds are inclusive; zero means unbounded.
	got, _ := s.Scan("default", Query{SinceEpoch: 5, UntilEpoch: 8})
	if eps := epochsOf(got); len(eps) != 4 || eps[0] != 5 || eps[3] != 8 {
		t.Fatalf("range scan: got %v, want [5 6 7 8]", eps)
	}
	// Limit keeps the newest entries, still oldest-first.
	got, _ = s.Scan("default", Query{Limit: 3})
	if eps := epochsOf(got); len(eps) != 3 || eps[0] != 18 || eps[2] != 20 {
		t.Fatalf("limit scan: got %v, want [18 19 20]", eps)
	}
	got, _ = s.Scan("default", Query{SinceEpoch: 100})
	if len(got) != 0 {
		t.Fatalf("empty range scan: got %v", epochsOf(got))
	}
	got, _ = s.Scan("nosuch", Query{})
	if len(got) != 0 {
		t.Fatalf("unknown tenant scan: got %v", epochsOf(got))
	}
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	s := mustOpen(t, path, testOpts())
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "alpha", 1, 10, base)
	appendN(t, s, "beta", 1, 5, base)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, path, testOpts())
	defer s.Close()
	if ts := s.Tenants(); len(ts) != 2 || ts[0] != "alpha" || ts[1] != "beta" {
		t.Fatalf("Tenants after reopen: %v", ts)
	}
	got, err := s.Scan("alpha", Query{})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 10 || string(got[3].Table) != string(entry("alpha", 4, base).Table) {
		t.Fatalf("reopen scan: %d entries, [3]=%s", len(got), got[3].Table)
	}
	st := s.Stats()
	if st.Entries != 15 {
		t.Fatalf("Stats.Entries after reopen = %d, want 15", st.Entries)
	}
}

func TestAppendIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	s := mustOpen(t, path, testOpts())
	base := time.Unix(1700000000, 0).UTC()
	first := entry("default", 7, base)
	if err := s.Append(first); err != nil {
		t.Fatal(err)
	}
	// A re-append of the same key — even with different bytes, as a
	// restore from an older checkpoint would produce — must keep the
	// first-written row.
	second := first
	second.Table = json.RawMessage(`{"epoch":7,"tiers":"REWRITTEN"}`)
	if err := s.Append(second); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Appends != 1 || st.Dupes != 1 || st.Entries != 1 {
		t.Fatalf("stats after dup append: %+v", st)
	}
	got, _ := s.Scan("default", Query{})
	if len(got) != 1 || string(got[0].Table) != string(first.Table) {
		t.Fatalf("dup append overwrote row: %s", got[0].Table)
	}
	// Same across a flush + reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, path, testOpts())
	defer s.Close()
	if err := s.Append(second); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Scan("default", Query{})
	if len(got) != 1 || string(got[0].Table) != string(first.Table) {
		t.Fatalf("dup append after reopen overwrote row: %s", got[0].Table)
	}
	if st := s.Stats(); st.Dupes != 1 {
		t.Fatalf("Dupes after reopen = %d, want 1", st.Dupes)
	}
}

func TestTornTailRecovery(t *testing.T) {
	for _, suffix := range []string{"-wal", ""} {
		t.Run("file"+suffix, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "h.db")
			s := mustOpen(t, path, testOpts())
			base := time.Unix(1700000000, 0).UTC()
			appendN(t, s, "default", 1, 8, base)
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			if suffix == "" {
				// Move the committed frames into the main file so the
				// torn tail lands there.
				if err := s.(*sqliteStore).forceFold(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate a torn final frame: garbage appended past the
			// last commit.
			f, err := os.OpenFile(path+suffix, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("\x00\x00\x01\x00torn-partial-frame")); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s = mustOpen(t, path, testOpts())
			defer s.Close()
			got, err := s.Scan("default", Query{})
			if err != nil {
				t.Fatalf("Scan after torn tail: %v", err)
			}
			if len(got) != 8 {
				t.Fatalf("torn tail lost committed rows: got %d, want 8", len(got))
			}
			if st := s.Stats(); st.OpenTornBytes == 0 {
				t.Fatal("OpenTornBytes = 0, want > 0")
			}
			// And appends keep working after the truncation.
			appendN(t, s, "default", 9, 9, base)
			if got, _ = s.Scan("default", Query{}); len(got) != 9 {
				t.Fatalf("append after recovery: got %d rows, want 9", len(got))
			}
		})
	}
}

func TestCorruptInteriorFrameTruncatesFromThere(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	s := mustOpen(t, path, testOpts())
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "default", 1, 3, base)
	if err := s.Sync(); err != nil { // frame 1: epochs 1..3
		t.Fatal(err)
	}
	appendN(t, s, "default", 4, 6, base)
	if err := s.Sync(); err != nil { // frame 2: epochs 4..6
		t.Fatal(err)
	}
	frame1End := int64(len(fileMagic)) + walFrameSize(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside frame 2: its CRC fails, and recovery
	// must stop trusting the file at frame 2's start.
	f, err := os.OpenFile(path+"-wal", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, frame1End+frameHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, path, testOpts())
	defer s.Close()
	got, _ := s.Scan("default", Query{})
	if eps := epochsOf(got); len(eps) != 3 || eps[2] != 3 {
		t.Fatalf("after corrupt frame 2: got %v, want [1 2 3]", eps)
	}
}

// walFrameSize computes the frame size for n of this test's entries by
// reading the store's live WAL size after one n-row commit.
func walFrameSize(t *testing.T, s Store, n int) int64 {
	t.Helper()
	ss := s.(*sqliteStore)
	ss.mu.Lock()
	defer ss.mu.Unlock()
	// Two identical commits: the first frame ends at the midpoint.
	total := ss.walSize - int64(len(fileMagic))
	if total%2 != 0 {
		t.Fatalf("uneven double-frame WAL size %d", total)
	}
	return total / 2
}

func TestFoldMovesWALIntoMainFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	opts := testOpts()
	opts.FoldBytes = 1 // every flush folds
	s := mustOpen(t, path, opts)
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "default", 1, 50, base)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Folds == 0 {
		t.Fatalf("no folds recorded: %+v", st)
	}
	if wi, err := os.Stat(path + "-wal"); err != nil || wi.Size() != int64(len(fileMagic)) {
		t.Fatalf("WAL not truncated after fold: size=%v err=%v", wi.Size(), err)
	}
	// Rows must be readable from their folded locations, live and after
	// reopen.
	got, err := s.Scan("default", Query{})
	if err != nil || len(got) != 50 {
		t.Fatalf("scan after fold: %d rows, err=%v", len(got), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, path, testOpts())
	defer s.Close()
	if got, _ = s.Scan("default", Query{}); len(got) != 50 {
		t.Fatalf("scan after fold+reopen: %d rows", len(got))
	}
}

func TestCrashBetweenFoldAndTruncateDedups(t *testing.T) {
	// Simulate the fold crash window: main file already holds the WAL's
	// frames, WAL not yet truncated. Open must index each key once.
	path := filepath.Join(t.TempDir(), "h.db")
	s := mustOpen(t, path, testOpts())
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "default", 1, 10, base)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(path + "-wal")
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Write(wal[len(fileMagic):]); err != nil {
		t.Fatal(err)
	}
	db.Close()

	s = mustOpen(t, path, testOpts())
	defer s.Close()
	got, _ := s.Scan("default", Query{})
	if len(got) != 10 {
		t.Fatalf("crash-window dedup: got %d rows, want 10", len(got))
	}
	if st := s.Stats(); st.Entries != 10 {
		t.Fatalf("Entries = %d, want 10", st.Entries)
	}
}

func TestPruneMaxEntriesCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	s := mustOpen(t, path, testOpts())
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "alpha", 1, 30, base)
	appendN(t, s, "beta", 1, 4, base)
	removed, err := s.Prune(Retention{MaxEntries: 10})
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if removed != 20 {
		t.Fatalf("Prune removed %d, want 20", removed)
	}
	got, _ := s.Scan("alpha", Query{})
	if eps := epochsOf(got); len(eps) != 10 || eps[0] != 21 || eps[9] != 30 {
		t.Fatalf("alpha after prune: %v", eps)
	}
	if got, _ = s.Scan("beta", Query{}); len(got) != 4 {
		t.Fatalf("beta lost rows: %d", len(got))
	}
	st := s.Stats()
	if st.Pruned != 20 || st.Compactions != 1 || st.Entries != 14 {
		t.Fatalf("stats after prune: %+v", st)
	}
	// Compaction rewrote the main file: the pruned rows are gone from
	// disk, and a reopen sees only the live set.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, path, testOpts())
	defer s.Close()
	if got, _ = s.Scan("alpha", Query{}); len(got) != 10 {
		t.Fatalf("alpha after prune+reopen: %d rows", len(got))
	}
	if st := s.Stats(); st.Entries != 14 {
		t.Fatalf("Entries after prune+reopen = %d", st.Entries)
	}
}

func TestPruneMaxAge(t *testing.T) {
	now := time.Unix(1700000000, 0).UTC()
	opts := testOpts()
	opts.Now = func() time.Time { return now.Add(100 * time.Second) }
	s := mustOpen(t, filepath.Join(t.TempDir(), "h.db"), opts)
	defer s.Close()
	appendN(t, s, "default", 1, 90, now) // entry ep has At = now+ep seconds
	// Cutoff at now+40s: epochs 1..39 age out.
	removed, err := s.Prune(Retention{MaxAge: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 39 {
		t.Fatalf("MaxAge prune removed %d, want 39", removed)
	}
	got, _ := s.Scan("default", Query{})
	if eps := epochsOf(got); eps[0] != 40 {
		t.Fatalf("oldest surviving epoch %d, want 40", eps[0])
	}
	// No-op prune doesn't compact.
	st := s.Stats()
	if removed, _ := s.Prune(Retention{MaxAge: 60 * time.Second}); removed != 0 {
		t.Fatalf("second prune removed %d", removed)
	}
	if st2 := s.Stats(); st2.Compactions != st.Compactions {
		t.Fatal("no-op prune compacted")
	}
}

func TestFlushBytesOverflowCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	opts := testOpts()
	opts.FlushBytes = 1 // every append commits
	s := mustOpen(t, path, opts)
	base := time.Unix(1700000000, 0).UTC()
	appendN(t, s, "default", 1, 5, base)
	if st := s.Stats(); st.Flushes != 5 {
		t.Fatalf("Flushes = %d, want 5", st.Flushes)
	}
	// Rows are durable without Close: reopen a copy of the files.
	dir2 := t.TempDir()
	for _, suffix := range []string{"", "-wal"} {
		b, err := os.ReadFile(path + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, "h.db")+suffix, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, filepath.Join(dir2, "h.db"), testOpts())
	defer s2.Close()
	if got, _ := s2.Scan("default", Query{}); len(got) != 5 {
		t.Fatalf("copied store has %d rows, want 5", len(got))
	}
	s.Close()
}

func TestBackgroundFlusher(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	opts := Options{FlushInterval: 5 * time.Millisecond}
	s := mustOpen(t, path, opts)
	defer s.Close()
	appendN(t, s, "default", 1, 3, time.Unix(1700000000, 0).UTC())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Flushes > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background flusher never committed")
}

func TestConcurrentAppendScan(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "h.db"), Options{FlushInterval: time.Millisecond})
	defer s.Close()
	base := time.Unix(1700000000, 0).UTC()
	const perTenant = 200
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b", "c"} {
		wg.Add(2)
		go func(tn string) {
			defer wg.Done()
			for ep := int64(1); ep <= perTenant; ep++ {
				if err := s.Append(entry(tn, ep, base)); err != nil {
					t.Errorf("Append(%s,%d): %v", tn, ep, err)
					return
				}
			}
		}(tenant)
		go func(tn string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Scan(tn, Query{Limit: 10}); err != nil {
					t.Errorf("Scan(%s): %v", tn, err)
					return
				}
			}
		}(tenant)
	}
	wg.Wait()
	for _, tenant := range []string{"a", "b", "c"} {
		if got, _ := s.Scan(tenant, Query{}); len(got) != perTenant {
			t.Fatalf("tenant %s: %d rows, want %d", tenant, len(got), perTenant)
		}
	}
}

func TestAppendRejectsEmptyTenant(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "h.db"), testOpts())
	defer s.Close()
	if err := s.Append(Entry{Epoch: 1}); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := mustOpen(t, filepath.Join(t.TempDir(), "h.db"), testOpts())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(entry("default", 1, time.Unix(0, 0))); err == nil {
		t.Fatal("append after close accepted")
	}
	if _, err := s.Prune(Retention{MaxEntries: 1}); err == nil {
		t.Fatal("prune after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	if err := os.WriteFile(path, []byte("NOTADBFILE......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testOpts()); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// forceFold exposes folding for tests.
func (s *sqliteStore) forceFold() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.foldLocked()
}
