package histstore

// The embedded engine: a single-file store in pure Go following
// SQLite's WAL-mode discipline.
//
//	history.db       the main file: header + committed transaction
//	                 frames, rewritten (compacted) only by Prune
//	history.db-wal   the write-ahead file: appends group-commit here
//	                 (one fsync per batch), periodically folded into
//	                 the main file and truncated
//
// A transaction frame is `u32 len | u32 crc32c | payload`, payload a
// sequence of `u32 rowLen | rowJSON` rows — the frame either commits
// wholly or, torn by a crash, fails its CRC and is discarded wholly at
// open (the recovery contract: a torn tail truncates, interior frames
// are trusted). Folding copies the WAL's committed frames verbatim onto
// the main file before truncating the WAL, so a crash between the two
// leaves every row present in at least one file; the (tenant, epoch)
// key dedup at open keeps exactly one.
//
// Reads are served from an in-memory index (tenant → sorted epochs →
// row location); row bytes stay on disk and are pread on demand, so
// resident memory is ~48 bytes per row regardless of table size.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// fileMagic pins the on-disk format; a format change bumps the suffix
// so old readers reject new files instead of misparsing them.
const fileMagic = "TPHS0001"

const (
	frameHeaderSize     = 8 // u32 payload len + u32 crc32c
	defaultFlushEvery   = 200 * time.Millisecond
	defaultFlushBytes   = 256 << 10
	defaultFoldBytes    = 4 << 20
	maxFramePayload     = 16 << 20 // sanity bound when scanning frames
	compactFramePayload = 512 << 10
)

var sqliteCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// rowFile says which file (or the pending batch) holds a row's bytes.
type rowFile uint8

const (
	inDB rowFile = iota
	inWAL
	inPend
)

// rowLoc locates one committed row's JSON bytes: file + offset + length
// for durable rows, an index into the pending batch otherwise.
type rowLoc struct {
	file rowFile
	off  int64
	n    int32
}

// rowMeta is the resident index entry for one row.
type rowMeta struct {
	atNS int64 // Entry.At, for MaxAge pruning without a disk read
	loc  rowLoc
}

// pendRow is one staged row: its encoded bytes plus the index entry to
// re-point at the durable offset once the batch commits.
type pendRow struct {
	enc []byte
	rm  *rowMeta
}

// tenantIdx is one tenant's slice of the series.
type tenantIdx struct {
	epochs []int64 // sorted ascending
	rows   map[int64]*rowMeta
	bytes  uint64 // encoded size of live rows
}

// sqliteStore is the embedded engine behind "sqlite:" DSNs.
type sqliteStore struct {
	path    string
	walPath string
	opts    Options

	mu      sync.Mutex
	db      *os.File
	wal     *os.File
	dbSize  int64
	walSize int64
	idx     map[string]*tenantIdx
	pend    []pendRow // encoded rows staged for the next commit
	pendB   int
	closed  bool

	stats Stats

	stopCh chan struct{}
	doneCh chan struct{}
}

// openSQLite opens (creating if absent) the embedded store at path and
// replays both files into the resident index, truncating torn tails.
func openSQLite(path string, opts Options) (Store, error) {
	if path == "" {
		return nil, errors.New("histstore: sqlite DSN needs a file path")
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = defaultFlushEvery
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = defaultFlushBytes
	}
	if opts.FoldBytes <= 0 {
		opts.FoldBytes = defaultFoldBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	s := &sqliteStore{
		path:    path,
		walPath: path + "-wal",
		opts:    opts,
		idx:     make(map[string]*tenantIdx),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	// Leftover temp files from a crashed compaction are garbage: the
	// rename never happened, the live file is authoritative.
	if matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".history-*.tmp")); len(matches) > 0 {
		for _, m := range matches {
			_ = os.Remove(m)
		}
	}
	var err error
	if s.db, s.dbSize, err = s.openFile(s.path, inDB); err != nil {
		return nil, err
	}
	if s.wal, s.walSize, err = s.openFile(s.walPath, inWAL); err != nil {
		s.db.Close()
		return nil, err
	}
	if opts.FlushInterval > 0 {
		go s.flushLoop()
	} else {
		close(s.doneCh)
	}
	return s, nil
}

// openFile opens one of the two files, writing the header into a new
// file and otherwise replaying its frames into the index. A torn or
// corrupt tail is truncated away; rows whose (tenant, epoch) key is
// already indexed are skipped (first writer wins — the dedup that makes
// a crash between fold and WAL-truncate harmless).
func (s *sqliteStore) openFile(path string, file rowFile) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("histstore: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("histstore: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := f.Write([]byte(fileMagic)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("histstore: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("histstore: %w", err)
		}
		return f, int64(len(fileMagic)), nil
	}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != fileMagic {
		f.Close()
		return nil, 0, fmt.Errorf("histstore: %s is not a history store (bad magic)", path)
	}
	valid, err := s.replay(f, int64(len(fileMagic)), fi.Size(), file)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if valid < fi.Size() {
		// Torn or corrupt tail: everything before it replayed cleanly,
		// so truncate to the valid prefix and carry on.
		s.stats.OpenTornBytes += uint64(fi.Size() - valid)
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("histstore: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("histstore: %w", err)
		}
	}
	return f, valid, nil
}

// replay scans frames from off to size, indexing each row, and returns
// the end of the valid prefix.
func (s *sqliteStore) replay(f *os.File, off, size int64, file rowFile) (int64, error) {
	hdr := make([]byte, frameHeaderSize)
	for off+frameHeaderSize <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return off, nil // unreadable tail: distrust it
		}
		n := int64(binary.BigEndian.Uint32(hdr))
		wantCRC := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFramePayload || off+frameHeaderSize+n > size {
			return off, nil // torn frame
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHeaderSize); err != nil {
			return off, nil
		}
		if crc32.Checksum(payload, sqliteCastagnoli) != wantCRC {
			return off, nil // corrupt frame: stop trusting the file here
		}
		if err := s.indexFrame(payload, off+frameHeaderSize, file); err != nil {
			return off, err
		}
		off += frameHeaderSize + n
	}
	return off, nil
}

// indexFrame walks one committed frame's rows and indexes them.
func (s *sqliteStore) indexFrame(payload []byte, base int64, file rowFile) error {
	for pos := 0; pos < len(payload); {
		if pos+4 > len(payload) {
			return fmt.Errorf("histstore: frame row header overruns payload")
		}
		n := int(binary.BigEndian.Uint32(payload[pos:]))
		pos += 4
		if n <= 0 || pos+n > len(payload) {
			return fmt.Errorf("histstore: frame row overruns payload")
		}
		var e Entry
		if err := json.Unmarshal(payload[pos:pos+n], &e); err != nil {
			return fmt.Errorf("histstore: decoding row: %w", err)
		}
		s.indexRow(e, rowLoc{file: file, off: base + int64(pos), n: int32(n)}, len(payload[pos:pos+n]))
		pos += n
	}
	return nil
}

// indexRow inserts one row if its key is new, returning the index
// entry; duplicates keep the first-indexed copy and return nil.
func (s *sqliteStore) indexRow(e Entry, loc rowLoc, encLen int) *rowMeta {
	ti := s.idx[e.Tenant]
	if ti == nil {
		ti = &tenantIdx{rows: make(map[int64]*rowMeta)}
		s.idx[e.Tenant] = ti
	}
	if _, dup := ti.rows[e.Epoch]; dup {
		return nil
	}
	rm := &rowMeta{atNS: e.At.UnixNano(), loc: loc}
	ti.rows[e.Epoch] = rm
	i := sort.Search(len(ti.epochs), func(i int) bool { return ti.epochs[i] >= e.Epoch })
	ti.epochs = append(ti.epochs, 0)
	copy(ti.epochs[i+1:], ti.epochs[i:])
	ti.epochs[i] = e.Epoch
	ti.bytes += uint64(encLen)
	s.stats.Entries++
	s.stats.Bytes += uint64(encLen)
	return rm
}

// Append stages one row for the next group commit. Idempotent on
// (Tenant, Epoch): an existing key is counted as a dupe and ignored.
func (s *sqliteStore) Append(e Entry) error {
	if e.Tenant == "" {
		return errors.New("histstore: append needs a tenant")
	}
	enc, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("histstore: encoding row: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("histstore: store is closed")
	}
	rm := s.indexRow(e, rowLoc{file: inPend, off: int64(len(s.pend)), n: int32(len(enc))}, len(enc))
	if rm == nil {
		s.stats.Dupes++
		return nil
	}
	s.stats.Appends++
	s.pend = append(s.pend, pendRow{enc: enc, rm: rm})
	s.pendB += len(enc)
	if s.pendB >= s.opts.FlushBytes {
		return s.flushLocked()
	}
	return nil
}

// flushLocked commits the pending batch as one frame: append to the
// WAL, one fsync, then re-point the rows at their durable offsets. On
// failure the batch stays pending for the next attempt.
func (s *sqliteStore) flushLocked() error {
	if len(s.pend) == 0 {
		return nil
	}
	payload := make([]byte, 0, s.pendB+4*len(s.pend))
	for _, pr := range s.pend {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(pr.enc)))
		payload = append(payload, pr.enc...)
	}
	frame := make([]byte, 0, frameHeaderSize+len(payload))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload, sqliteCastagnoli))
	frame = append(frame, payload...)
	if _, err := s.wal.WriteAt(frame, s.walSize); err != nil {
		s.stats.AppendErrors++
		return fmt.Errorf("histstore: wal append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		s.stats.AppendErrors++
		return fmt.Errorf("histstore: wal fsync: %w", err)
	}
	// The frame is durable: re-point every pending row at its on-disk
	// bytes (a row pruned while pending just repoints a dead rowMeta —
	// its bytes stay dead until the next compaction).
	base := s.walSize + frameHeaderSize
	pos := int64(0)
	for _, pr := range s.pend {
		pr.rm.loc = rowLoc{file: inWAL, off: base + pos + 4, n: int32(len(pr.enc))}
		pos += 4 + int64(len(pr.enc))
	}
	s.walSize += int64(len(frame))
	s.pend = s.pend[:0]
	s.pendB = 0
	s.stats.Flushes++
	if s.walSize >= s.opts.FoldBytes {
		return s.foldLocked()
	}
	return nil
}

// foldLocked checkpoints the WAL into the main file: the WAL's frames
// are copied verbatim onto the main file's tail, the main file is
// fsynced, and only then is the WAL truncated — a crash between the
// two leaves duplicate rows that open-time dedup resolves.
func (s *sqliteStore) foldLocked() error {
	if s.walSize <= int64(len(fileMagic)) {
		return nil
	}
	n := s.walSize - int64(len(fileMagic))
	buf := make([]byte, n)
	if _, err := s.wal.ReadAt(buf, int64(len(fileMagic))); err != nil {
		return fmt.Errorf("histstore: fold read: %w", err)
	}
	if _, err := s.db.WriteAt(buf, s.dbSize); err != nil {
		return fmt.Errorf("histstore: fold write: %w", err)
	}
	if err := s.db.Sync(); err != nil {
		return fmt.Errorf("histstore: fold fsync: %w", err)
	}
	// Rows that lived in the WAL now live at a fixed translation of
	// their old offset.
	delta := s.dbSize - int64(len(fileMagic))
	for _, ti := range s.idx {
		for _, rm := range ti.rows {
			if rm.loc.file == inWAL {
				rm.loc = rowLoc{file: inDB, off: rm.loc.off + delta, n: rm.loc.n}
			}
		}
	}
	s.dbSize += n
	if err := s.wal.Truncate(int64(len(fileMagic))); err != nil {
		return fmt.Errorf("histstore: wal truncate: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	s.walSize = int64(len(fileMagic))
	s.stats.Folds++
	return nil
}

// readRow fetches one row's Entry.
func (s *sqliteStore) readRowLocked(rm *rowMeta) (Entry, error) {
	var raw []byte
	switch rm.loc.file {
	case inPend:
		raw = s.pend[rm.loc.off].enc
	case inWAL:
		raw = make([]byte, rm.loc.n)
		if _, err := s.wal.ReadAt(raw, rm.loc.off); err != nil {
			return Entry{}, fmt.Errorf("histstore: reading row: %w", err)
		}
	default:
		raw = make([]byte, rm.loc.n)
		if _, err := s.db.ReadAt(raw, rm.loc.off); err != nil {
			return Entry{}, fmt.Errorf("histstore: reading row: %w", err)
		}
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Entry{}, fmt.Errorf("histstore: decoding row: %w", err)
	}
	return e, nil
}

// Scan returns the tenant's rows in [SinceEpoch, UntilEpoch] oldest
// first, keeping the newest Limit when more match.
func (s *sqliteStore) Scan(tenant string, q Query) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Scans++
	ti := s.idx[tenant]
	if ti == nil {
		return nil, nil
	}
	lo := 0
	if q.SinceEpoch > 0 {
		lo = sort.Search(len(ti.epochs), func(i int) bool { return ti.epochs[i] >= q.SinceEpoch })
	}
	hi := len(ti.epochs)
	if q.UntilEpoch > 0 {
		hi = sort.Search(len(ti.epochs), func(i int) bool { return ti.epochs[i] > q.UntilEpoch })
	}
	if lo >= hi {
		return nil, nil
	}
	epochs := ti.epochs[lo:hi]
	if q.Limit > 0 && len(epochs) > q.Limit {
		epochs = epochs[len(epochs)-q.Limit:] // newest Limit, still oldest-first
	}
	out := make([]Entry, 0, len(epochs))
	for _, ep := range epochs {
		e, err := s.readRowLocked(ti.rows[ep])
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Tenants lists tenants with live rows.
func (s *sqliteStore) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.idx))
	for t, ti := range s.idx {
		if len(ti.epochs) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Prune drops rows beyond the retention policy and compacts the main
// file when anything was removed.
func (s *sqliteStore) Prune(policy Retention) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("histstore: store is closed")
	}
	removed := 0
	var cutoffNS int64
	if policy.MaxAge > 0 {
		cutoffNS = s.opts.Now().Add(-policy.MaxAge).UnixNano()
	}
	for _, ti := range s.idx {
		drop := 0
		if policy.MaxEntries > 0 && len(ti.epochs) > policy.MaxEntries {
			drop = len(ti.epochs) - policy.MaxEntries
		}
		if cutoffNS > 0 {
			aged := sort.Search(len(ti.epochs), func(i int) bool {
				return ti.rows[ti.epochs[i]].atNS >= cutoffNS
			})
			if aged > drop {
				drop = aged
			}
		}
		for _, ep := range ti.epochs[:drop] {
			rm := ti.rows[ep]
			ti.bytes -= uint64(rm.loc.n)
			s.stats.Bytes -= uint64(rm.loc.n)
			s.stats.Entries--
			delete(ti.rows, ep)
		}
		ti.epochs = append(ti.epochs[:0], ti.epochs[drop:]...)
		removed += drop
	}
	if removed == 0 {
		return 0, nil
	}
	s.stats.Pruned += uint64(removed)
	if err := s.compactLocked(); err != nil {
		return removed, err
	}
	return removed, nil
}

// compactLocked rewrites the main file with only the live rows (temp
// file → fsync → rename → directory fsync) and truncates the WAL.
// Pending rows are flushed first so the compacted pair is complete.
func (s *sqliteStore) compactLocked() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".history-*.tmp")
	if err != nil {
		return fmt.Errorf("histstore: compact: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write([]byte(fileMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("histstore: compact: %w", err)
	}
	// Deterministic layout: tenants sorted, epochs ascending, frames
	// bounded so open never buffers more than one frame.
	tenants := make([]string, 0, len(s.idx))
	for t := range s.idx {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	newOff := int64(len(fileMagic))
	var payload []byte
	type pendingLoc struct {
		rm  *rowMeta
		off int64 // relative to the frame payload start
		n   int32
	}
	var frameRows []pendingLoc
	newLocs := make(map[*rowMeta]rowLoc)
	writeFrame := func() error {
		if len(payload) == 0 {
			return nil
		}
		frame := make([]byte, 0, frameHeaderSize+len(payload))
		frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
		frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload, sqliteCastagnoli))
		frame = append(frame, payload...)
		if _, err := tmp.Write(frame); err != nil {
			return fmt.Errorf("histstore: compact: %w", err)
		}
		for _, pl := range frameRows {
			newLocs[pl.rm] = rowLoc{file: inDB, off: newOff + frameHeaderSize + pl.off, n: pl.n}
		}
		newOff += int64(len(frame))
		payload = payload[:0]
		frameRows = frameRows[:0]
		return nil
	}
	for _, t := range tenants {
		ti := s.idx[t]
		for _, ep := range ti.epochs {
			rm := ti.rows[ep]
			e, err := s.readRowLocked(rm)
			if err != nil {
				tmp.Close()
				return err
			}
			enc, err := json.Marshal(e)
			if err != nil {
				tmp.Close()
				return fmt.Errorf("histstore: compact: %w", err)
			}
			payload = binary.BigEndian.AppendUint32(payload, uint32(len(enc)))
			frameRows = append(frameRows, pendingLoc{rm: rm, off: int64(len(payload)), n: int32(len(enc))})
			payload = append(payload, enc...)
			if len(payload) >= compactFramePayload {
				if err := writeFrame(); err != nil {
					tmp.Close()
					return err
				}
			}
		}
	}
	if err := writeFrame(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("histstore: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("histstore: compact: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		return fmt.Errorf("histstore: compact rename: %w", err)
	}
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return err
	}
	// Swap the handle to the new file and drop the (now wholly folded)
	// WAL contents.
	newDB, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("histstore: compact reopen: %w", err)
	}
	s.db.Close()
	s.db = newDB
	s.dbSize = newOff
	for rm, loc := range newLocs {
		rm.loc = loc
	}
	if err := s.wal.Truncate(int64(len(fileMagic))); err != nil {
		return fmt.Errorf("histstore: compact wal truncate: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	s.walSize = int64(len(fileMagic))
	s.stats.Compactions++
	return nil
}

// Sync commits any staged rows.
func (s *sqliteStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.flushLocked()
}

// Stats snapshots the counters.
func (s *sqliteStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes, stops the background flusher, and closes the files.
func (s *sqliteStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	<-s.doneCh
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if cerr := s.db.Close(); err == nil {
		err = cerr
	}
	return err
}

// flushLoop is the group-commit ticker: staged appends become durable
// at least every FlushInterval without any caller paying the fsync.
func (s *sqliteStore) flushLoop() {
	defer close(s.doneCh)
	ticker := time.NewTicker(s.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.flushLocked(); err != nil {
					fmt.Fprintln(os.Stderr, "histstore:", err)
				}
			}
			s.mu.Unlock()
		}
	}
}

// syncDir fsyncs a directory so a rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
