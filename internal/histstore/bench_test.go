package histstore

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// benchTable is sized like a real published tier table (a handful of
// tiers with prices and boundaries).
var benchTable = json.RawMessage(`{"epoch":1,"tiers":[` +
	`{"lo":0,"hi":10,"price":9.42},{"lo":10,"hi":100,"price":6.18},` +
	`{"lo":100,"hi":1000,"price":3.77},{"lo":1000,"hi":0,"price":1.93}],` +
	`"p0":12.5,"duration_sec":300}`)

func BenchmarkHistoryAppend(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "h.db"), Options{FlushInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	at := time.Unix(1700000000, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(Entry{
			Tenant: "default", Epoch: int64(i + 1), ConfigEpoch: 1,
			At: at, Table: benchTable,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkHistoryAppendDurable(b *testing.B) {
	// Every append group-commits (FlushBytes=1): the per-batch fsync
	// cost with batch size 1, the worst case for the commit path.
	s, err := Open(filepath.Join(b.TempDir(), "h.db"), Options{FlushInterval: -1, FlushBytes: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	at := time.Unix(1700000000, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(Entry{
			Tenant: "default", Epoch: int64(i + 1), ConfigEpoch: 1,
			At: at, Table: benchTable,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistoryScan(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "h.db"), Options{FlushInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	at := time.Unix(1700000000, 0).UTC()
	for ep := int64(1); ep <= 10000; ep++ {
		if err := s.Append(Entry{Tenant: "default", Epoch: ep, ConfigEpoch: 1, At: at, Table: benchTable}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Scan("default", Query{SinceEpoch: 4000, UntilEpoch: 9000, Limit: 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 100 {
			b.Fatalf("scan returned %d rows", len(got))
		}
	}
}

func BenchmarkHistoryOpen10k(b *testing.B) {
	path := filepath.Join(b.TempDir(), "h.db")
	s, err := Open(path, Options{FlushInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	at := time.Unix(1700000000, 0).UTC()
	for ep := int64(1); ep <= 10000; ep++ {
		if err := s.Append(Entry{Tenant: "default", Epoch: ep, ConfigEpoch: 1, At: at, Table: benchTable}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(path, Options{FlushInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Entries != 10000 {
			b.Fatalf("Entries = %d", st.Entries)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
