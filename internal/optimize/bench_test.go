package optimize

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchVal builds prefix sums for a cheap convex member of the objective
// family: val(lo, hi) = W²/CW, i.e. W·g(C) with g(C) = 1/C strictly
// convex on C > 0. A call costs two loads and three flops, so the
// benchmark measures the DP itself rather than math.Pow/Exp, and the
// value still satisfies the concave-Monge condition the monotone solver
// requires.
func benchVal(n int, seed int64) BlockValue {
	r := rand.New(rand.NewSource(seed))
	prefW := make([]float64, n+1)
	prefCW := make([]float64, n+1)
	for i := 0; i < n; i++ {
		w := 0.1 + r.Float64()
		c := 0.1 + r.Float64()*10
		prefW[i+1] = prefW[i] + w
		prefCW[i+1] = prefCW[i] + c*w
	}
	return func(lo, hi int) float64 {
		w := prefW[hi] - prefW[lo]
		return w * w / (prefCW[hi] - prefCW[lo])
	}
}

// BenchmarkContiguousDP times both solvers across the n × B grid the
// ISSUE tracks. The monotone rows should sit ≥ 5× below the quadratic
// rows at n=10000 with allocs/op flat or lower (the scratch pool makes
// repeated monotone solves allocate only the returned blocks).
func BenchmarkContiguousDP(b *testing.B) {
	for _, s := range solvers() {
		for _, n := range []int{100, 1000, 10000} {
			val := benchVal(n, int64(n))
			for _, maxBlocks := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10} {
				b.Run(fmt.Sprintf("%s/n=%d/B=%d", s.name, n, maxBlocks), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := s.solve(n, maxBlocks, val); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkDPScratchSolve times the near-zero-alloc path a caller holding
// its own scratch sees (the repricer's ticks, an experiment worker's
// strategy × B fan-out): only the returned blocks allocate.
func BenchmarkDPScratchSolve(b *testing.B) {
	n := 1000
	val := benchVal(n, 7)
	s := GetDPScratch()
	defer PutDPScratch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(n, 6, val); err != nil {
			b.Fatal(err)
		}
	}
}
