package optimize

import (
	"errors"
	"math"
)

// GradientConfig tunes GradientAscent. Zero values select sensible
// defaults.
type GradientConfig struct {
	// Step is the initial step size (default 1.0); each iteration
	// backtracks from it until the objective improves.
	Step float64
	// Tol stops the ascent when the objective improves by less than Tol
	// between iterations (default 1e-10).
	Tol float64
	// MaxIter bounds the number of ascent iterations (default 10000).
	MaxIter int
	// Lower bounds every coordinate from below (projection); default
	// −Inf means unconstrained.
	Lower float64
	// FDStep is the central finite-difference step for the numeric
	// gradient (default 1e-6, scaled by max(1, |x_i|)).
	FDStep float64
}

func (c *GradientConfig) defaults() {
	if c.Step == 0 {
		c.Step = 1.0
	}
	if c.Tol == 0 {
		c.Tol = 1e-10
	}
	if c.MaxIter == 0 {
		c.MaxIter = 10000
	}
	if c.Lower == 0 {
		c.Lower = math.Inf(-1)
	}
	if c.FDStep == 0 {
		c.FDStep = 1e-6
	}
}

// GradientAscent maximizes f starting from x0 using a numeric gradient
// with backtracking line search and projection onto x ≥ cfg.Lower. This is
// the general-purpose heuristic the paper describes for finding logit
// profit-maximizing prices ("a heuristic based on gradient descent that
// starts from a fixed set of prices and greedily updates them towards the
// optimum", §3.2.2); the econ package normally uses the faster
// equal-markup fixed point, and the two are cross-checked in tests.
func GradientAscent(f func([]float64) float64, x0 []float64, cfg GradientConfig) ([]float64, float64, error) {
	if len(x0) == 0 {
		return nil, 0, errors.New("optimize: empty start point")
	}
	cfg.defaults()
	x := append([]float64(nil), x0...)
	project(x, cfg.Lower)
	fx := f(x)
	if math.IsNaN(fx) {
		return nil, 0, errors.New("optimize: objective is NaN at start")
	}
	grad := make([]float64, len(x))
	trial := make([]float64, len(x))
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Central-difference gradient.
		var gnorm float64
		for i := range x {
			h := cfg.FDStep * math.Max(1, math.Abs(x[i]))
			orig := x[i]
			x[i] = orig + h
			fp := f(x)
			x[i] = orig - h
			fm := f(x)
			x[i] = orig
			grad[i] = (fp - fm) / (2 * h)
			gnorm += grad[i] * grad[i]
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			return x, fx, nil
		}
		// Backtracking line search along the NORMALIZED ascent direction.
		// Raw-gradient steps are catastrophic for logit profit surfaces:
		// the gradient at a cheap starting point is huge, a single step
		// overshoots onto the exponentially flat region where finite
		// differences read zero, and the ascent strands there.
		step := cfg.Step
		improved := false
		for back := 0; back < 60; back++ {
			for i := range x {
				trial[i] = x[i] + step*grad[i]/gnorm
			}
			project(trial, cfg.Lower)
			ft := f(trial)
			if ft > fx {
				copy(x, trial)
				improvedBy := ft - fx
				fx = ft
				improved = true
				if improvedBy < cfg.Tol {
					return x, fx, nil
				}
				break
			}
			step /= 2
		}
		if !improved {
			return x, fx, nil
		}
	}
	return x, fx, nil
}

// project clamps every coordinate of x to at least lower.
func project(x []float64, lower float64) {
	for i := range x {
		if x[i] < lower {
			x[i] = lower
		}
	}
}
