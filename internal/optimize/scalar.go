package optimize

import (
	"errors"
	"math"
)

// Bisect finds a root of f on [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs (or one of them be zero). It returns the midpoint of
// the final bracket after the interval shrinks below tol or maxIter
// iterations elapse.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	if !(lo < hi) {
		return 0, errors.New("optimize: need lo < hi")
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("optimize: root not bracketed")
	}
	for i := 0; i < maxIter && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// GoldenSection maximizes a unimodal f on [lo, hi], returning the argmax
// and maximum. For non-unimodal f it returns a local maximum.
func GoldenSection(f func(float64) float64, lo, hi, tol float64, maxIter int) (x, fx float64, err error) {
	if !(lo < hi) {
		return 0, 0, errors.New("optimize: need lo < hi")
	}
	const invPhi = 0.6180339887498949 // (√5 − 1)/2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < maxIter && b-a > tol; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x), nil
}

// FixedPoint iterates x ← (1−damping)·x + damping·g(x) from x0 until
// successive iterates differ by less than tol, returning the final x.
// damping must lie in (0, 1].
func FixedPoint(g func(float64) float64, x0, damping, tol float64, maxIter int) (float64, error) {
	if !(damping > 0 && damping <= 1) {
		return 0, errors.New("optimize: damping must be in (0, 1]")
	}
	x := x0
	for i := 0; i < maxIter; i++ {
		next := (1-damping)*x + damping*g(x)
		if math.IsNaN(next) || math.IsInf(next, 0) {
			return 0, errors.New("optimize: fixed-point iteration diverged")
		}
		if math.Abs(next-x) < tol {
			return next, nil
		}
		x = next
	}
	return x, errors.New("optimize: fixed point did not converge")
}
