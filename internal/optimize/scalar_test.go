package optimize

import (
	"math"
	"testing"
)

func TestBisectFindsRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root = %v, want √2", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if root, err := Bisect(f, 0, 1, 1e-12, 100); err != nil || root != 0 {
		t.Fatalf("root = %v err = %v, want lo endpoint", root, err)
	}
	if root, err := Bisect(f, -1, 0, 1e-12, 100); err != nil || root != 0 {
		t.Fatalf("root = %v err = %v, want hi endpoint", root, err)
	}
}

func TestBisectErrors(t *testing.T) {
	f := func(x float64) float64 { return 1 }
	if _, err := Bisect(f, 0, 1, 1e-12, 100); err == nil {
		t.Error("expected bracketing error")
	}
	if _, err := Bisect(f, 1, 0, 1e-12, 100); err == nil {
		t.Error("expected lo < hi error")
	}
}

func TestGoldenSectionMaximizes(t *testing.T) {
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	x, fx, err := GoldenSection(f, 0, 10, 1e-10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-3) > 1e-6 || math.Abs(fx) > 1e-10 {
		t.Fatalf("argmax = %v (f = %v), want 3 (0)", x, fx)
	}
}

func TestGoldenSectionErrors(t *testing.T) {
	if _, _, err := GoldenSection(func(x float64) float64 { return x }, 1, 0, 1e-9, 10); err == nil {
		t.Error("expected lo < hi error")
	}
}

func TestFixedPointConverges(t *testing.T) {
	// x = cos(x) has a unique fixed point ≈ 0.739085.
	x, err := FixedPoint(math.Cos, 0.5, 1.0, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Fatalf("fixed point = %v", x)
	}
}

func TestFixedPointDampingStabilizes(t *testing.T) {
	// g(x) = 2.8·x·(1−x) (logistic map) oscillates undamped at some
	// starts but converges with damping.
	g := func(x float64) float64 { return 2.8 * x * (1 - x) }
	x, err := FixedPoint(g, 0.2, 0.5, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1/2.8
	if math.Abs(x-want) > 1e-9 {
		t.Fatalf("fixed point = %v, want %v", x, want)
	}
}

func TestFixedPointErrors(t *testing.T) {
	if _, err := FixedPoint(math.Cos, 0, 0, 1e-9, 10); err == nil {
		t.Error("expected damping error")
	}
	div := func(x float64) float64 { return math.Inf(1) }
	if _, err := FixedPoint(div, 1, 1, 1e-9, 10); err == nil {
		t.Error("expected divergence error")
	}
	slow := func(x float64) float64 { return x + 1 }
	if _, err := FixedPoint(slow, 0, 1, 1e-9, 5); err == nil {
		t.Error("expected non-convergence error")
	}
}

func TestGradientAscentQuadratic(t *testing.T) {
	// f(x, y) = −(x−1)² − 2(y+2)², max at (1, −2).
	f := func(x []float64) float64 {
		return -(x[0]-1)*(x[0]-1) - 2*(x[1]+2)*(x[1]+2)
	}
	x, fx, err := GradientAscent(f, []float64{10, 10}, GradientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]+2) > 1e-3 {
		t.Fatalf("argmax = %v, want (1, -2)", x)
	}
	if fx < -1e-5 {
		t.Fatalf("max value = %v, want ~0", fx)
	}
}

func TestGradientAscentRespectsLowerBound(t *testing.T) {
	// Unconstrained max at x = −5; with Lower = 0 the solution is 0.
	f := func(x []float64) float64 { return -(x[0] + 5) * (x[0] + 5) }
	x, _, err := GradientAscent(f, []float64{3}, GradientConfig{Lower: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 0 || x[0] > 1e-3 {
		t.Fatalf("bounded argmax = %v, want ~0", x[0])
	}
}

func TestGradientAscentErrors(t *testing.T) {
	if _, _, err := GradientAscent(func([]float64) float64 { return 0 }, nil, GradientConfig{}); err == nil {
		t.Error("expected error for empty start")
	}
	if _, _, err := GradientAscent(func([]float64) float64 { return math.NaN() },
		[]float64{1}, GradientConfig{}); err == nil {
		t.Error("expected error for NaN objective")
	}
}
