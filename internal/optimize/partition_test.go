package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func TestContiguousDPSingleBlock(t *testing.T) {
	val := func(lo, hi int) float64 { return float64(hi - lo) }
	blocks, total, err := ContiguousDP(5, 1, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0] != [2]int{0, 5} {
		t.Fatalf("blocks = %v", blocks)
	}
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
}

func TestContiguousDPPrefersSplitting(t *testing.T) {
	// val rewards small blocks quadratically: splitting always wins, so
	// with maxBlocks = n the optimum is all singletons.
	val := func(lo, hi int) float64 { return -float64((hi - lo) * (hi - lo)) }
	blocks, total, err := ContiguousDP(4, 4, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("blocks = %v, want 4 singletons", blocks)
	}
	if total != -4 {
		t.Fatalf("total = %v, want -4", total)
	}
}

func TestContiguousDPMayUseFewerBlocks(t *testing.T) {
	// Merging always wins here (superadditive value), so the DP should
	// return a single block even though 3 are allowed.
	val := func(lo, hi int) float64 { return float64((hi - lo) * (hi - lo)) }
	blocks, total, err := ContiguousDP(6, 3, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %v, want one block", blocks)
	}
	if total != 36 {
		t.Fatalf("total = %v, want 36", total)
	}
}

func TestContiguousDPBlocksCoverInOrder(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = r.Float64()
	}
	val := func(lo, hi int) float64 {
		// Arbitrary nonlinear block value.
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return math.Sin(s) + s*s
	}
	for b := 1; b <= 6; b++ {
		blocks, _, err := ContiguousDP(30, b, val)
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) > b {
			t.Fatalf("got %d blocks, max %d", len(blocks), b)
		}
		prev := 0
		for _, blk := range blocks {
			if blk[0] != prev || blk[1] <= blk[0] {
				t.Fatalf("blocks not a contiguous cover: %v", blocks)
			}
			prev = blk[1]
		}
		if prev != 30 {
			t.Fatalf("blocks do not cover: %v", blocks)
		}
	}
}

func TestContiguousDPErrors(t *testing.T) {
	val := func(lo, hi int) float64 { return 0 }
	if _, _, err := ContiguousDP(0, 1, val); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, _, err := ContiguousDP(3, 0, val); err == nil {
		t.Error("expected error for maxBlocks = 0")
	}
}

func TestBlocksToPartition(t *testing.T) {
	order := []int{4, 2, 0, 1, 3}
	blocks := [][2]int{{0, 2}, {2, 5}}
	p := BlocksToPartition(blocks, order)
	if len(p) != 2 {
		t.Fatalf("p = %v", p)
	}
	if p[0][0] != 4 || p[0][1] != 2 {
		t.Fatalf("p[0] = %v, want [4 2]", p[0])
	}
	if len(p[1]) != 3 || p[1][0] != 0 || p[1][2] != 3 {
		t.Fatalf("p[1] = %v, want [0 1 3]", p[1])
	}
}

func TestEnumeratePartitionsCounts(t *testing.T) {
	// Bell-number style counts, restricted to ≤ maxBlocks blocks.
	cases := []struct {
		n, maxBlocks int
		want         int
	}{
		{1, 1, 1},
		{3, 3, 5},   // Bell(3)
		{4, 4, 15},  // Bell(4)
		{4, 2, 8},   // S(4,1)+S(4,2) = 1+7
		{5, 3, 41},  // 1+15+25
		{6, 6, 203}, // Bell(6)
	}
	for _, c := range cases {
		count := 0
		err := EnumeratePartitions(c.n, c.maxBlocks, func(p [][]int) bool {
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != c.want {
			t.Errorf("n=%d maxBlocks=%d: count = %d, want %d",
				c.n, c.maxBlocks, count, c.want)
		}
		// CountPartitions must agree with the enumeration.
		n, err := CountPartitions(c.n, c.maxBlocks)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(c.want) {
			t.Errorf("CountPartitions(%d,%d) = %d, want %d",
				c.n, c.maxBlocks, n, c.want)
		}
	}
}

func TestEnumeratePartitionsValidity(t *testing.T) {
	err := EnumeratePartitions(5, 3, func(p [][]int) bool {
		seen := make(map[int]bool)
		if len(p) > 3 {
			t.Fatalf("too many blocks: %v", p)
		}
		for _, block := range p {
			if len(block) == 0 {
				t.Fatalf("empty block: %v", p)
			}
			for _, i := range block {
				if seen[i] {
					t.Fatalf("duplicate item %d: %v", i, p)
				}
				seen[i] = true
			}
		}
		if len(seen) != 5 {
			t.Fatalf("partition does not cover: %v", p)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnumeratePartitionsEarlyStop(t *testing.T) {
	count := 0
	err := EnumeratePartitions(6, 6, func(p [][]int) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEnumeratePartitionsGuards(t *testing.T) {
	yield := func([][]int) bool { return true }
	if err := EnumeratePartitions(0, 1, yield); err == nil {
		t.Error("expected error for n = 0")
	}
	if err := EnumeratePartitions(3, 0, yield); err == nil {
		t.Error("expected error for maxBlocks = 0")
	}
	if err := EnumeratePartitions(25, 3, yield); err == nil {
		t.Error("expected refusal for huge n")
	}
}

// TestContiguityTheorem validates the claim DESIGN.md leans on: for
// objectives Σ_b W_b·g(C_b), with W_b the block weight sum and C_b the
// weighted mean of per-item costs, and g strictly convex, the best
// partition over ALL set partitions is attained by one contiguous in cost
// order. Both demand models' optimal-bundling objectives have this form
// (g(C) = C^{1−α} for CED, g(C) = e^{−αC} for logit's profit-monotone
// surrogate).
func TestContiguityTheorem(t *testing.T) {
	type objective struct {
		name string
		g    func(float64) float64
	}
	objectives := []objective{
		{"ced", func(c float64) float64 { return math.Pow(c, 1-1.7) }},
		{"logit", func(c float64) float64 { return math.Exp(-1.1 * c) }},
	}
	for _, obj := range objectives {
		for seed := int64(0); seed < 30; seed++ {
			r := rand.New(rand.NewSource(seed))
			n := 5 + r.Intn(4) // 5..8 items
			w := make([]float64, n)
			c := make([]float64, n)
			for i := range w {
				w[i] = 0.1 + r.Float64()*5
				c[i] = 0.1 + r.Float64()*10
			}
			value := func(block []int) float64 {
				var sw, swc float64
				for _, i := range block {
					sw += w[i]
					swc += w[i] * c[i]
				}
				return sw * obj.g(swc/sw)
			}
			maxBlocks := 1 + r.Intn(4)
			// Exhaustive best over all set partitions.
			bestExact := math.Inf(-1)
			err := EnumeratePartitions(n, maxBlocks, func(p [][]int) bool {
				var total float64
				for _, block := range p {
					total += value(block)
				}
				if total > bestExact {
					bestExact = total
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			// DP over cost-sorted contiguous partitions.
			order := make([]int, n)
			for i := range order {
				order[i] = i
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if c[order[j]] < c[order[i]] {
						order[i], order[j] = order[j], order[i]
					}
				}
			}
			val := func(lo, hi int) float64 {
				return value(order[lo:hi])
			}
			_, bestDP, err := ContiguousDP(n, maxBlocks, val)
			if err != nil {
				t.Fatal(err)
			}
			if bestDP < bestExact-1e-9*math.Abs(bestExact) {
				t.Fatalf("%s seed %d: contiguous DP %v < exhaustive %v",
					obj.name, seed, bestDP, bestExact)
			}
		}
	}
}
