package optimize

import (
	"errors"
	"math"
	"sync"
)

// This file implements the divide-and-conquer monotone optimization of the
// contiguous-partition DP. Both demand models' bundling objectives have
// block values of the form
//
//	val(lo, hi) = W(lo,hi) · g(C(lo,hi))
//
// with W a positive block weight, C the W-weighted mean cost of the block
// over a cost-sorted order, and g strictly convex — the same structure
// that makes an optimal partition contiguous in cost order (DESIGN.md §4).
// That structure additionally satisfies the concave-Monge (inverse
// quadrangle) inequality
//
//	val(a, c) + val(b, d) ≥ val(a, d) + val(b, c)   for a ≤ b ≤ c ≤ d
//
// so in every DP layer the optimal split index i*(j) of
// best[b][j] = max_i best[b-1][i] + val(i, j) is non-decreasing in j
// (total monotonicity). The classic divide-and-conquer optimization then
// evaluates each layer in O(n log n) instead of O(n²): solve the middle
// column jm by a linear scan of its feasible split range, and recurse on
// the two halves with the split range pinched by the optimum found. The
// property tests cross-check this solver against the quadratic reference
// DP and exhaustive set-partition enumeration on the full objective
// family, including degenerate and tie-heavy instances.

// DPScratch holds the flat working tables of ContiguousDPMonotone so that
// repeated solves — the online repricer's periodic ticks, the experiment
// engine's strategy × bundle-count fan-out — allocate (almost) nothing.
// The zero value is ready to use; tables grow on demand and are retained
// between solves. A DPScratch is not safe for concurrent use; use one per
// goroutine or borrow from the package pool via ContiguousDPMonotone.
type DPScratch struct {
	prev, curr []float64 // rolling DP rows, length n+1
	cut        []int32   // maxBlocks rows × (n+1) cols: last-block starts
	layerBest  []float64 // best[b][n] per layer, for the ≤ maxBlocks choice
}

// resize grows the tables to fit an (n, maxBlocks) instance, reusing the
// existing capacity whenever it suffices.
func (s *DPScratch) resize(n, maxBlocks int) {
	rowLen := n + 1
	if cap(s.prev) < rowLen {
		s.prev = make([]float64, rowLen)
		s.curr = make([]float64, rowLen)
	}
	s.prev = s.prev[:rowLen]
	s.curr = s.curr[:rowLen]
	if cap(s.cut) < maxBlocks*rowLen {
		s.cut = make([]int32, maxBlocks*rowLen)
	}
	s.cut = s.cut[:maxBlocks*rowLen]
	if cap(s.layerBest) < maxBlocks {
		s.layerBest = make([]float64, maxBlocks)
	}
	s.layerBest = s.layerBest[:maxBlocks]
}

// dpScratchPool shares scratch across ContiguousDPMonotone callers. A
// sync.Pool is per-P cached, so the experiment engine's bounded worker
// pool and the repricer's tick loop each effectively keep their own warm
// tables without any coordination.
var dpScratchPool = sync.Pool{New: func() any { return new(DPScratch) }}

// GetDPScratch borrows a scratch from the package pool. Pair with
// PutDPScratch when done; callers that solve in a tight loop can instead
// hold one DPScratch for the loop's lifetime.
func GetDPScratch() *DPScratch { return dpScratchPool.Get().(*DPScratch) }

// PutDPScratch returns a scratch to the package pool.
func PutDPScratch(s *DPScratch) { dpScratchPool.Put(s) }

// ContiguousDPMonotone solves the same problem as ContiguousDP — the
// contiguous partition of 0..n-1 into at most maxBlocks non-empty blocks
// maximizing the sum of block values — in O(n·maxBlocks·log n) by
// divide-and-conquer monotone optimization, using pooled scratch tables.
//
// It requires val to satisfy the concave-Monge condition documented above,
// which holds for every objective in this repository (both demand models'
// block values over cost order). For an arbitrary val that violates the
// condition, use the quadratic ContiguousDP; the property tests keep the
// two in agreement on the supported objective family.
func ContiguousDPMonotone(n, maxBlocks int, val BlockValue) ([][2]int, float64, error) {
	s := GetDPScratch()
	defer PutDPScratch(s)
	return s.Solve(n, maxBlocks, val)
}

// Solve runs the divide-and-conquer DP in this scratch's tables. The
// returned blocks are freshly allocated (so they may be retained); every
// other byte of working state lives in the scratch.
func (s *DPScratch) Solve(n, maxBlocks int, val BlockValue) ([][2]int, float64, error) {
	if n <= 0 {
		return nil, 0, errors.New("optimize: n must be positive")
	}
	if maxBlocks <= 0 {
		return nil, 0, errors.New("optimize: maxBlocks must be positive")
	}
	if maxBlocks > n {
		maxBlocks = n
	}
	s.resize(n, maxBlocks)
	rowLen := n + 1
	negInf := math.Inf(-1)

	// Layer 0: one block over the first j items.
	prev, curr := s.prev, s.curr
	prev[0] = negInf
	row := s.cut[:rowLen]
	for j := 1; j <= n; j++ {
		prev[j] = val(0, j)
		row[j] = 0
	}
	s.layerBest[0] = prev[n]

	// Layers 1..maxBlocks-1: divide-and-conquer over the column range.
	for b := 1; b < maxBlocks; b++ {
		row = s.cut[b*rowLen : (b+1)*rowLen]
		for j := 0; j <= b; j++ {
			curr[j] = negInf // fewer items than blocks: infeasible
		}
		solveLayer(b, n, val, prev, curr, row)
		s.layerBest[b] = curr[n]
		prev, curr = curr, prev
	}

	// Allow fewer than maxBlocks blocks: best over block counts, smallest
	// count winning ties (matching the quadratic reference).
	bestB, bestV := 0, s.layerBest[0]
	for b := 1; b < maxBlocks; b++ {
		if s.layerBest[b] > bestV {
			bestB, bestV = b, s.layerBest[b]
		}
	}

	blocks := make([][2]int, bestB+1)
	j := n
	for b := bestB; b >= 0; b-- {
		i := int(s.cut[b*rowLen+j])
		blocks[b] = [2]int{i, j}
		j = i
	}
	return blocks, bestV, nil
}

// solveLayer fills curr[j] = max_{i ∈ [b, j-1]} prev[i] + val(i, j) for
// every j in [b+1, n], exploiting the monotonicity of the argmax: the
// middle column's optimum splits the feasible i-range for the two halves.
// Ties in the scan resolve to the smallest i (strict >), matching the
// quadratic reference DP's ascending inner loop.
func solveLayer(b, n int, val BlockValue, prev, curr []float64, cutRow []int32) {
	// Feasibility invariant: prev[i] is finite exactly for i ≥ b (b blocks
	// need at least b items), and every recursive call keeps ilo ≤ jlo-1,
	// so the scan range [ilo, min(ihi, jm-1)] is never empty.
	var rec func(jlo, jhi, ilo, ihi int)
	rec = func(jlo, jhi, ilo, ihi int) {
		if jlo > jhi {
			return
		}
		jm := jlo + (jhi-jlo)/2
		top := ihi
		if top > jm-1 {
			top = jm - 1
		}
		bi := ilo
		bv := prev[ilo] + val(ilo, jm)
		for i := ilo + 1; i <= top; i++ {
			if v := prev[i] + val(i, jm); v > bv {
				bv, bi = v, i
			}
		}
		curr[jm] = bv
		cutRow[jm] = int32(bi)
		rec(jlo, jm-1, ilo, bi)
		rec(jm+1, jhi, bi, ihi)
	}
	rec(b+1, n, b, n-1)
}
