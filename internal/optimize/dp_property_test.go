package optimize

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These property tests cross-check ContiguousDP against the exact
// set-partition enumerator on small random instances with the objective
// family both demand models reduce to (DESIGN.md §4):
//
//	value(block) = W(block) · g(weighted mean cost of block)
//
// with g strictly convex. For such objectives an optimal partition is
// contiguous in cost order, so the DP over the sorted order must attain
// the exhaustive optimum over ALL set partitions — not just the best
// contiguous one.

// partitionObjective evaluates one instance: weights w > 0, costs c, and
// a convex transform g. It exposes the block value on arbitrary index
// sets (for the enumerator) and on contiguous ranges of a sorted order
// (for the DP).
type partitionObjective struct {
	w, c []float64
	g    func(float64) float64
}

func (o partitionObjective) setValue(block []int) float64 {
	var wSum, cwSum float64
	for _, i := range block {
		wSum += o.w[i]
		cwSum += o.c[i] * o.w[i]
	}
	return wSum * o.g(cwSum/wSum)
}

// costOrder returns indices sorted ascending by cost (ties by index, as
// the bundling package sorts).
func (o partitionObjective) costOrder() []int {
	order := make([]int, len(o.c))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return o.c[order[a]] < o.c[order[b]] })
	return order
}

// solver abstracts over the quadratic reference DP and the
// divide-and-conquer monotone DP so every property test runs both.
type solver struct {
	name  string
	solve func(n, maxBlocks int, val BlockValue) ([][2]int, float64, error)
}

func solvers() []solver {
	return []solver{
		{"quadratic", ContiguousDP},
		{"monotone", ContiguousDPMonotone},
	}
}

// dpSolve solves the instance with the given solver over cost order and
// validates the reported total against the reconstructed blocks.
func (o partitionObjective) dpSolve(t *testing.T, s solver, maxBlocks int) ([][2]int, float64) {
	t.Helper()
	order := o.costOrder()
	val := func(lo, hi int) float64 {
		return o.setValue(order[lo:hi])
	}
	blocks, total, err := s.solve(len(o.w), maxBlocks, val)
	if err != nil {
		t.Fatal(err)
	}
	// The reported total must equal the sum of the reconstructed blocks,
	// and the blocks must tile [0, n) in order.
	var check float64
	prev := 0
	for _, b := range blocks {
		if b[0] != prev || b[1] <= b[0] {
			t.Fatalf("%s: blocks %v do not tile [0,%d)", s.name, blocks, len(o.w))
		}
		prev = b[1]
		check += o.setValue(order[b[0]:b[1]])
	}
	if prev != len(o.w) {
		t.Fatalf("%s: blocks %v do not cover [0,%d)", s.name, blocks, len(o.w))
	}
	if math.Abs(check-total) > 1e-9*(1+math.Abs(total)) {
		t.Fatalf("%s: DP total %v does not match reconstructed blocks' value %v", s.name, total, check)
	}
	return blocks, total
}

// dpBest solves the instance with the quadratic reference DP over cost
// order (the historical oracle the exhaustive checks compare against).
func (o partitionObjective) dpBest(t *testing.T, maxBlocks int) float64 {
	t.Helper()
	_, total := o.dpSolve(t, solvers()[0], maxBlocks)
	return total
}

// exhaustiveBest enumerates every set partition into at most maxBlocks
// blocks and returns the best objective value.
func (o partitionObjective) exhaustiveBest(t *testing.T, maxBlocks int) float64 {
	t.Helper()
	best := math.Inf(-1)
	err := EnumeratePartitions(len(o.w), maxBlocks, func(p [][]int) bool {
		var total float64
		for _, block := range p {
			total += o.setValue(block)
		}
		if total > best {
			best = total
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return best
}

// convexTransforms mirrors the two demand models' g: CED's C^{1−α}
// (α > 1) and logit's e^{−αC}, plus a plain quadratic.
var convexTransforms = []struct {
	name string
	g    func(float64) float64
}{
	{"ced-like pow", func(x float64) float64 { return math.Pow(x, -0.5) }},
	{"logit-like exp", func(x float64) float64 { return math.Exp(-1.1 * x) }},
	{"quadratic", func(x float64) float64 { return x * x }},
}

func checkDPMatchesExhaustive(t *testing.T, o partitionObjective, maxBlocks int) {
	t.Helper()
	ex := o.exhaustiveBest(t, maxBlocks)
	tol := 1e-9 * (1 + math.Abs(ex))
	for _, s := range solvers() {
		_, dp := o.dpSolve(t, s, maxBlocks)
		// The DP searches a subset of the enumerator's space, so it can
		// never exceed the exhaustive optimum; convexity says it must
		// reach it.
		if dp > ex+tol {
			t.Fatalf("%s: DP total %v exceeds exhaustive optimum %v (enumerator broken)", s.name, dp, ex)
		}
		if dp < ex-tol {
			t.Fatalf("%s: DP total %v below exhaustive optimum %v (contiguity violated)", s.name, dp, ex)
		}
	}
	checkSolversAgree(t, o, maxBlocks)
}

// checkSolversAgree runs both solvers on the instance and asserts equal
// totals; when the optimum is unique among all set partitions (determined
// by enumeration), the two solvers must return the *identical* partition,
// not merely equal values.
func checkSolversAgree(t *testing.T, o partitionObjective, maxBlocks int) {
	t.Helper()
	quadBlocks, quadTotal := o.dpSolve(t, solvers()[0], maxBlocks)
	monoBlocks, monoTotal := o.dpSolve(t, solvers()[1], maxBlocks)
	tol := 1e-9 * (1 + math.Abs(quadTotal))
	if math.Abs(quadTotal-monoTotal) > tol {
		t.Fatalf("solver totals differ: quadratic %v, monotone %v", quadTotal, monoTotal)
	}
	if len(o.w) > 12 {
		return // uniqueness check needs the enumerator
	}
	// Count optima within tolerance; only a unique optimum pins the blocks.
	best := o.exhaustiveBest(t, maxBlocks)
	optima := 0
	if err := EnumeratePartitions(len(o.w), maxBlocks, func(p [][]int) bool {
		var total float64
		for _, block := range p {
			total += o.setValue(block)
		}
		if total >= best-tol {
			optima++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if optima != 1 {
		return
	}
	if len(quadBlocks) != len(monoBlocks) {
		t.Fatalf("unique optimum, but solvers return different partitions: quadratic %v, monotone %v",
			quadBlocks, monoBlocks)
	}
	for k := range quadBlocks {
		if quadBlocks[k] != monoBlocks[k] {
			t.Fatalf("unique optimum, but solvers return different partitions: quadratic %v, monotone %v",
				quadBlocks, monoBlocks)
		}
	}
}

// TestContiguousDPMatchesExhaustiveRandom: randomized instances, n ≤ 9,
// every convex transform, several block budgets.
func TestContiguousDPMatchesExhaustiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8) // 2..9
		o := partitionObjective{
			w: make([]float64, n),
			c: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			o.w[i] = 0.1 + r.Float64()*5
			o.c[i] = 0.05 + r.Float64()*10
		}
		if trial%5 == 0 {
			// Duplicate a cost to exercise tie-breaking.
			o.c[r.Intn(n)] = o.c[0]
		}
		tr := convexTransforms[trial%len(convexTransforms)]
		o.g = tr.g
		for _, maxBlocks := range []int{1, 2, 3, n, n + 3} {
			checkDPMatchesExhaustive(t, o, maxBlocks)
		}
	}
}

// TestContiguousDPDegenerateAllEqualCosts: with all costs equal, every
// partition has the same objective W_total·g(c), so the DP must agree
// with the enumerator trivially — a regression guard for tie handling.
func TestContiguousDPDegenerateAllEqualCosts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tr := range convexTransforms {
		n := 6
		o := partitionObjective{w: make([]float64, n), c: make([]float64, n), g: tr.g}
		for i := 0; i < n; i++ {
			o.w[i] = 0.5 + r.Float64()
			o.c[i] = 2.5
		}
		checkDPMatchesExhaustive(t, o, 3)
		// And the value is what the closed form says.
		var wSum float64
		for _, w := range o.w {
			wSum += w
		}
		want := wSum * tr.g(2.5)
		got := o.dpBest(t, 3)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: all-equal-cost total %v, want %v", tr.name, got, want)
		}
	}
}

// TestContiguousDPDegenerateMaxBlocksExceedsN: maxBlocks far above n
// must behave exactly like maxBlocks = n for both searchers.
func TestContiguousDPDegenerateMaxBlocksExceedsN(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 5
	o := partitionObjective{w: make([]float64, n), c: make([]float64, n),
		g: func(x float64) float64 { return x * x }}
	for i := 0; i < n; i++ {
		o.w[i] = 0.2 + r.Float64()
		o.c[i] = r.Float64() * 4
	}
	capped := o.dpBest(t, n)
	uncapped := o.dpBest(t, 100)
	if capped != uncapped {
		t.Errorf("maxBlocks=n gives %v, maxBlocks>n gives %v", capped, uncapped)
	}
	checkDPMatchesExhaustive(t, o, 100)
}

// TestContiguousDPDegenerateSingleFlow: one flow, any budget — one block,
// value g(c)·w.
func TestContiguousDPDegenerateSingleFlow(t *testing.T) {
	o := partitionObjective{w: []float64{3}, c: []float64{1.5},
		g: func(x float64) float64 { return math.Exp(-x) }}
	for _, maxBlocks := range []int{1, 2, 6} {
		checkDPMatchesExhaustive(t, o, maxBlocks)
		want := 3 * math.Exp(-1.5)
		if got := o.dpBest(t, maxBlocks); math.Abs(got-want) > 1e-12 {
			t.Errorf("maxBlocks=%d: total %v, want %v", maxBlocks, got, want)
		}
	}
}

// TestContiguousDPMonotoneMatchesQuadraticRandom cross-checks the
// divide-and-conquer solver against the quadratic reference on instances
// far larger than the enumerator can handle, across the full convex
// transform family, with duplicated costs mixed in to exercise ties.
func TestContiguousDPMonotoneMatchesQuadraticRandom(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(70)
		o := partitionObjective{
			w: make([]float64, n),
			c: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			o.w[i] = 0.1 + r.Float64()*5
			o.c[i] = 0.05 + r.Float64()*10
		}
		if trial%4 == 0 {
			// Duplicate a run of costs to exercise tie-breaking at scale.
			dup := o.c[r.Intn(n)]
			for k := 0; k < n/4; k++ {
				o.c[r.Intn(n)] = dup
			}
		}
		o.g = convexTransforms[trial%len(convexTransforms)].g
		for _, maxBlocks := range []int{2, 3, 5, 8, n, n + 2} {
			checkSolversAgree(t, o, maxBlocks)
		}
	}
}

// TestContiguousDPUnderflowedWeights mimics the logit block value when
// every member of a block has underflowed weight e^{α(v−vmax)} → 0 (the
// bundling package returns block value 0 for such blocks): zero-weight
// items must not derail either solver, and the two must agree on the
// total.
func TestContiguousDPUnderflowedWeights(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 12
	w := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = float64(i) * 0.7 // already cost-sorted
		if i%2 == 0 {
			w[i] = 0.2 + r.Float64() // survivor
		} // odd items: weight underflowed to exactly 0
	}
	val := func(lo, hi int) float64 {
		var wSum, cwSum float64
		for i := lo; i < hi; i++ {
			wSum += w[i]
			cwSum += c[i] * w[i]
		}
		if wSum <= 0 {
			return 0 // the whole block underflowed; it attracts no demand
		}
		return wSum * math.Exp(-1.1*(cwSum/wSum))
	}
	for _, maxBlocks := range []int{1, 2, 3, 6, n, n + 5} {
		var totals []float64
		for _, s := range solvers() {
			blocks, total, err := s.solve(n, maxBlocks, val)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(total, 0) || math.IsNaN(total) {
				t.Fatalf("%s maxBlocks=%d: non-finite total %v", s.name, maxBlocks, total)
			}
			prev := 0
			for _, b := range blocks {
				if b[0] != prev || b[1] <= b[0] {
					t.Fatalf("%s maxBlocks=%d: blocks %v do not tile [0,%d)", s.name, maxBlocks, blocks, n)
				}
				prev = b[1]
			}
			if prev != n {
				t.Fatalf("%s maxBlocks=%d: blocks %v do not cover [0,%d)", s.name, maxBlocks, blocks, n)
			}
			totals = append(totals, total)
		}
		if math.Abs(totals[0]-totals[1]) > 1e-9*(1+math.Abs(totals[0])) {
			t.Fatalf("maxBlocks=%d: quadratic total %v != monotone total %v", maxBlocks, totals[0], totals[1])
		}
	}
}

// TestDPScratchReuse solves instances of varying size through one scratch
// to verify the tables resize correctly and results match fresh solves.
func TestDPScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := GetDPScratch()
	defer PutDPScratch(s)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		maxBlocks := 1 + r.Intn(8)
		o := partitionObjective{
			w: make([]float64, n),
			c: make([]float64, n),
			g: convexTransforms[trial%len(convexTransforms)].g,
		}
		for i := 0; i < n; i++ {
			o.w[i] = 0.1 + r.Float64()
			o.c[i] = 0.1 + r.Float64()*5
		}
		order := o.costOrder()
		val := func(lo, hi int) float64 { return o.setValue(order[lo:hi]) }
		gotBlocks, gotTotal, err := s.Solve(n, maxBlocks, val)
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks, wantTotal, err := ContiguousDPMonotone(n, maxBlocks, val)
		if err != nil {
			t.Fatal(err)
		}
		if gotTotal != wantTotal || len(gotBlocks) != len(wantBlocks) {
			t.Fatalf("reused scratch: total %v blocks %v, fresh solve: total %v blocks %v",
				gotTotal, gotBlocks, wantTotal, wantBlocks)
		}
		for k := range gotBlocks {
			if gotBlocks[k] != wantBlocks[k] {
				t.Fatalf("reused scratch blocks %v != fresh blocks %v", gotBlocks, wantBlocks)
			}
		}
	}
}
