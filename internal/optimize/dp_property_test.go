package optimize

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These property tests cross-check ContiguousDP against the exact
// set-partition enumerator on small random instances with the objective
// family both demand models reduce to (DESIGN.md §4):
//
//	value(block) = W(block) · g(weighted mean cost of block)
//
// with g strictly convex. For such objectives an optimal partition is
// contiguous in cost order, so the DP over the sorted order must attain
// the exhaustive optimum over ALL set partitions — not just the best
// contiguous one.

// partitionObjective evaluates one instance: weights w > 0, costs c, and
// a convex transform g. It exposes the block value on arbitrary index
// sets (for the enumerator) and on contiguous ranges of a sorted order
// (for the DP).
type partitionObjective struct {
	w, c []float64
	g    func(float64) float64
}

func (o partitionObjective) setValue(block []int) float64 {
	var wSum, cwSum float64
	for _, i := range block {
		wSum += o.w[i]
		cwSum += o.c[i] * o.w[i]
	}
	return wSum * o.g(cwSum/wSum)
}

// costOrder returns indices sorted ascending by cost (ties by index, as
// the bundling package sorts).
func (o partitionObjective) costOrder() []int {
	order := make([]int, len(o.c))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return o.c[order[a]] < o.c[order[b]] })
	return order
}

// dpBest solves the instance with ContiguousDP over cost order.
func (o partitionObjective) dpBest(t *testing.T, maxBlocks int) float64 {
	t.Helper()
	order := o.costOrder()
	val := func(lo, hi int) float64 {
		return o.setValue(order[lo:hi])
	}
	blocks, total, err := ContiguousDP(len(o.w), maxBlocks, val)
	if err != nil {
		t.Fatal(err)
	}
	// The reported total must equal the sum of the reconstructed blocks.
	var check float64
	for _, b := range blocks {
		check += o.setValue(order[b[0]:b[1]])
	}
	if math.Abs(check-total) > 1e-9*(1+math.Abs(total)) {
		t.Fatalf("DP total %v does not match reconstructed blocks' value %v", total, check)
	}
	return total
}

// exhaustiveBest enumerates every set partition into at most maxBlocks
// blocks and returns the best objective value.
func (o partitionObjective) exhaustiveBest(t *testing.T, maxBlocks int) float64 {
	t.Helper()
	best := math.Inf(-1)
	err := EnumeratePartitions(len(o.w), maxBlocks, func(p [][]int) bool {
		var total float64
		for _, block := range p {
			total += o.setValue(block)
		}
		if total > best {
			best = total
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return best
}

// convexTransforms mirrors the two demand models' g: CED's C^{1−α}
// (α > 1) and logit's e^{−αC}, plus a plain quadratic.
var convexTransforms = []struct {
	name string
	g    func(float64) float64
}{
	{"ced-like pow", func(x float64) float64 { return math.Pow(x, -0.5) }},
	{"logit-like exp", func(x float64) float64 { return math.Exp(-1.1 * x) }},
	{"quadratic", func(x float64) float64 { return x * x }},
}

func checkDPMatchesExhaustive(t *testing.T, o partitionObjective, maxBlocks int) {
	t.Helper()
	dp := o.dpBest(t, maxBlocks)
	ex := o.exhaustiveBest(t, maxBlocks)
	// The DP searches a subset of the enumerator's space, so it can never
	// exceed the exhaustive optimum; convexity says it must reach it.
	tol := 1e-9 * (1 + math.Abs(ex))
	if dp > ex+tol {
		t.Fatalf("DP total %v exceeds exhaustive optimum %v (enumerator broken)", dp, ex)
	}
	if dp < ex-tol {
		t.Fatalf("DP total %v below exhaustive optimum %v (contiguity violated)", dp, ex)
	}
}

// TestContiguousDPMatchesExhaustiveRandom: randomized instances, n ≤ 9,
// every convex transform, several block budgets.
func TestContiguousDPMatchesExhaustiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8) // 2..9
		o := partitionObjective{
			w: make([]float64, n),
			c: make([]float64, n),
		}
		for i := 0; i < n; i++ {
			o.w[i] = 0.1 + r.Float64()*5
			o.c[i] = 0.05 + r.Float64()*10
		}
		if trial%5 == 0 {
			// Duplicate a cost to exercise tie-breaking.
			o.c[r.Intn(n)] = o.c[0]
		}
		tr := convexTransforms[trial%len(convexTransforms)]
		o.g = tr.g
		for _, maxBlocks := range []int{1, 2, 3, n, n + 3} {
			checkDPMatchesExhaustive(t, o, maxBlocks)
		}
	}
}

// TestContiguousDPDegenerateAllEqualCosts: with all costs equal, every
// partition has the same objective W_total·g(c), so the DP must agree
// with the enumerator trivially — a regression guard for tie handling.
func TestContiguousDPDegenerateAllEqualCosts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tr := range convexTransforms {
		n := 6
		o := partitionObjective{w: make([]float64, n), c: make([]float64, n), g: tr.g}
		for i := 0; i < n; i++ {
			o.w[i] = 0.5 + r.Float64()
			o.c[i] = 2.5
		}
		checkDPMatchesExhaustive(t, o, 3)
		// And the value is what the closed form says.
		var wSum float64
		for _, w := range o.w {
			wSum += w
		}
		want := wSum * tr.g(2.5)
		got := o.dpBest(t, 3)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: all-equal-cost total %v, want %v", tr.name, got, want)
		}
	}
}

// TestContiguousDPDegenerateMaxBlocksExceedsN: maxBlocks far above n
// must behave exactly like maxBlocks = n for both searchers.
func TestContiguousDPDegenerateMaxBlocksExceedsN(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 5
	o := partitionObjective{w: make([]float64, n), c: make([]float64, n),
		g: func(x float64) float64 { return x * x }}
	for i := 0; i < n; i++ {
		o.w[i] = 0.2 + r.Float64()
		o.c[i] = r.Float64() * 4
	}
	capped := o.dpBest(t, n)
	uncapped := o.dpBest(t, 100)
	if capped != uncapped {
		t.Errorf("maxBlocks=n gives %v, maxBlocks>n gives %v", capped, uncapped)
	}
	checkDPMatchesExhaustive(t, o, 100)
}

// TestContiguousDPDegenerateSingleFlow: one flow, any budget — one block,
// value g(c)·w.
func TestContiguousDPDegenerateSingleFlow(t *testing.T) {
	o := partitionObjective{w: []float64{3}, c: []float64{1.5},
		g: func(x float64) float64 { return math.Exp(-x) }}
	for _, maxBlocks := range []int{1, 2, 6} {
		checkDPMatchesExhaustive(t, o, maxBlocks)
		want := 3 * math.Exp(-1.5)
		if got := o.dpBest(t, maxBlocks); math.Abs(got-want) > 1e-12 {
			t.Errorf("maxBlocks=%d: total %v, want %v", maxBlocks, got, want)
		}
	}
}
