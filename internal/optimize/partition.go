// Package optimize supplies the generic optimization machinery behind the
// paper's bundling and pricing computations: a dynamic program over
// contiguous partitions (the workhorse of the optimal bundling strategy),
// an exact set-partition enumerator for cross-checking on small inputs,
// scalar root finding and maximization, and the multivariate gradient
// ascent the paper describes for logit price optimization.
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// BlockValue returns the value of grouping items lo..hi-1 (of some fixed
// ordering) into one block. Implementations are expected to be O(1) via
// prefix sums; the DP calls it O(n²·B) times.
type BlockValue func(lo, hi int) float64

// ContiguousDP finds the contiguous partition of 0..n-1 into at most
// maxBlocks non-empty blocks maximizing the sum of block values. It
// returns the blocks as [lo, hi) index pairs in order, plus the total.
//
// Both demand models in this repository reduce optimal bundling to this
// problem: their partition objectives have the form
// Σ_b weight(block)·g(weighted mean cost of block) with g strictly convex,
// for which an optimal partition is contiguous in cost order (see
// DESIGN.md §4; the property is additionally cross-checked against
// exhaustive set-partition enumeration in tests).
//
// This is the O(n²·maxBlocks) reference implementation, kept as the
// oracle for the property tests and for block values that do not satisfy
// the concave-Monge condition; hot paths use the O(n·maxBlocks·log n)
// ContiguousDPMonotone.
func ContiguousDP(n, maxBlocks int, val BlockValue) ([][2]int, float64, error) {
	if n <= 0 {
		return nil, 0, errors.New("optimize: n must be positive")
	}
	if maxBlocks <= 0 {
		return nil, 0, errors.New("optimize: maxBlocks must be positive")
	}
	if maxBlocks > n {
		maxBlocks = n
	}
	negInf := math.Inf(-1)

	// best[b][j]: max value of splitting the first j items into exactly
	// b+1 blocks. cut[b][j]: the start of the last block in that optimum.
	best := make([][]float64, maxBlocks)
	cut := make([][]int, maxBlocks)
	for b := range best {
		best[b] = make([]float64, n+1)
		cut[b] = make([]int, n+1)
		for j := range best[b] {
			best[b][j] = negInf
		}
	}
	for j := 1; j <= n; j++ {
		best[0][j] = val(0, j)
		cut[0][j] = 0
	}
	for b := 1; b < maxBlocks; b++ {
		for j := b + 1; j <= n; j++ {
			for i := b; i < j; i++ {
				if best[b-1][i] == negInf {
					continue
				}
				v := best[b-1][i] + val(i, j)
				if v > best[b][j] {
					best[b][j] = v
					cut[b][j] = i
				}
			}
		}
	}

	// Allow fewer than maxBlocks blocks: take the best over block counts.
	bestB, bestV := 0, best[0][n]
	for b := 1; b < maxBlocks; b++ {
		if best[b][n] > bestV {
			bestB, bestV = b, best[b][n]
		}
	}

	// Reconstruct.
	blocks := make([][2]int, bestB+1)
	j := n
	for b := bestB; b >= 0; b-- {
		i := cut[b][j]
		blocks[b] = [2]int{i, j}
		j = i
	}
	return blocks, bestV, nil
}

// BlocksToPartition converts [lo,hi) index pairs over a permutation order
// into a partition of original indices: block k contains
// order[lo_k..hi_k-1].
func BlocksToPartition(blocks [][2]int, order []int) [][]int {
	out := make([][]int, len(blocks))
	for k, b := range blocks {
		block := make([]int, b[1]-b[0])
		copy(block, order[b[0]:b[1]])
		out[k] = block
	}
	return out
}

// EnumeratePartitions calls yield with every set partition of 0..n-1 into
// at most maxBlocks non-empty blocks, in restricted-growth-string order.
// Enumeration stops early if yield returns false. Each yielded partition
// is freshly allocated, so yield may retain it.
//
// The count grows like the Bell numbers, so this is only suitable for
// small n (the paper notes "more than a billion ways to divide one
// hundred traffic flows into six pricing bundles"); it exists to verify
// the DP and to run the paper's exhaustive-search baseline on aggregated
// flow sets.
func EnumeratePartitions(n, maxBlocks int, yield func(partition [][]int) bool) error {
	if n <= 0 {
		return errors.New("optimize: n must be positive")
	}
	if maxBlocks <= 0 {
		return errors.New("optimize: maxBlocks must be positive")
	}
	if n > 20 {
		return fmt.Errorf("optimize: refusing to enumerate partitions of %d > 20 items", n)
	}
	// Restricted growth string: a[0] = 0 and, for i ≥ 1,
	// a[i] ∈ [0, max(a[0..i-1])+1], capped at maxBlocks-1.
	a := make([]int, n)
	emit := func(maxUsed int) bool {
		blocks := make([][]int, maxUsed+1)
		for idx, b := range a {
			blocks[b] = append(blocks[b], idx)
		}
		return yield(blocks)
	}
	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if i == n {
			return emit(maxUsed)
		}
		limit := maxUsed + 1
		if limit > maxBlocks-1 {
			limit = maxBlocks - 1
		}
		for b := 0; b <= limit; b++ {
			a[i] = b
			nm := maxUsed
			if b > nm {
				nm = b
			}
			if !rec(i+1, nm) {
				return false
			}
		}
		return true
	}
	a[0] = 0
	rec(1, 0)
	return nil
}

// CountPartitions returns the number of set partitions of n items into at
// most maxBlocks blocks (a partial Bell number). Useful for callers that
// want to bound exhaustive-search work before starting it.
func CountPartitions(n, maxBlocks int) (int64, error) {
	if n <= 0 || maxBlocks <= 0 {
		return 0, errors.New("optimize: n and maxBlocks must be positive")
	}
	// Stirling numbers of the second kind, S(n, k).
	s := make([][]int64, n+1)
	for i := range s {
		s[i] = make([]int64, maxBlocks+1)
	}
	s[0][0] = 1
	for i := 1; i <= n; i++ {
		for k := 1; k <= maxBlocks && k <= i; k++ {
			s[i][k] = int64(k)*s[i-1][k] + s[i-1][k-1]
		}
	}
	var total int64
	for k := 1; k <= maxBlocks; k++ {
		total += s[n][k]
	}
	return total, nil
}
