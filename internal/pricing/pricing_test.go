package pricing

import (
	"math"
	"math/rand"
	"testing"

	"tieredpricing/internal/econ"
)

func fitFlows(t *testing.T, m econ.Model, n int, seed int64, p0 float64) []econ.Flow {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	demands := make([]float64, n)
	rel := make([]float64, n)
	for i := range demands {
		demands[i] = 0.5 + r.Float64()*30
		rel[i] = 0.2 + r.Float64()*8
	}
	vals, err := m.FitValuations(demands, p0)
	if err != nil {
		t.Fatal(err)
	}
	gamma, _, err := m.CalibrateScale(vals, rel, p0)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]econ.Flow, n)
	for i := range flows {
		flows[i] = econ.Flow{
			ID: "f", Demand: demands[i], Distance: rel[i],
			Valuation: vals[i], Cost: gamma * rel[i],
		}
	}
	return flows
}

func TestEvaluateConsistency(t *testing.T) {
	for _, m := range []econ.Model{
		econ.CED{Alpha: 1.2},
		econ.Logit{Alpha: 1.1, S0: 0.2},
	} {
		flows := fitFlows(t, m, 10, 1, 20)
		parts := [][]int{{0, 1, 2}, {3, 4, 5, 6}, {7, 8, 9}}
		ev, err := Evaluate(m, flows, parts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev.Prices) != 3 {
			t.Fatalf("%s: %d prices", m.Name(), len(ev.Prices))
		}
		// Profit must match a direct model evaluation.
		want, err := m.Profit(flows, parts, ev.Prices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.Profit-want) > 1e-9*math.Abs(want) {
			t.Fatalf("%s: profit %v != %v", m.Name(), ev.Profit, want)
		}
	}
}

func TestEvaluateError(t *testing.T) {
	m := econ.CED{Alpha: 1.2}
	flows := fitFlows(t, m, 3, 1, 20)
	if _, err := Evaluate(m, flows, [][]int{{0, 0, 1, 2}}); err == nil {
		t.Error("expected error for invalid partition")
	}
}

func TestCapture(t *testing.T) {
	cases := []struct {
		profit, orig, max, want float64
	}{
		{10, 10, 20, 0},
		{20, 10, 20, 1},
		{15, 10, 20, 0.5},
		{5, 10, 20, -0.5}, // a strategy can underperform the status quo
	}
	for _, c := range cases {
		if got := Capture(c.profit, c.orig, c.max); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Capture(%v,%v,%v) = %v, want %v", c.profit, c.orig, c.max, got, c.want)
		}
	}
	if got := Capture(10, 10, 10); !math.IsNaN(got) {
		t.Errorf("zero headroom should be NaN, got %v", got)
	}
	if got := Capture(10, 20, 10); !math.IsNaN(got) {
		t.Errorf("negative headroom should be NaN, got %v", got)
	}
}

func TestGradientPricesMatchFixedPoint(t *testing.T) {
	// The paper's gradient-descent heuristic and the equal-markup fixed
	// point must find the same logit optimum.
	m := econ.Logit{Alpha: 1.1, S0: 0.2}
	flows := fitFlows(t, m, 8, 5, 20)
	parts := [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7}}

	fixed, err := m.PriceBundles(flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	grad, err := GradientPrices(m, flows, parts)
	if err != nil {
		t.Fatal(err)
	}
	piFixed, err := m.Profit(flows, parts, fixed)
	if err != nil {
		t.Fatal(err)
	}
	piGrad, err := m.Profit(flows, parts, grad)
	if err != nil {
		t.Fatal(err)
	}
	// Profits agree tightly even if prices wander on a flat ridge.
	if math.Abs(piFixed-piGrad) > 1e-4*math.Abs(piFixed) {
		t.Fatalf("profit mismatch: fixed %v vs gradient %v", piFixed, piGrad)
	}
	// Prices of bundles that actually attract demand must agree; bundles
	// with negligible share sit on an exponentially flat profit ridge
	// where the gradient method legitimately stops anywhere.
	vals := make([]float64, len(parts))
	for b, block := range parts {
		bv := make([]float64, len(block))
		for j, i := range block {
			bv[j] = flows[i].Valuation
		}
		v, err := m.BundleValuation(bv)
		if err != nil {
			t.Fatal(err)
		}
		vals[b] = v
	}
	shares, _, err := m.Shares(vals, fixed)
	if err != nil {
		t.Fatal(err)
	}
	for b := range fixed {
		if shares[b] < 0.01 {
			continue
		}
		if math.Abs(fixed[b]-grad[b]) > 1e-2*fixed[b] {
			t.Fatalf("price %d mismatch: fixed %v vs gradient %v", b, fixed[b], grad[b])
		}
	}
}

func TestGradientPricesEmptyPartition(t *testing.T) {
	m := econ.Logit{Alpha: 1, S0: 0.2}
	if _, err := GradientPrices(m, nil, nil); err == nil {
		t.Error("expected error for empty partition")
	}
}
