// Package pricing evaluates bundlings: given a demand model, a fitted flow
// set and a partition into tiers, it computes the profit-maximizing price
// of each tier and the resulting ISP profit, plus the paper's
// profit-capture metric (§4.2.2). It also provides the gradient-ascent
// logit pricer the paper describes, used to cross-check the closed-form
// fixed point in econ.
package pricing

import (
	"errors"
	"math"

	"tieredpricing/internal/econ"
	"tieredpricing/internal/optimize"
)

// Evaluation is a priced bundling: the partition, each tier's
// profit-maximizing price, and the resulting total profit.
type Evaluation struct {
	Partition [][]int
	Prices    []float64
	Profit    float64
}

// Evaluate prices each bundle of the partition optimally under the model
// and returns the resulting profit.
func Evaluate(m econ.Model, flows []econ.Flow, partition [][]int) (Evaluation, error) {
	prices, err := m.PriceBundles(flows, partition)
	if err != nil {
		return Evaluation{}, err
	}
	profit, err := m.Profit(flows, partition, prices)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Partition: partition, Prices: prices, Profit: profit}, nil
}

// Capture is the paper's profit-capture metric (§4.2.2):
//
//	(π_new − π_original) / (π_max − π_original)
//
// the fraction of the profit headroom between the status-quo blended rate
// and infinitely fine-grained pricing that a strategy realizes. When the
// headroom is not positive (all flows cost the same, so bundling cannot
// help) the metric is undefined and NaN is returned.
func Capture(profit, original, max float64) float64 {
	denom := max - original
	if !(denom > 0) {
		return math.NaN()
	}
	return (profit - original) / denom
}

// GradientPrices computes logit bundle prices by projected gradient ascent
// on profit, starting from each bundle's Eq. 11 cost — the heuristic the
// paper describes in §3.2.2 ("starts from a fixed set of prices and
// greedily updates them towards the optimum"). econ.Logit.PriceBundles
// solves the same problem through the equal-markup fixed point; the two
// agree to high precision (see tests), and the fixed point is what the
// rest of the repository uses because it is orders of magnitude faster.
func GradientPrices(m econ.Logit, flows []econ.Flow, partition [][]int) ([]float64, error) {
	if len(partition) == 0 {
		return nil, errors.New("pricing: empty partition")
	}
	// Start from marginal-cost pricing of each bundle. One cost/valuation
	// buffer pair sized to the largest bundle serves every iteration of the
	// start-vector loop.
	maxBlock := 0
	for _, block := range partition {
		if len(block) > maxBlock {
			maxBlock = len(block)
		}
	}
	costs := make([]float64, maxBlock)
	vals := make([]float64, maxBlock)
	start := make([]float64, len(partition))
	for b, block := range partition {
		for j, i := range block {
			costs[j] = flows[i].Cost
			vals[j] = flows[i].Valuation
		}
		c, err := m.BundleCost(costs[:len(block)], vals[:len(block)])
		if err != nil {
			return nil, err
		}
		start[b] = c
	}
	objective := func(prices []float64) float64 {
		pi, err := m.Profit(flows, partition, prices)
		if err != nil {
			return math.Inf(-1)
		}
		return pi
	}
	prices, _, err := optimize.GradientAscent(objective, start, optimize.GradientConfig{
		Step:    1.0,
		Tol:     1e-12,
		MaxIter: 20000,
		Lower:   1e-9,
	})
	if err != nil {
		return nil, err
	}
	return prices, nil
}
