// Package report renders experiment results as aligned ASCII tables and
// CSV, the textual equivalent of the paper's figures: each experiment
// produces the same rows/series the corresponding table or plot shows.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New creates a table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow for construction-time rows that cannot mismatch.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(t.Columns)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (title and notes as comment-ish
// leading/trailing rows are omitted; only columns and rows are written).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float for table cells: fixed 3 decimals, with NaN rendered
// as "n/a".
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// F1 formats with 1 decimal.
func F1(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// G formats a float compactly (shortest representation).
func G(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// WriteMarkdown renders the table as GitHub-flavored markdown, with the
// title as a heading and notes as a trailing list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "#### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
