package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tb := New("Demo", "name", "value")
	if err := tb.AddRow("alpha", "1.100"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("a-much-longer-name", "2"); err != nil {
		t.Fatal(err)
	}
	tb.AddNote("seed %d", 42)
	var buf bytes.Buffer
	if err := tb.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "a-much-longer-name", "note: seed 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "value" header starts at the same offset as "1.100".
	lines := strings.Split(out, "\n")
	head, row := lines[1], lines[3]
	if strings.Index(head, "value") != strings.Index(row, "1.100") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableRowMismatch(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("expected error for cell-count mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on mismatch")
		}
	}()
	tb.MustAddRow("only-one")
}

func TestTableEmptyColumns(t *testing.T) {
	tb := &Table{}
	if err := tb.WriteASCII(&bytes.Buffer{}); err == nil {
		t.Error("expected error for empty table")
	}
}

func TestTableCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.MustAddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", buf.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %s", F(1.23456))
	}
	if F(math.NaN()) != "n/a" || F1(math.NaN()) != "n/a" || G(math.NaN()) != "n/a" {
		t.Error("NaN should render as n/a")
	}
	if F1(2.78) != "2.8" {
		t.Errorf("F1 = %s", F1(2.78))
	}
	if G(1988) != "1988" {
		t.Errorf("G = %s", G(1988))
	}
	if I(42) != "42" {
		t.Errorf("I = %s", I(42))
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := New("Md", "a", "b")
	tb.MustAddRow("1", "x|y")
	tb.AddNote("careful")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"#### Md", "| a | b |", "|---|---|", `x\|y`, "*careful*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	empty := &Table{}
	if err := empty.WriteMarkdown(&buf); err == nil {
		t.Error("expected error for empty table")
	}
}
