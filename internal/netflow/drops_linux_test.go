//go:build linux

package netflow

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// procNetLine renders one /proc/net/udp row with the given local port,
// inode, and drop count (the fields the probe reads; the rest are
// plausible filler).
func procNetLine(sl, port int, inode uint64, drops uint64) string {
	return fmt.Sprintf(
		" %3d: 0100007F:%04X 00000000:0000 07 00000000:00000000 00:00000000 00000000  1000        0 %d 2 0000000000000000 %d",
		sl, port, inode, drops)
}

// TestProcNetDropsInodeFilter pins the ownership rule on a synthetic
// /proc/net/udp: only rows whose inode is in the caller's set count,
// and an empty set falls back to port-wide matching.
func TestProcNetDropsInodeFilter(t *testing.T) {
	const port = 0x0887 // 2183
	content := "   sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode ref pointer drops\n" +
		procNetLine(0, port, 100, 5) + "\n" + // ours
		procNetLine(1, port, 200, 7) + "\n" + // foreign reuseport socket
		procNetLine(2, port, 300, 9) + "\n" + // ours
		procNetLine(3, port+1, 400, 1000) + "\n" // different port entirely
	path := filepath.Join(t.TempDir(), "udp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ours := map[uint64]struct{}{100: {}, 300: {}}
	if got := procNetDrops(path, port, ours); got != 14 {
		t.Errorf("inode-filtered drops = %d, want 14 (5+9, excluding the foreign socket's 7)", got)
	}
	if got := procNetDrops(path, port, map[uint64]struct{}{999: {}}); got != 0 {
		t.Errorf("disjoint inode set drops = %d, want 0", got)
	}
	if got := procNetDrops(path, port, nil); got != 21 {
		t.Errorf("port-only fallback drops = %d, want 21", got)
	}
}

// TestSocketDropsExcludesDecoy is the live regression for the
// misattribution bug: a decoy socket joins the server's port via
// SO_REUSEPORT (standing in for an unrelated process sharing the port),
// never reads, and overflows — the server's SocketDrops must not absorb
// the decoy's drops.
func TestSocketDropsExcludesDecoy(t *testing.T) {
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	srv, err := NewCollectorServerOpts("127.0.0.1:0", c, ServerOptions{Sockets: 2, RcvBuf: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Sockets() < 2 {
		t.Skip("SO_REUSEPORT unavailable; decoy cannot share the port")
	}
	decoy, err := listenUDP(srv.Addr(), 1, true) // minimal kernel buffer, never read
	if err != nil {
		t.Fatalf("binding decoy: %v", err)
	}
	defer decoy.Close()
	decoyIno := sockInode(decoy)
	if decoyIno == 0 {
		t.Fatal("no inode for decoy socket")
	}
	port := localPort(decoy)
	decoyDrops := func() uint64 {
		return socketDrops(port, map[uint64]struct{}{decoyIno: {}})
	}

	// Blast datagrams from fresh source ports so REUSEPORT's 4-tuple
	// steering lands a share on the decoy, whose tiny unread buffer
	// overflows after a couple of packets.
	payload := make([]byte, 1400)
	deadline := time.Now().Add(5 * time.Second)
	for decoyDrops() == 0 {
		if time.Now().After(deadline) {
			t.Skip("kernel reported no decoy drops; cannot exercise the exclusion")
		}
		for i := 0; i < 32; i++ {
			conn, err := net.Dial("udp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				conn.Write(payload)
			}
			conn.Close()
		}
	}
	// Let in-flight loopback datagrams settle so the counters are static.
	time.Sleep(200 * time.Millisecond)

	total := socketDrops(port, nil) // port-wide: the pre-fix (buggy) attribution
	own := srv.SocketDrops()
	decoyed := decoyDrops()
	if decoyed == 0 {
		t.Fatal("decoy drops vanished")
	}
	if own+decoyed != total {
		t.Errorf("drop accounting: own %d + decoy %d != port total %d", own, decoyed, total)
	}
	if own >= total {
		t.Errorf("SocketDrops() = %d absorbed the decoy's drops (port total %d, decoy %d)", own, total, decoyed)
	}
}
