package netflow

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"
)

func TestUDPExportCollectRoundTrip(t *testing.T) {
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	srv, err := NewCollectorServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	exp, err := NewExporter(srv.Addr(), Header{UnixSecs: 1000, SamplingInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	recs := make([]Record, 75) // 2 full packets + 1 partial
	for i := range recs {
		recs[i] = randRecord(r)
		recs[i].SrcAS = uint16(i) // distinct dedup stamps
	}
	if err := exp.Export(recs...); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, _, _ := c.Stats()
	if got != 75 {
		t.Fatalf("collector saw %d records, want 75", got)
	}
	packets, bad := srv.Stats()
	if packets != 3 || bad != 0 {
		t.Fatalf("server stats = (%d, %d), want (3, 0)", packets, bad)
	}
}

func TestUDPMultipleExporters(t *testing.T) {
	// Several "routers" export the same records concurrently; the
	// collector must dedup across them, as in the multi-router capture.
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	srv, err := NewCollectorServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := Record{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  5000,
	}
	const routers = 4
	var wg sync.WaitGroup
	for i := 0; i < routers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			exp, err := NewExporter(srv.Addr(), Header{SamplingInterval: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if err := exp.Export(rec); err != nil {
				t.Error(err)
			}
			if err := exp.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := srv.Drain(routers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	aggs := c.Aggregates()
	if len(aggs) != 1 || aggs[0].Octets != 5000 {
		t.Fatalf("aggregates = %+v, want single 5000-octet bucket", aggs)
	}
	_, dups, _ := c.Stats()
	if dups != routers-1 {
		t.Fatalf("duplicates = %d, want %d", dups, routers-1)
	}
}

func TestCollectorServerCountsBadDatagrams(t *testing.T) {
	c := NewCollector(func(r Record) string { return "x" })
	srv, err := NewCollectorServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Send garbage straight at the socket.
	conn, err := NewExporter(srv.Addr(), Header{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw, err := EncodePacket(Header{}, []Record{{
		SrcAddr: netip.MustParseAddr("1.1.1.1"),
		DstAddr: netip.MustParseAddr("2.2.2.2"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	raw[1] = 99 // corrupt the version
	if _, err := conn.conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, bad := srv.Stats(); bad != 1 {
		t.Fatalf("bad = %d, want 1", bad)
	}
	records, _, _ := c.Stats()
	if records != 0 {
		t.Fatalf("corrupt datagram reached the collector: %d records", records)
	}
}

func TestCollectorServerCloseIdempotent(t *testing.T) {
	c := NewCollector(func(r Record) string { return "x" })
	srv, err := NewCollectorServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCollectorServerErrors(t *testing.T) {
	if _, err := NewCollectorServer("127.0.0.1:0", nil); err == nil {
		t.Error("expected error for nil collector")
	}
	if _, err := NewCollectorServer("256.0.0.1:99999", NewCollector(func(Record) string { return "" })); err == nil {
		t.Error("expected error for bad address")
	}
}

func TestExporterErrors(t *testing.T) {
	if _, err := NewExporter("256.0.0.1:1", Header{}); err == nil {
		t.Error("expected error for bad address")
	}
}
