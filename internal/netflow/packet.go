// Package netflow implements the flow-export substrate of the paper's data
// pipeline (§4.1.1): a NetFlow-v5-format binary codec, a stream writer and
// reader for trace files, and a collector that ingests records from
// multiple core routers, restores sampled volumes, de-duplicates records
// that several routers exported for the same flow, and aggregates the
// result into per-destination traffic demands — exactly the processing
// the paper applies to its 24-hour sampled captures ("we obtain the demand
// for each flow by aggregating all records of the flow, while ensuring
// that we do not double-count records that are duplicated on different
// routers").
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Version is the NetFlow export format version implemented here.
const Version = 5

// Wire sizes of the v5 format.
const (
	HeaderSize          = 24
	RecordSize          = 48
	MaxRecordsPerPacket = 30
)

// Header is a NetFlow v5 export packet header.
type Header struct {
	// Count is the number of records in the packet (1..30).
	Count uint16
	// SysUptime is milliseconds since the exporting device booted.
	SysUptime uint32
	// UnixSecs and UnixNsecs timestamp the export.
	UnixSecs  uint32
	UnixNsecs uint32
	// FlowSequence counts total flows exported by the device.
	FlowSequence uint32
	// EngineType and EngineID identify the exporting slot.
	EngineType uint8
	EngineID   uint8
	// SamplingInterval packs the 2-bit sampling mode and 14-bit interval;
	// this implementation stores the plain interval (0 or 1 = unsampled,
	// N = 1-in-N packet sampling).
	SamplingInterval uint16
}

// Record is a NetFlow v5 flow record.
type Record struct {
	// SrcAddr, DstAddr and NextHop are IPv4 addresses.
	SrcAddr netip.Addr
	DstAddr netip.Addr
	NextHop netip.Addr
	// Input and Output are SNMP interface indices; the paper's Internet2
	// heuristic uses them to identify the traversed links.
	Input  uint16
	Output uint16
	// Packets and Octets are the flow's counted volume (pre-sampling).
	Packets uint32
	Octets  uint32
	// First and Last are SysUptime values at the first and last packet.
	First uint32
	Last  uint32
	// Transport endpoints.
	SrcPort uint16
	DstPort uint16
	// TCPFlags, Proto and ToS describe the flow.
	TCPFlags uint8
	Proto    uint8
	ToS      uint8
	// Origin and peer autonomous systems.
	SrcAS uint16
	DstAS uint16
	// Address prefix mask lengths.
	SrcMask uint8
	DstMask uint8
}

// errShort reports a truncated buffer.
var errShort = errors.New("netflow: short buffer")

// appendHeader serializes h, including the version word.
func appendHeader(b []byte, h Header) []byte {
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint16(b, h.Count)
	b = binary.BigEndian.AppendUint32(b, h.SysUptime)
	b = binary.BigEndian.AppendUint32(b, h.UnixSecs)
	b = binary.BigEndian.AppendUint32(b, h.UnixNsecs)
	b = binary.BigEndian.AppendUint32(b, h.FlowSequence)
	b = append(b, h.EngineType, h.EngineID)
	b = binary.BigEndian.AppendUint16(b, h.SamplingInterval)
	return b
}

// parseHeader deserializes a header and checks the version.
func parseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, errShort
	}
	if v := binary.BigEndian.Uint16(b[0:2]); v != Version {
		return Header{}, fmt.Errorf("netflow: unsupported version %d", v)
	}
	return Header{
		Count:            binary.BigEndian.Uint16(b[2:4]),
		SysUptime:        binary.BigEndian.Uint32(b[4:8]),
		UnixSecs:         binary.BigEndian.Uint32(b[8:12]),
		UnixNsecs:        binary.BigEndian.Uint32(b[12:16]),
		FlowSequence:     binary.BigEndian.Uint32(b[16:20]),
		EngineType:       b[20],
		EngineID:         b[21],
		SamplingInterval: binary.BigEndian.Uint16(b[22:24]),
	}, nil
}

// appendRecord serializes r.
func appendRecord(b []byte, r Record) ([]byte, error) {
	src, err := addr4(r.SrcAddr)
	if err != nil {
		return nil, fmt.Errorf("netflow: src: %w", err)
	}
	dst, err := addr4(r.DstAddr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dst: %w", err)
	}
	hop, err := addr4Or0(r.NextHop)
	if err != nil {
		return nil, fmt.Errorf("netflow: nexthop: %w", err)
	}
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	b = append(b, hop[:]...)
	b = binary.BigEndian.AppendUint16(b, r.Input)
	b = binary.BigEndian.AppendUint16(b, r.Output)
	b = binary.BigEndian.AppendUint32(b, r.Packets)
	b = binary.BigEndian.AppendUint32(b, r.Octets)
	b = binary.BigEndian.AppendUint32(b, r.First)
	b = binary.BigEndian.AppendUint32(b, r.Last)
	b = binary.BigEndian.AppendUint16(b, r.SrcPort)
	b = binary.BigEndian.AppendUint16(b, r.DstPort)
	b = append(b, 0, r.TCPFlags, r.Proto, r.ToS)
	b = binary.BigEndian.AppendUint16(b, r.SrcAS)
	b = binary.BigEndian.AppendUint16(b, r.DstAS)
	b = append(b, r.SrcMask, r.DstMask, 0, 0)
	return b, nil
}

// parseRecord deserializes one record.
func parseRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, errShort
	}
	return Record{
		SrcAddr:  netip.AddrFrom4([4]byte(b[0:4])),
		DstAddr:  netip.AddrFrom4([4]byte(b[4:8])),
		NextHop:  netip.AddrFrom4([4]byte(b[8:12])),
		Input:    binary.BigEndian.Uint16(b[12:14]),
		Output:   binary.BigEndian.Uint16(b[14:16]),
		Packets:  binary.BigEndian.Uint32(b[16:20]),
		Octets:   binary.BigEndian.Uint32(b[20:24]),
		First:    binary.BigEndian.Uint32(b[24:28]),
		Last:     binary.BigEndian.Uint32(b[28:32]),
		SrcPort:  binary.BigEndian.Uint16(b[32:34]),
		DstPort:  binary.BigEndian.Uint16(b[34:36]),
		TCPFlags: b[37],
		Proto:    b[38],
		ToS:      b[39],
		SrcAS:    binary.BigEndian.Uint16(b[40:42]),
		DstAS:    binary.BigEndian.Uint16(b[42:44]),
		SrcMask:  b[44],
		DstMask:  b[45],
	}, nil
}

// EncodePacket serializes a header and 1..30 records into one export
// packet. The header's Count field is overwritten with len(recs).
func EncodePacket(h Header, recs []Record) ([]byte, error) {
	if len(recs) == 0 {
		return nil, errors.New("netflow: empty packet")
	}
	if len(recs) > MaxRecordsPerPacket {
		return nil, fmt.Errorf("netflow: %d records exceed packet limit %d",
			len(recs), MaxRecordsPerPacket)
	}
	h.Count = uint16(len(recs))
	out := make([]byte, 0, HeaderSize+len(recs)*RecordSize)
	out = appendHeader(out, h)
	var err error
	for _, r := range recs {
		if out, err = appendRecord(out, r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodePacket deserializes one export packet.
func DecodePacket(b []byte) (Header, []Record, error) {
	h, err := parseHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Count == 0 || h.Count > MaxRecordsPerPacket {
		return Header{}, nil, fmt.Errorf("netflow: bad record count %d", h.Count)
	}
	recs := make([]Record, 0, h.Count)
	return decodeRecords(b, h, recs)
}

// DecodePacketInto is DecodePacket decoding into recs's backing array:
// the returned slice aliases recs when it has capacity for the packet's
// records, so a read loop that reuses one buffer across datagrams
// performs no per-datagram allocation. recs's length is ignored (the
// decode starts from recs[:0]).
func DecodePacketInto(b []byte, recs []Record) (Header, []Record, error) {
	h, err := parseHeader(b)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Count == 0 || h.Count > MaxRecordsPerPacket {
		return Header{}, nil, fmt.Errorf("netflow: bad record count %d", h.Count)
	}
	return decodeRecords(b, h, recs[:0])
}

func decodeRecords(b []byte, h Header, recs []Record) (Header, []Record, error) {
	want := HeaderSize + int(h.Count)*RecordSize
	if len(b) < want {
		return Header{}, nil, errShort
	}
	for i := 0; i < int(h.Count); i++ {
		off := HeaderSize + i*RecordSize
		r, err := parseRecord(b[off:])
		if err != nil {
			return Header{}, nil, err
		}
		recs = append(recs, r)
	}
	return h, recs, nil
}

// addr4 converts an IPv4 netip.Addr to 4 bytes, rejecting non-IPv4.
func addr4(a netip.Addr) ([4]byte, error) {
	if !a.Is4() {
		return [4]byte{}, fmt.Errorf("address %v is not IPv4", a)
	}
	return a.As4(), nil
}

// addr4Or0 is addr4 but maps the zero Addr to 0.0.0.0 (unset next hop).
func addr4Or0(a netip.Addr) ([4]byte, error) {
	if a == (netip.Addr{}) {
		return [4]byte{}, nil
	}
	return addr4(a)
}
