package netflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// This file adds the wire transport the paper's collection infrastructure
// actually uses: NetFlow is exported over UDP from each core router to a
// central collector (Figure 17b, "Flow Collector"). Exporter wraps a
// Writer around a UDP socket with one datagram per export packet;
// CollectorServer listens, decodes and feeds a Sink (the batch Collector
// or the stream package's sliding window).

// Exporter sends export packets to a collector over UDP, one datagram
// per packet (as real routers do — NetFlow v5 has no fragmentation or
// retransmission; loss tolerance is part of the protocol's design).
type Exporter struct {
	conn net.Conn
	mu   sync.Mutex
	pend []Record
	// Template is copied into every packet.
	Template Header
	sequence uint32
}

// NewExporter dials the collector address ("host:port").
func NewExporter(addr string, template Header) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dialing collector: %w", err)
	}
	return &Exporter{conn: conn, Template: template}, nil
}

// Export queues records, sending a datagram whenever a packet fills.
func (e *Exporter) Export(recs ...Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range recs {
		e.pend = append(e.pend, r)
		if len(e.pend) == MaxRecordsPerPacket {
			if err := e.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends any partially filled packet.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pend) == 0 {
		return nil
	}
	return e.flushLocked()
}

func (e *Exporter) flushLocked() error {
	h := e.Template
	h.FlowSequence = e.sequence
	pkt, err := EncodePacket(h, e.pend)
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(pkt); err != nil {
		return fmt.Errorf("netflow: udp send: %w", err)
	}
	e.sequence += uint32(len(e.pend))
	e.pend = e.pend[:0]
	return nil
}

// Close flushes and closes the socket.
func (e *Exporter) Close() error {
	if err := e.Flush(); err != nil {
		e.conn.Close()
		return err
	}
	return e.conn.Close()
}

// Sink consumes decoded export packets. Collector is the batch
// implementation; the stream package's sliding window is the online one.
// Implementations must be safe for concurrent Ingest calls.
type Sink interface {
	Ingest(h Header, recs []Record)
}

// CollectorServer receives export datagrams on a UDP socket and feeds
// them to a Sink.
type CollectorServer struct {
	pc   net.PacketConn
	sink Sink

	mu      sync.Mutex
	packets int
	bad     int
	closed  bool
	done    chan struct{}
}

// NewCollectorServer starts listening on addr (use "127.0.0.1:0" for an
// ephemeral test port) and ingesting into sink in a background
// goroutine. Callers must Close it.
func NewCollectorServer(addr string, sink Sink) (*CollectorServer, error) {
	if sink == nil {
		return nil, errors.New("netflow: nil sink")
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen: %w", err)
	}
	s := &CollectorServer{pc: pc, sink: sink, done: make(chan struct{})}
	go s.loop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *CollectorServer) Addr() string { return s.pc.LocalAddr().String() }

// Stats reports datagrams received and datagrams that failed to decode.
func (s *CollectorServer) Stats() (packets, bad int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.packets, s.bad
}

// Close stops the receive loop and closes the socket.
func (s *CollectorServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.pc.Close()
	<-s.done
	return err
}

// Drain waits until the server has received at least n datagrams or the
// timeout elapses, for tests and batch pipelines that need to know the
// UDP stream has been consumed (UDP gives no delivery signal).
func (s *CollectorServer) Drain(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		packets, _ := func() (int, int) { return s.Stats() }()
		if packets >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netflow: drained %d of %d datagrams before timeout", packets, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *CollectorServer) loop() {
	defer close(s.done)
	buf := make([]byte, HeaderSize+MaxRecordsPerPacket*RecordSize)
	for {
		n, _, err := s.pc.ReadFrom(buf)
		if err != nil {
			// Closed socket ends the loop; transient errors are counted.
			s.mu.Lock()
			closed := s.closed
			if !closed {
				s.bad++
			}
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		h, recs, err := DecodePacket(buf[:n])
		s.mu.Lock()
		s.packets++
		if err != nil {
			s.bad++
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		s.sink.Ingest(h, recs)
	}
}
