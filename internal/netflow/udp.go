package netflow

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds the wire transport the paper's collection infrastructure
// actually uses: NetFlow is exported over UDP from each core router to a
// central collector (Figure 17b, "Flow Collector"). Exporter wraps a
// Writer around a UDP socket with one datagram per export packet;
// CollectorServer listens, decodes and feeds a Sink (the batch Collector
// or the stream package's sliding window).

// Exporter sends export packets to a collector over UDP, one datagram
// per packet (as real routers do — NetFlow v5 has no fragmentation or
// retransmission; loss tolerance is part of the protocol's design).
type Exporter struct {
	conn net.Conn
	mu   sync.Mutex
	pend []Record
	// Template is copied into every packet.
	Template Header
	sequence uint32
}

// NewExporter dials the collector address ("host:port").
func NewExporter(addr string, template Header) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dialing collector: %w", err)
	}
	return &Exporter{conn: conn, Template: template}, nil
}

// Export queues records, sending a datagram whenever a packet fills.
func (e *Exporter) Export(recs ...Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range recs {
		e.pend = append(e.pend, r)
		if len(e.pend) == MaxRecordsPerPacket {
			if err := e.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends any partially filled packet.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pend) == 0 {
		return nil
	}
	return e.flushLocked()
}

func (e *Exporter) flushLocked() error {
	h := e.Template
	h.FlowSequence = e.sequence
	pkt, err := EncodePacket(h, e.pend)
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(pkt); err != nil {
		return fmt.Errorf("netflow: udp send: %w", err)
	}
	e.sequence += uint32(len(e.pend))
	e.pend = e.pend[:0]
	return nil
}

// Close flushes and closes the socket.
func (e *Exporter) Close() error {
	if err := e.Flush(); err != nil {
		e.conn.Close()
		return err
	}
	return e.conn.Close()
}

// Sink consumes decoded export packets. Collector is the batch
// implementation; the stream package's sliding window is the online one.
// Implementations must be safe for concurrent Ingest calls, and must not
// retain recs past the call's return: the server reuses the backing
// array for the next datagram.
type Sink interface {
	Ingest(h Header, recs []Record)
}

// maxDatagram is the largest valid export packet on the wire.
const maxDatagram = HeaderSize + MaxRecordsPerPacket*RecordSize

// ServerOptions tunes a CollectorServer. The zero value reproduces the
// historical single-socket, single-reader server.
type ServerOptions struct {
	// Sockets is the number of UDP sockets (and reader goroutines) to
	// bind to the same port. On Linux, sockets beyond the first bind
	// with SO_REUSEPORT so the kernel flow-steers datagrams across them;
	// where REUSEPORT is unavailable the extra readers share one socket
	// (user-space dispatch). Values < 1 mean 1.
	Sockets int
	// RcvBuf requests SO_RCVBUF bytes of kernel socket buffer per
	// socket (0 = OS default). The kernel may clamp the request; drops
	// that occur when the buffer overflows are visible via SocketDrops.
	RcvBuf int
	// Batch is the number of datagrams read per syscall where batched
	// receive (recvmmsg) is available (0 = a sensible default). Each
	// reader goroutine owns Batch reusable packet buffers.
	Batch int
}

// defaultBatch is the per-reader datagram batch when none is requested.
const defaultBatch = 32

// CollectorServer receives export datagrams on one or more UDP sockets
// bound to the same port and feeds them to a Sink. Reads are batched
// (one recvmmsg syscall drains many datagrams on Linux) into per-reader
// reusable buffers, so the receive path performs no per-datagram
// allocation.
type CollectorServer struct {
	conns []net.PacketConn
	sink  Sink
	batch int
	port  int
	// inodes identifies this server's sockets in /proc/net/udp, so drop
	// accounting excludes foreign SO_REUSEPORT sockets on the same port.
	inodes map[uint64]struct{}

	packets atomic.Uint64
	bad     atomic.Uint64
	closed  atomic.Bool
	wg      sync.WaitGroup
	closeMu sync.Mutex
}

// NewCollectorServer starts a single-socket server listening on addr
// (use "127.0.0.1:0" for an ephemeral test port) and ingesting into sink
// in a background goroutine. Callers must Close it.
func NewCollectorServer(addr string, sink Sink) (*CollectorServer, error) {
	return NewCollectorServerOpts(addr, sink, ServerOptions{})
}

// NewCollectorServerOpts starts a server with explicit socket, buffer
// and batching options.
func NewCollectorServerOpts(addr string, sink Sink, opts ServerOptions) (*CollectorServer, error) {
	if sink == nil {
		return nil, errors.New("netflow: nil sink")
	}
	sockets := opts.Sockets
	if sockets < 1 {
		sockets = 1
	}
	batch := opts.Batch
	if batch < 1 {
		batch = defaultBatch
	}
	s := &CollectorServer{sink: sink, batch: batch}
	reuse := sockets > 1 && reuseportAvailable
	first, err := listenUDP(addr, opts.RcvBuf, reuse)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen: %w", err)
	}
	s.conns = append(s.conns, first)
	s.port = localPort(first)
	if reuse {
		// Additional sockets bind the resolved address of the first, so
		// an ephemeral ":0" request lands every socket on the same port.
		bound := first.LocalAddr().String()
		for i := 1; i < sockets; i++ {
			pc, err := listenUDP(bound, opts.RcvBuf, true)
			if err != nil {
				s.closeConns()
				return nil, fmt.Errorf("netflow: listen (reuseport socket %d): %w", i, err)
			}
			s.conns = append(s.conns, pc)
		}
	}
	s.inodes = socketInodes(s.conns)
	readers := s.conns
	if len(readers) == 1 && sockets > 1 {
		// No REUSEPORT: user-space dispatch — several readers drain the
		// one socket and the sink's shard hash spreads the records.
		for i := 1; i < sockets; i++ {
			readers = append(readers, first)
		}
	}
	s.wg.Add(len(readers))
	for _, pc := range readers {
		go s.loop(pc)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *CollectorServer) Addr() string { return s.conns[0].LocalAddr().String() }

// Sockets reports how many UDP sockets the server bound.
func (s *CollectorServer) Sockets() int { return len(s.conns) }

// Stats reports datagrams received and datagrams that failed to decode.
func (s *CollectorServer) Stats() (packets, bad int) {
	return int(s.packets.Load()), int(s.bad.Load())
}

// SocketDrops reports the kernel's receive-queue drop count summed over
// the server's own sockets — datagrams that arrived but found the
// socket buffer full, invisible to user space except through kernel
// stats. Sockets other processes bind to the same port (SO_REUSEPORT)
// are excluded: their drops never held data destined for this server's
// readers. Returns 0 where the platform exposes no counter.
func (s *CollectorServer) SocketDrops() uint64 {
	return socketDrops(s.port, s.inodes)
}

// Close stops the receive loops and closes the sockets.
func (s *CollectorServer) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)
	err := s.closeConns()
	s.wg.Wait()
	return err
}

func (s *CollectorServer) closeConns() error {
	var err error
	for _, pc := range s.conns {
		if cerr := pc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Drain waits until the server has received at least n datagrams or the
// timeout elapses, for tests and batch pipelines that need to know the
// UDP stream has been consumed (UDP gives no delivery signal).
func (s *CollectorServer) Drain(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		packets, _ := s.Stats()
		if packets >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netflow: drained %d of %d datagrams before timeout", packets, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// loop is one reader goroutine: batched reads into reusable buffers,
// decode into a reusable record slice, synchronous hand-off to the sink.
func (s *CollectorServer) loop(pc net.PacketConn) {
	defer s.wg.Done()
	br := newBatchReader(pc, s.batch)
	recs := make([]Record, 0, MaxRecordsPerPacket)
	for {
		n, err := br.read()
		if err != nil {
			// Closed socket ends the loop; transient errors are counted.
			if s.closed.Load() {
				return
			}
			s.bad.Add(1)
			continue
		}
		for i := 0; i < n; i++ {
			s.packets.Add(1)
			h, rs, derr := DecodePacketInto(br.datagram(i), recs)
			if derr != nil {
				s.bad.Add(1)
				continue
			}
			s.sink.Ingest(h, rs)
		}
	}
}

// localPort extracts the bound UDP port for kernel drop-stat lookup.
func localPort(pc net.PacketConn) int {
	if ua, ok := pc.LocalAddr().(*net.UDPAddr); ok {
		return ua.Port
	}
	return 0
}

// listenUDP binds one UDP socket, optionally requesting SO_REUSEPORT
// (Linux only) and a kernel receive buffer size.
func listenUDP(addr string, rcvbuf int, reuseport bool) (net.PacketConn, error) {
	lc := listenConfig(reuseport)
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	if rcvbuf > 0 {
		if uc, ok := pc.(*net.UDPConn); ok {
			if err := uc.SetReadBuffer(rcvbuf); err != nil {
				pc.Close()
				return nil, err
			}
		}
	}
	return pc, nil
}

// datagramReader abstracts batched datagram receive: read() blocks until
// at least one datagram arrives and returns how many, datagram(i) views
// the i'th payload. Payloads are valid only until the next read().
type datagramReader interface {
	read() (int, error)
	datagram(i int) []byte
}

// singleReader is the portable batch reader: one ReadFrom per read()
// into a single reusable buffer.
type singleReader struct {
	pc  net.PacketConn
	buf []byte
	n   int
}

func newSingleReader(pc net.PacketConn) *singleReader {
	return &singleReader{pc: pc, buf: make([]byte, maxDatagram)}
}

func (r *singleReader) read() (int, error) {
	n, _, err := r.pc.ReadFrom(r.buf)
	if err != nil {
		return 0, err
	}
	r.n = n
	return 1, nil
}

func (r *singleReader) datagram(int) []byte { return r.buf[:r.n] }
