package netflow

import (
	"errors"
	"fmt"
	"io"
)

// Writer batches flow records into export packets and writes them to an
// underlying stream (a trace file, or a UDP socket wrapped in an
// io.Writer). Packets are self-framing — the header carries the record
// count — so consecutive packets can simply be concatenated.
type Writer struct {
	w        io.Writer
	pending  []Record
	sequence uint32
	// Template header copied into every packet (timestamps and sampling).
	Template Header
	err      error
}

// NewWriter creates a Writer exporting through w.
func NewWriter(w io.Writer, template Header) *Writer {
	return &Writer{w: w, Template: template}
}

// Write queues records for export, flushing full packets as it goes.
func (wr *Writer) Write(recs ...Record) error {
	if wr.err != nil {
		return wr.err
	}
	for _, r := range recs {
		wr.pending = append(wr.pending, r)
		if len(wr.pending) == MaxRecordsPerPacket {
			if err := wr.flushPacket(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes any partially filled packet.
func (wr *Writer) Flush() error {
	if wr.err != nil {
		return wr.err
	}
	if len(wr.pending) == 0 {
		return nil
	}
	return wr.flushPacket()
}

// Sequence returns the number of records exported so far.
func (wr *Writer) Sequence() uint32 { return wr.sequence }

func (wr *Writer) flushPacket() error {
	h := wr.Template
	h.FlowSequence = wr.sequence
	pkt, err := EncodePacket(h, wr.pending)
	if err != nil {
		wr.err = err
		return err
	}
	if _, err := wr.w.Write(pkt); err != nil {
		wr.err = fmt.Errorf("netflow: write: %w", err)
		return wr.err
	}
	wr.sequence += uint32(len(wr.pending))
	wr.pending = wr.pending[:0]
	return nil
}

// Reader streams export packets back from a concatenated packet stream.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader creates a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Next reads one export packet. It returns io.EOF cleanly at end of
// stream and an error for truncated or corrupt input.
func (rd *Reader) Next() (Header, []Record, error) {
	head := make([]byte, HeaderSize)
	if _, err := io.ReadFull(rd.r, head); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("netflow: reading header: %w", err)
	}
	h, err := parseHeader(head)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Count == 0 || h.Count > MaxRecordsPerPacket {
		return Header{}, nil, fmt.Errorf("netflow: bad record count %d", h.Count)
	}
	body := make([]byte, int(h.Count)*RecordSize)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return Header{}, nil, fmt.Errorf("netflow: reading %d records: %w", h.Count, err)
	}
	recs := make([]Record, h.Count)
	for i := range recs {
		if recs[i], err = parseRecord(body[i*RecordSize:]); err != nil {
			return Header{}, nil, err
		}
	}
	return h, recs, nil
}

// ReadAll drains the stream, returning all records in order.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		_, recs, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
}
