package netflow

import (
	"net/netip"
	"sort"
	"sync"
)

// FlowKey identifies a flow record independently of which router exported
// it: two records with equal keys observed at different routers describe
// the same traffic and must be counted once (§4.1.1).
type FlowKey struct {
	SrcAddr  netip.Addr
	DstAddr  netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    uint8
	First    uint32
	Last     uint32
	Octets   uint32
	Sequence uint32 // exporter-assigned record index within the flow
}

// KeyOf extracts a record's dedup key. The exporting pipeline stamps a
// per-flow record sequence into SrcAS (a field the accounting pipeline
// does not otherwise need) so that distinct records of one long-lived
// flow are not mistaken for duplicates.
func KeyOf(r Record) FlowKey {
	return FlowKey{
		SrcAddr:  r.SrcAddr,
		DstAddr:  r.DstAddr,
		SrcPort:  r.SrcPort,
		DstPort:  r.DstPort,
		Proto:    r.Proto,
		First:    r.First,
		Last:     r.Last,
		Octets:   r.Octets,
		Sequence: r.FlowSequence(),
	}
}

// FlowSequence returns the per-flow record sequence number stamped by the
// exporter (carried in SrcAS).
func (r Record) FlowSequence() uint32 { return uint32(r.SrcAS) }

// AggregateKeyFunc maps a record to the demand-aggregation bucket it
// belongs to — e.g. the destination /24, or an entry/exit PoP pair
// recovered from addressing. Returning "" drops the record.
type AggregateKeyFunc func(Record) string

// Aggregate is the accumulated demand of one aggregation bucket.
type Aggregate struct {
	// Key is the bucket identifier.
	Key string
	// Octets is the total de-duplicated, sampling-restored byte count.
	Octets uint64
	// Records is the number of distinct records accumulated.
	Records int
	// SrcAddr and DstAddr sample one record's endpoints for later
	// resolution (all records in a bucket share their resolution). The
	// sample is canonical — the minimum (SrcAddr, DstAddr, Input, Output)
	// tuple over the bucket's records — so a bucket accumulated in any
	// order, or in pieces later merged, ends with the same sample.
	SrcAddr netip.Addr
	DstAddr netip.Addr
	// Input and Output sample the SNMP interface indices.
	Input, Output uint16
}

// sampleBefore orders two endpoint-sample tuples lexicographically by
// (SrcAddr, DstAddr, Input, Output). It is the total order behind the
// canonical sample: commutative accumulation (shards, slots, merges)
// needs a sample rule with no dependence on arrival order.
func sampleBefore(s1, d1 netip.Addr, i1, o1 uint16, s2, d2 netip.Addr, i2, o2 uint16) bool {
	if c := s1.Compare(s2); c != 0 {
		return c < 0
	}
	if c := d1.Compare(d2); c != 0 {
		return c < 0
	}
	if i1 != i2 {
		return i1 < i2
	}
	return o1 < o2
}

// TakeSample folds r's endpoints into a's canonical sample, keeping the
// minimum tuple.
func (a *Aggregate) TakeSample(r Record) {
	if sampleBefore(r.SrcAddr, r.DstAddr, r.Input, r.Output,
		a.SrcAddr, a.DstAddr, a.Input, a.Output) {
		a.SrcAddr, a.DstAddr, a.Input, a.Output = r.SrcAddr, r.DstAddr, r.Input, r.Output
	}
}

// MergeSample folds another partial aggregate's sample into a's, keeping
// the minimum tuple.
func (a *Aggregate) MergeSample(b Aggregate) {
	if sampleBefore(b.SrcAddr, b.DstAddr, b.Input, b.Output,
		a.SrcAddr, a.DstAddr, a.Input, a.Output) {
		a.SrcAddr, a.DstAddr, a.Input, a.Output = b.SrcAddr, b.DstAddr, b.Input, b.Output
	}
}

// Collector ingests export packets from multiple routers, de-duplicates
// records, restores sampled volumes, and accumulates per-bucket demand.
// It is safe for concurrent use by multiple ingest goroutines (core
// routers export independently).
type Collector struct {
	keyFn AggregateKeyFunc

	mu         sync.Mutex
	seen       map[FlowKey]struct{}
	aggs       map[string]*Aggregate
	records    int
	duplicates int
	dropped    int
	noDedup    bool
}

// DisableDedup turns off cross-router duplicate suppression. It exists to
// quantify the double-counting bias the paper's pipeline avoids ("while
// ensuring that we do not double-count records that are duplicated on
// different routers", §4.1.1); see the ablation experiment. Call it
// before the first Ingest.
func (c *Collector) DisableDedup() {
	c.mu.Lock()
	c.noDedup = true
	c.mu.Unlock()
}

// NewCollector creates a collector aggregating by keyFn.
func NewCollector(keyFn AggregateKeyFunc) *Collector {
	return &Collector{
		keyFn: keyFn,
		seen:  make(map[FlowKey]struct{}),
		aggs:  make(map[string]*Aggregate),
	}
}

// Ingest processes one export packet from a router. The router identity
// is informational: dedup works on flow keys alone, so the same record
// arriving from two routers is counted once regardless.
func (c *Collector) Ingest(h Header, recs []Record) {
	sampling := uint64(h.SamplingInterval)
	if sampling == 0 {
		sampling = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range recs {
		c.records++
		if !c.noDedup {
			key := KeyOf(r)
			if _, dup := c.seen[key]; dup {
				c.duplicates++
				continue
			}
			c.seen[key] = struct{}{}
		}
		bucket := c.keyFn(r)
		if bucket == "" {
			c.dropped++
			continue
		}
		agg, ok := c.aggs[bucket]
		if !ok {
			agg = &Aggregate{
				Key:     bucket,
				SrcAddr: r.SrcAddr,
				DstAddr: r.DstAddr,
				Input:   r.Input,
				Output:  r.Output,
			}
			c.aggs[bucket] = agg
		} else {
			agg.TakeSample(r)
		}
		agg.Octets += uint64(r.Octets) * sampling
		agg.Records++
	}
}

// Aggregates returns the accumulated buckets sorted by key.
func (c *Collector) Aggregates() []Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Aggregate, 0, len(c.aggs))
	for _, a := range c.aggs {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats reports how many records were ingested, how many were dropped as
// cross-router duplicates, and how many had no aggregation bucket.
func (c *Collector) Stats() (records, duplicates, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records, c.duplicates, c.dropped
}

// DemandMbps converts a byte count accumulated over a capture window into
// megabits per second.
func DemandMbps(octets uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(octets) * 8 / seconds / 1e6
}
