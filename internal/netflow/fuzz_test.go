package netflow

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

// FuzzDecodePacket hardens the NetFlow parser against malformed
// datagrams: whatever arrives at the collector's UDP socket must either
// decode cleanly or error — never panic, never over-read.
func FuzzDecodePacket(f *testing.F) {
	// Seed with a valid packet and a few truncations/corruptions.
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  1234, First: 1, Last: 2, SrcPort: 443, Proto: 6,
	}}
	valid, err := EncodePacket(Header{UnixSecs: 1000, SamplingInterval: 10}, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:HeaderSize])
	f.Add(valid[:len(valid)-1])
	corrupt := append([]byte(nil), valid...)
	corrupt[3] = 29 // count claims more records than present
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, got, err := DecodePacket(data)
		if err != nil {
			return
		}
		// Decoded packets must re-encode to an identical wire image
		// (the format has no don't-care bits our encoder skips... except
		// the two pad fields, which EncodePacket zeroes; so compare by
		// re-decoding instead).
		re, err := EncodePacket(h, got)
		if err != nil {
			t.Fatalf("re-encode of decoded packet failed: %v", err)
		}
		h2, got2, err := DecodePacket(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h || len(got2) != len(got) {
			t.Fatalf("decode/encode not idempotent")
		}
		for i := range got {
			if got2[i] != got[i] {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}

// FuzzReader exercises the stream reader on arbitrary byte streams.
func FuzzReader(f *testing.F) {
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.Write(recs...); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(append(buf.Bytes(), buf.Bytes()...))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bounded: a reader must terminate
			_, _, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input must error, not loop or panic
			}
		}
	})
}
