package netflow

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

// FuzzDecodePacket hardens the NetFlow parser against malformed
// datagrams: whatever arrives at the collector's UDP socket must either
// decode cleanly or error — never panic, never over-read.
func FuzzDecodePacket(f *testing.F) {
	// Seed with a valid packet and a few truncations/corruptions.
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  1234, First: 1, Last: 2, SrcPort: 443, Proto: 6,
	}}
	valid, err := EncodePacket(Header{UnixSecs: 1000, SamplingInterval: 10}, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:HeaderSize])
	f.Add(valid[:len(valid)-1])
	corrupt := append([]byte(nil), valid...)
	corrupt[3] = 29 // count claims more records than present
	f.Add(corrupt)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, got, err := DecodePacket(data)
		if err != nil {
			return
		}
		// Decoded packets must re-encode to an identical wire image
		// (the format has no don't-care bits our encoder skips... except
		// the two pad fields, which EncodePacket zeroes; so compare by
		// re-decoding instead).
		re, err := EncodePacket(h, got)
		if err != nil {
			t.Fatalf("re-encode of decoded packet failed: %v", err)
		}
		h2, got2, err := DecodePacket(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h || len(got2) != len(got) {
			t.Fatalf("decode/encode not idempotent")
		}
		for i := range got {
			if got2[i] != got[i] {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}

// FuzzUDPDatagramPath fuzzes the exact per-datagram path the UDP
// CollectorServer runs: DecodePacket on a raw datagram, then (on
// success) Collector.Ingest. Malformed headers and truncated records
// must error — never panic — and whatever does decode must leave the
// collector's accounting consistent.
func FuzzUDPDatagramPath(f *testing.F) {
	recs := []Record{
		{
			SrcAddr: netip.MustParseAddr("10.0.0.1"),
			DstAddr: netip.MustParseAddr("10.1.0.1"),
			Octets:  4096, Packets: 3, First: 1, Last: 9,
			SrcPort: 443, DstPort: 51000, Proto: 6,
		},
		{
			SrcAddr: netip.MustParseAddr("10.0.0.2"),
			DstAddr: netip.MustParseAddr("10.1.0.1"),
			Octets:  512, Packets: 1, First: 2, Last: 2, Proto: 17,
		},
	}
	valid, err := EncodePacket(Header{UnixSecs: 1000, SamplingInterval: 100}, recs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:HeaderSize-1])              // truncated header
	f.Add(valid[:HeaderSize])                // header only, no records
	f.Add(valid[:HeaderSize+RecordSize-7])   // truncated record
	f.Add(valid[:len(valid)-1])              // last record short one byte
	badVersion := append([]byte(nil), valid...)
	badVersion[1] = 9 // version 9 header on a v5 body
	f.Add(badVersion)
	zeroCount := append([]byte(nil), valid...)
	zeroCount[2], zeroCount[3] = 0, 0
	f.Add(zeroCount)
	hugeCount := append([]byte(nil), valid...)
	hugeCount[2], hugeCount[3] = 0xFF, 0xFF
	f.Add(hugeCount)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, datagram []byte) {
		h, got, err := DecodePacket(datagram)
		if err != nil {
			return // the server counts this datagram as bad and moves on
		}
		if len(got) == 0 || len(got) > MaxRecordsPerPacket {
			t.Fatalf("decode accepted %d records", len(got))
		}
		c := NewCollector(func(r Record) string {
			if r.Proto == 0 {
				return "" // exercise the dropped path
			}
			return r.DstAddr.String()
		})
		c.Ingest(h, got)
		records, duplicates, dropped := c.Stats()
		if records != len(got) {
			t.Fatalf("collector counted %d records, ingested %d", records, len(got))
		}
		kept := records - duplicates - dropped
		var bucketed int
		sampling := uint64(h.SamplingInterval)
		if sampling == 0 {
			sampling = 1
		}
		var wantOctets, gotOctets uint64
		seen := make(map[FlowKey]bool)
		for _, r := range got {
			if key := KeyOf(r); !seen[key] && r.Proto != 0 {
				wantOctets += uint64(r.Octets) * sampling
			}
			seen[KeyOf(r)] = true
		}
		for _, a := range c.Aggregates() {
			bucketed += a.Records
			gotOctets += a.Octets
		}
		if bucketed != kept {
			t.Fatalf("aggregates hold %d records, want %d (= %d - %d dup - %d dropped)",
				bucketed, kept, records, duplicates, dropped)
		}
		if gotOctets != wantOctets {
			t.Fatalf("aggregated octets %d, want %d (sampling ×%d restored once per distinct record)",
				gotOctets, wantOctets, sampling)
		}
	})
}

// FuzzReader exercises the stream reader on arbitrary byte streams.
func FuzzReader(f *testing.F) {
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
	}}
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.Write(recs...); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(append(buf.Bytes(), buf.Bytes()...))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bounded: a reader must terminate
			_, _, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input must error, not loop or panic
			}
		}
	})
}
