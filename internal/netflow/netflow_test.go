package netflow

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
)

func randRecord(r *rand.Rand) Record {
	ip := func() netip.Addr {
		return netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)),
			byte(r.Intn(256)), byte(r.Intn(256))})
	}
	return Record{
		SrcAddr: ip(), DstAddr: ip(), NextHop: ip(),
		Input: uint16(r.Intn(1 << 16)), Output: uint16(r.Intn(1 << 16)),
		Packets: r.Uint32(), Octets: r.Uint32(),
		First: r.Uint32(), Last: r.Uint32(),
		SrcPort: uint16(r.Intn(1 << 16)), DstPort: uint16(r.Intn(1 << 16)),
		TCPFlags: uint8(r.Intn(256)), Proto: uint8(r.Intn(256)), ToS: uint8(r.Intn(256)),
		SrcAS: uint16(r.Intn(1 << 16)), DstAS: uint16(r.Intn(1 << 16)),
		SrcMask: uint8(r.Intn(33)), DstMask: uint8(r.Intn(33)),
	}
}

func TestPacketRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := Header{
		SysUptime: 12345, UnixSecs: 1257985000, UnixNsecs: 42,
		FlowSequence: 777, EngineType: 1, EngineID: 2, SamplingInterval: 100,
	}
	recs := make([]Record, 17)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	pkt, err := EncodePacket(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != HeaderSize+len(recs)*RecordSize {
		t.Fatalf("packet size %d", len(pkt))
	}
	h2, recs2, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	h.Count = uint16(len(recs))
	if h2 != h {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", h2, h)
	}
	for i := range recs {
		if recs2[i] != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, recs2[i], recs[i])
		}
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := 1 + int(n)%MaxRecordsPerPacket
		recs := make([]Record, count)
		for i := range recs {
			recs[i] = randRecord(r)
		}
		pkt, err := EncodePacket(Header{UnixSecs: r.Uint32()}, recs)
		if err != nil {
			return false
		}
		_, got, err := DecodePacket(pkt)
		if err != nil || len(got) != count {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodePacketLimits(t *testing.T) {
	if _, err := EncodePacket(Header{}, nil); err == nil {
		t.Error("expected error for empty packet")
	}
	recs := make([]Record, MaxRecordsPerPacket+1)
	for i := range recs {
		recs[i] = Record{SrcAddr: netip.MustParseAddr("1.1.1.1"), DstAddr: netip.MustParseAddr("2.2.2.2")}
	}
	if _, err := EncodePacket(Header{}, recs); err == nil {
		t.Error("expected error for oversized packet")
	}
}

func TestEncodeRejectsIPv6(t *testing.T) {
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("2001:db8::1"),
		DstAddr: netip.MustParseAddr("2.2.2.2"),
	}}
	if _, err := EncodePacket(Header{}, recs); err == nil {
		t.Error("expected error for IPv6 source")
	}
}

func TestEncodeAllowsZeroNextHop(t *testing.T) {
	recs := []Record{{
		SrcAddr: netip.MustParseAddr("1.1.1.1"),
		DstAddr: netip.MustParseAddr("2.2.2.2"),
	}}
	pkt, err := EncodePacket(Header{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].NextHop != netip.AddrFrom4([4]byte{}) {
		t.Errorf("next hop = %v, want 0.0.0.0", got[0].NextHop)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodePacket(nil); err == nil {
		t.Error("expected error for empty buffer")
	}
	// Wrong version.
	bad := make([]byte, HeaderSize+RecordSize)
	bad[1] = 9
	if _, _, err := DecodePacket(bad); err == nil {
		t.Error("expected error for wrong version")
	}
	// Valid header claiming more records than present.
	recs := []Record{{SrcAddr: netip.MustParseAddr("1.1.1.1"), DstAddr: netip.MustParseAddr("2.2.2.2")}}
	pkt, err := EncodePacket(Header{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	pkt[3] = 5 // count = 5, body has 1
	if _, _, err := DecodePacket(pkt); err == nil {
		t.Error("expected error for truncated body")
	}
	// Zero count.
	pkt[3] = 0
	if _, _, err := DecodePacket(pkt); err == nil {
		t.Error("expected error for zero count")
	}
}

func TestWriterReaderStream(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	recs := make([]Record, 95) // spans 4 packets at 30/packet
	for i := range recs {
		recs[i] = randRecord(r)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{UnixSecs: 1000, SamplingInterval: 10})
	if err := w.Write(recs...); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Sequence() != 95 {
		t.Fatalf("sequence = %d, want 95", w.Sequence())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriterFlushEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("empty flush wrote bytes")
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	recs := []Record{{SrcAddr: netip.MustParseAddr("1.1.1.1"), DstAddr: netip.MustParseAddr("2.2.2.2")}}
	pkt, err := EncodePacket(Header{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(pkt[:len(pkt)-4]))
	if _, _, err := rd.Next(); err == nil || err == io.EOF {
		t.Errorf("expected truncation error, got %v", err)
	}
}

func TestCollectorDeduplicates(t *testing.T) {
	rec := Record{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  1000, First: 5, Last: 9, SrcAS: 1,
	}
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	h := Header{SamplingInterval: 1}
	// The same record exported by three routers on the path.
	c.Ingest(h, []Record{rec})
	c.Ingest(h, []Record{rec})
	c.Ingest(h, []Record{rec})
	aggs := c.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("got %d aggregates", len(aggs))
	}
	if aggs[0].Octets != 1000 {
		t.Fatalf("octets = %d, want 1000 (deduplicated)", aggs[0].Octets)
	}
	records, dups, dropped := c.Stats()
	if records != 3 || dups != 2 || dropped != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (3, 2, 0)", records, dups, dropped)
	}
}

func TestCollectorDistinguishesRecordsOfOneFlow(t *testing.T) {
	// Two records of the same 5-tuple at the same uptime window but with
	// distinct exporter sequence stamps are NOT duplicates.
	base := Record{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  500, First: 5, Last: 9,
	}
	r1, r2 := base, base
	r1.SrcAS = 1
	r2.SrcAS = 2
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	c.Ingest(Header{}, []Record{r1, r2})
	aggs := c.Aggregates()
	if aggs[0].Octets != 1000 {
		t.Fatalf("octets = %d, want 1000", aggs[0].Octets)
	}
}

func TestCollectorRestoresSampling(t *testing.T) {
	rec := Record{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  1000,
	}
	c := NewCollector(func(r Record) string { return "all" })
	c.Ingest(Header{SamplingInterval: 100}, []Record{rec})
	if got := c.Aggregates()[0].Octets; got != 100000 {
		t.Fatalf("octets = %d, want 100000 (1-in-100 sampling restored)", got)
	}
}

func TestCollectorDropsUnkeyedRecords(t *testing.T) {
	rec := Record{
		SrcAddr: netip.MustParseAddr("10.0.0.1"),
		DstAddr: netip.MustParseAddr("10.1.0.1"),
		Octets:  1,
	}
	c := NewCollector(func(r Record) string { return "" })
	c.Ingest(Header{}, []Record{rec})
	if len(c.Aggregates()) != 0 {
		t.Error("unkeyed record should be dropped")
	}
	_, _, dropped := c.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestCollectorOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := make([]Record, 200)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	// Duplicate a third of them.
	withDups := append([]Record{}, recs...)
	withDups = append(withDups, recs[:70]...)

	collect := func(order []Record) []Aggregate {
		c := NewCollector(func(r Record) string { return r.DstAddr.String() })
		c.Ingest(Header{SamplingInterval: 1}, order)
		return c.Aggregates()
	}
	a := collect(withDups)
	rev := make([]Record, len(withDups))
	for i := range withDups {
		rev[i] = withDups[len(withDups)-1-i]
	}
	b := collect(rev)
	if len(a) != len(b) {
		t.Fatalf("aggregate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Octets != b[i].Octets {
			t.Fatalf("aggregate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCollectorConcurrentIngest(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	packets := make([][]Record, 20)
	for i := range packets {
		packets[i] = []Record{randRecord(r), randRecord(r), randRecord(r)}
	}
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	var wg sync.WaitGroup
	for _, p := range packets {
		wg.Add(1)
		go func(recs []Record) {
			defer wg.Done()
			c.Ingest(Header{}, recs)
		}(p)
	}
	wg.Wait()
	records, _, _ := c.Stats()
	if records != 60 {
		t.Fatalf("records = %d, want 60", records)
	}
}

func TestDemandMbps(t *testing.T) {
	// 1 MB over 8 seconds = 1 Mbps.
	if got := DemandMbps(1e6, 8); got != 1 {
		t.Fatalf("DemandMbps = %v, want 1", got)
	}
	if got := DemandMbps(1e6, 0); got != 0 {
		t.Fatalf("DemandMbps with zero duration = %v, want 0", got)
	}
}
