//go:build !linux

package netflow

// Portable fallbacks for platforms without SO_REUSEPORT steering,
// recvmmsg, or /proc socket statistics: one socket shared by all reader
// goroutines, one datagram per read, no kernel drop visibility.

import "net"

const reuseportAvailable = false

func listenConfig(bool) net.ListenConfig { return net.ListenConfig{} }

func newBatchReader(pc net.PacketConn, _ int) datagramReader { return newSingleReader(pc) }

func socketDrops(_ int, _ map[uint64]struct{}) uint64 { return 0 }

func socketInodes([]net.PacketConn) map[uint64]struct{} { return nil }
