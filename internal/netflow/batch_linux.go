//go:build linux

package netflow

// Linux fast path for the collector server: SO_REUSEPORT socket fan-out
// and recvmmsg batched receive. Both are spelled against raw syscalls
// because the repo carries no golang.org/x/sys dependency.

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"syscall"
	"unsafe"
)

// reuseportAvailable gates kernel flow-steering across sockets bound to
// one port; where false the server falls back to several readers
// sharing a single socket.
const reuseportAvailable = true

// soReusePort is SO_REUSEPORT (stdlib syscall does not export it).
const soReusePort = 0xf

// listenConfig returns a ListenConfig whose Control hook sets
// SO_REUSEPORT before bind when requested.
func listenConfig(reuseport bool) net.ListenConfig {
	if !reuseport {
		return net.ListenConfig{}
	}
	return net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
}

// mmsghdr mirrors C's struct mmsghdr. Go pads it to the same layout on
// every linux arch: msg_len sits right after the embedded msghdr and
// the struct rounds up to msghdr's alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
}

// batchReader drains many datagrams per recvmmsg syscall into a ring of
// reusable buffers. Reads are issued non-blocking under RawConn.Read so
// the goroutine parks on the runtime netpoller between batches instead
// of pinning a thread.
type batchReader struct {
	rc   syscall.RawConn
	bufs [][]byte
	iov  []syscall.Iovec
	msgs []mmsghdr
}

func newBatchReader(pc net.PacketConn, batch int) datagramReader {
	sc, ok := pc.(syscall.Conn)
	if !ok {
		return newSingleReader(pc)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return newSingleReader(pc)
	}
	br := &batchReader{
		rc:   rc,
		bufs: make([][]byte, batch),
		iov:  make([]syscall.Iovec, batch),
		msgs: make([]mmsghdr, batch),
	}
	for i := range br.bufs {
		br.bufs[i] = make([]byte, maxDatagram)
		br.iov[i].Base = &br.bufs[i][0]
		br.iov[i].SetLen(maxDatagram)
		br.msgs[i].hdr.Iov = &br.iov[i]
		br.msgs[i].hdr.Iovlen = 1
	}
	return br
}

func (br *batchReader) read() (int, error) {
	var n int
	var errno syscall.Errno
	err := br.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&br.msgs[0])), uintptr(len(br.msgs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park on the netpoller until readable
		}
		n, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return n, nil
}

func (br *batchReader) datagram(i int) []byte { return br.bufs[i][:br.msgs[i].len] }

// socketInodes collects the socket inode of every bound conn — the
// identity /proc/net/udp rows carry in their inode column — so drop
// accounting can be restricted to sockets this server actually owns.
// A socket fd's fstat st_ino IS its /proc/net inode.
func socketInodes(conns []net.PacketConn) map[uint64]struct{} {
	inodes := make(map[uint64]struct{}, len(conns))
	for _, pc := range conns {
		if ino := sockInode(pc); ino != 0 {
			inodes[ino] = struct{}{}
		}
	}
	return inodes
}

func sockInode(pc net.PacketConn) uint64 {
	sc, ok := pc.(syscall.Conn)
	if !ok {
		return 0
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return 0
	}
	var ino uint64
	_ = rc.Control(func(fd uintptr) {
		var st syscall.Stat_t
		if syscall.Fstat(int(fd), &st) == nil {
			ino = st.Ino
		}
	})
	return ino
}

// socketDrops sums the kernel receive-queue drop counters of the UDP
// sockets bound to port, read from /proc/net/udp and /proc/net/udp6
// (the trailing "drops" column). Rows are matched on the local-port hex
// field AND the socket inode: other processes can share the port via
// SO_REUSEPORT, and their drops are not ours to report. An empty inode
// set (stat unavailable) falls back to port-only matching.
func socketDrops(port int, inodes map[uint64]struct{}) uint64 {
	if port == 0 {
		return 0
	}
	var total uint64
	for _, path := range []string{"/proc/net/udp", "/proc/net/udp6"} {
		total += procNetDrops(path, port, inodes)
	}
	return total
}

func procNetDrops(path string, port int, inodes map[uint64]struct{}) uint64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	want := fmt.Sprintf(":%04X", port)
	var total uint64
	lines := strings.Split(string(data), "\n")
	for _, line := range lines[1:] {
		// sl local rem st tx:rx tr:tm retrnsmt uid timeout inode ref ptr drops
		f := strings.Fields(line)
		if len(f) < 13 || !strings.HasSuffix(f[1], want) {
			continue
		}
		if len(inodes) > 0 {
			ino, err := strconv.ParseUint(f[9], 10, 64)
			if err != nil {
				continue
			}
			if _, ours := inodes[ino]; !ours {
				continue
			}
		}
		if d, err := strconv.ParseUint(f[len(f)-1], 10, 64); err == nil {
			total += d
		}
	}
	return total
}
