package netflow

import (
	"math/rand"
	"testing"
	"time"
)

// TestDecodePacketIntoAllocs pins the hot ingest path's allocation
// contract: decoding into a reused record buffer with enough capacity
// must not allocate at all.
func TestDecodePacketIntoAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	recs := make([]Record, MaxRecordsPerPacket)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	pkt, err := EncodePacket(Header{SamplingInterval: 1}, recs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 0, MaxRecordsPerPacket)
	avg := testing.AllocsPerRun(200, func() {
		_, rs, err := DecodePacketInto(pkt, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != MaxRecordsPerPacket {
			t.Fatalf("decoded %d records, want %d", len(rs), MaxRecordsPerPacket)
		}
	})
	if avg != 0 {
		t.Errorf("DecodePacketInto allocates %.1f times per packet, want 0", avg)
	}
}

// TestDecodePacketIntoGrows covers the slow path: a buffer with too
// little capacity still yields a correct decode.
func TestDecodePacketIntoGrows(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	pkt, err := EncodePacket(Header{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	h, rs, err := DecodePacketInto(pkt, make([]Record, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if int(h.Count) != len(recs) || len(rs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(rs), len(recs))
	}
	h2, rs2, err := DecodePacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h != h2 {
		t.Fatalf("headers diverge: %+v vs %+v", h, h2)
	}
	for i := range rs {
		if rs[i] != rs2[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, rs[i], rs2[i])
		}
	}
}

// TestCollectorServerMultiSocket exercises the sharded receive path:
// several sockets (SO_REUSEPORT where available, shared-socket readers
// elsewhere), a sized kernel buffer, and batched reads must deliver
// every record exactly once.
func TestCollectorServerMultiSocket(t *testing.T) {
	c := NewCollector(func(r Record) string { return r.DstAddr.String() })
	srv, err := NewCollectorServerOpts("127.0.0.1:0", c, ServerOptions{
		Sockets: 4,
		RcvBuf:  1 << 20,
		Batch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.Sockets(); got < 1 {
		t.Fatalf("Sockets() = %d, want >= 1", got)
	}

	// 50 records per exporter → one full 30-record datagram plus a
	// 20-record flush on Close: 2 datagrams per exporter, 8 total.
	const exporters, perExporter, wantPackets = 4, 50, 8
	r := rand.New(rand.NewSource(5))
	sent := 0
	// Several exporters so REUSEPORT's 4-tuple steering spreads load.
	for e := 0; e < exporters; e++ {
		exp, err := NewExporter(srv.Addr(), Header{SamplingInterval: 1})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < perExporter/5; p++ {
			recs := make([]Record, 5)
			for i := range recs {
				recs[i] = randRecord(r)
				recs[i].SrcAS = uint16(sent) // distinct dedup stamps
				sent++
			}
			if err := exp.Export(recs...); err != nil {
				t.Fatal(err)
			}
		}
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Drain(wantPackets, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	records, _, _ := c.Stats()
	if records != sent {
		t.Fatalf("collector saw %d records, want %d", records, sent)
	}
	// Loopback at this volume should not shed load; mostly this pins
	// that the drop probe parses /proc and never errors or goes negative.
	if drops := srv.SocketDrops(); drops != 0 {
		t.Logf("socket drops = %d (kernel shed load)", drops)
	}
}

// BenchmarkDecodePacketInto reports the per-packet decode cost on the
// reused-buffer path; allocs/op here must stay 0 (asserted by
// TestDecodePacketIntoAllocs).
func BenchmarkDecodePacketInto(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	recs := make([]Record, MaxRecordsPerPacket)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	pkt, err := EncodePacket(Header{SamplingInterval: 1}, recs)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Record, 0, MaxRecordsPerPacket)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodePacketInto(pkt, buf); err != nil {
			b.Fatal(err)
		}
	}
}
