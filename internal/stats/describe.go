// Package stats provides the small numerical toolkit the rest of the
// repository is built on: descriptive statistics (weighted means,
// coefficients of variation, quantiles), least-squares curve fitting for the
// concave distance-to-price mapping of the paper's Figure 6, and seeded
// random samplers for the heavy-tailed demand and distance distributions
// used by the synthetic trace generators.
//
// Everything here is deterministic given its inputs (samplers are
// deterministic given a seed); nothing reaches for the network or the clock.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// ErrMismatch is returned when parallel slices differ in length.
var ErrMismatch = errors.New("stats: mismatched slice lengths")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	// Kahan summation: the trace pipelines sum millions of flow byte
	// counts spanning many orders of magnitude.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// WeightedMean returns Σ w_i·x_i / Σ w_i. Weights must be non-negative and
// must not all be zero.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, ErrMismatch
	}
	var num, den float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, errors.New("stats: negative weight")
		}
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CV returns the coefficient of variation (standard deviation divided by
// mean) of xs. The mean must be non-zero. Table 1 of the paper reports this
// statistic for both flow distances and flow demands.
func CV(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: zero mean")
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / m, nil
}

// WeightedVariance returns the weighted population variance of xs, i.e.
// Σw(x−m)²/Σw with m the weighted mean.
func WeightedVariance(xs, ws []float64) (float64, error) {
	m, err := WeightedMean(xs, ws)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		d := x - m
		num += ws[i] * d * d
		den += ws[i]
	}
	return num / den, nil
}

// WeightedCV returns the weighted coefficient of variation of xs.
func WeightedCV(xs, ws []float64) (float64, error) {
	m, err := WeightedMean(xs, ws)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: zero weighted mean")
	}
	v, err := WeightedVariance(xs, ws)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v) / m, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Normalize scales xs so its maximum is 1, returning a new slice. All values
// must be non-negative and at least one must be positive. The paper
// normalizes both the ITU and NTT price sheets this way before fitting the
// concave distance-to-cost curve (Figure 6).
func Normalize(xs []float64) ([]float64, error) {
	_, max, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	if max <= 0 {
		return nil, errors.New("stats: non-positive maximum")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			return nil, errors.New("stats: negative value")
		}
		out[i] = x / max
	}
	return out, nil
}

// LogSumExp computes ln(Σ e^{x_i}) without overflow. It is the workhorse of
// the logit model's bundle valuation (Eq. 10 of the paper).
func LogSumExp(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	_, max, _ := MinMax(xs)
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum), nil
}

// Softmax returns weights proportional to e^{x_i}, summing to one. It is
// used by the logit bundle-cost average (Eq. 11 of the paper).
func Softmax(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(xs))
	return out, SoftmaxInto(out, xs)
}

// SoftmaxInto is Softmax writing into dst (len(dst) must equal len(xs)),
// for hot paths that reuse a weights buffer across calls — e.g. the logit
// equal-markup bisection, which evaluates a softmax per iteration. The
// floating-point operation order is identical to Softmax.
func SoftmaxInto(dst, xs []float64) error {
	if len(xs) == 0 {
		return ErrEmpty
	}
	if len(dst) != len(xs) {
		return errors.New("stats: softmax dst/xs length mismatch")
	}
	_, max, _ := MinMax(xs)
	var sum float64
	for i, x := range xs {
		dst[i] = math.Exp(x - max)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
	return nil
}
