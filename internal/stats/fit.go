package stats

import (
	"errors"
	"math"
)

// LinearFit holds the result of an ordinary least-squares fit of
// y = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLinear computes the ordinary least-squares line through (xs, ys).
// At least two distinct x values are required.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// Coefficient of determination.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// ConcaveFit is a fitted curve of the paper's Figure 6 form,
//
//	y = a·log_b(x) + c,
//
// mapping normalized link distance x ∈ (0, 1] to normalized price y.
//
// The (a, b) pair is over-parameterized: only the product A = a/ln(b)
// is identified by data, since a·log_b(x) = (a/ln b)·ln(x). The fit is
// therefore performed on the identified form y = A·ln(x) + c, and the
// reported (a, b) are derived by pinning b to the caller-supplied base
// (the paper reports base 9.43 for ITU and 1.12 for NTT prices; both
// collapse to the same identified curve shape).
type ConcaveFit struct {
	A float64 // identified slope in natural log: y = A·ln(x) + C
	C float64 // intercept; equals y at x = 1 since log(1) = 0
	// R2 of the underlying linear fit in ln(x).
	R2 float64
}

// FitConcave fits y = A·ln(x) + C by least squares. All xs must be
// positive. This reproduces the curve-fitting step of Figure 6 on
// normalized price sheets.
func FitConcave(xs, ys []float64) (ConcaveFit, error) {
	if len(xs) != len(ys) {
		return ConcaveFit{}, ErrMismatch
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return ConcaveFit{}, errors.New("stats: non-positive x in log fit")
		}
		lx[i] = math.Log(x)
	}
	lin, err := FitLinear(lx, ys)
	if err != nil {
		return ConcaveFit{}, err
	}
	return ConcaveFit{A: lin.Slope, C: lin.Intercept, R2: lin.R2}, nil
}

// Eval evaluates the fitted curve at x > 0.
func (f ConcaveFit) Eval(x float64) float64 {
	return f.A*math.Log(x) + f.C
}

// InBase re-expresses the identified slope in the requested logarithm base,
// returning the paper-style coefficient a such that
// y = a·log_base(x) + c. base must be positive and ≠ 1.
func (f ConcaveFit) InBase(base float64) (a, c float64, err error) {
	if base <= 0 || base == 1 {
		return 0, 0, errors.New("stats: invalid log base")
	}
	return f.A * math.Log(base), f.C, nil
}
