package stats

import (
	"errors"
	"math"
	"math/rand"
)

// Sampler draws values from a fixed distribution using a caller-owned
// random source, so trace generation is reproducible from a seed.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Lognormal samples e^{Mu + Sigma·Z} with Z standard normal. Flow demands
// in the synthetic traces are lognormal: a small number of destinations
// carry most of the traffic, matching the high demand CVs of Table 1.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws one lognormal variate.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns the analytic mean e^{μ+σ²/2}.
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// CV returns the analytic coefficient of variation sqrt(e^{σ²} − 1).
// It is independent of μ, which makes lognormals easy to calibrate to the
// CV column of Table 1: pick σ from the CV, then μ from the mean.
func (l Lognormal) CV() float64 {
	return math.Sqrt(math.Exp(l.Sigma*l.Sigma) - 1)
}

// LognormalFromMeanCV constructs the lognormal with the given analytic mean
// and coefficient of variation. mean and cv must be positive.
func LognormalFromMeanCV(mean, cv float64) (Lognormal, error) {
	if mean <= 0 || cv <= 0 {
		return Lognormal{}, errors.New("stats: mean and cv must be positive")
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return Lognormal{Mu: mu, Sigma: math.Sqrt(sigma2)}, nil
}

// Pareto samples a Pareto(Scale, Shape) variate: x ≥ Scale with
// P(X > x) = (Scale/x)^Shape.
type Pareto struct {
	Scale float64 // minimum value, > 0
	Shape float64 // tail index, > 0
}

// Sample draws one Pareto variate by inversion.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Scale / math.Pow(u, 1/p.Shape)
}

// Exponential samples an exponential variate with the given mean.
type Exponential struct {
	Mean float64
}

// Sample draws one exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return e.Mean * r.ExpFloat64()
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws one uniform variate.
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// ZipfWeights returns n weights proportional to 1/rank^s, normalized to sum
// to one. Destination popularity in the CDN trace follows such a law.
func ZipfWeights(n int, s float64) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("stats: n must be positive")
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w, nil
}

// WeightedChoice picks an index with probability proportional to ws[i].
// Weights must be non-negative with a positive sum.
func WeightedChoice(r *rand.Rand, ws []float64) (int, error) {
	if len(ws) == 0 {
		return 0, ErrEmpty
	}
	var total float64
	for _, w := range ws {
		if w < 0 {
			return 0, errors.New("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return 0, errors.New("stats: zero total weight")
	}
	x := r.Float64() * total
	for i, w := range ws {
		x -= w
		if x < 0 {
			return i, nil
		}
	}
	return len(ws) - 1, nil
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 {
		return nil, errors.New("stats: linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out, nil
}
