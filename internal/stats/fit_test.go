package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, -1.5*x+4+r.NormFloat64()*0.01)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, -1.5, 0.01) || !almostEq(fit.Intercept, 4, 0.01) {
		t.Fatalf("fit = %+v, want slope -1.5 intercept 4", fit)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want near 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestFitConcaveRecoversPaperCurve(t *testing.T) {
	// Ground truth from the paper's ITU fit: y = 0.43·log_9.43(x) + 0.99
	// on normalized distance x ∈ (0,1]. The identified slope is
	// A = 0.43/ln(9.43).
	a, b, c := 0.43, 9.43, 0.99
	wantA := a / math.Log(b)
	var xs, ys []float64
	for x := 0.01; x <= 1.0; x += 0.01 {
		xs = append(xs, x)
		ys = append(ys, a*math.Log(x)/math.Log(b)+c)
	}
	fit, err := FitConcave(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.A, wantA, 1e-9) || !almostEq(fit.C, c, 1e-9) {
		t.Fatalf("fit = %+v, want A=%v C=%v", fit, wantA, c)
	}
	// Re-expressed in the paper's base the coefficient must round-trip.
	gotA, gotC, err := fit.InBase(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(gotA, a, 1e-9) || !almostEq(gotC, c, 1e-9) {
		t.Fatalf("InBase = (%v, %v), want (%v, %v)", gotA, gotC, a, c)
	}
}

func TestFitConcaveEval(t *testing.T) {
	fit := ConcaveFit{A: 2, C: 1}
	if !almostEq(fit.Eval(1), 1, 1e-12) {
		t.Fatalf("Eval(1) = %v, want C", fit.Eval(1))
	}
	if !almostEq(fit.Eval(math.E), 3, 1e-12) {
		t.Fatalf("Eval(e) = %v, want 3", fit.Eval(math.E))
	}
}

func TestFitConcaveRejectsNonPositiveX(t *testing.T) {
	if _, err := FitConcave([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error for x = 0")
	}
	if _, err := FitConcave([]float64{-1, 1}, []float64{1, 2}); err == nil {
		t.Error("expected error for x < 0")
	}
}

func TestInBaseErrors(t *testing.T) {
	fit := ConcaveFit{A: 1, C: 0}
	if _, _, err := fit.InBase(1); err == nil {
		t.Error("expected error for base 1")
	}
	if _, _, err := fit.InBase(-2); err == nil {
		t.Error("expected error for negative base")
	}
}
