package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1e16 + many small values: naive summation loses the small terms.
	xs := []float64{1e16}
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1.0)
	}
	got := Sum(xs)
	want := 1e16 + 1000
	if got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", m)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestWeightedMean(t *testing.T) {
	m, err := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m, 1.9, 1e-12) {
		t.Fatalf("WeightedMean = %v, want 1.9", m)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil, nil); err != ErrEmpty {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch: err = %v", err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight: expected error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero weights: expected error")
	}
}

func TestWeightedMeanEqualWeightsMatchesMean(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		ws := make([]float64, len(xs))
		for i := range ws {
			ws[i] = 1
		}
		wm, err1 := WeightedMean(xs, ws)
		m, err2 := Mean(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(wm, m, 1e-9*(1+math.Abs(m)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceAndCV(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	cv, err := CV([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(cv, 2.0/5.0, 1e-12) {
		t.Fatalf("CV = %v, want 0.4", cv)
	}
}

func TestCVZeroMean(t *testing.T) {
	if _, err := CV([]float64{-1, 1}); err == nil {
		t.Fatal("expected error for zero mean")
	}
}

func TestCVScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = 1 + r.Float64()*10
		}
		cv1, err := CV(xs)
		if err != nil {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 7.5 * x
		}
		cv2, err := CV(scaled)
		if err != nil {
			return false
		}
		return almostEq(cv1, cv2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedCV(t *testing.T) {
	// With all the weight on a single point the weighted CV is zero.
	cv, err := WeightedCV([]float64{3, 100}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(cv, 0, 1e-12) {
		t.Fatalf("WeightedCV = %v, want 0", cv)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q > 1")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("expected error for all-zero input")
	}
	if _, err := Normalize([]float64{-1, 2}); err == nil {
		t.Error("expected error for negative input")
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Would overflow naive exp.
	got, err := LogSumExp([]float64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 + math.Log(2)
	if !almostEq(got, want, 1e-9) {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestLogSumExpMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = r.Float64()*10 - 5
		}
		got, err := LogSumExp(xs)
		if err != nil {
			return false
		}
		var naive float64
		for _, x := range xs {
			naive += math.Exp(x)
		}
		return almostEq(got, math.Log(naive), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(20))
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		w, err := Softmax(xs)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
