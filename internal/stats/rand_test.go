package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sampleMany(s Sampler, n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func TestLognormalFromMeanCV(t *testing.T) {
	ln, err := LognormalFromMeanCV(54, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ln.Mean(), 54, 1e-9) {
		t.Fatalf("analytic mean = %v, want 54", ln.Mean())
	}
	if !almostEq(ln.CV(), 0.7, 1e-9) {
		t.Fatalf("analytic CV = %v, want 0.7", ln.CV())
	}
	// Empirical check with a large sample.
	xs := sampleMany(ln, 200000, 1)
	m, _ := Mean(xs)
	cv, _ := CV(xs)
	if !almostEq(m, 54, 1.0) {
		t.Fatalf("empirical mean = %v, want ~54", m)
	}
	if !almostEq(cv, 0.7, 0.03) {
		t.Fatalf("empirical CV = %v, want ~0.7", cv)
	}
}

func TestLognormalFromMeanCVErrors(t *testing.T) {
	if _, err := LognormalFromMeanCV(0, 1); err == nil {
		t.Error("expected error for zero mean")
	}
	if _, err := LognormalFromMeanCV(1, -1); err == nil {
		t.Error("expected error for negative cv")
	}
}

func TestParetoSamplesAboveScale(t *testing.T) {
	p := Pareto{Scale: 3, Shape: 2.5}
	for _, x := range sampleMany(p, 10000, 2) {
		if x < 3 {
			t.Fatalf("sample %v below scale", x)
		}
	}
}

func TestParetoEmpiricalMean(t *testing.T) {
	// Mean of Pareto(scale, shape) = scale·shape/(shape−1) for shape > 1.
	p := Pareto{Scale: 1, Shape: 3}
	xs := sampleMany(p, 300000, 3)
	m, _ := Mean(xs)
	if !almostEq(m, 1.5, 0.02) {
		t.Fatalf("empirical mean = %v, want ~1.5", m)
	}
}

func TestExponentialEmpiricalMean(t *testing.T) {
	e := Exponential{Mean: 4}
	xs := sampleMany(e, 200000, 4)
	m, _ := Mean(xs)
	if !almostEq(m, 4, 0.05) {
		t.Fatalf("empirical mean = %v, want ~4", m)
	}
}

func TestUniformRange(t *testing.T) {
	u := Uniform{Lo: -2, Hi: 5}
	xs := sampleMany(u, 10000, 5)
	for _, x := range xs {
		if x < -2 || x >= 5 {
			t.Fatalf("sample %v out of [-2, 5)", x)
		}
	}
	m, _ := Mean(xs)
	if !almostEq(m, 1.5, 0.1) {
		t.Fatalf("empirical mean = %v, want ~1.5", m)
	}
}

func TestZipfWeights(t *testing.T) {
	w, err := ZipfWeights(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1, 1/2, 1/3, 1/4 normalized.
	h := 1 + 0.5 + 1.0/3 + 0.25
	want := []float64{1 / h, 0.5 / h, (1.0 / 3) / h, 0.25 / h}
	for i := range want {
		if !almostEq(w[i], want[i], 1e-12) {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("sum = %v, want 1", sum)
	}
	if _, err := ZipfWeights(0, 1); err == nil {
		t.Error("expected error for n = 0")
	}
}

func TestZipfWeightsMonotone(t *testing.T) {
	w, err := ZipfWeights(100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("weights not monotone at %d", i)
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ws := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		idx, err := WeightedChoice(r, ws)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := WeightedChoice(r, nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
	if _, err := WeightedChoice(r, []float64{0, 0}); err == nil {
		t.Error("expected error for zero total")
	}
	if _, err := WeightedChoice(r, []float64{-1, 2}); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestLinspace(t *testing.T) {
	xs, err := Linspace(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(xs[i], want[i], 1e-12) {
			t.Fatalf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if _, err := Linspace(0, 1, 1); err == nil {
		t.Error("expected error for n = 1")
	}
}

func TestSamplersDeterministicPerSeed(t *testing.T) {
	samplers := []Sampler{
		Lognormal{Mu: 1, Sigma: 0.5},
		Pareto{Scale: 1, Shape: 2},
		Exponential{Mean: 2},
		Uniform{Lo: 0, Hi: 1},
	}
	for _, s := range samplers {
		a := sampleMany(s, 100, 42)
		b := sampleMany(s, 100, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T not deterministic at %d", s, i)
			}
		}
	}
}
