package transit

import (
	"io"
	"net"
	"net/netip"

	"tieredpricing/internal/accounting"
	"tieredpricing/internal/bgp"
	"tieredpricing/internal/netflow"
	"tieredpricing/internal/peering"
	"tieredpricing/internal/traces"
)

// This file exposes the deployment-facing half of the library (the
// paper's §5 and §2.2.2): direct-peering economics, BGP tier tagging, and
// the two tier-accounting architectures.

// Peering economics (§2.2.2, Figure 2).
type (
	// PeeringInputs describe a customer/ISP bypass decision.
	PeeringInputs = peering.Inputs
	// PeeringOutcome classifies it (stay / efficient-bypass /
	// market-failure).
	PeeringOutcome = peering.Outcome
	// PeeringSweepPoint is one point of a c_direct sweep.
	PeeringSweepPoint = peering.SweepPoint
)

// Peering outcome values.
const (
	StayWithISP     = peering.StayWithISP
	EfficientBypass = peering.EfficientBypass
	MarketFailure   = peering.MarketFailure
)

// DecidePeering classifies one bypass decision.
func DecidePeering(in PeeringInputs) (PeeringOutcome, error) { return peering.Decide(in) }

// SweepPeering evaluates the decision across direct-link costs.
func SweepPeering(base PeeringInputs, directCosts []float64) ([]PeeringSweepPoint, error) {
	return peering.Sweep(base, directCosts)
}

// BGP tier association (§5.1).
type (
	// TierCommunity is the extended community tagging a route's tier.
	TierCommunity = bgp.TierCommunity
	// BGPOpen holds a speaker's OPEN parameters.
	BGPOpen = bgp.Open
	// BGPUpdate is a route announcement/withdrawal.
	BGPUpdate = bgp.Update
	// BGPSession is an established session.
	BGPSession = bgp.Session
	// RIB is a tier-tagged routing table with longest-prefix matching.
	RIB = bgp.RIB
)

// EstablishBGP performs the OPEN/KEEPALIVE handshake over conn.
func EstablishBGP(conn net.Conn, local BGPOpen) (*BGPSession, error) {
	return bgp.Establish(conn, local)
}

// NewRIB creates an empty routing table.
func NewRIB() *RIB { return bgp.NewRIB() }

// AnnounceTiered groups prefixes by tier into tagged UPDATE messages.
func AnnounceTiered(prefixes []netip.Prefix, nextHop netip.Addr,
	tierOf func(netip.Prefix) int, prices []float64) ([]BGPUpdate, error) {
	return bgp.AnnounceTiered(prefixes, nextHop, tierOf, prices)
}

// Accounting (§5.2).
type (
	// LinkMeter is the link-based (per-tier SNMP counter) architecture.
	LinkMeter = accounting.LinkMeter
	// FlowAccountant is the flow-based (NetFlow + RIB) architecture.
	FlowAccountant = accounting.FlowAccountant
	// Bill prices accounted traffic.
	Bill = accounting.Bill
	// AccountingOverhead compares the two architectures' costs.
	AccountingOverhead = accounting.Overhead
)

// NewLinkMeter creates an empty link meter.
func NewLinkMeter() *LinkMeter { return accounting.NewLinkMeter() }

// SNMP realism and industry billing (extensions beyond the paper; see
// internal/accounting).
type (
	// SNMPAgent simulates a router interface MIB with wrapping 32-bit
	// octet counters.
	SNMPAgent = accounting.Agent
	// SNMPPoller accumulates true totals from periodic counter reads,
	// unwrapping counter wraps.
	SNMPPoller = accounting.Poller
	// PercentileBilling prices interval samples at a percentile (default
	// the industry-standard 95th).
	PercentileBilling = accounting.PercentileBilling
)

// NewSNMPAgent creates an agent with no interfaces.
func NewSNMPAgent() *SNMPAgent { return accounting.NewAgent() }

// NewSNMPPoller creates an empty poller.
func NewSNMPPoller() *SNMPPoller { return accounting.NewPoller() }

// Speaker is a provider-side BGP speaker that serves multiple customer
// sessions and pushes incremental tier re-pricings (§5.1 at service
// scale).
type Speaker = bgp.Speaker

// NewSpeaker starts a provider speaker listening on addr.
func NewSpeaker(addr string, local BGPOpen, nextHop netip.Addr) (*Speaker, error) {
	return bgp.NewSpeaker(addr, local, nextHop)
}

// NewFlowAccountant creates a flow accountant over a tier-tagged RIB.
func NewFlowAccountant(rib *RIB) (*FlowAccountant, error) {
	return accounting.NewFlowAccountant(rib)
}

// ComputeBill prices per-tier octet totals over a billing window.
func ComputeBill(perTier map[int]uint64, prices []float64, windowSec float64) (Bill, error) {
	return accounting.ComputeBill(perTier, prices, windowSec)
}

// PerTierOctets folds link-meter samples into per-tier totals.
func PerTierOctets(samples []accounting.CounterSample) map[int]uint64 {
	return accounting.PerTierOctets(samples)
}

// NetFlow trace replay.
type (
	// NetFlowHeader and NetFlowRecord are the v5 export structures.
	NetFlowHeader = netflow.Header
	NetFlowRecord = netflow.Record
	// NetFlowReader streams export packets.
	NetFlowReader = netflow.Reader
	// Collector de-duplicates and aggregates records into demands.
	Collector = netflow.Collector
	// EmitConfig tunes Dataset.EmitNetFlow.
	EmitConfig = traces.EmitConfig
)

// NewNetFlowReader streams export packets from r.
func NewNetFlowReader(r io.Reader) *NetFlowReader { return netflow.NewReader(r) }

// NewCollector aggregates records by the given bucketing rule.
func NewCollector(key func(NetFlowRecord) string) *Collector {
	return netflow.NewCollector(key)
}

// DatasetAggregateKey is the bucketing rule matching the built-in
// datasets' address plan (source PoP /20 + destination /24).
func DatasetAggregateKey(rec NetFlowRecord) string { return traces.AggregateKey(rec) }
