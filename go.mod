module tieredpricing

go 1.22
